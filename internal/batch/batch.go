// Package batch implements the typed columnar representation of signed
// deltas that the vectorized refresh path computes over: one typed Go
// slice per column ([]int64, []float64, []string, []bool), a validity
// bitmap for NULLs, a tuple-identifier column, a sign column, and an
// optional commit-timestamp column for batches built at the storage
// boundary. The layout is the Z-set batch of DBSP-style incremental
// engines: a Batch is a signed multiset of rows, exactly the algebraic
// object the truth-table expansion of Algorithm 1 composes, but stored
// structure-of-arrays so operators touch contiguous memory and a pooled
// arena (Pool) can recycle every buffer across refresh rounds.
//
// Representability: a Batch stores one declared type per column. Values
// whose Kind differs from the column type — including untyped NULLs
// (relation.NullValue, Kind 0) — are unrepresentable; conversion entry
// points report ok=false and callers fall back to the row-oriented
// path. NULLs tagged with the column type (relation.TypedNull) round-
// trip exactly through the validity bitmap.
package batch

import (
	"fmt"

	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/vclock"
)

// Col is one typed column: exactly one of the payload slices is in use,
// selected by Type, and all payload slices in use share the batch's row
// count. Rows whose validity bit is clear are NULL; their payload slot
// holds the zero value as a placeholder.
type Col struct {
	Type relation.Type
	I64  []int64
	F64  []float64
	Str  []string
	B    []bool
	// Valid is the validity bitmap (bit i set means row i is non-NULL);
	// nil means every row is valid.
	Valid []uint64
	// Shared marks the buffers as aliased from another owner (a window
	// batch served to many CQs, or a column stolen into a downstream
	// batch). Pool.Put leaves shared buffers alone.
	Shared bool
}

// Batch is a signed columnar multiset of rows under a schema.
// All column slices and TIDs/Signs (and TS when present) have the same
// length. The zero Batch is empty and unusable; construct with New or
// Pool.Get.
type Batch struct {
	Schema relation.Schema
	TIDs   []relation.TID
	Signs  []int8
	// TS carries per-row commit timestamps; it is set only on batches
	// built at the storage boundary (FromDelta / the commit hook) where
	// the ordered signed form must reconstruct the differential rows
	// exactly. Operator outputs leave it nil.
	TS   []vclock.Timestamp
	Cols []Col

	n int

	// sharedRows marks TIDs/Signs/TS as aliased from another batch (set
	// by View); Pool.Put detaches them instead of recycling.
	sharedRows bool

	// dead and gen implement the poisoned-generation use-after-release
	// assertion: Pool.Put marks the batch dead and bumps gen; in poison
	// builds (-race / the poison tag) every accessor panics on a dead
	// batch, so a stage that keeps referencing a returned batch fails
	// loudly in CI instead of silently reading recycled buffers.
	dead bool
	gen  uint64
}

// New allocates an unpooled batch for the schema with capacity for
// capHint rows.
func New(schema relation.Schema, capHint int) *Batch {
	b := &Batch{}
	b.init(schema, capHint)
	return b
}

// init (re)shapes the batch for a schema, keeping whatever buffer
// capacity it already has.
func (b *Batch) init(schema relation.Schema, capHint int) {
	b.Schema = schema
	b.n = 0
	b.sharedRows = false
	b.TIDs = b.TIDs[:0]
	b.Signs = b.Signs[:0]
	b.TS = nil
	if cap(b.Cols) >= schema.Len() {
		b.Cols = b.Cols[:schema.Len()]
	} else {
		b.Cols = make([]Col, schema.Len())
	}
	for i := range b.Cols {
		c := &b.Cols[i]
		c.Type = schema.Col(i).Type
		c.Shared = false
		c.Valid = c.Valid[:0]
		c.I64 = c.I64[:0]
		c.F64 = c.F64[:0]
		c.Str = c.Str[:0]
		c.B = c.B[:0]
	}
	_ = capHint // capacity grows on append; the hint matters to Pool.Get sizing
}

// Len returns the number of rows.
func (b *Batch) Len() int {
	b.check()
	return b.n
}

// Gen returns the poisoned-generation counter; it increments every time
// the batch is recycled through a Pool, so a holder can detect reuse.
func (b *Batch) Gen() uint64 { return b.gen }

// Alive reports whether the batch is currently checked out (not sitting
// in a pool). Always true for unpooled batches.
func (b *Batch) Alive() bool { return !b.dead }

// check panics in poison builds when the batch has been returned to a
// pool. In regular builds it compiles to nothing.
func (b *Batch) check() {
	if poisonEnabled && b.dead {
		panic("batch: use after Pool.Put (poisoned generation " + fmt.Sprint(b.gen) + ")")
	}
}

// IsValid reports whether row i of column c is non-NULL.
func (c *Col) IsValid(i int) bool {
	if c.Valid == nil {
		return true
	}
	return c.Valid[i>>6]&(1<<uint(i&63)) != 0
}

// materializeValidity allocates the bitmap with bits [0,n) set.
func (c *Col) materializeValidity(n int) {
	words := (n + 63) / 64
	if cap(c.Valid) >= words {
		c.Valid = c.Valid[:words]
	} else {
		c.Valid = make([]uint64, words)
	}
	for w := 0; w < words; w++ {
		c.Valid[w] = ^uint64(0)
	}
	if r := n & 63; r != 0 && words > 0 {
		c.Valid[words-1] = (1 << uint(r)) - 1
	}
}

// appendValidity extends the bitmap (when present) with one bit.
func (c *Col) appendValidity(i int, valid bool) {
	if c.Valid == nil {
		if valid {
			return // all-valid stays implicit
		}
		c.materializeValidity(i)
	}
	if w := i >> 6; w == len(c.Valid) {
		c.Valid = append(c.Valid, 0)
	}
	if valid {
		c.Valid[i>>6] |= 1 << uint(i&63)
	} else {
		c.Valid[i>>6] &^= 1 << uint(i&63)
	}
}

// appendValue appends one value to the column at row index i. It reports
// false when the value is unrepresentable under the column type (kind
// mismatch, or a NULL not tagged with the column type).
func (c *Col) appendValue(i int, v relation.Value) bool {
	if v.Kind != c.Type {
		return false
	}
	if v.IsNull() {
		c.appendValidity(i, false)
		c.appendZero()
		return true
	}
	c.appendValidity(i, true)
	switch c.Type {
	case relation.TInt:
		c.I64 = append(c.I64, v.AsInt())
	case relation.TFloat:
		c.F64 = append(c.F64, v.AsFloat())
	case relation.TString:
		c.Str = append(c.Str, v.AsString())
	case relation.TBool:
		c.B = append(c.B, v.AsBool())
	default:
		return false
	}
	return true
}

// appendZero appends the zero placeholder of the column's type.
func (c *Col) appendZero() {
	switch c.Type {
	case relation.TInt:
		c.I64 = append(c.I64, 0)
	case relation.TFloat:
		c.F64 = append(c.F64, 0)
	case relation.TString:
		c.Str = append(c.Str, "")
	case relation.TBool:
		c.B = append(c.B, false)
	}
}

// length returns the column's current row count.
func (c *Col) length() int {
	switch c.Type {
	case relation.TInt:
		return len(c.I64)
	case relation.TFloat:
		return len(c.F64)
	case relation.TString:
		return len(c.Str)
	case relation.TBool:
		return len(c.B)
	default:
		return 0
	}
}

// appendFromCol appends row i of src (same type) to the column at row
// index n.
func (c *Col) appendFromCol(n int, src *Col, i int) {
	c.appendValidity(n, src.IsValid(i))
	switch c.Type {
	case relation.TInt:
		c.I64 = append(c.I64, src.I64[i])
	case relation.TFloat:
		c.F64 = append(c.F64, src.F64[i])
	case relation.TString:
		c.Str = append(c.Str, src.Str[i])
	case relation.TBool:
		c.B = append(c.B, src.B[i])
	}
}

// CloneCol deep-copies a column's buffers; the clone owns its memory
// (not Shared).
func CloneCol(c Col) Col {
	out := Col{Type: c.Type}
	out.I64 = append(out.I64, c.I64...)
	out.F64 = append(out.F64, c.F64...)
	out.Str = append(out.Str, c.Str...)
	out.B = append(out.B, c.B...)
	out.Valid = append(out.Valid, c.Valid...)
	return out
}

// value reconstructs row i as a relation.Value. NULL rows come back as
// TypedNull of the column type.
func (c *Col) value(i int) relation.Value {
	if !c.IsValid(i) {
		return relation.TypedNull(c.Type)
	}
	switch c.Type {
	case relation.TInt:
		return relation.Int(c.I64[i])
	case relation.TFloat:
		return relation.Float(c.F64[i])
	case relation.TString:
		return relation.Str(c.Str[i])
	case relation.TBool:
		return relation.Bool(c.B[i])
	default:
		return relation.NullValue()
	}
}

// equalAt reports whether rows i and j of the column hold equal values
// under relation.Value.Equal semantics (NULL equals NULL; payloads
// compare typed).
func (c *Col) equalAt(i, j int) bool {
	vi, vj := c.IsValid(i), c.IsValid(j)
	if vi != vj {
		return false
	}
	if !vi {
		return true
	}
	switch c.Type {
	case relation.TInt:
		return c.I64[i] == c.I64[j]
	case relation.TFloat:
		return c.F64[i] == c.F64[j]
	case relation.TString:
		return c.Str[i] == c.Str[j]
	case relation.TBool:
		return c.B[i] == c.B[j]
	default:
		return false
	}
}

// Value returns the value at (row, col), reconstructing NULLs as typed
// NULLs of the column type.
func (b *Batch) Value(row, col int) relation.Value {
	b.check()
	return b.Cols[col].value(row)
}

// ReadRow fills dst (len == schema width) with row i's values.
func (b *Batch) ReadRow(i int, dst []relation.Value) {
	b.check()
	for c := range b.Cols {
		dst[c] = b.Cols[c].value(i)
	}
}

// RowsEqual reports whether rows i and j carry equal values position by
// position (relation.Value.Equal semantics within a typed column).
func (b *Batch) RowsEqual(i, j int) bool {
	b.check()
	for c := range b.Cols {
		if !b.Cols[c].equalAt(i, j) {
			return false
		}
	}
	return true
}

// AppendRow appends one signed row. It reports false — leaving the
// batch with the row partially unappended, so the caller must discard
// it — when any value is unrepresentable under its column's type.
func (b *Batch) AppendRow(tid relation.TID, sign int8, vals []relation.Value) bool {
	b.check()
	for c := range b.Cols {
		if !b.Cols[c].appendValue(b.n, vals[c]) {
			return false
		}
	}
	b.TIDs = append(b.TIDs, tid)
	b.Signs = append(b.Signs, sign)
	if b.TS != nil {
		b.TS = append(b.TS, 0)
	}
	b.n++
	return true
}

// AppendFrom appends row i of src (same column types) to b.
func (b *Batch) AppendFrom(src *Batch, i int) {
	b.check()
	src.check()
	for c := range b.Cols {
		dc, sc := &b.Cols[c], &src.Cols[c]
		dc.appendValidity(b.n, sc.IsValid(i))
		switch dc.Type {
		case relation.TInt:
			dc.I64 = append(dc.I64, sc.I64[i])
		case relation.TFloat:
			dc.F64 = append(dc.F64, sc.F64[i])
		case relation.TString:
			dc.Str = append(dc.Str, sc.Str[i])
		case relation.TBool:
			dc.B = append(dc.B, sc.B[i])
		}
	}
	b.TIDs = append(b.TIDs, src.TIDs[i])
	b.Signs = append(b.Signs, src.Signs[i])
	if b.TS != nil && src.TS != nil {
		b.TS = append(b.TS, src.TS[i])
	}
	b.n++
}

// AppendColValue appends one value to column col (at that column's
// current length), for column-wise builders like vectorized projection.
// The caller must keep all columns at equal length before using the
// batch row-wise (see CopyRowsFrom). Reports false on an unrepresentable
// value.
func (b *Batch) AppendColValue(col int, v relation.Value) bool {
	b.check()
	c := &b.Cols[col]
	return c.appendValue(c.length(), v)
}

// CopyRowsFrom copies src's TID and sign columns (reusing b's pooled
// capacity) and sets the row count — the tail step of a column-wise
// builder whose value columns were filled by steal/clone/AppendColValue.
func (b *Batch) CopyRowsFrom(src *Batch) {
	b.check()
	src.check()
	b.TIDs = append(b.TIDs[:0], src.TIDs...)
	b.Signs = append(b.Signs[:0], src.Signs...)
	b.TS = nil
	b.n = src.n
}

// AppendPlaced appends one row whose columns [lo, lo+src.width) come
// from src row r and whose remaining columns hold valid zero
// placeholders — the seed step of vectorized term evaluation, where
// unfilled operand ranges are never read before their operand joins.
// The row's sign is src's; its TID slot is zero (term evaluation tracks
// per-operand provenance separately).
func (b *Batch) AppendPlaced(src *Batch, r, lo int) {
	b.check()
	src.check()
	w := len(src.Cols)
	for c := range b.Cols {
		dc := &b.Cols[c]
		if c >= lo && c < lo+w {
			dc.appendFromCol(b.n, &src.Cols[c-lo], r)
		} else {
			dc.appendValidity(b.n, true)
			dc.appendZero()
		}
	}
	b.TIDs = append(b.TIDs, 0)
	b.Signs = append(b.Signs, src.Signs[r])
	b.n++
}

// AppendMerged appends src row r with columns [lo, lo+op.width)
// replaced by op row m, multiplying the signs — one join-step emit of
// vectorized term evaluation.
func (b *Batch) AppendMerged(src *Batch, r int, op *Batch, m, lo int) {
	b.check()
	src.check()
	op.check()
	w := len(op.Cols)
	for c := range b.Cols {
		dc := &b.Cols[c]
		if c >= lo && c < lo+w {
			dc.appendFromCol(b.n, &op.Cols[c-lo], m)
		} else {
			dc.appendFromCol(b.n, &src.Cols[c], r)
		}
	}
	b.TIDs = append(b.TIDs, 0)
	b.Signs = append(b.Signs, src.Signs[r]*op.Signs[m])
	b.n++
}

// CanGather reports whether the batch owns every buffer, so Gather may
// compact it in place. Views and batches holding stolen/aliased columns
// must be gathered into a fresh batch instead.
func (b *Batch) CanGather() bool {
	b.check()
	if b.sharedRows {
		return false
	}
	for i := range b.Cols {
		if b.Cols[i].Shared {
			return false
		}
	}
	return true
}

// Gather compacts the batch in place to exactly the rows whose indices
// appear in sel (ascending). The batch must own its buffers (no Shared
// columns); callers gather shared inputs into a fresh batch instead.
func (b *Batch) Gather(sel []int32) {
	b.check()
	for c := range b.Cols {
		col := &b.Cols[c]
		switch col.Type {
		case relation.TInt:
			for k, i := range sel {
				col.I64[k] = col.I64[i]
			}
			col.I64 = col.I64[:len(sel)]
		case relation.TFloat:
			for k, i := range sel {
				col.F64[k] = col.F64[i]
			}
			col.F64 = col.F64[:len(sel)]
		case relation.TString:
			for k, i := range sel {
				col.Str[k] = col.Str[i]
			}
			col.Str = col.Str[:len(sel)]
		case relation.TBool:
			for k, i := range sel {
				col.B[k] = col.B[i]
			}
			col.B = col.B[:len(sel)]
		}
		if col.Valid != nil {
			for k, i := range sel {
				valid := col.Valid[i>>6]&(1<<uint(i&63)) != 0
				if valid {
					col.Valid[k>>6] |= 1 << uint(k&63)
				} else {
					col.Valid[k>>6] &^= 1 << uint(k&63)
				}
			}
			col.Valid = col.Valid[:(len(sel)+63)/64]
		}
	}
	for k, i := range sel {
		b.TIDs[k] = b.TIDs[i]
		b.Signs[k] = b.Signs[i]
	}
	b.TIDs = b.TIDs[:len(sel)]
	b.Signs = b.Signs[:len(sel)]
	if b.TS != nil {
		for k, i := range sel {
			b.TS[k] = b.TS[i]
		}
		b.TS = b.TS[:len(sel)]
	}
	b.n = len(sel)
}

// View returns a shallow copy of the batch rebadged under a schema with
// identical column types (a scan's qualified schema over a base-table
// window). Every column of the view is marked Shared, so pooling the
// view never recycles the underlying buffers.
func (b *Batch) View(schema relation.Schema) *Batch {
	b.check()
	v := &Batch{
		Schema:     schema,
		TIDs:       b.TIDs,
		Signs:      b.Signs,
		TS:         b.TS,
		Cols:       append([]Col(nil), b.Cols...),
		n:          b.n,
		sharedRows: true,
	}
	for i := range v.Cols {
		v.Cols[i].Shared = true
	}
	return v
}

// StealCol moves column i's buffers out of the batch, returning them
// for reuse in a downstream batch; the source slot is left empty and
// marked Shared so a later Pool.Put does not recycle the moved buffers.
func (b *Batch) StealCol(i int) Col {
	b.check()
	c := b.Cols[i]
	b.Cols[i] = Col{Type: c.Type, Shared: true}
	return c
}
