// Package remote implements the client/server split of the system: a TCP
// server exposing information sources (snapshots, delta windows and
// server-side query execution) and a client that evaluates continual
// queries locally against shipped deltas.
//
// The split realizes the strawman performance arguments of Section 5.1:
// "caching the results on the client side makes the servers more scalable
// with respect to the number of clients" and "if the volume of relevant
// updates is smaller than the results ... we are further reducing the
// network traffic". Both sides count bytes on the wire so the benchmark
// harness can report delta shipping vs full-result shipping.
package remote

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sync/atomic"

	"github.com/diorama/continual/internal/batch"
	"github.com/diorama/continual/internal/delta"
	"github.com/diorama/continual/internal/obs"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/vclock"
)

// Op identifies a request type.
type Op int

// Request operations.
const (
	OpListTables Op = iota + 1
	OpSchema
	OpSnapshot
	OpDeltaSince
	OpQuery
	OpNow
	OpApplyUpdates
	// OpStats fetches the server's metrics snapshot (the same view cqd
	// serves over HTTP at /stats); `cqctl stats` renders it.
	OpStats
	// OpCheckpoint asks a durably-backed server to take a checkpoint
	// now (snapshot base relations + CQ registry and truncate the WAL
	// replay horizon). Idempotent, so safe to retry; servers without a
	// durable store refuse it.
	OpCheckpoint
	// OpDeps fetches the cascade dependency DAG — every registered CQ
	// with its source tables, INTO target and topological refresh stage
	// (`cqctl deps` renders it).
	OpDeps
)

// Request is one client request.
type Request struct {
	Op    Op
	Table string
	Since vclock.Timestamp
	Query string
	// Updates carries OpApplyUpdates rows (benchmark drivers push load
	// through the same connection).
	Updates []WireDeltaRow
	// Columnar asks the server to answer OpDeltaSince with the columnar
	// wire form (Response.ColDelta): typed flat slices instead of
	// per-row tagged values. Always safe to set — a server whose window
	// is unrepresentable in typed columns (or that predates the format)
	// answers with the row form, and the client decodes whichever
	// arrives.
	Columnar bool
}

// Response is one server reply. Exactly one payload field is set on
// success; Err is the error text otherwise.
type Response struct {
	Err      string
	Tables   []string
	Columns  []WireColumn
	Rel      *WireRelation
	Delta    []WireDeltaRow
	ColDelta *WireColDelta
	Now      vclock.Timestamp
	Stats    *obs.Snapshot
	Deps     []WireDep
}

// WireDep is one cascade DAG node on the wire (OpDeps).
type WireDep struct {
	CQ      string
	Sources []string
	Target  string
	Stage   int
}

// WireColumn mirrors relation.Column for the wire.
type WireColumn struct {
	Name string
	Type int
}

// WireRelation is a materialized relation on the wire.
type WireRelation struct {
	Columns []WireColumn
	TIDs    []uint64
	Rows    [][]relation.Value
}

// WireDeltaRow mirrors delta.Row for the wire.
type WireDeltaRow struct {
	TID uint64
	Old []relation.Value
	New []relation.Value
	TS  vclock.Timestamp
}

// WireColDelta is a differential window in ordered signed columnar
// form: one typed flat slice per column plus parallel TID, sign and
// commit-timestamp slices. Gob encodes a []float64 as raw numbers where
// []relation.Value ships a type tag and field per cell, so the columnar
// frame is both smaller on the wire and cheaper to encode — the same
// structure-of-arrays economics the in-process batch layout buys the
// refresh path. Pairing is positional, exactly as in the delta log: a
// -1 row immediately followed by a +1 row with the same TID and TS is a
// modification; a lone +1 inserts, a lone -1 deletes.
type WireColDelta struct {
	TIDs  []uint64
	Signs []int8
	TS    []uint64
	Cols  []WireCol
}

// WireCol is one typed column of a WireColDelta. Exactly one payload
// slice is in use, selected by Type, with one element per row. Valid is
// the validity bitmap (bit i set means row i is non-NULL); empty means
// every row is valid, and NULL rows hold zero-value placeholders.
type WireCol struct {
	Type  int
	I64   []int64
	F64   []float64
	Str   []string
	B     []bool
	Valid []uint64
}

// toWireColDelta flattens a differential window into the columnar wire
// form via its batch image. ok=false means some value is not
// representable in typed columns and the row form must ship instead.
func toWireColDelta(d *delta.Delta) (*WireColDelta, bool) {
	b, ok := batch.FromDelta(nil, d)
	if !ok {
		return nil, false
	}
	n := b.Len()
	out := &WireColDelta{
		TIDs:  make([]uint64, n),
		Signs: make([]int8, n),
		TS:    make([]uint64, n),
		Cols:  make([]WireCol, len(b.Cols)),
	}
	for i := 0; i < n; i++ {
		out.TIDs[i] = uint64(b.TIDs[i])
		out.Signs[i] = b.Signs[i]
		out.TS[i] = uint64(b.TS[i])
	}
	for c := range b.Cols {
		col := &b.Cols[c]
		wc := &out.Cols[c]
		wc.Type = int(col.Type)
		wc.Valid = col.Valid
		switch col.Type {
		case relation.TInt:
			wc.I64 = col.I64
		case relation.TFloat:
			wc.F64 = col.F64
		case relation.TString:
			wc.Str = col.Str
		case relation.TBool:
			wc.B = col.B
		}
	}
	return out, true
}

// errColDelta reports a malformed columnar frame. Every shape defect is
// detected before any row is materialized, so a hostile or corrupted
// frame surfaces as an error, never a panic or misdecoded delta.
var errColDelta = errors.New("remote: malformed columnar delta")

// fromWireColDelta reconstructs the differential window on a schema,
// validating the frame's shape strictly.
func fromWireColDelta(w *WireColDelta, schema relation.Schema) (*delta.Delta, error) {
	n := len(w.TIDs)
	if len(w.Signs) != n || len(w.TS) != n {
		return nil, fmt.Errorf("%w: %d tids, %d signs, %d ts", errColDelta, n, len(w.Signs), len(w.TS))
	}
	if len(w.Cols) != schema.Len() {
		return nil, fmt.Errorf("%w: %d columns, schema has %d", errColDelta, len(w.Cols), schema.Len())
	}
	for c := range w.Cols {
		wc := &w.Cols[c]
		want := schema.Col(c).Type
		if relation.Type(wc.Type) != want {
			return nil, fmt.Errorf("%w: column %d type %d, schema says %d", errColDelta, c, wc.Type, want)
		}
		var have int
		switch want {
		case relation.TInt:
			have = len(wc.I64)
		case relation.TFloat:
			have = len(wc.F64)
		case relation.TString:
			have = len(wc.Str)
		case relation.TBool:
			have = len(wc.B)
		default:
			return nil, fmt.Errorf("%w: column %d has unknown type %d", errColDelta, c, wc.Type)
		}
		if have != n {
			return nil, fmt.Errorf("%w: column %d has %d rows, want %d", errColDelta, c, have, n)
		}
		if len(wc.Valid) != 0 && len(wc.Valid) < (n+63)/64 {
			return nil, fmt.Errorf("%w: column %d bitmap too short", errColDelta, c)
		}
	}
	for i := 0; i < n; i++ {
		if w.Signs[i] != 1 && w.Signs[i] != -1 {
			return nil, fmt.Errorf("%w: sign[%d] = %d", errColDelta, i, w.Signs[i])
		}
	}

	row := func(i int) []relation.Value {
		vals := make([]relation.Value, len(w.Cols))
		for c := range w.Cols {
			wc := &w.Cols[c]
			if len(wc.Valid) != 0 && wc.Valid[i/64]&(1<<(i%64)) == 0 {
				vals[c] = relation.TypedNull(relation.Type(wc.Type))
				continue
			}
			switch relation.Type(wc.Type) {
			case relation.TInt:
				vals[c] = relation.Int(wc.I64[i])
			case relation.TFloat:
				vals[c] = relation.Float(wc.F64[i])
			case relation.TString:
				vals[c] = relation.Str(wc.Str[i])
			case relation.TBool:
				vals[c] = relation.Bool(wc.B[i])
			}
		}
		return vals
	}

	out := delta.New(schema)
	for i := 0; i < n; {
		tid := relation.TID(w.TIDs[i])
		ts := vclock.Timestamp(w.TS[i])
		var r delta.Row
		switch {
		case w.Signs[i] == -1 && i+1 < n && w.Signs[i+1] == 1 &&
			w.TIDs[i+1] == w.TIDs[i] && w.TS[i+1] == w.TS[i]:
			r = delta.Row{TID: tid, Old: row(i), New: row(i + 1), TS: ts}
			i += 2
		case w.Signs[i] == -1:
			r = delta.Row{TID: tid, Old: row(i), TS: ts}
			i++
		default:
			r = delta.Row{TID: tid, New: row(i), TS: ts}
			i++
		}
		if err := out.Append(r); err != nil {
			return nil, fmt.Errorf("%w: %v", errColDelta, err)
		}
	}
	return out, nil
}

// toWireSchema converts a schema.
func toWireSchema(s relation.Schema) []WireColumn {
	out := make([]WireColumn, s.Len())
	for i := 0; i < s.Len(); i++ {
		c := s.Col(i)
		out[i] = WireColumn{Name: c.Name, Type: int(c.Type)}
	}
	return out
}

// fromWireSchema converts back.
func fromWireSchema(cols []WireColumn) (relation.Schema, error) {
	rc := make([]relation.Column, len(cols))
	for i, c := range cols {
		rc[i] = relation.Column{Name: c.Name, Type: relation.Type(c.Type)}
	}
	return relation.NewSchema(rc...)
}

// toWireRelation converts a relation.
func toWireRelation(r *relation.Relation) *WireRelation {
	out := &WireRelation{
		Columns: toWireSchema(r.Schema()),
		TIDs:    make([]uint64, 0, r.Len()),
		Rows:    make([][]relation.Value, 0, r.Len()),
	}
	for _, t := range r.Tuples() {
		out.TIDs = append(out.TIDs, uint64(t.TID))
		out.Rows = append(out.Rows, t.Values)
	}
	return out
}

// fromWireRelation converts back.
func fromWireRelation(w *WireRelation) (*relation.Relation, error) {
	schema, err := fromWireSchema(w.Columns)
	if err != nil {
		return nil, err
	}
	out := relation.New(schema)
	for i, tid := range w.TIDs {
		if err := out.Insert(relation.Tuple{TID: relation.TID(tid), Values: w.Rows[i]}); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// toWireDelta converts a differential relation.
func toWireDelta(d *delta.Delta) []WireDeltaRow {
	out := make([]WireDeltaRow, 0, d.Len())
	for _, r := range d.Rows() {
		out = append(out, WireDeltaRow{TID: uint64(r.TID), Old: r.Old, New: r.New, TS: r.TS})
	}
	return out
}

// fromWireDelta converts back onto a schema.
func fromWireDelta(rows []WireDeltaRow, schema relation.Schema) (*delta.Delta, error) {
	out := delta.New(schema)
	for _, r := range rows {
		if err := out.Append(delta.Row{TID: relation.TID(r.TID), Old: r.Old, New: r.New, TS: r.TS}); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// countingConn wraps a stream with transfer counters.
type countingConn struct {
	rw    io.ReadWriter
	read  atomic.Int64
	wrote atomic.Int64
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.rw.Read(p)
	c.read.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.rw.Write(p)
	c.wrote.Add(int64(n))
	return n, err
}

// maxFrame bounds a single protocol message. The length prefix is
// validated against it before any allocation, so a peer sending a
// garbage or hostile prefix cannot make the other side allocate
// gigabytes or stall reading a frame that never ends.
const maxFrame = 64 << 20 // 64 MiB

// errFrameTooLarge reports a length prefix beyond maxFrame.
var errFrameTooLarge = errors.New("remote: frame exceeds size limit")

// codec is the framed wire format: each message is a 4-byte big-endian
// length prefix followed by that many bytes of gob payload. The gob
// encoder/decoder pair persists for the life of the connection (type
// descriptors ship once), but framing means a receive error leaves the
// stream at a known boundary and is detectable: truncated frames,
// trailing garbage inside a frame, and oversized prefixes all surface
// as errors instead of silently desyncing later messages. After any
// codec error the connection must be discarded — the owner marks it
// broken and reconnects with a fresh codec.
type codec struct {
	conn   *countingConn
	enc    *gob.Encoder
	encBuf bytes.Buffer // staging area: gob payload of the frame being sent
	dec    *gob.Decoder
	decBuf bytes.Buffer // staging area: gob payload of the frame being decoded
	hdr    [4]byte
}

func newCodec(rw io.ReadWriter) *codec {
	c := &codec{conn: &countingConn{rw: rw}}
	c.enc = gob.NewEncoder(&c.encBuf)
	c.dec = gob.NewDecoder(&c.decBuf)
	return c
}

func (c *codec) send(v any) error {
	c.encBuf.Reset()
	if err := c.enc.Encode(v); err != nil {
		return err
	}
	n := c.encBuf.Len()
	if n > maxFrame {
		return fmt.Errorf("%w: encoding %d bytes", errFrameTooLarge, n)
	}
	binary.BigEndian.PutUint32(c.hdr[:], uint32(n))
	if _, err := c.conn.Write(c.hdr[:]); err != nil {
		return err
	}
	_, err := c.conn.Write(c.encBuf.Bytes())
	return err
}

func (c *codec) recv(v any) error {
	if _, err := io.ReadFull(c.conn, c.hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(c.hdr[:])
	if n > maxFrame {
		return fmt.Errorf("%w: prefix claims %d bytes", errFrameTooLarge, n)
	}
	c.decBuf.Reset()
	if _, err := io.CopyN(&c.decBuf, c.conn, int64(n)); err != nil {
		if err == io.EOF {
			return io.ErrUnexpectedEOF
		}
		return err
	}
	if err := c.dec.Decode(v); err != nil {
		return fmt.Errorf("remote: decode frame: %w", err)
	}
	// One Encode call produced exactly this frame; a non-empty remainder
	// means the stream is desynced or the frame was corrupted.
	if left := c.decBuf.Len(); left != 0 {
		return fmt.Errorf("remote: frame desync: %d trailing bytes", left)
	}
	return nil
}

func (c *codec) bytesRead() int64    { return c.conn.read.Load() }
func (c *codec) bytesWritten() int64 { return c.conn.wrote.Load() }

// errResponse builds an error reply.
func errResponse(err error) Response { return Response{Err: err.Error()} }

// asError converts a reply's Err field.
func (r Response) asError() error {
	if r.Err == "" {
		return nil
	}
	return fmt.Errorf("remote: server: %s", r.Err)
}
