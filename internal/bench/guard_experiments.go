package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/diorama/continual/internal/cq"
	"github.com/diorama/continual/internal/guard"
	"github.com/diorama/continual/internal/obs"
	"github.com/diorama/continual/internal/storage"
	"github.com/diorama/continual/internal/vclock"
	"github.com/diorama/continual/internal/workload"
)

// E19 is the chaos experiment: 10% of the CQ population is poisoned
// (their predicate divides by zero on every evaluated row, so every
// refresh attempt fails) and the healthy rest is measured under bursty
// load in three configurations — a fault-free baseline, faults with the
// quarantine breaker disabled, and faults with the breaker on. The
// claim under test is the guard layer's value proposition: with
// quarantine, healthy CQs' commit-to-notification latency stays at the
// fault-free baseline (the acceptance bound is p99 within 2x) because
// the poison CQs stop consuming refresh attempts after the threshold,
// while the unguarded configuration re-fails every poison CQ on every
// round. Differential catch-up (Section 4) is what makes the skip
// safe — a healed CQ recomputes from lastExec — so quarantine is pure
// shed, not data loss; the byte-identical-transcript half of the
// acceptance is asserted by TestChaosFaultIsolation in internal/cq.
//
// Columns: configuration, commits issued, latency samples, p50/p99
// commit-to-notification latency over healthy witnesses, refresh
// errors absorbed, CQs quarantined at the end, and the goroutine
// delta across the run (leak check).
func E19(scale Scale) (*Table, error) {
	const (
		nTables  = 4
		nCQs     = 40
		nPoison  = 4 // 10% of the population
		nCommits = 30
		pollTick = 50 * time.Millisecond
	)
	batch := scale.BaseRows / 1000
	if batch < 5 {
		batch = 5
	}

	t := &Table{
		ID:    "E19",
		Title: "chaos: healthy-CQ latency with 10% poison CQs, quarantine on/off",
		Note: fmt.Sprintf("%d CQs (%d poisoned) over %d tables, %d bursty commits of %d updates, poll interval %s, seed %d rows/table, host cores %d",
			nCQs, nPoison, nTables, nCommits, batch, pollTick, scale.BaseRows/nTables, runtime.NumCPU()),
		Header: []string{"config", "commits", "samples", "p50 ms", "p99 ms", "errors", "quarantined", "goroutine delta"},
	}
	configs := []struct {
		name      string
		poison    int
		threshold int
	}{
		{"no-faults", 0, 0},               // baseline: guard on, nothing to guard
		{"faults-unguarded", nPoison, -1}, // breaker disabled: every round re-fails
		{"faults-guarded", nPoison, 0},    // breaker on (default threshold 3)
	}
	for _, c := range configs {
		row, err := e19Run(scale, c.name, c.poison, c.threshold, nTables, nCQs, nCommits, batch, pollTick)
		if err != nil {
			return nil, fmt.Errorf("e19 %s: %w", c.name, err)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func e19Run(scale Scale, name string, nPoison, threshold, nTables, nCQs, nCommits, batch int, pollTick time.Duration) ([]string, error) {
	gBefore := runtime.NumGoroutine()
	reg := obs.NewRegistry()
	store := storage.NewStore()
	store.Instrument(reg)
	tableName := func(i int) string { return fmt.Sprintf("stocks%d", i%nTables) }
	gens := make([]*workload.Stocks, nTables)
	for i := 0; i < nTables; i++ {
		if err := store.CreateTable(tableName(i), workload.StockSchema()); err != nil {
			return nil, err
		}
		gens[i] = workload.NewStocks(store, tableName(i), int64(1+i), workload.DefaultMix)
	}

	mgr := cq.NewManagerConfig(store, cq.Config{
		UseDRA:  true,
		AutoGC:  true,
		Metrics: reg,
		Push:    true,
		Guard:   guard.Policy{FailureThreshold: threshold},
		Logf:    func(string, ...any) {}, // poison chatter is the point, not output
	})
	defer func() { _ = mgr.Close() }()

	// Register before seeding: the poison predicate divides by zero on
	// every row it evaluates, so the initial execution must see an
	// empty table — the faults start with the data, like production.
	for i := 0; i < nCQs; i++ {
		def := cq.Def{
			Name: fmt.Sprintf("cq%d", i),
			Query: fmt.Sprintf("SELECT * FROM %s WHERE price > %d",
				tableName(i), 25*(1+i%4)),
		}
		if i < nTables {
			// Healthy witnesses, one per table (the latency probes).
			def.Query = fmt.Sprintf("SELECT * FROM %s WHERE price > 1", tableName(i))
			def.NotifyEmpty = true
		} else if i >= nCQs-nPoison {
			// Poison: price - price is always zero, so the predicate
			// fails evaluation on the first delta row of every refresh.
			def.Query = fmt.Sprintf("SELECT * FROM %s WHERE price / (price - price) > 1", tableName(i))
		}
		if _, err := mgr.Register(def); err != nil {
			return nil, err
		}
	}
	for i := 0; i < nTables; i++ {
		if err := gens[i].Seed(scale.BaseRows / nTables); err != nil {
			return nil, err
		}
	}
	mgr.FlushPush() // absorb the seed burst before probing latency

	// The latency probe, as in E18: commits record their instant under
	// the commit timestamp; each witness notification resolves every
	// recorded commit at or before its ExecTS.
	var probeMu sync.Mutex
	sent := make([]map[vclock.Timestamp]time.Time, nTables)
	var lats []time.Duration
	for i := range sent {
		sent[i] = make(map[vclock.Timestamp]time.Time)
	}
	cancels := make([]func(), 0, nTables)
	for i := 0; i < nTables; i++ {
		table := i
		cancel, err := mgr.SubscribeFunc(fmt.Sprintf("cq%d", table), func(n cq.Notification, closed bool) {
			if closed {
				return
			}
			now := time.Now()
			probeMu.Lock()
			for ts, at := range sent[table] {
				if ts <= n.ExecTS {
					lats = append(lats, now.Sub(at))
					delete(sent[table], ts)
				}
			}
			probeMu.Unlock()
		})
		if err != nil {
			return nil, err
		}
		cancels = append(cancels, cancel)
	}
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()

	if err := mgr.Start(pollTick); err != nil {
		return nil, err
	}
	err := workload.Bursty(10, 130*time.Millisecond).Run(nCommits, func(i int) error {
		table := i % nTables
		if err := gens[table].Batch(batch); err != nil {
			return err
		}
		probeMu.Lock()
		sent[table][store.Now()] = time.Now()
		probeMu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}

	mgr.FlushPush()
	remaining := func() int {
		probeMu.Lock()
		defer probeMu.Unlock()
		n := 0
		for i := range sent {
			n += len(sent[i])
		}
		return n
	}
	deadline := time.Now().Add(4*pollTick + 100*time.Millisecond)
	for time.Now().Before(deadline) && remaining() > 0 {
		time.Sleep(2 * time.Millisecond)
	}
	snap := reg.Snapshot()
	errors := snap.Counter("cq.refresh.errors")
	quarantined := snap.Gauges["cq.health.quarantined"]
	if err := mgr.Close(); err != nil {
		return nil, err
	}

	// Leak check: everything the run started must wind down (the E19
	// acceptance's "zero goroutine leaks"; -race coverage comes from
	// running this experiment in the test suite).
	gAfter := runtime.NumGoroutine()
	for end := time.Now().Add(2 * time.Second); gAfter > gBefore && time.Now().Before(end); {
		time.Sleep(10 * time.Millisecond)
		gAfter = runtime.NumGoroutine()
	}

	sortDurations(lats)
	p50, p99 := time.Duration(0), time.Duration(0)
	if len(lats) > 0 {
		p50 = lats[len(lats)*50/100]
		p99 = lats[min(len(lats)-1, len(lats)*99/100)]
	}
	return []string{
		name,
		fmt.Sprint(nCommits),
		fmt.Sprint(len(lats)),
		fmt.Sprintf("%.2f", float64(p50.Nanoseconds())/1e6),
		fmt.Sprintf("%.2f", float64(p99.Nanoseconds())/1e6),
		fmt.Sprint(errors),
		fmt.Sprint(quarantined),
		fmt.Sprint(gAfter - gBefore),
	}, nil
}
