// Package obs is the engine-wide observability substrate: a
// zero-dependency metrics registry (atomic counters, gauges, windowed
// latency histograms) plus a lightweight span tracer with a ring buffer
// of recent refresh traces.
//
// The design rule is that the hot path costs a few atomic adds and
// nothing else: instruments are looked up by name once, at construction
// time, and the returned handles are updated lock-free afterwards. Every
// handle method is nil-safe — a component built without a registry
// (Config.Metrics == nil) carries nil handles and each update compiles
// to a nil check and a return, so the uninstrumented path can be
// benchmarked against the instrumented one (BenchmarkObsOverhead).
//
// Metric names are dot-separated, prefixed with the owning subsystem:
// dra.terms_evaluated, cq.refresh_ns, storage.delta_len.<table>,
// remote.bytes_out. Histograms conventionally carry a _ns suffix and
// record durations in nanoseconds.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; all methods are nil-safe no-ops on a nil receiver.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (a level, not a rate). The zero
// value is ready to use; all methods are nil-safe no-ops on a nil
// receiver.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current level.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the current level by n (n may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current level (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry is a named collection of instruments. Lookups create the
// instrument on first use and are guarded by a mutex — they belong in
// constructors, not hot paths. A nil *Registry is valid and returns nil
// handles, turning every downstream update into a no-op.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	traces     *TraceLog
}

// DefaultTraceCapacity is the ring size of a registry's trace log.
const DefaultTraceCapacity = 64

// NewRegistry creates an empty registry with a trace log of
// DefaultTraceCapacity recent spans.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		traces:     NewTraceLog(DefaultTraceCapacity),
	}
}

// Counter returns the named counter, creating it if needed. Returns nil
// (a no-op handle) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed. Returns nil (a
// no-op handle) on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed. Returns
// nil (a no-op handle) on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram()
		r.histograms[name] = h
	}
	return h
}

// Traces returns the registry's trace log (nil on a nil registry; a nil
// *TraceLog is itself a valid no-op tracer).
func (r *Registry) Traces() *TraceLog {
	if r == nil {
		return nil
	}
	return r.traces
}

// Snapshot captures a point-in-time view of every instrument. Safe to
// call concurrently with updates; counters and gauges are read
// atomically, histogram quantiles are computed over the current sample
// window. A nil registry yields an empty (non-nil-map) snapshot.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramStat{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		histograms[k] = v
	}
	r.mu.Unlock()

	for k, c := range counters {
		snap.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		snap.Gauges[k] = g.Value()
	}
	for k, h := range histograms {
		snap.Histograms[k] = h.Stat()
	}
	return snap
}

// Names returns the sorted instrument names currently registered, for
// tests and debugging.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for k := range r.counters {
		names = append(names, k)
	}
	for k := range r.gauges {
		names = append(names, k)
	}
	for k := range r.histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
