package faults

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// echoServer accepts connections from ln and echoes bytes until the conn
// dies. Returns a stop function.
func echoServer(t *testing.T, ln net.Listener) func() {
	t.Helper()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer conn.Close()
				_, _ = io.Copy(conn, conn)
			}()
		}
	}()
	return func() { _ = ln.Close(); wg.Wait() }
}

func listen(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

func TestCleanPassThrough(t *testing.T) {
	inj := NewInjector(Plan{Seed: 1})
	ln := listen(t)
	stop := echoServer(t, inj.WrapListener(ln))
	defer stop()

	conn, err := inj.Dialer(nil)(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("hello")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("echo = %q", got)
	}
	if st := inj.Stats(); st.Drops != 0 || st.PartialWrites != 0 {
		t.Errorf("clean plan injected faults: %+v", st)
	}
}

func TestDropAfterOpsIsDeterministic(t *testing.T) {
	// The connection must complete exactly N ops, then die.
	inj := NewInjector(Plan{Seed: 7, DropAfterOps: 2})
	ln := listen(t)
	stop := echoServer(t, ln) // faults injected client-side only
	defer stop()

	conn, err := inj.Dialer(nil)(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	buf := make([]byte, 1)
	if _, err := conn.Write([]byte("a")); err != nil { // op 1
		t.Fatalf("op1: %v", err)
	}
	if _, err := io.ReadFull(conn, buf); err != nil { // op 2
		t.Fatalf("op2: %v", err)
	}
	if _, err := conn.Write([]byte("b")); err == nil { // op 3: dead
		t.Fatal("op3 should have been dropped")
	} else if !errors.Is(err, ErrInjected) {
		t.Fatalf("op3 err = %v, want ErrInjected", err)
	}
	// Every later op fails too: the conn stays dead.
	if _, err := conn.Read(buf); !errors.Is(err, ErrInjected) {
		t.Errorf("post-kill read err = %v", err)
	}
	if st := inj.Stats(); st.Drops != 1 {
		t.Errorf("drops = %d, want 1", st.Drops)
	}
}

func TestSeededScheduleIsReproducible(t *testing.T) {
	// Two injectors with the same seed and plan make identical decisions
	// for the same op sequence.
	run := func(seed int64) []bool {
		inj := NewInjector(Plan{Seed: seed, DropProb: 0.3})
		fates := make([]bool, 0, 64)
		for op := 0; op < 64; op++ {
			fates = append(fates, inj.decide(op, op%2 == 0).drop)
		}
		return fates
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged: %v vs %v", i, a[i], b[i])
		}
	}
	// And a different seed gives a different stream (with overwhelming
	// probability over 64 draws at p=0.3).
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical 64-op schedules")
	}
}

func TestPartialWriteDeliversPrefixThenKills(t *testing.T) {
	inj := NewInjector(Plan{Seed: 3, PartialWriteProb: 1})
	client, server := net.Pipe()
	defer server.Close()
	fc := inj.WrapConn(client)

	msg := []byte("0123456789")
	errc := make(chan error, 1)
	nc := make(chan int, 1)
	go func() {
		n, err := fc.Write(msg)
		nc <- n
		errc <- err
	}()
	got := make([]byte, len(msg))
	n, _ := server.Read(got)
	wn, werr := <-nc, <-errc
	if !errors.Is(werr, ErrInjected) {
		t.Fatalf("write err = %v, want ErrInjected", werr)
	}
	if wn != len(msg)/2 || n != len(msg)/2 {
		t.Errorf("delivered %d (reported %d), want %d", n, wn, len(msg)/2)
	}
	if st := inj.Stats(); st.PartialWrites != 1 {
		t.Errorf("partial writes = %d", st.PartialWrites)
	}
}

func TestChunkedWritesStayIntact(t *testing.T) {
	inj := NewInjector(Plan{Seed: 5, ChunkWrites: 3})
	client, server := net.Pipe()
	defer server.Close()
	fc := inj.WrapConn(client)

	msg := bytes.Repeat([]byte("abcdefg"), 10)
	go func() {
		if _, err := fc.Write(msg); err != nil {
			t.Errorf("chunked write: %v", err)
		}
		fc.Close()
	}()
	got, err := io.ReadAll(server)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("chunked payload corrupted: %d vs %d bytes", len(got), len(msg))
	}
}

func TestPartitionAndHeal(t *testing.T) {
	inj := NewInjector(Plan{Seed: 9})
	ln := listen(t)
	stop := echoServer(t, inj.WrapListener(ln))
	defer stop()
	dial := inj.Dialer(nil)

	conn, err := dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	inj.Partition()
	// Live conn was severed.
	if _, err := conn.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Errorf("write on partitioned conn: %v", err)
	}
	// New dials are refused.
	if _, err := dial(ln.Addr().String()); !errors.Is(err, ErrPartitioned) {
		t.Errorf("dial during partition: %v", err)
	}
	if !inj.Partitioned() {
		t.Error("Partitioned() = false during partition")
	}
	inj.Heal()
	conn2, err := dial(ln.Addr().String())
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	defer conn2.Close()
	if _, err := conn2.Write([]byte("y")); err != nil {
		t.Errorf("write after heal: %v", err)
	}
	// Both ends of the pre-partition conn are injector-wrapped (dialer
	// side and listener side), so the partition severs two conns.
	st := inj.Stats()
	if st.Kills != 2 || st.DialsRefused == 0 {
		t.Errorf("stats after partition = %+v", st)
	}
}

func TestKillActiveSeversLiveConns(t *testing.T) {
	inj := NewInjector(Plan{Seed: 11})
	ln := listen(t)
	stop := echoServer(t, ln)
	defer stop()
	dial := inj.Dialer(nil)

	c1, err := dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c2, err := dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	inj.KillActive()
	for i, c := range []net.Conn{c1, c2} {
		if _, err := c.Write([]byte("x")); err == nil {
			t.Errorf("conn %d survived KillActive", i)
		}
	}
	// The network itself is fine: a fresh dial works.
	c3, err := dial(ln.Addr().String())
	if err != nil {
		t.Fatalf("dial after KillActive: %v", err)
	}
	defer c3.Close()
	if _, err := c3.Write([]byte("x")); err != nil {
		t.Errorf("fresh conn after KillActive: %v", err)
	}
}

func TestDelayAddsLatency(t *testing.T) {
	inj := NewInjector(Plan{Seed: 13, Delay: 20 * time.Millisecond})
	client, server := net.Pipe()
	defer server.Close()
	fc := inj.WrapConn(client)
	go func() {
		buf := make([]byte, 1)
		_, _ = server.Read(buf)
	}()
	start := time.Now()
	if _, err := fc.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Errorf("write took %v, want >= 20ms", d)
	}
	if st := inj.Stats(); st.Delays != 1 {
		t.Errorf("delays = %d", st.Delays)
	}
}
