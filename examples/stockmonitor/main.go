// Stockmonitor reproduces query Q3 from the paper's introduction: "show
// the IBM stock transactions that differ by more than $5 from $75 per
// share" — an epsilon-style continual query over a simulated ticker.
//
// A feed source plays the role of the exchange; the monitor registers two
// continual queries:
//
//   - q3: SELECT over the IBM transactions whose price is more than $5
//     away from $75, refreshed on every batch;
//   - swing: an epsilon-triggered query over the running IBM volume that
//     only refreshes when at least 10,000 shares of unseen volume
//     accumulate.
package main

import (
	"fmt"
	"log"
	"math/rand"

	continual "github.com/diorama/continual"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	db := continual.Open()
	defer func() { _ = db.Close() }()

	ticker, err := db.NewFeed("transactions",
		continual.Column{Name: "sym", Type: continual.String},
		continual.Column{Name: "price", Type: continual.Float},
		continual.Column{Name: "shares", Type: continual.Int},
	)
	if err != nil {
		return err
	}

	// Q3: IBM transactions differing by more than $5 from $75.
	q3, err := db.Register("q3",
		`SELECT sym, price, shares FROM transactions
		 WHERE sym = 'IBM' AND ABS(price - 75) > 5`)
	if err != nil {
		return err
	}

	// Volume swing monitor with an epsilon trigger: refresh only when at
	// least 10k shares of unseen IBM volume accumulate.
	swing, err := db.Register("swing",
		`SELECT SUM(shares) AS volume FROM transactions WHERE sym = 'IBM'`,
		continual.TriggerEpsilon(10_000, "shares"),
		continual.EpsilonAbsolute(),
		continual.WithMode(continual.Complete))
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(42))
	syms := []string{"IBM", "DEC", "MAC", "QLI"}
	for batch := 1; batch <= 8; batch++ {
		for i := 0; i < 20; i++ {
			sym := syms[rng.Intn(len(syms))]
			price := 60 + rng.Float64()*30 // 60..90: some breach the $5 band
			shares := int64(100 + rng.Intn(2000))
			if err := ticker.Push(sym, price, shares); err != nil {
				return err
			}
		}
		if _, err := db.Pump(); err != nil {
			return err
		}
		db.Poll()

		drained := false
		for !drained {
			select {
			case c := <-q3.Updates():
				fmt.Printf("[q3] batch %d: %d new matching IBM transactions\n", batch, len(c.Inserted))
				for _, row := range c.Inserted {
					fmt.Printf("       %s @ %.2f x %d\n", row[0], row[1], row[2])
				}
			case c := <-swing.Updates():
				if len(c.Complete) > 0 {
					fmt.Printf("[swing] batch %d: IBM volume now %v (epsilon fired)\n", batch, c.Complete[0][0])
				}
			default:
				drained = true
			}
		}
	}

	final, err := q3.Result()
	if err != nil {
		return err
	}
	fmt.Printf("q3 final result: %d IBM transactions outside the $70-$80 band\n", final.Len())
	return nil
}
