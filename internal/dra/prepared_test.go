package dra

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/diorama/continual/internal/algebra"
	"github.com/diorama/continual/internal/obs"
	"github.com/diorama/continual/internal/relation"
)

// stepPrepared runs one prepared refresh with the full protocol the cq
// manager uses — change-counter snapshot BEFORE the execution timestamp
// — maintains the complete result, and asserts it against full
// re-evaluation. prev is consumed (mutated); f.lastTS advances to the
// execution timestamp, so consecutive calls exercise the cache's
// primary (ts) validation tier.
func stepPrepared(t *testing.T, f *fixture, p *Prepared, prev *relation.Relation) (*Result, *relation.Relation) {
	t.Helper()
	versions := f.store.ChangeCounts()
	execTS := f.store.Now()
	ctx := f.ctx(t)
	ctx.Prev = prev
	ctx.Versions = versions
	res, err := p.Step(ctx, execTS)
	if err != nil {
		t.Fatalf("Step: %v", err)
	}
	complete := res.ApplyTo(prev)
	want, err := algebra.NewExecutor(f.store.Live()).Execute(p.plan)
	if err != nil {
		t.Fatal(err)
	}
	if !complete.EqualByTID(want) {
		t.Fatalf("prepared %v result diverges from full re-evaluation.\nprepared:\n%s\nfull:\n%s",
			p.Strategy(), complete, want)
	}
	f.lastTS = execTS
	return res, complete
}

// TestPreparedStrategyEquivalenceProperty extends the package's central
// theorem check to the prepared pipeline: over random multi-table
// histories and SPJ query shapes, every refresh strategy — cached truth
// table, incremental replicas, propagate, and the adaptive auto picker —
// must produce exactly the complete re-evaluation result, round after
// round against the SAME long-lived Prepared (so cross-refresh cache
// state is actually exercised).
func TestPreparedStrategyEquivalenceProperty(t *testing.T) {
	queries := []string{
		"SELECT * FROM r WHERE a > 100",
		"SELECT s1, a FROM r WHERE a > 50 AND s1 != 'k0'",
		"SELECT * FROM r JOIN u ON r.s1 = u.s2",
		"SELECT r.s1, u.b FROM r JOIN u ON r.s1 = u.s2 WHERE r.a > 80",
		"SELECT * FROM r, u WHERE r.s1 = u.s2 AND u.b < 150 AND r.a > 20",
		"SELECT * FROM r JOIN u ON r.s1 = u.s2 JOIN w ON u.x = w.x WHERE w.c > 10",
		"SELECT r.a, w.c FROM r JOIN u ON r.s1 = u.s2 JOIN w ON u.x = w.x",
	}
	strategies := []Strategy{StrategyAuto, StrategyTruthTable, StrategyIncremental, StrategyPropagate}

	rSchema := relation.MustSchema(
		relation.Column{Name: "s1", Type: relation.TString},
		relation.Column{Name: "a", Type: relation.TFloat},
	)
	uSchema := relation.MustSchema(
		relation.Column{Name: "s2", Type: relation.TString},
		relation.Column{Name: "b", Type: relation.TFloat},
		relation.Column{Name: "x", Type: relation.TInt},
	)
	wSchema := relation.MustSchema(
		relation.Column{Name: "x", Type: relation.TInt},
		relation.Column{Name: "c", Type: relation.TFloat},
	)

	for qi, q := range queries {
		for _, strat := range strategies {
			t.Run(fmt.Sprintf("q%d_%v", qi, strat), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(qi*1000) + int64(strat)))
				f := newFixture(t, map[string]relation.Schema{"r": rSchema, "u": uSchema, "w": wSchema})
				live := liveSet{}
				applyRandomBatch(t, f, rng, live, 10, 3)

				plan := f.plan(t, q)
				e := NewEngine()
				p, err := e.Prepare(plan, strat)
				if err != nil {
					if strat == StrategyIncremental && !incrementalEligible(plan) {
						t.Skip("plan has no join; incremental strategy is rightly refused")
					}
					t.Fatal(err)
				}
				defer p.Close()

				prev, err := InitialResult(plan, f.store.Live())
				if err != nil {
					t.Fatal(err)
				}
				f.mark()

				for round := 0; round < 12; round++ {
					applyRandomBatch(t, f, rng, live, 1+rng.Intn(3), 1+rng.Intn(4))
					_, complete := stepPrepared(t, f, p, prev)
					prev = complete
				}
			})
		}
	}
}

// TestPreparedCacheHitsAcrossRefreshes is the tentpole's payoff check:
// consecutive refreshes of the same prepared join serve unchanged
// operand pre-states from the cross-refresh cache (hits), instead of
// re-executing them against a historical snapshot per refresh (the
// transient path, all misses).
func TestPreparedCacheHitsAcrossRefreshes(t *testing.T) {
	tradeSchema := relation.MustSchema(
		relation.Column{Name: "sym", Type: relation.TString},
		relation.Column{Name: "volume", Type: relation.TInt},
	)
	f := newFixture(t, map[string]relation.Schema{"stocks": stockSchema(), "trades": tradeSchema})
	f.insert(t, "stocks", sv("DEC", 150), sv("IBM", 75), sv("MAC", 117))
	f.insert(t, "trades",
		[]relation.Value{relation.Str("DEC"), relation.Int(10)},
		[]relation.Value{relation.Str("IBM"), relation.Int(20)},
	)
	plan := f.plan(t, "SELECT s.name, t.volume FROM stocks s JOIN trades t ON s.name = t.sym")
	e := NewEngine()
	p, err := e.Prepare(plan, StrategyTruthTable)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	prev, _ := InitialResult(plan, f.store.Live())
	f.mark()

	// First refresh: only trades changed; the stocks pre-state must be
	// built once (miss).
	f.insert(t, "trades", []relation.Value{relation.Str("MAC"), relation.Int(5)})
	res1, complete := stepPrepared(t, f, p, prev)
	if res1.Stats.IndexCacheHits != 0 {
		t.Errorf("first refresh hits = %d, want 0 (cold cache)", res1.Stats.IndexCacheHits)
	}
	if res1.Stats.IndexCacheMisses == 0 {
		t.Error("first refresh should record the replica/index builds as misses")
	}

	// Second refresh, trades again: the stocks replica is exactly the
	// one advanced last round — a hit, with zero pre-state scanning.
	f.insert(t, "trades", []relation.Value{relation.Str("DEC"), relation.Int(7)})
	res2, _ := stepPrepared(t, f, p, complete)
	if res2.Stats.IndexCacheHits == 0 {
		t.Error("second refresh should hit the operand cache")
	}
	if res2.Stats.PreTuplesScanned != 0 {
		t.Errorf("second refresh scanned %d pre tuples, want 0 (served from cache)", res2.Stats.PreTuplesScanned)
	}
}

// TestPreparedCacheVersionRevalidation exercises the secondary
// validation tier: when refreshes are not consecutive (the replica's ts
// lags LastTS), an unchanged per-table change counter must still prove
// the replica current — and a changed counter must force a rebuild, even
// if the operand's delta window happens to be empty for the join's key
// range.
func TestPreparedCacheVersionRevalidation(t *testing.T) {
	tradeSchema := relation.MustSchema(
		relation.Column{Name: "sym", Type: relation.TString},
		relation.Column{Name: "volume", Type: relation.TInt},
	)
	f := newFixture(t, map[string]relation.Schema{
		"stocks": stockSchema(), "trades": tradeSchema, "other": stockSchema(),
	})
	f.insert(t, "stocks", sv("DEC", 150), sv("IBM", 75))
	f.insert(t, "trades", []relation.Value{relation.Str("DEC"), relation.Int(10)})
	plan := f.plan(t, "SELECT s.name, t.volume FROM stocks s JOIN trades t ON s.name = t.sym")
	e := NewEngine()
	e.SkipIrrelevant = false // force evaluation so the cache is consulted
	p, err := e.Prepare(plan, StrategyTruthTable)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	prev, _ := InitialResult(plan, f.store.Live())
	f.mark()

	// Warm the cache.
	f.insert(t, "trades", []relation.Value{relation.Str("IBM"), relation.Int(3)})
	_, complete := stepPrepared(t, f, p, prev)

	// Advance time with commits to an UNRELATED table, then refresh
	// with a gap: lastTS moves past the replicas' ts, so only the
	// change counter can validate them.
	f.insert(t, "other", sv("noise", 1))
	f.mark() // deliberate gap: replicas' ts != new LastTS
	f.insert(t, "trades", []relation.Value{relation.Str("DEC"), relation.Int(9)})
	res, complete := stepPrepared(t, f, p, complete)
	if res.Stats.IndexCacheHits == 0 {
		t.Error("unchanged stocks counter across the gap should revalidate the replica")
	}

	// Now touch stocks inside a gap: the counter differs, the replica
	// must be rebuilt (miss), and the result must stay exact.
	f.insert(t, "stocks", sv("NEW", 200))
	f.mark()
	f.insert(t, "trades", []relation.Value{relation.Str("NEW"), relation.Int(4)})
	res2, _ := stepPrepared(t, f, p, complete)
	if res2.Stats.IndexCacheMisses == 0 {
		t.Error("changed stocks counter must force a replica rebuild")
	}
}

// TestPrepareForcedStrategyErrors: a forced strategy the plan cannot run
// is a loud error at preparation, never a silent demotion.
func TestPrepareForcedStrategyErrors(t *testing.T) {
	f := newFixture(t, map[string]relation.Schema{"stocks": stockSchema()})
	f.insert(t, "stocks", sv("DEC", 150))
	selPlan := f.plan(t, "SELECT * FROM stocks WHERE price > 100")
	aggPlan := f.plan(t, "SELECT MIN(price) AS m FROM stocks")
	e := NewEngine()

	if _, err := e.Prepare(selPlan, StrategyIncremental); err == nil {
		t.Error("incremental on a joinless plan must error")
	}
	if _, err := e.Prepare(aggPlan, StrategyTruthTable); err == nil {
		t.Error("truth table on a non-SPJ plan must error")
	}
	p, err := e.Prepare(aggPlan, StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Strategy() != StrategyPropagate {
		t.Errorf("auto on non-SPJ = %v, want propagate", p.Strategy())
	}
}

// TestPreparedAdaptiveRepick drives the cost model both ways: a large
// equi-joined base with small deltas graduates from the initial truth
// table to incremental replicas, while churn rewriting most of the base
// every round forces propagate.
func TestPreparedAdaptiveRepick(t *testing.T) {
	tradeSchema := relation.MustSchema(
		relation.Column{Name: "sym", Type: relation.TString},
		relation.Column{Name: "volume", Type: relation.TInt},
	)
	t.Run("to_incremental", func(t *testing.T) {
		f := newFixture(t, map[string]relation.Schema{"stocks": stockSchema(), "trades": tradeSchema})
		var stocks, trades [][]relation.Value
		for i := 0; i < 64; i++ {
			stocks = append(stocks, sv(fmt.Sprintf("S%d", i), float64(i)))
			trades = append(trades, []relation.Value{relation.Str(fmt.Sprintf("S%d", i)), relation.Int(int64(i))})
		}
		f.insert(t, "stocks", stocks...)
		f.insert(t, "trades", trades...)
		plan := f.plan(t, "SELECT s.name, t.volume FROM stocks s JOIN trades t ON s.name = t.sym")
		e := NewEngine()
		p, err := e.Prepare(plan, StrategyAuto)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		if p.Strategy() != StrategyTruthTable {
			t.Fatalf("initial auto strategy = %v, want truth-table", p.Strategy())
		}
		prev, _ := InitialResult(plan, f.store.Live())
		f.mark()
		for i := 0; i < 2*repickEvery; i++ {
			f.insert(t, "trades", []relation.Value{relation.Str(fmt.Sprintf("S%d", i%64)), relation.Int(999)})
			_, complete := stepPrepared(t, f, p, prev)
			prev = complete
		}
		if p.Strategy() != StrategyIncremental {
			t.Errorf("after %d small-delta refreshes over a %d-row base: strategy = %v, want incremental",
				2*repickEvery, 2*64, p.Strategy())
		}
	})
	t.Run("to_propagate", func(t *testing.T) {
		f := newFixture(t, map[string]relation.Schema{"stocks": stockSchema()})
		tids := f.insert(t, "stocks", sv("A", 1), sv("B", 2), sv("C", 3), sv("D", 4))
		plan := f.plan(t, "SELECT * FROM stocks WHERE price >= 0")
		e := NewEngine()
		p, err := e.Prepare(plan, StrategyAuto)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		prev, _ := InitialResult(plan, f.store.Live())
		f.mark()
		for i := 0; i < 2*repickEvery; i++ {
			// Rewrite the whole base every round: delta/base ratio 1.
			tx := f.store.Begin()
			for _, tid := range tids {
				if err := tx.Update("stocks", tid, sv(fmt.Sprintf("R%d", i), float64(i))); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			_, complete := stepPrepared(t, f, p, prev)
			prev = complete
		}
		if p.Strategy() != StrategyPropagate {
			t.Errorf("after full-rewrite rounds: strategy = %v, want propagate", p.Strategy())
		}
	})
}

// TestPreparedStrategyGauges: preparation, re-picks, and Close keep the
// per-strategy gauges consistent with the set of live prepared plans.
func TestPreparedStrategyGauges(t *testing.T) {
	f := newFixture(t, map[string]relation.Schema{"stocks": stockSchema()})
	f.insert(t, "stocks", sv("DEC", 150))
	plan := f.plan(t, "SELECT * FROM stocks WHERE price > 100")
	reg := obs.NewRegistry()
	e := NewEngine()
	e.Instrument(reg)

	p, err := e.Prepare(plan, StrategyAuto)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Gauge("dra.strategy.truth_table").Value(); got != 1 {
		t.Errorf("truth_table gauge after prepare = %d, want 1", got)
	}
	p.Close()
	if got := reg.Gauge("dra.strategy.truth_table").Value(); got != 0 {
		t.Errorf("truth_table gauge after close = %d, want 0", got)
	}
	// Closing twice must not double-decrement.
	p.Close()
	if got := reg.Gauge("dra.strategy.truth_table").Value(); got != 0 {
		t.Errorf("truth_table gauge after double close = %d, want 0", got)
	}
}

// TestPlanFingerprintDistinguishesPlans: the fingerprint is stable for
// one plan and separates different shapes and schemas.
func TestPlanFingerprintDistinguishesPlans(t *testing.T) {
	f := newFixture(t, map[string]relation.Schema{"stocks": stockSchema()})
	p1 := f.plan(t, "SELECT * FROM stocks WHERE price > 100")
	p1again := f.plan(t, "SELECT * FROM stocks WHERE price > 100")
	p2 := f.plan(t, "SELECT * FROM stocks WHERE price > 200")
	if algebra.PlanFingerprint(p1) != algebra.PlanFingerprint(p1again) {
		t.Error("same query must fingerprint identically")
	}
	if algebra.PlanFingerprint(p1) == algebra.PlanFingerprint(p2) {
		t.Error("different predicates must fingerprint differently")
	}
}
