package wal_test

import (
	"errors"
	"fmt"
	"testing"

	"github.com/diorama/continual/internal/delta"
	"github.com/diorama/continual/internal/faults"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/vclock"
	"github.com/diorama/continual/internal/wal"
)

func txRow(table string, tid uint64, ts uint64, name string) wal.TxRow {
	return wal.TxRow{Table: table, Row: delta.Row{
		TID: relation.TID(tid),
		TS:  vclock.Timestamp(ts),
		New: []relation.Value{relation.Str(name)},
	}}
}

// appendWorkload logs n single-row transactions and returns their names.
func appendWorkload(t *testing.T, l *wal.Log, n int) []string {
	t.Helper()
	names := make([]string, 0, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("row-%03d", i)
		if err := l.AppendTx(vclock.Timestamp(i+1), []wal.TxRow{txRow("stocks", uint64(i+1), uint64(i+1), name)}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		names = append(names, name)
	}
	return names
}

// scanNames replays a directory and extracts the tx row names in order.
func scanNames(t *testing.T, fs wal.FS, dir string) (*wal.ScanResult, []string) {
	t.Helper()
	var names []string
	res, err := wal.Scan(fs, dir, nil, func(rec *wal.Record) error {
		if rec.Kind == wal.KindTx {
			for _, r := range rec.Rows {
				names = append(names, r.Row.New[0].AsString())
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	return res, names
}

func TestLogAppendScanRoundTripOSFS(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(dir, wal.Options{Fsync: wal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	want := appendWorkload(t, l, 10)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	res, got := scanNames(t, nil, dir)
	if res.Checkpoint != nil || res.Torn != 0 {
		t.Fatalf("unexpected scan result %+v", res)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("replay mismatch:\n got %v\nwant %v", got, want)
	}
}

func TestRotateSplitsSegments(t *testing.T) {
	fs := faults.NewMemFS(1)
	l, err := wal.Open("wal", wal.Options{FS: fs, Fsync: wal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendWorkload(t, l, 3)
	seg, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if seg != 1 {
		t.Fatalf("rotate returned segment %d, want 1", seg)
	}
	if err := l.AppendTx(100, []wal.TxRow{txRow("stocks", 99, 100, "post-rotate")}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	res, got := scanNames(t, fs, "wal")
	if len(got) != 4 || got[3] != "post-rotate" {
		t.Fatalf("replay across rotation: %v (result %+v)", got, res)
	}
}

// TestTornTailSweep arms a kill-point at every write boundary of a fixed
// workload; after each crash, recovery must replay a clean prefix of the
// acknowledged transactions and flag at most torn tails — never an error,
// never reordered or phantom records.
func TestTornTailSweep(t *testing.T) {
	const rows = 8
	// Clean run to learn the write count.
	clean := faults.NewMemFS(0)
	l, err := wal.Open("wal", wal.Options{FS: clean, Fsync: wal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendWorkload(t, l, rows)
	l.Close()
	total := clean.Writes()

	for kill := 1; kill <= total; kill++ {
		fs := faults.NewMemFS(int64(kill))
		fs.KillAfterWrites(kill)
		l, err := wal.Open("wal", wal.Options{FS: fs, Fsync: wal.FsyncAlways})
		if err != nil {
			if !errors.Is(err, faults.ErrCrashed) {
				t.Fatalf("kill %d: open: %v", kill, err)
			}
			fs.Crash()
			res, got := scanNames(t, fs, "wal")
			if len(got) != 0 {
				t.Fatalf("kill %d: records from crashed open: %v (%+v)", kill, got, res)
			}
			continue
		}
		acked := 0
		for i := 0; i < rows; i++ {
			name := fmt.Sprintf("row-%03d", i)
			err := l.AppendTx(vclock.Timestamp(i+1), []wal.TxRow{txRow("stocks", uint64(i+1), uint64(i+1), name)})
			if err != nil {
				break
			}
			acked++
		}
		fs.Crash()
		_, got := scanNames(t, fs, "wal")
		// Prefix property: replayed records are exactly row-000..row-k.
		for i, name := range got {
			if want := fmt.Sprintf("row-%03d", i); name != want {
				t.Fatalf("kill %d: replay out of order at %d: %v", kill, i, got)
			}
		}
		// With fsync=always every acknowledged append must survive. One
		// extra record may survive beyond acked: the write completed into
		// the cache and the crash flushed it — allowed, it was simply
		// never acknowledged.
		if len(got) < acked || len(got) > acked+1 {
			t.Fatalf("kill %d: %d acked but %d replayed", kill, acked, len(got))
		}
	}
}

func makeCheckpoint(seg uint64) *wal.Checkpoint {
	schema := relation.MustSchema(relation.Column{Name: "name", Type: relation.TString})
	return &wal.Checkpoint{
		Seg:     seg,
		TS:      17,
		NextTID: 40,
		Tables: []wal.TableState{{
			Name:   "stocks",
			Schema: schema,
			Tuples: []relation.Tuple{
				{TID: 1, Values: []relation.Value{relation.Str("row-000")}},
				{TID: 2, Values: []relation.Value{relation.Str("row-001")}},
			},
			DeltaRows: []delta.Row{{TID: 2, TS: 16, New: []relation.Value{relation.Str("row-001")}}},
			LowWater:  9,
			Version:   2,
		}},
		CQs: []wal.CQEntry{{Name: "q", Query: "SELECT * FROM stocks", TriggerKind: 3, TriggerUpdates: 1, Mode: 1, Seq: 2, LastExec: 16}},
	}
}

func TestCheckpointCutAndReplay(t *testing.T) {
	fs := faults.NewMemFS(2)
	l, err := wal.Open("wal", wal.Options{FS: fs, Fsync: wal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendWorkload(t, l, 4) // pre-cut: covered by the checkpoint
	seg, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WriteCheckpoint(makeCheckpoint(seg)); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendTx(50, []wal.TxRow{txRow("stocks", 50, 50, "tail-0")}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	res, got := scanNames(t, fs, "wal")
	if res.Checkpoint == nil {
		t.Fatal("no checkpoint recovered")
	}
	ck := res.Checkpoint
	if ck.Seg != seg || ck.TS != 17 || ck.NextTID != 40 {
		t.Fatalf("checkpoint header: %+v", ck)
	}
	if len(ck.Tables) != 1 || ck.Tables[0].Name != "stocks" || ck.Tables[0].Version != 2 ||
		ck.Tables[0].LowWater != 9 || len(ck.Tables[0].Tuples) != 2 || len(ck.Tables[0].DeltaRows) != 1 {
		t.Fatalf("checkpoint table: %+v", ck.Tables)
	}
	if len(ck.CQs) != 1 || ck.CQs[0].Name != "q" || ck.CQs[0].Seq != 2 {
		t.Fatalf("checkpoint cqs: %+v", ck.CQs)
	}
	// Only the tail past the cut replays — this is the property E17
	// measures as "recovery replays only the WAL tail".
	if len(got) != 1 || got[0] != "tail-0" {
		t.Fatalf("tail replay: %v", got)
	}
}

func TestCheckpointGCKeepsTwo(t *testing.T) {
	fs := faults.NewMemFS(3)
	l, err := wal.Open("wal", wal.Options{FS: fs, Fsync: wal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.AppendTx(vclock.Timestamp(100+i), []wal.TxRow{txRow("stocks", uint64(100+i), uint64(100+i), fmt.Sprintf("gen-%d", i))}); err != nil {
			t.Fatal(err)
		}
		seg, err := l.Rotate()
		if err != nil {
			t.Fatal(err)
		}
		if err := l.WriteCheckpoint(makeCheckpoint(seg)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	names, err := fs.List("wal")
	if err != nil {
		t.Fatal(err)
	}
	ckpts, segs := 0, 0
	for _, n := range names {
		switch {
		case len(n) > 5 && n[:5] == "check":
			ckpts++
		case len(n) > 4 && n[:4] == "wal-":
			segs++
		}
	}
	if ckpts != 2 {
		t.Fatalf("gc kept %d checkpoints, want 2 (%v)", ckpts, names)
	}
	// Segments before the older surviving checkpoint's cut are gone.
	if segs > 3 {
		t.Fatalf("gc kept %d segments (%v)", segs, names)
	}
	if res, _ := scanNames(t, fs, "wal"); res.Checkpoint == nil || res.Checkpoint.Seg != 3 {
		t.Fatalf("newest checkpoint not recovered: %+v", res.Checkpoint)
	}
}

// TestCheckpointCrashFallsBack kills the filesystem at every write
// boundary inside a WriteCheckpoint; recovery must come up with either
// the previous checkpoint or the new one — never nothing, never an error.
func TestCheckpointCrashFallsBack(t *testing.T) {
	build := func(fs *faults.MemFS) (*wal.Log, uint64) {
		l, err := wal.Open("wal", wal.Options{FS: fs, Fsync: wal.FsyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		appendWorkload(t, l, 2)
		seg, err := l.Rotate()
		if err != nil {
			t.Fatal(err)
		}
		if err := l.WriteCheckpoint(makeCheckpoint(seg)); err != nil {
			t.Fatal(err)
		}
		return l, seg
	}

	clean := faults.NewMemFS(0)
	l, _ := build(clean)
	before := clean.Writes()
	seg2, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WriteCheckpoint(makeCheckpoint(seg2)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	ckptWrites := clean.Writes() - before

	for kill := 1; kill <= ckptWrites; kill++ {
		fs := faults.NewMemFS(int64(1000 + kill))
		l, firstSeg := build(fs)
		fs.KillAfterWrites(kill) // fire inside the second rotate+checkpoint
		var second uint64
		if s, err := l.Rotate(); err == nil {
			second = s
			l.WriteCheckpoint(makeCheckpoint(s)) // may fail at the kill-point
		}
		fs.Crash()
		res, err := wal.Scan(fs, "wal", nil, func(*wal.Record) error { return nil })
		if err != nil {
			t.Fatalf("kill %d: scan: %v", kill, err)
		}
		if res.Checkpoint == nil {
			t.Fatalf("kill %d: no checkpoint survived", kill)
		}
		if got := res.Checkpoint.Seg; got != firstSeg && got != second {
			t.Fatalf("kill %d: recovered checkpoint seg %d, want %d or %d", kill, got, firstSeg, second)
		}
	}
}

func TestFsyncNeverLosesUnsynced(t *testing.T) {
	fs := faults.NewMemFS(4)
	l, err := wal.Open("wal", wal.Options{FS: fs, Fsync: wal.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendWorkload(t, l, 5)
	// Power loss with nothing flushed: everything pending is dropped.
	fs.CrashClean()
	res, got := scanNames(t, fs, "wal")
	if len(got) != 0 {
		t.Fatalf("unsynced records survived a clean-loss crash: %v (%+v)", got, res)
	}
}

func TestBrokenLogIsSticky(t *testing.T) {
	fs := faults.NewMemFS(5)
	l, err := wal.Open("wal", wal.Options{FS: fs, Fsync: wal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	fs.KillAfterWrites(1)
	var firstErr error
	for i := 0; i < 3; i++ {
		if err := l.AppendTx(vclock.Timestamp(i+1), []wal.TxRow{txRow("t", uint64(i+1), uint64(i+1), "x")}); err != nil {
			firstErr = err
			break
		}
	}
	if firstErr == nil {
		t.Fatal("append survived the kill-point")
	}
	fs.Crash() // filesystem is healthy again...
	if err := l.AppendTx(99, []wal.TxRow{txRow("t", 99, 99, "y")}); err == nil {
		t.Fatal("...but the log must stay broken (fail-stop)")
	}
}
