package storage

import (
	"time"

	"github.com/diorama/continual/internal/batch"
	"github.com/diorama/continual/internal/vclock"
)

// TableChange is one table's share of a committed transaction: the
// number of differential-relation rows the commit appended to it, plus
// a columnar image of those rows. Batch is built once at commit (only
// when a hook is installed), is unpooled, and after the hook returns is
// owned by whoever the hook handed it to — the store never touches it
// again, so consumers may retain it without copying. It is nil when
// some committed value is unrepresentable in typed columns; a consumer
// then pulls the delta window itself.
type TableChange struct {
	Table string
	Rows  int
	Batch *batch.Batch
}

// CommitEvent describes one committed transaction to a commit hook: the
// commit timestamp, the wall-clock instant the commit applied (the
// anchor for commit-to-notification latency measurements), and the net
// per-table changes. Each change carries at most one small columnar
// batch, so the hook stays cheap however many consumers fan out behind
// it — the conversion happens once, not per subscriber.
type CommitEvent struct {
	TS vclock.Timestamp
	At time.Time
	// Overload is the store's degraded-mode level at commit time,
	// carried on the event so a consumer running under the store mutex
	// (the push router) can shed load without calling back into the
	// store.
	Overload OverloadLevel
	Changes  []TableChange
	// Origin names the continual query whose materialization produced
	// this commit (Tx.SetOrigin), empty for ordinary client writes.
	// Depth is that query's cascade stage plus one — the number of
	// materialization hops between the originating client commit and
	// this delta. Routing and metrics use the pair to attribute derived
	// deltas without inspecting table names.
	Origin string
	Depth  int
}

// CommitHook receives every committed transaction, invoked under the
// store mutex immediately after the commit applies — the same ordering
// discipline as the WAL sink (SetWALSink), so events arrive in strict
// commit-timestamp order with the committed state already visible. The
// hook MUST NOT block and MUST NOT call back into the store; it should
// hand the event to its own machinery (the push router enqueues and
// returns). Replayed recovery transactions (ApplyReplay) do not fire
// the hook: install it after recovery, like the WAL sink.
type CommitHook func(ev CommitEvent)

// SetCommitHook attaches (or, with nil, detaches) the commit hook. Set
// it before the store is shared, or detach it before tearing down the
// consumer: the store calls whatever hook is installed at commit time.
func (s *Store) SetCommitHook(h CommitHook) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hook = h
}
