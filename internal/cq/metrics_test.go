package cq

import (
	"fmt"
	"sync"
	"testing"

	"github.com/diorama/continual/internal/obs"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/sql"
	"github.com/diorama/continual/internal/storage"
)

func newInstrumentedManager(t *testing.T) (*Manager, *storage.Store, *obs.Registry) {
	t.Helper()
	store := newStoreWith(t, map[string]relation.Schema{"stocks": stockSchema()})
	reg := obs.NewRegistry()
	store.Instrument(reg)
	mgr := NewManagerConfig(store, Config{UseDRA: true, AutoGC: true, Metrics: reg})
	t.Cleanup(func() { _ = mgr.Close() })
	return mgr, store, reg
}

func TestManagerMetrics(t *testing.T) {
	mgr, store, _ := newInstrumentedManager(t)
	insertStock(t, store, "DEC", 150)
	insertStock(t, store, "IBM", 75)

	if _, err := mgr.Register(Def{Name: "expensive", Query: "SELECT * FROM stocks WHERE price > 120"}); err != nil {
		t.Fatal(err)
	}
	ch, cancel, err := mgr.Subscribe("expensive", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	insertStock(t, store, "MAC", 130)
	if _, err := mgr.Poll(); err != nil {
		t.Fatal(err)
	}
	<-ch

	snap := mgr.Stats()
	for name, min := range map[string]int64{
		"cq.registered":     1,
		"cq.polls":          1,
		"cq.trigger_evals":  1,
		"cq.refreshes":      1,
		"cq.notifications":  1,
		"dra.reevaluations": 1,
	} {
		if got := snap.Counters[name] + snap.Gauges[name]; got < min {
			t.Errorf("%s = %d, want >= %d", name, got, min)
		}
	}
	if got := snap.Histograms["cq.refresh_ns"].Count; got < 1 {
		t.Errorf("cq.refresh_ns count = %d, want >= 1", got)
	}
	if mgr.Traces().Len() == 0 {
		t.Error("no refresh spans recorded")
	}

	if err := mgr.Drop("expensive"); err != nil {
		t.Fatal(err)
	}
	if got := mgr.Stats().Gauge("cq.registered"); got != 0 {
		t.Errorf("cq.registered after drop = %d, want 0", got)
	}
}

// TestConcurrentPollSubscribeDropMetrics races Poll against
// Subscribe/Drop/Register churn and concurrent snapshot reads, all with
// metric emission on. Run under -race this checks the instrumentation
// hooks introduce no data races on the notification or refresh paths.
func TestConcurrentPollSubscribeDropMetrics(t *testing.T) {
	mgr, store, reg := newInstrumentedManager(t)
	insertStock(t, store, "DEC", 150)
	if _, err := mgr.Register(Def{Name: "steady", Query: "SELECT * FROM stocks WHERE price > 100"}); err != nil {
		t.Fatal(err)
	}

	const rounds = 50
	var wg sync.WaitGroup

	// Writer: a stream of committed updates.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			insertStock(t, store, fmt.Sprintf("W%d", i), float64(50+i%200))
		}
	}()

	// Poller: refreshes whatever triggers fired.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if _, err := mgr.Poll(); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Subscriber churn: attach, drain a little, detach.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			ch, cancel, err := mgr.Subscribe("steady", 1)
			if err != nil {
				t.Error(err)
				return
			}
			select {
			case <-ch:
			default:
			}
			cancel()
		}
	}()

	// Register/Drop churn on a second CQ.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			name := fmt.Sprintf("churn%d", i)
			if _, err := mgr.Register(Def{
				Name:    name,
				Query:   "SELECT * FROM stocks WHERE price > 180",
				Trigger: sql.TriggerSpec{Kind: sql.TriggerEvery, Every: 2},
			}); err != nil {
				t.Error(err)
				return
			}
			if err := mgr.Drop(name); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Snapshot readers: Stats and trace reads race the writers above.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			_ = mgr.Stats()
			_ = reg.Snapshot()
			_ = mgr.Traces().Recent()
		}
	}()

	wg.Wait()

	// One deterministic fire: if the scheduler drained every poll before
	// the writer's first commit landed, no trigger ever fired above, and
	// the refresh-counter assertion below would flake.
	insertStock(t, store, "FINAL", 199)
	if _, err := mgr.Poll(); err != nil {
		t.Fatal(err)
	}

	snap := mgr.Stats()
	if got := snap.Counter("cq.polls"); got != rounds+1 {
		t.Errorf("cq.polls = %d, want %d", got, rounds+1)
	}
	if got := snap.Gauge("cq.registered"); got != 1 {
		t.Errorf("cq.registered = %d, want 1 (steady only)", got)
	}
	if snap.Counter("cq.refreshes") < 1 {
		t.Error("no refreshes recorded under concurrent churn")
	}
}
