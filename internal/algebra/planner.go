package algebra

import (
	"errors"
	"fmt"
	"strings"

	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/sql"
)

// Catalog resolves table names to schemas. The storage engine, the DIOM
// mediator and the remote client all implement it.
type Catalog interface {
	Schema(table string) (relation.Schema, error)
}

// Planning errors.
var (
	ErrMixedProjection = errors.New("algebra: cannot mix aggregates and plain columns without GROUP BY")
	ErrStarWithGroupBy = errors.New("algebra: SELECT * is not allowed with GROUP BY")
)

// PlanSelect lowers a parsed SELECT to a logical plan:
//
//	Distinct?(Project(Aggregate?(Select?(Join tree of Scans))))
//
// Every scan's columns are qualified with the table's effective name so
// that multi-table predicates resolve unambiguously.
func PlanSelect(stmt *sql.SelectStmt, cat Catalog) (Plan, error) {
	if len(stmt.From) == 0 {
		return nil, errors.New("algebra: SELECT requires a FROM clause")
	}

	// Build the join tree left-to-right.
	var root Plan
	for i, ref := range stmt.From {
		schema, err := cat.Schema(ref.Table)
		if err != nil {
			return nil, fmt.Errorf("plan: %w", err)
		}
		scan := NewScanPlan(ref.Table, ref.Name(), schema.Qualify(ref.Name()))
		if i == 0 {
			root = scan
			continue
		}
		joined, err := NewJoinPlan(root, scan, ref.On)
		if err != nil {
			return nil, err
		}
		root = joined
	}

	if stmt.Where != nil {
		// Validate the predicate compiles against the joined schema.
		if _, err := Compile(stmt.Where, root.Schema()); err != nil {
			return nil, fmt.Errorf("WHERE: %w", err)
		}
		root = &SelectPlan{Input: root, Pred: stmt.Where}
	}

	if stmt.HasAggregates() || len(stmt.GroupBy) > 0 {
		agg, err := planAggregate(stmt, root)
		if err != nil {
			return nil, err
		}
		return planOrderLimit(stmt, agg)
	}

	if stmt.Having != nil {
		return nil, errors.New("algebra: HAVING requires GROUP BY or aggregates")
	}

	// Plain projection.
	items, star, err := projectionItems(stmt, root.Schema())
	if err != nil {
		return nil, err
	}
	if !star {
		proj, err := NewProjectPlan(root, items)
		if err != nil {
			return nil, err
		}
		root = proj
	}
	if stmt.Distinct {
		root = &DistinctPlan{Input: root}
	}
	return planOrderLimit(stmt, root)
}

// planOrderLimit wraps the plan with Sort and Limit nodes as requested.
func planOrderLimit(stmt *sql.SelectStmt, root Plan) (Plan, error) {
	if len(stmt.OrderBy) > 0 {
		keys := make([]SortItem, len(stmt.OrderBy))
		for i, o := range stmt.OrderBy {
			if _, err := Compile(o.Expr, root.Schema()); err != nil {
				return nil, fmt.Errorf("ORDER BY: %w", err)
			}
			keys[i] = SortItem{Expr: o.Expr, Desc: o.Desc}
		}
		root = &SortPlan{Input: root, Keys: keys}
	}
	if stmt.Limit >= 0 {
		root = &LimitPlan{Input: root, N: stmt.Limit}
	}
	return root, nil
}

// projectionItems expands the select list. star reports a bare `SELECT *`
// (which keeps the input schema and needs no Project node).
func projectionItems(stmt *sql.SelectStmt, schema relation.Schema) ([]ProjectItem, bool, error) {
	if len(stmt.Items) == 1 && stmt.Items[0].Star {
		return nil, true, nil
	}
	var items []ProjectItem
	for i, it := range stmt.Items {
		if it.Star {
			for _, c := range schema.Columns() {
				items = append(items, ProjectItem{Expr: &sql.ColumnRef{Name: c.Name}, Name: c.Name})
			}
			continue
		}
		name := it.Alias
		if name == "" {
			name = defaultItemName(it.Expr, i)
		}
		if _, err := Compile(it.Expr, schema); err != nil {
			return nil, false, fmt.Errorf("projection %q: %w", name, err)
		}
		items = append(items, ProjectItem{Expr: it.Expr, Name: name})
	}
	return items, false, nil
}

func defaultItemName(e sql.Expr, i int) string {
	switch ex := e.(type) {
	case *sql.ColumnRef:
		return ex.Name
	case *sql.FuncCall:
		arg := "*"
		if ex.Arg != nil {
			arg = ex.Arg.String()
		}
		return strings.ToLower(ex.Name) + "_" + sanitizeName(arg)
	default:
		return fmt.Sprintf("col_%d", i+1)
	}
}

func sanitizeName(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '.':
			b.WriteRune(r)
		}
	}
	if b.Len() == 0 {
		return "expr"
	}
	return b.String()
}

func planAggregate(stmt *sql.SelectStmt, input Plan) (Plan, error) {
	if len(stmt.Items) == 1 && stmt.Items[0].Star {
		return nil, ErrStarWithGroupBy
	}
	groupNames := make(map[string]bool, len(stmt.GroupBy))
	var groupBy []ProjectItem
	for _, g := range stmt.GroupBy {
		col, ok := g.(*sql.ColumnRef)
		name := ""
		if ok {
			name = col.Name
		} else {
			name = sanitizeName(g.String())
		}
		if _, err := Compile(g, input.Schema()); err != nil {
			return nil, fmt.Errorf("GROUP BY %q: %w", name, err)
		}
		groupBy = append(groupBy, ProjectItem{Expr: g, Name: name})
		groupNames[strings.ToLower(name)] = true
	}

	var aggs []AggSpec
	// The output projection rebuilds the user's select list on top of the
	// aggregate's schema (group columns + aggregate columns).
	var outItems []ProjectItem
	for i, it := range stmt.Items {
		if it.Star {
			return nil, ErrStarWithGroupBy
		}
		name := it.Alias
		if name == "" {
			name = defaultItemName(it.Expr, i)
		}
		switch ex := it.Expr.(type) {
		case *sql.FuncCall:
			if !sql.AggregateFuncs[ex.Name] {
				return nil, fmt.Errorf("algebra: non-aggregate function %s in aggregate query", ex.Name)
			}
			aggs = append(aggs, AggSpec{Func: ex.Name, Arg: ex.Arg, Name: name})
			outItems = append(outItems, ProjectItem{Expr: &sql.ColumnRef{Name: name}, Name: name})
		case *sql.ColumnRef:
			if !groupNames[strings.ToLower(ex.Name)] {
				return nil, fmt.Errorf("%w: column %q", ErrMixedProjection, ex.Name)
			}
			outItems = append(outItems, ProjectItem{Expr: ex, Name: name})
		default:
			return nil, fmt.Errorf("%w: %s", ErrMixedProjection, it.Expr)
		}
	}

	having := stmt.Having
	if having != nil {
		rewritten, err := HavingAggregateRewrite(having, aggs)
		if err != nil {
			return nil, err
		}
		having = rewritten
	}
	agg, err := NewAggregatePlan(input, groupBy, aggs, having)
	if err != nil {
		return nil, err
	}
	// If the select list is exactly group cols + aggs in order, skip the
	// trailing projection.
	if identityProjection(outItems, agg.Schema()) {
		return agg, nil
	}
	return NewProjectPlan(agg, outItems)
}

func identityProjection(items []ProjectItem, schema relation.Schema) bool {
	if len(items) != schema.Len() {
		return false
	}
	for i, it := range items {
		col, ok := it.Expr.(*sql.ColumnRef)
		if !ok || !strings.EqualFold(col.Name, schema.Col(i).Name) || !strings.EqualFold(it.Name, schema.Col(i).Name) {
			return false
		}
	}
	return true
}

// PlanSQL parses and plans a SELECT in one step.
func PlanSQL(query string, cat Catalog) (Plan, error) {
	stmt, err := sql.ParseSelect(query)
	if err != nil {
		return nil, err
	}
	return PlanSelect(stmt, cat)
}
