package workload

import (
	"testing"

	"github.com/diorama/continual/internal/storage"
)

func TestStocksSeedAndBatch(t *testing.T) {
	s := storage.NewStore()
	if err := s.CreateTable("stocks", StockSchema()); err != nil {
		t.Fatal(err)
	}
	g := NewStocks(s, "stocks", 1, DefaultMix)
	if err := g.Seed(2500); err != nil {
		t.Fatal(err)
	}
	snap, _ := s.Snapshot("stocks")
	if snap.Len() != 2500 || g.Live() != 2500 {
		t.Fatalf("seeded = %d live = %d", snap.Len(), g.Live())
	}
	mark := s.Now()
	if err := g.Batch(100); err != nil {
		t.Fatal(err)
	}
	d, err := s.DeltaSince("stocks", mark)
	if err != nil {
		t.Fatal(err)
	}
	// A batch is one transaction: repeat updates to the same tuple fold
	// into a single differential row, so the count may be slightly below
	// the operation count.
	if d.Len() < 90 || d.Len() > 100 {
		t.Errorf("delta rows = %d, want ~100", d.Len())
	}
	ins, del, mod := d.Counts()
	if mod < ins+del {
		t.Errorf("default mix should be modify-heavy: %d/%d/%d", ins, del, mod)
	}
	// Store and tracker agree.
	snap, _ = s.Snapshot("stocks")
	if snap.Len() != g.Live() {
		t.Errorf("store %d vs tracker %d", snap.Len(), g.Live())
	}
}

func TestStocksDeterministicUnderSeed(t *testing.T) {
	run := func() int {
		s := storage.NewStore()
		_ = s.CreateTable("stocks", StockSchema())
		g := NewStocks(s, "stocks", 7, DefaultMix)
		_ = g.Seed(100)
		_ = g.Batch(50)
		snap, _ := s.Snapshot("stocks")
		return snap.Len()
	}
	if run() != run() {
		t.Error("generator is not deterministic under a fixed seed")
	}
}

func TestAppendOnlyMixNeverDeletes(t *testing.T) {
	s := storage.NewStore()
	_ = s.CreateTable("stocks", StockSchema())
	g := NewStocks(s, "stocks", 3, AppendOnlyMix)
	_ = g.Seed(10)
	mark := s.Now()
	if err := g.Batch(200); err != nil {
		t.Fatal(err)
	}
	d, _ := s.DeltaSince("stocks", mark)
	ins, del, mod := d.Counts()
	if del != 0 || mod != 0 || ins != 200 {
		t.Errorf("append-only mix produced %d/%d/%d", ins, del, mod)
	}
}

func TestAccountsDepositWithdraw(t *testing.T) {
	s := storage.NewStore()
	_ = s.CreateTable("accounts", AccountSchema())
	g := NewAccounts(s, "accounts", 5)
	if err := g.Deposit(1000); err != nil {
		t.Fatal(err)
	}
	if err := g.Deposit(2000); err != nil {
		t.Fatal(err)
	}
	if err := g.Withdraw(); err != nil {
		t.Fatal(err)
	}
	snap, _ := s.Snapshot("accounts")
	if snap.Len() != 1 {
		t.Fatalf("accounts = %d", snap.Len())
	}
	if err := g.Activity(50); err != nil {
		t.Fatal(err)
	}
	d, _ := s.DeltaSince("accounts", 0)
	ins, del, _ := d.Counts()
	if ins == 0 || del == 0 {
		t.Errorf("activity should mix deposits and withdrawals: %d/%d", ins, del)
	}
}

func TestDocumentsCrawl(t *testing.T) {
	s := storage.NewStore()
	_ = s.CreateTable("docs", DocumentSchema())
	g := NewDocuments(s, "docs", 9)
	if err := g.Crawl(120); err != nil {
		t.Fatal(err)
	}
	snap, _ := s.Snapshot("docs")
	if snap.Len() != 120 {
		t.Fatalf("docs = %d", snap.Len())
	}
	// All appends.
	d, _ := s.DeltaSince("docs", 0)
	ins, del, mod := d.Counts()
	if ins != 120 || del != 0 || mod != 0 {
		t.Errorf("crawl counts = %d/%d/%d", ins, del, mod)
	}
}
