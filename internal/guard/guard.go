// Package guard is the engine's overload-protection layer: panic
// isolation and deadline enforcement for refresh work (Protect,
// Attempt), and a per-CQ circuit breaker (Breaker) that quarantines
// continual queries failing repeatedly, with capped jittered
// exponential backoff between probes.
//
// The design leans on the paper's differential catch-up property
// (Section 4): a CQ can always resume from its last execution
// timestamp, so skipping a refresh — because the CQ is quarantined,
// its budget expired, or the system is shedding load — is never a
// correctness loss, only deferred work. That is what makes aggressive
// protection safe.
package guard

import (
	"errors"
	"fmt"
	"runtime/debug"
	"time"
)

// ErrBudgetExceeded is returned (wrapped) by Attempt when the guarded
// function does not complete within its budget. The work itself is NOT
// cancelled — Go cannot preempt a running goroutine — it is abandoned:
// the late completion is reported through Attempt's late callback.
var ErrBudgetExceeded = errors.New("guard: refresh budget exceeded")

// PanicError wraps a recovered panic value so callers can distinguish
// "the refresh panicked" from ordinary evaluation errors.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("guard: panic: %v", e.Value)
}

// Protect runs fn, converting a panic into a *PanicError. This is the
// zero-overhead isolation boundary used when no deadline is configured.
func Protect(fn func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// Attempt runs fn under a budget with panic isolation.
//
// With budget <= 0 it reduces to Protect: fn runs inline on the
// caller's goroutine and only panics are intercepted — no goroutine,
// no timer, nothing on the hot path.
//
// With a positive budget, fn runs on a child goroutine. If it finishes
// in time, its (recovered) error is returned. If the budget expires
// first, Attempt returns an error wrapping ErrBudgetExceeded and
// abandons the child: whatever locks fn holds stay held until it
// finishes on its own, at which point the late callback (if non-nil)
// receives its final error on the child goroutine. Callers must
// therefore treat a budget error as "outcome unknown, state will
// settle later" — the cq manager's monotonicity guard makes that safe.
func Attempt(budget time.Duration, fn func() error, late func(error)) error {
	if budget <= 0 {
		return Protect(fn)
	}
	done := make(chan error, 1)
	// guarded: the child reports through the buffered channel and dies;
	// Protect is its recover boundary.
	go func() {
		done <- Protect(fn)
	}()
	timer := time.NewTimer(budget)
	defer timer.Stop()
	select {
	case err := <-done:
		return err
	case <-timer.C:
	}
	// Budget expired. Reap the late completion so the child's result is
	// observed (metrics) and the channel never leaks a blocked sender —
	// the buffer makes the send non-blocking, but the outcome matters.
	// guarded: the reaper only receives and invokes the late callback,
	// which is metrics-only by contract.
	go func() {
		err := <-done
		if late != nil {
			_ = Protect(func() error { late(err); return nil })
		}
	}()
	return fmt.Errorf("%w (budget %v)", ErrBudgetExceeded, budget)
}
