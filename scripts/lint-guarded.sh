#!/bin/sh
# lint-guarded: every goroutine launched in the engine's guarded
# packages (internal/cq, internal/push, internal/guard) must carry a
# "// guarded:" annotation within the four lines above the launch,
# naming its recover boundary. The guard layer turns refresh panics
# into per-CQ failures only if every launch site actually routes
# through a boundary; this check makes forgetting one a CI failure
# instead of a crashed worker in production.
set -eu
cd "$(dirname "$0")/.."
status=0
for f in $(find internal/cq internal/push internal/guard -name '*.go' ! -name '*_test.go'); do
	out=$(awk '
		/guarded:/ { mark = NR }
		/^[[:space:]]*go (func|[A-Za-z_])/ {
			if (mark == 0 || NR - mark > 4) {
				printf "%s:%d: goroutine launch without a \"// guarded:\" annotation\n", FILENAME, NR
			}
		}
	' "$f")
	if [ -n "$out" ]; then
		echo "$out"
		status=1
	fi
done
if [ "$status" -ne 0 ]; then
	echo "lint-guarded: annotate each launch with its recover boundary (see internal/guard)."
fi
exit $status
