package remote

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"github.com/diorama/continual/internal/algebra"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/storage"
)

// Server exposes a store over TCP. Each connection is served by one
// goroutine; requests on a connection are processed in order.
type Server struct {
	store *storage.Store
	ln    net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed bool

	// stats
	queriesServed  int64
	deltasServed   int64
	tuplesExecuted int64
}

// ServerStats is a snapshot of server-side work counters, used by the
// scalability experiment (E7): server CPU work per client refresh.
type ServerStats struct {
	QueriesServed  int64
	DeltasServed   int64
	TuplesExecuted int64
}

// NewServer wraps a store. Call Serve to start listening.
func NewServer(store *storage.Store) *Server {
	return &Server{store: store, conns: make(map[net.Conn]struct{})}
}

// Serve starts listening on addr ("127.0.0.1:0" picks a free port) and
// returns the bound address. Connections are handled until Close.
func (s *Server) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("remote: listen: %w", err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	c := newCodec(conn)
	for {
		var req Request
		if err := c.recv(&req); err != nil {
			return // client went away or spoke garbage; drop the conn
		}
		resp := s.handle(req)
		if err := c.send(resp); err != nil {
			return
		}
	}
}

// Stats returns a snapshot of the work counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ServerStats{
		QueriesServed:  s.queriesServed,
		DeltasServed:   s.deltasServed,
		TuplesExecuted: s.tuplesExecuted,
	}
}

func (s *Server) handle(req Request) Response {
	switch req.Op {
	case OpListTables:
		return Response{Tables: s.store.TableNames()}

	case OpSchema:
		schema, err := s.store.Schema(req.Table)
		if err != nil {
			return errResponse(err)
		}
		return Response{Columns: toWireSchema(schema)}

	case OpSnapshot:
		rel, err := s.store.Snapshot(req.Table)
		if err != nil {
			return errResponse(err)
		}
		return Response{Rel: toWireRelation(rel), Now: s.store.Now()}

	case OpDeltaSince:
		d, err := s.store.DeltaSince(req.Table, req.Since)
		if err != nil {
			return errResponse(err)
		}
		s.mu.Lock()
		s.deltasServed++
		s.mu.Unlock()
		return Response{Delta: toWireDelta(d), Now: s.store.Now()}

	case OpQuery:
		plan, err := algebra.PlanSQL(req.Query, s.store.Live())
		if err != nil {
			return errResponse(err)
		}
		ex := algebra.NewExecutor(s.store.Live())
		rel, err := ex.Execute(algebra.Optimize(plan))
		if err != nil {
			return errResponse(err)
		}
		s.mu.Lock()
		s.queriesServed++
		s.tuplesExecuted += int64(ex.Stats.TuplesScanned)
		s.mu.Unlock()
		return Response{Rel: toWireRelation(rel), Now: s.store.Now()}

	case OpNow:
		return Response{Now: s.store.Now()}

	case OpApplyUpdates:
		if err := s.applyUpdates(req); err != nil {
			return errResponse(err)
		}
		return Response{Now: s.store.Now()}

	default:
		return errResponse(fmt.Errorf("unknown op %d", req.Op))
	}
}

// applyUpdates commits a batch of differential rows pushed by a client
// (used by benchmark drivers).
func (s *Server) applyUpdates(req Request) error {
	if req.Table == "" {
		return errors.New("table required")
	}
	tx := s.store.Begin()
	for _, r := range req.Updates {
		switch {
		case r.Old == nil && r.New == nil:
			tx.Abort()
			return errors.New("empty update row")
		case r.Old == nil:
			if _, err := tx.Insert(req.Table, r.New); err != nil {
				tx.Abort()
				return err
			}
		case r.New == nil:
			if err := tx.Delete(req.Table, relation.TID(r.TID)); err != nil {
				tx.Abort()
				return err
			}
		default:
			if err := tx.Update(req.Table, relation.TID(r.TID), r.New); err != nil {
				tx.Abort()
				return err
			}
		}
	}
	_, err := tx.Commit()
	return err
}

// Close stops the listener and all connections, waiting for handlers to
// finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	s.wg.Wait()
	return nil
}
