package diom

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/storage"
	"github.com/diorama/continual/internal/vclock"
)

// FeedSource is an append-only feed (news articles, tick stream, web
// crawl results): producers Push rows, Poll drains them as insertions.
// It models the environment continuous queries (Terry et al.) assume.
type FeedSource struct {
	name   string
	schema relation.Schema

	mu      sync.Mutex
	pending []Update
	seq     int
}

// NewFeedSource creates a feed with the given schema.
func NewFeedSource(name string, schema relation.Schema) *FeedSource {
	return &FeedSource{name: name, schema: schema}
}

// Name implements Source.
func (f *FeedSource) Name() string { return f.name }

// Schema implements Source.
func (f *FeedSource) Schema() relation.Schema { return f.schema }

// Push appends a row to the feed.
func (f *FeedSource) Push(values ...relation.Value) error {
	if len(values) != f.schema.Len() {
		return fmt.Errorf("diom: feed %q: row has %d values, schema has %d", f.name, len(values), f.schema.Len())
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seq++
	f.pending = append(f.pending, Update{
		Key: fmt.Sprintf("%s#%d", f.name, f.seq),
		New: append([]relation.Value(nil), values...),
	})
	return nil
}

// Poll implements Source: drains pushed rows as insertions.
func (f *FeedSource) Poll() ([]Update, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := f.pending
	f.pending = nil
	return out, nil
}

// FileSchema is the row layout of FileSource: (path, size, modtime).
func FileSchema() relation.Schema {
	return relation.MustSchema(
		relation.Column{Name: "path", Type: relation.TString},
		relation.Column{Name: "size", Type: relation.TInt},
		relation.Column{Name: "modtime", Type: relation.TInt},
	)
}

// FileSource translates a directory tree into differential relations by
// polling: each Poll walks the tree, compares with the previous
// snapshot, and emits creations as insertions, removals as deletions and
// content changes (size or mtime) as modifications — the "file system
// updates captured by middleware" of Section 5.5.
type FileSource struct {
	name string
	root string

	mu   sync.Mutex
	prev map[string][]relation.Value
}

// NewFileSource wraps a directory.
func NewFileSource(name, root string) *FileSource {
	return &FileSource{name: name, root: root, prev: make(map[string][]relation.Value)}
}

// Name implements Source.
func (f *FileSource) Name() string { return f.name }

// Schema implements Source.
func (f *FileSource) Schema() relation.Schema { return FileSchema() }

// Poll implements Source.
func (f *FileSource) Poll() ([]Update, error) {
	cur := make(map[string][]relation.Value)
	err := filepath.Walk(f.root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(f.root, path)
		if err != nil {
			return err
		}
		cur[rel] = []relation.Value{
			relation.Str(rel),
			relation.Int(info.Size()),
			relation.Int(info.ModTime().UnixNano()),
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("diom: file source %q: %w", f.name, err)
	}

	f.mu.Lock()
	defer f.mu.Unlock()
	var out []Update
	// Deterministic order for tests.
	paths := make([]string, 0, len(cur))
	for p := range cur {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		now := cur[p]
		old, existed := f.prev[p]
		switch {
		case !existed:
			out = append(out, Update{Key: p, New: now})
		case !valuesEqual(old, now):
			out = append(out, Update{Key: p, Old: old, New: now})
		}
	}
	removed := make([]string, 0)
	for p := range f.prev {
		if _, still := cur[p]; !still {
			removed = append(removed, p)
		}
	}
	sort.Strings(removed)
	for _, p := range removed {
		out = append(out, Update{Key: p, Old: f.prev[p]})
	}
	f.prev = cur
	return out, nil
}

// TableSource replicates a table of another store by shipping its
// differential relation — source-to-source interoperation over the
// relational protocol.
type TableSource struct {
	name   string
	origin *storage.Store
	table  string

	mu   sync.Mutex
	last vclock.Timestamp
	// tids of the origin map 1:1 onto keys.
}

// NewTableSource replicates origin's table under the given source name.
func NewTableSource(name string, origin *storage.Store, table string) *TableSource {
	return &TableSource{name: name, origin: origin, table: table}
}

// Name implements Source.
func (t *TableSource) Name() string { return t.name }

// Schema implements Source.
func (t *TableSource) Schema() relation.Schema {
	s, err := t.origin.Schema(t.table)
	if err != nil {
		return relation.Schema{}
	}
	return s
}

// Poll implements Source: ships the origin's delta window since the last
// poll (the first poll ships the initial contents as insertions).
func (t *TableSource) Poll() ([]Update, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Update
	if t.last == 0 {
		snap, err := t.origin.SnapshotAt(t.table, 0)
		if err != nil {
			// The origin may have collected its early history; fall back
			// to current contents.
			snap, err = t.origin.Snapshot(t.table)
			if err != nil {
				return nil, err
			}
			t.last = t.origin.Now()
			for _, tu := range snap.Tuples() {
				out = append(out, Update{Key: tidKey(tu.TID), New: tu.Values})
			}
			return out, nil
		}
		_ = snap // empty at ts 0 by construction
	}
	d, err := t.origin.DeltaSince(t.table, t.last)
	if err != nil {
		return nil, err
	}
	now := t.origin.Now()
	for _, r := range d.Rows() {
		out = append(out, Update{Key: tidKey(r.TID), Old: r.Old, New: r.New})
	}
	t.last = now
	return out, nil
}

func tidKey(tid relation.TID) string { return fmt.Sprintf("tid%d", tid) }

func valuesEqual(a, b []relation.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}
