package algebra

import (
	"errors"
	"testing"

	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/sql"
)

func testSchema() relation.Schema {
	return relation.MustSchema(
		relation.Column{Name: "name", Type: relation.TString},
		relation.Column{Name: "price", Type: relation.TFloat},
		relation.Column{Name: "shares", Type: relation.TInt},
		relation.Column{Name: "active", Type: relation.TBool},
	)
}

func testTuple() relation.Tuple {
	return relation.Tuple{TID: 1, Values: []relation.Value{
		relation.Str("IBM"), relation.Float(75), relation.Int(100), relation.Bool(true),
	}}
}

func evalStr(t *testing.T, expr string) relation.Value {
	t.Helper()
	e, err := sql.ParseExpr(expr)
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	ce, err := Compile(e, testSchema())
	if err != nil {
		t.Fatalf("compile %q: %v", expr, err)
	}
	v, err := ce.Eval(testTuple())
	if err != nil {
		t.Fatalf("eval %q: %v", expr, err)
	}
	return v
}

func TestExprEvaluation(t *testing.T) {
	tests := []struct {
		expr string
		want relation.Value
	}{
		{"price", relation.Float(75)},
		{"price + 5", relation.Float(80)},
		{"shares * 2", relation.Int(200)},
		{"shares / 3", relation.Int(33)},
		{"shares % 7", relation.Int(2)},
		{"price / 2", relation.Float(37.5)},
		{"-price", relation.Float(-75)},
		{"ABS(price - 100)", relation.Float(25)},
		{"ABS(0 - shares)", relation.Int(100)},
		{"price > 70", relation.Bool(true)},
		{"price > 80", relation.Bool(false)},
		{"price >= 75", relation.Bool(true)},
		{"price <= 75", relation.Bool(true)},
		{"price != 75", relation.Bool(false)},
		{"name = 'IBM'", relation.Bool(true)},
		{"name != 'DEC'", relation.Bool(true)},
		{"active", relation.Bool(true)},
		{"NOT active", relation.Bool(false)},
		{"price > 70 AND name = 'IBM'", relation.Bool(true)},
		{"price > 80 OR name = 'IBM'", relation.Bool(true)},
		{"price > 80 AND name = 'IBM'", relation.Bool(false)},
		{"shares = 100", relation.Bool(true)},
		{"shares > 99.5", relation.Bool(true)}, // cross int/float comparison
		{"1 + 2 * 3", relation.Int(7)},
		{"NULL", relation.NullValue()},
	}
	for _, tt := range tests {
		t.Run(tt.expr, func(t *testing.T) {
			got := evalStr(t, tt.expr)
			if !got.Equal(tt.want) {
				t.Errorf("eval(%q) = %v, want %v", tt.expr, got, tt.want)
			}
		})
	}
}

func TestExprNullPropagation(t *testing.T) {
	schema := relation.MustSchema(relation.Column{Name: "x", Type: relation.TFloat})
	tup := relation.Tuple{TID: 1, Values: []relation.Value{relation.TypedNull(relation.TFloat)}}
	for _, expr := range []string{"x + 1", "x > 0", "ABS(x)", "-x"} {
		e, _ := sql.ParseExpr(expr)
		ce, err := Compile(e, schema)
		if err != nil {
			t.Fatalf("compile %q: %v", expr, err)
		}
		v, err := ce.Eval(tup)
		if err != nil {
			t.Fatalf("eval %q: %v", expr, err)
		}
		if !v.IsNull() {
			t.Errorf("eval(%q) = %v, want NULL", expr, v)
		}
	}
	// NULL predicate collapses to false.
	e, _ := sql.ParseExpr("x > 0")
	ce, _ := Compile(e, schema)
	ok, err := EvalPredicate(ce, tup)
	if err != nil || ok {
		t.Errorf("EvalPredicate(NULL) = %v, %v", ok, err)
	}
}

func TestExprErrors(t *testing.T) {
	e, _ := sql.ParseExpr("nosuch > 1")
	if _, err := Compile(e, testSchema()); !errors.Is(err, ErrUnknownColumn) {
		t.Errorf("unknown column err = %v", err)
	}
	e, _ = sql.ParseExpr("SUM(price)")
	if _, err := Compile(e, testSchema()); !errors.Is(err, ErrAggregate) {
		t.Errorf("aggregate compile err = %v", err)
	}
	e, _ = sql.ParseExpr("name + 1")
	ce, err := Compile(e, testSchema())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ce.Eval(testTuple()); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("string arithmetic err = %v", err)
	}
	e, _ = sql.ParseExpr("name > 1")
	ce, _ = Compile(e, testSchema())
	if _, err := ce.Eval(testTuple()); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("cross-type comparison err = %v", err)
	}
	e, _ = sql.ParseExpr("shares / 0")
	ce, _ = Compile(e, testSchema())
	if _, err := ce.Eval(testTuple()); !errors.Is(err, ErrDivideByZero) {
		t.Errorf("div by zero err = %v", err)
	}
	e, _ = sql.ParseExpr("price + 1")
	ce, _ = Compile(e, testSchema())
	if _, err := EvalPredicate(ce, testTuple()); !errors.Is(err, ErrNotBoolean) {
		t.Errorf("non-bool predicate err = %v", err)
	}
	e, _ = sql.ParseExpr("NOT price")
	ce, _ = Compile(e, testSchema())
	if _, err := ce.Eval(testTuple()); !errors.Is(err, ErrTypeMismatch) {
		t.Errorf("NOT on float err = %v", err)
	}
}

func TestShortCircuitSkipsErrors(t *testing.T) {
	// FALSE AND (1/0 = 1) must not error thanks to short circuit.
	e, _ := sql.ParseExpr("active AND shares > 0")
	ce, err := Compile(e, testSchema())
	if err != nil {
		t.Fatal(err)
	}
	if v, err := ce.Eval(testTuple()); err != nil || !v.AsBool() {
		t.Errorf("AND eval = %v, %v", v, err)
	}
	e, _ = sql.ParseExpr("NOT active OR shares / 0 > 1")
	ce, _ = Compile(e, testSchema())
	if _, err := ce.Eval(testTuple()); err == nil {
		t.Error("non-short-circuited division should error")
	}
}

func TestColumnsOfAndConjuncts(t *testing.T) {
	e, _ := sql.ParseExpr("a.x > 1 AND b.y = a.z AND ABS(c) < 2")
	cols := ColumnsOf(e)
	want := map[string]bool{"a.x": true, "b.y": true, "a.z": true, "c": true}
	if len(cols) != 4 {
		t.Fatalf("ColumnsOf = %v", cols)
	}
	for _, c := range cols {
		if !want[c] {
			t.Errorf("unexpected column %q", c)
		}
	}
	conj := SplitConjuncts(e)
	if len(conj) != 3 {
		t.Fatalf("SplitConjuncts = %d", len(conj))
	}
	rejoined := JoinConjuncts(conj)
	if rejoined.String() != e.String() {
		t.Errorf("JoinConjuncts round trip: %s vs %s", rejoined, e)
	}
	if JoinConjuncts(nil) != nil {
		t.Error("JoinConjuncts(nil) should be nil")
	}
}
