package sql

import (
	"errors"
	"testing"
)

func kinds(toks []Token) []TokenKind {
	out := make([]TokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasicQuery(t *testing.T) {
	toks, err := Lex("SELECT name, price FROM stocks WHERE price > 120")
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		kind TokenKind
		text string
	}{
		{TokKeyword, "SELECT"}, {TokIdent, "name"}, {TokOp, ","},
		{TokIdent, "price"}, {TokKeyword, "FROM"}, {TokIdent, "stocks"},
		{TokKeyword, "WHERE"}, {TokIdent, "price"}, {TokOp, ">"},
		{TokNumber, "120"}, {TokEOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("token count = %d, want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("token %d = %v/%q, want %v/%q", i, toks[i].Kind, toks[i].Text, w.kind, w.text)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	tests := []struct {
		in   string
		text string
	}{
		{"42", "42"},
		{"3.14", "3.14"},
		{".5", ".5"},
		{"1e6", "1e6"},
		{"2.5E-3", "2.5E-3"},
		{"1e+9", "1e+9"},
	}
	for _, tt := range tests {
		toks, err := Lex(tt.in)
		if err != nil {
			t.Errorf("Lex(%q): %v", tt.in, err)
			continue
		}
		if toks[0].Kind != TokNumber || toks[0].Text != tt.text {
			t.Errorf("Lex(%q) = %v/%q", tt.in, toks[0].Kind, toks[0].Text)
		}
	}
	if _, err := Lex("1e"); err == nil {
		t.Error("malformed exponent should error")
	}
}

func TestLexStrings(t *testing.T) {
	toks, err := Lex("'IBM'")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokString || toks[0].Text != "IBM" {
		t.Errorf("got %v/%q", toks[0].Kind, toks[0].Text)
	}
	toks, err = Lex("'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "it's" {
		t.Errorf("escaped quote: %q", toks[0].Text)
	}
	if _, err := Lex("'unterminated"); err == nil {
		t.Error("unterminated string should error")
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := Lex("<= >= <> != = < > + - * / % ( ) . ;")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"<=", ">=", "!=", "!=", "=", "<", ">", "+", "-", "*", "/", "%", "(", ")", ".", ";"}
	for i, w := range want {
		if toks[i].Text != w {
			t.Errorf("op %d = %q, want %q", i, toks[i].Text, w)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("SELECT -- line comment\n/* block\ncomment */ 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[1].Text != "1" {
		t.Errorf("comments not skipped: %v", toks)
	}
	if _, err := Lex("/* unterminated"); err == nil {
		t.Error("unterminated block comment should error")
	}
}

func TestLexErrorsCarryPosition(t *testing.T) {
	_, err := Lex("SELECT\n  @")
	var serr *SyntaxError
	if !errors.As(err, &serr) {
		t.Fatalf("err = %T %v", err, err)
	}
	if serr.Line != 2 || serr.Col != 3 {
		t.Errorf("position = %d:%d, want 2:3", serr.Line, serr.Col)
	}
}

func TestLexKeywordsCaseInsensitive(t *testing.T) {
	toks, err := Lex("select From WhErE")
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"SELECT", "FROM", "WHERE"} {
		if toks[i].Kind != TokKeyword || toks[i].Text != want {
			t.Errorf("token %d = %v/%q", i, toks[i].Kind, toks[i].Text)
		}
	}
	_ = kinds(toks)
}
