package continual

import (
	"fmt"

	"github.com/diorama/continual/internal/diom"
	"github.com/diorama/continual/internal/relation"
)

// Feed is a handle on an append-only source: rows pushed here become
// insertions in the source's table after the next Pump.
type Feed struct {
	feed *diom.FeedSource
}

// Push appends a row to the feed. Values must match the feed's columns
// (int/int64, float64, string, bool, or nil).
func (f *Feed) Push(values ...any) error {
	vals := make([]relation.Value, len(values))
	for i, v := range values {
		rv, err := toValue(v)
		if err != nil {
			return err
		}
		vals[i] = rv
	}
	return f.feed.Push(vals...)
}

// Column declares one column of a feed table.
type Column struct {
	Name string
	Type ColumnType
}

// ColumnType enumerates public column types.
type ColumnType int

// Column types.
const (
	Int ColumnType = iota + 1
	Float
	String
	Bool
)

func (t ColumnType) internal() (relation.Type, error) {
	switch t {
	case Int:
		return relation.TInt, nil
	case Float:
		return relation.TFloat, nil
	case String:
		return relation.TString, nil
	case Bool:
		return relation.TBool, nil
	default:
		return 0, fmt.Errorf("continual: unknown column type %d", t)
	}
}

// NewFeed registers an append-only feed source; its rows appear in a
// table named after it. Continual queries can range over feed tables
// exactly like base tables.
func (db *DB) NewFeed(name string, columns ...Column) (*Feed, error) {
	cols := make([]relation.Column, len(columns))
	for i, c := range columns {
		typ, err := c.Type.internal()
		if err != nil {
			return nil, err
		}
		cols[i] = relation.Column{Name: c.Name, Type: typ}
	}
	schema, err := relation.NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	feed := diom.NewFeedSource(name, schema)
	if err := db.mediator.RegisterSource(feed); err != nil {
		return nil, err
	}
	return &Feed{feed: feed}, nil
}

// WatchDir registers a file-system source: the directory tree is polled
// on every Pump and its files appear as rows (path, size, modtime) in a
// table named after the source. Creations, removals and content changes
// become insertions, deletions and modifications — the paper's
// middleware-captured file system updates (Section 5.5).
func (db *DB) WatchDir(name, dir string) error {
	return db.mediator.RegisterSource(diom.NewFileSource(name, dir))
}

// Pump polls every registered source once and applies its updates. It
// returns the number of update rows applied. Call Poll (or run Start)
// afterwards to let triggers observe the new updates.
func (db *DB) Pump() (int, error) { return db.mediator.PumpOnce() }
