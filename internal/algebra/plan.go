package algebra

import (
	"fmt"
	"strings"

	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/sql"
)

// Plan is a logical query plan node. Plans are immutable once built; the
// optimizer returns rewritten copies.
type Plan interface {
	Schema() relation.Schema
	Children() []Plan
	String() string
}

// ScanPlan reads a named base relation. Alias qualifies the columns.
type ScanPlan struct {
	Table  string
	Alias  string // effective name used for column qualification
	schema relation.Schema
}

// NewScanPlan builds a scan over a table with the (already qualified)
// schema.
func NewScanPlan(table, alias string, schema relation.Schema) *ScanPlan {
	return &ScanPlan{Table: table, Alias: alias, schema: schema}
}

// Schema implements Plan.
func (s *ScanPlan) Schema() relation.Schema { return s.schema }

// Children implements Plan.
func (s *ScanPlan) Children() []Plan { return nil }

// String implements Plan.
func (s *ScanPlan) String() string {
	if s.Alias != s.Table {
		return fmt.Sprintf("Scan(%s AS %s)", s.Table, s.Alias)
	}
	return fmt.Sprintf("Scan(%s)", s.Table)
}

// SelectPlan filters its input by a predicate (σ).
type SelectPlan struct {
	Input Plan
	Pred  sql.Expr
}

// Schema implements Plan.
func (s *SelectPlan) Schema() relation.Schema { return s.Input.Schema() }

// Children implements Plan.
func (s *SelectPlan) Children() []Plan { return []Plan{s.Input} }

// String implements Plan.
func (s *SelectPlan) String() string { return fmt.Sprintf("Select[%s](%s)", s.Pred, s.Input) }

// ProjectItem is one output column of a projection.
type ProjectItem struct {
	Expr sql.Expr
	Name string
}

// ProjectPlan computes output columns (π).
type ProjectPlan struct {
	Input  Plan
	Items  []ProjectItem
	schema relation.Schema
}

// NewProjectPlan builds a projection, deriving the output schema by
// compiling each item against the input schema.
func NewProjectPlan(input Plan, items []ProjectItem) (*ProjectPlan, error) {
	cols := make([]relation.Column, len(items))
	for i, it := range items {
		ce, err := Compile(it.Expr, input.Schema())
		if err != nil {
			return nil, fmt.Errorf("project item %q: %w", it.Name, err)
		}
		cols[i] = relation.Column{Name: it.Name, Type: ce.Type()}
	}
	schema, err := relation.NewSchema(cols...)
	if err != nil {
		// Duplicate output names: disambiguate positionally.
		for i := range cols {
			cols[i].Name = fmt.Sprintf("%s_%d", cols[i].Name, i+1)
		}
		schema = relation.MustSchema(cols...)
	}
	return &ProjectPlan{Input: input, Items: items, schema: schema}, nil
}

// Schema implements Plan.
func (p *ProjectPlan) Schema() relation.Schema { return p.schema }

// Children implements Plan.
func (p *ProjectPlan) Children() []Plan { return []Plan{p.Input} }

// String implements Plan.
func (p *ProjectPlan) String() string {
	names := make([]string, len(p.Items))
	for i, it := range p.Items {
		names[i] = it.Name
	}
	return fmt.Sprintf("Project[%s](%s)", strings.Join(names, ","), p.Input)
}

// JoinPlan is an inner join (⋈). On may be nil (cross product); the
// optimizer extracts equi-join keys into LeftKeys/RightKeys when it can,
// enabling hash joins; Residual holds the non-equi remainder.
type JoinPlan struct {
	Left, Right Plan
	On          sql.Expr
	schema      relation.Schema
}

// NewJoinPlan builds a join; the output schema is the concatenation.
func NewJoinPlan(left, right Plan, on sql.Expr) (*JoinPlan, error) {
	schema, err := left.Schema().Concat(right.Schema())
	if err != nil {
		return nil, fmt.Errorf("join: %w", err)
	}
	return &JoinPlan{Left: left, Right: right, On: on, schema: schema}, nil
}

// Schema implements Plan.
func (j *JoinPlan) Schema() relation.Schema { return j.schema }

// Children implements Plan.
func (j *JoinPlan) Children() []Plan { return []Plan{j.Left, j.Right} }

// String implements Plan.
func (j *JoinPlan) String() string {
	if j.On == nil {
		return fmt.Sprintf("Cross(%s, %s)", j.Left, j.Right)
	}
	return fmt.Sprintf("Join[%s](%s, %s)", j.On, j.Left, j.Right)
}

// AggSpec is one aggregate output.
type AggSpec struct {
	Func string   // SUM COUNT AVG MIN MAX
	Arg  sql.Expr // nil for COUNT(*)
	Name string
}

// AggregatePlan groups by the GroupBy expressions and computes aggregates.
type AggregatePlan struct {
	Input   Plan
	GroupBy []ProjectItem
	Aggs    []AggSpec
	Having  sql.Expr
	schema  relation.Schema
}

// NewAggregatePlan builds an aggregation node.
func NewAggregatePlan(input Plan, groupBy []ProjectItem, aggs []AggSpec, having sql.Expr) (*AggregatePlan, error) {
	cols := make([]relation.Column, 0, len(groupBy)+len(aggs))
	for _, g := range groupBy {
		ce, err := Compile(g.Expr, input.Schema())
		if err != nil {
			return nil, fmt.Errorf("group by %q: %w", g.Name, err)
		}
		cols = append(cols, relation.Column{Name: g.Name, Type: ce.Type()})
	}
	for _, a := range aggs {
		typ := relation.TFloat
		if a.Func == "COUNT" {
			typ = relation.TInt
		} else if a.Arg != nil {
			ce, err := Compile(a.Arg, input.Schema())
			if err != nil {
				return nil, fmt.Errorf("aggregate %q: %w", a.Name, err)
			}
			switch a.Func {
			case "MIN", "MAX":
				typ = ce.Type()
			case "SUM":
				typ = ce.Type()
				if typ != relation.TInt {
					typ = relation.TFloat
				}
			}
		}
		cols = append(cols, relation.Column{Name: a.Name, Type: typ})
	}
	schema, err := relation.NewSchema(cols...)
	if err != nil {
		return nil, fmt.Errorf("aggregate schema: %w", err)
	}
	return &AggregatePlan{Input: input, GroupBy: groupBy, Aggs: aggs, Having: having, schema: schema}, nil
}

// Schema implements Plan.
func (a *AggregatePlan) Schema() relation.Schema { return a.schema }

// Children implements Plan.
func (a *AggregatePlan) Children() []Plan { return []Plan{a.Input} }

// String implements Plan.
func (a *AggregatePlan) String() string {
	parts := make([]string, 0, len(a.Aggs))
	for _, ag := range a.Aggs {
		parts = append(parts, ag.Name)
	}
	return fmt.Sprintf("Aggregate[%s](%s)", strings.Join(parts, ","), a.Input)
}

// DistinctPlan removes duplicate rows (by value).
type DistinctPlan struct {
	Input Plan
}

// Schema implements Plan.
func (d *DistinctPlan) Schema() relation.Schema { return d.Input.Schema() }

// Children implements Plan.
func (d *DistinctPlan) Children() []Plan { return []Plan{d.Input} }

// String implements Plan.
func (d *DistinctPlan) String() string { return fmt.Sprintf("Distinct(%s)", d.Input) }

// Tables returns the base table names scanned by the plan, with their
// aliases, in left-to-right order.
func Tables(p Plan) []*ScanPlan {
	var out []*ScanPlan
	var walk func(Plan)
	walk = func(p Plan) {
		if s, ok := p.(*ScanPlan); ok {
			out = append(out, s)
			return
		}
		for _, c := range p.Children() {
			walk(c)
		}
	}
	walk(p)
	return out
}

// HasAggregate reports whether the plan contains an Aggregate node.
func HasAggregate(p Plan) bool {
	if _, ok := p.(*AggregatePlan); ok {
		return true
	}
	for _, c := range p.Children() {
		if HasAggregate(c) {
			return true
		}
	}
	return false
}

// SortItem is one ordering key of a SortPlan.
type SortItem struct {
	Expr sql.Expr
	Desc bool
}

// SortPlan orders its input by the given keys (ties broken by tid for
// determinism).
type SortPlan struct {
	Input Plan
	Keys  []SortItem
}

// Schema implements Plan.
func (s *SortPlan) Schema() relation.Schema { return s.Input.Schema() }

// Children implements Plan.
func (s *SortPlan) Children() []Plan { return []Plan{s.Input} }

// String implements Plan.
func (s *SortPlan) String() string {
	keys := make([]string, len(s.Keys))
	for i, k := range s.Keys {
		keys[i] = k.Expr.String()
		if k.Desc {
			keys[i] += " DESC"
		}
	}
	return fmt.Sprintf("Sort[%s](%s)", strings.Join(keys, ","), s.Input)
}

// LimitPlan truncates its input to N rows (in input order).
type LimitPlan struct {
	Input Plan
	N     int64
}

// Schema implements Plan.
func (l *LimitPlan) Schema() relation.Schema { return l.Input.Schema() }

// Children implements Plan.
func (l *LimitPlan) Children() []Plan { return []Plan{l.Input} }

// String implements Plan.
func (l *LimitPlan) String() string { return fmt.Sprintf("Limit[%d](%s)", l.N, l.Input) }
