package batch

import (
	"errors"

	"github.com/diorama/continual/internal/delta"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/vclock"
)

// ErrShape is returned by ToDeltaOrdered when the batch does not carry
// the ordered signed form (missing TS column or inconsistent lengths).
var ErrShape = errors.New("batch: not an ordered signed batch")

// EnableTS switches the batch into the ordered signed form that carries
// a per-row commit timestamp, used for batches built at the storage
// boundary. Must be called while the batch is empty.
func (b *Batch) EnableTS() {
	b.check()
	if b.TS == nil {
		b.TS = make([]vclock.Timestamp, 0, 8)
	}
	b.TS = b.TS[:0]
}

// FromSigned converts a signed delta into a pooled columnar batch. It
// reports ok=false — and returns no batch — when any value is
// unrepresentable under the schema's column types (kind mismatch or an
// untyped NULL), in which case the caller falls back to the row path.
func FromSigned(p *Pool, s *delta.Signed) (*Batch, bool) {
	b := p.Get(s.Schema, len(s.Rows))
	for _, r := range s.Rows {
		if !b.AppendRow(r.TID, int8(r.Sign), r.Values) {
			// released: partial fill discarded on the row-path fallback.
			p.Put(b)
			return nil, false
		}
	}
	return b, true
}

// AppendChange appends one differential row in its signed decomposition
// (-old then +new, deletes -old only, inserts +new only), stamping the
// row timestamps when the batch carries a TS column. Reports false on
// an unrepresentable value; the batch is then in an undefined state and
// must be discarded by the caller.
func (b *Batch) AppendChange(r delta.Row) bool {
	b.check()
	if r.Old != nil {
		if !b.AppendRow(r.TID, -1, r.Old) {
			return false
		}
		if b.TS != nil {
			b.TS[b.n-1] = r.TS
		}
	}
	if r.New != nil {
		if !b.AppendRow(r.TID, +1, r.New) {
			return false
		}
		if b.TS != nil {
			b.TS[b.n-1] = r.TS
		}
	}
	return true
}

// FromDelta converts a differential window into its ordered signed
// batch form (TS column populated). ok=false means some value was
// unrepresentable and the caller must use the row-oriented window.
func FromDelta(p *Pool, d *delta.Delta) (*Batch, bool) {
	b := p.Get(d.Schema(), d.Len()*2)
	b.EnableTS()
	for _, r := range d.Rows() {
		if !b.AppendChange(r) {
			// released: partial fill discarded on the row-path fallback.
			p.Put(b)
			return nil, false
		}
	}
	return b, true
}

// ToSigned materializes the batch as a row-oriented signed delta. All
// row value slices share one flat backing array, so the conversion
// costs two allocations regardless of row count, and the result owns
// its memory — it stays valid after the batch returns to the pool.
func (b *Batch) ToSigned() *delta.Signed {
	b.check()
	out := &delta.Signed{Schema: b.Schema}
	if b.n == 0 {
		return out
	}
	width := len(b.Cols)
	flat := make([]relation.Value, b.n*width)
	out.Rows = make([]delta.SignedRow, b.n)
	for i := 0; i < b.n; i++ {
		vals := flat[i*width : (i+1)*width : (i+1)*width]
		b.ReadRow(i, vals)
		out.Rows[i] = delta.SignedRow{TID: b.TIDs[i], Values: vals, Sign: int(b.Signs[i])}
	}
	return out
}

// ToDeltaOrdered reconstructs the differential rows from an ordered
// signed batch (the exact inverse of FromDelta / AppendChange): a -1
// row immediately followed by a +1 row with the same tid and timestamp
// is a modification; a lone +1 is an insertion; a lone -1 is a
// deletion. This is lossless because within one commit each table's
// tids are unique, so adjacency fully determines pairing.
func (b *Batch) ToDeltaOrdered() (*delta.Delta, error) {
	b.check()
	if b.TS == nil && b.n > 0 {
		return nil, ErrShape
	}
	out := delta.New(b.Schema)
	width := len(b.Cols)
	for i := 0; i < b.n; i++ {
		switch {
		case b.Signs[i] > 0:
			vals := make([]relation.Value, width)
			b.ReadRow(i, vals)
			if err := out.AppendInsert(b.TIDs[i], vals, b.TS[i]); err != nil {
				return nil, err
			}
		case i+1 < b.n && b.Signs[i+1] > 0 && b.TIDs[i+1] == b.TIDs[i] && b.TS[i+1] == b.TS[i]:
			old := make([]relation.Value, width)
			now := make([]relation.Value, width)
			b.ReadRow(i, old)
			b.ReadRow(i+1, now)
			if err := out.AppendModify(b.TIDs[i], old, now, b.TS[i]); err != nil {
				return nil, err
			}
			i++
		default:
			vals := make([]relation.Value, width)
			b.ReadRow(i, vals)
			if err := out.AppendDelete(b.TIDs[i], vals, b.TS[i]); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
