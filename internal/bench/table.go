// Package bench implements the experiment harness: every quantitative
// claim of the paper's evaluation (the worked Examples 1-2 and the
// strawman performance arguments of Section 5) has a runner here that
// regenerates the corresponding table. See EXPERIMENTS.md for the
// experiment index and DESIGN.md for the module map.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"github.com/diorama/continual/internal/dra"
	"github.com/diorama/continual/internal/obs"
)

// Table is one experiment's output, rendered in the row/series layout of
// EXPERIMENTS.md.
type Table struct {
	ID     string
	Title  string
	Note   string
	Header []string
	Rows   [][]string
	// AllocsPerOp and BytesPerOp optionally carry one heap measurement
	// per row (parallel to Rows). When populated, Render and WriteJSON
	// append allocs/op and bytes/op columns, so the committed
	// BENCH_<ID>.json files expose allocation regressions without
	// re-running the experiment.
	AllocsPerOp []uint64
	BytesPerOp  []uint64
}

// memColumns reports whether the table carries per-row heap
// measurements for every row.
func (t *Table) memColumns() bool {
	return len(t.AllocsPerOp) == len(t.Rows) && len(t.BytesPerOp) == len(t.Rows) && len(t.Rows) > 0
}

// expandMem returns the header and rows with the optional heap columns
// appended.
func (t *Table) expandMem() ([]string, [][]string) {
	if !t.memColumns() {
		return t.Header, t.Rows
	}
	header := append(append([]string{}, t.Header...), "allocs/op", "bytes/op")
	rows := make([][]string, len(t.Rows))
	for i, row := range t.Rows {
		rows[i] = append(append([]string{}, row...),
			fmt.Sprint(t.AllocsPerOp[i]), fmt.Sprint(t.BytesPerOp[i]))
	}
	return header, rows
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "%s\n", t.Note)
	}
	header, tableRows := t.expandMem()
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range tableRows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range tableRows {
		line(row)
	}
	fmt.Fprintln(w)
}

// WriteJSON writes the table as a machine-readable JSON document — the
// format behind cqbench -json, which CI archives as BENCH_<ID>.json so
// regressions are diffable without parsing the aligned-text render.
func (t *Table) WriteJSON(w io.Writer) error {
	header, tableRows := t.expandMem()
	doc := struct {
		ID     string     `json:"id"`
		Title  string     `json:"title"`
		Note   string     `json:"note,omitempty"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	}{t.ID, t.Title, t.Note, header, tableRows}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Scale sets the dataset sizes; Quick keeps unit-test latency, Paper is
// the size cmd/cqbench uses for EXPERIMENTS.md numbers.
type Scale struct {
	BaseRows   int // size of the base relation(s)
	Iterations int // measured refreshes per point
	// Metrics optionally instruments every engine and manager the
	// experiments build; cqbench passes a registry here and prints its
	// snapshot after each experiment. Nil keeps the measured code paths
	// uninstrumented.
	Metrics *obs.Registry
}

// NewEngine builds a DRA engine for an experiment, instrumented when the
// scale carries a metrics registry.
func (s Scale) NewEngine() *dra.Engine {
	e := dra.NewEngine()
	if s.Metrics != nil {
		e.Instrument(s.Metrics)
	}
	return e
}

// Quick is the test-suite scale.
var Quick = Scale{BaseRows: 2_000, Iterations: 3}

// Paper is the reported scale.
var Paper = Scale{BaseRows: 50_000, Iterations: 7}

// stopwatch measures the median of n runs of f.
func stopwatch(n int, f func() error) (time.Duration, error) {
	if n < 1 {
		n = 1
	}
	times := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		times = append(times, time.Since(start))
	}
	// insertion sort; n is tiny
	for i := 1; i < len(times); i++ {
		for j := i; j > 0 && times[j] < times[j-1]; j-- {
			times[j], times[j-1] = times[j-1], times[j]
		}
	}
	return times[len(times)/2], nil
}

// stopwatchAllocs measures the median duration of n runs of f along
// with the mean heap allocations and allocated bytes per run
// (runtime.MemStats.Mallocs/TotalAlloc around each call). Allocation
// counts make compile-once wins visible: two paths with similar latency
// can differ by thousands of per-refresh allocations that only show up
// as GC pressure at scale.
func stopwatchAllocs(n int, f func() error) (time.Duration, uint64, uint64, error) {
	if n < 1 {
		n = 1
	}
	times := make([]time.Duration, 0, n)
	var ms0, ms1 runtime.MemStats
	var mallocs, bytes uint64
	for i := 0; i < n; i++ {
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		if err := f(); err != nil {
			return 0, 0, 0, err
		}
		times = append(times, time.Since(start))
		runtime.ReadMemStats(&ms1)
		mallocs += ms1.Mallocs - ms0.Mallocs
		bytes += ms1.TotalAlloc - ms0.TotalAlloc
	}
	sortDurations(times)
	return times[len(times)/2], mallocs / uint64(n), bytes / uint64(n), nil
}

func us(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Nanoseconds())/1e3)
}

func ratio(a, b time.Duration) string {
	if a <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", float64(b)/float64(a))
}

func sortDurations(ds []time.Duration) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j] < ds[j-1]; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}
