package continual

import (
	"github.com/diorama/continual/internal/remote"
)

// Listener is a handle on a serving endpoint.
type Listener struct {
	srv  *remote.Server
	addr string
}

// Addr returns the bound address.
func (l *Listener) Addr() string { return l.addr }

// Close stops serving and closes all client connections.
func (l *Listener) Close() error { return l.srv.Close() }

// ListenAndServe exposes this engine's tables over TCP so remote clients
// can snapshot them, pull differential windows, and run one-shot queries
// — the server side of the paper's client/server split (Section 5.1:
// "each server only generates delta relations when communicating with
// the clients"). Use "127.0.0.1:0" to pick a free port.
func (db *DB) ListenAndServe(addr string) (*Listener, error) {
	srv := remote.NewServer(db.store)
	bound, err := srv.Serve(addr)
	if err != nil {
		return nil, err
	}
	return &Listener{srv: srv, addr: bound}, nil
}

// Mirror is a client-side continual query over a remote engine: the
// operand tables are snapshotted once, and every Refresh pulls only the
// differential windows since the last refresh, re-evaluating the query
// locally with the DRA — "shifting the processing to the client side"
// (Section 6).
type Mirror struct {
	client *remote.Client
	cq     *remote.MirrorCQ
}

// DialMirror connects to a serving engine and installs a client-side
// continual query.
func DialMirror(addr, query string) (*Mirror, error) {
	client, err := remote.Dial(addr)
	if err != nil {
		return nil, err
	}
	cq, err := remote.NewMirrorCQ(client, query)
	if err != nil {
		_ = client.Close()
		return nil, err
	}
	return &Mirror{client: client, cq: cq}, nil
}

// Result returns the current locally cached result.
func (m *Mirror) Result() *Rows { return fromRelation(m.cq.Result()) }

// Refresh pulls the pending differential windows and re-evaluates the
// query locally, returning what changed.
func (m *Mirror) Refresh() (*Change, error) {
	d, err := m.cq.Refresh()
	if err != nil {
		return nil, err
	}
	change := &Change{
		Inserted: rowsData(d.Insertions()),
		Deleted:  rowsData(d.Deletions()),
		Modified: modifications(d.Modifications()),
	}
	cols := d.Schema()
	change.Columns = make([]string, cols.Len())
	for i := range change.Columns {
		change.Columns[i] = cols.Col(i).Name
	}
	return change, nil
}

// BytesReceived reports the total bytes shipped from the server to this
// mirror — the measurable half of the network-traffic argument (§5.1).
func (m *Mirror) BytesReceived() int64 { return m.client.BytesRead() }

// Close disconnects the mirror.
func (m *Mirror) Close() error { return m.client.Close() }
