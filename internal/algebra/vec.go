package algebra

import (
	"github.com/diorama/continual/internal/batch"
	"github.com/diorama/continual/internal/relation"
)

// SelectBatch evaluates a compiled predicate over a columnar batch and
// appends the indices of passing rows to sel (which callers obtain from
// a batch.Pool). Semantics are identical to evaluating EvalPredicate
// row by row — NULL collapses to false, AND/OR short-circuit, and type
// errors surface on the first row that would have raised them on the
// row path — so the two pipelines stay transcript-equivalent.
//
// AND conjuncts evaluate as successive filters over the surviving
// selection (column-at-a-time), and comparisons of a bare column
// against a literal run as typed loops over the column slice; every
// other shape falls back to a scratch-tuple row loop, which is still
// allocation-free per row because Eval returns values, not pointers.
func SelectBatch(pred CompiledExpr, b *batch.Batch, sel []int32) ([]int32, error) {
	n := b.Len()
	if n == 0 {
		return sel, nil
	}
	scratch := make([]relation.Value, b.Schema.Len())
	return selectRows(pred, b, nil, sel, scratch)
}

// selectRows filters the row set `in` (nil = all rows of b) by pred,
// appending survivors to out.
func selectRows(pred CompiledExpr, b *batch.Batch, in, out []int32, scratch []relation.Value) ([]int32, error) {
	if be, ok := pred.(binExpr); ok {
		switch be.op {
		case "AND":
			// Successive filtering matches the row path's short-circuit:
			// rows rejected by the left conjunct never evaluate the right.
			mid, err := selectRows(be.l, b, in, nil, scratch)
			if err != nil {
				return out, err
			}
			return selectRows(be.r, b, mid, out, scratch)
		case "=", "!=", "<", "<=", ">", ">=":
			if done, res, err := selectCompare(be, b, in, out); done {
				return res, err
			}
		}
	}
	// General shape: row loop over the selection with a reused scratch
	// tuple. EvalPredicate reproduces the row path bit for bit.
	return selectGeneric(pred, b, in, out, scratch)
}

func selectGeneric(pred CompiledExpr, b *batch.Batch, in, out []int32, scratch []relation.Value) ([]int32, error) {
	n := int32(b.Len())
	eval := func(i int32) (bool, error) {
		b.ReadRow(int(i), scratch)
		return EvalPredicate(pred, relation.Tuple{TID: b.TIDs[i], Values: scratch})
	}
	if in == nil {
		for i := int32(0); i < n; i++ {
			ok, err := eval(i)
			if err != nil {
				return out, err
			}
			if ok {
				out = append(out, i)
			}
		}
		return out, nil
	}
	for _, i := range in {
		ok, err := eval(i)
		if err != nil {
			return out, err
		}
		if ok {
			out = append(out, i)
		}
	}
	return out, nil
}

// ColumnIndexOf reports the schema position a compiled expression reads
// when it is a bare column reference; projection uses this to detect
// columns that survive verbatim and can move by slice reuse instead of
// re-evaluation.
func ColumnIndexOf(ce CompiledExpr) (int, bool) {
	c, ok := ce.(colExpr)
	if !ok {
		return 0, false
	}
	return c.idx, true
}

// IsLiteral reports whether the expression is a constant, with its value.
func IsLiteral(ce CompiledExpr) (relation.Value, bool) {
	l, ok := ce.(litExpr)
	if !ok {
		return relation.Value{}, false
	}
	return l.v, true
}

// selectCompare runs a typed column-at-a-time loop for comparisons of a
// bare column against a literal. done=false means the shape or types
// are outside the fast path and the caller must use the generic loop
// (which also reproduces the row path's error behavior for
// incomparable kinds).
func selectCompare(be binExpr, b *batch.Batch, in, out []int32) (done bool, _ []int32, _ error) {
	col, lit, op := be.l, be.r, be.op
	ci, ok := ColumnIndexOf(col)
	if !ok {
		// literal <op> column: flip the comparison.
		ci, ok = ColumnIndexOf(lit)
		if !ok {
			return false, out, nil
		}
		col, lit = lit, col
		op = flipCmp(op)
	}
	lv, ok := IsLiteral(lit)
	if !ok {
		return false, out, nil
	}
	c := &b.Cols[ci]
	if lv.IsNull() {
		// comparison with NULL is NULL for every row -> selects nothing,
		// raising no error, exactly as evalComparison does.
		return true, out, nil
	}
	switch {
	case c.Type == relation.TInt && lv.Kind == relation.TInt:
		k := lv.AsInt()
		return true, collect(b, in, &out, func(i int32) bool {
			return c.IsValid(int(i)) && cmpOK(op, compareI64(c.I64[i], k))
		}), nil
	case c.Type == relation.TInt && lv.Kind == relation.TFloat:
		k := lv.AsFloat()
		return true, collect(b, in, &out, func(i int32) bool {
			return c.IsValid(int(i)) && cmpOK(op, compareF64(float64(c.I64[i]), k))
		}), nil
	case c.Type == relation.TFloat && (lv.Kind == relation.TFloat || lv.Kind == relation.TInt):
		k := lv.AsFloat()
		return true, collect(b, in, &out, func(i int32) bool {
			return c.IsValid(int(i)) && cmpOK(op, compareF64(c.F64[i], k))
		}), nil
	case c.Type == relation.TString && lv.Kind == relation.TString:
		k := lv.AsString()
		return true, collect(b, in, &out, func(i int32) bool {
			return c.IsValid(int(i)) && cmpOK(op, compareStr(c.Str[i], k))
		}), nil
	case c.Type == relation.TBool && lv.Kind == relation.TBool:
		k := lv.AsBool()
		return true, collect(b, in, &out, func(i int32) bool {
			return c.IsValid(int(i)) && cmpOK(op, compareBool(c.B[i], k))
		}), nil
	}
	// Incomparable kinds: let the generic loop raise the row path's
	// ErrTypeMismatch on the first evaluated row.
	return false, out, nil
}

func collect(b *batch.Batch, in []int32, out *[]int32, pass func(int32) bool) []int32 {
	if in == nil {
		n := int32(b.Len())
		for i := int32(0); i < n; i++ {
			if pass(i) {
				*out = append(*out, i)
			}
		}
		return *out
	}
	for _, i := range in {
		if pass(i) {
			*out = append(*out, i)
		}
	}
	return *out
}

func flipCmp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op // = and != are symmetric
}

func cmpOK(op string, cmp int) bool {
	switch op {
	case "=":
		return cmp == 0
	case "!=":
		return cmp != 0
	case "<":
		return cmp < 0
	case "<=":
		return cmp <= 0
	case ">":
		return cmp > 0
	default:
		return cmp >= 0
	}
}

func compareI64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func compareF64(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func compareStr(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func compareBool(a, b bool) int {
	switch {
	case !a && b:
		return -1
	case a && !b:
		return 1
	}
	return 0
}
