package obs

import (
	"encoding/json"
	"net/http"
)

// Handler serves the registry snapshot as JSON — mount it at /stats.
// Works with a nil registry (serves an empty snapshot).
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
}

// TracesHandler serves the recent refresh traces as JSON — mount it at
// /debug/traces. Works with a nil log (serves an empty list).
func TracesHandler(l *TraceLog) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		spans := l.Recent()
		if spans == nil {
			spans = []*Span{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(spans)
	})
}

// Healthz serves a readiness check as JSON: HTTP 200 when ready, 503
// Service Unavailable when not, with the detail value as the body —
// the shape load balancers and process supervisors probe.
func Healthz(check func() (ready bool, detail any)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		ready, detail := check()
		w.Header().Set("Content-Type", "application/json")
		if !ready {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(detail)
	})
}

// Mux returns an http.Handler with the daemon's observability routes:
// /stats and /debug/traces.
func Mux(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/stats", Handler(r))
	mux.Handle("/debug/traces", TracesHandler(r.Traces()))
	return mux
}

// MuxHealth is Mux plus /healthz backed by check.
func MuxHealth(r *Registry, check func() (ready bool, detail any)) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/stats", Handler(r))
	mux.Handle("/debug/traces", TracesHandler(r.Traces()))
	mux.Handle("/healthz", Healthz(check))
	return mux
}
