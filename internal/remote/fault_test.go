package remote

import (
	"errors"
	"math/rand"
	"net"
	"testing"
	"time"

	"github.com/diorama/continual/internal/faults"
	"github.com/diorama/continual/internal/obs"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/storage"
)

// testPolicy is a fast retry policy for tests: real reconnects, no real
// sleeping.
func testPolicy() Policy {
	p := DefaultPolicy()
	p.IOTimeout = 2 * time.Second
	p.MaxAttempts = 5
	p.BackoffBase = time.Millisecond
	p.BackoffMax = 5 * time.Millisecond
	p.Sleep = func(time.Duration) {}
	return p
}

// startFaultyServer brings up an instrumented server behind a fault
// injector (server-side conns are faulty) and a policy-driven client
// dialing through the same injector.
func startFaultyServer(t *testing.T, plan faults.Plan) (*storage.Store, *faults.Injector, *Client, *obs.Registry) {
	t.Helper()
	store := storage.NewStore()
	if err := store.CreateTable("stocks", stockSchema()); err != nil {
		t.Fatal(err)
	}
	inj := faults.NewInjector(plan)
	srv := NewServer(store)
	reg := obs.NewRegistry()
	srv.Instrument(reg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.ServeListener(inj.WrapListener(ln))
	t.Cleanup(func() { _ = srv.Close() })

	p := testPolicy()
	p.Dialer = inj.Dialer(nil)
	client, err := DialPolicy(addr, p)
	if err != nil {
		t.Fatal(err)
	}
	client.Instrument(reg)
	t.Cleanup(func() { _ = client.Close() })
	return store, inj, client, reg
}

func TestClientReconnectsAfterConnKill(t *testing.T) {
	store, inj, client, reg := startFaultyServer(t, faults.Plan{Seed: 1})
	insertStock(t, store, "DEC", 150)

	snap, _, err := client.Snapshot("stocks")
	if err != nil || snap.Len() != 1 {
		t.Fatalf("baseline snapshot: len=%v err=%v", snap, err)
	}
	// Cable pull: every live conn dies. The next idempotent request must
	// recover transparently on a fresh connection.
	inj.KillActive()
	snap, _, err = client.Snapshot("stocks")
	if err != nil {
		t.Fatalf("snapshot after kill: %v", err)
	}
	if snap.Len() != 1 {
		t.Errorf("post-kill snapshot len = %d", snap.Len())
	}
	c := reg.Snapshot().Counters
	if c["remote.client.reconnects"] == 0 {
		t.Errorf("reconnects not counted: %v", c)
	}
	if c["remote.client.retries"] == 0 {
		t.Errorf("retries not counted: %v", c)
	}
	if c["remote.client.broken_conns"] == 0 {
		t.Errorf("broken conns not counted: %v", c)
	}
}

// TestMirrorCQSurvivesConnKill is the acceptance scenario: a Mirror CQ
// whose connection is killed mid-stream recovers on the next Refresh by
// re-pulling DeltaSince(lastTS) — no snapshot re-pull — and its result
// matches an unfaulted server-side evaluation.
func TestMirrorCQSurvivesConnKill(t *testing.T) {
	store, inj, client, reg := startFaultyServer(t, faults.Plan{Seed: 2})
	insertStock(t, store, "DEC", 150)
	insertStock(t, store, "IBM", 75)

	cq, err := NewMirrorCQ(client, "SELECT * FROM stocks WHERE price > 120")
	if err != nil {
		t.Fatal(err)
	}
	snapshotsAtInit := reg.Snapshot().Counters["remote.snapshots_served"]

	// Updates arrive, then the connection dies before the refresh.
	insertStock(t, store, "MAC", 130)
	insertStock(t, store, "LOW", 10)
	inj.KillActive()

	d, err := cq.Refresh()
	if err != nil {
		t.Fatalf("refresh after kill: %v", err)
	}
	if ins, del, mod := d.Counts(); ins != 1 || del != 0 || mod != 0 {
		t.Errorf("refresh delta = %d/%d/%d, want 1/0/0", ins, del, mod)
	}
	if cq.Stale() {
		t.Error("recovered CQ still marked stale")
	}

	// Another kill mid-sequence, another refresh round.
	insertStock(t, store, "SUN", 180)
	inj.KillActive()
	if _, err := cq.Refresh(); err != nil {
		t.Fatalf("second refresh after kill: %v", err)
	}

	// Result identical to an unfaulted server-side run.
	truth, _, err := client.Query("SELECT * FROM stocks WHERE price > 120")
	if err != nil {
		t.Fatal(err)
	}
	if !cq.Result().EqualContents(truth) {
		t.Errorf("mirror diverged after faults:\n%s\nvs\n%s", cq.Result(), truth)
	}

	// Differential resumption: recovery re-pulled windows, never a
	// fresh snapshot.
	c := reg.Snapshot().Counters
	if got := c["remote.snapshots_served"]; got != snapshotsAtInit {
		t.Errorf("recovery re-pulled snapshots: %d -> %d", snapshotsAtInit, got)
	}
	if c["remote.client.reconnects"] < 2 {
		t.Errorf("expected >= 2 reconnects, got %d", c["remote.client.reconnects"])
	}
}

func TestMirrorServesStaleDuringPartition(t *testing.T) {
	store, inj, client, _ := startFaultyServer(t, faults.Plan{Seed: 3})
	insertStock(t, store, "DEC", 150)

	cq, err := NewMirrorCQ(client, "SELECT * FROM stocks WHERE price > 120")
	if err != nil {
		t.Fatal(err)
	}
	tsBefore := cq.LastTS()
	insertStock(t, store, "MAC", 130)

	inj.Partition()
	if _, err := cq.Refresh(); err == nil {
		t.Fatal("refresh during partition should fail")
	}
	// Degraded mode: last good result still served, marked stale.
	if !cq.Stale() {
		t.Error("CQ not marked stale during partition")
	}
	if cq.LastErr() == nil {
		t.Error("LastErr empty during partition")
	}
	if cq.Result().Len() != 1 {
		t.Errorf("stale result = %d rows, want the pre-partition 1", cq.Result().Len())
	}
	if cq.LastTS() != tsBefore {
		t.Errorf("lastTS moved during failed refresh: %d -> %d", tsBefore, cq.LastTS())
	}

	// Heal: the next refresh resumes from lastTS and catches up.
	inj.Heal()
	d, err := cq.Refresh()
	if err != nil {
		t.Fatalf("refresh after heal: %v", err)
	}
	if ins, _, _ := d.Counts(); ins != 1 {
		t.Errorf("catch-up insertions = %d, want 1", ins)
	}
	if cq.Stale() || cq.LastErr() != nil {
		t.Error("CQ still stale after successful refresh")
	}
}

func TestApplyUpdatesSurfacesMaybeApplied(t *testing.T) {
	// Client-side conn dies during the ApplyUpdates exchange (the dial
	// succeeds; the first I/O op on the fresh conn is killed). The
	// client must NOT blindly retry a possibly-committed batch.
	store, _, client, _ := startFaultyServer(t, faults.Plan{Seed: 4, DropAfterOps: 0})
	insertStock(t, store, "A", 10)

	// Swap in a dialer whose connections die on their first op.
	lossy := faults.NewInjector(faults.Plan{Seed: 5, DropAfterOps: 1})
	client.mu.Lock()
	client.policy.Dialer = lossy.Dialer(nil)
	client.mu.Unlock()
	lossy.KillActive()

	// Force a reconnect through the lossy dialer.
	client.mu.Lock()
	client.breakConnLocked(errors.New("test: force redial"))
	client.mu.Unlock()

	err := client.ApplyUpdates("stocks", []WireDeltaRow{
		{New: []relation.Value{relation.Str("B"), relation.Float(20)}},
	})
	if !errors.Is(err, ErrMaybeApplied) {
		t.Fatalf("err = %v, want ErrMaybeApplied", err)
	}
}

func TestIdempotentOpsRetryThroughLossyLink(t *testing.T) {
	// 5% per-op drop probability on BOTH ends of every conn (dialer and
	// listener are injector-wrapped, so a request sees ~8 faulted ops):
	// reads must still converge via retries within the attempt budget.
	store, _, client, _ := startFaultyServer(t, faults.Plan{Seed: 6, DropProb: 0.05})
	client.mu.Lock()
	client.policy.MaxAttempts = 10
	client.mu.Unlock()
	insertStock(t, store, "DEC", 150)

	for i := 0; i < 15; i++ {
		if _, _, err := client.Snapshot("stocks"); err != nil {
			t.Fatalf("snapshot %d through lossy link: %v", i, err)
		}
		if _, err := client.Now(); err != nil {
			t.Fatalf("now %d through lossy link: %v", i, err)
		}
	}
}

func TestClientTimeoutOnUnresponsiveServer(t *testing.T) {
	// A listener that accepts and then never replies: the request must
	// fail by deadline, not hang.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			buf := make([]byte, 1024)
			for {
				if _, err := conn.Read(buf); err != nil {
					return
				}
			}
		}
	}()
	p := testPolicy()
	p.IOTimeout = 50 * time.Millisecond
	p.MaxAttempts = 2
	client, err := DialPolicy(ln.Addr().String(), p)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	reg := obs.NewRegistry()
	client.Instrument(reg)

	start := time.Now()
	if _, err := client.Now(); err == nil {
		t.Fatal("request against black-hole server succeeded")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("timeout took %v, deadlines not applied", d)
	}
	if reg.Snapshot().Counters["remote.client.timeouts"] == 0 {
		t.Error("timeout not counted")
	}
}

func TestServerShedsIdlePeers(t *testing.T) {
	store := storage.NewStore()
	if err := store.CreateTable("stocks", stockSchema()); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store)
	srv.SetIdleTimeout(30 * time.Millisecond)
	reg := obs.NewRegistry()
	srv.Instrument(reg)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })

	// A raw TCP peer that connects and goes silent.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		snap := reg.Snapshot()
		if snap.Counters["remote.read_timeouts"] >= 1 && snap.Gauges["remote.conns"] == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	snap := reg.Snapshot()
	t.Fatalf("idle peer not shed: read_timeouts=%d conns=%d",
		snap.Counters["remote.read_timeouts"], snap.Gauges["remote.conns"])
}

func TestServerCountsBrokenConns(t *testing.T) {
	store := storage.NewStore()
	srv := NewServer(store)
	reg := obs.NewRegistry()
	srv.Instrument(reg)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })

	// Half a frame, then death: the server must count a broken conn.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte{0, 0, 1, 0, 0xAB}); err != nil { // prefix claims 256B, sends 1
		t.Fatal(err)
	}
	_ = conn.Close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if reg.Snapshot().Counters["remote.conns_broken"] >= 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("mid-frame death not counted as broken conn")
}

func TestServerCloseIsGracefulAndPrompt(t *testing.T) {
	store, _, client := startServer(t)
	insertStock(t, store, "A", 1)
	// A healthy request, then Close with the client's reader idle: Close
	// must return promptly (deadline nudge), not wait out any timeout.
	if _, err := client.Now(); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Now(); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("graceful close took %v", d)
	}
	// Idempotent.
	if err := srv.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestClientClosedDoesNotReconnect(t *testing.T) {
	_, _, client, _ := startFaultyServer(t, faults.Plan{Seed: 8})
	if _, err := client.Now(); err != nil {
		t.Fatal(err)
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Now(); !errors.Is(err, ErrClientClosed) {
		t.Errorf("request after Close: err = %v, want ErrClientClosed", err)
	}
}

func TestBackoffScheduleIsCappedExponential(t *testing.T) {
	p := Policy{BackoffBase: 10 * time.Millisecond, BackoffMax: 80 * time.Millisecond}
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 80 * time.Millisecond, 80 * time.Millisecond,
	}
	for i, w := range want {
		if got := p.backoff(i+1, nil); got != w {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
	// Jitter stays within the configured band.
	p.Jitter = 0.5
	rng := rand.New(rand.NewSource(1))
	for retry := 1; retry <= 6; retry++ {
		base := want[retry-1]
		for i := 0; i < 50; i++ {
			got := p.backoff(retry, rng)
			lo := time.Duration(float64(base) * 0.5)
			hi := time.Duration(float64(base) * 1.5)
			if got < lo || got > hi {
				t.Fatalf("jittered backoff(%d) = %v outside [%v, %v]", retry, got, lo, hi)
			}
		}
	}
}

func TestBytesCountersSurviveReconnect(t *testing.T) {
	store, inj, client, _ := startFaultyServer(t, faults.Plan{Seed: 9})
	insertStock(t, store, "A", 1)
	if _, _, err := client.Snapshot("stocks"); err != nil {
		t.Fatal(err)
	}
	before := client.BytesRead()
	if before == 0 {
		t.Fatal("no bytes counted before kill")
	}
	inj.KillActive()
	if _, _, err := client.Snapshot("stocks"); err != nil {
		t.Fatal(err)
	}
	if after := client.BytesRead(); after <= before {
		t.Errorf("bytes counter went %d -> %d across reconnect", before, after)
	}
}
