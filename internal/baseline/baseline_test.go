package baseline

import (
	"testing"

	"github.com/diorama/continual/internal/algebra"
	"github.com/diorama/continual/internal/delta"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/storage"
	"github.com/diorama/continual/internal/vclock"
)

func stockSchema() relation.Schema {
	return relation.MustSchema(
		relation.Column{Name: "name", Type: relation.TString},
		relation.Column{Name: "price", Type: relation.TFloat},
	)
}

func setup(t *testing.T) (*storage.Store, algebra.Plan) {
	t.Helper()
	s := storage.NewStore()
	if err := s.CreateTable("stocks", stockSchema()); err != nil {
		t.Fatal(err)
	}
	plan, err := algebra.PlanSQL("SELECT * FROM stocks WHERE price > 100", s.Live())
	if err != nil {
		t.Fatal(err)
	}
	return s, algebra.Optimize(plan)
}

func insert(t *testing.T, s *storage.Store, name string, price float64) relation.TID {
	t.Helper()
	tx := s.Begin()
	tid, err := tx.Insert("stocks", []relation.Value{relation.Str(name), relation.Float(price)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return tid
}

func deltasSince(t *testing.T, s *storage.Store, ts vclock.Timestamp) map[string]*delta.Delta {
	t.Helper()
	d, err := s.DeltaSince("stocks", ts)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*delta.Delta{"stocks": d}
}

func TestFullBaselineTracksChanges(t *testing.T) {
	s, plan := setup(t)
	insert(t, s, "A", 150)
	f, err := NewFull(plan, s.Live())
	if err != nil {
		t.Fatal(err)
	}
	if f.Result().Len() != 1 {
		t.Fatalf("initial = %d", f.Result().Len())
	}
	insert(t, s, "B", 200)
	d, err := f.Step(s.Live(), s.Now())
	if err != nil {
		t.Fatal(err)
	}
	ins, del, mod := d.Counts()
	if ins != 1 || del != 0 || mod != 0 {
		t.Errorf("counts = %d/%d/%d", ins, del, mod)
	}
	if f.Result().Len() != 2 {
		t.Errorf("result = %d", f.Result().Len())
	}
}

func TestAppendOnlyCorrectOnAppendOnlyStreams(t *testing.T) {
	s, plan := setup(t)
	insert(t, s, "A", 150)
	last := s.Now()
	ao, err := NewAppendOnly(plan, s.Live())
	if err != nil {
		t.Fatal(err)
	}
	full, err := NewFull(plan, s.Live())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		price := float64(50 + i*20) // some above, some below 100
		insert(t, s, "S", price)
		pre := s.At(last)
		if _, err := ao.Step(deltasSince(t, s, last), pre, s.Live(), s.Now()); err != nil {
			t.Fatal(err)
		}
		if _, err := full.Step(s.Live(), s.Now()); err != nil {
			t.Fatal(err)
		}
		last = s.Now()
		if !ao.Result().EqualContents(full.Result()) {
			t.Fatalf("append-only diverged on an append-only stream at step %d:\n%s\nvs\n%s",
				i, ao.Result(), full.Result())
		}
	}
}

func TestAppendOnlyMissesDeletionsAndModifications(t *testing.T) {
	s, plan := setup(t)
	tidA := insert(t, s, "A", 150)
	tidB := insert(t, s, "B", 200)
	last := s.Now()

	ao, err := NewAppendOnly(plan, s.Live())
	if err != nil {
		t.Fatal(err)
	}

	// Delete A and modify B below the predicate: a correct system drops
	// both from the result.
	tx := s.Begin()
	if err := tx.Delete("stocks", tidA); err != nil {
		t.Fatal(err)
	}
	if err := tx.Update("stocks", tidB, []relation.Value{relation.Str("B"), relation.Float(50)}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	if _, err := ao.Step(deltasSince(t, s, last), s.At(last), s.Live(), s.Now()); err != nil {
		t.Fatal(err)
	}
	// The append-only baseline still reports both stale tuples...
	if ao.Result().Len() != 2 {
		t.Fatalf("append-only result = %d (staleness expected to keep 2)", ao.Result().Len())
	}
	// ...whereas the truth is empty.
	truth, err := algebra.NewExecutor(s.Live()).Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if truth.Len() != 0 {
		t.Fatalf("truth = %d", truth.Len())
	}
}

func TestAppendOnlyReportsOnlyNewMatches(t *testing.T) {
	s, plan := setup(t)
	insert(t, s, "A", 150)
	last := s.Now()
	ao, _ := NewAppendOnly(plan, s.Live())
	insert(t, s, "HIGH", 300)
	insert(t, s, "LOW", 10)
	added, err := ao.Step(deltasSince(t, s, last), s.At(last), s.Live(), s.Now())
	if err != nil {
		t.Fatal(err)
	}
	if added.Len() != 1 || added.At(0).Values[0].AsString() != "HIGH" {
		t.Errorf("added = \n%s", added)
	}
}
