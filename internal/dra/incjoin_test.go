package dra

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"github.com/diorama/continual/internal/algebra"
	"github.com/diorama/continual/internal/relation"
)

func newIncJoin(t *testing.T, f *fixture, query string) (*IncrementalJoin, algebra.Plan) {
	t.Helper()
	plan := f.plan(t, query)
	ij, err := NewIncrementalJoin(NewEngine(), plan, f.store.Live())
	if err != nil {
		t.Fatalf("NewIncrementalJoin: %v", err)
	}
	return ij, plan
}

func incJoinStepAndVerify(t *testing.T, f *fixture, ij *IncrementalJoin, plan algebra.Plan) *Result {
	t.Helper()
	ctx := f.ctx(t)
	res, err := ij.Step(ctx, f.store.Now())
	if err != nil {
		t.Fatalf("Step: %v", err)
	}
	f.mark()
	want, err := algebra.NewExecutor(f.store.Live()).Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !ij.Result().EqualByTID(want) {
		t.Fatalf("incremental join diverged.\nmaintained:\n%s\nfresh:\n%s", ij.Result(), want)
	}
	return res
}

func tradeSchema() relation.Schema {
	return relation.MustSchema(
		relation.Column{Name: "sym", Type: relation.TString},
		relation.Column{Name: "volume", Type: relation.TInt},
	)
}

func TestIncrementalJoinBasic(t *testing.T) {
	f := newFixture(t, map[string]relation.Schema{"stocks": stockSchema(), "trades": tradeSchema()})
	f.insert(t, "stocks", sv("DEC", 150), sv("IBM", 75))
	f.insert(t, "trades",
		[]relation.Value{relation.Str("DEC"), relation.Int(100)},
		[]relation.Value{relation.Str("IBM"), relation.Int(200)},
	)
	ij, plan := newIncJoin(t, f, "SELECT * FROM stocks s JOIN trades t ON s.name = t.sym")
	f.mark()
	if ij.Result().Len() != 2 {
		t.Fatalf("initial = %d", ij.Result().Len())
	}

	// New trade joins against the maintained stock index (no rescans).
	f.insert(t, "trades", []relation.Value{relation.Str("IBM"), relation.Int(50)})
	res := incJoinStepAndVerify(t, f, ij, plan)
	if res.Inserted().Len() != 1 {
		t.Errorf("insert delta = %+v", res.Delta.Rows())
	}
}

func TestIncrementalJoinModificationsAndDeletes(t *testing.T) {
	f := newFixture(t, map[string]relation.Schema{"stocks": stockSchema(), "trades": tradeSchema()})
	stockTIDs := f.insert(t, "stocks", sv("DEC", 150), sv("IBM", 75))
	tradeTIDs := f.insert(t, "trades",
		[]relation.Value{relation.Str("DEC"), relation.Int(100)},
		[]relation.Value{relation.Str("IBM"), relation.Int(200)},
	)
	ij, plan := newIncJoin(t, f, "SELECT * FROM stocks s JOIN trades t ON s.name = t.sym")
	f.mark()

	// Modify a stock (join key preserved): joined row modified.
	tx := f.store.Begin()
	_ = tx.Update("stocks", stockTIDs[0], sv("DEC", 149))
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	res := incJoinStepAndVerify(t, f, ij, plan)
	if len(res.Modified()) != 1 {
		t.Errorf("modification delta = %+v", res.Delta.Rows())
	}

	// Change a trade's join key: old pairing leaves, new one enters.
	tx = f.store.Begin()
	_ = tx.Update("trades", tradeTIDs[1], []relation.Value{relation.Str("DEC"), relation.Int(200)})
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	incJoinStepAndVerify(t, f, ij, plan)

	// Delete a stock: its joined rows disappear.
	tx = f.store.Begin()
	_ = tx.Delete("stocks", stockTIDs[0])
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	res = incJoinStepAndVerify(t, f, ij, plan)
	if res.Deleted().Len() == 0 {
		t.Error("expected deletions after removing the joined stock")
	}
	if ij.Result().Len() != 0 {
		t.Errorf("result = %d, want 0", ij.Result().Len())
	}
}

func TestIncrementalJoinWithProjectionAndFilter(t *testing.T) {
	f := newFixture(t, map[string]relation.Schema{"stocks": stockSchema(), "trades": tradeSchema()})
	f.insert(t, "stocks", sv("DEC", 150), sv("IBM", 75))
	f.insert(t, "trades", []relation.Value{relation.Str("DEC"), relation.Int(100)})
	ij, plan := newIncJoin(t, f,
		"SELECT s.name, t.volume FROM stocks s JOIN trades t ON s.name = t.sym WHERE t.volume > 50 AND s.price > 100")
	f.mark()
	if ij.Result().Len() != 1 {
		t.Fatalf("initial = %d", ij.Result().Len())
	}
	// Below the volume filter: no change.
	f.insert(t, "trades", []relation.Value{relation.Str("DEC"), relation.Int(10)})
	res := incJoinStepAndVerify(t, f, ij, plan)
	if res.Delta.Len() != 0 {
		t.Errorf("filtered insert changed the result: %+v", res.Delta.Rows())
	}
	// Above it.
	f.insert(t, "trades", []relation.Value{relation.Str("DEC"), relation.Int(900)})
	res = incJoinStepAndVerify(t, f, ij, plan)
	if res.Inserted().Len() != 1 || len(res.Inserted().At(0).Values) != 2 {
		t.Errorf("projected insert = %+v", res.Delta.Rows())
	}
}

func TestIncrementalJoinThreeWay(t *testing.T) {
	a := relation.MustSchema(relation.Column{Name: "x", Type: relation.TInt}, relation.Column{Name: "tag", Type: relation.TString})
	b := relation.MustSchema(relation.Column{Name: "x", Type: relation.TInt}, relation.Column{Name: "y", Type: relation.TInt})
	c := relation.MustSchema(relation.Column{Name: "y", Type: relation.TInt}, relation.Column{Name: "name", Type: relation.TString})
	f := newFixture(t, map[string]relation.Schema{"a": a, "b": b, "c": c})
	iv := func(vals ...any) []relation.Value {
		out := make([]relation.Value, len(vals))
		for i, v := range vals {
			switch x := v.(type) {
			case int:
				out[i] = relation.Int(int64(x))
			case string:
				out[i] = relation.Str(x)
			}
		}
		return out
	}
	f.insert(t, "a", iv(1, "a1"), iv(2, "a2"))
	f.insert(t, "b", iv(1, 10), iv(2, 20))
	f.insert(t, "c", iv(10, "c10"), iv(20, "c20"))
	ij, plan := newIncJoin(t, f, "SELECT * FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y")
	f.mark()
	if ij.Result().Len() != 2 {
		t.Fatalf("initial = %d", ij.Result().Len())
	}
	// Change all three operands in one transaction.
	tx := f.store.Begin()
	_, _ = tx.Insert("a", iv(3, "a3"))
	_, _ = tx.Insert("b", iv(3, 30))
	_, _ = tx.Insert("c", iv(30, "c30"))
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	res := incJoinStepAndVerify(t, f, ij, plan)
	if res.Inserted().Len() != 1 {
		t.Errorf("3-way delta = %+v", res.Delta.Rows())
	}
}

func TestIncrementalJoinRejectsNonJoin(t *testing.T) {
	f := newFixture(t, map[string]relation.Schema{"stocks": stockSchema()})
	f.insert(t, "stocks", sv("A", 1))
	plan := f.plan(t, "SELECT * FROM stocks WHERE price > 0")
	if _, err := NewIncrementalJoin(NewEngine(), plan, f.store.Live()); !errors.Is(err, ErrNotIncremental) {
		t.Errorf("err = %v", err)
	}
}

// Property: the maintained join equals fresh execution over long random
// multi-table histories (including self-joins and cross-operand churn).
func TestIncrementalJoinEquivalenceProperty(t *testing.T) {
	queries := []string{
		"SELECT * FROM r JOIN u ON r.s1 = u.s2",
		"SELECT r.s1, u.b FROM r JOIN u ON r.s1 = u.s2 WHERE r.a > 80",
		"SELECT * FROM r JOIN u ON r.s1 = u.s2 JOIN w ON u.x = w.x WHERE w.c > 10",
		"SELECT * FROM r a JOIN r b ON a.s1 = b.s1", // self join
	}
	rSchema := relation.MustSchema(
		relation.Column{Name: "s1", Type: relation.TString},
		relation.Column{Name: "a", Type: relation.TFloat},
	)
	uSchema := relation.MustSchema(
		relation.Column{Name: "s2", Type: relation.TString},
		relation.Column{Name: "b", Type: relation.TFloat},
		relation.Column{Name: "x", Type: relation.TInt},
	)
	wSchema := relation.MustSchema(
		relation.Column{Name: "x", Type: relation.TInt},
		relation.Column{Name: "c", Type: relation.TFloat},
	)
	for qi, q := range queries {
		t.Run(fmt.Sprintf("q%d", qi), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(qi + 900)))
			f := newFixture(t, map[string]relation.Schema{"r": rSchema, "u": uSchema, "w": wSchema})
			live := liveSet{}
			applyRandomBatch(t, f, rng, live, 10, 3)
			ij, plan := newIncJoin(t, f, q)
			f.mark()
			for round := 0; round < 10; round++ {
				applyRandomBatch(t, f, rng, live, 1+rng.Intn(3), 1+rng.Intn(4))
				incJoinStepAndVerify(t, f, ij, plan)
			}
		})
	}
}
