// Command cqctl is the client for cqd:
//
//	cqctl -addr 127.0.0.1:7070 tables
//	cqctl query 'SELECT * FROM stocks WHERE price > 120'
//	cqctl snapshot stocks
//	cqctl delta stocks 0
//	cqctl watch 'SELECT * FROM stocks WHERE price > 120' -interval 1s
//	cqctl stats [prefix]
//	cqctl health
//	cqctl checkpoint
//
// watch installs a client-side continual query (a mirror evaluated by
// DRA over shipped deltas) and prints each change as it arrives. stats
// fetches the daemon's metrics snapshot and renders it as a table; an
// optional name prefix (`cqctl stats push.`) narrows it to one
// subsystem.
//
// Requests carry a -timeout deadline and are retried up to -retries
// times with backoff, reconnecting as needed. watch survives daemon
// restarts: while the server is down it serves the stale result, and on
// reconnect it catches up by pulling only the missed delta windows.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/diorama/continual/internal/remote"
	"github.com/diorama/continual/internal/vclock"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cqctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cqctl", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "server address")
	interval := fs.Duration("interval", time.Second, "watch poll interval")
	count := fs.Int("count", 0, "watch: stop after N refreshes (0 = run forever)")
	timeout := fs.Duration("timeout", 15*time.Second, "per-request deadline")
	retries := fs.Int("retries", 4, "attempts per request (reconnecting as needed)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("usage: cqctl [flags] tables|query|snapshot|delta|watch|stats|health|deps|checkpoint ...")
	}

	policy := remote.DefaultPolicy()
	policy.IOTimeout = *timeout
	policy.MaxAttempts = *retries
	client, err := remote.DialPolicy(*addr, policy)
	if err != nil {
		return err
	}
	defer func() { _ = client.Close() }()

	switch rest[0] {
	case "tables":
		tables, err := client.ListTables()
		if err != nil {
			return err
		}
		for _, t := range tables {
			schema, err := client.Schema(t)
			if err != nil {
				return err
			}
			fmt.Printf("%s %s\n", t, schema)
		}
		return nil

	case "query":
		if len(rest) < 2 {
			return fmt.Errorf("usage: cqctl query '<select>'")
		}
		rel, now, err := client.Query(rest[1])
		if err != nil {
			return err
		}
		fmt.Printf("-- %d rows at t=%d (%d bytes received)\n", rel.Len(), now, client.BytesRead())
		fmt.Print(rel)
		return nil

	case "snapshot":
		if len(rest) < 2 {
			return fmt.Errorf("usage: cqctl snapshot <table>")
		}
		rel, now, err := client.Snapshot(rest[1])
		if err != nil {
			return err
		}
		fmt.Printf("-- %d rows at t=%d\n", rel.Len(), now)
		fmt.Print(rel)
		return nil

	case "delta":
		if len(rest) < 3 {
			return fmt.Errorf("usage: cqctl delta <table> <since-ts>")
		}
		since, err := strconv.ParseUint(rest[2], 10, 64)
		if err != nil {
			return fmt.Errorf("bad timestamp %q", rest[2])
		}
		d, now, err := client.DeltaSince(rest[1], vclock.Timestamp(since))
		if err != nil {
			return err
		}
		ins, del, mod := d.Counts()
		fmt.Printf("-- %d delta rows (%d ins / %d del / %d mod) up to t=%d\n", d.Len(), ins, del, mod, now)
		for _, r := range d.Rows() {
			fmt.Printf("%s tid=%d ts=%d old=%v new=%v\n", r.Kind(), r.TID, r.TS, r.Old, r.New)
		}
		return nil

	case "watch":
		if len(rest) < 2 {
			return fmt.Errorf("usage: cqctl watch '<select>'")
		}
		mirror, err := remote.NewMirrorCQ(client, rest[1])
		if err != nil {
			return err
		}
		fmt.Printf("-- initial result: %d rows; polling every %s\n", mirror.Result().Len(), *interval)
		refreshes := 0
		wasStale := false
		for {
			time.Sleep(*interval)
			d, err := mirror.Refresh()
			if err != nil {
				// Degraded mode: the mirror keeps serving its last
				// result and the next refresh resumes differentially
				// from lastTS once the server is back.
				fmt.Printf("-- refresh failed (%v); serving stale result as of t=%d, retrying\n",
					err, mirror.LastTS())
				wasStale = true
				continue
			}
			if wasStale {
				fmt.Printf("-- reconnected; caught up to t=%d\n", mirror.LastTS())
				wasStale = false
			}
			if d.Len() > 0 {
				refreshes++
				ins, del, mod := d.Counts()
				fmt.Printf("t=%d: +%d -%d ~%d (result now %d rows, %d bytes total received)\n",
					mirror.LastTS(), ins, del, mod, mirror.Result().Len(), client.BytesRead())
			}
			if *count > 0 && refreshes >= *count {
				return nil
			}
		}

	case "stats":
		snap, err := client.Stats()
		if err != nil {
			return err
		}
		// An optional prefix narrows the table to one subsystem:
		// `cqctl stats push.` shows the push pipeline, `cqctl stats wal.`
		// durability, etc.
		if len(rest) > 1 {
			snap = snap.Filter(rest[1])
			if snap.Empty() {
				return fmt.Errorf("no instruments match prefix %q", rest[1])
			}
		}
		snap.WriteTable(os.Stdout)
		return nil

	case "health":
		// Derived from the daemon's guard gauges: the same numbers the
		// /healthz endpoint serves, over the TCP protocol.
		snap, err := client.Stats()
		if err != nil {
			return err
		}
		healthy := snap.Gauges["cq.health.healthy"]
		probation := snap.Gauges["cq.health.probation"]
		quarantined := snap.Gauges["cq.health.quarantined"]
		level := snap.Gauges["storage.overload.level"]
		overload := "none"
		switch level {
		case 1:
			overload = "soft"
		case 2:
			overload = "hard"
		}
		status := "ok"
		switch {
		case level >= 2:
			status = "overloaded"
		case level == 1 || quarantined > 0 || probation > 0:
			status = "degraded"
		}
		fmt.Printf("status: %s\n", status)
		fmt.Printf("cqs: %d healthy / %d probation / %d quarantined\n", healthy, probation, quarantined)
		fmt.Printf("overload: %s (%d delta rows retained)\n", overload, snap.Gauges["storage.delta_len"])
		fmt.Printf("refresh faults: %d errors, %d panics, %d timeouts, %d quarantine trips\n",
			snap.Counters["cq.refresh.errors"], snap.Counters["cq.refresh.panics"],
			snap.Counters["cq.refresh.timeouts"], snap.Counters["cq.quarantines"])
		return nil

	case "checkpoint":
		if err := client.Checkpoint(); err != nil {
			return err
		}
		fmt.Println("checkpoint written")
		return nil

	case "deps":
		deps, err := client.Deps()
		if err != nil {
			return err
		}
		if len(deps) == 0 {
			fmt.Println("no continual queries registered")
			return nil
		}
		// Topological order (by stage) straight off the wire; render one
		// line per CQ: stage, name, sources, and the INTO target when
		// the query materializes one.
		for _, d := range deps {
			line := fmt.Sprintf("[stage %d] %s <- %s", d.Stage, d.CQ, strings.Join(d.Sources, ", "))
			if d.Target != "" {
				line += " -> INTO " + d.Target
			}
			fmt.Println(line)
		}
		return nil

	default:
		return fmt.Errorf("unknown command %q", rest[0])
	}
}
