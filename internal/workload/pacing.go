package workload

import "time"

// Pacing shapes the arrival process of a commit stream. Latency
// experiments (bench E18) care about two regimes the paper's polling
// discussion distinguishes only implicitly: a steady trickle, where each
// commit stands alone and the question is how long it waits for the next
// poll tick, and bursts, where many commits land back-to-back and a
// push pipeline gets to coalesce them into one refresh.
type Pacing struct {
	// Burst is the number of commits issued back-to-back before pausing.
	// 1 is a steady arrival process.
	Burst int
	// Gap is the pause between bursts (between every commit when
	// Burst == 1).
	Gap time.Duration
}

// Steady spaces single commits gap apart.
func Steady(gap time.Duration) Pacing { return Pacing{Burst: 1, Gap: gap} }

// Bursty issues size commits back-to-back, pausing gap between bursts.
func Bursty(size int, gap time.Duration) Pacing { return Pacing{Burst: size, Gap: gap} }

// Run issues n commits through f under this pacing, sleeping Gap after
// each full burst (never after the last commit, so a measurement that
// follows Run starts immediately). f receives the commit index.
func (p Pacing) Run(n int, f func(i int) error) error {
	burst := p.Burst
	if burst < 1 {
		burst = 1
	}
	for i := 0; i < n; i++ {
		if err := f(i); err != nil {
			return err
		}
		if p.Gap > 0 && (i+1)%burst == 0 && i+1 < n {
			time.Sleep(p.Gap)
		}
	}
	return nil
}
