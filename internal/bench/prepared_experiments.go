package bench

import (
	"fmt"
	"runtime"
	"time"

	"github.com/diorama/continual/internal/dra"
)

// E16 measures the prepared refresh pipeline (compile-once plans plus
// the cross-refresh operand index cache) against per-refresh
// compilation on a repeated 3-way join workload. Both arms run the
// truth-table algorithm over identical update streams, so the gap is
// exactly the refresh-invariant work the Prepared layer hoists out of
// the hot path: plan compilation, predicate/projection closures, and
// partner index builds. Hits > 0 on the prepared arm confirms the
// operand cache survives across refreshes instead of being rebuilt.
func E16(scale Scale) (*Table, error) {
	rounds := 2 + 2*scale.Iterations
	t := &Table{
		ID:    "E16",
		Title: "prepared vs per-refresh compilation: 3-way join refresh pipeline",
		Note: fmt.Sprintf("|A|=|B|=|C| = %d, 10 modified tuples per refresh, %d refreshes, truth-table strategy both arms",
			scale.BaseRows/5, rounds),
		Header: []string{"pipeline", "us/refresh", "allocs/refresh", "ix hits", "ix misses"},
	}
	for _, prepared := range []bool{false, true} {
		lat, allocs, hits, misses, err := runPreparedArm(scale, rounds, prepared)
		if err != nil {
			return nil, err
		}
		name := "reevaluate"
		if prepared {
			name = "prepared"
		}
		t.Rows = append(t.Rows, []string{
			name, us(lat), fmt.Sprint(allocs), fmt.Sprint(hits), fmt.Sprint(misses),
		})
	}
	return t, nil
}

// runPreparedArm drives `rounds` refreshes over a fresh join fixture and
// reports the median per-refresh latency, mean allocations per refresh
// (runtime.MemStats.Mallocs around the refresh call only), and the
// operand index cache totals.
func runPreparedArm(scale Scale, rounds int, prepared bool) (lat time.Duration, allocs uint64, hits, misses int, err error) {
	jf, err := newJoinFixture(scale.BaseRows/5, 16)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	engine := scale.NewEngine()
	var prep *dra.Prepared
	if prepared {
		prep, err = engine.Prepare(jf.plan, dra.StrategyTruthTable)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		defer prep.Close()
	}
	times := make([]time.Duration, 0, rounds)
	var mallocs uint64
	var ms0, ms1 runtime.MemStats
	for r := 0; r < rounds; r++ {
		if err := jf.touch(10, "a"); err != nil {
			return 0, 0, 0, 0, err
		}
		// Version counters must be snapshotted before the refresh
		// timestamp is issued (see storage.ChangeCounts).
		versions := jf.store.ChangeCounts()
		ts := jf.store.Now()
		ctx, err := jf.ctx()
		if err != nil {
			return 0, 0, 0, 0, err
		}
		ctx.Versions = versions
		var res *dra.Result
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		if prepared {
			res, err = prep.Step(ctx, ts)
		} else {
			res, err = engine.Reevaluate(jf.plan, ctx, ts)
		}
		times = append(times, time.Since(start))
		runtime.ReadMemStats(&ms1)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		mallocs += ms1.Mallocs - ms0.Mallocs
		hits += res.Stats.IndexCacheHits
		misses += res.Stats.IndexCacheMisses
		jf.prev = res.ApplyTo(jf.prev)
		jf.lastTS = ts
	}
	sortDurations(times)
	return times[len(times)/2], mallocs / uint64(rounds), hits, misses, nil
}
