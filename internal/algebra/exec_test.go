package algebra

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/sql"
)

// catSource implements CatalogSource over a MapSource.
type catSource struct{ MapSource }

func (c catSource) Schema(table string) (relation.Schema, error) {
	r, err := c.Relation(table)
	if err != nil {
		return relation.Schema{}, err
	}
	return r.Schema(), nil
}

func stocksSource(t *testing.T) catSource {
	t.Helper()
	stocks := relation.New(relation.MustSchema(
		relation.Column{Name: "name", Type: relation.TString},
		relation.Column{Name: "price", Type: relation.TFloat},
	))
	rows := []struct {
		tid   relation.TID
		name  string
		price float64
	}{
		{1, "DEC", 150}, {2, "QLI", 145}, {3, "IBM", 75}, {4, "MAC", 117}, {5, "SUN", 30},
	}
	for _, r := range rows {
		if err := stocks.Insert(relation.Tuple{TID: r.tid, Values: []relation.Value{relation.Str(r.name), relation.Float(r.price)}}); err != nil {
			t.Fatal(err)
		}
	}
	trades := relation.New(relation.MustSchema(
		relation.Column{Name: "sym", Type: relation.TString},
		relation.Column{Name: "volume", Type: relation.TInt},
	))
	tr := []struct {
		tid relation.TID
		sym string
		vol int64
	}{
		{10, "DEC", 500}, {11, "IBM", 900}, {12, "IBM", 100}, {13, "XYZ", 5},
	}
	for _, r := range tr {
		if err := trades.Insert(relation.Tuple{TID: r.tid, Values: []relation.Value{relation.Str(r.sym), relation.Int(r.vol)}}); err != nil {
			t.Fatal(err)
		}
	}
	return catSource{MapSource{"stocks": stocks, "trades": trades}}
}

func run(t *testing.T, src catSource, query string) *relation.Relation {
	t.Helper()
	out, err := RunQuery(query, src)
	if err != nil {
		t.Fatalf("RunQuery(%q): %v", query, err)
	}
	return out
}

func TestExecSelectWhere(t *testing.T) {
	src := stocksSource(t)
	out := run(t, src, "SELECT * FROM stocks WHERE price > 120")
	if out.Len() != 2 {
		t.Fatalf("σ_price>120 len = %d, want 2:\n%s", out.Len(), out)
	}
	for _, tu := range out.Tuples() {
		if tu.Values[1].AsFloat() <= 120 {
			t.Errorf("tuple %v violates predicate", tu)
		}
	}
}

func TestExecProjection(t *testing.T) {
	src := stocksSource(t)
	out := run(t, src, "SELECT name, price * 2 AS dbl FROM stocks WHERE name = 'IBM'")
	if out.Len() != 1 {
		t.Fatalf("len = %d:\n%s", out.Len(), out)
	}
	tu := out.At(0)
	if tu.Values[0].AsString() != "IBM" || tu.Values[1].AsFloat() != 150 {
		t.Errorf("projection values = %v", tu.Values)
	}
	if got := out.Schema().Col(1).Name; got != "dbl" {
		t.Errorf("alias column = %q", got)
	}
}

func TestExecJoin(t *testing.T) {
	src := stocksSource(t)
	out := run(t, src, "SELECT * FROM stocks s JOIN trades t ON s.name = t.sym")
	if out.Len() != 3 { // DEC + IBM*2
		t.Fatalf("join len = %d, want 3:\n%s", out.Len(), out)
	}
	// Comma-join with WHERE is equivalent.
	out2 := run(t, src, "SELECT * FROM stocks s, trades t WHERE s.name = t.sym")
	if !out.EqualContents(out2) {
		t.Error("ON join and comma join disagree")
	}
	// Hash and nested-loop joins agree.
	plan, err := PlanSQL("SELECT * FROM stocks s JOIN trades t ON s.name = t.sym", src)
	if err != nil {
		t.Fatal(err)
	}
	exNL := NewExecutor(src)
	exNL.UseHashJoin = false
	nl, err := exNL.Execute(Optimize(plan))
	if err != nil {
		t.Fatal(err)
	}
	if !out.EqualContents(nl) {
		t.Error("hash join and nested loop disagree")
	}
}

func TestExecJoinWithFilterAndResidual(t *testing.T) {
	src := stocksSource(t)
	out := run(t, src, "SELECT s.name, t.volume FROM stocks s JOIN trades t ON s.name = t.sym WHERE t.volume > 200 AND s.price > 100")
	if out.Len() != 1 {
		t.Fatalf("len = %d:\n%s", out.Len(), out)
	}
	if out.At(0).Values[0].AsString() != "DEC" {
		t.Errorf("row = %v", out.At(0).Values)
	}
	// Non-equi residual inside ON.
	out = run(t, src, "SELECT * FROM stocks s JOIN trades t ON s.name = t.sym AND t.volume > 400")
	if out.Len() != 2 {
		t.Fatalf("residual join len = %d, want 2:\n%s", out.Len(), out)
	}
}

func TestExecCrossProduct(t *testing.T) {
	src := stocksSource(t)
	out := run(t, src, "SELECT * FROM stocks s, trades t")
	if out.Len() != 5*4 {
		t.Fatalf("cross product len = %d, want 20", out.Len())
	}
}

func TestExecSelfJoin(t *testing.T) {
	src := stocksSource(t)
	out := run(t, src, "SELECT * FROM stocks a JOIN stocks b ON a.name = b.name")
	if out.Len() != 5 {
		t.Fatalf("self join len = %d, want 5", out.Len())
	}
}

func TestExecAggregatesGlobal(t *testing.T) {
	src := stocksSource(t)
	out := run(t, src, "SELECT SUM(price) AS total, COUNT(*) AS n, AVG(price) AS avgp, MIN(price) AS lo, MAX(price) AS hi FROM stocks")
	if out.Len() != 1 {
		t.Fatalf("global aggregate rows = %d", out.Len())
	}
	vals := out.At(0).Values
	if vals[0].AsFloat() != 517 {
		t.Errorf("SUM = %v, want 517", vals[0])
	}
	if vals[1].AsInt() != 5 {
		t.Errorf("COUNT = %v", vals[1])
	}
	if vals[2].AsFloat() != 517.0/5 {
		t.Errorf("AVG = %v", vals[2])
	}
	if vals[3].AsFloat() != 30 || vals[4].AsFloat() != 150 {
		t.Errorf("MIN/MAX = %v/%v", vals[3], vals[4])
	}
}

func TestExecAggregateEmptyInput(t *testing.T) {
	src := stocksSource(t)
	out := run(t, src, "SELECT SUM(price) AS total, COUNT(*) AS n FROM stocks WHERE price > 10000")
	if out.Len() != 1 {
		t.Fatalf("rows = %d, want 1", out.Len())
	}
	if !out.At(0).Values[0].IsNull() {
		t.Errorf("SUM over empty = %v, want NULL", out.At(0).Values[0])
	}
	if out.At(0).Values[1].AsInt() != 0 {
		t.Errorf("COUNT over empty = %v, want 0", out.At(0).Values[1])
	}
}

func TestExecGroupByHaving(t *testing.T) {
	src := stocksSource(t)
	out := run(t, src, "SELECT sym, SUM(volume) AS vol FROM trades GROUP BY sym")
	if out.Len() != 3 {
		t.Fatalf("groups = %d, want 3:\n%s", out.Len(), out)
	}
	bySym := map[string]int64{}
	for _, tu := range out.Tuples() {
		bySym[tu.Values[0].AsString()] = tu.Values[1].AsInt()
	}
	if bySym["IBM"] != 1000 || bySym["DEC"] != 500 || bySym["XYZ"] != 5 {
		t.Errorf("sums = %v", bySym)
	}
	out = run(t, src, "SELECT sym, SUM(volume) AS vol FROM trades GROUP BY sym HAVING SUM(volume) > 400")
	if out.Len() != 2 {
		t.Fatalf("HAVING groups = %d, want 2:\n%s", out.Len(), out)
	}
}

func TestExecDistinct(t *testing.T) {
	src := stocksSource(t)
	out := run(t, src, "SELECT DISTINCT sym FROM trades")
	if out.Len() != 3 {
		t.Fatalf("distinct = %d, want 3", out.Len())
	}
}

func TestExecErrors(t *testing.T) {
	src := stocksSource(t)
	bad := []string{
		"SELECT * FROM nosuch",
		"SELECT nosuch FROM stocks",
		"SELECT * FROM stocks WHERE nosuch > 1",
		"SELECT name, SUM(price) FROM stocks", // mixed without GROUP BY
		"SELECT * FROM stocks GROUP BY name",  // star with group by
		"SELECT sym FROM trades GROUP BY sym HAVING SUM(nosuch) > 1",
		"SELECT name FROM stocks HAVING price > 1", // HAVING without aggregate
	}
	for _, q := range bad {
		if _, err := RunQuery(q, src); err == nil {
			t.Errorf("RunQuery(%q) should fail", q)
		}
	}
}

func TestOptimizerPushesPredicatesBelowJoin(t *testing.T) {
	src := stocksSource(t)
	plan, err := PlanSQL("SELECT * FROM stocks s, trades t WHERE s.name = t.sym AND s.price > 100 AND t.volume > 10", src)
	if err != nil {
		t.Fatal(err)
	}
	opt := Optimize(plan)
	rendered := RenderPlan(opt)
	// The join must sit above per-side selects, and the equi predicate
	// must be at the join.
	lines := strings.Split(strings.TrimSpace(rendered), "\n")
	if !strings.HasPrefix(lines[0], "Join") {
		t.Errorf("optimized root = %q\n%s", lines[0], rendered)
	}
	if !strings.Contains(rendered, "Select (s.price > 100)") {
		t.Errorf("price filter not pushed:\n%s", rendered)
	}
	if !strings.Contains(rendered, "Select (t.volume > 10)") {
		t.Errorf("volume filter not pushed:\n%s", rendered)
	}
	// Results agree with the unoptimized plan.
	want, err := NewExecutor(src).Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewExecutor(src).Execute(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !want.EqualContents(got) {
		t.Error("optimization changed results")
	}
}

func TestOptimizerOrdersCheapConjunctsFirst(t *testing.T) {
	src := stocksSource(t)
	plan, err := PlanSQL("SELECT * FROM stocks WHERE ABS(price - 75) > 5 AND name = 'IBM'", src)
	if err != nil {
		t.Fatal(err)
	}
	opt := Optimize(plan)
	sel, ok := opt.(*SelectPlan)
	if !ok {
		t.Fatalf("root = %T", opt)
	}
	conj := SplitConjuncts(sel.Pred)
	if !isLiteralComparison(conj[0]) {
		t.Errorf("first conjunct should be the literal comparison, got %s", conj[0])
	}
}

// Property: Optimize never changes query results over random data and a
// pool of query shapes.
func TestOptimizeEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	queries := []string{
		"SELECT * FROM stocks WHERE price > %d",
		"SELECT name FROM stocks WHERE price > %d AND name != 'Z'",
		"SELECT * FROM stocks s, trades t WHERE s.name = t.sym AND t.volume > %d",
		"SELECT s.name, t.volume FROM stocks s JOIN trades t ON s.name = t.sym WHERE s.price > %d",
		"SELECT sym, SUM(volume) AS v FROM trades WHERE volume > %d GROUP BY sym",
		"SELECT DISTINCT name FROM stocks WHERE price > %d",
	}
	src := stocksSource(t)
	for trial := 0; trial < 60; trial++ {
		q := fmt.Sprintf(queries[trial%len(queries)], rng.Intn(200))
		plan, err := PlanSQL(q, src)
		if err != nil {
			t.Fatalf("plan %q: %v", q, err)
		}
		want, err := NewExecutor(src).Execute(plan)
		if err != nil {
			t.Fatalf("exec %q: %v", q, err)
		}
		got, err := NewExecutor(src).Execute(Optimize(plan))
		if err != nil {
			t.Fatalf("exec optimized %q: %v", q, err)
		}
		if !want.EqualContents(got) {
			t.Fatalf("optimize changed results of %q:\n%s\nvs\n%s", q, want, got)
		}
	}
}

func TestExecStatsCountScans(t *testing.T) {
	src := stocksSource(t)
	plan, _ := PlanSQL("SELECT * FROM stocks", src)
	ex := NewExecutor(src)
	if _, err := ex.Execute(plan); err != nil {
		t.Fatal(err)
	}
	if ex.Stats.TuplesScanned != 5 || ex.Stats.TuplesOutput != 5 {
		t.Errorf("stats = %+v", ex.Stats)
	}
}

func TestTablesAndRenderPlan(t *testing.T) {
	src := stocksSource(t)
	plan, _ := PlanSQL("SELECT s.name FROM stocks s JOIN trades t ON s.name = t.sym WHERE t.volume > 1", src)
	scans := Tables(plan)
	if len(scans) != 2 || scans[0].Table != "stocks" || scans[1].Table != "trades" {
		t.Errorf("Tables = %v", scans)
	}
	if HasAggregate(plan) {
		t.Error("HasAggregate false positive")
	}
	agg, _ := PlanSQL("SELECT SUM(volume) FROM trades", src)
	if !HasAggregate(agg) {
		t.Error("HasAggregate false negative")
	}
}

func TestExecOrderBy(t *testing.T) {
	src := stocksSource(t)
	out := run(t, src, "SELECT name, price FROM stocks ORDER BY price")
	if out.Len() != 5 {
		t.Fatalf("len = %d", out.Len())
	}
	prices := make([]float64, 0, out.Len())
	for _, tu := range out.Tuples() {
		prices = append(prices, tu.Values[1].AsFloat())
	}
	for i := 1; i < len(prices); i++ {
		if prices[i] < prices[i-1] {
			t.Fatalf("not ascending: %v", prices)
		}
	}
	out = run(t, src, "SELECT name, price FROM stocks ORDER BY price DESC")
	if out.At(0).Values[1].AsFloat() != 150 {
		t.Errorf("DESC first = %v", out.At(0).Values)
	}
	// Multi-key with tie broken by second key.
	out = run(t, src, "SELECT sym, volume FROM trades ORDER BY sym ASC, volume DESC")
	if out.At(0).Values[0].AsString() != "DEC" {
		t.Errorf("order = %v", out.At(0).Values)
	}
	ibmFirst := -1
	for i, tu := range out.Tuples() {
		if tu.Values[0].AsString() == "IBM" {
			ibmFirst = i
			break
		}
	}
	if out.At(ibmFirst).Values[1].AsInt() != 900 {
		t.Errorf("IBM volumes not DESC: %v", out.At(ibmFirst).Values)
	}
}

func TestExecLimit(t *testing.T) {
	src := stocksSource(t)
	out := run(t, src, "SELECT * FROM stocks ORDER BY price DESC LIMIT 2")
	if out.Len() != 2 {
		t.Fatalf("limit = %d", out.Len())
	}
	if out.At(0).Values[1].AsFloat() != 150 || out.At(1).Values[1].AsFloat() != 145 {
		t.Errorf("top-2 = %v %v", out.At(0).Values, out.At(1).Values)
	}
	out = run(t, src, "SELECT * FROM stocks LIMIT 0")
	if out.Len() != 0 {
		t.Errorf("LIMIT 0 = %d", out.Len())
	}
	out = run(t, src, "SELECT * FROM stocks LIMIT 100")
	if out.Len() != 5 {
		t.Errorf("over-limit = %d", out.Len())
	}
}

func TestExecOrderByAggregates(t *testing.T) {
	src := stocksSource(t)
	out := run(t, src, "SELECT sym, SUM(volume) AS vol FROM trades GROUP BY sym ORDER BY vol DESC LIMIT 1")
	if out.Len() != 1 || out.At(0).Values[0].AsString() != "IBM" {
		t.Fatalf("top group = \n%s", out)
	}
}

func TestOptimizerDoesNotPushThroughLimit(t *testing.T) {
	src := stocksSource(t)
	// A filter written above a LIMIT must not be pushed below it.
	plan, err := PlanSQL("SELECT * FROM stocks ORDER BY price DESC LIMIT 3", src)
	if err != nil {
		t.Fatal(err)
	}
	// Wrap by hand: Select over Limit.
	pred, _ := sql.ParseExpr("price > 100")
	wrapped := &SelectPlan{Input: plan, Pred: pred}
	opt := Optimize(wrapped)
	want, err := NewExecutor(src).Execute(wrapped)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewExecutor(src).Execute(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !want.EqualContents(got) {
		t.Fatalf("optimizer changed limit semantics:\n%s\nvs\n%s", want, got)
	}
}

func TestParseOrderLimitErrors(t *testing.T) {
	src := stocksSource(t)
	for _, q := range []string{
		"SELECT * FROM stocks ORDER price",
		"SELECT * FROM stocks LIMIT -1",
		"SELECT * FROM stocks LIMIT x",
		"SELECT * FROM stocks ORDER BY nosuch",
	} {
		if _, err := RunQuery(q, src); err == nil {
			t.Errorf("RunQuery(%q) should fail", q)
		}
	}
}
