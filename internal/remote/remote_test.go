package remote

import (
	"testing"

	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/storage"
)

func stockSchema() relation.Schema {
	return relation.MustSchema(
		relation.Column{Name: "name", Type: relation.TString},
		relation.Column{Name: "price", Type: relation.TFloat},
	)
}

func startServer(t *testing.T) (*storage.Store, *Server, *Client) {
	t.Helper()
	store := storage.NewStore()
	if err := store.CreateTable("stocks", stockSchema()); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = client.Close() })
	return store, srv, client
}

func insertStock(t *testing.T, s *storage.Store, name string, price float64) relation.TID {
	t.Helper()
	tx := s.Begin()
	tid, err := tx.Insert("stocks", []relation.Value{relation.Str(name), relation.Float(price)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return tid
}

func TestListTablesAndSchema(t *testing.T) {
	_, _, client := startServer(t)
	tables, err := client.ListTables()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || tables[0] != "stocks" {
		t.Errorf("tables = %v", tables)
	}
	schema, err := client.Schema("stocks")
	if err != nil {
		t.Fatal(err)
	}
	if schema.Len() != 2 || schema.Col(1).Name != "price" {
		t.Errorf("schema = %s", schema)
	}
	if _, err := client.Schema("nosuch"); err == nil {
		t.Error("missing table should error through the wire")
	}
}

func TestSnapshotAndQueryOverWire(t *testing.T) {
	store, _, client := startServer(t)
	insertStock(t, store, "DEC", 150)
	insertStock(t, store, "IBM", 75)

	snap, now, err := client.Snapshot("stocks")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Len() != 2 || now == 0 {
		t.Errorf("snapshot len=%d now=%d", snap.Len(), now)
	}
	res, _, err := client.Query("SELECT * FROM stocks WHERE price > 120")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.At(0).Values[0].AsString() != "DEC" {
		t.Errorf("query result:\n%s", res)
	}
	if _, _, err := client.Query("not sql"); err == nil {
		t.Error("bad query should error")
	}
}

func TestDeltaSinceOverWire(t *testing.T) {
	store, _, client := startServer(t)
	insertStock(t, store, "A", 10)
	mark := store.Now()
	tid := insertStock(t, store, "B", 20)
	tx := store.Begin()
	_ = tx.Update("stocks", tid, []relation.Value{relation.Str("B"), relation.Float(25)})
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	d, _, err := client.DeltaSince("stocks", mark)
	if err != nil {
		t.Fatal(err)
	}
	ins, del, mod := d.Counts()
	if ins != 1 || del != 0 || mod != 1 {
		t.Errorf("delta counts = %d/%d/%d", ins, del, mod)
	}
	// Value fidelity across gob.
	if d.Rows()[1].New[1].AsFloat() != 25 {
		t.Errorf("modified value = %v", d.Rows()[1].New)
	}
}

func TestApplyUpdatesOverWire(t *testing.T) {
	store, _, client := startServer(t)
	err := client.ApplyUpdates("stocks", []WireDeltaRow{
		{New: []relation.Value{relation.Str("NEW"), relation.Float(42)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := store.Snapshot("stocks")
	if snap.Len() != 1 || snap.At(0).Values[0].AsString() != "NEW" {
		t.Errorf("pushed row missing:\n%s", snap)
	}
}

func TestMirrorCQRefreshesWithDeltasOnly(t *testing.T) {
	store, _, client := startServer(t)
	insertStock(t, store, "DEC", 150)
	insertStock(t, store, "IBM", 75)

	cq, err := NewMirrorCQ(client, "SELECT * FROM stocks WHERE price > 120")
	if err != nil {
		t.Fatal(err)
	}
	if cq.Result().Len() != 1 {
		t.Fatalf("initial = %d", cq.Result().Len())
	}

	insertStock(t, store, "MAC", 130)
	tidLow := insertStock(t, store, "LOW", 10)

	d, err := cq.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	ins, del, mod := d.Counts()
	if ins != 1 || del != 0 || mod != 0 {
		t.Errorf("refresh counts = %d/%d/%d", ins, del, mod)
	}
	if cq.Result().Len() != 2 {
		t.Errorf("result = %d", cq.Result().Len())
	}

	// Deletion propagates through the mirror.
	tx := store.Begin()
	_ = tx.Delete("stocks", tidLow)
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := cq.Refresh(); err != nil {
		t.Fatal(err)
	}
	if cq.Result().Len() != 2 {
		t.Errorf("result after irrelevant delete = %d", cq.Result().Len())
	}

	// The mirror result always matches a server-side full query.
	truth, _, err := client.Query("SELECT * FROM stocks WHERE price > 120")
	if err != nil {
		t.Fatal(err)
	}
	if !cq.Result().EqualContents(truth) {
		t.Errorf("mirror diverged:\n%s\nvs\n%s", cq.Result(), truth)
	}
}

func TestMirrorDeltaBytesSmallerThanFullShipping(t *testing.T) {
	store, _, client := startServer(t)
	for i := 0; i < 500; i++ {
		insertStock(t, store, "S", float64(100+i))
	}
	cq, err := NewMirrorCQ(client, "SELECT * FROM stocks WHERE price > 120")
	if err != nil {
		t.Fatal(err)
	}
	base := client.BytesRead()

	// One small update, then refresh via deltas.
	insertStock(t, store, "S", 9999)
	if _, err := cq.Refresh(); err != nil {
		t.Fatal(err)
	}
	deltaBytes := client.BytesRead() - base

	// The same refresh via full-result shipping.
	base = client.BytesRead()
	if _, _, err := client.Query("SELECT * FROM stocks WHERE price > 120"); err != nil {
		t.Fatal(err)
	}
	fullBytes := client.BytesRead() - base

	if deltaBytes*5 > fullBytes {
		t.Errorf("delta shipping (%d B) should be far below full shipping (%d B)", deltaBytes, fullBytes)
	}
}

func TestMirrorCQJoin(t *testing.T) {
	store, _, client := startServer(t)
	if err := store.CreateTable("trades", relation.MustSchema(
		relation.Column{Name: "sym", Type: relation.TString},
		relation.Column{Name: "volume", Type: relation.TInt},
	)); err != nil {
		t.Fatal(err)
	}
	insertStock(t, store, "DEC", 150)
	tx := store.Begin()
	_, _ = tx.Insert("trades", []relation.Value{relation.Str("DEC"), relation.Int(100)})
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	cq, err := NewMirrorCQ(client, "SELECT s.name, t.volume FROM stocks s JOIN trades t ON s.name = t.sym")
	if err != nil {
		t.Fatal(err)
	}
	if cq.Result().Len() != 1 {
		t.Fatalf("initial join = %d", cq.Result().Len())
	}
	tx = store.Begin()
	_, _ = tx.Insert("trades", []relation.Value{relation.Str("DEC"), relation.Int(500)})
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := cq.Refresh(); err != nil {
		t.Fatal(err)
	}
	if cq.Result().Len() != 2 {
		t.Errorf("join after refresh = %d", cq.Result().Len())
	}
}

func TestServerStatsCountWork(t *testing.T) {
	store, srv, client := startServer(t)
	insertStock(t, store, "A", 10)
	if _, _, err := client.Query("SELECT * FROM stocks"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := client.DeltaSince("stocks", 0); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.QueriesServed != 1 || st.DeltasServed != 1 || st.TuplesExecuted != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestValueMarshalRoundTrip(t *testing.T) {
	vals := []relation.Value{
		relation.Int(-42),
		relation.Float(3.25),
		relation.Str("hello 'quoted'"),
		relation.Bool(true),
		relation.NullValue(),
		relation.TypedNull(relation.TFloat),
	}
	for _, v := range vals {
		data, err := v.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var back relation.Value
		if err := back.UnmarshalBinary(data); err != nil {
			t.Fatalf("unmarshal %v: %v", v, err)
		}
		if !back.Equal(v) || back.Kind != v.Kind {
			t.Errorf("round trip %v -> %v", v, back)
		}
	}
	var bad relation.Value
	if err := bad.UnmarshalBinary(nil); err == nil {
		t.Error("empty unmarshal should fail")
	}
	if err := bad.UnmarshalBinary([]byte{byte(relation.TInt), 1, 2}); err == nil {
		t.Error("short int payload should fail")
	}
}

func TestMultipleClients(t *testing.T) {
	store, srv, c1 := startServer(t)
	insertStock(t, store, "A", 10)
	addrClient := func() *Client {
		c, err := Dial(srv.ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = c.Close() })
		return c
	}
	c2 := addrClient()
	c3 := addrClient()
	for _, c := range []*Client{c1, c2, c3} {
		snap, _, err := c.Snapshot("stocks")
		if err != nil {
			t.Fatal(err)
		}
		if snap.Len() != 1 {
			t.Errorf("client saw %d rows", snap.Len())
		}
	}
}

func TestNowAndBytesWritten(t *testing.T) {
	store, _, client := startServer(t)
	insertStock(t, store, "A", 1)
	now, err := client.Now()
	if err != nil || now == 0 {
		t.Fatalf("Now = %d, %v", now, err)
	}
	if client.BytesWritten() == 0 {
		t.Error("requests should have written bytes")
	}
}

func TestApplyUpdatesModifyDeleteAndErrors(t *testing.T) {
	store, _, client := startServer(t)
	tid := insertStock(t, store, "A", 10)

	// Modify over the wire.
	if err := client.ApplyUpdates("stocks", []WireDeltaRow{{
		TID: uint64(tid),
		Old: []relation.Value{relation.Str("A"), relation.Float(10)},
		New: []relation.Value{relation.Str("A"), relation.Float(20)},
	}}); err != nil {
		t.Fatal(err)
	}
	snap, _ := store.Snapshot("stocks")
	got, _ := snap.Lookup(tid)
	if got.Values[1].AsFloat() != 20 {
		t.Errorf("wire modify = %v", got.Values)
	}
	// Delete over the wire.
	if err := client.ApplyUpdates("stocks", []WireDeltaRow{{
		TID: uint64(tid),
		Old: []relation.Value{relation.Str("A"), relation.Float(20)},
	}}); err != nil {
		t.Fatal(err)
	}
	snap, _ = store.Snapshot("stocks")
	if snap.Len() != 0 {
		t.Error("wire delete did not take")
	}
	// Errors: empty row, missing table, missing tid.
	if err := client.ApplyUpdates("stocks", []WireDeltaRow{{}}); err == nil {
		t.Error("empty row should fail")
	}
	if err := client.ApplyUpdates("", nil); err == nil {
		t.Error("missing table should fail")
	}
	if err := client.ApplyUpdates("stocks", []WireDeltaRow{{
		TID: 9999, Old: []relation.Value{relation.Str("x"), relation.Float(1)},
	}}); err == nil {
		t.Error("deleting unknown tid should fail")
	}
}

func TestStaleDeltaWindowErrorsOverWire(t *testing.T) {
	store, _, client := startServer(t)
	insertStock(t, store, "A", 1)
	insertStock(t, store, "B", 2)
	store.CollectGarbage(store.Now())
	if _, _, err := client.DeltaSince("stocks", 0); err == nil {
		t.Error("collected window should error through the wire")
	}
}
