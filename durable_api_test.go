package continual

import (
	"testing"
)

// TestOpenDurableRoundTrip drives the public durable API end to end on
// a real directory: tables, data, and a registered CQ survive a
// close/reopen, and the resumed CQ keeps delivering differentially.
func TestOpenDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opts := Options{DataDir: dir, Fsync: "always"}

	db, err := OpenDurable(opts)
	if err != nil {
		t.Fatal(err)
	}
	if db.Recovery().HasState() {
		t.Fatalf("fresh dir reports recovered state: %+v", db.Recovery())
	}
	if err := db.Exec(`CREATE TABLE stocks (name STRING, price FLOAT)`); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(`INSERT INTO stocks VALUES ('DEC', 150), ('IBM', 75)`); err != nil {
		t.Fatal(err)
	}
	sub, err := db.Register("expensive", `SELECT * FROM stocks WHERE price > 120`)
	if err != nil {
		t.Fatal(err)
	}
	if got := sub.Initial().Len(); got != 1 {
		t.Fatalf("initial result len %d, want 1", got)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := OpenDurable(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	rec := db2.Recovery()
	if !rec.FromCheckpoint || rec.CQs != 1 || rec.Records != 0 {
		t.Fatalf("recovery after clean close: %+v", rec)
	}
	rows, err := db2.Query(`SELECT name FROM stocks WHERE price > 120`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 1 {
		t.Fatalf("recovered query rows: %d, want 1", rows.Len())
	}
	if names := db2.CQNames(); len(names) != 1 || names[0] != "expensive" {
		t.Fatalf("recovered CQs: %v", names)
	}

	// The resumed CQ picks up differentially.
	sub2, err := db2.Subscribe("expensive")
	if err != nil {
		t.Fatal(err)
	}
	if err := db2.Exec(`INSERT INTO stocks VALUES ('MAC', 130)`); err != nil {
		t.Fatal(err)
	}
	if db2.Poll() != 1 {
		t.Fatal("resumed trigger did not fire")
	}
	select {
	case n := <-sub2.Updates():
		if len(n.Inserted) != 1 {
			t.Fatalf("post-recovery change: %+v", n)
		}
	default:
		t.Fatal("no notification after post-recovery poll")
	}

	if err := db2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointRequiresDurable(t *testing.T) {
	db := Open()
	defer db.Close()
	if err := db.Checkpoint(); err == nil {
		t.Fatal("in-memory Checkpoint must error")
	}
}

func TestOpenDurableRejectsBadOptions(t *testing.T) {
	if _, err := OpenDurable(Options{}); err == nil {
		t.Fatal("missing DataDir must error")
	}
	if _, err := OpenDurable(Options{DataDir: t.TempDir(), Fsync: "sometimes"}); err == nil {
		t.Fatal("unknown fsync policy must error")
	}
}
