package remote

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"

	"time"

	"github.com/diorama/continual/internal/algebra"
	"github.com/diorama/continual/internal/delta"
	"github.com/diorama/continual/internal/dra"
	"github.com/diorama/continual/internal/obs"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/vclock"
)

// Client talks to a Server. It is safe for concurrent use; requests are
// serialized over the single connection.
//
// The client is fault tolerant per its Policy: requests carry I/O
// deadlines, idempotent operations are retried with capped exponential
// backoff, and a failed connection is marked broken — never reused, so
// a desynced codec cannot serve a later request — and transparently
// re-established on the next attempt.
type Client struct {
	mu     sync.Mutex
	addr   string
	policy Policy
	rng    *rand.Rand // backoff jitter

	conn   net.Conn
	codec  *codec
	broken bool // conn saw an I/O error; must be replaced before reuse
	dialed bool // a connection has been established at least once
	closed bool

	// Wire totals from connections already torn down; BytesRead/Written
	// add the live codec's counts on top so totals survive reconnects.
	baseIn, baseOut int64

	// obs instrumentation; nil unless Instrument was called.
	met *clientMetrics
}

// clientMetrics is the client's bundle of obs handles.
type clientMetrics struct {
	requests   *obs.Counter   // remote.client.requests
	windows    *obs.Counter   // remote.client.windows_pulled
	bytesIn    *obs.Counter   // remote.client.bytes_in
	bytesOut   *obs.Counter   // remote.client.bytes_out
	retries    *obs.Counter   // remote.client.retries: re-sent requests
	reconnects *obs.Counter   // remote.client.reconnects: dials after the first
	timeouts   *obs.Counter   // remote.client.timeouts: deadline-exceeded ops
	broken     *obs.Counter   // remote.client.broken_conns: conns marked unusable
	rtt        *obs.Histogram // remote.client.rtt_ns: request round-trip time
}

// Instrument attaches the client to a metrics registry. Every request
// afterwards records its round-trip latency, wire traffic, and fault
// recovery activity (retries, reconnects, timeouts, broken conns).
func (c *Client) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.met = &clientMetrics{
		requests:   reg.Counter("remote.client.requests"),
		windows:    reg.Counter("remote.client.windows_pulled"),
		bytesIn:    reg.Counter("remote.client.bytes_in"),
		bytesOut:   reg.Counter("remote.client.bytes_out"),
		retries:    reg.Counter("remote.client.retries"),
		reconnects: reg.Counter("remote.client.reconnects"),
		timeouts:   reg.Counter("remote.client.timeouts"),
		broken:     reg.Counter("remote.client.broken_conns"),
		rtt:        reg.Histogram("remote.client.rtt_ns"),
	}
}

// Dial connects to a server with DefaultPolicy.
func Dial(addr string) (*Client, error) { return DialPolicy(addr, DefaultPolicy()) }

// DialPolicy connects to a server under an explicit fault-tolerance
// policy. The initial connection is attempted eagerly so an unreachable
// address fails fast; later reconnects happen inside request retries.
func DialPolicy(addr string, p Policy) (*Client, error) {
	c := &Client{
		addr:   addr,
		policy: p,
		rng:    rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	c.mu.Lock()
	err := c.ensureConnLocked()
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return c, nil
}

// Close closes the connection; subsequent requests fail with
// ErrClientClosed instead of reconnecting.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.conn == nil {
		return nil
	}
	c.foldWireTotalsLocked()
	err := c.conn.Close()
	c.conn, c.codec = nil, nil
	return err
}

// foldWireTotalsLocked banks the live codec's byte counts before the
// conn is discarded.
func (c *Client) foldWireTotalsLocked() {
	if c.codec != nil {
		c.baseIn += c.codec.bytesRead()
		c.baseOut += c.codec.bytesWritten()
	}
}

// BytesRead returns total bytes received from the server, across all
// connections this client has used.
func (c *Client) BytesRead() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.baseIn
	if c.codec != nil {
		n += c.codec.bytesRead()
	}
	return n
}

// BytesWritten returns total bytes sent to the server, across all
// connections this client has used.
func (c *Client) BytesWritten() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.baseOut
	if c.codec != nil {
		n += c.codec.bytesWritten()
	}
	return n
}

// ensureConnLocked makes a usable connection available, dialing if the
// previous one is absent or marked broken.
func (c *Client) ensureConnLocked() error {
	if c.closed {
		return ErrClientClosed
	}
	if c.conn != nil && !c.broken {
		return nil
	}
	dial := c.policy.Dialer
	if dial == nil {
		timeout := c.policy.DialTimeout
		dial = func(addr string) (net.Conn, error) { return net.DialTimeout("tcp", addr, timeout) }
	}
	conn, err := dial(c.addr)
	if err != nil {
		return fmt.Errorf("remote: dial %s: %w", c.addr, err)
	}
	c.conn = conn
	c.codec = newCodec(conn)
	c.broken = false
	if c.dialed {
		if m := c.met; m != nil {
			m.reconnects.Inc()
		}
	}
	c.dialed = true
	return nil
}

// breakConnLocked retires a connection after an I/O error. The codec
// may be mid-frame, so the conn can never be reused: it is closed and
// replaced on the next attempt.
func (c *Client) breakConnLocked(err error) {
	c.foldWireTotalsLocked()
	if c.conn != nil {
		_ = c.conn.Close()
	}
	c.conn, c.codec = nil, nil
	c.broken = true
	if m := c.met; m != nil {
		m.broken.Inc()
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			m.timeouts.Inc()
		}
	}
}

func (c *Client) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if s := c.policy.Sleep; s != nil {
		s(d)
		return
	}
	time.Sleep(d)
}

// roundTrip sends one request, transparently reconnecting and retrying
// per the policy. Server-level errors (a well-formed error Response)
// are returned as-is and never retried — only transport failures are.
func (c *Client) roundTrip(req Request) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	attempts := c.policy.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			if m := c.met; m != nil {
				m.retries.Inc()
			}
			c.sleep(c.policy.backoff(attempt-1, c.rng))
		}
		if err := c.ensureConnLocked(); err != nil {
			if errors.Is(err, ErrClientClosed) {
				return Response{}, err
			}
			lastErr = err // dial failures are always safe to retry
			continue
		}
		resp, err := c.doRequestLocked(req)
		if err == nil {
			return resp, resp.asError()
		}
		c.breakConnLocked(err)
		lastErr = fmt.Errorf("remote: %s: %w", req.Op, err)
		if !req.Op.retryable() {
			// The request may have reached the server before the
			// connection died; re-sending could double-apply.
			return Response{}, fmt.Errorf("%w: %v", ErrMaybeApplied, err)
		}
	}
	return Response{}, lastErr
}

// doRequestLocked performs one send/recv exchange on the live conn
// under the policy's I/O deadline.
func (c *Client) doRequestLocked(req Request) (Response, error) {
	var start time.Time
	var lastIn, lastOut int64
	if c.met != nil {
		start = time.Now()
		lastIn, lastOut = c.codec.bytesRead(), c.codec.bytesWritten()
	}
	if t := c.policy.IOTimeout; t > 0 {
		_ = c.conn.SetDeadline(time.Now().Add(t))
	}
	if err := c.codec.send(req); err != nil {
		return Response{}, fmt.Errorf("send: %w", err)
	}
	var resp Response
	if err := c.codec.recv(&resp); err != nil {
		return Response{}, fmt.Errorf("recv: %w", err)
	}
	if c.policy.IOTimeout > 0 {
		_ = c.conn.SetDeadline(time.Time{})
	}
	if m := c.met; m != nil {
		m.requests.Inc()
		m.rtt.Observe(time.Since(start))
		m.bytesIn.Add(c.codec.bytesRead() - lastIn)
		m.bytesOut.Add(c.codec.bytesWritten() - lastOut)
		if req.Op == OpDeltaSince {
			m.windows.Inc()
		}
	}
	return resp, nil
}

// Stats fetches the server's metrics snapshot over the wire (OpStats).
func (c *Client) Stats() (obs.Snapshot, error) {
	resp, err := c.roundTrip(Request{Op: OpStats})
	if err != nil {
		return obs.Snapshot{}, err
	}
	if resp.Stats == nil {
		return obs.Snapshot{}, fmt.Errorf("remote: server returned no stats")
	}
	return *resp.Stats, nil
}

// Checkpoint asks the server to take a durable checkpoint now
// (OpCheckpoint). Errors if the server has no durable store.
func (c *Client) Checkpoint() error {
	_, err := c.roundTrip(Request{Op: OpCheckpoint})
	return err
}

// Deps fetches the server's cascade dependency DAG in topological
// order (OpDeps). Empty when the server runs no CQ manager.
func (c *Client) Deps() ([]WireDep, error) {
	resp, err := c.roundTrip(Request{Op: OpDeps})
	return resp.Deps, err
}

// ListTables returns the server's table names.
func (c *Client) ListTables() ([]string, error) {
	resp, err := c.roundTrip(Request{Op: OpListTables})
	return resp.Tables, err
}

// Schema fetches a table's schema.
func (c *Client) Schema(table string) (relation.Schema, error) {
	resp, err := c.roundTrip(Request{Op: OpSchema, Table: table})
	if err != nil {
		return relation.Schema{}, err
	}
	return fromWireSchema(resp.Columns)
}

// Snapshot fetches the full current contents of a table and the server's
// logical time.
func (c *Client) Snapshot(table string) (*relation.Relation, vclock.Timestamp, error) {
	resp, err := c.roundTrip(Request{Op: OpSnapshot, Table: table})
	if err != nil {
		return nil, 0, err
	}
	rel, err := fromWireRelation(resp.Rel)
	return rel, resp.Now, err
}

// DeltaSince fetches a table's differential window. It asks for the
// columnar wire form and decodes whichever representation the server
// ships — columnar when the window fits typed columns, rows otherwise.
func (c *Client) DeltaSince(table string, since vclock.Timestamp) (*delta.Delta, vclock.Timestamp, error) {
	resp, err := c.roundTrip(Request{Op: OpDeltaSince, Table: table, Since: since, Columnar: true})
	if err != nil {
		return nil, 0, err
	}
	schema, err := c.Schema(table)
	if err != nil {
		return nil, 0, err
	}
	if resp.ColDelta != nil {
		d, derr := fromWireColDelta(resp.ColDelta, schema)
		return d, resp.Now, derr
	}
	d, err := fromWireDelta(resp.Delta, schema)
	return d, resp.Now, err
}

// Query executes a SELECT on the server and ships the full result back —
// the server-side-evaluation mode the paper argues against for scalable
// monitoring.
func (c *Client) Query(query string) (*relation.Relation, vclock.Timestamp, error) {
	resp, err := c.roundTrip(Request{Op: OpQuery, Query: query})
	if err != nil {
		return nil, 0, err
	}
	rel, err := fromWireRelation(resp.Rel)
	return rel, resp.Now, err
}

// Now returns the server's logical clock.
func (c *Client) Now() (vclock.Timestamp, error) {
	resp, err := c.roundTrip(Request{Op: OpNow})
	return resp.Now, err
}

// ApplyUpdates pushes a batch of updates into a server table (benchmark
// drivers use this to generate load over the wire).
func (c *Client) ApplyUpdates(table string, rows []WireDeltaRow) error {
	_, err := c.roundTrip(Request{Op: OpApplyUpdates, Table: table, Updates: rows})
	return err
}

// MirrorCQ is a client-side continual query evaluated by DRA over
// shipped deltas: the client keeps a replica of the operand tables
// (applied forward by the delta stream) and the cached previous result —
// "shifting the processing to the client side" (Section 6).
type MirrorCQ struct {
	client *Client
	query  string
	plan   algebra.Plan
	engine *dra.Engine

	tables  []string
	replica map[string]*relation.Relation // operand replicas at lastTS
	lastTS  vclock.Timestamp
	result  *relation.Relation

	// Degraded-mode state: when a Refresh fails (server unreachable,
	// retries exhausted) the CQ keeps serving the last good result and
	// records why it is stale.
	stale   bool
	lastErr error
}

// replicaCatalog adapts the replica set to the planner/executor.
type replicaCatalog map[string]*relation.Relation

func (rc replicaCatalog) Schema(table string) (relation.Schema, error) {
	r, ok := rc[table]
	if !ok {
		return relation.Schema{}, fmt.Errorf("remote: no replica of %q", table)
	}
	return r.Schema(), nil
}

func (rc replicaCatalog) Relation(table string) (*relation.Relation, error) {
	r, ok := rc[table]
	if !ok {
		return nil, fmt.Errorf("remote: no replica of %q", table)
	}
	return r, nil
}

// NewMirrorCQ installs a client-side CQ: it snapshots the operand tables
// once, evaluates the initial result locally, and afterwards refreshes by
// pulling only deltas.
func NewMirrorCQ(client *Client, query string) (*MirrorCQ, error) {
	// Plan against server schemas.
	serverCat := &clientCatalog{client: client}
	plan, err := algebra.PlanSQL(query, serverCat)
	if err != nil {
		return nil, err
	}
	plan = algebra.Optimize(plan)

	m := &MirrorCQ{
		client:  client,
		query:   query,
		plan:    plan,
		engine:  dra.NewEngine(),
		replica: make(map[string]*relation.Relation),
	}
	for _, scan := range algebra.Tables(plan) {
		m.tables = append(m.tables, scan.Table)
	}
	// Initial snapshots. Each snapshot arrives tagged with the server
	// time it was taken at; replicas are then brought forward to the
	// common horizon ts with one delta window each, so all replicas
	// reflect the same consistent cut.
	var ts vclock.Timestamp
	snapTS := make(map[string]vclock.Timestamp, len(m.tables))
	for _, table := range m.tables {
		if _, dup := m.replica[table]; dup {
			continue
		}
		rel, now, err := client.Snapshot(table)
		if err != nil {
			return nil, err
		}
		m.replica[table] = rel
		snapTS[table] = now
		if now > ts {
			ts = now
		}
	}
	for table, rel := range m.replica {
		if snapTS[table] == ts {
			continue
		}
		d, _, err := client.DeltaSince(table, snapTS[table])
		if err != nil {
			return nil, err
		}
		if err := d.Window(snapTS[table], ts).Apply(rel); err != nil {
			return nil, fmt.Errorf("remote: align replica %q: %w", table, err)
		}
	}
	m.lastTS = ts
	initial, err := dra.InitialResult(plan, replicaCatalog(m.replica))
	if err != nil {
		return nil, err
	}
	m.result = initial
	return m, nil
}

// clientCatalog resolves schemas over the wire for planning.
type clientCatalog struct{ client *Client }

func (cc *clientCatalog) Schema(table string) (relation.Schema, error) {
	return cc.client.Schema(table)
}

// Result returns the cached current result. While the server is
// unreachable this keeps serving the last successfully refreshed
// result; check Stale to tell the two apart.
func (m *MirrorCQ) Result() *relation.Relation { return m.result }

// LastTS returns the logical time of the last refresh.
func (m *MirrorCQ) LastTS() vclock.Timestamp { return m.lastTS }

// Stale reports whether the most recent Refresh failed, meaning Result
// reflects the state as of LastTS rather than the present.
func (m *MirrorCQ) Stale() bool { return m.stale }

// LastErr returns the error that made the result stale (nil when
// fresh).
func (m *MirrorCQ) LastErr() error { return m.lastErr }

// Refresh pulls the delta windows since the last refresh, re-evaluates
// the query differentially against the local replicas, advances the
// replicas, and returns the result change.
//
// Refresh is failure-atomic and resumes differentially: no local state
// changes until every window has been pulled, so a refresh that dies
// mid-stream (connection killed, server restarted) leaves lastTS
// intact and the next Refresh simply re-pulls DeltaSince(lastTS) over
// a fresh connection — no snapshot rebuild. On failure the CQ enters
// degraded mode (Stale reports true, Result serves the last good
// state) until a refresh succeeds.
func (m *MirrorCQ) Refresh() (*delta.Delta, error) {
	d, err := m.refresh()
	if err != nil {
		m.stale, m.lastErr = true, err
		return nil, err
	}
	m.stale, m.lastErr = false, nil
	return d, nil
}

func (m *MirrorCQ) refresh() (*delta.Delta, error) {
	deltas := make(map[string]*delta.Delta, len(m.tables))
	var now vclock.Timestamp
	for _, table := range m.tables {
		if _, dup := deltas[table]; dup {
			continue
		}
		d, serverNow, err := m.client.DeltaSince(table, m.lastTS)
		if err != nil {
			return nil, err
		}
		if serverNow > now {
			now = serverNow
		}
		deltas[table] = d
	}
	// Clamp all windows to the common horizon so the evaluation sees a
	// consistent cut.
	for table, d := range deltas {
		deltas[table] = d.Window(m.lastTS, now)
	}

	// Post-state replicas: needed by the engine's non-SPJ fallback, and
	// they become the new replica set after a successful refresh.
	post := make(map[string]*relation.Relation, len(m.replica))
	for table, rel := range m.replica {
		clone := rel.Clone()
		if d, ok := deltas[table]; ok {
			if err := d.Apply(clone); err != nil {
				return nil, fmt.Errorf("remote: advance replica %q: %w", table, err)
			}
		}
		post[table] = clone
	}
	ctx := &dra.Context{
		Pre:    replicaCatalog(m.replica),
		Post:   replicaCatalog(post),
		Deltas: deltas,
		LastTS: m.lastTS,
		Prev:   m.result,
	}
	res, err := m.engine.Reevaluate(m.plan, ctx, now)
	if err != nil {
		return nil, err
	}
	m.replica = post
	m.result = res.ApplyTo(m.result)
	m.lastTS = now
	return res.Delta, nil
}
