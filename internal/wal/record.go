// Package wal implements the durability layer of the engine: a
// write-ahead log of committed transaction deltas plus periodic
// checkpoints of the full engine state (base relations, retained
// differential relations, the logical clock, per-table change counters,
// and the CQ registry).
//
// The differential relations the engine already maintains per table are
// exactly the right thing to persist: a committed transaction's WAL
// record IS its differential-relation rows, so recovery replays the log
// tail into the tables and the delta logs at once, and every continual
// query's first post-restart refresh runs differentially from its last
// delivered timestamp — the DRA applied to the crash itself.
//
// Wire format: every record is a frame
//
//	[4-byte big-endian payload length][4-byte CRC-32C of payload][payload]
//
// with the length validated against a cap before any allocation and the
// checksum validated before any decoding — the size-cap/desync lessons
// of the remote codec (internal/remote). A torn final frame (the crash
// landed mid-write) is detected and dropped cleanly; a frame that fails
// its checksum is never partially applied.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"github.com/diorama/continual/internal/delta"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/vclock"
)

// Errors of the record codec.
var (
	// ErrTorn reports an incomplete final frame: the header or payload
	// was cut short. Recovery treats it as the clean end of the segment.
	ErrTorn = errors.New("wal: torn record")
	// ErrCorrupt reports a frame whose checksum or structure is invalid.
	ErrCorrupt = errors.New("wal: corrupt record")
	// ErrRecordTooLarge reports a frame beyond the size cap, either on
	// encode (the transaction is absurdly large) or on decode (the
	// length prefix is garbage).
	ErrRecordTooLarge = errors.New("wal: record exceeds size limit")
)

// maxRecord bounds one frame. Validated before allocation on the read
// path so a corrupt length prefix cannot OOM recovery.
const maxRecord = 64 << 20 // 64 MiB

// castagnoli is the CRC-32C table (the checksum used by ext4, iSCSI...).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Kind tags a WAL record.
type Kind byte

// Record kinds.
const (
	// KindTx is one committed transaction: commit timestamp plus its
	// per-table differential rows.
	KindTx Kind = iota + 1
	// KindCreateTable / KindDropTable are DDL.
	KindCreateTable
	KindDropTable
	// KindCQRegister installs a continual query (entry + initial result).
	KindCQRegister
	// KindCQExec is one delivered refresh of a CQ: seq, exec timestamp
	// and the result delta, so recovery can roll the stored result
	// forward to the last delivered execution without re-evaluating.
	KindCQExec
	// KindCQDrop removes a continual query.
	KindCQDrop
)

// TxRow couples a table name with one differential row — the unit a
// committed transaction contributes to the log.
type TxRow struct {
	Table string
	Row   delta.Row
}

// Record is one decoded WAL record. Exactly the fields for its Kind are
// populated.
type Record struct {
	Kind Kind

	// KindTx
	TS   vclock.Timestamp
	Rows []TxRow

	// KindCreateTable / KindDropTable
	Table  string
	Schema relation.Schema

	// KindCQRegister
	CQ *CQEntry

	// KindCQExec / KindCQDrop
	Name       string
	Seq        int
	ExecTS     vclock.Timestamp
	Terminated bool
	Change     []delta.Row // result-schema delta rows of the refresh
}

// CQEntry is the durable form of one registered continual query: the
// paper's triple (Q, Tcq, Stop) rendered to primitives, plus the
// bookkeeping needed to resume the result sequence where it stopped
// (Seq, LastExec) and the materialized result as of LastExec.
type CQEntry struct {
	Name           string
	Query          string // SELECT text; re-parsed at recovery
	TriggerKind    int
	TriggerEvery   int64
	TriggerBound   float64
	TriggerOn      string // epsilon expression text ("" = none)
	TriggerUpdates int64
	Mode           int
	StopAfterN     int64
	EpsilonMeasure int
	NotifyEmpty    bool
	Strategy       string // refresh pipeline in effect ("" = none)
	Seq            int
	LastExec       vclock.Timestamp
	Terminated     bool
	// Health is the CQ's guard state at checkpoint time ("healthy",
	// "probation", "quarantined"; "" reads as healthy). A recovered CQ
	// that was not healthy resumes in probation — it must prove itself
	// with a probe refresh rather than rejoin at full cadence.
	Health string
	// Result is the complete result as of LastExec. Nil means the
	// recovering manager must reseed it by evaluation at LastExec.
	Result *relation.Relation
}

// ---------------------------------------------------------------------
// primitive encoder / decoder

// enc builds a record payload by appending to a byte slice.
type enc struct{ b []byte }

func (e *enc) u64(v uint64)  { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) byte(v byte)   { e.b = append(e.b, v) }
func (e *enc) str(s string)  { e.u64(uint64(len(s))); e.b = append(e.b, s...) }
func (e *enc) raw(p []byte)  { e.u64(uint64(len(p))); e.b = append(e.b, p...) }
func (e *enc) bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	e.byte(b)
}

func (e *enc) val(v relation.Value) error {
	p, err := v.MarshalBinary()
	if err != nil {
		return err
	}
	e.raw(p)
	return nil
}

// vals encodes a value slice, distinguishing nil (length tag 0) from
// empty (length tag 1): the nil-ness of the Old/New halves is what makes
// a delta row an insert, delete or modify.
func (e *enc) vals(vs []relation.Value) error {
	if vs == nil {
		e.u64(0)
		return nil
	}
	e.u64(uint64(len(vs)) + 1)
	for _, v := range vs {
		if err := e.val(v); err != nil {
			return err
		}
	}
	return nil
}

func (e *enc) schema(s relation.Schema) {
	e.u64(uint64(s.Len()))
	for i := 0; i < s.Len(); i++ {
		c := s.Col(i)
		e.str(c.Name)
		e.u64(uint64(c.Type))
	}
}

func (e *enc) relation(r *relation.Relation) error {
	e.schema(r.Schema())
	e.u64(uint64(r.Len()))
	for _, t := range r.Tuples() {
		e.u64(uint64(t.TID))
		if err := e.vals(t.Values); err != nil {
			return err
		}
	}
	return nil
}

func (e *enc) deltaRow(r delta.Row) error {
	e.u64(uint64(r.TID))
	e.u64(uint64(r.TS))
	if err := e.vals(r.Old); err != nil {
		return err
	}
	return e.vals(r.New)
}

// dec reads a record payload with strict bounds checking: every length
// is validated against the remaining buffer before slicing, so a
// corrupted or adversarial payload produces ErrCorrupt, never a panic
// or a huge allocation.
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = ErrCorrupt
	}
}

func (d *dec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) == 0 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *dec) bool() bool { return d.byte() == 1 }

func (d *dec) raw() []byte {
	n := d.u64()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)) {
		d.fail()
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out
}

func (d *dec) str() string { return string(d.raw()) }

// count reads a collection length and sanity-bounds it: a collection of
// n elements needs at least n bytes of payload, so anything larger is a
// corrupt length, rejected before allocation.
func (d *dec) count() int {
	n := d.u64()
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.b)) {
		d.fail()
		return 0
	}
	return int(n)
}

func (d *dec) val() relation.Value {
	p := d.raw()
	if d.err != nil {
		return relation.Value{}
	}
	var v relation.Value
	if err := v.UnmarshalBinary(p); err != nil {
		d.fail()
		return relation.Value{}
	}
	return v
}

func (d *dec) vals() []relation.Value {
	tag := d.u64()
	if d.err != nil || tag == 0 {
		return nil
	}
	n := tag - 1
	if n > uint64(len(d.b)) {
		d.fail()
		return nil
	}
	out := make([]relation.Value, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, d.val())
		if d.err != nil {
			return nil
		}
	}
	return out
}

func (d *dec) schema() relation.Schema {
	n := d.count()
	cols := make([]relation.Column, 0, n)
	for i := 0; i < n; i++ {
		name := d.str()
		typ := d.u64()
		cols = append(cols, relation.Column{Name: name, Type: relation.Type(typ)})
	}
	if d.err != nil {
		return relation.Schema{}
	}
	s, err := relation.NewSchema(cols...)
	if err != nil {
		d.fail()
		return relation.Schema{}
	}
	return s
}

func (d *dec) relation() *relation.Relation {
	schema := d.schema()
	if d.err != nil {
		return nil
	}
	out := relation.New(schema)
	n := d.count()
	for i := 0; i < n; i++ {
		tid := relation.TID(d.u64())
		vs := d.vals()
		if d.err != nil {
			return nil
		}
		if err := out.Insert(relation.Tuple{TID: tid, Values: vs}); err != nil {
			d.fail()
			return nil
		}
	}
	return out
}

func (d *dec) deltaRow() delta.Row {
	var r delta.Row
	r.TID = relation.TID(d.u64())
	r.TS = vclock.Timestamp(d.u64())
	r.Old = d.vals()
	r.New = d.vals()
	return r
}

// ---------------------------------------------------------------------
// record payload encode / decode

// encodeRecord serializes a record to its payload bytes (no frame).
func encodeRecord(rec *Record) ([]byte, error) {
	e := &enc{b: make([]byte, 0, 128)}
	e.byte(byte(rec.Kind))
	switch rec.Kind {
	case KindTx:
		e.u64(uint64(rec.TS))
		e.u64(uint64(len(rec.Rows)))
		for _, tr := range rec.Rows {
			e.str(tr.Table)
			if err := e.deltaRow(tr.Row); err != nil {
				return nil, err
			}
		}
	case KindCreateTable:
		e.str(rec.Table)
		e.schema(rec.Schema)
	case KindDropTable:
		e.str(rec.Table)
	case KindCQRegister:
		if err := encodeCQEntry(e, rec.CQ); err != nil {
			return nil, err
		}
	case KindCQExec:
		e.str(rec.Name)
		e.u64(uint64(rec.Seq))
		e.u64(uint64(rec.ExecTS))
		e.bool(rec.Terminated)
		e.u64(uint64(len(rec.Change)))
		for _, r := range rec.Change {
			if err := e.deltaRow(r); err != nil {
				return nil, err
			}
		}
	case KindCQDrop:
		e.str(rec.Name)
	default:
		return nil, fmt.Errorf("wal: cannot encode record kind %d", rec.Kind)
	}
	if len(e.b) > maxRecord {
		return nil, fmt.Errorf("%w: %d bytes", ErrRecordTooLarge, len(e.b))
	}
	return e.b, nil
}

// decodeRecord parses a payload produced by encodeRecord. It never
// panics on malformed input: any structural violation yields ErrCorrupt.
func decodeRecord(payload []byte) (*Record, error) {
	d := &dec{b: payload}
	rec := &Record{Kind: Kind(d.byte())}
	switch rec.Kind {
	case KindTx:
		rec.TS = vclock.Timestamp(d.u64())
		n := d.count()
		if n > 0 {
			rec.Rows = make([]TxRow, 0, n)
		}
		for i := 0; i < n; i++ {
			table := d.str()
			row := d.deltaRow()
			if d.err != nil {
				return nil, d.err
			}
			if row.Old == nil && row.New == nil {
				return nil, fmt.Errorf("%w: tx row with no halves", ErrCorrupt)
			}
			rec.Rows = append(rec.Rows, TxRow{Table: table, Row: row})
		}
	case KindCreateTable:
		rec.Table = d.str()
		rec.Schema = d.schema()
	case KindDropTable:
		rec.Table = d.str()
	case KindCQRegister:
		rec.CQ = decodeCQEntry(d)
	case KindCQExec:
		rec.Name = d.str()
		rec.Seq = int(d.u64())
		rec.ExecTS = vclock.Timestamp(d.u64())
		rec.Terminated = d.bool()
		n := d.count()
		if n > 0 {
			rec.Change = make([]delta.Row, 0, n)
		}
		for i := 0; i < n; i++ {
			row := d.deltaRow()
			if d.err != nil {
				return nil, d.err
			}
			rec.Change = append(rec.Change, row)
		}
	case KindCQDrop:
		rec.Name = d.str()
	default:
		return nil, fmt.Errorf("%w: unknown kind %d", ErrCorrupt, rec.Kind)
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.b))
	}
	return rec, nil
}

func encodeCQEntry(e *enc, cq *CQEntry) error {
	if cq == nil {
		return fmt.Errorf("wal: nil CQ entry")
	}
	e.str(cq.Name)
	e.str(cq.Query)
	e.u64(uint64(cq.TriggerKind))
	e.u64(uint64(cq.TriggerEvery))
	e.u64(floatBits(cq.TriggerBound))
	e.str(cq.TriggerOn)
	e.u64(uint64(cq.TriggerUpdates))
	e.u64(uint64(cq.Mode))
	e.u64(uint64(cq.StopAfterN))
	e.u64(uint64(cq.EpsilonMeasure))
	e.bool(cq.NotifyEmpty)
	e.str(cq.Strategy)
	e.u64(uint64(cq.Seq))
	e.u64(uint64(cq.LastExec))
	e.bool(cq.Terminated)
	e.str(cq.Health)
	if cq.Result == nil {
		e.bool(false)
		return nil
	}
	e.bool(true)
	return e.relation(cq.Result)
}

func decodeCQEntry(d *dec) *CQEntry {
	cq := &CQEntry{}
	cq.Name = d.str()
	cq.Query = d.str()
	cq.TriggerKind = int(d.u64())
	cq.TriggerEvery = int64(d.u64())
	cq.TriggerBound = floatFromBits(d.u64())
	cq.TriggerOn = d.str()
	cq.TriggerUpdates = int64(d.u64())
	cq.Mode = int(d.u64())
	cq.StopAfterN = int64(d.u64())
	cq.EpsilonMeasure = int(d.u64())
	cq.NotifyEmpty = d.bool()
	cq.Strategy = d.str()
	cq.Seq = int(d.u64())
	cq.LastExec = vclock.Timestamp(d.u64())
	cq.Terminated = d.bool()
	cq.Health = d.str()
	if d.bool() {
		cq.Result = d.relation()
	}
	if d.err != nil {
		return nil
	}
	return cq
}

// ---------------------------------------------------------------------
// framing

// appendFrame wraps a payload in the length+CRC frame.
func appendFrame(dst, payload []byte) []byte {
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// frameReader reads frames off a stream, distinguishing the three ways
// a stream can end: clean EOF at a frame boundary (io.EOF), a torn
// final frame (ErrTorn), and a checksum/structure failure (ErrCorrupt).
type frameReader struct {
	r   io.Reader
	buf []byte
}

// next returns the payload of the next frame. The returned slice is
// only valid until the following call.
func (fr *frameReader) next() ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(fr.r, hdr[:1]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF // clean boundary
		}
		return nil, err
	}
	if _, err := io.ReadFull(fr.r, hdr[1:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, ErrTorn // header cut short
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	want := binary.BigEndian.Uint32(hdr[4:])
	if n > maxRecord {
		// A garbage length prefix is indistinguishable from corruption;
		// reject before allocating.
		return nil, fmt.Errorf("%w: prefix claims %d bytes", ErrCorrupt, n)
	}
	if cap(fr.buf) < int(n) {
		fr.buf = make([]byte, n)
	}
	buf := fr.buf[:n]
	if _, err := io.ReadFull(fr.r, buf); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, ErrTorn // payload cut short
		}
		return nil, err
	}
	if got := crc32.Checksum(buf, castagnoli); got != want {
		return nil, fmt.Errorf("%w: checksum %08x want %08x", ErrCorrupt, got, want)
	}
	return buf, nil
}

func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
