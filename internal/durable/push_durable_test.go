package durable_test

import (
	"testing"

	"github.com/diorama/continual/internal/cq"
	"github.com/diorama/continual/internal/durable"
	"github.com/diorama/continual/internal/faults"
	"github.com/diorama/continual/internal/wal"
)

func openPushSys(t *testing.T, fs wal.FS) *durable.System {
	t.Helper()
	sys, err := durable.Open(durable.Options{
		Dir:   "data",
		FS:    fs,
		Fsync: wal.FsyncAlways,
		CQ:    cq.Config{UseDRA: true, AutoGC: true, Push: true},
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return sys
}

// TestPushExecutionsAreDurable runs the commit-driven refresh path on a
// durable system: push dispatches journal their executions through the
// same write-ahead discipline as polled ones, Close drains the pipeline
// before the final checkpoint, and a restart resumes the CQ with the
// exact Seq/LastExec the push refreshes reached — then keeps pushing.
func TestPushExecutionsAreDurable(t *testing.T) {
	fs := faults.NewMemFS(1)
	sys := openPushSys(t, fs)
	if err := sys.Store.CreateTable("stocks", stockSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Manager.RegisterSQL(watchQuery); err != nil {
		t.Fatal(err)
	}
	// No Poll anywhere in this test: every refresh past the initial
	// execution arrives through the commit hook. Flushing after each
	// commit defeats coalescing (which would legitimately merge
	// back-to-back commits into one refresh) so Seq advances per commit.
	for _, row := range []struct {
		name string
		v    int64
	}{{"DEC", 150}, {"IBM", 40}, {"HP", 99}} {
		insertRow(t, sys.Store, row.name, row.v)
		sys.Manager.FlushPush()
	}
	wantState, err := sys.Manager.State("watch")
	if err != nil {
		t.Fatal(err)
	}
	if wantState.Seq < 3 {
		t.Fatalf("push refreshes did not advance seq: %+v", wantState)
	}
	wantRes, _ := sys.Manager.Result("watch")
	if err := sys.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	sys2 := openPushSys(t, fs)
	defer sys2.Close()
	// The drained pipeline was checkpointed: nothing replays.
	if !sys2.Recovery.FromCheckpoint || sys2.Recovery.Records != 0 || sys2.Recovery.CQs != 1 {
		t.Fatalf("recovery: %+v", sys2.Recovery)
	}
	st, err := sys2.Manager.State("watch")
	if err != nil {
		t.Fatal(err)
	}
	if st.Seq != wantState.Seq || st.LastExec != wantState.LastExec {
		t.Fatalf("resumed state %+v, want seq=%d lastExec=%d", st, wantState.Seq, wantState.LastExec)
	}
	res, _ := sys2.Manager.Result("watch")
	if !res.EqualContents(wantRes) {
		t.Fatal("cq result differs after restart")
	}

	// The resumed CQ re-registered with the router: commits keep pushing
	// with gap-free Seq.
	insertRow(t, sys2.Store, "SUN", 77)
	sys2.Manager.FlushPush()
	st2, _ := sys2.Manager.State("watch")
	if st2.Seq != wantState.Seq+1 {
		t.Fatalf("post-restart push seq %d, want %d", st2.Seq, wantState.Seq+1)
	}
	res2, _ := sys2.Manager.Result("watch")
	if res2.Len() != 3 { // DEC, HP, SUN
		t.Fatalf("post-restart result len %d: %v", res2.Len(), res2)
	}
}
