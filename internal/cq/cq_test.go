package cq

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/diorama/continual/internal/dra"
	"github.com/diorama/continual/internal/obs"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/sql"
	"github.com/diorama/continual/internal/storage"
)

func stockSchema() relation.Schema {
	return relation.MustSchema(
		relation.Column{Name: "name", Type: relation.TString},
		relation.Column{Name: "price", Type: relation.TFloat},
	)
}

func accountSchema() relation.Schema {
	return relation.MustSchema(
		relation.Column{Name: "owner", Type: relation.TString},
		relation.Column{Name: "amount", Type: relation.TFloat},
	)
}

func newStoreWith(t *testing.T, tables map[string]relation.Schema) *storage.Store {
	t.Helper()
	s := storage.NewStore()
	for name, schema := range tables {
		if err := s.CreateTable(name, schema); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func commit(t *testing.T, s *storage.Store, f func(tx *storage.Tx) error) {
	t.Helper()
	tx := s.Begin()
	if err := f(tx); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func insertStock(t *testing.T, s *storage.Store, name string, price float64) relation.TID {
	t.Helper()
	var tid relation.TID
	commit(t, s, func(tx *storage.Tx) error {
		id, err := tx.Insert("stocks", []relation.Value{relation.Str(name), relation.Float(price)})
		tid = id
		return err
	})
	return tid
}

func drain(ch <-chan Notification) []Notification {
	var out []Notification
	for {
		select {
		case n, ok := <-ch:
			if !ok {
				return out
			}
			out = append(out, n)
		default:
			return out
		}
	}
}

func TestRegisterRunsInitialExecution(t *testing.T) {
	s := newStoreWith(t, map[string]relation.Schema{"stocks": stockSchema()})
	insertStock(t, s, "DEC", 150)
	insertStock(t, s, "IBM", 75)

	m := NewManager(s)
	defer func() { _ = m.Close() }()
	initial, err := m.Register(Def{Name: "exp", Query: "SELECT * FROM stocks WHERE price > 120"})
	if err != nil {
		t.Fatal(err)
	}
	if initial.Len() != 1 {
		t.Fatalf("initial result = %d rows", initial.Len())
	}
	st, err := m.State("exp")
	if err != nil {
		t.Fatal(err)
	}
	if st.Seq != 1 || st.ResultLen != 1 {
		t.Errorf("state = %+v", st)
	}
}

func TestRegisterValidation(t *testing.T) {
	s := newStoreWith(t, map[string]relation.Schema{"stocks": stockSchema()})
	m := NewManager(s)
	defer func() { _ = m.Close() }()
	if _, err := m.Register(Def{Name: "", Query: "SELECT * FROM stocks"}); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := m.Register(Def{Name: "q", Query: "SELECT * FROM nosuch"}); err == nil {
		t.Error("missing table should fail")
	}
	if _, err := m.Register(Def{Name: "q", Query: "not sql"}); err == nil {
		t.Error("bad SQL should fail")
	}
	if _, err := m.Register(Def{Name: "q", Query: "SELECT * FROM stocks"}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Register(Def{Name: "q", Query: "SELECT * FROM stocks"}); !errors.Is(err, ErrDuplicateCQ) {
		t.Errorf("duplicate err = %v", err)
	}
}

func TestUpdateTriggerAndDifferentialNotification(t *testing.T) {
	s := newStoreWith(t, map[string]relation.Schema{"stocks": stockSchema()})
	insertStock(t, s, "DEC", 150)

	m := NewManager(s)
	defer func() { _ = m.Close() }()
	if _, err := m.Register(Def{
		Name:    "exp",
		Query:   "SELECT * FROM stocks WHERE price > 120",
		Trigger: sql.TriggerSpec{Kind: sql.TriggerUpdates, Updates: 1},
	}); err != nil {
		t.Fatal(err)
	}
	ch, cancel, err := m.Subscribe("exp", 16)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	insertStock(t, s, "MAC", 130)
	fired, err := m.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d", fired)
	}
	notes := drain(ch)
	if len(notes) != 1 {
		t.Fatalf("notifications = %d", len(notes))
	}
	n := notes[0]
	if n.Seq != 2 || n.Inserted.Len() != 1 || n.Deleted.Len() != 0 {
		t.Errorf("notification = %+v", n)
	}
	if n.Inserted.At(0).Values[0].AsString() != "MAC" {
		t.Errorf("inserted = %v", n.Inserted.At(0))
	}

	// Irrelevant update (below predicate): no notification by default.
	insertStock(t, s, "PENNY", 1)
	if _, err := m.Poll(); err != nil {
		t.Fatal(err)
	}
	if extra := drain(ch); len(extra) != 0 {
		t.Errorf("irrelevant update produced notifications: %+v", extra)
	}
}

func TestEveryTriggerUsesLogicalTime(t *testing.T) {
	s := newStoreWith(t, map[string]relation.Schema{"stocks": stockSchema()})
	m := NewManager(s)
	defer func() { _ = m.Close() }()
	if _, err := m.Register(Def{
		Name:        "periodic",
		Query:       "SELECT * FROM stocks WHERE price > 0",
		Trigger:     sql.TriggerSpec{Kind: sql.TriggerEvery, Every: 3},
		NotifyEmpty: true,
	}); err != nil {
		t.Fatal(err)
	}
	ch, cancel, _ := m.Subscribe("periodic", 16)
	defer cancel()

	insertStock(t, s, "A", 10) // tick 1
	if fired, _ := m.Poll(); fired != 0 {
		t.Error("should not fire before 3 ticks")
	}
	insertStock(t, s, "B", 20) // tick 2
	insertStock(t, s, "C", 30) // tick 3
	if fired, _ := m.Poll(); fired != 1 {
		t.Error("should fire at 3 ticks")
	}
	notes := drain(ch)
	if len(notes) != 1 || notes[0].Inserted.Len() != 3 {
		t.Errorf("notes = %+v", notes)
	}
}

func TestEpsilonTriggerBankExample(t *testing.T) {
	s := newStoreWith(t, map[string]relation.Schema{"CheckingAccounts": accountSchema()})
	m := NewManager(s)
	defer func() { _ = m.Close() }()
	// Section 5.3: SUM(amount) with |deposits - withdrawals| >= 0.5M.
	if _, err := m.RegisterSQL(`CREATE CONTINUAL QUERY banksum AS
		SELECT SUM(amount) AS total FROM CheckingAccounts
		TRIGGER EPSILON 500000 ON amount
		MODE COMPLETE`); err != nil {
		t.Fatal(err)
	}
	ch, cancel, _ := m.Subscribe("banksum", 16)
	defer cancel()

	deposit := func(owner string, amt float64) {
		commit(t, s, func(tx *storage.Tx) error {
			_, err := tx.Insert("CheckingAccounts", []relation.Value{relation.Str(owner), relation.Float(amt)})
			return err
		})
	}
	deposit("alice", 200_000)
	deposit("bob", 200_000)
	if fired, _ := m.Poll(); fired != 0 {
		t.Fatal("400k accumulated should not fire a 500k epsilon")
	}
	deposit("carol", 150_000)
	fired, err := m.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatal("550k accumulated should fire")
	}
	notes := drain(ch)
	if len(notes) != 1 || notes[0].Complete == nil {
		t.Fatalf("notes = %+v", notes)
	}
	if got := notes[0].Complete.At(0).Values[0].AsFloat(); got != 550_000 {
		t.Errorf("sum = %v", got)
	}
	// Divergence resets after refresh.
	st, _ := m.State("banksum")
	if st.Divergence != 0 {
		t.Errorf("divergence after refresh = %v", st.Divergence)
	}
}

func TestStopAfterNTerminates(t *testing.T) {
	s := newStoreWith(t, map[string]relation.Schema{"stocks": stockSchema()})
	m := NewManager(s)
	defer func() { _ = m.Close() }()
	if _, err := m.Register(Def{
		Name:  "short",
		Query: "SELECT * FROM stocks WHERE price > 0",
		Stop:  sql.StopSpec{AfterN: 2}, // initial + 1 refresh
	}); err != nil {
		t.Fatal(err)
	}
	ch, cancel, _ := m.Subscribe("short", 16)
	defer cancel()

	insertStock(t, s, "A", 10)
	if _, err := m.Poll(); err != nil {
		t.Fatal(err)
	}
	notes := drain(ch)
	if len(notes) != 1 || !notes[0].Terminated {
		t.Fatalf("expected terminating notification, got %+v", notes)
	}
	// Further updates never fire it again.
	insertStock(t, s, "B", 20)
	if fired, _ := m.Poll(); fired != 0 {
		t.Error("terminated CQ fired")
	}
	if err := m.Refresh("short"); !errors.Is(err, ErrTerminated) {
		t.Errorf("refresh terminated err = %v", err)
	}
}

func TestDeletionsMode(t *testing.T) {
	s := newStoreWith(t, map[string]relation.Schema{"stocks": stockSchema()})
	tid := insertStock(t, s, "DEC", 150)
	insertStock(t, s, "QLI", 145)

	m := NewManager(s)
	defer func() { _ = m.Close() }()
	if _, err := m.Register(Def{
		Name:  "gone",
		Query: "SELECT * FROM stocks WHERE price > 120",
		Mode:  sql.ModeDeletions,
	}); err != nil {
		t.Fatal(err)
	}
	ch, cancel, _ := m.Subscribe("gone", 16)
	defer cancel()

	commit(t, s, func(tx *storage.Tx) error { return tx.Delete("stocks", tid) })
	if _, err := m.Poll(); err != nil {
		t.Fatal(err)
	}
	notes := drain(ch)
	if len(notes) != 1 {
		t.Fatalf("notes = %d", len(notes))
	}
	if notes[0].Deleted.Len() != 1 || notes[0].Inserted != nil {
		t.Errorf("deletions-mode notification = %+v", notes[0])
	}
}

func TestCompleteModeMaintainsFullResult(t *testing.T) {
	s := newStoreWith(t, map[string]relation.Schema{"stocks": stockSchema()})
	insertStock(t, s, "A", 130)
	m := NewManager(s)
	defer func() { _ = m.Close() }()
	if _, err := m.Register(Def{
		Name:  "all",
		Query: "SELECT * FROM stocks WHERE price > 120",
		Mode:  sql.ModeComplete,
	}); err != nil {
		t.Fatal(err)
	}
	ch, cancel, _ := m.Subscribe("all", 16)
	defer cancel()

	insertStock(t, s, "B", 140)
	_, _ = m.Poll()
	insertStock(t, s, "C", 150)
	_, _ = m.Poll()
	notes := drain(ch)
	if len(notes) != 2 {
		t.Fatalf("notes = %d", len(notes))
	}
	if notes[1].Complete.Len() != 3 {
		t.Errorf("complete result = %d rows", notes[1].Complete.Len())
	}
}

func TestGCBoundedBySlowestCQ(t *testing.T) {
	s := newStoreWith(t, map[string]relation.Schema{"stocks": stockSchema()})
	m := NewManager(s)
	defer func() { _ = m.Close() }()
	// Fast CQ refreshes on every update; slow one every 1000 ticks.
	if _, err := m.Register(Def{Name: "fast", Query: "SELECT * FROM stocks WHERE price > 0"}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Register(Def{
		Name:    "slow",
		Query:   "SELECT * FROM stocks WHERE price > 0",
		Trigger: sql.TriggerSpec{Kind: sql.TriggerEvery, Every: 1000},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		insertStock(t, s, "S", float64(i))
		if _, err := m.Poll(); err != nil {
			t.Fatal(err)
		}
	}
	// Delta rows are pinned by the slow CQ's active zone.
	n, _ := s.DeltaLen("stocks")
	if n != 20 {
		t.Errorf("delta rows = %d, want 20 (pinned by slow CQ)", n)
	}
	// Drop the slow CQ: the zone advances to the fast CQ's last exec.
	if err := m.Drop("slow"); err != nil {
		t.Fatal(err)
	}
	insertStock(t, s, "S", 99)
	if _, err := m.Poll(); err != nil {
		t.Fatal(err)
	}
	n, _ = s.DeltaLen("stocks")
	if n != 0 {
		t.Errorf("delta rows after drop+refresh = %d, want 0", n)
	}
}

func TestSubscriberBufferDropsWithoutBlocking(t *testing.T) {
	s := newStoreWith(t, map[string]relation.Schema{"stocks": stockSchema()})
	reg := obs.NewRegistry()
	m := NewManagerConfig(s, Config{Metrics: reg})
	defer func() { _ = m.Close() }()
	if _, err := m.Register(Def{Name: "q", Query: "SELECT * FROM stocks WHERE price > 0"}); err != nil {
		t.Fatal(err)
	}
	ch, cancel, _ := m.Subscribe("q", 1)
	defer cancel()
	for i := 0; i < 5; i++ {
		insertStock(t, s, "S", float64(i+1))
		if _, err := m.Poll(); err != nil {
			t.Fatal(err)
		}
	}
	// Only one buffered; the rest dropped, but Poll never blocked.
	if got := len(drain(ch)); got != 1 {
		t.Errorf("buffered = %d, want 1", got)
	}
	// The drops are counted, not silent: 5 notifications minus the 1
	// buffered.
	if got := reg.Snapshot().Counter("cq.notifications.dropped"); got != 4 {
		t.Errorf("cq.notifications.dropped = %d, want 4", got)
	}
}

func TestManagerDRAMatchesFullBaseline(t *testing.T) {
	build := func(useDRA bool) (*storage.Store, *Manager) {
		s := newStoreWith(t, map[string]relation.Schema{"stocks": stockSchema()})
		m := NewManagerConfig(s, Config{UseDRA: useDRA, AutoGC: true})
		return s, m
	}
	sA, mA := build(true)
	defer func() { _ = mA.Close() }()
	sB, mB := build(false)
	defer func() { _ = mB.Close() }()

	for _, m := range []*Manager{mA, mB} {
		if _, err := m.Register(Def{Name: "q", Query: "SELECT * FROM stocks WHERE price > 50", Mode: sql.ModeComplete}); err != nil {
			t.Fatal(err)
		}
	}
	script := []struct {
		name  string
		price float64
	}{{"A", 60}, {"B", 40}, {"C", 70}, {"D", 55}}
	for _, step := range script {
		for _, s := range []*storage.Store{sA, sB} {
			tx := s.Begin()
			if _, err := tx.Insert("stocks", []relation.Value{relation.Str(step.name), relation.Float(step.price)}); err != nil {
				t.Fatal(err)
			}
			if _, err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := mA.Poll(); err != nil {
			t.Fatal(err)
		}
		if _, err := mB.Poll(); err != nil {
			t.Fatal(err)
		}
		ra, _ := mA.Result("q")
		rb, _ := mB.Result("q")
		if !ra.EqualContents(rb) {
			t.Fatalf("DRA and full managers diverge after %s", step.name)
		}
	}
}

func TestAsyncLoopDeliversNotifications(t *testing.T) {
	s := newStoreWith(t, map[string]relation.Schema{"stocks": stockSchema()})
	m := NewManager(s)
	if _, err := m.Register(Def{Name: "q", Query: "SELECT * FROM stocks WHERE price > 0"}); err != nil {
		t.Fatal(err)
	}
	ch, cancel, _ := m.Subscribe("q", 16)
	defer cancel()
	if err := m.Start(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(time.Millisecond); err == nil {
		t.Error("double Start should fail")
	}
	insertStock(t, s, "A", 10)

	deadline := time.After(2 * time.Second)
	select {
	case n := <-ch:
		if n.Inserted.Len() != 1 {
			t.Errorf("async notification = %+v", n)
		}
	case <-deadline:
		t.Fatal("no notification within deadline")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Channel closed after Close.
	if _, ok := <-ch; ok {
		t.Error("subscriber channel should be closed")
	}
	if _, err := m.Poll(); !errors.Is(err, ErrClosed) {
		t.Errorf("Poll after Close err = %v", err)
	}
}

func TestDropAndNamesAndResultErrors(t *testing.T) {
	s := newStoreWith(t, map[string]relation.Schema{"stocks": stockSchema()})
	m := NewManager(s)
	defer func() { _ = m.Close() }()
	_, _ = m.Register(Def{Name: "b", Query: "SELECT * FROM stocks"})
	_, _ = m.Register(Def{Name: "a", Query: "SELECT * FROM stocks"})
	names := m.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
	if err := m.Drop("a"); err != nil {
		t.Fatal(err)
	}
	if err := m.Drop("a"); !errors.Is(err, ErrNoSuchCQ) {
		t.Errorf("double drop err = %v", err)
	}
	if _, err := m.Result("a"); !errors.Is(err, ErrNoSuchCQ) {
		t.Errorf("Result missing err = %v", err)
	}
	if _, _, err := m.Subscribe("a", 1); !errors.Is(err, ErrNoSuchCQ) {
		t.Errorf("Subscribe missing err = %v", err)
	}
	if _, err := m.State("a"); !errors.Is(err, ErrNoSuchCQ) {
		t.Errorf("State missing err = %v", err)
	}
	if err := m.Refresh("a"); !errors.Is(err, ErrNoSuchCQ) {
		t.Errorf("Refresh missing err = %v", err)
	}
}

func TestJoinCQEndToEnd(t *testing.T) {
	tradeSchema := relation.MustSchema(
		relation.Column{Name: "sym", Type: relation.TString},
		relation.Column{Name: "volume", Type: relation.TInt},
	)
	s := newStoreWith(t, map[string]relation.Schema{"stocks": stockSchema(), "trades": tradeSchema})
	insertStock(t, s, "DEC", 150)
	commit(t, s, func(tx *storage.Tx) error {
		_, err := tx.Insert("trades", []relation.Value{relation.Str("DEC"), relation.Int(100)})
		return err
	})

	m := NewManager(s)
	defer func() { _ = m.Close() }()
	initial, err := m.Register(Def{
		Name:  "big_trades",
		Query: "SELECT s.name, t.volume FROM stocks s JOIN trades t ON s.name = t.sym WHERE t.volume > 50",
	})
	if err != nil {
		t.Fatal(err)
	}
	if initial.Len() != 1 {
		t.Fatalf("initial = %d", initial.Len())
	}
	ch, cancel, _ := m.Subscribe("big_trades", 16)
	defer cancel()

	commit(t, s, func(tx *storage.Tx) error {
		_, err := tx.Insert("trades", []relation.Value{relation.Str("DEC"), relation.Int(900)})
		return err
	})
	if _, err := m.Poll(); err != nil {
		t.Fatal(err)
	}
	notes := drain(ch)
	if len(notes) != 1 || notes[0].Inserted.Len() != 1 {
		t.Fatalf("join CQ notes = %+v", notes)
	}
	if got := notes[0].Inserted.At(0).Values[1].AsInt(); got != 900 {
		t.Errorf("joined volume = %d", got)
	}
}

func TestAggregateCQUsesIncrementalMaintenance(t *testing.T) {
	s := newStoreWith(t, map[string]relation.Schema{"accounts": accountSchema()})
	m := NewManager(s)
	defer func() { _ = m.Close() }()
	if _, err := m.Register(Def{
		Name:  "banksum",
		Query: "SELECT SUM(amount) AS total, COUNT(*) AS n FROM accounts",
		Mode:  sql.ModeComplete,
	}); err != nil {
		t.Fatal(err)
	}
	mFull := NewManagerConfig(newStoreWith(t, map[string]relation.Schema{"accounts": accountSchema()}), Config{UseDRA: false})
	defer func() { _ = mFull.Close() }()
	// The maintainer must be installed for this shape.
	m.mu.Lock()
	if m.cqs["banksum"].maint == nil {
		m.mu.Unlock()
		t.Fatal("incremental aggregate maintainer not installed")
	}
	m.mu.Unlock()

	var tids []relation.TID
	for i := 0; i < 10; i++ {
		commit(t, s, func(tx *storage.Tx) error {
			tid, err := tx.Insert("accounts", []relation.Value{relation.Str("x"), relation.Float(float64(100 * (i + 1)))})
			tids = append(tids, tid)
			return err
		})
		if _, err := m.Poll(); err != nil {
			t.Fatal(err)
		}
	}
	commit(t, s, func(tx *storage.Tx) error { return tx.Delete("accounts", tids[0]) })
	commit(t, s, func(tx *storage.Tx) error {
		return tx.Update("accounts", tids[1], []relation.Value{relation.Str("x"), relation.Float(7)})
	})
	if _, err := m.Poll(); err != nil {
		t.Fatal(err)
	}
	res, err := m.Result("banksum")
	if err != nil {
		t.Fatal(err)
	}
	// 100+...+1000 = 5500; -100 (delete) -200+7 (correction) = 5207.
	if got := res.At(0).Values[0].AsFloat(); got != 5207 {
		t.Errorf("sum = %v, want 5207", got)
	}
	if got := res.At(0).Values[1].AsInt(); got != 9 {
		t.Errorf("count = %v, want 9", got)
	}
}

func TestAggregateCQWithHavingFallsBack(t *testing.T) {
	s := newStoreWith(t, map[string]relation.Schema{"accounts": accountSchema()})
	m := NewManager(s)
	defer func() { _ = m.Close() }()
	if _, err := m.Register(Def{
		Name:  "big",
		Query: "SELECT owner, SUM(amount) AS total FROM accounts GROUP BY owner HAVING SUM(amount) > 100",
		Mode:  sql.ModeComplete,
	}); err != nil {
		t.Fatal(err)
	}
	m.mu.Lock()
	if m.cqs["big"].maint != nil {
		m.mu.Unlock()
		t.Fatal("HAVING query must not get a maintainer")
	}
	m.mu.Unlock()
	commit(t, s, func(tx *storage.Tx) error {
		_, err := tx.Insert("accounts", []relation.Value{relation.Str("a"), relation.Float(150)})
		return err
	})
	if _, err := m.Poll(); err != nil {
		t.Fatal(err)
	}
	res, _ := m.Result("big")
	if res.Len() != 1 {
		t.Errorf("HAVING result = %d rows", res.Len())
	}
}

func TestDistinctCQMaintainedIncrementally(t *testing.T) {
	s := newStoreWith(t, map[string]relation.Schema{"stocks": stockSchema()})
	insertStock(t, s, "DEC", 1)
	insertStock(t, s, "DEC", 1)
	m := NewManager(s)
	defer func() { _ = m.Close() }()
	initial, err := m.Register(Def{
		Name:  "names",
		Query: "SELECT DISTINCT name FROM stocks",
		Mode:  sql.ModeComplete,
	})
	if err != nil {
		t.Fatal(err)
	}
	if initial.Len() != 1 {
		t.Fatalf("initial distinct = %d", initial.Len())
	}
	m.mu.Lock()
	if m.cqs["names"].maint == nil {
		m.mu.Unlock()
		t.Fatal("distinct maintainer not installed")
	}
	m.mu.Unlock()

	insertStock(t, s, "IBM", 2)
	if _, err := m.Poll(); err != nil {
		t.Fatal(err)
	}
	res, _ := m.Result("names")
	if res.Len() != 2 {
		t.Errorf("distinct result = %d", res.Len())
	}
}

func TestOrderByLimitCQFallsBackButStaysCorrect(t *testing.T) {
	s := newStoreWith(t, map[string]relation.Schema{"stocks": stockSchema()})
	insertStock(t, s, "A", 10)
	insertStock(t, s, "B", 20)
	m := NewManager(s)
	defer func() { _ = m.Close() }()
	initial, err := m.Register(Def{
		Name:  "top",
		Query: "SELECT name, price FROM stocks ORDER BY price DESC LIMIT 2",
		Mode:  sql.ModeComplete,
	})
	if err != nil {
		t.Fatal(err)
	}
	if initial.Len() != 2 {
		t.Fatalf("initial top-2 = %d", initial.Len())
	}
	insertStock(t, s, "C", 30)
	if _, err := m.Poll(); err != nil {
		t.Fatal(err)
	}
	res, _ := m.Result("top")
	if res.Len() != 2 {
		t.Fatalf("top-2 = %d", res.Len())
	}
	names := map[string]bool{}
	for _, tu := range res.Tuples() {
		names[tu.Values[0].AsString()] = true
	}
	if !names["C"] || !names["B"] || names["A"] {
		t.Errorf("top-2 wrong: %v", names)
	}
}

func TestIncrementalJoinsConfig(t *testing.T) {
	tradeSchema := relation.MustSchema(
		relation.Column{Name: "sym", Type: relation.TString},
		relation.Column{Name: "volume", Type: relation.TInt},
	)
	s := newStoreWith(t, map[string]relation.Schema{"stocks": stockSchema(), "trades": tradeSchema})
	insertStock(t, s, "DEC", 150)
	commit(t, s, func(tx *storage.Tx) error {
		_, err := tx.Insert("trades", []relation.Value{relation.Str("DEC"), relation.Int(100)})
		return err
	})
	m := NewManagerConfig(s, Config{UseDRA: true, AutoGC: true, IncrementalJoins: true})
	defer func() { _ = m.Close() }()
	if _, err := m.Register(Def{
		Name:  "joined",
		Query: "SELECT s.name, t.volume FROM stocks s JOIN trades t ON s.name = t.sym",
		Mode:  sql.ModeComplete,
	}); err != nil {
		t.Fatal(err)
	}
	st, err := m.State("joined")
	if err != nil {
		t.Fatal(err)
	}
	if st.Strategy != dra.StrategyIncremental.String() {
		t.Fatalf("strategy = %q, want incremental (IncrementalJoins alias)", st.Strategy)
	}
	commit(t, s, func(tx *storage.Tx) error {
		_, err := tx.Insert("trades", []relation.Value{relation.Str("DEC"), relation.Int(900)})
		return err
	})
	if _, err := m.Poll(); err != nil {
		t.Fatal(err)
	}
	res, _ := m.Result("joined")
	if res.Len() != 2 {
		t.Errorf("maintained join = %d rows", res.Len())
	}
	// Default config keeps the paper's truth-table path for joins.
	m2 := NewManager(s)
	defer func() { _ = m2.Close() }()
	if _, err := m2.Register(Def{Name: "tt", Query: "SELECT * FROM stocks s JOIN trades t ON s.name = t.sym"}); err != nil {
		t.Fatal(err)
	}
	st2, err := m2.State("tt")
	if err != nil {
		t.Fatal(err)
	}
	if st2.Strategy != dra.StrategyTruthTable.String() {
		t.Fatalf("default strategy = %q, want truth-table", st2.Strategy)
	}
}

// A forced strategy the plan cannot run must fall back to the cost
// model audibly: one log line and one cq.maintainer.fallbacks count,
// never a silent demotion.
func TestStrategyFallbackIsAudible(t *testing.T) {
	s := newStoreWith(t, map[string]relation.Schema{"stocks": stockSchema()})
	insertStock(t, s, "DEC", 150)
	reg := obs.NewRegistry()
	var logged []string
	m := NewManagerConfig(s, Config{
		UseDRA:   true,
		Strategy: dra.StrategyIncremental, // single-table plan: ineligible
		Metrics:  reg,
		Logf: func(format string, args ...any) {
			logged = append(logged, fmt.Sprintf(format, args...))
		},
	})
	defer func() { _ = m.Close() }()
	if _, err := m.Register(Def{Name: "single", Query: "SELECT * FROM stocks WHERE price > 100"}); err != nil {
		t.Fatalf("registration must survive the fallback: %v", err)
	}
	if len(logged) != 1 {
		t.Fatalf("fallback log lines = %d, want 1: %v", len(logged), logged)
	}
	if got := reg.Counter("cq.maintainer.fallbacks").Value(); got != 1 {
		t.Errorf("cq.maintainer.fallbacks = %d, want 1", got)
	}
	st, err := m.State("single")
	if err != nil {
		t.Fatal(err)
	}
	if st.Strategy != dra.StrategyTruthTable.String() {
		t.Errorf("fallback strategy = %q, want truth-table", st.Strategy)
	}
	// The fallback CQ still refreshes correctly.
	insertStock(t, s, "IBM", 175)
	if _, err := m.Poll(); err != nil {
		t.Fatal(err)
	}
	res, _ := m.Result("single")
	if res.Len() != 2 {
		t.Errorf("result = %d rows, want 2", res.Len())
	}
}
