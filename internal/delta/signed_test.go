package delta

import (
	"testing"

	"github.com/diorama/continual/internal/relation"
)

func TestToSignedDecomposesModifications(t *testing.T) {
	d := New(stockSchema())
	_ = d.AppendInsert(1, row(1, "A", 10), 1)
	_ = d.AppendDelete(2, row(2, "B", 20), 2)
	_ = d.AppendModify(3, row(3, "C", 30), row(3, "C", 31), 3)

	s := d.ToSigned()
	if s.Len() != 4 {
		t.Fatalf("signed len = %d, want 4", s.Len())
	}
	pos, neg := 0, 0
	for _, r := range s.Rows {
		if r.Sign > 0 {
			pos++
		} else {
			neg++
		}
	}
	if pos != 2 || neg != 2 {
		t.Errorf("signs = +%d/-%d, want +2/-2", pos, neg)
	}
}

func TestNormalizeCancelsOppositePairs(t *testing.T) {
	s := &Signed{Schema: stockSchema()}
	v := row(1, "A", 10)
	s.Rows = append(s.Rows,
		SignedRow{TID: 1, Values: v, Sign: +1},
		SignedRow{TID: 1, Values: v, Sign: -1},
		SignedRow{TID: 2, Values: row(2, "B", 20), Sign: +1},
	)
	n := s.Normalize()
	if n.Len() != 1 {
		t.Fatalf("Normalize len = %d, want 1", n.Len())
	}
	if n.Rows[0].Values[1].AsString() != "B" || n.Rows[0].Sign != 1 {
		t.Errorf("surviving row wrong: %+v", n.Rows[0])
	}
}

func TestNormalizeKeepsMultiplicity(t *testing.T) {
	s := &Signed{Schema: stockSchema()}
	v := row(1, "A", 10)
	s.Rows = append(s.Rows,
		SignedRow{TID: 1, Values: v, Sign: -1},
		SignedRow{TID: 1, Values: v, Sign: -1},
		SignedRow{TID: 1, Values: v, Sign: +1},
	)
	n := s.Normalize()
	if n.Len() != 1 || n.Rows[0].Sign != -1 {
		t.Fatalf("net count should be -1, got %+v", n.Rows)
	}
}

func TestToDeltaPairsIntoModification(t *testing.T) {
	s := &Signed{Schema: stockSchema()}
	s.Rows = append(s.Rows,
		SignedRow{TID: 5, Values: row(5, "E", 50), Sign: -1},
		SignedRow{TID: 5, Values: row(5, "E", 55), Sign: +1},
		SignedRow{TID: 6, Values: row(6, "F", 60), Sign: +1},
	)
	d := s.ToDelta(9)
	ins, del, mod := d.Counts()
	if ins != 1 || del != 0 || mod != 1 {
		t.Fatalf("Counts = %d/%d/%d, want 1/0/1", ins, del, mod)
	}
	for _, r := range d.Rows() {
		if r.TS != 9 {
			t.Errorf("row ts = %d, want 9", r.TS)
		}
	}
}

func TestToDeltaDropsNoopPairs(t *testing.T) {
	s := &Signed{Schema: stockSchema()}
	v := row(7, "G", 70)
	s.Rows = append(s.Rows,
		SignedRow{TID: 7, Values: v, Sign: -1},
		SignedRow{TID: 7, Values: v, Sign: +1},
	)
	if d := s.ToDelta(1); d.Len() != 0 {
		t.Errorf("no-op pair should vanish, got %d rows", d.Len())
	}
}

func TestApplySignedMaintainsResult(t *testing.T) {
	res := relation.New(stockSchema())
	_ = res.Insert(relation.Tuple{TID: 1, Values: row(1, "A", 10)})
	_ = res.Insert(relation.Tuple{TID: 2, Values: row(2, "B", 20)})

	s := &Signed{Schema: stockSchema()}
	s.Rows = append(s.Rows,
		SignedRow{TID: 1, Values: row(1, "A", 10), Sign: -1}, // remove A
		SignedRow{TID: 3, Values: row(3, "C", 30), Sign: +1}, // add C
		SignedRow{TID: 2, Values: row(2, "B", 25), Sign: +1}, // replace B
	)
	ApplySigned(res, s)
	if res.Len() != 2 || res.Has(1) {
		t.Fatalf("ApplySigned result wrong:\n%s", res)
	}
	b, _ := res.Lookup(2)
	if b.Values[2].AsFloat() != 25 {
		t.Error("replacement did not take")
	}
	if !res.Has(3) {
		t.Error("insert did not take")
	}
}

func TestSignedRoundTripThroughDelta(t *testing.T) {
	d := New(stockSchema())
	_ = d.AppendInsert(1, row(1, "A", 10), 1)
	_ = d.AppendModify(2, row(2, "B", 20), row(2, "B", 21), 2)
	_ = d.AppendDelete(3, row(3, "C", 30), 3)

	rt := d.ToSigned().ToDelta(5)
	ins, del, mod := rt.Counts()
	if ins != 1 || del != 1 || mod != 1 {
		t.Fatalf("round trip counts = %d/%d/%d", ins, del, mod)
	}
}

func TestInsertedDeletedRelations(t *testing.T) {
	d := New(stockSchema())
	_ = d.AppendInsert(1, row(1, "A", 10), 1)
	_ = d.AppendModify(2, row(2, "B", 20), row(2, "B", 21), 2)
	s := d.ToSigned()
	ins := s.InsertedRelation()
	del := s.DeletedRelation()
	if ins.Len() != 2 || del.Len() != 1 {
		t.Fatalf("inserted=%d deleted=%d, want 2/1", ins.Len(), del.Len())
	}
}

// ToDeltaNetted edge cases. The netted fast path assumes each tid
// appears as an adjacent run of at most one -1 row then at most one +1
// row — the shape the engine's netting emits — and must agree with the
// general ToDelta on every input of that shape.

func TestToDeltaNettedEmptyWindow(t *testing.T) {
	s := &Signed{Schema: stockSchema()}
	d := s.ToDeltaNetted(3)
	if d.Len() != 0 {
		t.Fatalf("empty window produced %d rows", d.Len())
	}
	if got := d.Schema(); !got.TypesEqual(stockSchema()) {
		t.Fatalf("empty conversion lost the schema: %v", got)
	}
}

// TestToDeltaNettedCancellingPair: a -1/+1 run with identical values is
// a refresh that re-derived the same tuple — it must vanish rather than
// surface as a no-op modification (a downstream cascade would otherwise
// commit it, tick the clock, and wake its readers for nothing).
func TestToDeltaNettedCancellingPair(t *testing.T) {
	s := &Signed{Schema: stockSchema()}
	v := row(7, "G", 70)
	s.Rows = append(s.Rows,
		SignedRow{TID: 7, Values: v, Sign: -1},
		SignedRow{TID: 7, Values: v, Sign: +1},
	)
	if d := s.ToDeltaNetted(1); d.Len() != 0 {
		t.Fatalf("cancelling pair should vanish, got %d rows", d.Len())
	}
	// Fully-cancelling window: every tid a no-op pair.
	s.Rows = append(s.Rows,
		SignedRow{TID: 8, Values: row(8, "H", 80), Sign: -1},
		SignedRow{TID: 8, Values: row(8, "H", 80), Sign: +1},
	)
	if d := s.ToDeltaNetted(1); d.Len() != 0 {
		t.Fatalf("fully-cancelling window should vanish, got %d rows", d.Len())
	}
}

func TestToDeltaNettedPairsAndSingles(t *testing.T) {
	s := &Signed{Schema: stockSchema()}
	s.Rows = append(s.Rows,
		SignedRow{TID: 1, Values: row(1, "A", 10), Sign: -1}, // lone delete
		SignedRow{TID: 2, Values: row(2, "B", 20), Sign: -1}, // modify pair...
		SignedRow{TID: 2, Values: row(2, "B", 25), Sign: +1},
		SignedRow{TID: 3, Values: row(3, "C", 30), Sign: +1}, // lone insert
	)
	d := s.ToDeltaNetted(4)
	ins, del, mod := d.Counts()
	if ins != 1 || del != 1 || mod != 1 {
		t.Fatalf("Counts = %d/%d/%d, want 1/1/1", ins, del, mod)
	}
	for _, r := range d.Rows() {
		if r.TS != 4 {
			t.Errorf("row ts = %d, want 4", r.TS)
		}
	}
	// The netted fast path and the general pairing must agree.
	if want := s.ToDelta(4); !relEq(d, want) {
		t.Fatalf("netted %v != general %v", d.Rows(), want.Rows())
	}
}

// TestToDeltaNettedDuplicateTIDResubmission: a tid resubmitted as two
// non-adjacent +1 runs (a delete-then-reinsert split across the window
// by an interleaved tid) is outside the netted contract for PAIRING,
// but every row must still be preserved — the conversion may emit two
// rows for the tid, never drop one.
func TestToDeltaNettedDuplicateTIDResubmission(t *testing.T) {
	s := &Signed{Schema: stockSchema()}
	s.Rows = append(s.Rows,
		SignedRow{TID: 5, Values: row(5, "E", 50), Sign: -1},
		SignedRow{TID: 9, Values: row(9, "I", 90), Sign: +1}, // interleaver
		SignedRow{TID: 5, Values: row(5, "E", 55), Sign: +1}, // resubmission
	)
	d := s.ToDeltaNetted(2)
	if d.Len() != 3 {
		t.Fatalf("resubmission dropped rows: %v", d.Rows())
	}
	var sawDel, sawIns bool
	for _, r := range d.Rows() {
		if r.TID == 5 && r.Kind() == Delete {
			sawDel = true
		}
		if r.TID == 5 && r.Kind() == Insert && r.New[2].AsFloat() == 55 {
			sawIns = true
		}
	}
	if !sawDel || !sawIns {
		t.Fatalf("resubmitted tid lost a half: %v", d.Rows())
	}
	// Adjacent duplicate +1 runs for one tid: the second must survive as
	// its own insert, not be swallowed by the first pairing.
	s2 := &Signed{Schema: stockSchema()}
	s2.Rows = append(s2.Rows,
		SignedRow{TID: 6, Values: row(6, "F", 60), Sign: +1},
		SignedRow{TID: 6, Values: row(6, "F", 65), Sign: +1},
	)
	d2 := s2.ToDeltaNetted(2)
	if d2.Len() != 2 {
		t.Fatalf("duplicate +1 resubmission collapsed: %v", d2.Rows())
	}
}

// relEq compares two deltas row-by-row ignoring order.
func relEq(a, b *Delta) bool {
	if a.Len() != b.Len() {
		return false
	}
	used := make([]bool, b.Len())
	for _, ra := range a.Rows() {
		found := false
		for j, rb := range b.Rows() {
			if used[j] || ra.TID != rb.TID || ra.Kind() != rb.Kind() || ra.TS != rb.TS {
				continue
			}
			used[j] = true
			found = true
			break
		}
		if !found {
			return false
		}
	}
	return true
}
