// Package baseline implements the two comparison systems the paper
// positions DRA against:
//
//   - Full: complete re-evaluation ("recompute the query from scratch",
//     Section 4.2) — re-run the query over the current base data on every
//     refresh and diff against the previous result;
//   - AppendOnly: continuous queries in the style of Terry et al.
//     (Section 2), which incrementally evaluate the query over appended
//     tuples only. The approach is correct on append-only streams but, as
//     the paper stresses, "the limitation of database updates to
//     append-only, disallowing deletions and modifications" makes it
//     return stale results under general updates — deleted tuples linger
//     and modifications are missed. Experiment E11 demonstrates exactly
//     this divergence.
package baseline

import (
	"fmt"

	"github.com/diorama/continual/internal/algebra"
	"github.com/diorama/continual/internal/delta"
	"github.com/diorama/continual/internal/dra"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/vclock"
)

// Full is the complete re-evaluation processor.
type Full struct {
	plan   algebra.Plan
	result *relation.Relation
}

// NewFull runs the initial execution and returns the processor.
func NewFull(plan algebra.Plan, src algebra.Source) (*Full, error) {
	initial, err := dra.InitialResult(plan, src)
	if err != nil {
		return nil, fmt.Errorf("baseline full: %w", err)
	}
	return &Full{plan: plan, result: initial}, nil
}

// Step re-evaluates from scratch against the current source and returns
// the change from the previous result.
func (f *Full) Step(post algebra.Source, ts vclock.Timestamp) (*delta.Delta, error) {
	res, err := dra.FullReevaluate(f.plan, post, f.result, ts)
	if err != nil {
		return nil, err
	}
	f.result = res.ApplyTo(f.result)
	return res.Delta, nil
}

// Result returns the current maintained result.
func (f *Full) Result() *relation.Relation { return f.result }

// AppendOnly is the Terry-style continuous query processor: each step
// consumes only the *insertions* of the update stream, joins them against
// the base state, and appends the matches to the running result. It never
// removes or revises result tuples.
type AppendOnly struct {
	plan   algebra.Plan
	engine *dra.Engine
	result *relation.Relation
}

// NewAppendOnly runs the initial execution and returns the processor.
func NewAppendOnly(plan algebra.Plan, src algebra.Source) (*AppendOnly, error) {
	initial, err := dra.InitialResult(plan, src)
	if err != nil {
		return nil, fmt.Errorf("baseline append-only: %w", err)
	}
	return &AppendOnly{plan: plan, engine: dra.NewEngine(), result: initial}, nil
}

// Step consumes the update windows. Deletion and modification rows are
// dropped on the floor — the defining restriction of the append-only
// model. pre is the base state as of the previous step (partner operands
// for join terms).
func (a *AppendOnly) Step(deltas map[string]*delta.Delta, pre, post algebra.Source, ts vclock.Timestamp) (*relation.Relation, error) {
	insertOnly := make(map[string]*delta.Delta, len(deltas))
	for table, d := range deltas {
		filtered := delta.New(d.Schema())
		for _, r := range d.Rows() {
			if r.Kind() == delta.Insert {
				if err := filtered.Append(r); err != nil {
					return nil, fmt.Errorf("baseline append-only: %w", err)
				}
			}
		}
		insertOnly[table] = filtered
	}
	ctx := &dra.Context{Pre: pre, Post: post, Deltas: insertOnly, Prev: a.result}
	res, err := a.engine.Reevaluate(a.plan, ctx, ts)
	if err != nil {
		return nil, err
	}
	// Append-only result maintenance: add new matches, never remove.
	added := relation.New(a.result.Schema())
	for _, t := range res.Inserted().Tuples() {
		if !a.result.Has(t.TID) {
			if err := a.result.Insert(t.Clone()); err != nil {
				return nil, err
			}
			_ = added.Insert(t.Clone())
		}
	}
	return added, nil
}

// Result returns the running (possibly stale) result.
func (a *AppendOnly) Result() *relation.Relation { return a.result }
