package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/diorama/continual/internal/cq"
	"github.com/diorama/continual/internal/obs"
	"github.com/diorama/continual/internal/storage"
	"github.com/diorama/continual/internal/vclock"
	"github.com/diorama/continual/internal/workload"
)

// E18 measures push-based refresh against the poll loop it retires from
// the hot path. The paper evaluates trigger conditions periodically, so
// commit-to-notification latency under polling is bounded below by the
// poll interval regardless of refresh cost; the push router routes each
// committed delta straight to the affected CQs, so latency collapses to
// the refresh cost itself. The experiment runs the E15 population (100
// CQs over 4 shared tables) in both modes under two arrival processes —
// a steady trickle, where every commit stands alone, and bursts, where
// the router's coalescing merges back-to-back commits into one refresh.
//
// Columns: commits issued, latency samples collected (one per witnessed
// commit), p50/p99 commit-to-notification latency, and refreshes per
// routed commit — the coalescing measure: 1.0 means one refresh per
// commit per affected CQ (no merging), below 1 means bursts were
// coalesced; the poll loop amortizes the same way by construction, but
// pays for it with interval-bound latency.
func E18(scale Scale) (*Table, error) {
	const (
		nTables  = 4
		nCQs     = 100
		nCommits = 40
		pollTick = 50 * time.Millisecond
	)
	// Per-commit batches stay small relative to the base: E18 measures
	// pipeline latency, not refresh cost (E15/E16 own that), and an
	// arrival rate beyond one core's refresh service rate would measure
	// saturation queueing in both modes instead.
	batch := scale.BaseRows / 1000
	if batch < 5 {
		batch = 5
	}

	t := &Table{
		ID:    "E18",
		Title: "push vs poll: commit-to-notification latency and coalescing",
		Note: fmt.Sprintf("%d CQs over %d tables, %d commits of %d updates, poll interval %s, seed %d rows/table, host cores %d",
			nCQs, nTables, nCommits, batch, pollTick, scale.BaseRows/nTables, runtime.NumCPU()),
		Header: []string{"mode", "arrivals", "commits", "samples", "p50 ms", "p99 ms", "refr/commit"},
	}

	phases := []struct {
		name   string
		pacing workload.Pacing
	}{
		// Gaps are chosen coprime to the poll tick so arrivals sweep the
		// tick phase instead of aliasing onto it (a burst gap that is a
		// multiple of the interval phase-locks bursts to the ticks and
		// flatters the poll baseline).
		{"steady", workload.Steady(13 * time.Millisecond)},
		{"bursty", workload.Bursty(10, 130*time.Millisecond)},
	}
	for _, mode := range []string{"poll", "push"} {
		for _, ph := range phases {
			row, err := e18Run(scale, mode, ph.name, ph.pacing, nTables, nCQs, nCommits, batch, pollTick)
			if err != nil {
				return nil, fmt.Errorf("e18 %s/%s: %w", mode, ph.name, err)
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// e18Run builds a fresh world and measures one (mode, arrival process)
// configuration.
func e18Run(scale Scale, mode, phase string, pacing workload.Pacing, nTables, nCQs, nCommits, batch int, pollTick time.Duration) ([]string, error) {
	reg := obs.NewRegistry()
	store := storage.NewStore()
	store.Instrument(reg)
	tableName := func(i int) string { return fmt.Sprintf("stocks%d", i%nTables) }
	gens := make([]*workload.Stocks, nTables)
	for i := 0; i < nTables; i++ {
		if err := store.CreateTable(tableName(i), workload.StockSchema()); err != nil {
			return nil, err
		}
		gens[i] = workload.NewStocks(store, tableName(i), int64(1+i), workload.DefaultMix)
		if err := gens[i].Seed(scale.BaseRows / nTables); err != nil {
			return nil, err
		}
	}

	mgr := cq.NewManagerConfig(store, cq.Config{
		UseDRA:  true,
		AutoGC:  true,
		Metrics: reg,
		Push:    mode == "push",
	})
	defer func() { _ = mgr.Close() }()
	for i := 0; i < nCQs; i++ {
		def := cq.Def{
			Name: fmt.Sprintf("cq%d", i),
			Query: fmt.Sprintf("SELECT * FROM %s WHERE price > %d",
				tableName(i), 25*(1+i%4)),
		}
		if i < nTables {
			// One witness per table: a threshold every batch crosses and
			// NotifyEmpty, so each refresh produces a notification the
			// latency probe can anchor on.
			def.Query = fmt.Sprintf("SELECT * FROM %s WHERE price > 1", tableName(i))
			def.NotifyEmpty = true
		}
		if _, err := mgr.Register(def); err != nil {
			return nil, err
		}
	}

	// The latency probe: each commit records its wall-clock instant under
	// its commit timestamp; the witness subscription for that table
	// resolves every recorded commit at or before the notification's
	// ExecTS. Pending commits that a refresh skipped (no matching change)
	// resolve on the next notification that covers them.
	var probeMu sync.Mutex
	sent := make([]map[vclock.Timestamp]time.Time, nTables)
	var lats []time.Duration
	for i := range sent {
		sent[i] = make(map[vclock.Timestamp]time.Time)
	}
	cancels := make([]func(), 0, nTables)
	for i := 0; i < nTables; i++ {
		table := i
		cancel, err := mgr.SubscribeFunc(fmt.Sprintf("cq%d", table), func(n cq.Notification, closed bool) {
			if closed {
				return
			}
			now := time.Now()
			probeMu.Lock()
			for ts, at := range sent[table] {
				if ts <= n.ExecTS {
					lats = append(lats, now.Sub(at))
					delete(sent[table], ts)
				}
			}
			probeMu.Unlock()
		})
		if err != nil {
			return nil, err
		}
		cancels = append(cancels, cancel)
	}
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()

	// Both modes run the poll loop: it IS the baseline in poll mode and
	// the fallback (time triggers, overflow) in push mode.
	if err := mgr.Start(pollTick); err != nil {
		return nil, err
	}

	base := reg.Snapshot().Counter("cq.refreshes")
	err := pacing.Run(nCommits, func(i int) error {
		table := i % nTables
		if err := gens[table].Batch(batch); err != nil {
			return err
		}
		// Single-writer world: the store clock ticked exactly once, so
		// Now() is this commit's timestamp.
		probeMu.Lock()
		sent[table][store.Now()] = time.Now()
		probeMu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Drain in two stages: first wait passively so the tail commits
	// resolve through the same pipeline that served the phase (push
	// dispatches, or the next poll ticks — forcing a poll here would
	// flatter the baseline's tail latency), then force poll rounds for
	// any residue a skipped witness refresh left behind.
	mgr.FlushPush()
	remaining := func() int {
		probeMu.Lock()
		defer probeMu.Unlock()
		n := 0
		for i := range sent {
			n += len(sent[i])
		}
		return n
	}
	deadline := time.Now().Add(4*pollTick + 100*time.Millisecond)
	for time.Now().Before(deadline) && remaining() > 0 {
		time.Sleep(2 * time.Millisecond)
	}
	for i := 0; i < 5 && remaining() > 0; i++ {
		if _, err := mgr.Poll(); err != nil {
			return nil, err
		}
		time.Sleep(5 * time.Millisecond)
	}
	refreshes := reg.Snapshot().Counter("cq.refreshes") - base
	if err := mgr.Close(); err != nil {
		return nil, err
	}

	sortDurations(lats)
	p50, p99 := time.Duration(0), time.Duration(0)
	if len(lats) > 0 {
		p50 = lats[len(lats)*50/100]
		p99 = lats[min(len(lats)-1, len(lats)*99/100)]
	}
	// Each commit touches one table and therefore routes to nCQs/nTables
	// queries; refreshes at or below that product mean the pipeline
	// amortized, below one refresh per routed commit means it coalesced.
	perCommit := float64(refreshes) / float64(nCommits*(nCQs/nTables))
	return []string{
		mode, phase,
		fmt.Sprint(nCommits),
		fmt.Sprint(len(lats)),
		fmt.Sprintf("%.2f", float64(p50.Nanoseconds())/1e6),
		fmt.Sprintf("%.2f", float64(p99.Nanoseconds())/1e6),
		fmt.Sprintf("%.2f", perCommit),
	}, nil
}
