package wal

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"github.com/diorama/continual/internal/delta"
	"github.com/diorama/continual/internal/relation"
)

func testSchema(t testing.TB) relation.Schema {
	t.Helper()
	return relation.MustSchema(
		relation.Column{Name: "name", Type: relation.TString},
		relation.Column{Name: "price", Type: relation.TFloat},
		relation.Column{Name: "qty", Type: relation.TInt},
	)
}

func testRecords(t testing.TB) []*Record {
	t.Helper()
	schema := testSchema(t)
	res := relation.New(relation.MustSchema(relation.Column{Name: "name", Type: relation.TString}))
	if err := res.Insert(relation.Tuple{TID: 7, Values: []relation.Value{relation.Str("DEC")}}); err != nil {
		t.Fatal(err)
	}
	return []*Record{
		{Kind: KindCreateTable, Table: "stocks", Schema: schema},
		{Kind: KindTx, TS: 42, Rows: []TxRow{
			{Table: "stocks", Row: delta.Row{TID: 1, TS: 42, New: []relation.Value{relation.Str("DEC"), relation.Float(99.5), relation.Int(10)}}},
			{Table: "stocks", Row: delta.Row{TID: 2, TS: 42,
				Old: []relation.Value{relation.Str("IBM"), relation.Float(50), relation.Int(3)},
				New: []relation.Value{relation.Str("IBM"), relation.NullValue(), relation.Int(0)}}},
			{Table: "stocks", Row: delta.Row{TID: 3, TS: 42, Old: []relation.Value{relation.Str("HP"), relation.Float(1), relation.Int(1)}}},
		}},
		{Kind: KindCQRegister, CQ: &CQEntry{
			Name: "q1", Query: "SELECT name FROM stocks WHERE price > 100",
			TriggerKind: 3, TriggerUpdates: 1, TriggerBound: 0.25, TriggerOn: "price * qty",
			Mode: 1, StopAfterN: 10, EpsilonMeasure: 2, NotifyEmpty: true,
			Strategy: "incremental", Health: "quarantined", Seq: 4, LastExec: 41, Result: res,
		}},
		{Kind: KindCQRegister, CQ: &CQEntry{Name: "q2", Query: "SELECT * FROM stocks", TriggerKind: 3, Mode: 1}},
		{Kind: KindCQExec, Name: "q1", Seq: 5, ExecTS: 43, Terminated: true, Change: []delta.Row{
			{TID: 9, TS: 43, New: []relation.Value{relation.Str("NEW")}},
			{TID: 7, TS: 43, Old: []relation.Value{relation.Str("DEC")}},
		}},
		{Kind: KindCQExec, Name: "q2", Seq: 1, ExecTS: 44},
		{Kind: KindDropTable, Table: "stocks"},
		{Kind: KindCQDrop, Name: "q1"},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	for _, rec := range testRecords(t) {
		payload, err := encodeRecord(rec)
		if err != nil {
			t.Fatalf("encode kind %d: %v", rec.Kind, err)
		}
		got, err := decodeRecord(payload)
		if err != nil {
			t.Fatalf("decode kind %d: %v", rec.Kind, err)
		}
		if got.Kind != rec.Kind || got.TS != rec.TS || got.Table != rec.Table ||
			got.Name != rec.Name || got.Seq != rec.Seq || got.ExecTS != rec.ExecTS ||
			got.Terminated != rec.Terminated {
			t.Fatalf("kind %d: scalar fields differ: %+v vs %+v", rec.Kind, got, rec)
		}
		if !got.Schema.Equal(rec.Schema) {
			t.Fatalf("kind %d: schema differs", rec.Kind)
		}
		if !reflect.DeepEqual(got.Rows, rec.Rows) {
			t.Fatalf("kind %d: rows differ:\n got %+v\nwant %+v", rec.Kind, got.Rows, rec.Rows)
		}
		if !reflect.DeepEqual(got.Change, rec.Change) {
			t.Fatalf("kind %d: change differs:\n got %+v\nwant %+v", rec.Kind, got.Change, rec.Change)
		}
		if (got.CQ == nil) != (rec.CQ == nil) {
			t.Fatalf("kind %d: cq presence differs", rec.Kind)
		}
		if rec.CQ != nil {
			g, w := *got.CQ, *rec.CQ
			gr, wr := g.Result, w.Result
			g.Result, w.Result = nil, nil
			if !reflect.DeepEqual(g, w) {
				t.Fatalf("kind %d: cq entry differs:\n got %+v\nwant %+v", rec.Kind, g, w)
			}
			if (gr == nil) != (wr == nil) {
				t.Fatalf("kind %d: result presence differs", rec.Kind)
			}
			if wr != nil && !relationEqual(gr, wr) {
				t.Fatalf("kind %d: result relation differs", rec.Kind)
			}
		}
	}
}

func relationEqual(a, b *relation.Relation) bool {
	if !a.Schema().Equal(b.Schema()) || a.Len() != b.Len() {
		return false
	}
	for _, tu := range a.Tuples() {
		other, ok := b.Lookup(tu.TID)
		if !ok || !reflect.DeepEqual(tu.Values, other.Values) {
			return false
		}
	}
	return true
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	payload, err := encodeRecord(&Record{Kind: KindDropTable, Table: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeRecord(append(payload, 0)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing byte: got %v, want ErrCorrupt", err)
	}
}

func TestFrameReaderEndings(t *testing.T) {
	payload, err := encodeRecord(&Record{Kind: KindDropTable, Table: "stocks"})
	if err != nil {
		t.Fatal(err)
	}
	frame := appendFrame(nil, payload)

	// Clean stream of two frames then EOF.
	stream := append(append([]byte{}, frame...), frame...)
	fr := &frameReader{r: bytes.NewReader(stream)}
	for i := 0; i < 2; i++ {
		got, err := fr.next()
		if err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	if _, err := fr.next(); !errors.Is(err, io.EOF) {
		t.Fatalf("clean end: got %v, want EOF", err)
	}

	// Every strict prefix of a frame after a whole frame is torn.
	for cut := 1; cut < len(frame); cut++ {
		stream := append(append([]byte{}, frame...), frame[:cut]...)
		fr := &frameReader{r: bytes.NewReader(stream)}
		if _, err := fr.next(); err != nil {
			t.Fatalf("cut %d: first frame: %v", cut, err)
		}
		if _, err := fr.next(); !errors.Is(err, ErrTorn) {
			t.Fatalf("cut %d: got %v, want ErrTorn", cut, err)
		}
	}

	// A bit flip anywhere in a complete frame is corruption (or, in the
	// length prefix, possibly a torn/oversized read) — never a success.
	for i := 0; i < len(frame); i++ {
		mutated := append([]byte{}, frame...)
		mutated[i] ^= 0x40
		fr := &frameReader{r: bytes.NewReader(mutated)}
		got, err := fr.next()
		if err == nil {
			t.Fatalf("bit flip at %d: decoded %x without error", i, got)
		}
	}
}

// FuzzWALRecord mirrors FuzzCodecRecv for the WAL codec: arbitrary
// bytes — truncations, bit flips, corrupted length fields — must never
// panic, mis-frame, or allocate unboundedly; the reader either yields
// checksum-valid records or stops with a typed error.
func FuzzWALRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3, 4, 5})
	var seedT testing.T
	var stream []byte
	for _, rec := range testRecords(&seedT) {
		payload, err := encodeRecord(rec)
		if err != nil {
			continue
		}
		stream = appendFrame(stream, payload)
	}
	f.Add(stream)
	f.Add(stream[:len(stream)-3])
	flipped := append([]byte{}, stream...)
	flipped[len(flipped)/2] ^= 0x01
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		fr := &frameReader{r: bytes.NewReader(data)}
		for i := 0; i < 64; i++ {
			payload, err := fr.next()
			if err != nil {
				return // EOF, torn, or corrupt — all clean stops
			}
			// A frame that passed its checksum must decode or fail
			// cleanly; decodeRecord must never panic on any payload.
			if _, err := decodeRecord(payload); err != nil {
				return
			}
		}
	})
}
