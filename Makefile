# Development entry points. CI runs the same targets; see
# .github/workflows/ci.yml for the full matrix.

.PHONY: build test race lint chaos bench allocs

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# lint: vet plus the guarded-goroutine check — every goroutine launched
# in internal/cq, internal/push, and internal/guard must name its
# recover boundary with a "// guarded:" annotation.
lint:
	go vet ./...
	./scripts/lint-guarded.sh

# chaos: the robustness suite — fault isolation transcripts, quarantine
# lifecycle and recovery, backpressure, subscribe/drop churn, and
# cascade DAG churn (register/drop INTO pipelines under concurrent
# writes and polls) — under the race detector.
chaos:
	go test -race -count=2 -run 'TestChaos|TestQuarantine|TestBudget|TestBackpressure|TestSubscriber|TestDropRace|TestSubscribeDropChurn|TestManualRefresh|TestHealthCounts|TestTemplateChurnRace|TestTemplateQuarantineIsolation|TestCascadeChurnDAG' ./internal/cq/
	go test -race -count=2 -run 'TestQuarantineSurvivesRecovery' ./internal/durable/
	go test -race -count=2 -run 'TestWatermark|TestSetWatermarks' ./internal/storage/
	go test -race -count=2 -run 'TestSheds|TestGate' ./internal/push/

# allocs: the refresh step's allocation budget — fails when either arm
# of BenchmarkRefreshStep exceeds its committed baseline
# (scripts/allocs-baseline.txt) by more than 20%.
allocs:
	./scripts/check-allocs.sh

# bench: regenerate the committed BENCH_<ID>.json tables at the repo
# root. E16/E18/E19/E22 run at the quick scale; E20 and E21 run at full
# scale because their headline points (100k shared-vs-unshared, 1M
# shared; the paper-scale columnar-vs-row ratios) only exist there.
bench:
	go run ./cmd/cqbench -quick -run E16,E18,E19,E22 -json .
	go run ./cmd/cqbench -run E20,E21 -json .
