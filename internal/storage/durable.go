package storage

import (
	"fmt"
	"sort"

	"github.com/diorama/continual/internal/delta"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/vclock"
	"github.com/diorama/continual/internal/wal"
)

// WALSink receives the durable form of every state change the store
// commits, BEFORE the change is applied in memory (write-ahead order):
// a sink error fails the operation and leaves the store untouched, so
// the store never holds state the log cannot reproduce. *wal.Log
// satisfies this interface directly; internal/durable wraps it to count
// commits for auto-checkpointing.
type WALSink interface {
	AppendTx(ts vclock.Timestamp, rows []wal.TxRow) error
	AppendCreateTable(name string, schema relation.Schema) error
	AppendDropTable(name string) error
}

// SetWALSink attaches a write-ahead sink. Set it AFTER recovery replay
// (replayed changes must not be re-logged) and before the store is
// shared. A nil sink detaches.
func (s *Store) SetWALSink(sink WALSink) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sink = sink
}

// State is a consistent cut of the whole store: the logical clock, the
// tid allocator, and every table's base relation, retained differential
// relation, GC low-water mark and change counter. Change counters are
// part of the cut on purpose: prepared-plan operand caches
// (dra.Context.Versions) revalidate by counter equality, so a restart
// that reset them to zero could produce false hits against cached
// indexes from a previous incarnation.
type State struct {
	TS      vclock.Timestamp
	NextTID uint64
	Tables  []wal.TableState
}

// CheckpointState deep-copies the store state under the store lock and,
// at the same consistent point, runs cut — the caller rotates the WAL
// there, so the returned state plus the replay of segments at or after
// the rotation reproduces the live store exactly.
func (s *Store) CheckpointState(cut func() error) (State, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cut != nil {
		if err := cut(); err != nil {
			return State{}, err
		}
	}
	st := State{TS: s.clock.Now(), NextTID: uint64(s.nextID)}
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	// Deterministic order keeps checkpoint bytes reproducible.
	sort.Strings(names)
	for _, name := range names {
		t := s.tables[name]
		ts := wal.TableState{
			Name:     name,
			Schema:   t.rel.Schema(),
			LowWater: t.lowWater,
			Version:  t.version,
		}
		for _, tu := range t.rel.Tuples() {
			ts.Tuples = append(ts.Tuples, tu.Clone())
		}
		for _, r := range t.dlt.Rows() {
			ts.DeltaRows = append(ts.DeltaRows, cloneRow(r))
		}
		st.Tables = append(st.Tables, ts)
	}
	return st, nil
}

// Restore loads a checkpointed state into an empty store. It refuses a
// non-empty store: recovery always rebuilds from scratch.
func (s *Store) Restore(st State) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.tables) != 0 {
		return fmt.Errorf("storage: restore into non-empty store")
	}
	for _, ts := range st.Tables {
		t := &Table{
			store:    s,
			name:     ts.Name,
			rel:      relation.New(ts.Schema),
			dlt:      delta.New(ts.Schema),
			lowWater: ts.LowWater,
			version:  ts.Version,
		}
		for _, tu := range ts.Tuples {
			if err := t.rel.Insert(tu.Clone()); err != nil {
				return fmt.Errorf("storage: restore %q: %w", ts.Name, err)
			}
		}
		for _, r := range ts.DeltaRows {
			if err := t.dlt.Append(cloneRow(r)); err != nil {
				return fmt.Errorf("storage: restore %q delta: %w", ts.Name, err)
			}
			s.noteDeltaAppendLocked(r)
		}
		s.tables[ts.Name] = t
		if m := s.met; m != nil {
			m.deltaTotal.Add(int64(t.dlt.Len()))
			m.tableGauge(ts.Name).Set(int64(t.dlt.Len()))
		}
	}
	s.clock.AdvanceTo(st.TS)
	if relation.TID(st.NextTID) > s.nextID {
		s.nextID = relation.TID(st.NextTID)
	}
	s.recomputeOverloadLocked()
	if m := s.met; m != nil {
		m.tables.Set(int64(len(s.tables)))
	}
	return nil
}

func cloneRow(r delta.Row) delta.Row {
	r.Old = cloneValues(r.Old)
	r.New = cloneValues(r.New)
	return r
}

// ApplyReplay applies one logged transaction during recovery: the same
// validation and bookkeeping as Commit, but with the logged timestamp
// and rows instead of a fresh tick, and without re-logging. Replay is
// strict — a row that does not apply cleanly means the log and the
// checkpoint disagree, which is corruption, not a crash artifact.
func (s *Store) ApplyReplay(ts vclock.Timestamp, rows []wal.TxRow) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	touched := make(map[*Table]struct{}, 1)
	maxTID := relation.TID(0)
	for _, tr := range rows {
		t, ok := s.tables[tr.Table]
		if !ok {
			return fmt.Errorf("%w: %q in replay", ErrNoSuchTable, tr.Table)
		}
		row := tr.Row
		row.TS = ts
		switch row.Kind() {
		case delta.Insert:
			if err := t.rel.Insert(relation.Tuple{TID: row.TID, Values: cloneValues(row.New)}); err != nil {
				return fmt.Errorf("storage: replay insert %q tid %d: %w", tr.Table, row.TID, err)
			}
		case delta.Delete:
			if err := t.rel.Delete(row.TID); err != nil {
				return fmt.Errorf("storage: replay delete %q tid %d: %w", tr.Table, row.TID, err)
			}
		case delta.Modify:
			if err := t.rel.Update(row.TID, cloneValues(row.New)); err != nil {
				return fmt.Errorf("storage: replay update %q tid %d: %w", tr.Table, row.TID, err)
			}
		}
		if err := t.dlt.Append(row); err != nil {
			return fmt.Errorf("storage: replay delta append %q: %w", tr.Table, err)
		}
		s.noteDeltaAppendLocked(row)
		if row.TID > maxTID {
			maxTID = row.TID
		}
		touched[t] = struct{}{}
	}
	for t := range touched {
		t.version++
		if m := s.met; m != nil {
			m.tableGauge(t.name).Set(int64(t.dlt.Len()))
		}
	}
	if m := s.met; m != nil {
		m.deltaTotal.Add(int64(len(rows)))
	}
	s.clock.AdvanceTo(ts)
	if maxTID+1 > s.nextID {
		s.nextID = maxTID + 1
	}
	s.recomputeOverloadLocked()
	return nil
}
