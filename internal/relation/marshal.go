package relation

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrMarshal reports a malformed encoded value.
var ErrMarshal = errors.New("relation: malformed encoded value")

// MarshalBinary encodes the value compactly: one tag byte (kind, with the
// high bit marking NULL) followed by the payload. encoding/gob picks this
// up automatically, which is how values travel over the remote protocol.
func (v Value) MarshalBinary() ([]byte, error) {
	tag := byte(v.Kind)
	if v.Null {
		tag |= 0x80
		return []byte{tag}, nil
	}
	switch v.Kind {
	case TInt:
		buf := make([]byte, 9)
		buf[0] = tag
		binary.LittleEndian.PutUint64(buf[1:], uint64(v.i))
		return buf, nil
	case TFloat:
		buf := make([]byte, 9)
		buf[0] = tag
		binary.LittleEndian.PutUint64(buf[1:], math.Float64bits(v.f))
		return buf, nil
	case TString:
		buf := make([]byte, 1+len(v.s))
		buf[0] = tag
		copy(buf[1:], v.s)
		return buf, nil
	case TBool:
		b := byte(0)
		if v.b {
			b = 1
		}
		return []byte{tag, b}, nil
	default:
		if v.Kind == 0 {
			// Untyped zero value: encode as untyped NULL.
			return []byte{0x80}, nil
		}
		return nil, fmt.Errorf("relation: cannot marshal kind %d", v.Kind)
	}
}

// UnmarshalBinary decodes a value written by MarshalBinary.
func (v *Value) UnmarshalBinary(data []byte) error {
	if len(data) == 0 {
		return fmt.Errorf("%w: empty", ErrMarshal)
	}
	tag := data[0]
	kind := Type(tag & 0x7f)
	if tag&0x80 != 0 {
		*v = Value{Kind: kind, Null: true}
		return nil
	}
	payload := data[1:]
	switch kind {
	case TInt:
		if len(payload) != 8 {
			return fmt.Errorf("%w: int payload %d bytes", ErrMarshal, len(payload))
		}
		*v = Int(int64(binary.LittleEndian.Uint64(payload)))
	case TFloat:
		if len(payload) != 8 {
			return fmt.Errorf("%w: float payload %d bytes", ErrMarshal, len(payload))
		}
		*v = Float(math.Float64frombits(binary.LittleEndian.Uint64(payload)))
	case TString:
		*v = Str(string(payload))
	case TBool:
		if len(payload) != 1 {
			return fmt.Errorf("%w: bool payload %d bytes", ErrMarshal, len(payload))
		}
		*v = Bool(payload[0] == 1)
	default:
		return fmt.Errorf("%w: kind %d", ErrMarshal, kind)
	}
	return nil
}
