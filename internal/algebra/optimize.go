package algebra

import (
	"github.com/diorama/continual/internal/sql"
)

// Optimize applies the heuristic rewrites that Section 5.2 of the paper
// prescribes for the differential terms ("Select before Join, ...
// cheaper selection predicates before expensive ones"):
//
//  1. selection splitting — conjunctive predicates are split so each
//     conjunct can move independently;
//  2. predicate pushdown — each conjunct sinks to the lowest plan node
//     whose schema covers its columns (in particular below joins);
//  3. conjunct ordering — comparisons against literals are evaluated
//     before more complex conjuncts.
//
// Optimize never changes the result of a plan, only its shape; the
// equivalence is exercised by the property tests.
func Optimize(p Plan) Plan {
	return pushDown(p, nil)
}

// pushDown rewrites the subtree rooted at p, carrying a set of pending
// conjuncts that are waiting to sink as deep as their columns allow.
func pushDown(p Plan, pending []sql.Expr) Plan {
	switch n := p.(type) {
	case *SelectPlan:
		// Absorb this node's conjuncts into the pending set and recurse.
		pending = append(append([]sql.Expr(nil), pending...), SplitConjuncts(n.Pred)...)
		return pushDown(n.Input, pending)

	case *JoinPlan:
		leftSchema := n.Left.Schema()
		rightSchema := n.Right.Schema()
		var toLeft, toRight, stay []sql.Expr
		// The join's own ON conjuncts participate in pushdown too: a
		// one-sided ON conjunct (e.g. a literal filter written in ON)
		// sinks into the corresponding side.
		all := pending
		if n.On != nil {
			all = append(append([]sql.Expr(nil), pending...), SplitConjuncts(n.On)...)
		}
		for _, c := range all {
			switch {
			case coveredBy(c, leftSchema):
				toLeft = append(toLeft, c)
			case coveredBy(c, rightSchema):
				toRight = append(toRight, c)
			default:
				stay = append(stay, c)
			}
		}
		left := pushDown(n.Left, toLeft)
		right := pushDown(n.Right, toRight)
		// Conjuncts spanning both sides stay at the join as its ON
		// predicate (the executor extracts equi keys from them).
		nj, err := NewJoinPlan(left, right, JoinConjuncts(orderConjuncts(stay)))
		if err != nil {
			// Schemas unchanged by pushdown; concat cannot fail here. Keep
			// the original plan on the defensive path.
			return p
		}
		return nj

	case *ProjectPlan:
		// Predicates above a projection reference output columns; sinking
		// them through the rename is out of scope — re-emit above.
		inner := pushDown(n.Input, nil)
		np, err := NewProjectPlan(inner, n.Items)
		if err != nil {
			return wrapPending(p, pending)
		}
		return wrapPending(np, pending)

	case *AggregatePlan:
		inner := pushDown(n.Input, nil)
		na, err := NewAggregatePlan(inner, n.GroupBy, n.Aggs, n.Having)
		if err != nil {
			return wrapPending(p, pending)
		}
		return wrapPending(na, pending)

	case *DistinctPlan:
		// Selection commutes with duplicate elimination.
		inner := pushDown(n.Input, pending)
		return &DistinctPlan{Input: inner}

	case *SortPlan:
		// Selection commutes with ordering.
		inner := pushDown(n.Input, pending)
		return &SortPlan{Input: inner, Keys: n.Keys}

	case *LimitPlan:
		// Predicates must NOT cross a limit (they would change which rows
		// are cut off); re-apply above and optimize below independently.
		inner := pushDown(n.Input, nil)
		return wrapPending(&LimitPlan{Input: inner, N: n.N}, pending)

	case *ScanPlan:
		return wrapPending(n, pending)

	default:
		return wrapPending(p, pending)
	}
}

// wrapPending re-applies pending conjuncts above a node, cheapest first.
func wrapPending(p Plan, pending []sql.Expr) Plan {
	ordered := orderConjuncts(pending)
	if len(ordered) == 0 {
		return p
	}
	return &SelectPlan{Input: p, Pred: JoinConjuncts(ordered)}
}

// coveredBy reports whether every column of the expression resolves in
// the schema.
func coveredBy(e sql.Expr, s interface {
	ColIndex(string) (int, bool)
}) bool {
	for _, col := range ColumnsOf(e) {
		if _, ok := s.ColIndex(col); !ok {
			return false
		}
	}
	return true
}

// orderConjuncts sorts conjuncts by estimated evaluation cost: literal
// comparisons first, then everything else, preserving relative order
// within each class ("cheaper selection predicate before expensive
// ones").
func orderConjuncts(es []sql.Expr) []sql.Expr {
	if len(es) < 2 {
		return es
	}
	var cheap, costly []sql.Expr
	for _, e := range es {
		if isLiteralComparison(e) {
			cheap = append(cheap, e)
		} else {
			costly = append(costly, e)
		}
	}
	return append(cheap, costly...)
}

// isLiteralComparison recognizes `col op literal` / `literal op col`.
func isLiteralComparison(e sql.Expr) bool {
	be, ok := e.(*sql.BinaryExpr)
	if !ok {
		return false
	}
	switch be.Op {
	case "=", "!=", "<", "<=", ">", ">=":
	default:
		return false
	}
	_, lCol := be.L.(*sql.ColumnRef)
	_, rLit := be.R.(*sql.Literal)
	if lCol && rLit {
		return true
	}
	_, lLit := be.L.(*sql.Literal)
	_, rCol := be.R.(*sql.ColumnRef)
	return lLit && rCol
}
