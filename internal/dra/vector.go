package dra

import (
	"errors"
	"fmt"

	"github.com/diorama/continual/internal/algebra"
	"github.com/diorama/continual/internal/batch"
	"github.com/diorama/continual/internal/delta"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/vclock"
)

// errVecFallback aborts a vectorized evaluation when some value cannot
// live in a typed column (kind drift, untyped NULLs outside the
// projection-NULL case). It never escapes the engine: evaluate catches
// it and re-runs the refresh on the row path. Falling back mid-tree is
// always safe because the vectorized path defers every operand-cache
// advance until the whole tree has evaluated — no replica has been
// mutated when the sentinel surfaces.
var errVecFallback = errors.New("dra: unrepresentable in columnar form")

// pendingAdvance is one join group's deferred cache advance: the
// operand delta batches are folded into the replicas only after the
// whole refresh succeeds, so a row-path fallback re-runs against
// untouched caches.
type pendingAdvance struct {
	cache   *opCache
	batches []*batch.Batch
}

// vecEval is the per-refresh state of the columnar evaluator. Every
// pooled batch it creates lands in owned and returns to the arena in
// one sweep at the end — cross-refresh buffer reuse through the pool is
// where the allocation win comes from.
type vecEval struct {
	e      *Engine
	ctx    *Context
	execTS vclock.Timestamp
	st     *Stats
	owned  []*batch.Batch
	adv    []pendingAdvance
}

// vecRelevant is the relevance probe of Section 5.2 over the columnar
// kernels: every maximal join-free subtree's filtered window evaluates
// batch-at-a-time with pooled buffers, replacing the row path's
// per-tuple predicate loop. Operand subtrees are join-free by
// construction, so the probe can never queue a cache advance. ok=false
// means some value was unrepresentable in typed columns; the caller
// re-probes on the row path.
func (e *Engine) vecRelevant(root *compiledNode, ctx *Context) (relevant, ok bool, err error) {
	var scratch Stats
	v := &vecEval{e: e, ctx: ctx, st: &scratch}
	defer v.releaseOwned()
	for _, op := range root.operands(nil) {
		b, err := v.nodeBatch(op)
		if err != nil {
			if errors.Is(err, errVecFallback) {
				return false, false, nil
			}
			return false, false, err
		}
		if b.Len() > 0 {
			return true, true, nil
		}
	}
	return false, true, nil
}

// vecEvaluate runs the truth-table differential evaluation over typed
// columnar batches. ok=false means the refresh must re-run on the row
// path (no state was mutated); the error return is a genuine evaluation
// error, identical to what the row path would raise.
func (e *Engine) vecEvaluate(root *compiledNode, ctx *Context, execTS vclock.Timestamp, st *Stats) (*delta.Signed, bool, error) {
	var vst Stats
	v := &vecEval{e: e, ctx: ctx, execTS: execTS, st: &vst}
	out, err := v.nodeBatch(root)
	if err != nil {
		v.releaseOwned()
		if errors.Is(err, errVecFallback) {
			return nil, false, nil
		}
		return nil, false, err
	}
	net := v.netBatch(out)
	v.applyAdvances()
	v.releaseOwned()
	st.add(vst)
	return net, true, nil
}

// add accumulates another evaluation's work counts (the vectorized path
// runs on a scratch Stats so a fallback discards its partial counts
// instead of double-counting with the row path's).
func (st *Stats) add(o Stats) {
	st.Terms += o.Terms
	st.DeltaRows += o.DeltaRows
	st.PreTuplesScanned += o.PreTuplesScanned
	st.IndexCacheHits += o.IndexCacheHits
	st.IndexCacheMisses += o.IndexCacheMisses
}

func (v *vecEval) own(b *batch.Batch) *batch.Batch {
	v.owned = append(v.owned, b)
	return b
}

func (v *vecEval) releaseOwned() {
	for _, b := range v.owned {
		// released: evaluation is over and netBatch materialized the net
		// result into owned memory; no owned batch is referenced again.
		v.e.pool.Put(b)
	}
	v.owned = nil
}

// applyAdvances folds the refresh's operand deltas into the prepared
// caches, exactly as the row path's joinDelta does inline. ToSigned
// materializes owned memory, so the replicas stay valid after the
// source batches return to the pool.
func (v *vecEval) applyAdvances() {
	for _, pa := range v.adv {
		signed := make([]*delta.Signed, len(pa.batches))
		for i, b := range pa.batches {
			if b.Len() > 0 {
				signed[i] = b.ToSigned()
			}
		}
		pa.cache.advance(v.ctx, v.execTS, signed)
	}
	v.adv = nil
}

// nodeBatch is the columnar mirror of signedDelta: the signed change of
// a compiled node's output as a batch.
func (v *vecEval) nodeBatch(n *compiledNode) (*batch.Batch, error) {
	switch {
	case n.scan != nil:
		return v.scanBatch(n.scan)
	case n.sel != nil:
		in, err := v.nodeBatch(n.sel.input)
		if err != nil {
			return nil, err
		}
		return v.filterBatch(in, n.sel.pred)
	case n.proj != nil:
		in, err := v.nodeBatch(n.proj.input)
		if err != nil {
			return nil, err
		}
		return v.projectBatch(in, n.proj.items, n.proj.schema)
	case n.join != nil:
		return v.joinBatch(n.join)
	default:
		return nil, fmt.Errorf("%w: %T", ErrUnsupportedPlan, n.plan)
	}
}

// scanBatch produces the table's differential window as a signed batch
// under the scan's qualified schema. When the context carries a
// prebuilt columnar window (built once at the storage boundary and
// shared by every CQ over the round) and no further compaction would
// apply, the scan is a zero-copy view rebadge; otherwise it converts
// the row window into a pooled batch, falling back on unrepresentable
// values.
func (v *vecEval) scanBatch(n *algebra.ScanPlan) (*batch.Batch, error) {
	e := v.e
	if pre := v.ctx.Batches[n.Table]; pre != nil && (!e.CompactDeltas || v.ctx.Compacted) {
		vw := v.own(pre.View(n.Schema()))
		v.st.DeltaRows += vw.Len()
		return vw, nil
	}
	d := v.ctx.Deltas[n.Table]
	if d != nil && e.CompactDeltas && !v.ctx.Compacted {
		d = d.Compact()
	}
	size := 0
	if d != nil {
		size = d.Len() * 2
	}
	out := v.own(e.pool.Get(n.Schema(), size))
	if d != nil {
		for _, r := range d.Rows() {
			if !out.AppendChange(r) {
				return nil, errVecFallback
			}
		}
	}
	v.st.DeltaRows += out.Len()
	return out, nil
}

// filterBatch applies a selection predicate column-at-a-time, producing
// selection indices instead of row copies: an all-pass predicate is a
// pass-through, a partial pass compacts the batch in place when it owns
// its buffers, and only shared inputs (window views) pay a copy of the
// surviving rows.
func (v *vecEval) filterBatch(in *batch.Batch, pred algebra.CompiledExpr) (*batch.Batch, error) {
	if in.Len() == 0 {
		return in, nil
	}
	pool := v.e.pool
	sel, err := algebra.SelectBatch(pred, in, pool.GetIdx(in.Len()))
	if err != nil {
		// released: selection aborted; the indices never escaped.
		pool.PutIdx(sel)
		return nil, fmt.Errorf("dra: select: %w", err)
	}
	switch {
	case len(sel) == in.Len():
		// released: all-pass predicate, input flows through unchanged.
		pool.PutIdx(sel)
		return in, nil
	case in.CanGather():
		in.Gather(sel)
		// released: gather compacted the batch in place; indices consumed.
		pool.PutIdx(sel)
		return in, nil
	}
	out := v.own(pool.Get(in.Schema, len(sel)))
	for _, i := range sel {
		out.AppendFrom(in, int(i))
	}
	// released: surviving rows copied into out; indices consumed.
	pool.PutIdx(sel)
	return out, nil
}

// projectBatch evaluates projection as column permutation: items that
// are bare column references of the output type move by slice reuse
// (zero copies; the input slot is hollowed out), and only computed
// items run a row loop. The row path emits untyped NULLs from
// NULL-propagating expressions; the typed output column adopts them as
// typed NULLs, which Equal and the value hash treat identically, so the
// transcripts stay equal.
func (v *vecEval) projectBatch(in *batch.Batch, items []algebra.CompiledExpr, schema relation.Schema) (*batch.Batch, error) {
	out := v.own(v.e.pool.Get(schema, in.Len()))
	width := in.Schema.Len()
	moved := make([]int, len(items)) // source column of a pass-through item; -1 = computed
	refs := make([]int, width)
	for i, ce := range items {
		moved[i] = -1
		if ci, ok := algebra.ColumnIndexOf(ce); ok && schema.Col(i).Type == in.Cols[ci].Type {
			moved[i] = ci
			refs[ci]++
		}
	}
	// Computed items first: they read full input rows, which the column
	// moves below would hollow out.
	var scratch []relation.Value
	n := in.Len()
	for i, ce := range items {
		if moved[i] >= 0 {
			continue
		}
		if scratch == nil {
			scratch = make([]relation.Value, width)
		}
		colType := schema.Col(i).Type
		for r := 0; r < n; r++ {
			in.ReadRow(r, scratch)
			val, err := ce.Eval(relation.Tuple{TID: in.TIDs[r], Values: scratch})
			if err != nil {
				return nil, fmt.Errorf("dra: project: %w", err)
			}
			if val.IsNull() && val.Kind != colType {
				val = relation.TypedNull(colType)
			}
			if !out.AppendColValue(i, val) {
				return nil, errVecFallback
			}
		}
	}
	for i := range items {
		ci := moved[i]
		if ci < 0 {
			continue
		}
		if refs[ci] == 1 {
			out.Cols[i] = in.StealCol(ci)
		} else {
			// The column appears more than once in the projection: every
			// use takes a deep copy so no two output columns alias.
			out.Cols[i] = batch.CloneCol(in.Cols[ci])
		}
	}
	out.CopyRowsFrom(in)
	return out, nil
}

// vecInput is one operand's relation within a truth-table term: a
// signed batch to enumerate, or a cached pre-state replica whose
// maintained hash indexes the hash step probes directly.
type vecInput struct {
	b   *batch.Batch
	ent *cachedOperand
}

func (t *vecInput) length() int {
	if t.ent != nil {
		return t.ent.rel.Len()
	}
	return t.b.Len()
}

// enumerable returns the input as a batch, converting a cached replica
// on first use (seed and nested-loop steps enumerate; hash steps probe
// the replica's index and never call this).
func (t *vecInput) enumerable(v *vecEval) (*batch.Batch, error) {
	if t.b == nil {
		fb, ok := batch.FromSigned(v.e.pool, t.ent.signedView())
		if !ok {
			return nil, errVecFallback
		}
		t.b = v.own(fb)
	}
	return t.b, nil
}

// joinBatch computes the signed delta of a join group by truth-table
// expansion over columnar batches. Cache advances are recorded, not
// applied — see pendingAdvance.
func (v *vecEval) joinBatch(cj *compiledJoin) (*batch.Batch, error) {
	e := v.e
	nOps := len(cj.ops)
	deltas := make([]*batch.Batch, nOps)
	var changed []int
	for i := 0; i < nOps; i++ {
		d, err := v.nodeBatch(cj.opNodes[i])
		if err != nil {
			return nil, err
		}
		deltas[i] = d
		if d.Len() > 0 {
			changed = append(changed, i)
		}
	}
	if len(changed) == 0 {
		if cj.cache != nil {
			v.adv = append(v.adv, pendingAdvance{cache: cj.cache, batches: deltas})
		}
		return v.own(e.pool.Get(cj.outSchema, 0)), nil
	}
	if len(changed) > maxChangedOperands {
		// Complete re-evaluation, as on the row path; no advance is
		// recorded, the cache revalidates or rebuilds next refresh.
		s, err := PropagateSigned(cj.plan, v.ctx.Pre, v.ctx.Post)
		if err != nil {
			return nil, err
		}
		pb, ok := batch.FromSigned(e.pool, s)
		if !ok {
			return nil, errVecFallback
		}
		return v.own(pb), nil
	}

	// Lazily materialized pre-states, served from the cache when one is
	// attached. cache.pre only normalizes entries to the window start
	// (rebuild or version retag), so running it before a possible
	// fallback is safe — only advance moves state past LastTS.
	pres := make([]*vecInput, nOps)
	preOf := func(i int) (*vecInput, error) {
		if pres[i] == nil {
			ti, err := v.operandPreVec(cj, i)
			if err != nil {
				return nil, err
			}
			pres[i] = ti
		}
		return pres[i], nil
	}

	out := v.own(e.pool.Get(cj.outSchema, 0))
	dIn := make([]*vecInput, nOps)
	for i := range deltas {
		dIn[i] = &vecInput{b: deltas[i]}
	}
	term := make([]*vecInput, nOps)
	isDelta := make([]bool, nOps)
	k := len(changed)
	for mask := 1; mask < 1<<k; mask++ {
		empty := false
		for i := 0; i < nOps; i++ {
			substituted := false
			for b, ci := range changed {
				if ci == i && mask&(1<<b) != 0 {
					substituted = true
					break
				}
			}
			if substituted {
				term[i] = dIn[i]
				isDelta[i] = true
			} else {
				p, err := preOf(i)
				if err != nil {
					return nil, err
				}
				term[i] = p
				isDelta[i] = false
			}
			if term[i].length() == 0 {
				empty = true
				break
			}
		}
		if empty {
			continue
		}
		v.st.Terms++
		if err := v.evalTermVec(cj, term, isDelta, out); err != nil {
			return nil, err
		}
	}
	if cj.cache != nil {
		v.adv = append(v.adv, pendingAdvance{cache: cj.cache, batches: deltas})
	}
	return out, nil
}

// operandPreVec materializes operand i's pre-state: the live cache
// entry when the join is prepared, a pooled batch executed from the
// last-execution snapshot otherwise.
func (v *vecEval) operandPreVec(cj *compiledJoin, i int) (*vecInput, error) {
	if cj.cache != nil {
		ent, err := cj.cache.pre(i, v.ctx, v.st)
		if err != nil {
			return nil, err
		}
		return &vecInput{ent: ent}, nil
	}
	ex := algebra.NewExecutor(v.ctx.Pre)
	ex.UseHashJoin = v.e.UseHashJoin
	rel, err := ex.Execute(cj.ops[i].plan)
	if err != nil {
		return nil, fmt.Errorf("dra: operand pre-state: %w", err)
	}
	v.st.PreTuplesScanned += rel.Len()
	pb := v.own(v.e.pool.Get(rel.Schema(), rel.Len()))
	for _, t := range rel.Tuples() {
		if !pb.AppendRow(t.TID, +1, t.Values) {
			return nil, errVecFallback
		}
	}
	return &vecInput{b: pb}, nil
}

// evalTermVec joins one truth-table term's operand batches, multiplying
// signs and applying predicates as soon as their operands are joined,
// and appends the term's signed rows to out. The in-progress join state
// is a single pooled batch over the flattened schema (unfilled operand
// ranges hold placeholders that no ready predicate can read) plus one
// pooled TID column per operand for provenance.
func (v *vecEval) evalTermVec(cj *compiledJoin, term []*vecInput, isDelta []bool, out *batch.Batch) error {
	e := v.e
	nOps := len(cj.ops)
	lens := make([]int, nOps)
	for i, t := range term {
		lens[i] = t.length()
	}
	order := e.termOrderBy(cj, lens, isDelta)

	applied := make([]bool, len(cj.preds))
	var filled uint64

	first := order[0]
	fb, err := term[first].enumerable(v)
	if err != nil {
		return err
	}
	work := v.own(e.pool.Get(cj.outSchema, fb.Len()))
	tids := make([][]relation.TID, nOps)
	for i := range tids {
		tids[i] = e.pool.GetTIDs(fb.Len())
	}
	defer func() {
		for i := range tids {
			// released: provenance columns recycled after the term emits.
			e.pool.PutTIDs(tids[i])
		}
	}()
	lo := cj.ops[first].lo
	for r := 0; r < fb.Len(); r++ {
		work.AppendPlaced(fb, r, lo)
		for i := range tids {
			if i == first {
				tids[i] = append(tids[i], fb.TIDs[r])
			} else {
				tids[i] = append(tids[i], 0)
			}
		}
	}
	filled |= 1 << uint(first)
	if err := v.applyReadyVec(cj, work, tids, filled, applied); err != nil {
		return err
	}

	for _, k := range order[1:] {
		if work.Len() == 0 {
			return nil
		}
		lk, rk := equiPairs(cj, applied, filled, k)
		var nw *batch.Batch
		var nt [][]relation.TID
		if e.UseHashJoin && len(lk) > 0 {
			nw, nt, err = v.hashStepVec(work, tids, term[k], cj.ops[k], k, lk, rk)
			if err != nil {
				return err
			}
			markEquiApplied(cj, applied, filled, k)
		} else {
			kb, err := term[k].enumerable(v)
			if err != nil {
				return err
			}
			nw, nt = v.loopStepVec(work, tids, kb, cj.ops[k], k)
		}
		for i := range tids {
			// released: superseded by the join step's output columns.
			e.pool.PutTIDs(tids[i])
		}
		work, tids = nw, nt
		filled |= 1 << uint(k)
		if err := v.applyReadyVec(cj, work, tids, filled, applied); err != nil {
			return err
		}
	}

	// Any predicate not yet applied (defensive) runs now.
	for i := range cj.preds {
		if !applied[i] {
			if err := v.applyPredVec(work, tids, cj.cPreds[i]); err != nil {
				return err
			}
			applied[i] = true
		}
	}

	for r := 0; r < work.Len(); r++ {
		tid := tids[0][r]
		for i := 1; i < nOps; i++ {
			tid = relation.CombineTIDs(tid, tids[i][r])
		}
		out.AppendFrom(work, r)
		out.TIDs[out.Len()-1] = tid
	}
	return nil
}

// applyReadyVec applies every unapplied predicate whose operands are
// all filled, compacting the work batch and provenance columns.
func (v *vecEval) applyReadyVec(cj *compiledJoin, work *batch.Batch, tids [][]relation.TID, filled uint64, applied []bool) error {
	for i := range cj.cPreds {
		if applied[i] || cj.masks[i]&^filled != 0 {
			continue
		}
		if err := v.applyPredVec(work, tids, cj.cPreds[i]); err != nil {
			return err
		}
		applied[i] = true
	}
	return nil
}

func (v *vecEval) applyPredVec(work *batch.Batch, tids [][]relation.TID, pred algebra.CompiledExpr) error {
	if work.Len() == 0 {
		return nil
	}
	pool := v.e.pool
	sel, err := algebra.SelectBatch(pred, work, pool.GetIdx(work.Len()))
	if err != nil {
		// released: predicate aborted; the indices never escaped.
		pool.PutIdx(sel)
		return fmt.Errorf("dra: term predicate: %w", err)
	}
	if len(sel) < work.Len() {
		work.Gather(sel)
		for i := range tids {
			t := tids[i]
			for k, j := range sel {
				t[k] = t[j]
			}
			tids[i] = t[:len(sel)]
		}
	}
	// released: gather and provenance compaction consumed the indices.
	pool.PutIdx(sel)
	return nil
}

// hashStepVec joins the work batch with operand k through a hash index
// on the equi-key columns: the cached replica's maintained index when
// one is attached (probed per row, emitting matches straight into the
// pooled output batch), a transient row-index map over the operand
// batch otherwise.
func (v *vecEval) hashStepVec(work *batch.Batch, tids [][]relation.TID, in *vecInput, op *operand, opIdx int, probeCols, buildCols []int) (*batch.Batch, [][]relation.TID, error) {
	e := v.e
	nOps := len(tids)
	out := v.own(e.pool.Get(work.Schema, work.Len()))
	outTids := make([][]relation.TID, nOps)
	for i := range outTids {
		outTids[i] = e.pool.GetTIDs(work.Len())
	}
	fail := func(err error) (*batch.Batch, [][]relation.TID, error) {
		for i := range outTids {
			// released: step aborted before handing the columns over.
			e.pool.PutTIDs(outTids[i])
		}
		return nil, nil, err
	}
	emitTids := func(srcRow int, tid relation.TID) {
		for i := 0; i < nOps; i++ {
			if i == opIdx {
				outTids[i] = append(outTids[i], tid)
			} else {
				outTids[i] = append(outTids[i], tids[i][srcRow])
			}
		}
	}
	probe := make([]relation.Value, len(probeCols))
	if in.ent != nil {
		ix := in.ent.index(buildCols, v.st)
		scratch := make([]relation.Value, work.Schema.Len())
		for r := 0; r < work.Len(); r++ {
			for i, c := range probeCols {
				probe[i] = work.Value(r, c)
			}
			work.ReadRow(r, scratch)
			sign := work.Signs[r]
			var stepErr error
			ix.ProbeEach(probe, func(t relation.Tuple) {
				if stepErr != nil {
					return
				}
				copy(scratch[op.lo:op.hi], t.Values)
				if !out.AppendRow(0, sign, scratch) {
					stepErr = errVecFallback
					return
				}
				emitTids(r, t.TID)
			})
			if stepErr != nil {
				return fail(stepErr)
			}
		}
		return out, outTids, nil
	}
	fb := in.b
	idx := make(map[uint64][]int32, fb.Len())
	key := make([]relation.Value, len(buildCols))
	for r := 0; r < fb.Len(); r++ {
		for i, c := range buildCols {
			key[i] = fb.Value(r, c)
		}
		h := relation.HashValues(key)
		idx[h] = append(idx[h], int32(r))
	}
	for r := 0; r < work.Len(); r++ {
		for i, c := range probeCols {
			probe[i] = work.Value(r, c)
		}
		h := relation.HashValues(probe)
		for _, m := range idx[h] {
			// Verify against collisions.
			match := true
			for i, c := range buildCols {
				if !fb.Value(int(m), c).Equal(probe[i]) {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			out.AppendMerged(work, r, fb, int(m), op.lo)
			emitTids(r, fb.TIDs[m])
		}
	}
	return out, outTids, nil
}

// loopStepVec joins the work batch with operand k by nested loops;
// predicates run afterwards in applyReadyVec.
func (v *vecEval) loopStepVec(work *batch.Batch, tids [][]relation.TID, kb *batch.Batch, op *operand, opIdx int) (*batch.Batch, [][]relation.TID) {
	e := v.e
	nOps := len(tids)
	hint := work.Len() * kb.Len()
	out := v.own(e.pool.Get(work.Schema, hint))
	outTids := make([][]relation.TID, nOps)
	for i := range outTids {
		outTids[i] = e.pool.GetTIDs(hint)
	}
	for r := 0; r < work.Len(); r++ {
		for m := 0; m < kb.Len(); m++ {
			out.AppendMerged(work, r, kb, m, op.lo)
			for i := 0; i < nOps; i++ {
				if i == opIdx {
					outTids[i] = append(outTids[i], kb.TIDs[m])
				} else {
					outTids[i] = append(outTids[i], tids[i][r])
				}
			}
		}
	}
	return out, outTids
}

// netEntry is one distinct value-row of a tid's net group: the index of
// its first occurrence in the batch and the accumulated sign count.
type netEntry struct {
	row   int32
	count int32
}

// netGroup accumulates one tid's signed rows. The two inline entries
// cover the common shapes (a compacted window contributes at most a
// -old/+new pair per tid); the spill slice absorbs churn-heavy groups
// without growing the fixed part.
type netGroup struct {
	tid   relation.TID
	n     int32
	inl   [2]netEntry
	spill []netEntry
}

func (g *netGroup) entry(k int) *netEntry {
	if k < len(g.inl) {
		return &g.inl[k]
	}
	return &g.spill[k-len(g.inl)]
}

func (g *netGroup) add(e netEntry) {
	if int(g.n) < len(g.inl) {
		g.inl[g.n] = e
	} else {
		g.spill = append(g.spill, e)
	}
	g.n++
}

// netBatch reduces the signed batch to at most one negative and one
// positive row per tid — netSigned over columns, comparing candidate
// rows in place (RowsEqual) instead of materializing and hashing every
// row. Grouping is a flat group slice addressed through one tid index,
// so the pass costs O(1) allocations rather than two map levels plus an
// entry per row. The emitted rows share one flat owned backing, so the
// result stays valid after the batch returns to the pool.
func (v *vecEval) netBatch(b *batch.Batch) *delta.Signed {
	width := b.Schema.Len()
	groupOf := make(map[relation.TID]int32, b.Len())
	groups := make([]netGroup, 0, b.Len())
	for i := 0; i < b.Len(); i++ {
		tid := b.TIDs[i]
		gi, ok := groupOf[tid]
		if !ok {
			gi = int32(len(groups))
			groupOf[tid] = gi
			groups = append(groups, netGroup{tid: tid})
		}
		g := &groups[gi]
		matched := false
		for k := 0; k < int(g.n); k++ {
			e := g.entry(k)
			if b.RowsEqual(int(e.row), i) {
				e.count += int32(b.Signs[i])
				matched = true
				break
			}
		}
		if !matched {
			g.add(netEntry{row: int32(i), count: int32(b.Signs[i])})
		}
	}
	// Entries sit in arrival order within each group and groups in
	// first-arrival order of their tid, so picking the first negative
	// and first positive entry per group reproduces netSigned's emit
	// order exactly.
	nEmit := 0
	for gi := range groups {
		g := &groups[gi]
		neg, pos := false, false
		for k := 0; k < int(g.n); k++ {
			switch c := g.entry(k).count; {
			case c < 0 && !neg:
				neg = true
				nEmit++
			case c > 0 && !pos:
				pos = true
				nEmit++
			}
		}
	}
	out := &delta.Signed{Schema: b.Schema}
	if nEmit == 0 {
		return out
	}
	flat := make([]relation.Value, nEmit*width)
	out.Rows = make([]delta.SignedRow, 0, nEmit)
	emit := func(tid relation.TID, row int32, sign int) {
		vals := flat[:width:width]
		flat = flat[width:]
		b.ReadRow(int(row), vals)
		out.Rows = append(out.Rows, delta.SignedRow{TID: tid, Values: vals, Sign: sign})
	}
	for gi := range groups {
		g := &groups[gi]
		negAt, posAt := int32(-1), int32(-1)
		for k := 0; k < int(g.n); k++ {
			e := g.entry(k)
			switch {
			case e.count < 0 && negAt < 0:
				negAt = e.row
			case e.count > 0 && posAt < 0:
				posAt = e.row
			}
		}
		if negAt >= 0 {
			emit(g.tid, negAt, -1)
		}
		if posAt >= 0 {
			emit(g.tid, posAt, +1)
		}
	}
	return out
}
