package storage

import (
	"fmt"
	"sync"

	"github.com/diorama/continual/internal/batch"
	"github.com/diorama/continual/internal/delta"
	"github.com/diorama/continual/internal/vclock"
)

// WindowCache shares differential-window fetches within one refresh
// round. The paper's system active delta zone (Section 5.4) implies
// that concurrent continual queries over the same tables consume the
// very same differential windows; the cache materializes each
// (table, from, to) window — and its compacted form — once, so N CQs
// sharing a table cost one fetch and one compaction instead of N.
//
// Entries are owned copies, detached from the live delta: they stay
// valid if garbage collection truncates (and shifts) the underlying
// rows mid-round. Callers must treat them as read-only — the whole
// point is that many CQ refresh workers read the same entry — and must
// not reuse a cache across rounds, since it would keep serving windows
// that newer commits have outgrown.
//
// WindowCache is safe for concurrent use.
type WindowCache struct {
	s       *Store
	mu      sync.Mutex
	entries map[windowKey]*delta.Delta
	// cols caches the columnar image of each window alongside the row
	// form. A present nil marks a window already found unrepresentable
	// in typed columns, so N CQs don't re-attempt the conversion.
	cols         map[windowKey]*batch.Batch
	hits, misses int64
}

type windowKey struct {
	table    string
	from, to vclock.Timestamp
	compact  bool
}

// NewWindowCache returns an empty per-round window cache over the
// store.
func (s *Store) NewWindowCache() *WindowCache {
	return &WindowCache{
		s:       s,
		entries: make(map[windowKey]*delta.Delta),
		cols:    make(map[windowKey]*batch.Batch),
	}
}

// Window returns the table's differential rows with from < TS <= to,
// folded to their net per-tid effect when compact is set. The first
// call per key fetches from the store; later calls share the entry.
// Like DeltaSince it returns ErrStaleWindow when garbage collection
// has already discarded part of the requested window.
func (c *WindowCache) Window(table string, from, to vclock.Timestamp, compact bool) (*delta.Delta, error) {
	key := windowKey{table: table, from: from, to: to, compact: compact}
	c.mu.Lock()
	defer c.mu.Unlock()
	if d, ok := c.entries[key]; ok {
		c.hits++
		if m := c.s.met; m != nil {
			m.windowHits.Inc()
		}
		return d, nil
	}
	var d *delta.Delta
	if compact {
		// Derive from the raw entry when present: compaction is the
		// expensive half, and the store scan need not repeat.
		if raw, ok := c.entries[windowKey{table: table, from: from, to: to}]; ok {
			d = raw.Compact()
		}
	}
	if d == nil {
		var err error
		d, err = c.s.window(table, from, to, compact)
		if err != nil {
			return nil, err
		}
	}
	c.misses++
	if m := c.s.met; m != nil {
		m.windowMisses.Inc()
	}
	c.entries[key] = d
	return d, nil
}

// WindowBatch returns the columnar image of the same window Window
// would return, built once per key and shared read-only by every CQ in
// the round. The batch is unpooled (it outlives no pool generation) and
// its rows match the row window exactly, in the same order. It returns
// (nil, nil) — with the negative result cached — when some value in the
// window is unrepresentable in typed columns; the caller then sticks
// with the row form.
func (c *WindowCache) WindowBatch(table string, from, to vclock.Timestamp, compact bool) (*batch.Batch, error) {
	key := windowKey{table: table, from: from, to: to, compact: compact}
	c.mu.Lock()
	if b, ok := c.cols[key]; ok {
		c.mu.Unlock()
		return b, nil
	}
	c.mu.Unlock()
	// Window takes the same lock; fetch (or share) the row form first.
	d, err := c.Window(table, from, to, compact)
	if err != nil {
		return nil, err
	}
	b, ok := batch.FromDelta(nil, d)
	if !ok {
		b = nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, seen := c.cols[key]; seen {
		return prev, nil // raced with another worker; share its image
	}
	c.cols[key] = b
	return b, nil
}

// Stats reports the cache's hit/miss counts for the round.
func (c *WindowCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// window materializes an owned copy of one differential window
// (from < TS <= to), optionally compacted. Unlike DeltaSince the result
// never aliases the live delta's row storage, so it survives a
// concurrent TruncateBefore.
func (s *Store) window(table string, from, to vclock.Timestamp, compact bool) (*delta.Delta, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[table]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchTable, table)
	}
	if from < t.lowWater {
		if m := s.met; m != nil {
			m.staleWindow.Inc()
		}
		return nil, fmt.Errorf("%w: want >%d, low water %d", ErrStaleWindow, from, t.lowWater)
	}
	w := t.dlt.Window(from, to)
	if compact {
		return w.Compact(), nil
	}
	return w.Clone(), nil
}
