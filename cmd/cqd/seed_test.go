package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/diorama/continual/internal/cq"
	"github.com/diorama/continual/internal/durable"
	"github.com/diorama/continual/internal/wal"
)

const seedScript = `CREATE TABLE stocks (name STRING, price FLOAT);
INSERT INTO stocks VALUES ('DEC', 150), ('IBM', 75);
CREATE CONTINUAL QUERY expensive AS
  SELECT name, price FROM stocks WHERE price > 120
  TRIGGER UPDATES 1
  MODE COMPLETE`

// TestSeedSkippedOnRecoveredDir is the -init re-run bug: restarting a
// durable daemon with the same -init script used to re-execute it —
// duplicating rows and failing on the CREATE statements. A recovered
// directory must win over the script.
func TestSeedSkippedOnRecoveredDir(t *testing.T) {
	dir := t.TempDir()
	script := filepath.Join(dir, "init.sql")
	if err := os.WriteFile(script, []byte(seedScript), 0o644); err != nil {
		t.Fatal(err)
	}
	open := func() *durable.System {
		sys, err := durable.Open(durable.Options{
			Dir:   filepath.Join(dir, "data"),
			Fsync: wal.FsyncAlways,
			CQ:    cq.Config{UseDRA: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}

	// First boot: fresh directory, script runs.
	sys := open()
	if err := seed(sys.Store, sys.Manager, sys.Recovery.HasState(), "data", script, false, 0); err != nil {
		t.Fatal(err)
	}
	snap, err := sys.Store.Snapshot("stocks")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Len() != 2 {
		t.Fatalf("seeded %d rows, want 2", snap.Len())
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart with the same flags: the recovered state is authoritative
	// and the script must NOT re-run.
	sys2 := open()
	defer sys2.Close()
	if !sys2.Recovery.HasState() {
		t.Fatalf("restart found no state: %+v", sys2.Recovery)
	}
	if err := seed(sys2.Store, sys2.Manager, sys2.Recovery.HasState(), "data", script, false, 0); err != nil {
		t.Fatalf("seed on recovered dir must be a skip, not an error: %v", err)
	}
	snap2, err := sys2.Store.Snapshot("stocks")
	if err != nil {
		t.Fatal(err)
	}
	if snap2.Len() != 2 {
		t.Fatalf("script re-ran: %d rows, want 2", snap2.Len())
	}
	if names := sys2.Manager.Names(); len(names) != 1 || names[0] != "expensive" {
		t.Fatalf("CQ registry after restart: %v", names)
	}
}
