package algebra

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/diorama/continual/internal/relation"
)

// randSource builds three joinable tables with randomized contents.
// Key-ish columns draw from small domains so joins actually match.
func randSource(rng *rand.Rand) catSource {
	r := relation.New(relation.MustSchema(
		relation.Column{Name: "s1", Type: relation.TString},
		relation.Column{Name: "a", Type: relation.TFloat},
	))
	u := relation.New(relation.MustSchema(
		relation.Column{Name: "s2", Type: relation.TString},
		relation.Column{Name: "b", Type: relation.TFloat},
		relation.Column{Name: "x", Type: relation.TInt},
	))
	w := relation.New(relation.MustSchema(
		relation.Column{Name: "x", Type: relation.TInt},
		relation.Column{Name: "c", Type: relation.TFloat},
	))
	tid := relation.TID(1)
	for i := 0; i < 5+rng.Intn(20); i++ {
		_ = r.Insert(relation.Tuple{TID: tid, Values: []relation.Value{
			relation.Str(fmt.Sprintf("k%d", rng.Intn(6))), relation.Float(float64(rng.Intn(200))),
		}})
		tid++
	}
	for i := 0; i < 5+rng.Intn(20); i++ {
		_ = u.Insert(relation.Tuple{TID: tid, Values: []relation.Value{
			relation.Str(fmt.Sprintf("k%d", rng.Intn(6))), relation.Float(float64(rng.Intn(200))), relation.Int(int64(rng.Intn(8))),
		}})
		tid++
	}
	for i := 0; i < 5+rng.Intn(20); i++ {
		_ = w.Insert(relation.Tuple{TID: tid, Values: []relation.Value{
			relation.Int(int64(rng.Intn(8))), relation.Float(float64(rng.Intn(200))),
		}})
		tid++
	}
	return catSource{MapSource{"r": r, "u": u, "w": w}}
}

// randSPJQuery assembles a random select-project-join query over the
// randSource tables: a join chain of 1-3 tables, a random subset of
// filter conjuncts with random literals, and a random projection.
func randSPJQuery(rng *rand.Rand) string {
	nTables := 1 + rng.Intn(3)
	from := "r"
	if nTables >= 2 {
		from += " JOIN u ON r.s1 = u.s2"
	}
	if nTables >= 3 {
		from += " JOIN w ON u.x = w.x"
	}
	conjPool := []string{
		fmt.Sprintf("r.a > %d", rng.Intn(200)),
		fmt.Sprintf("r.s1 != 'k%d'", rng.Intn(6)),
	}
	if nTables >= 2 {
		conjPool = append(conjPool,
			fmt.Sprintf("u.b < %d", rng.Intn(200)),
			fmt.Sprintf("u.x >= %d", rng.Intn(8)),
		)
	}
	if nTables >= 3 {
		conjPool = append(conjPool, fmt.Sprintf("w.c > %d", rng.Intn(200)))
	}
	var conjs []string
	for _, c := range conjPool {
		if rng.Intn(2) == 0 {
			conjs = append(conjs, c)
		}
	}
	projPool := []string{"*", "r.s1, r.a"}
	if nTables >= 2 {
		projPool = append(projPool, "r.s1, u.b", "u.x, r.a")
	}
	if nTables >= 3 {
		projPool = append(projPool, "r.a, w.c")
	}
	q := "SELECT " + projPool[rng.Intn(len(projPool))] + " FROM " + from
	if len(conjs) > 0 {
		q += " WHERE " + strings.Join(conjs, " AND ")
	}
	return q
}

// TestOptimizeEquivalenceRandomizedSPJ checks the contract Optimize
// states ("never changes the result of a plan, only its shape") over
// randomized SPJ queries and randomized data: the pushed-down plan must
// produce exactly the tuples of the unoptimized plan, tid for tid.
// Unlike TestOptimizeEquivalenceProperty (fixed data, templated
// queries), this randomizes the query shape itself — join arity,
// conjunct subset, and projection all vary per trial.
func TestOptimizeEquivalenceRandomizedSPJ(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		src := randSource(rng)
		for qi := 0; qi < 5; qi++ {
			q := randSPJQuery(rng)
			plan, err := PlanSQL(q, src)
			if err != nil {
				t.Fatalf("seed %d: PlanSQL(%q): %v", seed, q, err)
			}
			opt := Optimize(plan)
			raw, err := NewExecutor(src).Execute(plan)
			if err != nil {
				t.Fatalf("seed %d: execute unoptimized %q: %v", seed, q, err)
			}
			pushed, err := NewExecutor(src).Execute(opt)
			if err != nil {
				t.Fatalf("seed %d: execute optimized %q: %v", seed, q, err)
			}
			if !raw.EqualByTID(pushed) {
				t.Fatalf("seed %d: Optimize changed the result of %q.\nplan: %s\nopt:  %s\nunoptimized:\n%s\noptimized:\n%s",
					seed, q, plan, opt, raw, pushed)
			}
			// Schemas must agree column for column, or downstream
			// differential plumbing (which compiles against the schema
			// once) would silently misbind.
			if plan.Schema().String() != opt.Schema().String() {
				t.Fatalf("seed %d: Optimize changed the schema of %q: %s vs %s",
					seed, q, plan.Schema(), opt.Schema())
			}
		}
	}
}
