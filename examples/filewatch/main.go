// Filewatch demonstrates the DIOM translator path of Section 5.5: file
// system updates are captured by middleware, translated into differential
// relations, and fed into the DRA — a continual query then monitors the
// directory like any relational table.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	continual "github.com/diorama/continual"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "filewatch")
	if err != nil {
		return err
	}
	defer func() { _ = os.RemoveAll(dir) }()

	write := func(name, content string) error {
		return os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644)
	}
	if err := write("readme.md", "# project"); err != nil {
		return err
	}
	if err := write("notes.txt", "initial notes"); err != nil {
		return err
	}

	db := continual.Open()
	defer func() { _ = db.Close() }()

	if err := db.WatchDir("files", dir); err != nil {
		return err
	}
	if _, err := db.Pump(); err != nil {
		return err
	}

	// Monitor growing files: anything over 16 bytes.
	sub, err := db.Register("bigfiles", `SELECT path, size FROM files WHERE size > 16`)
	if err != nil {
		return err
	}
	fmt.Printf("watching %s — %d large files initially\n", dir, sub.Initial().Len())

	steps := []struct {
		desc string
		do   func() error
	}{
		{"append to notes.txt", func() error { return write("notes.txt", "initial notes, now much much longer") }},
		{"create big.log", func() error { return write("big.log", "0123456789012345678901234567890123456789") }},
		{"remove big.log", func() error { return os.Remove(filepath.Join(dir, "big.log")) }},
	}
	for _, step := range steps {
		if err := step.do(); err != nil {
			return err
		}
		if _, err := db.Pump(); err != nil {
			return err
		}
		db.Poll()
		select {
		case c := <-sub.Updates():
			fmt.Printf("%-22s -> +%d -%d ~%d\n", step.desc, len(c.Inserted), len(c.Deleted), len(c.Modified))
		default:
			fmt.Printf("%-22s -> no relevant change\n", step.desc)
		}
	}

	result, err := sub.Result()
	if err != nil {
		return err
	}
	fmt.Println("final large files:")
	fmt.Println(result)
	return nil
}
