package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// histWindow is the number of recent samples a histogram retains for
// quantile estimation. Power of two so the ring index is a mask.
const histWindow = 1024

// Histogram records durations (nanoseconds) and reports quantiles over a
// sliding window of the last histWindow samples plus cumulative
// count/sum/max over its whole lifetime.
//
// The hot path (Observe) is lock-free: an atomic fetch-add to claim a
// ring slot and atomic stores for the sample and the aggregates.
// Quantiles are computed at snapshot time by copying and sorting the
// window, so observation cost does not depend on how often anything
// reads the histogram. Concurrent Observe/Stat is race-free; a snapshot
// taken mid-burst sees a consistent-enough mix of old and new samples,
// which is the usual contract for monitoring quantiles.
//
// All methods are nil-safe no-ops on a nil receiver.
type Histogram struct {
	count atomic.Int64
	sum   atomic.Int64
	max   atomic.Int64
	next  atomic.Uint64 // ring write cursor (monotone)
	ring  [histWindow]atomic.Int64
}

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one duration sample.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
	slot := h.next.Add(1) - 1
	h.ring[slot&(histWindow-1)].Store(ns)
}

// HistogramStat is a point-in-time histogram summary. Quantiles are over
// the sample window; Count/Sum/Max are lifetime cumulative.
type HistogramStat struct {
	Count int64 `json:"count"`
	SumNS int64 `json:"sum_ns"`
	MaxNS int64 `json:"max_ns"`
	P50NS int64 `json:"p50_ns"`
	P95NS int64 `json:"p95_ns"`
	P99NS int64 `json:"p99_ns"`
}

// Mean returns the lifetime mean duration.
func (s HistogramStat) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNS / s.Count)
}

// P50 returns the window median as a duration.
func (s HistogramStat) P50() time.Duration { return time.Duration(s.P50NS) }

// P95 returns the window 95th percentile as a duration.
func (s HistogramStat) P95() time.Duration { return time.Duration(s.P95NS) }

// P99 returns the window 99th percentile as a duration.
func (s HistogramStat) P99() time.Duration { return time.Duration(s.P99NS) }

// Max returns the lifetime maximum as a duration.
func (s HistogramStat) Max() time.Duration { return time.Duration(s.MaxNS) }

// Stat summarizes the histogram. Nil receivers yield the zero stat.
func (h *Histogram) Stat() HistogramStat {
	if h == nil {
		return HistogramStat{}
	}
	st := HistogramStat{
		Count: h.count.Load(),
		SumNS: h.sum.Load(),
		MaxNS: h.max.Load(),
	}
	n := h.next.Load()
	filled := int(n)
	if n > histWindow {
		filled = histWindow
	}
	if filled == 0 {
		return st
	}
	samples := make([]int64, filled)
	for i := 0; i < filled; i++ {
		samples[i] = h.ring[i].Load()
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	st.P50NS = quantile(samples, 0.50)
	st.P95NS = quantile(samples, 0.95)
	st.P99NS = quantile(samples, 0.99)
	return st
}

// quantile picks the nearest-rank quantile from sorted samples.
func quantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}
