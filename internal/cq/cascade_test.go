package cq

// Cascading-CQ tests: a materializing query (SELECT ... INTO) commits
// its refresh deltas into a derived table, a downstream CQ consumes
// them, and the pipeline must stay transcript-equivalent to a flat
// query composing both predicates — under poll, push, and mixed
// scheduling, and across registration churn.

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/diorama/continual/internal/algebra"
	"github.com/diorama/continual/internal/cascade"
	"github.com/diorama/continual/internal/dra"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/sql"
	"github.com/diorama/continual/internal/storage"
)

// cascadeFixture registers the standard two-stage pipeline over stocks:
// mid materializes the >100 slice into hot, leaf reads hot for the >200
// slice, and flat computes the composed predicate directly — the
// recomputation oracle.
func cascadeFixture(t *testing.T, cfg Config) (*storage.Store, *Manager) {
	t.Helper()
	s := newStoreWith(t, map[string]relation.Schema{"stocks": stockSchema()})
	m := NewManagerConfig(s, cfg)
	t.Cleanup(func() { _ = m.Close() })
	if _, err := m.Register(Def{Name: "mid", Query: `SELECT name, price INTO hot FROM stocks WHERE price > 100`}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Register(Def{Name: "leaf", Query: `SELECT name, price FROM hot WHERE price > 200`}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Register(Def{Name: "flat", Query: `SELECT name, price FROM stocks WHERE price > 200`}); err != nil {
		t.Fatal(err)
	}
	return s, m
}

// cascadeScript drives a batch sequence of inserts, updates and deletes
// through the fixture, quiescing with sync and checking leaf == flat
// after every batch.
func cascadeScript(t *testing.T, s *storage.Store, m *Manager, sync func(batch int)) {
	t.Helper()
	tids := map[string]relation.TID{}
	put := func(name string, price float64) {
		commit(t, s, func(tx *storage.Tx) error {
			id, err := tx.Insert("stocks", []relation.Value{relation.Str(name), relation.Float(price)})
			tids[name] = id
			return err
		})
	}
	set := func(name string, price float64) {
		commit(t, s, func(tx *storage.Tx) error {
			return tx.Update("stocks", tids[name], []relation.Value{relation.Str(name), relation.Float(price)})
		})
	}
	del := func(name string) {
		commit(t, s, func(tx *storage.Tx) error {
			return tx.Delete("stocks", tids[name])
		})
	}

	batches := []func(){
		func() { put("DEC", 150); put("IBM", 250); put("HP", 80) },
		func() { set("DEC", 300); put("SUN", 220) },       // crosses both thresholds
		func() { del("IBM"); set("SUN", 120) },            // falls back below 200
		func() { set("HP", 500); set("DEC", 90) },         // swap membership
		func() { del("HP"); del("SUN"); put("MAC", 201) }, // near-boundary
		func() { set("MAC", 200) },                        // exits by one cent of margin
	}
	for i, b := range batches {
		b()
		sync(i)
		leaf, err := m.Result("leaf")
		if err != nil {
			t.Fatal(err)
		}
		flat, err := m.Result("flat")
		if err != nil {
			t.Fatal(err)
		}
		if !leaf.EqualContents(flat) {
			t.Fatalf("batch %d: leaf %v != flat %v", i, leaf, flat)
		}
		// The derived table itself must track mid's result exactly.
		hot, err := s.Contents("hot")
		if err != nil {
			t.Fatal(err)
		}
		midRes, err := m.Result("mid")
		if err != nil {
			t.Fatal(err)
		}
		if !hot.EqualContents(midRes) {
			t.Fatalf("batch %d: hot table %v != mid result %v", i, hot, midRes)
		}
	}
}

func TestCascadeEquivalencePoll(t *testing.T) {
	_, m := cascadeFixture(t, Config{UseDRA: true, AutoGC: true, Parallelism: 4})
	s := m.store
	cascadeScript(t, s, m, func(int) {
		// One staged round propagates the batch through both stages.
		if _, err := m.Poll(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestCascadeEquivalencePush(t *testing.T) {
	_, m := cascadeFixture(t, Config{UseDRA: true, AutoGC: true, Parallelism: 4, Push: true})
	s := m.store
	cascadeScript(t, s, m, func(int) {
		// The commit hook already dispatched stage by stage; drain twice
		// so a leaf dispatch enqueued by mid's materialize commit is
		// covered even if it raced the first flush.
		m.FlushPush()
		m.FlushPush()
	})
}

func TestCascadeEquivalenceMixed(t *testing.T) {
	_, m := cascadeFixture(t, Config{UseDRA: true, AutoGC: true, Parallelism: 4, Push: true})
	s := m.store
	cascadeScript(t, s, m, func(batch int) {
		if batch%2 == 0 {
			m.FlushPush()
			m.FlushPush()
		}
		// Poll after (or instead of) the push drain: refreshes already
		// delivered by push are skipped by the monotonicity guard, and
		// whatever push has not covered yet is folded differentially.
		if _, err := m.Poll(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestCascadeBaselineFullReevaluation runs the pipeline with UseDRA off:
// materialization must compose with complete re-evaluation too.
func TestCascadeBaselineFullReevaluation(t *testing.T) {
	_, m := cascadeFixture(t, Config{})
	s := m.store
	cascadeScript(t, s, m, func(int) {
		if _, err := m.Poll(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestCascadeThreeStageRollup(t *testing.T) {
	s := newStoreWith(t, map[string]relation.Schema{"stocks": stockSchema()})
	m := NewManagerConfig(s, Config{UseDRA: true, AutoGC: true})
	defer m.Close()
	for _, def := range []Def{
		{Name: "s1", Query: `SELECT name, price INTO d1 FROM stocks WHERE price > 10`},
		{Name: "s2", Query: `SELECT name, price INTO d2 FROM d1 WHERE price > 20`},
		{Name: "s3", Query: `SELECT name, price INTO d3 FROM d2 WHERE price > 30`},
		{Name: "end", Query: `SELECT name, price FROM d3`},
	} {
		if _, err := m.Register(def); err != nil {
			t.Fatalf("%s: %v", def.Name, err)
		}
	}
	if got := []int{m.dag.Stage("s1"), m.dag.Stage("s2"), m.dag.Stage("s3"), m.dag.Stage("end")}; got[0] != 0 || got[1] != 1 || got[2] != 2 || got[3] != 3 {
		t.Fatalf("stages = %v", got)
	}
	for i := 0; i < 50; i++ {
		insertStock(t, s, fmt.Sprintf("T%d", i), float64(i))
	}
	if _, err := m.Poll(); err != nil {
		t.Fatal(err)
	}
	res, err := m.Result("end")
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := dra.InitialResult(mustPlan(t, `SELECT name, price FROM stocks WHERE price > 30`, s), s.Live())
	if err != nil {
		t.Fatal(err)
	}
	if !res.EqualContents(oracle) {
		t.Fatalf("end %v != oracle %v", res, oracle)
	}
}

func TestCascadeCycleRejected(t *testing.T) {
	s := newStoreWith(t, map[string]relation.Schema{
		"stocks": stockSchema(),
		"orphan": stockSchema(), // producerless table: the self-feed path
	})
	m := NewManagerConfig(s, Config{UseDRA: true})
	defer m.Close()
	if _, err := m.Register(Def{Name: "self", Query: `SELECT name, price INTO orphan FROM orphan`}); !errors.Is(err, cascade.ErrCycle) {
		t.Fatalf("self-feed: %v", err)
	}
	// Transitive: stocks -> d1 -> d2, then d2 -> stocks closes the loop.
	if _, err := m.Register(Def{Name: "a", Query: `SELECT name, price INTO d1 FROM stocks`}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Register(Def{Name: "b", Query: `SELECT name, price INTO d2 FROM d1`}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Register(Def{Name: "c", Query: `SELECT name, price INTO stocks FROM d2`}); !errors.Is(err, cascade.ErrCycle) {
		t.Fatalf("transitive: %v", err)
	}
	// The rejected registrations left no instance and no DAG residue.
	if _, err := m.Result("self"); !errors.Is(err, ErrNoSuchCQ) {
		t.Fatalf("self leaked: %v", err)
	}
	if deps := m.dag.TableDependents("d2"); deps != nil {
		t.Fatalf("c leaked reader edges: %v", deps)
	}
}

func TestCascadeDepthBound(t *testing.T) {
	s := newStoreWith(t, map[string]relation.Schema{"stocks": stockSchema()})
	m := NewManagerConfig(s, Config{UseDRA: true, MaxCascadeDepth: 2})
	defer m.Close()
	if _, err := m.Register(Def{Name: "a", Query: `SELECT name, price INTO d1 FROM stocks`}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Register(Def{Name: "b", Query: `SELECT name, price INTO d2 FROM d1`}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Register(Def{Name: "c", Query: `SELECT name, price INTO d3 FROM d2`}); !errors.Is(err, cascade.ErrTooDeep) {
		t.Fatalf("depth 3 at bound 2: %v", err)
	}
	// Terminal readers at the same depth stay registrable.
	if _, err := m.Register(Def{Name: "leaf", Query: `SELECT name, price FROM d2`}); err != nil {
		t.Fatal(err)
	}
}

func TestCascadeNamespaceCollisions(t *testing.T) {
	s := newStoreWith(t, map[string]relation.Schema{
		"stocks": stockSchema(),
		"taken": relation.MustSchema( // shape differs from the query output
			relation.Column{Name: "name", Type: relation.TString},
			relation.Column{Name: "shares", Type: relation.TInt},
		),
	})
	m := NewManagerConfig(s, Config{UseDRA: true})
	defer m.Close()

	// A CQ may not take a base table's name.
	if _, err := m.Register(Def{Name: "stocks", Query: `SELECT name FROM stocks`}); !errors.Is(err, ErrNameCollision) {
		t.Fatalf("cq shadowing table: %v", err)
	}
	// An INTO target may not collide with a differently-shaped table.
	if _, err := m.Register(Def{Name: "q", Query: `SELECT name, price INTO taken FROM stocks`}); !errors.Is(err, ErrNameCollision) {
		t.Fatalf("into mismatched table: %v", err)
	}
	// Nor with the query's own name, nor a registered CQ.
	if _, err := m.Register(Def{Name: "q", Query: `SELECT name, price INTO q FROM stocks`}); !errors.Is(err, ErrNameCollision) {
		t.Fatalf("into self: %v", err)
	}
	if _, err := m.Register(Def{Name: "watch", Query: `SELECT name FROM stocks`}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Register(Def{Name: "q", Query: `SELECT name, price INTO watch FROM stocks`}); !errors.Is(err, ErrNameCollision) {
		t.Fatalf("into cq name: %v", err)
	}
	// CREATE TABLE through the manager may not shadow a CQ.
	if err := m.CreateTable("watch", stockSchema()); !errors.Is(err, ErrNameCollision) {
		t.Fatalf("table shadowing cq: %v", err)
	}
}

func TestCascadeDropDependents(t *testing.T) {
	_, m := cascadeFixture(t, Config{UseDRA: true})
	s := m.store

	var de *cascade.DependentsError
	if err := m.Drop("mid"); !errors.As(err, &de) {
		t.Fatalf("drop producer with reader: %v", err)
	} else if len(de.Dependents) != 1 || de.Dependents[0] != "leaf" {
		t.Fatalf("dependents = %v", de.Dependents)
	}
	// Base tables with readers refuse too, listing every reader.
	de = nil
	if err := m.DropTable("stocks"); !errors.As(err, &de) {
		t.Fatalf("drop read table: %v", err)
	} else if len(de.Dependents) != 2 { // mid and flat
		t.Fatalf("dependents = %v", de.Dependents)
	}
	// A derived table is dropped via its producer, never directly.
	if err := m.DropTable("hot"); err == nil {
		t.Fatal("derived table dropped directly")
	}
	// Dropping leaf frees mid; dropping mid takes the derived table.
	if err := m.Drop("leaf"); err != nil {
		t.Fatal(err)
	}
	if err := m.Drop("mid"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Schema("hot"); err == nil {
		t.Fatal("derived table survived its producer")
	}
}

// TestCascadeOrphanAdoption re-registers a producer over a target table
// left behind by a crashed registration: same shape, no producer — the
// registration adopts it and reconciles its contents to the initial
// result instead of failing or double-creating.
func TestCascadeOrphanAdoption(t *testing.T) {
	s := newStoreWith(t, map[string]relation.Schema{
		"stocks": stockSchema(),
		"hot":    stockSchema(), // the orphan, with stale contents
	})
	commit(t, s, func(tx *storage.Tx) error {
		_, err := tx.Insert("hot", []relation.Value{relation.Str("STALE"), relation.Float(999)})
		return err
	})
	insertStock(t, s, "DEC", 150)
	m := NewManagerConfig(s, Config{UseDRA: true})
	defer m.Close()
	initial, err := m.Register(Def{Name: "mid", Query: `SELECT name, price INTO hot FROM stocks WHERE price > 100`})
	if err != nil {
		t.Fatal(err)
	}
	hot, err := s.Contents("hot")
	if err != nil {
		t.Fatal(err)
	}
	if !hot.EqualContents(initial) {
		t.Fatalf("adopted target %v != initial %v", hot, initial)
	}
}

// TestCascadeReaderBeforeProducer registers a terminal CQ over an
// orphan table FIRST, then a producer INTO that table: the reader must
// be promoted to stage 1 retroactively so one staged Poll still
// propagates base-table commits through to it.
func TestCascadeReaderBeforeProducer(t *testing.T) {
	s := newStoreWith(t, map[string]relation.Schema{
		"stocks": stockSchema(),
		"hot":    stockSchema(), // orphan target, readers arrive first
	})
	m := NewManagerConfig(s, Config{UseDRA: true})
	defer m.Close()
	if _, err := m.Register(Def{Name: "leaf", Query: `SELECT name, price FROM hot WHERE price > 200`}); err != nil {
		t.Fatal(err)
	}
	if got := m.dag.Stage("leaf"); got != 0 {
		t.Fatalf("leaf stage before producer = %d", got)
	}
	if _, err := m.Register(Def{Name: "mid", Query: `SELECT name, price INTO hot FROM stocks WHERE price > 100`}); err != nil {
		t.Fatal(err)
	}
	if got := m.dag.Stage("leaf"); got != 1 {
		t.Fatalf("leaf stage after producer = %d", got)
	}
	insertStock(t, s, "DEC", 250)
	if _, err := m.Poll(); err != nil {
		t.Fatal(err)
	}
	leaf, err := m.Result("leaf")
	if err != nil {
		t.Fatal(err)
	}
	if leaf.Len() != 1 {
		t.Fatalf("one poll did not propagate through the adopted target: %v", leaf)
	}
}

// TestCascadeChurnDAG registers and drops pipeline segments while
// writers commit and refreshes run — the `make chaos` cascade case; run
// it under -race.
func TestCascadeChurnDAG(t *testing.T) {
	_, m := cascadeFixture(t, Config{UseDRA: true, AutoGC: true, Parallelism: 4, Push: true})
	s := m.store

	var wg sync.WaitGroup
	wg.Add(3)
	// guarded: test goroutine, joined by wg.Wait below.
	go func() {
		defer wg.Done()
		for i := 0; i < 150; i++ {
			tx := s.Begin()
			if _, err := tx.Insert("stocks", []relation.Value{relation.Str(fmt.Sprintf("W%d", i)), relation.Float(float64(i * 3))}); err != nil {
				tx.Abort()
				t.Error(err)
				return
			}
			if _, err := tx.Commit(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// guarded: test goroutine, joined by wg.Wait below.
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			mid := fmt.Sprintf("churn_mid_%d", i%3)
			tgt := fmt.Sprintf("churn_tmp_%d", i%3)
			leaf := fmt.Sprintf("churn_leaf_%d", i%3)
			if _, err := m.Register(Def{Name: mid, Query: fmt.Sprintf(`SELECT name, price INTO %s FROM stocks WHERE price > 50`, tgt)}); err != nil {
				t.Error(err)
				return
			}
			if _, err := m.Register(Def{Name: leaf, Query: fmt.Sprintf(`SELECT name, price FROM %s WHERE price > 100`, tgt)}); err != nil {
				t.Error(err)
				return
			}
			if err := m.Drop(leaf); err != nil {
				t.Error(err)
				return
			}
			if err := m.Drop(mid); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// guarded: test goroutine, joined by wg.Wait below.
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			_, _ = m.Poll()
		}
	}()
	wg.Wait()

	// Quiesce and verify the stable pipeline against recomputation.
	m.FlushPush()
	m.FlushPush()
	if _, err := m.Poll(); err != nil {
		t.Fatal(err)
	}
	leaf, err := m.Result("leaf")
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := dra.InitialResult(mustPlan(t, `SELECT name, price FROM stocks WHERE price > 200`, s), s.Live())
	if err != nil {
		t.Fatal(err)
	}
	if !leaf.EqualContents(oracle) {
		t.Fatalf("after churn: leaf %v != oracle %v", leaf, oracle)
	}
}

// TestCascadeDeps checks the DAG snapshot surfaces stages in
// topological order.
func TestCascadeDeps(t *testing.T) {
	_, m := cascadeFixture(t, Config{UseDRA: true})
	nodes := m.Deps()
	if len(nodes) != 3 {
		t.Fatalf("nodes = %+v", nodes)
	}
	byName := map[string]cascade.Node{}
	for _, n := range nodes {
		byName[n.CQ] = n
	}
	if n := byName["mid"]; n.Target != "hot" || n.Stage != 0 {
		t.Fatalf("mid = %+v", n)
	}
	if n := byName["leaf"]; n.Target != "" || n.Stage != 1 {
		t.Fatalf("leaf = %+v", n)
	}
	if nodes[len(nodes)-1].CQ != "leaf" {
		t.Fatalf("topological order violated: %+v", nodes)
	}
}

// TestCascadePerTableGC: a lagging terminal reader must pin only its own
// operand (the derived table), not the base table other CQs have long
// caught up on.
func TestCascadePerTableGC(t *testing.T) {
	_, m := cascadeFixture(t, Config{UseDRA: true}) // no AutoGC: collect explicitly
	s := m.store
	cascadeScript(t, s, m, func(int) {
		if _, err := m.Poll(); err != nil {
			t.Fatal(err)
		}
	})
	// Everyone is caught up: a collection should strip both tables'
	// windows to (at most) their final refresh horizon.
	m.CollectGarbage()
	n, err := s.DeltaLen("stocks")
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("stocks delta rows after GC = %d", n)
	}
	if n, err = s.DeltaLen("hot"); err != nil || n != 0 {
		t.Fatalf("hot delta rows after GC = %d (%v)", n, err)
	}
}

// mustPlan compiles a SELECT against the live store, for oracle
// evaluation in tests.
func mustPlan(t *testing.T, query string, s *storage.Store) algebra.Plan {
	t.Helper()
	stmt, err := sql.ParseSelect(query)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := algebra.PlanSelect(stmt, s.Live())
	if err != nil {
		t.Fatal(err)
	}
	return algebra.Optimize(plan)
}
