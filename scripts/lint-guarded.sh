#!/bin/sh
# lint-guarded: structural annotations the compiler cannot check.
#
# 1. Every goroutine launched in the engine's guarded packages
#    (internal/cq, internal/push, internal/guard) must carry a
#    "// guarded:" annotation within the four lines above the launch,
#    naming its recover boundary. The guard layer turns refresh panics
#    into per-CQ failures only if every launch site actually routes
#    through a boundary; this check makes forgetting one a CI failure
#    instead of a crashed worker in production.
#
# 2. Every pool release in the columnar hot path (internal/dra,
#    internal/batch: .Put / .PutIdx / .PutTIDs calls) must carry a
#    "// released:" annotation within the four lines above, stating why
#    no live reference to the buffer remains. The batch arena recycles
#    buffers across refreshes; a Put with a surviving reference is a
#    silent read of recycled memory outside the poison builds, so the
#    reasoning must be written down where the release happens.
set -eu
cd "$(dirname "$0")/.."
status=0
for f in $(find internal/cq internal/push internal/guard -name '*.go' ! -name '*_test.go'); do
	out=$(awk '
		/guarded:/ { mark = NR }
		/^[[:space:]]*go (func|[A-Za-z_])/ {
			if (mark == 0 || NR - mark > 4) {
				printf "%s:%d: goroutine launch without a \"// guarded:\" annotation\n", FILENAME, NR
			}
		}
	' "$f")
	if [ -n "$out" ]; then
		echo "$out"
		status=1
	fi
done
for f in $(find internal/dra internal/batch -name '*.go' ! -name '*_test.go'); do
	out=$(awk '
		/released:/ { mark = NR }
		/\.Put(Idx|TIDs)?\(/ {
			if (mark == 0 || NR - mark > 4) {
				printf "%s:%d: pool release without a \"// released:\" annotation\n", FILENAME, NR
			}
		}
	' "$f")
	if [ -n "$out" ]; then
		echo "$out"
		status=1
	fi
done
if [ "$status" -ne 0 ]; then
	echo "lint-guarded: annotate goroutine launches with their recover boundary (see internal/guard)"
	echo "and pool releases with why the buffer is dead (see internal/batch Pool)."
fi
exit $status
