//go:build race || batchpoison

package batch

// poisonEnabled turns on poisoned-generation assertions in -race builds
// (the CI race suites) and under the explicit batchpoison tag: Pool.Put
// marks the batch dead and bumps its generation, and any later accessor
// panics. This is the "batch returned to the pool must not be
// referenced afterward" check from the pooling contract — cheap enough
// to leave on wherever the race detector already runs.
const poisonEnabled = true
