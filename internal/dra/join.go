package dra

import (
	"fmt"

	"github.com/diorama/continual/internal/algebra"
	"github.com/diorama/continual/internal/delta"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/sql"
	"github.com/diorama/continual/internal/vclock"
)

// maxChangedOperands caps the truth-table width; beyond it (4096 terms)
// complete re-evaluation is cheaper and Reevaluate falls back to
// Propagate.
const maxChangedOperands = 12

// operand is one leaf of the flattened join expression: a maximal
// join-free subtree (Scan, possibly under Selects from predicate
// pushdown).
type operand struct {
	plan   algebra.Plan
	lo, hi int // column range in the flattened output schema
}

// flatten decomposes a plan subtree into join operands and the list of
// cross-operand predicate conjuncts collected from Join ON clauses.
// Operand column ranges follow the left-deep concatenation order, so the
// flattened output schema equals the subtree's schema.
func flatten(p algebra.Plan) ([]*operand, []sql.Expr, error) {
	var ops []*operand
	var preds []sql.Expr
	var walk func(algebra.Plan) error
	col := 0
	walk = func(p algebra.Plan) error {
		if j, ok := p.(*algebra.JoinPlan); ok {
			if err := walk(j.Left); err != nil {
				return err
			}
			if err := walk(j.Right); err != nil {
				return err
			}
			if j.On != nil {
				preds = append(preds, algebra.SplitConjuncts(j.On)...)
			}
			return nil
		}
		width := p.Schema().Len()
		ops = append(ops, &operand{plan: p, lo: col, hi: col + width})
		col += width
		return nil
	}
	if err := walk(p); err != nil {
		return nil, nil, err
	}
	return ops, preds, nil
}

// termInput is one operand's relation within a truth-table term: the
// signed rows to enumerate, or — when the operand is an unsubstituted
// pre-state served by a prepared plan's cache — the live cache entry,
// whose maintained hash indexes the hash step probes directly instead
// of building a transient index per term.
type termInput struct {
	signed *delta.Signed
	ent    *cachedOperand
}

func (t termInput) len() int {
	if t.ent != nil {
		return t.ent.rel.Len()
	}
	return t.signed.Len()
}

// rows returns the signed enumeration of the input (building the cached
// replica's +1 view lazily).
func (t termInput) rows() *delta.Signed {
	if t.ent != nil {
		return t.ent.signedView()
	}
	return t.signed
}

// joinDelta computes the signed delta of a join group by truth-table
// expansion (Algorithm 1, steps 1-3), against the group's compiled
// predicates and — when prepared — its cross-refresh operand cache.
func (e *Engine) joinDelta(cj *compiledJoin, ctx *Context, execTS vclock.Timestamp, st *Stats) (*delta.Signed, error) {
	deltas := make([]*delta.Signed, len(cj.ops))
	var changed []int
	for i := range cj.ops {
		d, err := e.signedDelta(cj.opNodes[i], ctx, execTS, st)
		if err != nil {
			return nil, err
		}
		deltas[i] = d
		if d.Len() > 0 {
			changed = append(changed, i)
		}
	}
	if len(changed) == 0 {
		if cj.cache != nil {
			cj.cache.advance(ctx, execTS, deltas)
		}
		return &delta.Signed{Schema: cj.outSchema}, nil
	}
	if len(changed) > maxChangedOperands {
		// Complete re-evaluation; the cache is left behind and will
		// revalidate by table version or rebuild at the next refresh.
		return PropagateSigned(cj.plan, ctx.Pre, ctx.Post)
	}

	// Lazily materialized pre-states for unsubstituted operands, served
	// from the cache when one is attached.
	pres := make([]termInput, len(cj.ops))
	have := make([]bool, len(cj.ops))
	preOf := func(i int) (termInput, error) {
		if !have[i] {
			ti, err := e.operandPre(cj, i, ctx, st)
			if err != nil {
				return termInput{}, err
			}
			pres[i] = ti
			have[i] = true
		}
		return pres[i], nil
	}

	out := &delta.Signed{Schema: cj.outSchema}
	k := len(changed)
	for mask := 1; mask < 1<<k; mask++ {
		term := make([]termInput, len(cj.ops))
		isDelta := make([]bool, len(cj.ops))
		empty := false
		for i := range cj.ops {
			substituted := false
			for b, ci := range changed {
				if ci == i && mask&(1<<b) != 0 {
					substituted = true
					break
				}
			}
			if substituted {
				term[i] = termInput{signed: deltas[i]}
				isDelta[i] = true
			} else {
				p, err := preOf(i)
				if err != nil {
					return nil, err
				}
				term[i] = p
			}
			if term[i].len() == 0 {
				empty = true
				break
			}
		}
		if empty {
			continue
		}
		st.Terms++
		rows, err := e.evalTerm(cj, term, isDelta, st)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, rows...)
	}
	if cj.cache != nil {
		cj.cache.advance(ctx, execTS, deltas)
	}
	return out, nil
}

// operandPre materializes operand i's pre-state: from the cross-refresh
// cache when the join is prepared, transiently from the last-execution
// snapshot otherwise.
func (e *Engine) operandPre(cj *compiledJoin, i int, ctx *Context, st *Stats) (termInput, error) {
	if cj.cache != nil {
		ent, err := cj.cache.pre(i, ctx, st)
		if err != nil {
			return termInput{}, err
		}
		return termInput{ent: ent}, nil
	}
	ex := algebra.NewExecutor(ctx.Pre)
	ex.UseHashJoin = e.UseHashJoin
	rel, err := ex.Execute(cj.ops[i].plan)
	if err != nil {
		return termInput{}, fmt.Errorf("dra: operand pre-state: %w", err)
	}
	st.PreTuplesScanned += rel.Len()
	out := &delta.Signed{Schema: rel.Schema(), Rows: make([]delta.SignedRow, 0, rel.Len())}
	for _, t := range rel.Tuples() {
		out.Rows = append(out.Rows, delta.SignedRow{TID: t.TID, Values: t.Values, Sign: +1})
	}
	return termInput{signed: out}, nil
}

// compilePreds compiles each cross-operand conjunct against the flattened
// schema and computes the bitmask of operands each references.
func compilePreds(preds []sql.Expr, outSchema relation.Schema, ops []*operand) ([]algebra.CompiledExpr, []uint64, error) {
	compiled := make([]algebra.CompiledExpr, len(preds))
	masks := make([]uint64, len(preds))
	for i, p := range preds {
		ce, err := algebra.Compile(p, outSchema)
		if err != nil {
			return nil, nil, fmt.Errorf("dra: join predicate: %w", err)
		}
		compiled[i] = ce
		for _, col := range algebra.ColumnsOf(p) {
			idx, ok := outSchema.ColIndex(col)
			if !ok {
				return nil, nil, fmt.Errorf("dra: join predicate column %q not in schema", col)
			}
			for oi, op := range ops {
				if idx >= op.lo && idx < op.hi {
					masks[i] |= 1 << uint(oi)
					break
				}
			}
		}
	}
	return compiled, masks, nil
}

// partial is an in-progress joined row during term evaluation.
type partial struct {
	vals []relation.Value // full output width; unfilled ranges are zero
	sign int
	tids []relation.TID // per-operand provenance
}

// evalTerm joins the term's operand relations, multiplying signs and
// applying predicates as soon as all referenced operands are joined.
func (e *Engine) evalTerm(cj *compiledJoin, term []termInput, isDelta []bool, st *Stats) ([]delta.SignedRow, error) {
	order := e.termOrder(cj, term, isDelta)
	width := cj.outSchema.Len()

	applied := make([]bool, len(cj.preds))
	var filled uint64

	// Seed with the first operand.
	first := order[0]
	seed := term[first].rows()
	cur := make([]*partial, 0, len(seed.Rows))
	for _, r := range seed.Rows {
		vals := make([]relation.Value, width)
		copy(vals[cj.ops[first].lo:cj.ops[first].hi], r.Values)
		tids := make([]relation.TID, len(cj.ops))
		tids[first] = r.TID
		cur = append(cur, &partial{vals: vals, sign: r.Sign, tids: tids})
	}
	filled |= 1 << uint(first)
	var err error
	if cur, err = e.applyReady(cur, filled, applied, cj.cPreds, cj.masks); err != nil {
		return nil, err
	}

	for _, k := range order[1:] {
		if len(cur) == 0 {
			return nil, nil
		}
		lk, rk := equiPairs(cj, applied, filled, k)
		var next []*partial
		if e.UseHashJoin && len(lk) > 0 {
			next, err = e.hashStep(cur, term[k], cj.ops[k], k, lk, rk, st)
		} else {
			next, err = e.loopStep(cur, term[k].rows(), cj.ops[k], k)
		}
		if err != nil {
			return nil, err
		}
		// Mark equi predicates used by the hash step as applied.
		if e.UseHashJoin && len(lk) > 0 {
			markEquiApplied(cj, applied, filled, k)
		}
		filled |= 1 << uint(k)
		cur = next
		if cur, err = e.applyReady(cur, filled, applied, cj.cPreds, cj.masks); err != nil {
			return nil, err
		}
	}

	// Any predicate not yet applied (defensive) runs now.
	for i := range cj.preds {
		if !applied[i] {
			if cur, err = e.applyOne(cur, cj.cPreds[i]); err != nil {
				return nil, err
			}
			applied[i] = true
		}
	}

	rows := make([]delta.SignedRow, 0, len(cur))
	for _, p := range cur {
		tid := p.tids[0]
		for i := 1; i < len(p.tids); i++ {
			tid = relation.CombineTIDs(tid, p.tids[i])
		}
		rows = append(rows, delta.SignedRow{TID: tid, Values: p.vals, Sign: p.sign})
	}
	return rows, nil
}

// termOrder picks the operand join order: with heuristics, the smallest
// delta operand first, then greedily the operand connected by an equi
// predicate with the smallest relation; without, left-to-right.
func (e *Engine) termOrder(cj *compiledJoin, term []termInput, isDelta []bool) []int {
	lens := make([]int, len(term))
	for i := range term {
		lens[i] = term[i].len()
	}
	return e.termOrderBy(cj, lens, isDelta)
}

// termOrderBy is termOrder on operand sizes alone, so the row and
// columnar term evaluators share one ordering policy.
func (e *Engine) termOrderBy(cj *compiledJoin, lens []int, isDelta []bool) []int {
	n := len(cj.ops)
	order := make([]int, 0, n)
	if !e.UseHeuristics {
		for i := 0; i < n; i++ {
			order = append(order, i)
		}
		return order
	}
	used := make([]bool, n)
	// Start with the smallest delta operand (there is at least one in
	// every term).
	best := -1
	for i := 0; i < n; i++ {
		if isDelta[i] && (best == -1 || lens[i] < lens[best]) {
			best = i
		}
	}
	if best == -1 {
		best = 0
	}
	order = append(order, best)
	used[best] = true
	var filled uint64 = 1 << uint(best)

	connected := func(k int) bool {
		kbit := uint64(1) << uint(k)
		for pi := range cj.preds {
			m := cj.masks[pi]
			if m&kbit != 0 && m&filled != 0 && m&^(filled|kbit) == 0 && cj.equi[pi].ok {
				return true
			}
		}
		return false
	}
	for len(order) < n {
		next := -1
		for k := 0; k < n; k++ {
			if used[k] {
				continue
			}
			if next == -1 {
				next = k
				continue
			}
			nc, kc := connected(next), connected(k)
			switch {
			case kc && !nc:
				next = k
			case kc == nc && lens[k] < lens[next]:
				next = k
			}
		}
		order = append(order, next)
		used[next] = true
		filled |= 1 << uint(next)
	}
	return order
}

func isEquiConjunct(p sql.Expr) bool {
	be, ok := p.(*sql.BinaryExpr)
	if !ok || be.Op != "=" {
		return false
	}
	_, l := be.L.(*sql.ColumnRef)
	_, r := be.R.(*sql.ColumnRef)
	return l && r
}

// equiPairs finds unapplied equi conjuncts linking the filled operands to
// operand k, returning (full-width column index on the filled side,
// local column index within k).
func equiPairs(cj *compiledJoin, applied []bool, filled uint64, k int) (probeCols []int, buildCols []int) {
	kbit := uint64(1) << uint(k)
	lo, hi := cj.ops[k].lo, cj.ops[k].hi
	for i := range cj.preds {
		if applied[i] || !cj.equi[i].ok {
			continue
		}
		if cj.masks[i]&kbit == 0 || cj.masks[i]&filled == 0 || cj.masks[i]&^(filled|kbit) != 0 {
			continue
		}
		li, ri := cj.equi[i].li, cj.equi[i].ri
		inK := func(c int) bool { return c >= lo && c < hi }
		switch {
		case inK(li) && !inK(ri):
			probeCols = append(probeCols, ri)
			buildCols = append(buildCols, li-lo)
		case inK(ri) && !inK(li):
			probeCols = append(probeCols, li)
			buildCols = append(buildCols, ri-lo)
		}
	}
	return probeCols, buildCols
}

// markEquiApplied marks the equi conjuncts consumed by a hash step.
func markEquiApplied(cj *compiledJoin, applied []bool, filled uint64, k int) {
	kbit := uint64(1) << uint(k)
	lo, hi := cj.ops[k].lo, cj.ops[k].hi
	for i := range cj.preds {
		if applied[i] || !cj.equi[i].ok {
			continue
		}
		if cj.masks[i]&kbit == 0 || cj.masks[i]&filled == 0 || cj.masks[i]&^(filled|kbit) != 0 {
			continue
		}
		li, ri := cj.equi[i].li, cj.equi[i].ri
		inK := func(c int) bool { return c >= lo && c < hi }
		if inK(li) != inK(ri) {
			applied[i] = true
		}
	}
}

// hashStep joins the current partials with operand k through a hash
// index on the equi-key columns: the maintained index of a cached
// pre-state replica when one is attached, a transient per-term index
// otherwise.
func (e *Engine) hashStep(cur []*partial, in termInput, op *operand, opIdx int, probeCols, buildCols []int, st *Stats) ([]*partial, error) {
	if in.ent != nil {
		ix := in.ent.index(buildCols, st)
		probe := make([]relation.Value, len(probeCols))
		var out []*partial
		for _, p := range cur {
			for i, c := range probeCols {
				probe[i] = p.vals[c]
			}
			for _, match := range ix.Probe(probe) {
				out = append(out, mergeReplicaTuple(p, match, op, opIdx))
			}
		}
		return out, nil
	}
	rel := in.signed
	type bucket []delta.SignedRow
	idx := make(map[uint64]bucket, rel.Len())
	key := make([]relation.Value, len(buildCols))
	for _, r := range rel.Rows {
		for i, c := range buildCols {
			key[i] = r.Values[c]
		}
		h := relation.HashValues(key)
		idx[h] = append(idx[h], r)
	}
	var out []*partial
	probe := make([]relation.Value, len(probeCols))
	for _, p := range cur {
		for i, c := range probeCols {
			probe[i] = p.vals[c]
		}
		h := relation.HashValues(probe)
		for _, r := range idx[h] {
			// Verify against collisions.
			match := true
			for i, c := range buildCols {
				if !r.Values[c].Equal(probe[i]) {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			out = append(out, mergePartial(p, r, op, opIdx))
		}
	}
	return out, nil
}

// loopStep joins the current partials with operand k by nested loops;
// predicates are applied afterwards by applyReady.
func (e *Engine) loopStep(cur []*partial, rel *delta.Signed, op *operand, opIdx int) ([]*partial, error) {
	out := make([]*partial, 0, len(cur))
	for _, p := range cur {
		for _, r := range rel.Rows {
			out = append(out, mergePartial(p, r, op, opIdx))
		}
	}
	return out, nil
}

func mergePartial(p *partial, r delta.SignedRow, op *operand, opIdx int) *partial {
	vals := make([]relation.Value, len(p.vals))
	copy(vals, p.vals)
	copy(vals[op.lo:op.hi], r.Values)
	tids := make([]relation.TID, len(p.tids))
	copy(tids, p.tids)
	tids[opIdx] = r.TID
	return &partial{vals: vals, sign: p.sign * r.Sign, tids: tids}
}

// applyReady applies every unapplied predicate whose operands are all
// filled, filtering the partials.
func (e *Engine) applyReady(cur []*partial, filled uint64, applied []bool, compiled []algebra.CompiledExpr, masks []uint64) ([]*partial, error) {
	for i := range compiled {
		if applied[i] || masks[i]&^filled != 0 {
			continue
		}
		var err error
		cur, err = e.applyOne(cur, compiled[i])
		if err != nil {
			return nil, err
		}
		applied[i] = true
	}
	return cur, nil
}

func (e *Engine) applyOne(cur []*partial, pred algebra.CompiledExpr) ([]*partial, error) {
	out := cur[:0]
	for _, p := range cur {
		ok, err := algebra.EvalPredicate(pred, relation.Tuple{Values: p.vals})
		if err != nil {
			return nil, fmt.Errorf("dra: term predicate: %w", err)
		}
		if ok {
			out = append(out, p)
		}
	}
	return out, nil
}
