package epsilon

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/diorama/continual/internal/delta"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/sql"
	"github.com/diorama/continual/internal/vclock"
)

func accountSchema() relation.Schema {
	return relation.MustSchema(
		relation.Column{Name: "owner", Type: relation.TString},
		relation.Column{Name: "amount", Type: relation.TFloat},
	)
}

func amountExpr(t *testing.T) sql.Expr {
	t.Helper()
	e, err := sql.ParseExpr("amount")
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func row(owner string, amount float64) []relation.Value {
	return []relation.Value{relation.Str(owner), relation.Float(amount)}
}

func newAcct(t *testing.T, bound float64, m Measure) *Accountant {
	t.Helper()
	a, err := NewAccountant(Spec{Expr: amountExpr(t), Bound: bound, Measure: m}, accountSchema())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestCheckingAccountExample reproduces the Section 3.2/5.3 scenario: a
// 0.5M epsilon on the checking-account sum; deposits (insertions) and
// withdrawals (deletions) accumulate until the bound is crossed.
func TestCheckingAccountExample(t *testing.T) {
	a := newAcct(t, 500_000, MeasureNetChange)

	d := delta.New(accountSchema())
	_ = d.AppendInsert(1, row("alice", 300_000), 1) // deposit 300k
	_ = d.AppendDelete(2, row("bob", 100_000), 2)   // withdrawal 100k
	if err := a.Observe(d); err != nil {
		t.Fatal(err)
	}
	if a.Exceeded() {
		t.Fatalf("divergence %v should be below 500k", a.Divergence())
	}
	if got := a.Divergence(); got != 200_000 {
		t.Errorf("net divergence = %v, want 200000", got)
	}

	d2 := delta.New(accountSchema())
	_ = d2.AppendInsert(3, row("carol", 301_000), 3)
	if err := a.Observe(d2); err != nil {
		t.Fatal(err)
	}
	if !a.Exceeded() {
		t.Errorf("divergence %v should exceed 500k", a.Divergence())
	}

	a.Reset()
	if a.Exceeded() || a.Divergence() != 0 {
		t.Error("Reset should clear divergence")
	}
}

func TestModificationCountsAsDifference(t *testing.T) {
	a := newAcct(t, 100, MeasureNetChange)
	d := delta.New(accountSchema())
	_ = d.AppendModify(1, row("alice", 500), row("alice", 450), 1)
	if err := a.Observe(d); err != nil {
		t.Fatal(err)
	}
	if got := a.Divergence(); got != 50 {
		t.Errorf("modification divergence = %v, want 50", got)
	}
}

func TestNetVsAbsoluteMeasure(t *testing.T) {
	// +100 then -100 nets to zero but has 200 absolute churn.
	mk := func(m Measure) *Accountant { return newAcct(t, 150, m) }

	d := delta.New(accountSchema())
	_ = d.AppendInsert(1, row("a", 100), 1)
	_ = d.AppendDelete(2, row("b", 100), 2)

	net := mk(MeasureNetChange)
	_ = net.Observe(d)
	if net.Exceeded() {
		t.Errorf("net measure should see 0, got %v", net.Divergence())
	}
	abs := mk(MeasureAbsolute)
	_ = abs.Observe(d)
	if !abs.Exceeded() {
		t.Errorf("absolute measure should see 200, got %v", abs.Divergence())
	}
}

func TestNegativeNetTriggersViaAbsoluteValue(t *testing.T) {
	a := newAcct(t, 100, MeasureNetChange)
	d := delta.New(accountSchema())
	_ = d.AppendDelete(1, row("a", 150), 1) // net -150
	_ = a.Observe(d)
	if !a.Exceeded() {
		t.Errorf("|net| = %v should exceed 100", a.Divergence())
	}
}

func TestSpecValidation(t *testing.T) {
	if _, err := NewAccountant(Spec{Expr: amountExpr(t), Bound: 0}, accountSchema()); !errors.Is(err, ErrBadBound) {
		t.Errorf("zero bound err = %v", err)
	}
	if _, err := NewAccountant(Spec{Expr: nil, Bound: 1}, accountSchema()); err == nil {
		t.Error("nil expr should fail")
	}
	ownerExpr, _ := sql.ParseExpr("owner")
	if _, err := NewAccountant(Spec{Expr: ownerExpr, Bound: 1}, accountSchema()); !errors.Is(err, ErrNonNumeric) {
		t.Errorf("non-numeric err = %v", err)
	}
	missing, _ := sql.ParseExpr("nosuch")
	if _, err := NewAccountant(Spec{Expr: missing, Bound: 1}, accountSchema()); err == nil {
		t.Error("unknown column should fail")
	}
}

func TestNullAmountsIgnored(t *testing.T) {
	a := newAcct(t, 10, MeasureNetChange)
	d := delta.New(accountSchema())
	_ = d.AppendInsert(1, []relation.Value{relation.Str("x"), relation.TypedNull(relation.TFloat)}, 1)
	if err := a.Observe(d); err != nil {
		t.Fatal(err)
	}
	if a.Divergence() != 0 {
		t.Errorf("NULL amount contributed %v", a.Divergence())
	}
}

func TestResultDistance(t *testing.T) {
	prev := relation.New(accountSchema())
	_ = prev.Insert(relation.Tuple{TID: 1, Values: row("a", 100)})
	_ = prev.Insert(relation.Tuple{TID: 2, Values: row("b", 200)})
	cur := relation.New(accountSchema())
	_ = cur.Insert(relation.Tuple{TID: 1, Values: row("a", 150)})
	_ = cur.Insert(relation.Tuple{TID: 3, Values: row("c", 50)})

	dist, err := ResultDistance(amountExpr(t), prev, cur)
	if err != nil {
		t.Fatal(err)
	}
	// prev sum 300, cur sum 200 -> 100.
	if dist != 100 {
		t.Errorf("distance = %v, want 100", dist)
	}
}

// Property: the divergence accounted from delta rows always equals the
// true |sum(post) − sum(pre)| for random update streams (net measure).
func TestNetDivergenceMatchesTrueSumProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		a := newAcct(t, 1e18, MeasureNetChange)
		rel := relation.New(accountSchema())
		next := relation.TID(1)
		trueSum := func() float64 {
			var s float64
			for _, tu := range rel.Tuples() {
				s += tu.Values[1].AsFloat()
			}
			return s
		}
		// seed
		for i := 0; i < 10; i++ {
			_ = rel.Insert(relation.Tuple{TID: next, Values: row("x", float64(rng.Intn(1000)))})
			next++
		}
		before := trueSum()
		d := delta.New(accountSchema())
		clock := vclock.New()
		for i := 0; i < 40; i++ {
			ts := clock.Tick()
			switch op := rng.Intn(3); {
			case op == 0 || rel.Len() == 0:
				v := row("x", float64(rng.Intn(1000)))
				_ = d.AppendInsert(next, v, ts)
				_ = rel.Insert(relation.Tuple{TID: next, Values: v})
				next++
			case op == 1:
				victim := rel.At(rng.Intn(rel.Len()))
				_ = d.AppendDelete(victim.TID, victim.Values, ts)
				_ = rel.Delete(victim.TID)
			default:
				victim := rel.At(rng.Intn(rel.Len()))
				nv := row("x", float64(rng.Intn(1000)))
				_ = d.AppendModify(victim.TID, victim.Values, nv, ts)
				_ = rel.Update(victim.TID, nv)
			}
		}
		if err := a.Observe(d); err != nil {
			t.Fatal(err)
		}
		want := trueSum() - before
		if want < 0 {
			want = -want
		}
		got := a.Divergence()
		if diff := got - want; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("trial %d: divergence %v, true |Δsum| %v", trial, got, want)
		}
	}
}
