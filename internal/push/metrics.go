package push

import "github.com/diorama/continual/internal/obs"

// metrics is the router's bundle of obs handles. A nil *metrics
// (Config.Metrics == nil) keeps every hook down to a nil check.
//
// The coalesce ratio — routed commit-touches per dispatch — is derived:
// push.dispatched_commits / push.dispatches. Above 1 means bursts are
// being merged, i.e. one refresh is covering several commits.
type metrics struct {
	registered *obs.Gauge   // push.registered: CQs in the operand index
	events     *obs.Counter // push.events: commits published by the store
	routed     *obs.Counter // push.routed: (commit x affected-CQ) routings
	coalesced  *obs.Counter // push.coalesced: routings merged into a queued entry
	dispatches *obs.Counter // push.dispatches: worker dequeues
	// dispatchedCommits sums the routings each dispatch covered;
	// dispatchedCommits/dispatches is the coalesce ratio.
	dispatchedCommits *obs.Counter // push.dispatched_commits
	refreshes         *obs.Counter // push.refreshes: dispatches that refreshed
	overflows         *obs.Counter // push.overflows: queue-full poll fallbacks
	errors            *obs.Counter // push.dispatch_errors
	queueDepth        *obs.Gauge   // push.queue_depth
	notifyNS          *obs.Histogram
	// shed counts commit events dropped whole because the store was in
	// degraded mode (soft watermark or worse): push→poll coalescing
	// forced by overload, as opposed to per-CQ queue overflow.
	shed *obs.Counter // push.shed
	// gateSkips counts routings vetoed by a CQ's quarantine gate.
	gateSkips *obs.Counter // push.gate_skips
	// batchRefs counts columnar commit images retained for dispatch;
	// batchGaps counts accumulation runs abandoned (unrepresentable
	// commit, per-table cap, or overload shed).
	batchRefs *obs.Counter // push.batch_refs
	batchGaps *obs.Counter // push.batch_gaps
}

func newMetrics(reg *obs.Registry) *metrics {
	if reg == nil {
		return nil
	}
	m := &metrics{
		events:            reg.Counter("push.events"),
		routed:            reg.Counter("push.routed"),
		coalesced:         reg.Counter("push.coalesced"),
		dispatches:        reg.Counter("push.dispatches"),
		dispatchedCommits: reg.Counter("push.dispatched_commits"),
		refreshes:         reg.Counter("push.refreshes"),
		overflows:         reg.Counter("push.overflows"),
		errors:            reg.Counter("push.dispatch_errors"),
		queueDepth:        reg.Gauge("push.queue_depth"),
		// notify_ns is the headline number: wall time from the oldest
		// coalesced commit's application to the notification leaving
		// the refresh — the quantity the poll interval used to bound.
		notifyNS:  reg.Histogram("push.notify_ns"),
		shed:      reg.Counter("push.shed"),
		gateSkips: reg.Counter("push.gate_skips"),
		batchRefs: reg.Counter("push.batch_refs"),
		batchGaps: reg.Counter("push.batch_gaps"),
	}
	m.registered = reg.Gauge("push.registered")
	return m
}
