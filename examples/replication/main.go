// Replication demonstrates the paper's client/server split (Section 5.1):
// a server engine hosts the stock table; a remote client installs a
// mirror continual query that is refreshed by shipping only differential
// relations over TCP, while the server never re-executes the query.
//
// The example prints, per refresh, the bytes the mirror received versus
// the bytes a full-result shipping strategy would have moved.
package main

import (
	"fmt"
	"log"
	"math/rand"

	continual "github.com/diorama/continual"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- server side ---
	server := continual.Open()
	defer func() { _ = server.Close() }()
	if err := server.Exec(`CREATE TABLE stocks (name STRING, price FLOAT)`); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		if err := server.Exec(fmt.Sprintf(
			`INSERT INTO stocks VALUES ('S%04d', %.2f)`, i, rng.Float64()*200)); err != nil {
			return err
		}
	}
	ln, err := server.ListenAndServe("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer func() { _ = ln.Close() }()
	fmt.Printf("server: 5000 stocks on %s\n", ln.Addr())

	// --- client side ---
	mirror, err := continual.DialMirror(ln.Addr(), `SELECT * FROM stocks WHERE price > 120`)
	if err != nil {
		return err
	}
	defer func() { _ = mirror.Close() }()
	initial := mirror.Result()
	baseline := mirror.BytesReceived()
	fmt.Printf("mirror: initial result %d rows (%d bytes shipped for the one-time snapshot)\n",
		initial.Len(), baseline)

	fullResultBytes := baseline // approximate size of shipping everything once

	for round := 1; round <= 5; round++ {
		// The server applies a small burst of updates.
		for i := 0; i < 10; i++ {
			name := fmt.Sprintf("S%04d", rng.Intn(5000))
			if err := server.Exec(fmt.Sprintf(
				`UPDATE stocks SET price = %.2f WHERE name = '%s'`, rng.Float64()*200, name)); err != nil {
				return err
			}
		}
		before := mirror.BytesReceived()
		change, err := mirror.Refresh()
		if err != nil {
			return err
		}
		shipped := mirror.BytesReceived() - before
		fmt.Printf("round %d: +%d -%d ~%d   delta shipping: %5d B   (full-result shipping would be ~%d B)\n",
			round, len(change.Inserted), len(change.Deleted), len(change.Modified),
			shipped, fullResultBytes)
	}

	fmt.Printf("final mirror result: %d rows, %d total bytes received\n",
		mirror.Result().Len(), mirror.BytesReceived())
	return nil
}
