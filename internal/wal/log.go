package wal

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/diorama/continual/internal/delta"
	"github.com/diorama/continual/internal/obs"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/vclock"
)

// segMagic opens every segment file; a file without it is not a
// segment (or its very first write was torn, which recovery treats as
// an empty segment).
const segMagic = "CQWAL001"

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// FsyncPolicy selects when appended records become durable.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every append: an acknowledged commit is
	// on stable storage before Commit returns. The paper's standing
	// queries assume the source never forgets a reported change; this
	// is the policy that guarantees it.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs on a background ticker (Options.SyncEvery).
	// A crash can lose the last interval's acknowledged commits, but
	// never produces a torn or reordered state.
	FsyncInterval
	// FsyncNever leaves syncing to the OS. For tests and benchmarks.
	FsyncNever
)

// ParseFsyncPolicy maps the user-facing names to policies.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or never)", s)
}

// String renders the policy name.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

// Options configures a Log.
type Options struct {
	// FS is the filesystem; nil means the real one (OSFS).
	FS FS
	// Fsync is the durability policy (default FsyncAlways).
	Fsync FsyncPolicy
	// SyncEvery is the FsyncInterval period (default 50ms).
	SyncEvery time.Duration
	// Metrics receives wal.* instruments when non-nil.
	Metrics *obs.Registry
}

// Log is a segmented write-ahead log. A log instance owns exactly one
// open segment and only ever appends to segments it created in this
// process lifetime: Open always starts a fresh segment after the
// highest existing one, so a torn tail from a previous crash is never
// appended after (which would bury the tear mid-segment where it would
// read as corruption instead of a clean stop).
//
// The log fails stop: the first append or sync error marks it broken
// and every later operation returns that error. A half-written log that
// keeps accepting commits would acknowledge transactions it cannot
// recover.
type Log struct {
	fs   FS
	dir  string
	opts Options
	met  *metrics

	mu      sync.Mutex
	seg     uint64 // current segment number
	f       File
	dirty   bool  // appended since last sync
	broken  error // sticky first failure
	closed  bool
	buf     []byte // frame scratch, reused across appends

	tickStop chan struct{}
	tickDone chan struct{}
}

func segName(seg uint64) string  { return fmt.Sprintf("wal-%08d.log", seg) }
func ckptName(seg uint64) string { return fmt.Sprintf("checkpoint-%08d.ckpt", seg) }

// parseSeq extracts the sequence number from a segment or checkpoint
// file name, returning ok=false for foreign files.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	if mid == "" {
		return 0, false
	}
	var n uint64
	for _, c := range mid {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + uint64(c-'0')
	}
	return n, true
}

// Open creates a log in dir, starting a new segment numbered one past
// the highest segment already present (0 if none).
func Open(dir string, opts Options) (*Log, error) {
	if opts.FS == nil {
		opts.FS = OSFS{}
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = 50 * time.Millisecond
	}
	if err := opts.FS.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("wal: mkdir %s: %w", dir, err)
	}
	names, err := opts.FS.List(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: list %s: %w", dir, err)
	}
	next := uint64(0)
	for _, name := range names {
		if seq, ok := parseSeq(name, "wal-", ".log"); ok && seq+1 > next {
			next = seq + 1
		}
	}
	l := &Log{fs: opts.FS, dir: dir, opts: opts, met: newMetrics(opts.Metrics), seg: next}
	if err := l.openSegment(next); err != nil {
		return nil, err
	}
	if opts.Fsync == FsyncInterval {
		l.tickStop = make(chan struct{})
		l.tickDone = make(chan struct{})
		go l.syncLoop()
	}
	return l, nil
}

// openSegment creates the segment file, writes its magic, and makes the
// directory entry durable. Caller holds no lock (Open) or l.mu (Rotate).
func (l *Log) openSegment(seg uint64) error {
	f, err := l.fs.Create(filepath.Join(l.dir, segName(seg)))
	if err != nil {
		return fmt.Errorf("wal: create segment %d: %w", seg, err)
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return fmt.Errorf("wal: segment %d magic: %w", seg, err)
	}
	if l.opts.Fsync != FsyncNever {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("wal: segment %d sync: %w", seg, err)
		}
		if err := l.fs.SyncDir(l.dir); err != nil {
			f.Close()
			return fmt.Errorf("wal: sync dir: %w", err)
		}
	}
	l.f = f
	l.seg = seg
	l.dirty = false
	return nil
}

func (l *Log) syncLoop() {
	defer close(l.tickDone)
	t := time.NewTicker(l.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-l.tickStop:
			return
		case <-t.C:
			// Best-effort: a failure marks the log broken; the loop
			// keeps running so Close still joins it.
			l.Sync()
		}
	}
}

// fail records the first error and makes the log fail-stop.
func (l *Log) fail(err error) error {
	if l.broken == nil {
		l.broken = fmt.Errorf("wal: log broken: %w", err)
	}
	return l.broken
}

// append encodes rec, frames it, writes the frame in a single Write
// call (so a crash tears at most the final frame), and applies the
// fsync policy.
func (l *Log) append(rec *Record) error {
	payload, err := encodeRecord(rec)
	if err != nil {
		return err // encoding errors are caller bugs, not log failures
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.broken != nil {
		return l.broken
	}
	start := time.Now()
	l.buf = appendFrame(l.buf[:0], payload)
	if _, err := l.f.Write(l.buf); err != nil {
		return l.fail(err)
	}
	l.dirty = true
	l.met.observeAppend(time.Since(start), len(l.buf))
	if l.opts.Fsync == FsyncAlways {
		return l.syncLocked()
	}
	return nil
}

func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return l.fail(err)
	}
	l.dirty = false
	l.met.observeFsync(time.Since(start))
	return nil
}

// Sync flushes appended records to stable storage regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.broken != nil {
		return l.broken
	}
	return l.syncLocked()
}

// AppendTx logs one committed transaction. With FsyncAlways the record
// is durable when this returns.
func (l *Log) AppendTx(ts vclock.Timestamp, rows []TxRow) error {
	return l.append(&Record{Kind: KindTx, TS: ts, Rows: rows})
}

// AppendCreateTable logs table creation.
func (l *Log) AppendCreateTable(name string, schema relation.Schema) error {
	return l.append(&Record{Kind: KindCreateTable, Table: name, Schema: schema})
}

// AppendDropTable logs table removal.
func (l *Log) AppendDropTable(name string) error {
	return l.append(&Record{Kind: KindDropTable, Table: name})
}

// AppendCQRegister logs a CQ installation.
func (l *Log) AppendCQRegister(e *CQEntry) error {
	return l.append(&Record{Kind: KindCQRegister, CQ: e})
}

// AppendCQExec logs one delivered refresh of a CQ.
func (l *Log) AppendCQExec(name string, seq int, execTS vclock.Timestamp, change []delta.Row, terminated bool) error {
	return l.append(&Record{Kind: KindCQExec, Name: name, Seq: seq, ExecTS: execTS, Change: change, Terminated: terminated})
}

// AppendCQDrop logs a CQ removal.
func (l *Log) AppendCQDrop(name string) error {
	return l.append(&Record{Kind: KindCQDrop, Name: name})
}

// Rotate syncs and closes the current segment and starts the next one,
// returning the new segment's number. Records appended after Rotate
// land in the new segment; a checkpoint cut at the rotation point
// therefore covers everything before it.
func (l *Log) Rotate() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.broken != nil {
		return 0, l.broken
	}
	if err := l.syncLocked(); err != nil {
		return 0, err
	}
	if err := l.f.Close(); err != nil {
		return 0, l.fail(err)
	}
	if err := l.openSegment(l.seg + 1); err != nil {
		return 0, l.fail(err)
	}
	return l.seg, nil
}

// Segment returns the current segment number.
func (l *Log) Segment() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seg
}

// Close syncs and closes the log. Safe to call twice.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	var err error
	if l.broken != nil {
		err = l.broken
		l.f.Close()
	} else {
		if serr := l.syncLocked(); serr != nil {
			err = serr
		}
		if cerr := l.f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	tickStop := l.tickStop
	l.mu.Unlock()
	if tickStop != nil {
		close(tickStop)
		<-l.tickDone
	}
	return err
}

// ---------------------------------------------------------------------
// read path

// ScanResult is what recovery finds in a log directory.
type ScanResult struct {
	// Checkpoint is the newest complete checkpoint, or nil.
	Checkpoint *Checkpoint
	// Records is the count of WAL records replayed (passed to handle).
	Records int
	// Torn is the count of segments that ended in a torn record.
	Torn int
}

// Scan recovers a log directory: it locates the newest valid
// checkpoint (calling onCheckpoint, when non-nil, so the caller can
// restore it first), then replays every record in segments numbered at
// or after the checkpoint's cut (all segments when there is none), in
// segment order, calling handle for each.
//
// A torn or corrupt record ends its segment's replay cleanly —
// everything before it is used, everything after is unreachable anyway
// because appends past a tear never happened (Open starts fresh
// segments). Errors from onCheckpoint/handle abort the scan; they
// indicate the records are inconsistent with the state being rebuilt,
// which is real corruption, not a crash artifact.
func Scan(fs FS, dir string, onCheckpoint func(*Checkpoint) error, handle func(*Record) error) (*ScanResult, error) {
	if fs == nil {
		fs = OSFS{}
	}
	names, err := fs.List(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: list %s: %w", dir, err)
	}

	// Newest checkpoint that loads completely wins; earlier ones are
	// fallbacks for a crash during checkpoint GC.
	var ckptSeqs []uint64
	segs := make([]uint64, 0, len(names))
	for _, name := range names {
		if seq, ok := parseSeq(name, "checkpoint-", ".ckpt"); ok {
			ckptSeqs = append(ckptSeqs, seq)
		}
		if seq, ok := parseSeq(name, "wal-", ".log"); ok {
			segs = append(segs, seq)
		}
	}
	sort.Slice(ckptSeqs, func(i, j int) bool { return ckptSeqs[i] > ckptSeqs[j] })
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })

	res := &ScanResult{}
	from := uint64(0)
	for _, seq := range ckptSeqs {
		ck, err := readCheckpoint(fs, filepath.Join(dir, ckptName(seq)))
		if err != nil {
			// Unreadable checkpoint (torn rename window, partial GC):
			// fall back to the next-newest.
			continue
		}
		res.Checkpoint = ck
		from = ck.Seg
		break
	}
	if res.Checkpoint != nil && onCheckpoint != nil {
		if err := onCheckpoint(res.Checkpoint); err != nil {
			return nil, err
		}
	}

	for _, seq := range segs {
		if seq < from {
			continue
		}
		torn, err := scanSegment(fs, filepath.Join(dir, segName(seq)), func(rec *Record) error {
			res.Records++
			return handle(rec)
		})
		if err != nil {
			return nil, fmt.Errorf("wal: segment %d: %w", seq, err)
		}
		if torn {
			res.Torn++
		}
	}
	return res, nil
}

// scanSegment replays one segment, reporting whether it ended torn.
func scanSegment(fs FS, path string, handle func(*Record) error) (torn bool, err error) {
	f, err := fs.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	var magic [len(segMagic)]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		// Shorter than the magic: the crash hit the very first write.
		return true, nil
	}
	if string(magic[:]) != segMagic {
		return false, fmt.Errorf("%w: bad segment magic", ErrCorrupt)
	}
	fr := &frameReader{r: f}
	for {
		payload, err := fr.next()
		if errors.Is(err, io.EOF) {
			return false, nil
		}
		if errors.Is(err, ErrTorn) || errors.Is(err, ErrCorrupt) {
			// The tail of this segment was being written when the
			// process died; everything after the tear was never
			// acknowledged as durable.
			return true, nil
		}
		if err != nil {
			return false, err
		}
		rec, derr := decodeRecord(payload)
		if derr != nil {
			// The frame checksum passed but the structure is invalid:
			// that is not a crash artifact (a tear fails the checksum),
			// it is real corruption or version skew. Surface it.
			return false, derr
		}
		if err := handle(rec); err != nil {
			return false, err
		}
	}
}
