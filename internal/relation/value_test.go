package relation

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	tests := []struct {
		name string
		v    Value
		kind Type
		str  string
	}{
		{"int", Int(42), TInt, "42"},
		{"negative int", Int(-7), TInt, "-7"},
		{"float", Float(1.5), TFloat, "1.5"},
		{"string", Str("IBM"), TString, "IBM"},
		{"bool true", Bool(true), TBool, "true"},
		{"bool false", Bool(false), TBool, "false"},
		{"null", NullValue(), 0, "-"},
		{"typed null", TypedNull(TInt), TInt, "-"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.v.Kind != tt.kind {
				t.Errorf("Kind = %v, want %v", tt.v.Kind, tt.kind)
			}
			if got := tt.v.String(); got != tt.str {
				t.Errorf("String() = %q, want %q", got, tt.str)
			}
		})
	}
	if Int(5).AsInt() != 5 {
		t.Error("AsInt round trip failed")
	}
	if Float(2.5).AsFloat() != 2.5 {
		t.Error("AsFloat round trip failed")
	}
	if Str("x").AsString() != "x" {
		t.Error("AsString round trip failed")
	}
	if !Bool(true).AsBool() {
		t.Error("AsBool round trip failed")
	}
}

func TestValueEqual(t *testing.T) {
	tests := []struct {
		name string
		a, b Value
		want bool
	}{
		{"equal ints", Int(1), Int(1), true},
		{"unequal ints", Int(1), Int(2), false},
		{"int float cross equal", Int(3), Float(3.0), true},
		{"int float cross unequal", Int(3), Float(3.5), false},
		{"strings equal", Str("a"), Str("a"), true},
		{"strings unequal", Str("a"), Str("b"), false},
		{"bools", Bool(true), Bool(true), true},
		{"null vs null", NullValue(), NullValue(), true},
		{"typed null vs null", TypedNull(TInt), NullValue(), true},
		{"null vs int", NullValue(), Int(0), false},
		{"string vs int", Str("1"), Int(1), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Equal(tt.b); got != tt.want {
				t.Errorf("%v.Equal(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
			if got := tt.b.Equal(tt.a); got != tt.want {
				t.Errorf("Equal not symmetric for %v, %v", tt.a, tt.b)
			}
		})
	}
}

func TestValueCompare(t *testing.T) {
	tests := []struct {
		name string
		a, b Value
		want int
	}{
		{"int lt", Int(1), Int(2), -1},
		{"int gt", Int(2), Int(1), 1},
		{"int eq", Int(2), Int(2), 0},
		{"float int cross", Float(1.5), Int(2), -1},
		{"string lt", Str("abc"), Str("abd"), -1},
		{"bool order", Bool(false), Bool(true), -1},
		{"null first", NullValue(), Int(-999), -1},
		{"null eq null", NullValue(), NullValue(), 0},
		{"cross kind total order", Int(1), Str("a"), -1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Compare(tt.b); got != tt.want {
				t.Errorf("Compare = %d, want %d", got, tt.want)
			}
			if got := tt.b.Compare(tt.a); got != -tt.want {
				t.Errorf("Compare not antisymmetric")
			}
		})
	}
}

func TestHashValuesSeparator(t *testing.T) {
	// ("a","b") must not hash like ("ab","").
	a := HashValues([]Value{Str("a"), Str("b")})
	b := HashValues([]Value{Str("ab"), Str("")})
	if a == b {
		t.Error("string concatenation collision in HashValues")
	}
}

func TestHashValuesDeterministic(t *testing.T) {
	vs := []Value{Int(1), Float(2.5), Str("x"), Bool(true), NullValue()}
	if HashValues(vs) != HashValues(vs) {
		t.Error("HashValues not deterministic")
	}
}

// Property: Compare defines a total order consistent with Equal.
func TestValueCompareConsistentWithEqual(t *testing.T) {
	gen := func(r *rand.Rand) Value {
		switch r.Intn(5) {
		case 0:
			return Int(int64(r.Intn(100) - 50))
		case 1:
			return Float(float64(r.Intn(100)) / 4)
		case 2:
			return Str(string(rune('a' + r.Intn(4))))
		case 3:
			return Bool(r.Intn(2) == 0)
		default:
			return NullValue()
		}
	}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a, b := gen(r), gen(r)
		eq := a.Equal(b)
		cmp := a.Compare(b)
		if eq && cmp != 0 {
			t.Fatalf("%v == %v but Compare = %d", a, b, cmp)
		}
		// Note: cross-kind numerics can compare 0 without Equal only when
		// equal numerically, in which case Equal is also true; so cmp==0
		// for numerics implies eq.
		if cmp == 0 && a.IsNumeric() && b.IsNumeric() && !eq {
			t.Fatalf("numeric Compare=0 but not Equal: %v vs %v", a, b)
		}
	}
}

// Property: hashing is injective enough that equal value slices hash equal.
func TestHashValuesEqualSlicesProperty(t *testing.T) {
	f := func(xs []int64) bool {
		vs := make([]Value, len(xs))
		ws := make([]Value, len(xs))
		for i, x := range xs {
			vs[i] = Int(x)
			ws[i] = Int(x)
		}
		return HashValues(vs) == HashValues(ws)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
