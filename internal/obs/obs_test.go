package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x.count")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("x.count") != c {
		t.Fatal("second lookup returned a different counter")
	}
	g := r.Gauge("x.level")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestNilRegistryAndHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("a")
	g := r.Gauge("b")
	h := r.Histogram("c")
	l := r.Traces()
	c.Inc()
	c.Add(3)
	g.Set(9)
	h.Observe(time.Millisecond)
	sp := l.Start("refresh")
	sp.SetField("rows", 1)
	sp.Child("child").Finish()
	sp.Finish()
	if c.Value() != 0 || g.Value() != 0 || h.Stat().Count != 0 || l.Len() != 0 {
		t.Fatal("nil handles must be inert")
	}
	snap := r.Snapshot()
	if !snap.Empty() {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	st := h.Stat()
	if st.Count != 100 {
		t.Fatalf("count = %d, want 100", st.Count)
	}
	if st.Max() != 100*time.Microsecond {
		t.Fatalf("max = %s, want 100µs", st.Max())
	}
	if p50 := st.P50(); p50 < 45*time.Microsecond || p50 > 55*time.Microsecond {
		t.Fatalf("p50 = %s, want ~50µs", p50)
	}
	if p95 := st.P95(); p95 < 90*time.Microsecond || p95 > 100*time.Microsecond {
		t.Fatalf("p95 = %s, want ~95µs", p95)
	}
	if st.P99NS < st.P95NS || st.P95NS < st.P50NS {
		t.Fatalf("quantiles not monotone: %+v", st)
	}
	if mean := st.Mean(); mean < 45*time.Microsecond || mean > 55*time.Microsecond {
		t.Fatalf("mean = %s, want ~50.5µs", mean)
	}
}

func TestHistogramWindowSlides(t *testing.T) {
	h := NewHistogram()
	// Fill the whole window with 1µs, then overwrite it with 1ms: the
	// quantiles must reflect only the recent window.
	for i := 0; i < histWindow; i++ {
		h.Observe(time.Microsecond)
	}
	for i := 0; i < histWindow; i++ {
		h.Observe(time.Millisecond)
	}
	st := h.Stat()
	if st.Count != 2*histWindow {
		t.Fatalf("count = %d, want %d", st.Count, 2*histWindow)
	}
	if st.P50() != time.Millisecond {
		t.Fatalf("p50 = %s, want 1ms after window slid", st.P50())
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Observe(time.Duration(i) * time.Nanosecond)
				_ = h.Stat()
			}
		}()
	}
	wg.Wait()
	if got := h.Stat().Count; got != 4000 {
		t.Fatalf("count = %d, want 4000", got)
	}
}

func TestTraceLogRing(t *testing.T) {
	l := NewTraceLog(4)
	for i := 0; i < 6; i++ {
		sp := l.Start("refresh")
		sp.SetField("seq", int64(i))
		child := sp.Child("dra.reevaluate")
		child.SetField("terms", int64(i*2))
		child.Finish()
		sp.Finish()
	}
	if l.Len() != 4 {
		t.Fatalf("ring len = %d, want 4", l.Len())
	}
	recent := l.Recent()
	if len(recent) != 4 {
		t.Fatalf("recent = %d spans, want 4", len(recent))
	}
	// Newest first: seq 5, 4, 3, 2.
	if recent[0].Fields[0].Value != 5 || recent[3].Fields[0].Value != 2 {
		t.Fatalf("ring order wrong: first=%v last=%v", recent[0].Fields, recent[3].Fields)
	}
	if len(recent[0].Children) != 1 || recent[0].Children[0].Name != "dra.reevaluate" {
		t.Fatalf("child span missing: %+v", recent[0])
	}
	if recent[0].Duration < 0 {
		t.Fatal("finished span must have a duration")
	}
}

func TestSnapshotAndWriteTable(t *testing.T) {
	r := NewRegistry()
	r.Counter("dra.terms_evaluated").Add(7)
	r.Gauge("storage.delta_len").Set(3)
	r.Histogram("cq.refresh_ns").Observe(2 * time.Millisecond)
	snap := r.Snapshot()
	if snap.Counter("dra.terms_evaluated") != 7 || snap.Gauge("storage.delta_len") != 3 {
		t.Fatalf("snapshot wrong: %+v", snap)
	}
	if snap.Histograms["cq.refresh_ns"].Count != 1 {
		t.Fatalf("histogram missing from snapshot: %+v", snap)
	}
	var sb strings.Builder
	snap.WriteTable(&sb)
	out := sb.String()
	for _, want := range []string{"counters", "dra.terms_evaluated", "7", "gauges", "storage.delta_len", "latencies", "cq.refresh_ns", "p95="} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestHTTPHandlers(t *testing.T) {
	r := NewRegistry()
	r.Counter("cq.refreshes").Add(2)
	sp := r.Traces().Start("cq.refresh")
	sp.SetField("rows", 5)
	sp.Finish()

	srv := httptest.NewServer(Mux(r))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counter("cq.refreshes") != 2 {
		t.Fatalf("/stats counter = %d, want 2", snap.Counter("cq.refreshes"))
	}

	resp2, err := srv.Client().Get(srv.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var spans []*Span
	if err := json.NewDecoder(resp2.Body).Decode(&spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 || spans[0].Name != "cq.refresh" {
		t.Fatalf("/debug/traces = %+v, want one cq.refresh span", spans)
	}
}

func TestRegistryNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("b")
	r.Gauge("a")
	r.Histogram("c")
	names := r.Names()
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Fatalf("names = %v", names)
	}
}
