// Package continual is an embedded continual-query engine: standing
// queries over relational tables and wrapped external sources that are
// re-evaluated differentially as the data changes, notifying subscribers
// of exactly what changed.
//
// It is a from-scratch reproduction of "Differential Evaluation of
// Continual Queries" (Liu, Pu, Barga, Zhou; ICDCS 1996). A continual
// query is a triple (Q, Tcq, Stop): a SELECT query, a triggering
// condition (a period, an update count, or an epsilon specification
// bounding the magnitude of unseen changes), and a termination
// condition. After a query's initial execution, refreshes are computed
// by the Differential Re-evaluation Algorithm (DRA) over the update
// stream — not by rescanning base data.
//
// # Quick start
//
//	db := continual.Open()
//	defer db.Close()
//	_ = db.Exec(`CREATE TABLE stocks (name STRING, price FLOAT)`)
//	_ = db.Exec(`INSERT INTO stocks VALUES ('DEC', 150), ('IBM', 75)`)
//
//	sub, _ := db.Register("expensive", `SELECT * FROM stocks WHERE price > 120`)
//	_ = db.Exec(`INSERT INTO stocks VALUES ('MAC', 130)`)
//	db.Poll()
//	change := <-sub.Updates() // change.Inserted == [["MAC", 130]]
package continual

import (
	"errors"
	"fmt"
	"time"

	"github.com/diorama/continual/internal/cq"
	"github.com/diorama/continual/internal/diom"
	"github.com/diorama/continual/internal/dra"
	"github.com/diorama/continual/internal/durable"
	"github.com/diorama/continual/internal/epsilon"
	"github.com/diorama/continual/internal/guard"
	"github.com/diorama/continual/internal/obs"
	"github.com/diorama/continual/internal/sql"
	"github.com/diorama/continual/internal/storage"
	"github.com/diorama/continual/internal/wal"
)

// Mode selects what each refresh of a continual query delivers.
type Mode int

// Result modes (Section 4.3 of the paper, step 4).
const (
	// Differential delivers only the changes since the previous result.
	Differential Mode = iota + 1
	// Complete delivers the full current result (maintained
	// incrementally, not recomputed).
	Complete
	// Deletions delivers only tuples that left the result.
	Deletions
)

// DB is an embedded continual query engine instance.
type DB struct {
	store    *storage.Store
	manager  *cq.Manager
	mediator *diom.Mediator
	metrics  *obs.Registry
	durable  *durable.System // nil for in-memory engines
}

// Options tune engine construction for OpenWith.
type Options struct {
	// Parallelism is the refresh worker-pool size used when a poll
	// round fires several queries: 0 means GOMAXPROCS, 1 refreshes
	// serially. Each query's update sequence stays monotonic at any
	// setting; only the relative order of different queries'
	// notifications is unspecified when Parallelism > 1.
	Parallelism int
	// Strategy forces the refresh pipeline for SPJ queries: "auto" (or
	// empty, the default) picks by cost model per query and adapts as
	// the workload drifts; "truth-table", "incremental", and
	// "propagate" force one pipeline. A forced strategy a query cannot
	// run falls back to auto for that query, logged and counted in
	// cq.maintainer.fallbacks.
	Strategy string
	// Push enables commit-driven reactive refresh: every committed
	// transaction is routed immediately to the continual queries whose
	// operand tables it touched, their triggers evaluated and — when
	// fired — their refreshes dispatched on a worker pool, without
	// waiting for the next Poll tick. Bursts coalesce (one refresh
	// covers many commits) and notification latency drops from the
	// poll interval to the refresh cost itself. Poll/Start remain
	// available and are still needed for time-based (TriggerEvery)
	// queries and as the overflow fallback; running both is safe —
	// each query's update sequence stays gap-free and monotonic.
	Push bool
	// PushQueue bounds the push dispatch queue (default 1024). A queued
	// query coalesces further commits instead of re-queueing, so any
	// capacity at or above the number of registered queries makes
	// overflow — and therefore poll fallback — impossible.
	PushQueue int

	// DataDir makes the engine durable (OpenDurable only): committed
	// transactions and CQ executions append their deltas to a
	// write-ahead log in this directory before applying, and restarts
	// recover by loading the newest checkpoint and replaying the tail.
	// OpenWith ignores it — the in-memory constructors stay in-memory.
	DataDir string
	// Fsync is the WAL durability policy: "always" (default — every
	// acknowledged commit survives a crash), "interval" (background
	// sync; a crash may lose the last interval), or "never" (OS
	// decides; for benchmarks).
	Fsync string
	// CheckpointEvery takes an automatic background checkpoint after
	// that many committed transactions; 0 checkpoints only on Close and
	// explicit Checkpoint calls.
	CheckpointEvery int

	// RefreshBudget bounds each query refresh's wall time. A refresh
	// that exceeds the budget is abandoned (it finishes in the
	// background and is counted in cq.refresh.timeouts), recorded as a
	// failure on the query, and retried differentially by a later
	// trigger. 0 disables deadlines; panic isolation is always on
	// regardless.
	RefreshBudget time.Duration
	// QuarantineAfter is the consecutive-failure count after which a
	// query is quarantined: skipped by poll and push under a capped
	// exponential backoff, then probed; a successful probe catches up
	// differentially and fully heals it. 0 means the default (3);
	// negative disables quarantine.
	QuarantineAfter int
	// SoftDeltaRows / HardDeltaRows are degraded-mode watermarks on the
	// retained differential rows across all tables (0 disables). At the
	// soft watermark the engine sheds load: emergency GC runs and
	// push-based refresh coalesces back to polling. At the hard
	// watermark writes are rejected with ErrOverloaded until usage
	// recovers below the soft level.
	SoftDeltaRows, HardDeltaRows int
	// SoftDeltaBytes / HardDeltaBytes are the same watermarks in
	// approximate retained bytes (0 disables).
	SoftDeltaBytes, HardDeltaBytes int64

	// ShareTemplates lets queries that differ only in comparison
	// constants (SELECT * FROM quotes WHERE price > X for varying X)
	// share one differential plan: the engine evaluates the
	// constant-stripped template once per refresh round and routes each
	// template delta row to the matching subscribers through a
	// parameter index, so a round's cost scales with the number of
	// distinct templates, not the number of registered queries. Every
	// query keeps its own update sequence, trigger, journal entries and
	// health state.
	ShareTemplates bool
}

// guardPolicy translates the public overload-protection options.
func (o Options) guardPolicy() guard.Policy {
	return guard.Policy{Budget: o.RefreshBudget, FailureThreshold: o.QuarantineAfter}
}

// watermarks translates the public degraded-mode options.
func (o Options) watermarks() storage.Watermarks {
	return storage.Watermarks{
		SoftRows:  o.SoftDeltaRows,
		HardRows:  o.HardDeltaRows,
		SoftBytes: o.SoftDeltaBytes,
		HardBytes: o.HardDeltaBytes,
	}
}

// ErrOverloaded is returned by Exec when the engine is past its hard
// delta watermark (Options.HardDeltaRows/HardDeltaBytes): writes are
// refused until enough retained differential state is consumed or
// collected. Test with errors.Is.
var ErrOverloaded = storage.ErrOverloaded

// Open creates an empty engine with default options. The engine is
// instrumented: every layer reports into a metrics registry readable via
// Stats, WriteStats and StatsHandler. The hot-path cost is a handful of
// atomic adds per refresh.
func Open() *DB { return OpenWith(Options{}) }

// OpenWith creates an empty engine with explicit options.
func OpenWith(opts Options) *DB {
	store := storage.NewStore()
	reg := obs.NewRegistry()
	store.Instrument(reg)
	// An unknown strategy string falls back to auto: Options are often
	// populated from flags or config files, and a typo there should not
	// silently disable the engine — auto is correct for every query.
	strat, err := dra.ParseStrategy(opts.Strategy)
	if err != nil {
		strat = dra.StrategyAuto
	}
	store.SetWatermarks(opts.watermarks())
	manager := cq.NewManagerConfig(store, cq.Config{
		UseDRA:      true,
		AutoGC:      true,
		Parallelism: opts.Parallelism,
		Strategy:    strat,
		Metrics:     reg,
		Push:        opts.Push,
		PushQueue:   opts.PushQueue,
		Guard:       opts.guardPolicy(),

		ShareTemplates: opts.ShareTemplates,
	})
	return &DB{
		store:    store,
		manager:  manager,
		mediator: diom.NewMediator(store),
		metrics:  reg,
	}
}

// OpenDurable opens (or creates) a durable engine rooted at
// opts.DataDir. Committed state survives restarts: recovery loads the
// newest checkpoint, replays the WAL tail, and resumes every continual
// query at its last logged execution, so the first Poll after a crash
// computes an ordinary differential catch-up over the missed window.
func OpenDurable(opts Options) (*DB, error) {
	if opts.DataDir == "" {
		return nil, errors.New("continual: OpenDurable needs Options.DataDir")
	}
	pol, err := wal.ParseFsyncPolicy(opts.Fsync)
	if err != nil {
		return nil, fmt.Errorf("continual: %w", err)
	}
	strat, err := dra.ParseStrategy(opts.Strategy)
	if err != nil {
		strat = dra.StrategyAuto
	}
	reg := obs.NewRegistry()
	sys, err := durable.Open(durable.Options{
		Dir:             opts.DataDir,
		Fsync:           pol,
		CheckpointEvery: opts.CheckpointEvery,
		Metrics:         reg,
		Watermarks:      opts.watermarks(),
		CQ: cq.Config{
			UseDRA:      true,
			AutoGC:      true,
			Parallelism: opts.Parallelism,
			Strategy:    strat,
			Metrics:     reg,
			Push:        opts.Push,
			PushQueue:   opts.PushQueue,
			Guard:       opts.guardPolicy(),

			ShareTemplates: opts.ShareTemplates,
		},
	})
	if err != nil {
		return nil, err
	}
	return &DB{
		store:    sys.Store,
		manager:  sys.Manager,
		mediator: diom.NewMediator(sys.Store),
		metrics:  reg,
		durable:  sys,
	}, nil
}

// RecoveryInfo reports what OpenDurable rebuilt.
type RecoveryInfo struct {
	// FromCheckpoint is true when a checkpoint seeded the state.
	FromCheckpoint bool
	// Records is the number of WAL records replayed past the cut.
	Records int
	// CQs is the number of continual queries resumed.
	CQs int
}

// HasState reports whether recovery found any prior state at all.
func (r RecoveryInfo) HasState() bool { return r.FromCheckpoint || r.Records > 0 }

// Recovery describes what opening this engine recovered (zero for
// in-memory engines and fresh data directories).
func (db *DB) Recovery() RecoveryInfo {
	if db.durable == nil {
		return RecoveryInfo{}
	}
	return RecoveryInfo{
		FromCheckpoint: db.durable.Recovery.FromCheckpoint,
		Records:        db.durable.Recovery.Records,
		CQs:            db.durable.Recovery.CQs,
	}
}

// Checkpoint durably snapshots the store, the CQ registry, and the log
// position, truncating the replay work a future recovery must do.
// Errors for in-memory engines.
func (db *DB) Checkpoint() error {
	if db.durable == nil {
		return errors.New("continual: Checkpoint needs a durable engine (OpenDurable)")
	}
	return db.durable.Checkpoint()
}

// Close shuts the engine down: the background loop stops and all
// subscription channels close. A durable engine writes a final
// checkpoint first, so its next Open replays nothing.
func (db *DB) Close() error {
	if db.durable != nil {
		return db.durable.Close()
	}
	return db.manager.Close()
}

// Exec runs a DDL or DML statement (CREATE TABLE, DROP TABLE, INSERT,
// UPDATE, DELETE).
func (db *DB) Exec(statement string) error {
	stmt, err := sql.Parse(statement)
	if err != nil {
		return err
	}
	switch s := stmt.(type) {
	case *sql.CreateTableStmt:
		return db.execCreateTable(s)
	case *sql.DropTableStmt:
		// Through the manager: refused while CQs still read the table
		// or a materializing CQ produces it.
		return db.manager.DropTable(s.Table)
	case *sql.InsertStmt:
		return db.execInsert(s)
	case *sql.UpdateStmt:
		return db.execUpdate(s)
	case *sql.DeleteStmt:
		return db.execDelete(s)
	case *sql.CreateCQStmt:
		return errors.New("continual: use RegisterSQL for CREATE CONTINUAL QUERY")
	case *sql.SelectStmt:
		return errors.New("continual: use Query for SELECT")
	default:
		return fmt.Errorf("continual: unsupported statement %T", stmt)
	}
}

// Query runs a one-shot SELECT and returns the materialized rows.
func (db *DB) Query(query string) (*Rows, error) {
	rel, err := db.queryRelation(query)
	if err != nil {
		return nil, err
	}
	return fromRelation(rel), nil
}

// Option configures a continual query registration.
type Option func(*cq.Def) error

// TriggerEvery refreshes the query every n committed transactions
// (logical clock ticks).
func TriggerEvery(n int64) Option {
	return func(d *cq.Def) error {
		if n <= 0 {
			return errors.New("continual: TriggerEvery needs n > 0")
		}
		d.Trigger = sql.TriggerSpec{Kind: sql.TriggerEvery, Every: n}
		return nil
	}
}

// TriggerUpdates refreshes the query after n update rows have touched its
// operand tables.
func TriggerUpdates(n int64) Option {
	return func(d *cq.Def) error {
		if n <= 0 {
			return errors.New("continual: TriggerUpdates needs n > 0")
		}
		d.Trigger = sql.TriggerSpec{Kind: sql.TriggerUpdates, Updates: n}
		return nil
	}
}

// TriggerEpsilon refreshes the query when the accumulated net change of
// the expression (e.g. "amount") across unseen updates reaches bound —
// the paper's epsilon specification (Section 3.2).
func TriggerEpsilon(bound float64, expr string) Option {
	return func(d *cq.Def) error {
		parsed, err := sql.ParseExpr(expr)
		if err != nil {
			return fmt.Errorf("continual: epsilon expression: %w", err)
		}
		d.Trigger = sql.TriggerSpec{Kind: sql.TriggerEpsilon, Bound: bound, On: parsed}
		return nil
	}
}

// EpsilonAbsolute switches epsilon accumulation from net change to
// absolute per-update magnitude (catches churn that nets to zero).
func EpsilonAbsolute() Option {
	return func(d *cq.Def) error {
		d.EpsilonMeasure = epsilon.MeasureAbsolute
		return nil
	}
}

// WithMode selects the notification mode.
func WithMode(m Mode) Option {
	return func(d *cq.Def) error {
		switch m {
		case Differential:
			d.Mode = sql.ModeDifferential
		case Complete:
			d.Mode = sql.ModeComplete
		case Deletions:
			d.Mode = sql.ModeDeletions
		default:
			return fmt.Errorf("continual: unknown mode %d", m)
		}
		return nil
	}
}

// StopAfter terminates the continual query after n executions (the
// initial execution counts as 1).
func StopAfter(n int64) Option {
	return func(d *cq.Def) error {
		if n <= 0 {
			return errors.New("continual: StopAfter needs n > 0")
		}
		d.Stop = sql.StopSpec{AfterN: n}
		return nil
	}
}

// NotifyEmpty delivers refreshes even when nothing changed.
func NotifyEmpty() Option {
	return func(d *cq.Def) error {
		d.NotifyEmpty = true
		return nil
	}
}

// Register installs a continual query and returns a subscription. The
// query's initial result is available immediately via Subscription.Result.
// The default trigger refreshes on every update batch; the default mode
// is Differential.
func (db *DB) Register(name, query string, opts ...Option) (*Subscription, error) {
	def := cq.Def{Name: name, Query: query}
	for _, opt := range opts {
		if err := opt(&def); err != nil {
			return nil, err
		}
	}
	initial, err := db.manager.Register(def)
	if err != nil {
		return nil, err
	}
	return db.subscribe(name, initial)
}

// RegisterSQL installs a continual query from a CREATE CONTINUAL QUERY
// statement:
//
//	CREATE CONTINUAL QUERY banksum AS
//	  SELECT SUM(amount) AS total FROM accounts
//	  TRIGGER EPSILON 500000 ON amount
//	  MODE COMPLETE
//	  STOP AFTER 100
func (db *DB) RegisterSQL(statement string) (*Subscription, error) {
	stmt, err := sql.Parse(statement)
	if err != nil {
		return nil, err
	}
	create, ok := stmt.(*sql.CreateCQStmt)
	if !ok {
		return nil, errors.New("continual: expected CREATE CONTINUAL QUERY")
	}
	initial, err := db.manager.Register(cq.Def{
		Name:    create.Name,
		Select:  create.Select,
		Trigger: create.Trigger,
		Mode:    create.Mode,
		Stop:    create.Stop,
	})
	if err != nil {
		return nil, err
	}
	return db.subscribe(create.Name, initial)
}

// Poll evaluates every registered trigger against the pending updates and
// refreshes the queries whose condition fired, synchronously. It returns
// the number of refreshes.
func (db *DB) Poll() int {
	n, _ := db.manager.Poll()
	return n
}

// Start launches a background loop calling Poll every interval. Close
// stops it.
func (db *DB) Start(interval time.Duration) error { return db.manager.Start(interval) }

// FlushPush blocks until every commit already routed through the push
// pipeline has dispatched its refresh — the quiescence barrier for
// callers that need "everything committed so far has notified" (tests,
// graceful shutdown). A no-op unless Options.Push is set.
func (db *DB) FlushPush() { db.manager.FlushPush() }

// CQNames lists registered continual queries.
func (db *DB) CQNames() []string { return db.manager.Names() }

// DropCQ removes a continual query and closes its subscriptions. A
// materializing CQ (SELECT ... INTO) takes its derived table with it;
// while other CQs still read that table the drop is refused and the
// error lists them.
func (db *DB) DropCQ(name string) error { return db.manager.Drop(name) }

// Tables lists the tables (including wrapped sources).
func (db *DB) Tables() []string { return db.store.TableNames() }

// DepNode describes one continual query's place in the cascade
// dependency DAG: the tables it reads, the table it materializes
// (SELECT ... INTO; empty for terminal queries), and its topological
// refresh stage.
type DepNode struct {
	CQ      string
	Sources []string
	Target  string
	Stage   int
}

// Deps snapshots the cascade dependency DAG in topological
// (stage, name) order.
func (db *DB) Deps() []DepNode {
	nodes := db.manager.Deps()
	out := make([]DepNode, len(nodes))
	for i, n := range nodes {
		out[i] = DepNode{CQ: n.CQ, Sources: n.Sources, Target: n.Target, Stage: n.Stage}
	}
	return out
}
