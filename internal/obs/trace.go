package obs

import (
	"sync"
	"time"
)

// Field is one key/value annotation on a span. Values are int64 — every
// quantity the engine traces (rows, terms, bytes, timestamps) is a
// count, which keeps spans allocation-light.
type Field struct {
	Key   string `json:"key"`
	Value int64  `json:"value"`
}

// Span is one timed region of a refresh. A span is owned by a single
// goroutine while open; once its root is finished and recorded it is
// immutable, so readers of TraceLog.Recent never race with writers.
type Span struct {
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Fields   []Field       `json:"fields,omitempty"`
	Children []*Span       `json:"children,omitempty"`

	log  *TraceLog // set on roots; recorded at Finish
	done bool
}

// SetField annotates the span. Nil-safe.
func (sp *Span) SetField(key string, value int64) {
	if sp == nil {
		return
	}
	sp.Fields = append(sp.Fields, Field{Key: key, Value: value})
}

// Child opens a sub-span. Nil-safe: a nil parent yields a nil child.
func (sp *Span) Child(name string) *Span {
	if sp == nil {
		return nil
	}
	c := &Span{Name: name, Start: time.Now()}
	sp.Children = append(sp.Children, c)
	return c
}

// Finish stamps the duration; on a root span it also records the
// completed trace into the owning log. Nil-safe and idempotent.
func (sp *Span) Finish() {
	if sp == nil || sp.done {
		return
	}
	sp.done = true
	sp.Duration = time.Since(sp.Start)
	if sp.log != nil {
		sp.log.record(sp)
	}
}

// TraceLog is a fixed-capacity ring buffer of recent finished root
// spans. Recording happens once per refresh (not per event), so a mutex
// is fine here. A nil *TraceLog is a valid no-op tracer.
type TraceLog struct {
	mu   sync.Mutex
	buf  []*Span
	next int
	n    int
}

// NewTraceLog creates a ring holding the last capacity root spans.
func NewTraceLog(capacity int) *TraceLog {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceLog{buf: make([]*Span, capacity)}
}

// Start opens a root span; Finish records it into the log. Nil-safe: a
// nil log yields a nil span and the whole trace disappears.
func (l *TraceLog) Start(name string) *Span {
	if l == nil {
		return nil
	}
	return &Span{Name: name, Start: time.Now(), log: l}
}

func (l *TraceLog) record(sp *Span) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf[l.next] = sp
	l.next = (l.next + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
}

// Recent returns the recorded traces, newest first. The returned spans
// are finished and must be treated as read-only.
func (l *TraceLog) Recent() []*Span {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]*Span, 0, l.n)
	for i := 0; i < l.n; i++ {
		idx := (l.next - 1 - i + len(l.buf)) % len(l.buf)
		out = append(out, l.buf[idx])
	}
	return out
}

// Len reports how many traces are recorded.
func (l *TraceLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}
