package continual

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func openStocks(t *testing.T) *DB {
	t.Helper()
	db := Open()
	t.Cleanup(func() { _ = db.Close() })
	if err := db.Exec(`CREATE TABLE stocks (name STRING, price FLOAT)`); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(`INSERT INTO stocks VALUES ('DEC', 150), ('QLI', 145), ('IBM', 75)`); err != nil {
		t.Fatal(err)
	}
	return db
}

func recvChange(t *testing.T, sub *Subscription) Change {
	t.Helper()
	select {
	case c := <-sub.Updates():
		return c
	case <-time.After(2 * time.Second):
		t.Fatal("no change within deadline")
		return Change{}
	}
}

func TestExecAndQuery(t *testing.T) {
	db := openStocks(t)
	rows, err := db.Query(`SELECT name, price FROM stocks WHERE price > 120`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 2 {
		t.Fatalf("rows = %d:\n%s", rows.Len(), rows)
	}
	if rows.Col("price") != 1 || rows.Col("nosuch") != -1 {
		t.Errorf("Col lookup broken: %v", rows.Columns)
	}
	if err := db.Exec(`UPDATE stocks SET price = 149 WHERE name = 'DEC'`); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(`DELETE FROM stocks WHERE name = 'QLI'`); err != nil {
		t.Fatal(err)
	}
	rows, _ = db.Query(`SELECT * FROM stocks WHERE price > 120`)
	if rows.Len() != 1 {
		t.Fatalf("after update/delete rows = %d", rows.Len())
	}
	if got := rows.Data[0][rows.Col("price")].(float64); got != 149 {
		t.Errorf("price = %v", got)
	}
}

func TestExecErrors(t *testing.T) {
	db := Open()
	defer func() { _ = db.Close() }()
	bad := []string{
		"SELECT 1",                       // SELECT through Exec
		"CREATE TABLE t (a NOPE)",        // bad type
		"INSERT INTO missing VALUES (1)", // missing table
		"UPDATE missing SET a = 1",       // missing table
		"DELETE FROM missing",            // missing table
		"garbage",                        // unparsable
	}
	for _, stmt := range bad {
		if err := db.Exec(stmt); err == nil {
			t.Errorf("Exec(%q) should fail", stmt)
		}
	}
	if err := db.Exec(`CREATE TABLE t (a INT)`); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(`INSERT INTO t VALUES (1, 2)`); err == nil {
		t.Error("arity mismatch should fail")
	}
	if err := db.Exec(`INSERT INTO t VALUES ('str')`); err == nil {
		t.Error("type mismatch should fail")
	}
	if err := db.Exec(`INSERT INTO t VALUES (1.5)`); err == nil {
		t.Error("non-integral float into INT should fail")
	}
	if err := db.Exec(`INSERT INTO t VALUES (2.0)`); err != nil {
		t.Errorf("integral float into INT should coerce: %v", err)
	}
}

func TestRegisterAndDifferentialUpdates(t *testing.T) {
	db := openStocks(t)
	sub, err := db.Register("expensive", `SELECT * FROM stocks WHERE price > 120`)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Initial().Len() != 2 {
		t.Fatalf("initial = %d", sub.Initial().Len())
	}

	if err := db.Exec(`INSERT INTO stocks VALUES ('MAC', 130)`); err != nil {
		t.Fatal(err)
	}
	if n := db.Poll(); n != 1 {
		t.Fatalf("Poll fired %d", n)
	}
	c := recvChange(t, sub)
	if len(c.Inserted) != 1 || c.Inserted[0][0] != "MAC" {
		t.Errorf("change = %+v", c)
	}

	// Modification (Example 1/2): DEC 150 -> 149 stays in the result.
	if err := db.Exec(`UPDATE stocks SET price = 149 WHERE name = 'DEC'`); err != nil {
		t.Fatal(err)
	}
	db.Poll()
	c = recvChange(t, sub)
	if len(c.Modified) != 1 {
		t.Fatalf("modified = %+v", c)
	}
	if c.Modified[0].Old[1].(float64) != 150 || c.Modified[0].New[1].(float64) != 149 {
		t.Errorf("modification = %+v", c.Modified[0])
	}

	res, err := sub.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Errorf("maintained result = %d", res.Len())
	}
}

func TestRegisterOptions(t *testing.T) {
	db := openStocks(t)
	if _, err := db.Register("bad", `SELECT * FROM stocks`, TriggerEvery(0)); err == nil {
		t.Error("TriggerEvery(0) should fail")
	}
	if _, err := db.Register("bad", `SELECT * FROM stocks`, StopAfter(0)); err == nil {
		t.Error("StopAfter(0) should fail")
	}
	if _, err := db.Register("bad", `SELECT * FROM stocks`, TriggerEpsilon(5, "not (")); err == nil {
		t.Error("bad epsilon expr should fail")
	}
	if _, err := db.Register("bad", `SELECT * FROM stocks`, WithMode(Mode(99))); err == nil {
		t.Error("unknown mode should fail")
	}
	sub, err := db.Register("ok", `SELECT * FROM stocks WHERE price > 100`,
		TriggerUpdates(2), WithMode(Complete), StopAfter(5), NotifyEmpty())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(`INSERT INTO stocks VALUES ('X1', 500)`); err != nil {
		t.Fatal(err)
	}
	if n := db.Poll(); n != 0 {
		t.Error("one update should not fire TriggerUpdates(2)")
	}
	if err := db.Exec(`INSERT INTO stocks VALUES ('X2', 600)`); err != nil {
		t.Fatal(err)
	}
	if n := db.Poll(); n != 1 {
		t.Error("two updates should fire")
	}
	c := recvChange(t, sub)
	if len(c.Complete) != 4 { // DEC, QLI, X1, X2
		t.Errorf("complete = %d rows", len(c.Complete))
	}
}

func TestRegisterSQLEpsilon(t *testing.T) {
	db := Open()
	defer func() { _ = db.Close() }()
	if err := db.Exec(`CREATE TABLE accounts (owner STRING, amount FLOAT)`); err != nil {
		t.Fatal(err)
	}
	sub, err := db.RegisterSQL(`CREATE CONTINUAL QUERY banksum AS
		SELECT SUM(amount) AS total FROM accounts
		TRIGGER EPSILON 500000 ON amount
		MODE COMPLETE`)
	if err != nil {
		t.Fatal(err)
	}
	_ = db.Exec(`INSERT INTO accounts VALUES ('alice', 400000)`)
	if db.Poll() != 0 {
		t.Error("400k should not trip a 500k epsilon")
	}
	_ = db.Exec(`INSERT INTO accounts VALUES ('bob', 200000)`)
	if db.Poll() != 1 {
		t.Error("600k should trip")
	}
	c := recvChange(t, sub)
	if len(c.Complete) != 1 || c.Complete[0][0].(float64) != 600000 {
		t.Errorf("sum notification = %+v", c)
	}
}

func TestStopAfterTerminatesSubscription(t *testing.T) {
	db := openStocks(t)
	sub, err := db.Register("short", `SELECT * FROM stocks WHERE price > 0`, StopAfter(2))
	if err != nil {
		t.Fatal(err)
	}
	_ = db.Exec(`INSERT INTO stocks VALUES ('A', 1)`)
	db.Poll()
	c := recvChange(t, sub)
	if !c.Terminated {
		t.Errorf("expected terminated change, got %+v", c)
	}
}

func TestFeedSource(t *testing.T) {
	db := Open()
	defer func() { _ = db.Close() }()
	feed, err := db.NewFeed("ticks",
		Column{Name: "sym", Type: String},
		Column{Name: "price", Type: Float},
	)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := db.Register("bigticks", `SELECT * FROM ticks WHERE price > 100`)
	if err != nil {
		t.Fatal(err)
	}
	if err := feed.Push("IBM", 75.0); err != nil {
		t.Fatal(err)
	}
	if err := feed.Push("DEC", 150.0); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Pump(); err != nil {
		t.Fatal(err)
	}
	db.Poll()
	c := recvChange(t, sub)
	if len(c.Inserted) != 1 || c.Inserted[0][0] != "DEC" {
		t.Errorf("feed change = %+v", c)
	}
	if err := feed.Push("X", struct{}{}); err == nil {
		t.Error("unsupported type should fail")
	}
}

func TestWatchDir(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "report.txt"), []byte("q3"), 0o644); err != nil {
		t.Fatal(err)
	}
	db := Open()
	defer func() { _ = db.Close() }()
	if err := db.WatchDir("files", dir); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Pump(); err != nil {
		t.Fatal(err)
	}
	sub, err := db.Register("watch", `SELECT path, size FROM files WHERE size > 0`)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Initial().Len() != 1 {
		t.Fatalf("initial files = %d", sub.Initial().Len())
	}
	if err := os.WriteFile(filepath.Join(dir, "new.txt"), []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Pump(); err != nil {
		t.Fatal(err)
	}
	db.Poll()
	c := recvChange(t, sub)
	if len(c.Inserted) != 1 || c.Inserted[0][0] != "new.txt" {
		t.Errorf("watch change = %+v", c)
	}
}

func TestBackgroundLoop(t *testing.T) {
	db := openStocks(t)
	sub, err := db.Register("bg", `SELECT * FROM stocks WHERE price > 120`)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Start(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(`INSERT INTO stocks VALUES ('NEW', 500)`); err != nil {
		t.Fatal(err)
	}
	c := recvChange(t, sub)
	if len(c.Inserted) != 1 {
		t.Errorf("bg change = %+v", c)
	}
}

func TestDropCQClosesUpdates(t *testing.T) {
	db := openStocks(t)
	sub, err := db.Register("temp", `SELECT * FROM stocks`)
	if err != nil {
		t.Fatal(err)
	}
	names := db.CQNames()
	if len(names) != 1 || names[0] != "temp" {
		t.Errorf("CQNames = %v", names)
	}
	if err := db.DropCQ("temp"); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-sub.Updates():
		if ok {
			t.Error("expected closed channel")
		}
	case <-time.After(time.Second):
		t.Error("channel not closed after drop")
	}
	if len(db.Tables()) != 1 {
		t.Errorf("Tables = %v", db.Tables())
	}
}

func TestListenAndServeWithMirror(t *testing.T) {
	server := openStocks(t)
	ln, err := server.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ln.Close() }()
	if ln.Addr() == "" {
		t.Fatal("empty bound address")
	}

	mirror, err := DialMirror(ln.Addr(), `SELECT * FROM stocks WHERE price > 120`)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mirror.Close() }()
	if mirror.Result().Len() != 2 {
		t.Fatalf("initial mirror = %d", mirror.Result().Len())
	}
	snapshotBytes := mirror.BytesReceived()
	if snapshotBytes == 0 {
		t.Error("snapshot should have shipped bytes")
	}

	if err := server.Exec(`INSERT INTO stocks VALUES ('MAC', 130)`); err != nil {
		t.Fatal(err)
	}
	if err := server.Exec(`DELETE FROM stocks WHERE name = 'QLI'`); err != nil {
		t.Fatal(err)
	}
	change, err := mirror.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if len(change.Inserted) != 1 || len(change.Deleted) != 1 {
		t.Errorf("mirror change = %+v", change)
	}
	if mirror.Result().Len() != 2 { // DEC + MAC
		t.Errorf("mirror result = %d", mirror.Result().Len())
	}
	// Delta refresh ships far fewer bytes than the snapshot did.
	if got := mirror.BytesReceived() - snapshotBytes; got >= snapshotBytes {
		t.Errorf("delta refresh shipped %d bytes, snapshot was %d", got, snapshotBytes)
	}

	if _, err := DialMirror(ln.Addr(), "not sql"); err == nil {
		t.Error("bad query should fail")
	}
	if _, err := DialMirror("127.0.0.1:1", "SELECT * FROM stocks"); err == nil {
		t.Error("dead address should fail")
	}
}

func TestSubscriptionAccessorsAndRefresh(t *testing.T) {
	db := openStocks(t)
	sub, err := db.Register("acc", `SELECT * FROM stocks WHERE price > 120`, TriggerEvery(1000))
	if err != nil {
		t.Fatal(err)
	}
	if sub.Name() != "acc" {
		t.Errorf("Name = %q", sub.Name())
	}
	// The trigger won't fire for ages, but Refresh forces re-evaluation.
	if err := db.Exec(`INSERT INTO stocks VALUES ('HI', 500)`); err != nil {
		t.Fatal(err)
	}
	if n := db.Poll(); n != 0 {
		t.Errorf("poll fired %d", n)
	}
	if err := sub.Refresh(); err != nil {
		t.Fatal(err)
	}
	c := recvChange(t, sub)
	if len(c.Inserted) != 1 {
		t.Errorf("forced refresh change = %+v", c)
	}
	if err := sub.Drop(); err != nil {
		t.Fatal(err)
	}
	if err := sub.Refresh(); err == nil {
		t.Error("refresh after drop should fail")
	}
}

func TestEpsilonAbsoluteOption(t *testing.T) {
	db := Open()
	defer func() { _ = db.Close() }()
	if err := db.Exec(`CREATE TABLE accounts (owner STRING, amount FLOAT)`); err != nil {
		t.Fatal(err)
	}
	// +100 then -100 nets to zero; absolute accumulation still trips 150.
	sub, err := db.Register("churn", `SELECT SUM(amount) AS total FROM accounts`,
		TriggerEpsilon(150, "amount"), EpsilonAbsolute(), NotifyEmpty())
	if err != nil {
		t.Fatal(err)
	}
	_ = sub
	if err := db.Exec(`INSERT INTO accounts VALUES ('a', 100)`); err != nil {
		t.Fatal(err)
	}
	if n := db.Poll(); n != 0 {
		t.Error("100 absolute should not trip 150")
	}
	if err := db.Exec(`DELETE FROM accounts WHERE owner = 'a'`); err != nil {
		t.Fatal(err)
	}
	if n := db.Poll(); n != 1 {
		t.Error("200 absolute churn should trip 150")
	}
}

func TestRowsStringAndQueryOrderBy(t *testing.T) {
	db := openStocks(t)
	rows, err := db.Query(`SELECT name, price FROM stocks ORDER BY price DESC LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 2 || rows.Data[0][0] != "DEC" {
		t.Fatalf("ordered rows = %+v", rows.Data)
	}
	out := rows.String()
	for _, want := range []string{"name", "price", "DEC"} {
		found := false
		for i := 0; i+len(want) <= len(out); i++ {
			if out[i:i+len(want)] == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
