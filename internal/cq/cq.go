// Package cq implements the continual query manager. A continual query
// (Section 3.1) is a triple (Q, Tcq, Stop): a query, a triggering
// condition, and a termination condition. The manager owns the result
// sequence Q(S1), Q(S2), ... — it runs the initial execution at
// registration, evaluates trigger conditions differentially over the
// update stream (Section 5.3), re-evaluates fired queries through the DRA
// engine (Section 4.3), assembles the per-mode answer (differential,
// complete, or deletions-only), garbage collects differential relations
// past the system active delta zone (Section 5.4), and delivers
// notifications to subscribers.
package cq

import (
	"errors"
	"fmt"
	"log"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/diorama/continual/internal/algebra"
	"github.com/diorama/continual/internal/batch"
	"github.com/diorama/continual/internal/cascade"
	"github.com/diorama/continual/internal/delta"
	"github.com/diorama/continual/internal/dra"
	"github.com/diorama/continual/internal/epsilon"
	"github.com/diorama/continual/internal/guard"
	"github.com/diorama/continual/internal/obs"
	"github.com/diorama/continual/internal/push"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/sql"
	"github.com/diorama/continual/internal/storage"
	"github.com/diorama/continual/internal/vclock"
)

// Errors returned by the manager.
var (
	ErrDuplicateCQ = errors.New("cq: a continual query with this name exists")
	ErrNoSuchCQ    = errors.New("cq: no such continual query")
	ErrTerminated  = errors.New("cq: continual query has terminated")
	ErrClosed      = errors.New("cq: manager is closed")
	// ErrNameCollision marks a registration (or DDL through the manager)
	// that would make a continual-query name and a table name shadow each
	// other: CQ names, INTO targets and base tables share one namespace.
	ErrNameCollision = errors.New("cq: name collides across queries and tables")
)

// Notification is one element of a CQ's result sequence, shaped by the
// query's result mode (Section 4.3 step 4).
type Notification struct {
	CQName string
	// Seq numbers the executions; the initial execution is 1.
	Seq int
	// ExecTS is the logical time of this execution.
	ExecTS vclock.Timestamp
	Mode   sql.ResultMode
	// Initial marks the first execution (full evaluation; Inserted holds
	// the whole result).
	Initial bool

	// Inserted/Deleted/Modified describe the difference from the previous
	// result (set in ModeDifferential; Deleted also in ModeDeletions).
	Inserted *relation.Relation
	Deleted  *relation.Relation
	Modified []delta.Row

	// Complete holds the full current result (set in ModeComplete).
	Complete *relation.Relation

	// Terminated reports the Stop condition became true; this is the last
	// notification for the CQ.
	Terminated bool

	// Dropped is the number of notifications this subscriber lost since
	// the one it last received (full buffer under a backpressure policy,
	// or the catch-up gap after a Resubscribe). Zero means the sequence
	// is gap-free. Subscribers that care re-fetch Result() or treat
	// Dropped > 0 as a rebase signal.
	Dropped int
}

// Empty reports whether the notification carries no change.
func (n Notification) Empty() bool {
	return !n.Initial &&
		(n.Inserted == nil || n.Inserted.Len() == 0) &&
		(n.Deleted == nil || n.Deleted.Len() == 0) &&
		len(n.Modified) == 0 &&
		n.Complete == nil
}

// Def defines a continual query for registration.
type Def struct {
	Name    string
	Query   string // SELECT text; alternatively set Select
	Select  *sql.SelectStmt
	Trigger sql.TriggerSpec
	Mode    sql.ResultMode
	Stop    sql.StopSpec
	// EpsilonMeasure selects net (default) or absolute accumulation for
	// TriggerEpsilon.
	EpsilonMeasure epsilon.Measure
	// NotifyEmpty delivers refreshes that produced no change (off by
	// default: Section 5.2 — "nothing needs to be returned").
	NotifyEmpty bool
}

// DeliveryPolicy selects what deliver does when a channel subscriber's
// buffer is full. Whatever the policy, sends never block a refresh —
// a slow consumer costs itself notifications, never the engine.
type DeliveryPolicy int

const (
	// DropNewest (the default, and the pre-policy behavior): discard
	// the new notification; the consumer keeps its queued backlog and
	// learns about the gap from Dropped on the next delivery.
	DropNewest DeliveryPolicy = iota
	// DropOldest: evict the oldest queued notification to make room
	// for the new one — the consumer always sees the freshest state,
	// with Dropped marking the gap.
	DropOldest
	// Disconnect: close the channel and detach the subscriber. The
	// final resume token (Sub.Resume) lets it reattach with
	// Manager.Resubscribe and catch up differentially.
	Disconnect
)

// subscriber is one notification sink: either a channel (sends never
// block: a full buffer invokes the delivery policy) or a synchronous
// callback. All fields below ch/fn/policy are guarded by the owning
// instance's mu.
type subscriber struct {
	ch     chan Notification
	fn     func(n Notification, closed bool)
	policy DeliveryPolicy
	// dropped is the lifetime drop count; droppedSince counts drops
	// since the last successful delivery and is folded into the next
	// delivered Notification.Dropped (gap detection).
	dropped      int
	droppedSince int
	// lastSeq/lastTS identify the newest notification this subscriber
	// actually received — the resume point after Disconnect.
	lastSeq int
	lastTS  vclock.Timestamp
	// disconnected marks a subscriber detached by policy (channel
	// already closed) or by a panicking callback.
	disconnected bool
}

// SubOptions configures a subscription (SubscribeOpts, Resubscribe).
type SubOptions struct {
	// Buffer is the channel capacity (minimum 1).
	Buffer int
	// Policy is the full-buffer backpressure policy.
	Policy DeliveryPolicy
}

// ResumeToken identifies where a disconnected subscriber left off.
type ResumeToken struct {
	CQ  string
	Seq int // last sequence number received (0 = none)
	TS  vclock.Timestamp
}

// Sub is a subscription handle with policy-aware state: the channel,
// cancellation, and — after a Disconnect — the resume token.
type Sub struct {
	inst *instance
	s    *subscriber
}

// Ch returns the notification channel. It is closed when the CQ is
// dropped, the manager closes, or the Disconnect policy fires.
func (s *Sub) Ch() <-chan Notification { return s.s.ch }

// Cancel detaches the subscription (idempotent; safe after disconnect).
func (s *Sub) Cancel() {
	s.inst.mu.Lock()
	defer s.inst.mu.Unlock()
	for i, x := range s.inst.subs {
		if x == s.s {
			s.inst.subs = append(s.inst.subs[:i], s.inst.subs[i+1:]...)
			break
		}
	}
}

// Disconnected reports whether the Disconnect policy detached this
// subscription (its channel is closed).
func (s *Sub) Disconnected() bool {
	s.inst.mu.Lock()
	defer s.inst.mu.Unlock()
	return s.s.disconnected
}

// Resume returns the token identifying the last notification this
// subscription received, for Manager.Resubscribe.
func (s *Sub) Resume() ResumeToken {
	s.inst.mu.Lock()
	defer s.inst.mu.Unlock()
	return ResumeToken{CQ: s.inst.def.Name, Seq: s.s.lastSeq, TS: s.s.lastTS}
}

// CQState is a read-only snapshot of a registered CQ, for inspection.
type CQState struct {
	Name       string
	Seq        int
	LastExec   vclock.Timestamp
	Terminated bool
	ResultLen  int
	Divergence float64
	// Strategy is the refresh pipeline currently in effect for a
	// prepared SPJ CQ ("truth-table", "incremental", "propagate");
	// empty for CQs maintained by a non-SPJ state keeper or evaluated
	// without DRA.
	Strategy string
	// LastErr is the error of the most recent failed trigger evaluation
	// or refresh for this CQ (nil after a successful refresh). Poll
	// isolates per-CQ failures — the round continues for the others —
	// so this is where a single CQ's persistent failure surfaces.
	// Panics and budget timeouts land here too, as *guard.PanicError
	// and guard.ErrBudgetExceeded wrappers.
	LastErr error
	// Health is the guard state: "healthy", "probation", "quarantined".
	Health string
	// Failures is the consecutive refresh-failure count feeding the
	// quarantine breaker (resets on success).
	Failures int
	// NotifsDropped counts notifications this CQ's subscribers lost to
	// full buffers (all subscribers, lifetime).
	NotifsDropped int64
	// Template is the shared-template fingerprint this CQ subscribes to
	// (Config.ShareTemplates), 0 when the CQ runs a private plan.
	Template uint64
	// TemplateMates is the current member count of the CQ's template
	// group, this CQ included (0 when unshared).
	TemplateMates int
}

// instance is the manager's record of one registered CQ.
type instance struct {
	def     Def
	plan    algebra.Plan
	tables  []string
	mode    sql.ResultMode
	trigger sql.TriggerSpec
	stop    sql.StopSpec
	// queryText is the canonical rendering of the query, captured at
	// registration; the durable registry persists it and re-parses it at
	// recovery.
	queryText string
	// into is the materialization target (SELECT ... INTO): each refresh
	// commits the result delta into this derived base table. Empty for
	// terminal queries; immutable after the instance becomes visible.
	// The cascade refresh stage is NOT cached here — it lives in the
	// dependency DAG (Manager.dag, self-locked) because a later
	// registration can bump it retroactively: a producer adopting an
	// orphaned target table promotes that table's existing readers one
	// stage down the pipeline.
	into string

	// mu guards the mutable refresh state below (and subs). Lock order
	// is Manager.mu before instance.mu; the refresh workers of a Poll
	// round take only instance.mu, which is what lets DRA re-evaluation
	// and notification delivery run outside the manager lock.
	mu          sync.Mutex
	lastExec    vclock.Timestamp // timestamp of the last execution
	lastObs     vclock.Timestamp // high-water mark of observed updates
	prev        *relation.Relation
	seq         int
	updatesSeen int64
	lastErr     error                          // see CQState.LastErr
	eps         map[string]*epsilon.Accountant // per monitored table
	subs        []*subscriber
	// maint maintains non-SPJ roots incrementally when the shape allows
	// (SUM/COUNT/AVG aggregates without HAVING; DISTINCT); nil when the
	// query is SPJ or needs the Propagate fallback.
	maint maintainer
	// prepared is the compile-once refresh pipeline for SPJ queries
	// (dra.Prepare): compiled predicates, join bindings, the cross-
	// refresh operand index cache, and the refresh strategy. Nil when
	// maint is set or DRA is off.
	prepared *dra.Prepared

	// terminated is atomic (not under mu) so the manager-lock paths
	// (gauge recomputation, GC horizon) can read it while a refresh
	// worker holds this instance's mu.
	terminated atomic.Bool
	// dropped is set by Drop under mu and read by refresh attempts
	// after they acquire mu (and atomically by skip paths): a dropped
	// instance must not journal executions or mutate state, or a
	// drop racing an in-flight refresh would write an execution record
	// after the drop record and corrupt recovery.
	dropped atomic.Bool
	// notifDropped is the per-CQ total of notifications lost to full
	// subscriber buffers (CQState.NotifsDropped). Guarded by mu.
	notifDropped int64

	// group is the shared-template group this CQ subscribes to
	// (Config.ShareTemplates), nil when unshared; groupParams is the
	// member's constant vector, aligned with the template's slots.
	// Written at registration/resume under m.mu before the instance is
	// visible, cleared by Drop under inst.mu.
	group       *templateGroup
	groupParams []relation.Value
	// pendingSync marks a recovered member that has not yet rejoined
	// the template stream: its next refresh is a private full-plan
	// differential catch-up, after which buffered template batches it
	// covers are discarded (afterRefreshLocked). Guarded by mu.
	pendingSync bool
	// needsReconcile marks a recovered materializing CQ whose first
	// refresh must reconcile the whole INTO target against the new
	// result instead of trusting the delta: the crash may sit between
	// the last materialize commit and its execution record
	// (materialize.go). Guarded by mu.
	needsReconcile bool

	// breaker is the CQ's quarantine circuit breaker — a self-locked
	// leaf, consultable under any manager/instance lock.
	breaker *guard.Breaker
	// guardErr records a guard verdict (budget timeout) that could not
	// be written to lastErr because the late refresh still holds mu.
	// Cleared at the start of every guarded attempt; read by State.
	guardErr atomic.Pointer[error]
}

// maintainer abstracts the incremental state keepers of the dra package
// (IncrementalAggregate, IncrementalDistinct).
type maintainer interface {
	Step(ctx *dra.Context, execTS vclock.Timestamp) (*dra.Result, error)
	Result() *relation.Relation
}

// Config tunes the manager.
type Config struct {
	// UseDRA selects differential re-evaluation; false uses complete
	// re-evaluation (the baseline), useful for benchmarking.
	UseDRA bool
	// Engine supplies the DRA engine; nil gets a default engine.
	Engine *dra.Engine
	// AutoGC collects differential-relation garbage after every refresh
	// round, at the system active delta zone boundary.
	AutoGC bool
	// Strategy selects the refresh pipeline for prepared SPJ CQs
	// (dra.Prepare): StrategyAuto (the default) applies the cost model
	// and re-picks adaptively; the other values force one pipeline. A
	// forced strategy a CQ's plan cannot run falls back to Auto at
	// registration — logged through Logf and counted in
	// cq.maintainer.fallbacks.
	Strategy dra.Strategy
	// IncrementalJoins maintains join CQs with persistent per-operand
	// replicas and mutable indexes instead of the paper's truth-table
	// re-evaluation.
	//
	// Deprecated: IncrementalJoins is an alias for Strategy =
	// dra.StrategyIncremental, kept for pre-strategy callers. It is
	// ignored when Strategy is set to anything but StrategyAuto.
	IncrementalJoins bool
	// Logf receives the manager's rare diagnostic lines (strategy
	// fallbacks at registration). Nil uses the standard library logger.
	Logf func(format string, args ...any)
	// Parallelism bounds the worker pool Poll uses to refresh the fired
	// CQs of a round concurrently. 0 (the default) uses GOMAXPROCS;
	// 1 restores the serial refresh order. Whatever the pool size,
	// per-CQ Seq stays monotonic and each CQ's notifications are
	// delivered in order — only cross-CQ ordering within a round is
	// unspecified.
	Parallelism int
	// Metrics attaches the manager (and its engine, unless the engine is
	// already instrumented) to an obs registry. Nil disables
	// instrumentation entirely: every hook reduces to a nil check, so
	// the uninstrumented refresh path is benchmarkable against the
	// instrumented one.
	Metrics *obs.Registry
	// Journal, when set, receives every registry mutation and every
	// delivered execution in write-ahead order (see Journal). Nil on
	// in-memory managers.
	Journal Journal
	// Push enables commit-driven reactive refresh: the store's commit
	// hook publishes every committed delta into a router that evaluates
	// the affected CQs' triggers immediately instead of waiting for the
	// next Poll tick. The poll loop remains the fallback — time-based
	// (TriggerEvery) CQs are never routed (a commit says nothing about
	// the clock), and queue overflow degrades to batched polling — so
	// callers should keep Start running at a relaxed interval. Every
	// invariant of the poll path carries over: per-CQ Seq stays
	// gap-free and monotonic under mixed push/poll, notifications
	// journal before delivery, and a refresh delivered by push is
	// skipped by a racing Poll (and vice versa) rather than duplicated.
	Push bool
	// PushQueue bounds the push router's ready queue (default
	// push.DefaultQueue). A queued CQ coalesces later commits instead
	// of re-queueing, so capacity >= registered CQs makes overflow
	// impossible.
	PushQueue int
	// Guard configures overload protection: the per-refresh deadline
	// (Budget; zero disables deadlines but panic isolation is always
	// on) and the quarantine circuit breaker (FailureThreshold,
	// BackoffBase/Max/Jitter). The zero value gets guard defaults:
	// no budget, quarantine after 3 consecutive failures.
	Guard guard.Policy
	// MaxCascadeDepth bounds the length of materialization pipelines
	// (SELECT ... INTO chains): a registration whose derived table would
	// sit more than this many commit hops from the originating client
	// write is rejected with cascade.ErrTooDeep. 0 uses
	// cascade.DefaultMaxDepth.
	MaxCascadeDepth int
	// ShareTemplates deduplicates structurally identical CQs: queries
	// differing only in comparison constants (`price > 5` vs
	// `price > 90`) share one prepared template plan and one operand
	// index cache, with a parameter-dispatch stage routing each
	// template delta row to the matching subscribers (see template.go).
	// Per-CQ triggers, Seq, journaling, health and delivery semantics
	// are unchanged; queries whose shape cannot be templated register
	// unshared exactly as with ShareTemplates off.
	ShareTemplates bool
}

// Manager owns the registered continual queries over one store.
type Manager struct {
	store *storage.Store
	cfg   Config
	met   *metrics // nil when Config.Metrics is nil

	mu     sync.Mutex
	cqs    map[string]*instance
	closed bool
	// dag is the cascade dependency registry: every CQ enters it as a
	// reader of its source tables, materializing CQs also as the
	// producer of their INTO target. It is a self-locked leaf,
	// consultable under (or without) mu.
	dag *cascade.Registry
	// templates is the shared-template registry (Config.ShareTemplates):
	// template fingerprint → group. Guarded by mu; each group's own
	// refresh state lives behind its leaf lock (see template.go).
	templates map[uint64]*templateGroup

	// router is the push subsystem (nil unless Config.Push): it owns
	// the store's commit hook and the dispatcher workers. Guarded by mu
	// for replacement; the router itself is concurrency-safe.
	router *push.Router
	// pushGCTicks throttles AutoGC on the push path: collecting after
	// every dispatch would cost O(CQs) per commit, so push GCs every
	// pushGCEvery refreshes and lets the poll loop do the rest.
	pushGCTicks atomic.Uint64

	// guardPol is Config.Guard with defaults applied; breakerSeed
	// derives a distinct jitter stream per breaker.
	guardPol    guard.Policy
	breakerSeed atomic.Int64

	// background loop lifecycle
	loopStop chan struct{}
	loopDone chan struct{}
}

// pushGCEvery is the push-path AutoGC period, in push refreshes.
const pushGCEvery = 64

// NewManager creates a manager with differential re-evaluation enabled.
func NewManager(store *storage.Store) *Manager {
	return NewManagerConfig(store, Config{UseDRA: true, AutoGC: true})
}

// NewManagerConfig creates a manager with explicit configuration.
func NewManagerConfig(store *storage.Store, cfg Config) *Manager {
	if cfg.Engine == nil {
		cfg.Engine = dra.NewEngine()
	}
	if cfg.Metrics != nil && cfg.Engine.Metrics == nil {
		cfg.Engine.Instrument(cfg.Metrics)
	}
	m := &Manager{
		store:     store,
		cfg:       cfg,
		met:       newMetrics(cfg.Metrics),
		cqs:       make(map[string]*instance),
		templates: make(map[uint64]*templateGroup),
		dag:       cascade.New(cfg.MaxCascadeDepth),
	}
	m.guardPol = cfg.Guard.WithDefaults()
	// Degraded-mode hook: a watermark trip runs emergency GC to shed
	// delta retention. Invoked on the store's own goroutine, never
	// under its mutex, so CollectGarbage is safe here.
	store.SetPressureHook(m.onPressure)
	if cfg.Push {
		m.router = push.NewRouter(push.Config{
			Queue:   cfg.PushQueue,
			Workers: cfg.Parallelism,
			Metrics: cfg.Metrics,
			Logf:    cfg.Logf,
		}, m.pushDispatch)
		store.SetCommitHook(m.router.Publish)
	}
	return m
}

// Stats returns a point-in-time snapshot of the metrics registry this
// manager was configured with (empty when uninstrumented).
func (m *Manager) Stats() obs.Snapshot { return m.cfg.Metrics.Snapshot() }

// Traces returns the trace log of recent refresh spans (nil when
// uninstrumented).
func (m *Manager) Traces() *obs.TraceLog { return m.cfg.Metrics.Traces() }

// Register installs a continual query, runs its initial execution, and
// notifies subscribers attached later only with subsequent refreshes (the
// initial result is returned).
func (m *Manager) Register(def Def) (*relation.Relation, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	if def.Name == "" {
		return nil, errors.New("cq: name required")
	}
	if _, dup := m.cqs[def.Name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateCQ, def.Name)
	}
	if _, serr := m.store.Schema(def.Name); serr == nil {
		return nil, fmt.Errorf("%w: continual query %q would shadow a table", ErrNameCollision, def.Name)
	}
	stmt := def.Select
	if stmt == nil {
		parsed, err := sql.ParseSelect(def.Query)
		if err != nil {
			return nil, err
		}
		stmt = parsed
	}
	if stmt.Into != "" {
		if stmt.Into == def.Name {
			return nil, fmt.Errorf("%w: INTO target %q equals the query name", ErrNameCollision, stmt.Into)
		}
		if _, ok := m.cqs[stmt.Into]; ok {
			return nil, fmt.Errorf("%w: INTO target %q is a registered continual query", ErrNameCollision, stmt.Into)
		}
	}
	if def.Mode == 0 {
		def.Mode = sql.ModeDifferential
	}
	if def.Trigger.Kind == 0 {
		def.Trigger = sql.TriggerSpec{Kind: sql.TriggerUpdates, Updates: 1}
	}

	plan, err := algebra.PlanSelect(stmt, m.store.Live())
	if err != nil {
		return nil, err
	}
	plan = algebra.Optimize(plan)

	inst := &instance{
		def:       def,
		plan:      plan,
		mode:      def.Mode,
		trigger:   def.Trigger,
		stop:      def.Stop,
		queryText: stmt.String(),
		breaker:   m.newBreaker(),
	}
	for _, scan := range algebra.Tables(plan) {
		inst.tables = append(inst.tables, scan.Table)
	}

	// Every CQ enters the dependency DAG — terminal queries as readers
	// (dependent tracking), INTO queries also as their target's producer
	// (stage assignment, cycle and depth checks). Any later failure must
	// leave no edges (and no half-created target table) behind.
	if _, err := m.dag.Register(def.Name, inst.tables, stmt.Into); err != nil {
		return nil, err
	}
	inst.into = stmt.Into
	installed := false
	createdTarget := false
	defer func() {
		if installed {
			return
		}
		m.dag.Unregister(def.Name)
		if createdTarget {
			_ = m.store.DropTable(stmt.Into)
		}
	}()

	if def.Trigger.Kind == sql.TriggerEpsilon {
		if err := m.setupEpsilon(inst, stmt); err != nil {
			return nil, err
		}
	}

	// Initial execution (Section 4.2: Algorithm 1 applies "after its
	// initial execution"). Aggregate queries get an incremental
	// maintainer when the shape allows (SUM/COUNT/AVG, no HAVING); it
	// seeds its state from the same initial pass.
	var initial *relation.Relation
	if m.cfg.UseDRA {
		maint, err := newMaintainer(m.cfg, plan, m.store.Live())
		if err != nil {
			return nil, err
		}
		if maint != nil {
			inst.maint = maint
			initial = maint.Result().Clone()
		} else {
			// Template sharing first: a shared member's initial result
			// is the parameter-filtered template result, and its
			// lastExec is pinned to the group's step position by the
			// join. Unshareable shapes fall through to a private plan.
			// Materializing CQs never share — their refreshes commit
			// into a private target, so the plan stays private too.
			var sharedInit *relation.Relation
			var shared bool
			if stmt.Into == "" {
				sharedInit, shared, err = m.joinTemplateLocked(inst, false)
				if err != nil {
					return nil, err
				}
			}
			if shared {
				initial = sharedInit
			} else {
				prep, err := m.prepare(def.Name, plan, m.cfg.Strategy)
				if err != nil {
					return nil, err
				}
				inst.prepared = prep
			}
		}
	}
	if initial == nil {
		res, err := dra.InitialResult(plan, m.store.Live())
		if err != nil {
			if inst.group != nil {
				m.leaveTemplateLocked(inst)
			}
			return nil, err
		}
		initial = res
	}
	if inst.into != "" {
		// Create (or adopt, see ensureTargetLocked) the target table and
		// seed it to the initial result BEFORE taking lastExec: the seed
		// commit ticks the clock, so it lands below every window this CQ
		// or its downstream readers will ever evaluate.
		created, terr := m.ensureTargetLocked(inst, initial)
		createdTarget = created
		if terr != nil {
			if inst.prepared != nil {
				inst.prepared.Close()
			}
			return nil, fmt.Errorf("cq %q: materialize target %q: %w", def.Name, inst.into, terr)
		}
	}
	inst.prev = initial
	inst.seq = 1
	if inst.group == nil {
		inst.lastExec = m.store.Now()
		inst.lastObs = inst.lastExec
	}
	// Journal before the registry mutation becomes visible: a journal
	// failure fails the registration with the manager unchanged.
	if m.cfg.Journal != nil {
		inst.mu.Lock()
		entry := m.entryLocked(inst)
		inst.mu.Unlock()
		if err := m.cfg.Journal.CQRegistered(entry); err != nil {
			if inst.prepared != nil {
				inst.prepared.Close()
			}
			if inst.group != nil {
				m.leaveTemplateLocked(inst)
			}
			return nil, fmt.Errorf("cq %q: journal registration: %w", def.Name, err)
		}
	}
	m.cqs[def.Name] = inst
	m.routePushLocked(inst)
	m.registeredDeltaLocked(inst, +1)
	installed = true
	return initial.Clone(), nil
}

// routePushLocked indexes a CQ in the push router. Time-based triggers
// are never routed: a commit carries no information about the clock, so
// TriggerEvery CQs stay on the poll loop — the trigger-kind routing
// rule of the hybrid execution model. Caller holds m.mu.
func (m *Manager) routePushLocked(inst *instance) {
	if m.router == nil || inst.trigger.Kind == sql.TriggerEvery || inst.terminated.Load() {
		return
	}
	// Grouped members are covered by their template's single route
	// (routeTemplateLocked): one queue entry per touched template, not
	// one per member.
	if inst.group != nil {
		return
	}
	// The gate lets the router skip quarantined CQs without dispatching:
	// it runs under the router's (and possibly the store's) lock, so it
	// must stay a side-effect-free breaker read.
	b := inst.breaker
	m.router.Register(inst.def.Name, inst.operandTables(), func() bool {
		return !b.Blocked()
	})
}

// newBreaker mints a quarantine breaker with a per-CQ jitter stream.
func (m *Manager) newBreaker() *guard.Breaker {
	return guard.NewBreaker(m.guardPol, m.breakerSeed.Add(1))
}

// operandTables is the CQ's routing key: the operand set of its
// prepared plan when it has one (dra.Prepared.Tables — the same set the
// operand index cache is keyed by), the plan scan set otherwise.
func (inst *instance) operandTables() []string {
	if inst.prepared != nil {
		return inst.prepared.Tables()
	}
	return inst.tables
}

// updateRegisteredLocked recomputes the live-CQ and health gauges.
// Caller holds m.mu (breakers are self-locked leaves, safe to read here).
// registeredDeltaLocked adjusts the population gauges for one instance
// arriving (+1) or leaving (-1) without sweeping the registry: Register
// and Drop on a million-CQ manager must stay O(1), and the full sweep
// made them O(n) each — quadratic across a bulk registration. The
// authoritative sweep (updateRegisteredLocked) still runs once per poll
// round, so any drift from concurrent health transitions self-corrects
// at the next round. Caller holds m.mu.
func (m *Manager) registeredDeltaLocked(inst *instance, dir int64) {
	if m.met == nil || inst.terminated.Load() {
		return // sweeps never count terminated instances either
	}
	m.met.registered.Add(dir)
	switch inst.breaker.State() {
	case guard.Probation:
		m.met.healthProbation.Add(dir)
	case guard.Quarantined:
		m.met.healthQuarantined.Add(dir)
	default:
		m.met.healthHealthy.Add(dir)
	}
}

func (m *Manager) updateRegisteredLocked() {
	if m.met == nil {
		return
	}
	live, healthy, probation, quarantined := 0, 0, 0, 0
	for _, inst := range m.cqs {
		if inst.terminated.Load() {
			continue
		}
		live++
		switch inst.breaker.State() {
		case guard.Probation:
			probation++
		case guard.Quarantined:
			quarantined++
		default:
			healthy++
		}
	}
	m.met.registered.Set(int64(live))
	m.met.healthHealthy.Set(int64(healthy))
	m.met.healthProbation.Set(int64(probation))
	m.met.healthQuarantined.Set(int64(quarantined))
}

// Health summarizes the guard state of the registry for readiness and
// operator surfaces.
type Health struct {
	Healthy     int
	Probation   int
	Quarantined int
	// Degraded lists the CQs currently in probation or quarantine
	// (sorted).
	Degraded []string
}

// Health reports how many CQs are healthy, probing, or quarantined.
func (m *Manager) Health() Health {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out Health
	for name, inst := range m.cqs {
		if inst.terminated.Load() {
			continue
		}
		switch inst.breaker.State() {
		case guard.Probation:
			out.Probation++
			out.Degraded = append(out.Degraded, name)
		case guard.Quarantined:
			out.Quarantined++
			out.Degraded = append(out.Degraded, name)
		default:
			out.Healthy++
		}
	}
	sort.Strings(out.Degraded)
	m.updateRegisteredLocked()
	return out
}

// setupEpsilon resolves the monitored expression to the tables whose
// schemas it compiles against and installs accountants.
func (m *Manager) setupEpsilon(inst *instance, stmt *sql.SelectStmt) error {
	on := inst.trigger.On
	if on == nil {
		// Default: monitor the argument of the first aggregate in the
		// select list (the checking-account idiom: SELECT SUM(amount)).
		for _, it := range stmt.Items {
			if fc, ok := it.Expr.(*sql.FuncCall); ok && sql.AggregateFuncs[fc.Name] && fc.Arg != nil {
				on = fc.Arg
				break
			}
		}
		if on == nil {
			return errors.New("cq: epsilon trigger needs ON expression or an aggregate select list")
		}
	}
	spec := epsilon.Spec{Expr: on, Bound: inst.trigger.Bound, Measure: inst.def.EpsilonMeasure}
	inst.eps = make(map[string]*epsilon.Accountant)
	var attached []string
	for _, table := range inst.tables {
		schema, err := m.store.Schema(table)
		if err != nil {
			return err
		}
		acct, err := epsilon.NewAccountant(spec, schema)
		if err != nil {
			continue // expression does not apply to this table
		}
		inst.eps[table] = acct
		attached = append(attached, table)
	}
	if len(attached) == 0 {
		return fmt.Errorf("cq: epsilon expression %s matches no operand table", on)
	}
	return nil
}

// RegisterSQL installs a CQ from a CREATE CONTINUAL QUERY statement.
func (m *Manager) RegisterSQL(src string) (*relation.Relation, error) {
	stmt, err := sql.Parse(src)
	if err != nil {
		return nil, err
	}
	create, ok := stmt.(*sql.CreateCQStmt)
	if !ok {
		return nil, errors.New("cq: expected CREATE CONTINUAL QUERY")
	}
	return m.Register(Def{
		Name:    create.Name,
		Select:  create.Select,
		Trigger: create.Trigger,
		Mode:    create.Mode,
		Stop:    create.Stop,
	})
}

// Subscribe attaches a notification channel to a CQ with the default
// DropNewest backpressure policy. The returned cancel function detaches
// it. Sends never block; when the buffer is full the notification is
// dropped and the gap reported via Notification.Dropped.
func (m *Manager) Subscribe(name string, buf int) (<-chan Notification, func(), error) {
	sub, err := m.SubscribeOpts(name, SubOptions{Buffer: buf})
	if err != nil {
		return nil, nil, err
	}
	return sub.Ch(), sub.Cancel, nil
}

// SubscribeOpts attaches a notification channel with an explicit
// backpressure policy.
func (m *Manager) SubscribeOpts(name string, opts SubOptions) (*Sub, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	inst, ok := m.cqs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchCQ, name)
	}
	buf := opts.Buffer
	if buf < 1 {
		buf = 1
	}
	sub := &subscriber{ch: make(chan Notification, buf), policy: opts.Policy}
	inst.mu.Lock()
	sub.lastSeq, sub.lastTS = inst.seq, inst.lastExec
	inst.subs = append(inst.subs, sub)
	inst.mu.Unlock()
	return &Sub{inst: inst, s: sub}, nil
}

// Resubscribe reattaches a subscriber disconnected by the Disconnect
// policy (or any caller holding a ResumeToken). The returned
// Notification is a differential catch-up: the current complete result
// at the CQ's present sequence, with Dropped set to the number of
// notifications missed since the token. The snapshot and the new
// attachment happen atomically under the instance lock, so the
// subscription continues gap-free from the catch-up point.
func (m *Manager) Resubscribe(tok ResumeToken, opts SubOptions) (*Sub, Notification, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	inst, ok := m.cqs[tok.CQ]
	if !ok {
		return nil, Notification{}, fmt.Errorf("%w: %q", ErrNoSuchCQ, tok.CQ)
	}
	buf := opts.Buffer
	if buf < 1 {
		buf = 1
	}
	sub := &subscriber{ch: make(chan Notification, buf), policy: opts.Policy}
	inst.mu.Lock()
	defer inst.mu.Unlock()
	missed := inst.seq - tok.Seq
	if missed < 0 {
		missed = 0
	}
	catch := Notification{
		CQName:     tok.CQ,
		Seq:        inst.seq,
		ExecTS:     inst.lastExec,
		Mode:       inst.mode,
		Complete:   inst.prev.Clone(),
		Terminated: inst.terminated.Load(),
		Dropped:    missed,
	}
	sub.lastSeq, sub.lastTS = inst.seq, inst.lastExec
	inst.subs = append(inst.subs, sub)
	return &Sub{inst: inst, s: sub}, catch, nil
}

// ResubscribeFunc is Resubscribe for callback subscribers (the public
// Subscription layer): the catch-up snapshot and the attachment happen
// atomically under the instance lock, so no notification falls between
// the returned catch-up and the first callback invocation.
func (m *Manager) ResubscribeFunc(tok ResumeToken, f func(n Notification, closed bool)) (func(), Notification, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	inst, ok := m.cqs[tok.CQ]
	if !ok {
		return nil, Notification{}, fmt.Errorf("%w: %q", ErrNoSuchCQ, tok.CQ)
	}
	sub := &subscriber{fn: f}
	inst.mu.Lock()
	defer inst.mu.Unlock()
	missed := inst.seq - tok.Seq
	if missed < 0 {
		missed = 0
	}
	catch := Notification{
		CQName:     tok.CQ,
		Seq:        inst.seq,
		ExecTS:     inst.lastExec,
		Mode:       inst.mode,
		Complete:   inst.prev.Clone(),
		Terminated: inst.terminated.Load(),
		Dropped:    missed,
	}
	sub.lastSeq, sub.lastTS = inst.seq, inst.lastExec
	inst.subs = append(inst.subs, sub)
	cancel := func() {
		inst.mu.Lock()
		defer inst.mu.Unlock()
		for i, s := range inst.subs {
			if s == sub {
				inst.subs = append(inst.subs[:i], inst.subs[i+1:]...)
				break
			}
		}
	}
	return cancel, catch, nil
}

// Names lists registered CQ names (sorted).
func (m *Manager) Names() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.cqs))
	for n := range m.cqs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// State returns a snapshot of a CQ's bookkeeping.
func (m *Manager) State(name string) (CQState, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	inst, ok := m.cqs[name]
	if !ok {
		return CQState{}, fmt.Errorf("%w: %q", ErrNoSuchCQ, name)
	}
	inst.mu.Lock()
	defer inst.mu.Unlock()
	st := CQState{
		Name:          name,
		Seq:           inst.seq,
		LastExec:      inst.lastExec,
		Terminated:    inst.terminated.Load(),
		ResultLen:     inst.prev.Len(),
		LastErr:       inst.lastErr,
		Health:        inst.breaker.State().String(),
		Failures:      inst.breaker.Failures(),
		NotifsDropped: inst.notifDropped,
	}
	// A budget timeout could not write lastErr (the late refresh still
	// held the instance lock when the verdict landed); surface it here.
	if p := inst.guardErr.Load(); p != nil {
		st.LastErr = *p
	}
	if inst.prepared != nil {
		st.Strategy = inst.prepared.Strategy().String()
	}
	if g := inst.group; g != nil {
		st.Template = g.fp
		g.mu.Lock()
		st.TemplateMates = len(g.members)
		st.Strategy = g.prepared.Strategy().String()
		g.mu.Unlock()
	}
	for _, acct := range inst.eps {
		st.Divergence += acct.Divergence()
	}
	return st, nil
}

// Result returns a copy of the CQ's current complete result.
func (m *Manager) Result(name string) (*relation.Relation, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	inst, ok := m.cqs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchCQ, name)
	}
	inst.mu.Lock()
	defer inst.mu.Unlock()
	return inst.prev.Clone(), nil
}

// Drop removes a CQ. A refresh of it already in flight completes (its
// subscribers are notified) before the subscriptions close.
func (m *Manager) Drop(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	inst, ok := m.cqs[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchCQ, name)
	}
	// A producer cannot be dropped out from under its readers: their
	// plans scan its derived table, and the recovery contract replays
	// the DAG in registration order — both break if the table vanishes.
	if deps := m.dag.Dependents(name); len(deps) > 0 {
		return &cascade.DependentsError{Name: name, Dependents: deps}
	}
	// The drop journals and tears down under the INSTANCE lock: a
	// refresh already holding it journals its execution first, so the
	// WAL never orders an execution record after the drop record
	// (replay refuses executions for unregistered CQs). Once the lock
	// is ours, the dropped flag stops any later refresh attempt from
	// journaling or resurrecting per-CQ state.
	//
	// Journal before the in-memory mutation: a drop that is not durable
	// must not happen in memory, or a restart would resurrect the CQ.
	inst.mu.Lock()
	inst.dropped.Store(true)
	if m.cfg.Journal != nil {
		if err := m.cfg.Journal.CQDropped(name); err != nil {
			inst.dropped.Store(false)
			inst.mu.Unlock()
			return fmt.Errorf("cq %q: journal drop: %w", name, err)
		}
	}
	closeSubs(inst)
	if inst.prepared != nil {
		inst.prepared.Close()
		inst.prepared = nil
	}
	if inst.group != nil {
		// Under inst.mu: an in-flight refresh of THIS member either
		// finished (it held the lock before us) or will see dropped and
		// skip; template-mates' refreshes only touch the group's leaf
		// lock, so removing the member here cannot deadlock or race a
		// dispatch into its pending buffer.
		m.leaveTemplateLocked(inst)
	}
	inst.mu.Unlock()
	delete(m.cqs, name)
	if m.router != nil {
		m.router.Unregister(name)
	}
	m.dag.Unregister(name)
	if inst.into != "" {
		// The derived table goes with its producer — no readers remain
		// (checked above). A failure is logged, not returned: the CQ
		// itself is already durably dropped.
		if derr := m.store.DropTable(inst.into); derr != nil {
			m.logf("cq %q: drop derived table %q: %v", name, inst.into, derr)
		}
	}
	m.registeredDeltaLocked(inst, -1)
	return nil
}

// closeSubs closes every subscription. Caller holds inst.mu. Callback
// subscribers are panic-isolated: teardown runs under manager locks, so
// a panicking callback must not unwind through Drop or Close.
func closeSubs(inst *instance) {
	for _, s := range inst.subs {
		if s.disconnected {
			continue // channel already closed by the Disconnect policy
		}
		if s.fn != nil {
			fn := s.fn
			_ = guard.Protect(func() error {
				fn(Notification{}, true)
				return nil
			})
		} else {
			close(s.ch)
		}
	}
	inst.subs = nil
}

// Poll evaluates all trigger conditions against the update stream and
// refreshes every CQ whose condition fired. It returns the number of
// refreshes performed. This is the synchronous entry point; Start runs it
// periodically (Section 5.3's "evaluate Tcq periodically" strategy).
//
// The round is a group refresh: triggers are evaluated under the
// manager lock at a single round timestamp, then the fired CQs are
// re-evaluated on a bounded worker pool (Config.Parallelism) holding
// only their per-instance locks, sharing one delta-window fetch per
// (table, window) through a round-scoped cache. A failing CQ does not
// abort the round: its error is recorded in CQState.LastErr, counted in
// cq.refresh.errors, and joined into Poll's returned error while every
// other CQ proceeds.
func (m *Manager) Poll() (int, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return 0, ErrClosed
	}
	if mm := m.met; mm != nil {
		mm.polls.Inc()
	}
	m.mu.Unlock()

	// Cascades refresh in topological stages: stage k's materialization
	// commits land before stage k+1 takes its round timestamp, so a
	// downstream CQ folds its upstream's round-N output within round N —
	// one poll round propagates a source commit through the whole DAG.
	// With no materializing CQs registered (MaxStage 0) the loop body
	// runs once and is exactly the old single-round Poll.
	n := 0
	var errs []error
	for stage := 0; ; stage++ {
		sn, serrs, more := m.pollStage(stage)
		n += sn
		errs = append(errs, serrs...)
		if !more {
			break
		}
	}

	m.mu.Lock()
	if !m.closed {
		m.updateRegisteredLocked()
		m.reapTemplatesLocked()
		if m.cfg.AutoGC {
			m.gcLocked()
		}
	}
	m.mu.Unlock()
	return n, errors.Join(errs...)
}

// pollStage runs one topological stage of a poll round: trigger
// evaluation under the manager lock at a stage-local timestamp, then the
// fired CQs of that stage on the worker pool. It reports whether deeper
// stages remain.
func (m *Manager) pollStage(stage int) (int, []error, bool) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return 0, nil, false
	}
	more := stage < m.dag.MaxStage()
	// The change-counter snapshot MUST precede the round timestamp:
	// taken before Now(), the counters cover at most the commits older
	// than roundTS, which is what lets a prepared plan's operand cache
	// validate replicas by counter equality (dra.Context.Versions).
	var versions map[string]uint64
	if m.cfg.UseDRA {
		versions = m.store.ChangeCounts()
	}
	roundTS := m.store.Now()
	cache := m.store.NewWindowCache()
	var fired []*instance
	var errs []error
	for _, inst := range m.cqs {
		if m.dag.Stage(inst.def.Name) != stage {
			continue
		}
		if inst.terminated.Load() || inst.dropped.Load() {
			continue
		}
		// Quarantine gate: a CQ with too many consecutive failures is
		// skipped until its backoff expires, then admitted as a single
		// probe. Differential catch-up makes the skip safe — the probe
		// re-evaluates from lastExec and covers the whole gap.
		if !inst.breaker.Allow() {
			if mm := m.met; mm != nil {
				mm.quarantineSkips.Inc()
			}
			continue
		}
		should, err := m.observeAndTestLocked(inst, roundTS, cache)
		if err != nil {
			// One CQ's broken trigger must not starve the others: record
			// it and continue the round (Section 5.3 accounting is
			// per-CQ, so skipping one leaves the rest intact).
			errs = append(errs, fmt.Errorf("cq %q: %w", inst.def.Name, err))
			m.noteFailure(inst)
			continue
		}
		if mm := m.met; mm != nil {
			mm.triggerEvals.Inc()
			if should {
				mm.fireCounter(inst.trigger.Kind).Inc()
			}
		}
		if should {
			fired = append(fired, inst)
		} else {
			// The trigger did not fire: free the probe slot (no-op for
			// healthy CQs) so the next round can probe again.
			inst.breaker.Release()
		}
	}
	m.mu.Unlock()

	n, refErrs := m.refreshGroup(fired, roundTS, cache, versions)
	return n, append(errs, refErrs...), more
}

// refreshGroup re-evaluates the fired CQs of one round on a bounded
// worker pool. Workers hold only the per-instance lock, so a slow CQ no
// longer stalls the others, and N CQs over the same tables share one
// differential-window fetch through the round's cache — the paper's
// system active delta zone (Section 5.4) materialized once per round.
func (m *Manager) refreshGroup(fired []*instance, roundTS vclock.Timestamp, cache *storage.WindowCache, versions map[string]uint64) (int, []error) {
	if len(fired) == 0 {
		return 0, nil
	}
	workers := m.workerCount(len(fired))
	var start time.Time
	if mm := m.met; mm != nil {
		start = time.Now()
		mm.roundWorkers.Set(int64(workers))
	}
	type outcome struct {
		refreshed bool
		err       error
	}
	outs := make([]outcome, len(fired))
	run := func(i int) {
		refreshed, err := m.guardedRefresh(fired[i], roundTS, cache, versions, nil)
		outs[i] = outcome{refreshed: refreshed, err: err}
	}
	if workers <= 1 {
		for i := range fired {
			run(i)
		}
	} else {
		var wg sync.WaitGroup
		idx := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			// guarded: guardedRefresh isolates per-item panics; nothing
			// in the loop body itself can panic.
			go func() {
				defer wg.Done()
				for i := range idx {
					run(i)
				}
			}()
		}
		for i := range fired {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	n := 0
	var errs []error
	for _, o := range outs {
		switch {
		case o.err != nil:
			errs = append(errs, o.err)
		case o.refreshed:
			n++
		}
	}
	if mm := m.met; mm != nil {
		mm.roundNS.Observe(time.Since(start))
	}
	return n, errs
}

// errSkipRefresh marks a guarded attempt that found nothing to do (the
// CQ terminated, was dropped, or a racing path already covered this
// timestamp). Not a failure, not a success: the breaker releases its
// probe slot and stays where it was.
var errSkipRefresh = errors.New("cq: refresh skipped")

// guardedRefresh runs one CQ's refresh under the guard layer: panic
// isolation always, the configured budget when set, and breaker
// accounting on every path. It reports whether a refresh was delivered.
//
// On a budget timeout the attempt goroutine is abandoned — Go cannot
// preempt it — and keeps the instance lock until it finishes; the
// monotonicity check makes its late completion harmless, and a reaper
// records the late outcome in metrics. The timeout itself counts as a
// breaker failure.
func (m *Manager) guardedRefresh(inst *instance, execTS vclock.Timestamp, cache *storage.WindowCache, versions map[string]uint64, pushed map[string][]push.BatchRef) (bool, error) {
	attempt := func() error {
		inst.mu.Lock()
		defer inst.mu.Unlock()
		// A racing round (or explicit Refresh) may have re-evaluated
		// past this round's timestamp already; refreshing would move
		// lastExec backwards, so skip — monotonicity beats redundancy.
		if inst.dropped.Load() || inst.terminated.Load() || execTS <= inst.lastExec {
			return errSkipRefresh
		}
		inst.guardErr.Store(nil)
		if err := m.refreshInstance(inst, execTS, cache, versions, pushed); err != nil {
			inst.lastErr = err
			return err
		}
		inst.lastErr = nil
		return nil
	}
	err := guard.Attempt(m.guardPol.Budget, attempt, func(late error) {
		m.noteLate(inst, late)
	})
	switch {
	case err == nil:
		inst.breaker.Success()
		return true, nil
	case errors.Is(err, errSkipRefresh):
		inst.breaker.Release()
		return false, nil
	}
	var pe *guard.PanicError
	switch {
	case errors.As(err, &pe):
		if mm := m.met; mm != nil {
			mm.refreshPanics.Inc()
		}
		err = fmt.Errorf("cq %q: %w", inst.def.Name, err)
		// The panic unwound through the attempt's deferred unlock, so
		// the instance lock is free to record the error.
		inst.mu.Lock()
		inst.lastErr = err
		inst.mu.Unlock()
	case errors.Is(err, guard.ErrBudgetExceeded):
		if mm := m.met; mm != nil {
			mm.refreshTimeouts.Inc()
		}
		err = fmt.Errorf("cq %q: %w", inst.def.Name, err)
		// The abandoned attempt still holds the instance lock; park the
		// verdict in guardErr for State to surface.
		werr := err
		inst.guardErr.Store(&werr)
	}
	m.noteFailure(inst)
	return false, err
}

// observeAndTestLocked is observeAndTest under the instance lock with
// panic isolation: the trigger predicate runs arbitrary expressions, and
// a panic there must not unwind through the caller's manager lock.
func (m *Manager) observeAndTestLocked(inst *instance, now vclock.Timestamp, cache *storage.WindowCache) (bool, error) {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	var should bool
	err := guard.Protect(func() error {
		var terr error
		should, terr = m.observeAndTest(inst, now, cache)
		return terr
	})
	if err != nil {
		inst.lastErr = err
	}
	return should, err
}

// noteFailure records one refresh (or trigger) failure against the CQ's
// breaker, logging the transition if this trip opens the quarantine.
func (m *Manager) noteFailure(inst *instance) {
	if inst.breaker.Failure() {
		if mm := m.met; mm != nil {
			mm.quarantines.Inc()
		}
		if m.cfg.Logf != nil {
			m.cfg.Logf("cq %q: quarantined after %d consecutive failures (backoff until probe)",
				inst.def.Name, inst.breaker.Failures())
		}
	}
	if mm := m.met; mm != nil {
		mm.refreshErrors.Inc()
	}
}

// noteLate records the eventual outcome of a refresh that outlived its
// budget: the work completed (or failed) after the dispatcher gave up.
func (m *Manager) noteLate(inst *instance, late error) {
	mm := m.met
	if mm == nil {
		return
	}
	mm.refreshLate.Inc()
	var pe *guard.PanicError
	if errors.As(late, &pe) {
		mm.refreshPanics.Inc()
	}
	_ = inst
}

// workerCount resolves Config.Parallelism against the round size.
func (m *Manager) workerCount(tasks int) int {
	w := m.cfg.Parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > tasks {
		w = tasks
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Refresh forces re-evaluation of one CQ regardless of its trigger.
func (m *Manager) Refresh(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	inst, ok := m.cqs[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchCQ, name)
	}
	if inst.terminated.Load() {
		return fmt.Errorf("%w: %q", ErrTerminated, name)
	}
	// Counter snapshot before the timestamp, as in Poll.
	var versions map[string]uint64
	if m.cfg.UseDRA {
		versions = m.store.ChangeCounts()
	}
	now := m.store.Now()
	cache := m.store.NewWindowCache()
	// A manual refresh is an operator probe: it bypasses the quarantine
	// gate (no Allow check — the operator decided to try), runs with
	// panic isolation but no budget (it holds the manager lock, so a
	// deadline could not safely abandon it), and its outcome feeds the
	// breaker: a successful manual refresh heals the CQ immediately.
	err := guard.Protect(func() error {
		inst.mu.Lock()
		defer inst.mu.Unlock()
		// Bring trigger accounting up to date so it resets consistently.
		if _, terr := m.observeAndTest(inst, now, cache); terr != nil {
			inst.lastErr = terr
			return terr
		}
		if rerr := m.refreshInstance(inst, now, cache, versions, nil); rerr != nil {
			inst.lastErr = rerr
			return rerr
		}
		inst.lastErr = nil
		inst.guardErr.Store(nil)
		return nil
	})
	if err != nil {
		var pe *guard.PanicError
		if errors.As(err, &pe) {
			if mm := m.met; mm != nil {
				mm.refreshPanics.Inc()
			}
			err = fmt.Errorf("cq %q: %w", name, err)
			inst.mu.Lock()
			inst.lastErr = err
			inst.mu.Unlock()
		}
		m.noteFailure(inst)
		return err
	}
	inst.breaker.Success()
	m.updateRegisteredLocked()
	return nil
}

// pushDispatch is the push router's callback: one CQ's share of a Poll
// round, run the moment a commit touches its operands. It follows the
// Poll discipline exactly — change-counter snapshot before the round
// timestamp, trigger evaluation under the instance lock, refresh
// guarded by the roundTS <= lastExec monotonicity check — so a push
// refresh and a racing Poll (or another dispatcher) of the same CQ
// resolve to exactly one execution per timestamp, keeping Seq gap-free
// and the notification sequence identical to what polling would have
// produced.
func (m *Manager) pushDispatch(name string) (refreshed, retire bool, err error) {
	if fp, isTmpl := parseTmplRoute(name); isTmpl {
		return m.pushDispatchTemplate(fp)
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return false, true, nil
	}
	inst, ok := m.cqs[name]
	if !ok || inst.terminated.Load() || inst.dropped.Load() {
		m.mu.Unlock()
		return false, true, nil
	}
	// Quarantine gate, as in Poll. The router's registration gate
	// (Blocked) already filters most routings without dispatching;
	// Allow here closes the race and claims the probe slot.
	if !inst.breaker.Allow() {
		m.mu.Unlock()
		if mm := m.met; mm != nil {
			mm.quarantineSkips.Inc()
		}
		return false, false, nil
	}
	var versions map[string]uint64
	if m.cfg.UseDRA {
		versions = m.store.ChangeCounts()
	}
	roundTS := m.store.Now()
	cache := m.store.NewWindowCache()
	should, terr := m.observeAndTestLocked(inst, roundTS, cache)
	if terr != nil {
		m.mu.Unlock()
		m.noteFailure(inst)
		return false, false, fmt.Errorf("cq %q: %w", name, terr)
	}
	m.mu.Unlock()
	if mm := m.met; mm != nil {
		mm.triggerEvals.Inc()
		if should {
			mm.fireCounter(inst.trigger.Kind).Inc()
		}
	}
	if !should {
		inst.breaker.Release()
		return false, false, nil
	}

	// The routed commit images become the refresh's columnar inputs when
	// they provably cover the window — the zero-conversion path.
	var pushed map[string][]push.BatchRef
	if m.cfg.Engine.Vectorized {
		m.mu.Lock()
		if r := m.router; r != nil {
			pushed = r.TakeBatches(name, roundTS)
		}
		m.mu.Unlock()
	}
	refreshed, rerr := m.guardedRefresh(inst, roundTS, cache, versions, pushed)
	if rerr != nil {
		return false, false, rerr
	}
	terminated := inst.terminated.Load()
	if refreshed && terminated {
		m.mu.Lock()
		m.updateRegisteredLocked()
		m.mu.Unlock()
	}
	// Amortized GC: the poll loop still collects every round; the push
	// path chips in periodically so a pure-push deployment (no poll
	// loop at all) keeps its delta windows bounded too.
	if refreshed && m.cfg.AutoGC && m.pushGCTicks.Add(1)%pushGCEvery == 0 {
		m.mu.Lock()
		if !m.closed {
			m.gcLocked()
		}
		m.mu.Unlock()
	}
	return refreshed, terminated, nil
}

// FlushPush blocks until every queued push dispatch has completed — the
// quiescence barrier for graceful drains (cqd shutdown, durable
// checkpoint-on-close) and for tests comparing push against poll. A
// no-op when push is disabled. Callers must not hold manager locks and
// should stop committing first.
func (m *Manager) FlushPush() {
	m.mu.Lock()
	r := m.router
	m.mu.Unlock()
	if r != nil {
		r.Flush()
	}
}

// PushPending reports the number of CQs queued or mid-dispatch in the
// push router (0 when push is disabled).
func (m *Manager) PushPending() int {
	m.mu.Lock()
	r := m.router
	m.mu.Unlock()
	if r == nil {
		return 0
	}
	return r.Pending()
}

// observeAndTest folds the unobserved update window into the CQ's trigger
// state and evaluates the trigger condition — differentially: only delta
// rows are read (Section 5.3). Caller holds inst.mu. Trigger accounting
// reads the raw (uncompacted) windows: updates-count and absolute
// epsilon triggers must see every row, not the net effect.
func (m *Manager) observeAndTest(inst *instance, now vclock.Timestamp, cache *storage.WindowCache) (bool, error) {
	if now > inst.lastObs {
		for _, table := range inst.tables {
			w, err := cache.Window(table, inst.lastObs, now, false)
			if err != nil {
				return false, err
			}
			inst.updatesSeen += int64(w.Len())
			if acct, ok := inst.eps[table]; ok {
				if err := acct.Observe(w); err != nil {
					return false, err
				}
			}
		}
		inst.lastObs = now
	}

	switch inst.trigger.Kind {
	case sql.TriggerEvery:
		return now >= inst.lastExec+vclock.Timestamp(inst.trigger.Every), nil
	case sql.TriggerUpdates:
		return inst.updatesSeen >= inst.trigger.Updates, nil
	case sql.TriggerEpsilon:
		for _, acct := range inst.eps {
			if acct.Exceeded() {
				return true, nil
			}
		}
		return false, nil
	default:
		return inst.updatesSeen > 0, nil
	}
}

// refreshInstance re-evaluates the CQ at execTS and delivers the
// notification, drawing differential windows from the round's shared
// cache. Caller holds inst.mu (and only inst.mu on the Poll worker
// path; the store and the DRA engine are safe for concurrent use).
func (m *Manager) refreshInstance(inst *instance, execTS vclock.Timestamp, cache *storage.WindowCache, versions map[string]uint64, pushed map[string][]push.BatchRef) error {
	var span *obs.Span
	var start time.Time
	if mm := m.met; mm != nil {
		start = time.Now()
		span = mm.traces.Start("cq.refresh:" + inst.def.Name)
	}
	var res *dra.Result
	var err error
	switch {
	case m.cfg.UseDRA && inst.group != nil && !inst.pendingSync:
		// Shared template: no private windows, no private evaluation —
		// step the group once and fold this member's dispatched rows.
		res, err = m.refreshShared(inst, execTS, cache, versions)
	case m.cfg.UseDRA:
		compact := m.cfg.Engine.CompactDeltas
		ctx := &dra.Context{
			Pre:       m.store.At(inst.lastExec),
			Post:      m.store.Live(),
			Deltas:    make(map[string]*delta.Delta, len(inst.tables)),
			LastTS:    inst.lastExec,
			Prev:      inst.prev,
			Compacted: compact,
			Versions:  versions,
		}
		for _, table := range inst.tables {
			w, derr := cache.Window(table, inst.lastExec, execTS, compact)
			if derr != nil {
				return fmt.Errorf("cq %q: %w", inst.def.Name, derr)
			}
			ctx.Deltas[table] = w
		}
		if m.cfg.Engine.Vectorized {
			m.fillBatches(ctx, inst.tables, inst.lastExec, execTS, cache, compact, pushed)
		}
		switch {
		case inst.maint != nil:
			res, err = inst.maint.Step(ctx, execTS)
		case inst.prepared != nil:
			res, err = inst.prepared.Step(ctx, execTS)
		default:
			// Private plans without a prepared pipeline, and grouped
			// members in pendingSync: one full-window differential
			// catch-up over the member's own plan.
			res, err = m.cfg.Engine.Reevaluate(inst.plan, ctx, execTS)
		}
	default:
		res, err = dra.FullReevaluate(inst.plan, m.store.Live(), inst.prev, execTS)
	}
	if err != nil {
		return fmt.Errorf("cq %q: %w", inst.def.Name, err)
	}

	// Materialize BEFORE journaling the execution: the WAL must never
	// hold an execution record whose derived delta did not commit, or
	// replay would resurrect a result sequence the downstream tables
	// never saw. The inverse crash window — delta committed, execution
	// not journaled — is harmless because the apply is reconciling
	// (materialize.go): recovery resumes one sequence back, re-derives
	// the change, and the already-applied part stages as a no-op.
	if inst.into != "" {
		if merr := m.materializeLocked(inst, res); merr != nil {
			return fmt.Errorf("cq %q: materialize into %q: %w", inst.def.Name, inst.into, merr)
		}
	}

	// Journal the execution BEFORE any state mutates or a notification
	// goes out: a journal failure fails the refresh with the instance
	// unchanged (the trigger re-fires next round), so a delivered
	// notification is always durable — at-most-once delivery across
	// crashes. Subscribers that need the gap re-fetch Result() after a
	// restart.
	newSeq := inst.seq + 1
	willTerm := inst.stop.AfterN > 0 && int64(newSeq) >= inst.stop.AfterN
	if m.cfg.Journal != nil {
		if jerr := m.cfg.Journal.CQExecuted(inst.def.Name, newSeq, execTS, res.Delta, willTerm); jerr != nil {
			return fmt.Errorf("cq %q: journal execution: %w", inst.def.Name, jerr)
		}
	}

	inst.prev = res.ApplyTo(inst.prev)
	inst.lastExec = execTS
	inst.lastObs = execTS
	inst.seq = newSeq
	inst.updatesSeen = 0
	for _, acct := range inst.eps {
		acct.Reset()
	}

	if willTerm {
		inst.terminated.Store(true)
	}
	if inst.group != nil {
		// The refresh is journaled and applied: discard the covered
		// template batches (a failure above kept them for the retry),
		// finish a pendingSync member's rejoin, and take a terminated
		// member out of the dispatch index.
		m.afterRefreshLocked(inst, execTS, willTerm)
	}

	if mm := m.met; mm != nil {
		mm.refreshes.Inc()
		mm.refreshNS.Observe(time.Since(start))
		if inst.terminated.Load() {
			mm.terminated.Inc()
		}
		span.SetField("seq", int64(inst.seq))
		span.SetField("exec_ts", int64(execTS))
		span.SetField("result_rows", int64(inst.prev.Len()))
		if res.Delta != nil {
			ins, del, mod := res.Delta.Counts()
			span.SetField("inserted", int64(ins))
			span.SetField("deleted", int64(del))
			span.SetField("modified", int64(mod))
		}
		span.Finish()
	}

	note := m.buildNotification(inst, res)
	if note.Empty() && !inst.def.NotifyEmpty && !note.Terminated {
		return nil
	}
	m.deliver(inst, note)
	return nil
}

// fillBatches populates ctx.Batches with one columnar image per operand
// window. Per table it prefers the commit images the push router routed
// (zero conversion: the store built them once at commit and every
// subscribed CQ shares them by reference), accepting them only when a
// signed-row count proves they cover the window exactly; otherwise it
// falls back to the round's shared WindowBatch conversion. A table left
// out of ctx.Batches keeps the engine on its own conversion (or row)
// path — never incorrect, just slower.
func (m *Manager) fillBatches(ctx *dra.Context, tables []string, from, to vclock.Timestamp, cache *storage.WindowCache, compact bool, pushed map[string][]push.BatchRef) {
	ctx.Batches = make(map[string]*batch.Batch, len(tables))
	for _, table := range tables {
		w := ctx.Deltas[table]
		if w == nil || w.Len() == 0 {
			continue
		}
		if b := acceptPushed(pushed[table], table, w, from, to, cache, compact); b != nil {
			ctx.Batches[table] = b
			if mm := m.met; mm != nil {
				mm.batchesPushed.Inc()
			}
			continue
		}
		if b, err := cache.WindowBatch(table, from, to, compact); err == nil && b != nil {
			ctx.Batches[table] = b
			if mm := m.met; mm != nil {
				mm.batchesWindow.Inc()
			}
		}
	}
}

// acceptPushed decides whether a run of routed commit images can stand
// in for the window's columnar form, and assembles it if so. Soundness
// rests on counting: each ref is one commit's complete signed rows and
// the refs are distinct commits inside (from, to], so their signed-row
// total equals the raw window's exactly when the run covers every
// commit. Under compaction one more equality is needed — the raw
// window's signed length must match the folded window's, which (since
// folding can only shrink a tid's signed rows, and an equal-size fold
// is value-identical) proves compaction changed nothing the engine can
// observe.
func acceptPushed(refs []push.BatchRef, table string, win *delta.Delta, from, to vclock.Timestamp, cache *storage.WindowCache, compact bool) *batch.Batch {
	// Refs at or before `from` belong to commits an earlier refresh
	// (typically a poll round, which does not consume refs) already
	// covered.
	for len(refs) > 0 && refs[0].TS <= from {
		refs = refs[1:]
	}
	if len(refs) == 0 {
		return nil
	}
	total := 0
	for _, r := range refs {
		if r.TS > to {
			return nil // cannot happen: TakeBatches cuts at the round TS
		}
		total += r.Batch.Len()
	}
	if compact {
		raw, err := cache.Window(table, from, to, false)
		if err != nil {
			return nil
		}
		rawLen := signedLen(raw)
		if total != rawLen || rawLen != signedLen(win) {
			return nil
		}
	} else if total != signedLen(win) {
		return nil
	}
	if len(refs) == 1 {
		return refs[0].Batch
	}
	out := batch.New(win.Schema(), total)
	for _, r := range refs {
		for i := 0; i < r.Batch.Len(); i++ {
			out.AppendFrom(r.Batch, i)
		}
	}
	return out
}

// signedLen is the number of signed (±) rows a differential window
// expands to in columnar form: a modification carries two, an insertion
// or deletion one.
func signedLen(d *delta.Delta) int {
	n := 0
	for _, r := range d.Rows() {
		if r.Kind() == delta.Modify {
			n += 2
		} else {
			n++
		}
	}
	return n
}

// buildNotification assembles the per-mode answer (Section 4.3 step 4).
func (m *Manager) buildNotification(inst *instance, res *dra.Result) Notification {
	note := Notification{
		CQName:     inst.def.Name,
		Seq:        inst.seq,
		ExecTS:     res.ExecTS,
		Mode:       inst.mode,
		Terminated: inst.terminated.Load(),
	}
	switch inst.mode {
	case sql.ModeComplete:
		note.Complete = inst.prev.Clone()
		note.Inserted = res.Inserted()
		note.Deleted = res.Deleted()
		note.Modified = res.Modified()
	case sql.ModeDeletions:
		note.Deleted = res.Deleted()
	default: // ModeDifferential
		note.Inserted = res.Inserted()
		note.Deleted = res.Deleted()
		note.Modified = res.Modified()
	}
	return note
}

// deliver fans the notification out to the CQ's subscribers under the
// instance lock. Channel sends never block: a full buffer invokes the
// subscriber's backpressure policy. Callback subscribers are
// panic-isolated — a panicking callback is disconnected, not retried,
// and never unwinds into the refresh.
func (m *Manager) deliver(inst *instance, note Notification) {
	delivered, dropped, disconnected := 0, 0, 0
	removed := false
	for _, s := range inst.subs {
		if s.fn != nil {
			fn := s.fn
			if perr := guard.Protect(func() error {
				fn(note, false)
				return nil
			}); perr != nil {
				s.disconnected = true
				removed = true
				disconnected++
				if mm := m.met; mm != nil {
					mm.subscriberPanics.Inc()
				}
				m.logf("cq %q: subscriber callback panicked, disconnected: %v", inst.def.Name, perr)
				continue
			}
			delivered++
			s.lastSeq, s.lastTS = note.Seq, note.ExecTS
			continue
		}
		send := note
		send.Dropped = s.droppedSince
		select {
		case s.ch <- send:
			delivered++
			s.droppedSince = 0
			s.lastSeq, s.lastTS = note.Seq, note.ExecTS
			continue
		default:
		}
		// Buffer full: apply the policy.
		switch s.policy {
		case DropOldest:
			// Evict the oldest queued notification to make room; the
			// consumer learns the gap from Dropped on this one. The
			// evictee's own Dropped folds in, so the count survives
			// chained evictions. deliver is the only sender (inst.mu),
			// so the retry cannot race a refill — only a concurrent
			// receive, which also makes room (and means nothing was
			// dropped after all).
			select {
			case old := <-s.ch:
				s.dropped++
				dropped++
				send.Dropped = s.droppedSince + old.Dropped + 1
			default:
			}
			select {
			case s.ch <- send:
				delivered++
				s.droppedSince = 0
				s.lastSeq, s.lastTS = note.Seq, note.ExecTS
			default:
				s.dropped++
				dropped++
				s.droppedSince = send.Dropped + 1
			}
		case Disconnect:
			// The consumer is too slow to keep a live feed: close the
			// channel (the consumer sees EOF plus its resume token) and
			// detach. Resubscribe catches up differentially.
			s.dropped++
			dropped++
			s.disconnected = true
			close(s.ch)
			removed = true
			disconnected++
		default: // DropNewest
			s.dropped++
			s.droppedSince++
			dropped++
		}
	}
	if removed {
		keep := inst.subs[:0]
		for _, s := range inst.subs {
			if !s.disconnected {
				keep = append(keep, s)
			}
		}
		inst.subs = keep
	}
	inst.notifDropped += int64(dropped)
	if mm := m.met; mm != nil {
		mm.notifications.Add(int64(delivered))
		mm.drops.Add(int64(dropped))
		mm.notifDropped.Add(int64(dropped))
		mm.disconnects.Add(int64(disconnected))
		depth := 0
		for _, s := range inst.subs {
			depth += len(s.ch)
		}
		mm.queueDepth.Set(int64(depth))
	}
}

// SubscribeFunc attaches a callback invoked synchronously while the
// refresh is delivered: when Poll returns, every fired notification has
// been handed to the callback. The callback runs under the CQ's
// instance lock on a refresh worker goroutine — callbacks of different
// CQs may run concurrently, one CQ's callbacks never do — and must not
// call back into the Manager or cancel a subscription. On Drop or Close
// it is invoked once more with closed = true.
func (m *Manager) SubscribeFunc(name string, f func(n Notification, closed bool)) (func(), error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	inst, ok := m.cqs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchCQ, name)
	}
	sub := &subscriber{fn: f}
	inst.mu.Lock()
	inst.subs = append(inst.subs, sub)
	inst.mu.Unlock()
	cancel := func() {
		inst.mu.Lock()
		defer inst.mu.Unlock()
		for i, s := range inst.subs {
			if s == sub {
				inst.subs = append(inst.subs[:i], inst.subs[i+1:]...)
				break
			}
		}
	}
	return cancel, nil
}

// gcLocked collects differential-relation garbage below the system
// active delta zone (Section 5.4), refined per table: each table's
// horizon is the minimum last-execution timestamp over the live CQs
// reading it. Caller holds m.mu but no instance locks: each
// instance's lastExec is read under its own lock, so a refresh worker
// of a racing round can never be observed mid-update.
func (m *Manager) gcLocked() {
	if len(m.cqs) == 0 {
		return
	}
	// Horizons are per table: each table is collectable up to the
	// minimum lastExec of the CQs that actually read it, with the global
	// minimum as the fallback for unread tables. The distinction is what
	// keeps cascades affordable — a derived table's window must survive
	// until its slowest downstream reader catches up, but that reader
	// pins only its own operands, not the base tables of every other
	// stage.
	var global vclock.Timestamp
	first := true
	perTable := make(map[string]vclock.Timestamp)
	for _, inst := range m.cqs {
		if inst.terminated.Load() {
			continue
		}
		// TryLock, not Lock: an abandoned over-budget refresh may hold
		// this instance's lock indefinitely, and the GC horizon needs
		// its lastExec. Blocking here would re-serialize the round on
		// the very CQ the budget abandoned, so skip GC until the next
		// tick instead (retention is bounded by the watermarks).
		if !inst.mu.TryLock() {
			return
		}
		lastExec := inst.lastExec
		inst.mu.Unlock()
		if first || lastExec < global {
			global = lastExec
			first = false
		}
		for _, t := range inst.tables {
			if h, ok := perTable[t]; !ok || lastExec < h {
				perTable[t] = lastExec
			}
		}
	}
	if first {
		// All terminated: everything is collectable.
		reclaimed := m.store.CollectGarbage(m.store.Now())
		if mm := m.met; mm != nil {
			mm.gcReclaimed.Add(int64(reclaimed))
		}
		return
	}
	horizons := make(map[string]vclock.Timestamp)
	for _, t := range m.store.TableNames() {
		if h, ok := perTable[t]; ok {
			horizons[t] = h
		} else {
			horizons[t] = global
		}
	}
	reclaimed := m.store.CollectGarbageTables(horizons)
	if mm := m.met; mm != nil {
		mm.gcReclaimed.Add(int64(reclaimed))
	}
}

// CollectGarbage exposes the GC step for callers managing their own poll
// loop. Returns the number of delta rows collected; a closed manager
// collects nothing.
func (m *Manager) CollectGarbage() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed || len(m.cqs) == 0 {
		return 0
	}
	before := 0
	for _, t := range m.store.TableNames() {
		n, _ := m.store.DeltaLen(t)
		before += n
	}
	m.gcLocked()
	after := 0
	for _, t := range m.store.TableNames() {
		n, _ := m.store.DeltaLen(t)
		after += n
	}
	return before - after
}

// Start launches the asynchronous evaluation loop: Poll every interval.
// Stop it with Close. Section 5.3: "the CQ manager can decide when to
// evaluate Tcq by a system-defined default interval".
func (m *Manager) Start(interval time.Duration) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if m.loopStop != nil {
		return errors.New("cq: loop already running")
	}
	m.loopStop = make(chan struct{})
	m.loopDone = make(chan struct{})
	// guarded: loop panic-isolates each Poll and must keep ticking.
	go m.loop(interval, m.loopStop, m.loopDone)
	return nil
}

func (m *Manager) loop(interval time.Duration, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			// Errors inside the background loop surface through State and
			// notifications; a failed poll leaves trigger state intact and
			// is retried next tick. Panic isolation keeps the loop alive:
			// per-CQ panics are already absorbed by guardedRefresh, so
			// this recovers only manager-level faults.
			if perr := guard.Protect(func() error {
				_, _ = m.Poll()
				return nil
			}); perr != nil {
				m.logf("cq: poll loop recovered: %v", perr)
			}
		case <-stop:
			return
		}
	}
}

// Close stops the background loop (if running), drains the push router
// (pending dispatches refresh against the still-open manager, so no
// committed delta is left unevaluated), and closes all subscriber
// channels.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	stop, done := m.loopStop, m.loopDone
	m.loopStop, m.loopDone = nil, nil
	router := m.router
	m.router = nil
	m.mu.Unlock()
	// Detach the pressure hook: an overload trip after close must not
	// call back into a dead manager.
	m.store.SetPressureHook(nil)
	if stop != nil {
		close(stop)
		<-done
	}
	if router != nil {
		// Detach the commit hook first: a commit racing with shutdown
		// must not publish into a closing router. Its delta stays in
		// the store; nothing here evaluates it, which matches the
		// poll-loop shutdown semantics.
		m.store.SetCommitHook(nil)
		router.Close()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	for _, inst := range m.cqs {
		inst.mu.Lock()
		closeSubs(inst)
		if inst.prepared != nil {
			inst.prepared.Close()
			inst.prepared = nil
		}
		inst.mu.Unlock()
	}
	for fp, g := range m.templates {
		g.mu.Lock()
		g.prepared.Close()
		g.mu.Unlock()
		delete(m.templates, fp)
	}
	return nil
}

// onPressure is the store's overload observer (Config wiring in
// NewManagerConfig): a soft or hard watermark trip runs emergency GC,
// reclaiming every delta row below the system active delta zone so the
// store can clear the watermark without waiting for the next poll tick.
// Runs on the store's hook goroutine, panic-isolated.
func (m *Manager) onPressure(level storage.OverloadLevel) {
	if level < storage.OverloadSoft {
		return
	}
	_ = guard.Protect(func() error {
		if mm := m.met; mm != nil {
			mm.emergencyGC.Inc()
		}
		reclaimed := m.CollectGarbage()
		m.logf("cq: overload %v: emergency GC reclaimed %d delta rows", level, reclaimed)
		return nil
	})
}

// newMaintainer tries the incremental state keepers in turn; a nil, nil
// return means the plan is plain SPJ (or otherwise unsupported) and the
// caller should prepare it instead (Manager.prepare). Join maintenance
// moved into the prepared layer as dra.StrategyIncremental.
func newMaintainer(cfg Config, plan algebra.Plan, src algebra.Source) (maintainer, error) {
	engine := cfg.Engine
	if ia, err := dra.NewIncrementalAggregate(engine, plan, src); err == nil {
		return ia, nil
	} else if !errors.Is(err, dra.ErrNotIncremental) {
		return nil, err
	}
	if id, err := dra.NewIncrementalDistinct(engine, plan, src); err == nil {
		return id, nil
	} else if !errors.Is(err, dra.ErrNotIncremental) {
		return nil, err
	}
	return nil, nil
}

// prepare builds the compile-once refresh pipeline for an SPJ (or
// propagate-only) plan. A forced strategy the plan cannot run is not an
// error for the registration: it falls back to the cost model — but
// audibly, through Logf and the cq.maintainer.fallbacks counter, never
// silently.
func (m *Manager) prepare(name string, plan algebra.Plan, strat dra.Strategy) (*dra.Prepared, error) {
	if strat == dra.StrategyAuto && m.cfg.IncrementalJoins {
		strat = dra.StrategyIncremental
	}
	prep, err := m.cfg.Engine.Prepare(plan, strat)
	if err != nil && strat != dra.StrategyAuto {
		m.logf("cq %q: %v strategy unavailable (%v); falling back to auto", name, strat, err)
		if mm := m.met; mm != nil {
			mm.maintFallbacks.Inc()
		}
		prep, err = m.cfg.Engine.Prepare(plan, dra.StrategyAuto)
	}
	if err != nil {
		return nil, err
	}
	return prep, nil
}

// logf writes one diagnostic line through Config.Logf, defaulting to
// the standard library logger.
func (m *Manager) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}
