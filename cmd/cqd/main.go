// Command cqd is the continual-query server daemon: it hosts a store of
// information sources over TCP so clients (cqctl, or the remote client
// library) can snapshot tables, pull differential windows, or run
// queries. Tables and seed data load from a simple schema script.
//
//	cqd -listen 127.0.0.1:7070 -init schema.sql -http 127.0.0.1:7071
//
// The init script holds one statement per line (or ;-separated): CREATE
// TABLE, INSERT, and CREATE CONTINUAL QUERY statements in the engine's
// dialect. A demo dataset is loaded with -demo.
//
// Server-side continual queries from the init script are refreshed by a
// background poll loop (-poll interval) on a worker pool of -parallelism
// goroutines (0 = GOMAXPROCS); their deltas stay available to remote
// mirrors because the server never garbage-collects at the CQ horizon.
//
// With -data set, the daemon is durable: committed transactions and CQ
// executions append their deltas to a write-ahead log in that directory
// (-fsync selects the sync policy), checkpoints are cut automatically
// every -checkpoint-every commits and on shutdown, and a restart
// recovers the store and resumes every CQ differentially. A recovered
// data directory is authoritative: -init and -demo are ignored with a
// notice instead of re-seeding (which would duplicate rows on every
// restart). `cqctl checkpoint` forces a checkpoint remotely.
//
// With -http set, the daemon also serves its metrics over HTTP:
// GET /stats returns the metrics snapshot as JSON and GET /debug/traces
// the recent spans. The same snapshot is available over the TCP
// protocol via `cqctl stats`.
//
// Connections idle longer than -idle-timeout are shed (clients
// reconnect transparently). SIGINT/SIGTERM shuts down gracefully:
// in-flight requests drain (bounded by -drain) and the final metrics
// snapshot is printed; a second signal forces exit.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/diorama/continual/internal/cq"
	"github.com/diorama/continual/internal/dra"
	"github.com/diorama/continual/internal/durable"
	"github.com/diorama/continual/internal/guard"
	"github.com/diorama/continual/internal/obs"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/remote"
	"github.com/diorama/continual/internal/sql"
	"github.com/diorama/continual/internal/storage"
	"github.com/diorama/continual/internal/wal"
	"github.com/diorama/continual/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cqd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cqd", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7070", "listen address")
	httpAddr := fs.String("http", "", "HTTP stats address (/stats, /debug/traces; empty disables)")
	initFile := fs.String("init", "", "schema/seed script")
	demo := fs.Bool("demo", false, "load the demo stock dataset")
	demoRows := fs.Int("demo-rows", 1000, "demo dataset size")
	idleTimeout := fs.Duration("idle-timeout", remote.DefaultIdleTimeout, "drop connections idle longer than this (0 disables)")
	drainTimeout := fs.Duration("drain", remote.DefaultDrainTimeout, "max wait for in-flight requests on shutdown")
	parallelism := fs.Int("parallelism", 0, "refresh worker pool size for server-side CQs (0 = GOMAXPROCS)")
	strategy := fs.String("strategy", "auto", "refresh strategy for server-side CQs (auto, truth-table, incremental, propagate)")
	pollEvery := fs.Duration("poll", 250*time.Millisecond, "poll interval for server-side CQ triggers")
	pushMode := fs.Bool("push", false, "push-based refresh: route committed deltas straight to affected CQs (poll loop stays on as fallback)")
	pushQueue := fs.Int("push-queue", 0, "bounded push queue capacity (0 = default; overflow falls back to polling)")
	dataDir := fs.String("data", "", "durable data directory (WAL + checkpoints; empty = in-memory)")
	fsyncPolicy := fs.String("fsync", "always", "WAL sync policy: always, interval, never")
	ckptEvery := fs.Int("checkpoint-every", 0, "auto-checkpoint after N committed transactions (0 = only on shutdown)")
	refreshBudget := fs.Duration("refresh-budget", 30*time.Second, "per-refresh deadline; an overrunning CQ refresh is abandoned and counted as a failure (0 disables)")
	quarantineAfter := fs.Int("quarantine-after", 0, "quarantine a CQ after N consecutive refresh failures (0 = default 3, negative disables)")
	softDeltaRows := fs.Int("soft-delta-rows", 0, "soft watermark on retained delta rows: emergency GC and push->poll coalescing (0 disables)")
	hardDeltaRows := fs.Int("hard-delta-rows", 0, "hard watermark on retained delta rows: reject writes until recovery (0 disables)")
	shareTemplates := fs.Bool("share-templates", false, "share one differential plan across CQs that differ only in comparison constants")
	if err := fs.Parse(args); err != nil {
		return err
	}
	strat, err := dra.ParseStrategy(*strategy)
	if err != nil {
		return err
	}

	reg := obs.NewRegistry()
	// AutoGC stays off server-side: garbage-collecting at the local CQ
	// horizon would truncate delta windows that remote mirrors (which
	// refresh on their own schedule) still need.
	cqCfg := cq.Config{
		UseDRA:      true,
		AutoGC:      false,
		Parallelism: *parallelism,
		Strategy:    strat,
		Metrics:     reg,
		Push:        *pushMode,
		PushQueue:   *pushQueue,
		Guard: guard.Policy{
			Budget:           *refreshBudget,
			FailureThreshold: *quarantineAfter,
		},
		ShareTemplates: *shareTemplates,
	}
	marks := storage.Watermarks{SoftRows: *softDeltaRows, HardRows: *hardDeltaRows}
	var store *storage.Store
	var mgr *cq.Manager
	var sys *durable.System
	recovered := false
	if *dataDir != "" {
		pol, err := wal.ParseFsyncPolicy(*fsyncPolicy)
		if err != nil {
			return err
		}
		sys, err = durable.Open(durable.Options{
			Dir:             *dataDir,
			Fsync:           pol,
			CheckpointEvery: *ckptEvery,
			Metrics:         reg,
			Watermarks:      marks,
			CQ:              cqCfg,
		})
		if err != nil {
			return err
		}
		store, mgr = sys.Store, sys.Manager
		recovered = sys.Recovery.HasState()
		if recovered {
			fmt.Printf("cqd: recovered %s: %d tables, %d continual queries, %d records replayed\n",
				*dataDir, len(store.TableNames()), sys.Recovery.CQs, sys.Recovery.Records)
		}
		defer func() { _ = sys.Close() }()
	} else {
		store = storage.NewStore()
		store.Instrument(reg)
		store.SetWatermarks(marks)
		mgr = cq.NewManagerConfig(store, cqCfg)
		defer func() { _ = mgr.Close() }()
	}
	if err := seed(store, mgr, recovered, *dataDir, *initFile, *demo, *demoRows); err != nil {
		return err
	}

	srv := remote.NewServer(store)
	if sys != nil {
		srv.SetCheckpointFunc(sys.Checkpoint)
	}
	srv.SetDepsFunc(func() []remote.WireDep {
		nodes := mgr.Deps()
		deps := make([]remote.WireDep, len(nodes))
		for i, n := range nodes {
			deps[i] = remote.WireDep{CQ: n.CQ, Sources: n.Sources, Target: n.Target, Stage: n.Stage}
		}
		return deps
	})
	srv.Instrument(reg)
	srv.SetIdleTimeout(*idleTimeout)
	srv.SetDrainTimeout(*drainTimeout)
	addr, err := srv.Serve(*listen)
	if err != nil {
		return err
	}
	fmt.Printf("cqd: serving %d tables on %s\n", len(store.TableNames()), addr)
	for _, t := range store.TableNames() {
		schema, _ := store.Schema(t)
		fmt.Printf("  %s %s\n", t, schema)
	}
	if names := mgr.Names(); len(names) > 0 {
		if err := mgr.Start(*pollEvery); err != nil {
			return err
		}
		fmt.Printf("cqd: polling %d continual queries every %s (parallelism %d)\n",
			len(names), *pollEvery, *parallelism)
	}
	if *pushMode {
		fmt.Println("cqd: push-based refresh enabled (committed deltas route straight to affected CQs)")
	}

	// draining flips before the graceful drain starts so /healthz turns
	// not-ready while in-flight work still completes — the load-balancer
	// handshake: stop sending traffic, but what is here will finish.
	var draining atomic.Bool
	var httpLn net.Listener
	if *httpAddr != "" {
		httpLn, err = net.Listen("tcp", *httpAddr)
		if err != nil {
			return fmt.Errorf("http listen: %w", err)
		}
		check := func() (bool, any) {
			h := mgr.Health()
			ov := store.Overload()
			rows, bytes := store.DeltaUsage()
			status := "ok"
			switch {
			case draining.Load():
				status = "draining"
			case ov >= storage.OverloadHard:
				status = "overloaded"
			case ov >= storage.OverloadSoft || h.Quarantined > 0 || h.Probation > 0:
				status = "degraded"
			}
			ready := !draining.Load() && ov < storage.OverloadHard
			return ready, map[string]any{
				"status":       status,
				"ready":        ready,
				"healthy":      h.Healthy,
				"probation":    h.Probation,
				"quarantined":  h.Quarantined,
				"degraded_cqs": h.Degraded,
				"overload":     ov.String(),
				"delta_rows":   rows,
				"delta_bytes":  bytes,
			}
		}
		go func() { _ = http.Serve(httpLn, obs.MuxHealth(reg, check)) }()
		fmt.Printf("cqd: stats on http://%s/stats, health on /healthz\n", httpLn.Addr())
	}

	// Graceful shutdown: the first signal drains — readiness goes false,
	// the listener stops, in-flight requests finish and get their
	// responses (bounded by -drain), and the final metrics snapshot is
	// flushed. The health endpoint stays up through the drain so
	// supervisors can watch it complete; it closes last. A second signal
	// forces immediate exit.
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	<-sigs
	fmt.Println("cqd: shutting down (signal again to force)")
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "cqd: forced exit")
		os.Exit(1)
	}()
	draining.Store(true)
	err = srv.Close()
	// Drain the push queue after the listener stops accepting work: every
	// committed delta that was routed but not yet refreshed executes (or
	// retires) now, so no notification is silently lost at exit. Pollable
	// residue (time-triggered CQs, overflowed commits) stays in the delta
	// store and is picked up on the next start.
	if *pushMode {
		if n := mgr.PushPending(); n > 0 {
			fmt.Printf("cqd: draining %d pending push refreshes\n", n)
		}
		mgr.FlushPush()
	}
	// Checkpoint after the drain so the last in-flight updates are
	// covered and the next start replays nothing.
	if sys != nil {
		if cerr := sys.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "cqd: final checkpoint:", cerr)
		} else {
			fmt.Println("cqd: final checkpoint written")
		}
	} else {
		_ = mgr.Close()
	}
	if httpLn != nil {
		_ = httpLn.Close()
	}
	fmt.Println("cqd: final stats:")
	reg.Snapshot().WriteTable(os.Stdout)
	return err
}

// seed loads the -init script and/or the -demo dataset — unless the
// data directory was recovered with state, in which case the directory
// is authoritative and seeding is skipped with a notice: re-running the
// script would duplicate its rows and fail its CREATE statements on
// every restart.
func seed(store *storage.Store, mgr *cq.Manager, recovered bool, dataDir, initFile string, demo bool, demoRows int) error {
	if recovered && (initFile != "" || demo) {
		fmt.Printf("cqd: %s already initialized; ignoring -init/-demo\n", dataDir)
		return nil
	}
	if initFile != "" {
		if err := loadScript(store, mgr, initFile); err != nil {
			return err
		}
	}
	if demo {
		if err := store.CreateTable("stocks", workload.StockSchema()); err != nil {
			return err
		}
		gen := workload.NewStocks(store, "stocks", 1, workload.DefaultMix)
		if err := gen.Seed(demoRows); err != nil {
			return err
		}
	}
	return nil
}

// loadScript executes CREATE TABLE / INSERT / CREATE CONTINUAL QUERY
// statements from a file. CQs register against the manager and are
// refreshed by its poll loop once the server starts.
func loadScript(store *storage.Store, mgr *cq.Manager, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	for _, stmtText := range strings.Split(string(raw), ";") {
		stmtText = strings.TrimSpace(stmtText)
		if stmtText == "" {
			continue
		}
		stmt, err := sql.Parse(stmtText)
		if err != nil {
			return fmt.Errorf("script %q: %w", stmtText, err)
		}
		switch s := stmt.(type) {
		case *sql.CreateTableStmt:
			cols := make([]relation.Column, len(s.Columns))
			for i, c := range s.Columns {
				cols[i] = relation.Column{Name: c.Name, Type: c.Type}
			}
			schema, err := relation.NewSchema(cols...)
			if err != nil {
				return err
			}
			// Through the manager: DDL shares the CQ namespace guards.
			if err := mgr.CreateTable(s.Table, schema); err != nil {
				return err
			}
		case *sql.InsertStmt:
			if err := scriptInsert(store, s); err != nil {
				return err
			}
		case *sql.CreateCQStmt:
			if _, err := mgr.Register(cq.Def{
				Name:    s.Name,
				Select:  s.Select,
				Trigger: s.Trigger,
				Mode:    s.Mode,
				Stop:    s.Stop,
			}); err != nil {
				return fmt.Errorf("script %q: %w", stmtText, err)
			}
		default:
			return fmt.Errorf("script: unsupported statement %T", stmt)
		}
	}
	return nil
}

func scriptInsert(store *storage.Store, s *sql.InsertStmt) error {
	schema, err := store.Schema(s.Table)
	if err != nil {
		return err
	}
	tx := store.Begin()
	for _, row := range s.Rows {
		vals := make([]relation.Value, len(row))
		for i, e := range row {
			lit, ok := e.(*sql.Literal)
			if !ok {
				tx.Abort()
				return fmt.Errorf("script: INSERT values must be literals")
			}
			vals[i] = lit.Value
			if vals[i].Kind == relation.TInt && i < schema.Len() && schema.Col(i).Type == relation.TFloat {
				vals[i] = relation.Float(float64(vals[i].AsInt()))
			}
		}
		if _, err := tx.Insert(s.Table, vals); err != nil {
			tx.Abort()
			return err
		}
	}
	_, err = tx.Commit()
	return err
}
