package vclock

import (
	"sync"
	"testing"
)

func TestTickMonotonic(t *testing.T) {
	c := New()
	if c.Now() != 0 {
		t.Fatalf("fresh clock Now = %d", c.Now())
	}
	prev := Timestamp(0)
	for i := 0; i < 100; i++ {
		ts := c.Tick()
		if ts <= prev {
			t.Fatalf("Tick not increasing: %d after %d", ts, prev)
		}
		prev = ts
	}
	if c.Now() != prev {
		t.Errorf("Now = %d, want %d", c.Now(), prev)
	}
}

func TestAdvanceTo(t *testing.T) {
	c := New()
	c.AdvanceTo(10)
	if c.Now() != 10 {
		t.Fatalf("AdvanceTo(10): Now = %d", c.Now())
	}
	c.AdvanceTo(5) // never backwards
	if c.Now() != 10 {
		t.Errorf("AdvanceTo(5) moved clock backwards to %d", c.Now())
	}
	if got := c.Tick(); got != 11 {
		t.Errorf("Tick after AdvanceTo = %d, want 11", got)
	}
}

func TestTickConcurrentUnique(t *testing.T) {
	c := New()
	const n = 64
	const per = 100
	seen := make([]Timestamp, n*per)
	var wg sync.WaitGroup
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				seen[g*per+i] = c.Tick()
			}
		}(g)
	}
	wg.Wait()
	uniq := make(map[Timestamp]bool, len(seen))
	for _, ts := range seen {
		if uniq[ts] {
			t.Fatalf("duplicate timestamp %d", ts)
		}
		uniq[ts] = true
	}
	if c.Now() != Timestamp(n*per) {
		t.Errorf("final Now = %d, want %d", c.Now(), n*per)
	}
}
