package relation

// HashIndex is an equality index over one or more columns of a relation,
// built once over a snapshot. It is the building block for hash joins in
// the executor and in DRA's differential join terms.
type HashIndex struct {
	cols    []int
	buckets map[uint64][]Tuple
}

// BuildHashIndex indexes rel on the given column positions.
func BuildHashIndex(rel *Relation, cols []int) *HashIndex {
	idx := &HashIndex{
		cols:    append([]int(nil), cols...),
		buckets: make(map[uint64][]Tuple, rel.Len()),
	}
	key := make([]Value, len(cols))
	for _, t := range rel.Tuples() {
		for i, c := range cols {
			key[i] = t.Values[c]
		}
		h := HashValues(key)
		idx.buckets[h] = append(idx.buckets[h], t)
	}
	return idx
}

// Probe returns the tuples whose key columns equal the given key values.
// It verifies matches to guard against hash collisions.
func (ix *HashIndex) Probe(key []Value) []Tuple {
	h := HashValues(key)
	candidates := ix.buckets[h]
	if len(candidates) == 0 {
		return nil
	}
	out := make([]Tuple, 0, len(candidates))
	for _, t := range candidates {
		match := true
		for i, c := range ix.cols {
			if !t.Values[c].Equal(key[i]) {
				match = false
				break
			}
		}
		if match {
			out = append(out, t)
		}
	}
	return out
}

// Len returns the number of indexed tuples.
func (ix *HashIndex) Len() int {
	n := 0
	for _, b := range ix.buckets {
		n += len(b)
	}
	return n
}
