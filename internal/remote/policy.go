package remote

import (
	"errors"
	"math/rand"
	"net"
	"time"
)

// ErrMaybeApplied is returned (wrapped) when an OpApplyUpdates request
// fails after it may have reached the server: the connection died
// between send and reply, so the batch may or may not have committed.
// Blind retry would double-apply, so the client surfaces the ambiguity
// instead; callers resolve it by re-reading server state (e.g. a
// DeltaSince from their last known timestamp).
var ErrMaybeApplied = errors.New("remote: update may have been applied")

// ErrClientClosed is returned by requests on a client after Close.
var ErrClientClosed = errors.New("remote: client closed")

// Policy is the client's fault-tolerance configuration: deadlines for
// dialing and per-request I/O, and a capped exponential backoff with
// jitter governing retries of idempotent operations.
//
// Every read-only op (OpSnapshot, OpDeltaSince, OpQuery, OpSchema,
// OpListTables, OpNow, OpStats) is retried transparently up to
// MaxAttempts, reconnecting as needed. OpApplyUpdates is never blindly
// retried once the request may have reached the server — see
// ErrMaybeApplied.
type Policy struct {
	// DialTimeout bounds each connection attempt.
	DialTimeout time.Duration
	// IOTimeout bounds each request round trip (applied as a conn
	// deadline covering send and receive). 0 disables deadlines.
	IOTimeout time.Duration
	// MaxAttempts is the total number of tries per operation (1 = no
	// retry). Values < 1 are treated as 1.
	MaxAttempts int
	// BackoffBase is the pause before the first retry; each further
	// retry doubles it, capped at BackoffMax.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Jitter is the fraction of each backoff randomized (0.2 means
	// ±20%), decorrelating retry storms across clients.
	Jitter float64
	// Dialer overrides how connections are established (fault-injection
	// harnesses pass faults.Injector.Dialer). Nil dials plain TCP with
	// DialTimeout.
	Dialer func(addr string) (net.Conn, error)
	// Sleep overrides how backoff pauses are taken (tests capture the
	// schedule). Nil uses time.Sleep.
	Sleep func(time.Duration)
}

// DefaultPolicy is the production configuration: a few quick retries
// with capped exponential backoff.
func DefaultPolicy() Policy {
	return Policy{
		DialTimeout: 5 * time.Second,
		IOTimeout:   15 * time.Second,
		MaxAttempts: 4,
		BackoffBase: 50 * time.Millisecond,
		BackoffMax:  2 * time.Second,
		Jitter:      0.2,
	}
}

// backoff computes the pause before retry number retry (1-based),
// drawing jitter from rng.
func (p Policy) backoff(retry int, rng *rand.Rand) time.Duration {
	d := p.BackoffBase
	if d <= 0 {
		return 0
	}
	for i := 1; i < retry; i++ {
		d *= 2
		if p.BackoffMax > 0 && d >= p.BackoffMax {
			d = p.BackoffMax
			break
		}
	}
	if p.BackoffMax > 0 && d > p.BackoffMax {
		d = p.BackoffMax
	}
	if p.Jitter > 0 && rng != nil {
		// Scale by a factor in [1-Jitter, 1+Jitter].
		f := 1 + p.Jitter*(2*rng.Float64()-1)
		d = time.Duration(float64(d) * f)
	}
	return d
}

// retryable reports whether an op may be transparently re-sent after a
// connection failure.
func (o Op) retryable() bool { return o != OpApplyUpdates }

// String names an op for error messages and logs.
func (o Op) String() string {
	switch o {
	case OpListTables:
		return "ListTables"
	case OpSchema:
		return "Schema"
	case OpSnapshot:
		return "Snapshot"
	case OpDeltaSince:
		return "DeltaSince"
	case OpQuery:
		return "Query"
	case OpNow:
		return "Now"
	case OpApplyUpdates:
		return "ApplyUpdates"
	case OpStats:
		return "Stats"
	case OpCheckpoint:
		return "Checkpoint"
	default:
		return "Op?"
	}
}
