package storage

import (
	"errors"

	"github.com/diorama/continual/internal/delta"
	"github.com/diorama/continual/internal/relation"
)

// ErrOverloaded is returned by Commit while the store is in hard
// degraded mode: the retained differential relations have grown past
// the hard watermark and writes are rejected until GC (emergency or
// regular) brings retention back down. The error is typed so callers
// can distinguish load shedding from data errors and retry with
// backoff.
var ErrOverloaded = errors.New("storage: delta store overloaded")

// OverloadLevel is the store's degraded-mode state, driven by the
// retained delta volume against the configured watermarks.
type OverloadLevel int

const (
	// OverloadNone: normal operation.
	OverloadNone OverloadLevel = iota
	// OverloadSoft: retention crossed the soft watermark. Writes still
	// commit; the pressure hook fires (the cq manager runs emergency
	// GC) and the push router sheds routing to the poll loop, which
	// coalesces refreshes into batched rounds.
	OverloadSoft
	// OverloadHard: retention crossed the hard watermark. Commits are
	// rejected with ErrOverloaded until retention falls back below the
	// soft watermark (hysteresis: recovery requires more headroom than
	// the trip needed, so the level does not flap at the boundary).
	OverloadHard
)

func (l OverloadLevel) String() string {
	switch l {
	case OverloadSoft:
		return "soft"
	case OverloadHard:
		return "hard"
	default:
		return "none"
	}
}

// Watermarks bounds the retained differential-relation volume across
// all tables. Zero fields disable that bound; the zero value disables
// degraded mode entirely. Rows and bytes are independent triggers —
// whichever crosses first raises the level.
type Watermarks struct {
	SoftRows int
	HardRows int
	// Byte bounds use a cheap structural estimate (delta.Row headers,
	// value slots, string payloads), not precise heap accounting.
	SoftBytes int64
	HardBytes int64
}

func (w Watermarks) enabled() bool {
	return w.SoftRows > 0 || w.HardRows > 0 || w.SoftBytes > 0 || w.HardBytes > 0
}

// PressureHook observes overload-level transitions, invoked on its own
// goroutine (never under the store mutex), once per transition with
// the new level. The cq manager installs one that runs emergency GC.
type PressureHook func(level OverloadLevel)

// SetWatermarks installs (or, with the zero value, removes) the
// degraded-mode watermarks and recomputes the level against current
// retention — so setting watermarks after recovery immediately
// reflects a replayed backlog.
func (s *Store) SetWatermarks(w Watermarks) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wm = w
	if !w.enabled() {
		s.setOverloadLocked(OverloadNone)
		return
	}
	s.recomputeOverloadLocked()
}

// SetPressureHook attaches (or, with nil, detaches) the overload
// transition observer.
func (s *Store) SetPressureHook(h PressureHook) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pressure = h
}

// Overload reports the store's current degraded-mode level.
func (s *Store) Overload() OverloadLevel {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.overload
}

// DeltaUsage reports the retained differential volume the watermarks
// are evaluated against: total rows and estimated bytes.
func (s *Store) DeltaUsage() (rows int, bytes int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.deltaRows, s.deltaBytes
}

// noteDeltaAppendLocked accounts one appended differential row.
// Caller holds s.mu.
func (s *Store) noteDeltaAppendLocked(r delta.Row) {
	s.deltaRows++
	s.deltaBytes += approxRowBytes(r)
}

// noteDeltaDropLocked accounts removed differential rows (GC,
// DropTable). Caller holds s.mu.
func (s *Store) noteDeltaDropLocked(rows int, bytes int64) {
	s.deltaRows -= rows
	s.deltaBytes -= bytes
	if s.deltaRows < 0 {
		s.deltaRows = 0
	}
	if s.deltaBytes < 0 {
		s.deltaBytes = 0
	}
}

// recomputeOverloadLocked re-evaluates the overload level with
// hysteresis and fires the pressure hook on a transition. Caller
// holds s.mu.
func (s *Store) recomputeOverloadLocked() {
	if !s.wm.enabled() {
		return
	}
	softHit := (s.wm.SoftRows > 0 && s.deltaRows >= s.wm.SoftRows) ||
		(s.wm.SoftBytes > 0 && s.deltaBytes >= s.wm.SoftBytes)
	hardHit := (s.wm.HardRows > 0 && s.deltaRows >= s.wm.HardRows) ||
		(s.wm.HardBytes > 0 && s.deltaBytes >= s.wm.HardBytes)
	// Recovery needs headroom: soft clears only at 3/4 of the soft
	// watermark, hard clears only below soft. A level never flaps on a
	// single append/collect cycle at the boundary.
	underSoftRecovery := (s.wm.SoftRows <= 0 || s.deltaRows <= s.wm.SoftRows*3/4) &&
		(s.wm.SoftBytes <= 0 || s.deltaBytes <= s.wm.SoftBytes*3/4)

	next := s.overload
	switch s.overload {
	case OverloadNone:
		if hardHit {
			next = OverloadHard
		} else if softHit {
			next = OverloadSoft
		}
	case OverloadSoft:
		if hardHit {
			next = OverloadHard
		} else if underSoftRecovery {
			next = OverloadNone
		}
	case OverloadHard:
		if !softHit && !hardHit {
			if underSoftRecovery {
				next = OverloadNone
			} else {
				next = OverloadSoft
			}
		}
	}
	s.setOverloadLocked(next)
}

// setOverloadLocked applies a level transition: metrics, and the
// pressure hook on its own goroutine (the hook may call back into the
// store — emergency GC — so it must not run under s.mu). Caller holds
// s.mu.
func (s *Store) setOverloadLocked(next OverloadLevel) {
	if next == s.overload {
		return
	}
	prev := s.overload
	s.overload = next
	if m := s.met; m != nil {
		m.overloadLevel.Set(int64(next))
		if next > prev {
			switch next {
			case OverloadSoft:
				m.softTrips.Inc()
			case OverloadHard:
				m.hardTrips.Inc()
			}
		}
	}
	if h := s.pressure; h != nil {
		// guarded: hook runs outside s.mu on its own goroutine; the
		// consumer (cq manager) wraps its work in its own recovery.
		go h(next)
	}
}

// approxRowBytes estimates the in-memory footprint of one differential
// row: the Row struct itself plus its value slices and string
// payloads. Cheap and deterministic — watermark math needs a stable
// order-of-magnitude signal, not malloc truth.
func approxRowBytes(r delta.Row) int64 {
	const (
		rowHeader = 32 // TID, TS, two slice headers (approx)
		valueSlot = 48 // relation.Value struct size (approx)
	)
	n := int64(rowHeader)
	n += int64(len(r.Old)+len(r.New)) * valueSlot
	for _, v := range r.Old {
		n += stringPayload(v)
	}
	for _, v := range r.New {
		n += stringPayload(v)
	}
	return n
}

func stringPayload(v relation.Value) int64 {
	if v.Kind == relation.TString && !v.IsNull() {
		return int64(len(v.AsString()))
	}
	return 0
}
