package storage

import (
	"testing"

	"github.com/diorama/continual/internal/batch"
	"github.com/diorama/continual/internal/relation"
)

// TestCommitHookCarriesColumnarBatch verifies the commit hook's batch
// is an exact ordered signed image of the commit: the same rows, in tx
// op order, that the delta log recorded.
func TestCommitHookCarriesColumnarBatch(t *testing.T) {
	s := newStockStore(t)
	var events []CommitEvent
	s.SetCommitHook(func(ev CommitEvent) { events = append(events, ev) })

	tx := s.Begin()
	tid1, err := tx.Insert("stocks", sv("DEC", 150))
	if err != nil {
		t.Fatal(err)
	}
	tid2, err := tx.Insert("stocks", sv("IBM", 75))
	if err != nil {
		t.Fatal(err)
	}
	ts := mustCommit(t, tx)

	tx = s.Begin()
	if err := tx.Update("stocks", tid1, sv("DEC", 160)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete("stocks", tid2); err != nil {
		t.Fatal(err)
	}
	ts2 := mustCommit(t, tx)

	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	b := events[0].Changes[0].Batch
	if b == nil {
		t.Fatal("first commit batch is nil")
	}
	if b.Len() != 2 {
		t.Fatalf("first commit batch rows = %d, want 2 (+DEC +IBM)", b.Len())
	}
	if b.Signs[0] != 1 || b.Signs[1] != 1 {
		t.Fatalf("signs = %v, want both +1", b.Signs)
	}
	if b.TIDs[0] != tid1 || b.TIDs[1] != tid2 {
		t.Fatalf("tids = %v, want tx op order [%d %d]", b.TIDs, tid1, tid2)
	}
	if b.TS == nil || b.TS[0] != ts {
		t.Fatalf("TS column = %v, want stamped with commit ts %d", b.TS, ts)
	}
	if got := b.Value(0, 0); !got.Equal(relation.Str("DEC")) {
		t.Fatalf("row 0 col 0 = %v, want DEC", got)
	}

	// Modify expands to -old then +new; the delete contributes one -old.
	b2 := events[1].Changes[0].Batch
	if b2 == nil || b2.Len() != 3 {
		t.Fatalf("second commit batch = %v, want 3 signed rows", b2)
	}
	wantSigns := []int8{-1, 1, -1}
	for i, w := range wantSigns {
		if b2.Signs[i] != w {
			t.Fatalf("sign[%d] = %d, want %d", i, b2.Signs[i], w)
		}
	}
	if !b2.Value(1, 1).Equal(relation.Float(160)) {
		t.Fatalf("+new price = %v, want 160", b2.Value(1, 1))
	}
	if b2.TS[2] != ts2 {
		t.Fatalf("TS[2] = %d, want %d", b2.TS[2], ts2)
	}

	// The batch must agree with the delta window the same commit wrote.
	w, err := s.DeltaSince("stocks", ts)
	if err != nil {
		t.Fatal(err)
	}
	img, ok := batch.FromDelta(nil, w)
	if !ok {
		t.Fatal("window unconvertible")
	}
	if img.Len() != b2.Len() {
		t.Fatalf("window image rows = %d, batch rows = %d", img.Len(), b2.Len())
	}
	for i := 0; i < img.Len(); i++ {
		if img.TIDs[i] != b2.TIDs[i] || img.Signs[i] != b2.Signs[i] {
			t.Fatalf("row %d: window (%d,%d) vs commit batch (%d,%d)",
				i, img.TIDs[i], img.Signs[i], b2.TIDs[i], b2.Signs[i])
		}
	}
}

// TestCommitHookNilBatchOnUnrepresentable: a committed value whose kind
// does not match the column type cannot live in a typed column; the
// hook must see a nil batch (consumer falls back to the row window),
// not a wrong one.
func TestCommitHookNilBatchOnUnrepresentable(t *testing.T) {
	s := newStockStore(t)
	var last CommitEvent
	s.SetCommitHook(func(ev CommitEvent) { last = ev })

	tx := s.Begin()
	// Kind drift: a string where the schema says float. Storage checks
	// arity, not kinds, so this commits.
	if _, err := tx.Insert("stocks", []relation.Value{relation.Str("DEC"), relation.Str("oops")}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)

	if len(last.Changes) != 1 {
		t.Fatalf("changes = %v", last.Changes)
	}
	if last.Changes[0].Batch != nil {
		t.Fatal("batch for kind-drifted commit must be nil")
	}
	if last.Changes[0].Rows != 1 {
		t.Fatalf("rows = %d, want 1 (count still reported)", last.Changes[0].Rows)
	}
}

// TestWindowBatchSharesOneConversion: the columnar image of a window is
// built once per cache key and shared, including the negative
// (unrepresentable) result.
func TestWindowBatchSharesOneConversion(t *testing.T) {
	s := newStockStore(t)
	t0 := s.Now()
	tx := s.Begin()
	if _, err := tx.Insert("stocks", sv("DEC", 150)); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Insert("stocks", sv("IBM", 75)); err != nil {
		t.Fatal(err)
	}
	t1 := mustCommit(t, tx)

	c := s.NewWindowCache()
	b1, err := c.WindowBatch("stocks", t0, t1, false)
	if err != nil {
		t.Fatal(err)
	}
	if b1 == nil || b1.Len() != 2 {
		t.Fatalf("window batch = %v, want 2 rows", b1)
	}
	b2, err := c.WindowBatch("stocks", t0, t1, false)
	if err != nil {
		t.Fatal(err)
	}
	if b1 != b2 {
		t.Error("second WindowBatch must share the first conversion")
	}
	// The image mirrors the row window exactly.
	w, err := c.Window("stocks", t0, t1, false)
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != b1.Len() {
		t.Fatalf("rows: window %d vs batch %d", w.Len(), b1.Len())
	}

	// Unrepresentable window: nil, cached.
	tx = s.Begin()
	if _, err := tx.Insert("stocks", []relation.Value{relation.Str("BAD"), relation.Str("oops")}); err != nil {
		t.Fatal(err)
	}
	t2 := mustCommit(t, tx)
	nb, err := c.WindowBatch("stocks", t1, t2, false)
	if err != nil {
		t.Fatal(err)
	}
	if nb != nil {
		t.Fatal("unrepresentable window must yield a nil batch")
	}
	if nb, err = c.WindowBatch("stocks", t1, t2, false); err != nil || nb != nil {
		t.Fatalf("negative result must be cached: %v, %v", nb, err)
	}
}
