package wal

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"time"

	"github.com/diorama/continual/internal/delta"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/vclock"
)

// ckptMagic opens every checkpoint file.
const ckptMagic = "CQCKPT01"

// Checkpoint record kinds (internal to the checkpoint file format).
const (
	ckKindHeader byte = iota + 1
	ckKindTable
	ckKindCQ
	ckKindEnd
)

// TableState is one table's snapshot inside a checkpoint: the base
// relation, the retained differential relation (the paper's ΔR — the
// system active delta zone as of the cut), the GC low-water mark, and
// the change counter that the dra operand index cache revalidates by.
type TableState struct {
	Name      string
	Schema    relation.Schema
	Tuples    []relation.Tuple
	DeltaRows []delta.Row
	LowWater  vclock.Timestamp
	Version   uint64
}

// Checkpoint is the durable snapshot of the whole engine at a cut
// point. Seg is the segment the log rotated to at the cut: replaying
// segments >= Seg on top of this state reproduces the live engine.
type Checkpoint struct {
	Seg     uint64
	TS      vclock.Timestamp
	NextTID uint64
	Tables  []TableState
	CQs     []CQEntry
}

// WriteCheckpoint atomically persists a checkpoint: it is written to a
// temporary file, synced, renamed into place, and the directory entry
// synced — only then is it eligible to be found by Scan. Afterwards the
// log garbage-collects: the newest two checkpoints are kept (the older
// one covers a crash in the middle of this very sequence) and segments
// older than both are removed.
func (l *Log) WriteCheckpoint(ck *Checkpoint) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.broken != nil {
		return l.broken
	}
	start := time.Now()
	if err := l.writeCheckpointLocked(ck); err != nil {
		return l.fail(err)
	}
	l.met.observeCheckpoint(time.Since(start))
	l.gcLocked(ck.Seg)
	return nil
}

func (l *Log) writeCheckpointLocked(ck *Checkpoint) error {
	tmp := filepath.Join(l.dir, ckptName(ck.Seg)+".tmp")
	f, err := l.fs.Create(tmp)
	if err != nil {
		return err
	}
	werr := writeCheckpointTo(f, ck)
	if werr == nil && l.opts.Fsync != FsyncNever {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		l.fs.Remove(tmp)
		return werr
	}
	if err := l.fs.Rename(tmp, filepath.Join(l.dir, ckptName(ck.Seg))); err != nil {
		return err
	}
	if l.opts.Fsync != FsyncNever {
		return l.fs.SyncDir(l.dir)
	}
	return nil
}

// gcLocked removes checkpoints older than the previous one and segments
// the surviving checkpoints no longer need. Removal failures are
// ignored: leftovers only cost disk, and the next checkpoint retries.
func (l *Log) gcLocked(newest uint64) {
	names, err := l.fs.List(l.dir)
	if err != nil {
		return
	}
	// Find the second-newest checkpoint: segments at or after ITS cut
	// must stay so recovery can still fall back to it.
	prev := uint64(0)
	hasPrev := false
	for _, name := range names {
		if seq, ok := parseSeq(name, "checkpoint-", ".ckpt"); ok && seq < newest {
			if !hasPrev || seq > prev {
				prev, hasPrev = seq, true
			}
		}
	}
	keepFrom := newest
	if hasPrev {
		keepFrom = prev
	}
	for _, name := range names {
		if seq, ok := parseSeq(name, "checkpoint-", ".ckpt"); ok && hasPrev && seq < prev {
			l.fs.Remove(filepath.Join(l.dir, name))
		}
		if seq, ok := parseSeq(name, "wal-", ".log"); ok && seq < keepFrom {
			l.fs.Remove(filepath.Join(l.dir, name))
		}
	}
}

// writeCheckpointTo streams the checkpoint as framed records: header,
// one record per table, one per CQ, then an end trailer. A reader that
// does not reach the trailer knows the file is incomplete.
func writeCheckpointTo(w io.Writer, ck *Checkpoint) error {
	if _, err := w.Write([]byte(ckptMagic)); err != nil {
		return err
	}
	var buf []byte
	emit := func(payload []byte) error {
		if len(payload) > maxRecord {
			return fmt.Errorf("%w: checkpoint record %d bytes", ErrRecordTooLarge, len(payload))
		}
		buf = appendFrame(buf[:0], payload)
		_, err := w.Write(buf)
		return err
	}

	h := &enc{}
	h.byte(ckKindHeader)
	h.u64(ck.Seg)
	h.u64(uint64(ck.TS))
	h.u64(ck.NextTID)
	h.u64(uint64(len(ck.Tables)))
	h.u64(uint64(len(ck.CQs)))
	if err := emit(h.b); err != nil {
		return err
	}

	for _, t := range ck.Tables {
		e := &enc{}
		e.byte(ckKindTable)
		e.str(t.Name)
		e.schema(t.Schema)
		e.u64(uint64(t.LowWater))
		e.u64(t.Version)
		e.u64(uint64(len(t.Tuples)))
		for _, tu := range t.Tuples {
			e.u64(uint64(tu.TID))
			if err := e.vals(tu.Values); err != nil {
				return err
			}
		}
		e.u64(uint64(len(t.DeltaRows)))
		for _, r := range t.DeltaRows {
			if err := e.deltaRow(r); err != nil {
				return err
			}
		}
		if err := emit(e.b); err != nil {
			return err
		}
	}

	for i := range ck.CQs {
		e := &enc{}
		e.byte(ckKindCQ)
		if err := encodeCQEntry(e, &ck.CQs[i]); err != nil {
			return err
		}
		if err := emit(e.b); err != nil {
			return err
		}
	}

	return emit([]byte{ckKindEnd})
}

// readCheckpoint loads and validates a checkpoint file. Any truncation
// (missing trailer), checksum failure, or structural error makes the
// whole checkpoint unusable — checkpoints are atomic via rename, so a
// broken one is a crash artifact and the caller falls back.
func readCheckpoint(fs FS, path string) (*Checkpoint, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var magic [len(ckptMagic)]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: short checkpoint", ErrTorn)
	}
	if string(magic[:]) != ckptMagic {
		return nil, fmt.Errorf("%w: bad checkpoint magic", ErrCorrupt)
	}

	fr := &frameReader{r: f}
	next := func() (*dec, byte, error) {
		payload, err := fr.next()
		if err != nil {
			return nil, 0, err
		}
		d := &dec{b: payload}
		return d, d.byte(), nil
	}

	d, kind, err := next()
	if err != nil || kind != ckKindHeader {
		return nil, fmt.Errorf("%w: missing checkpoint header", ErrCorrupt)
	}
	// The table/CQ counts refer to SUBSEQUENT frames, so they are read
	// as plain varints — dec.count's same-record sanity bound does not
	// apply. They are bounded instead by the frames actually present.
	ck := &Checkpoint{Seg: d.u64(), TS: vclock.Timestamp(d.u64()), NextTID: d.u64()}
	nTables := int(d.u64())
	nCQs := int(d.u64())
	if d.err != nil {
		return nil, d.err
	}
	if nTables < 0 || nCQs < 0 || nTables > 1<<20 || nCQs > 1<<20 {
		return nil, fmt.Errorf("%w: absurd checkpoint counts", ErrCorrupt)
	}

	for i := 0; i < nTables; i++ {
		d, kind, err := next()
		if err != nil || kind != ckKindTable {
			return nil, fmt.Errorf("%w: expected table record", ErrCorrupt)
		}
		t := TableState{Name: d.str(), Schema: d.schema()}
		t.LowWater = vclock.Timestamp(d.u64())
		t.Version = d.u64()
		n := d.count()
		t.Tuples = make([]relation.Tuple, 0, n)
		for j := 0; j < n; j++ {
			tid := relation.TID(d.u64())
			vs := d.vals()
			if d.err != nil {
				return nil, d.err
			}
			t.Tuples = append(t.Tuples, relation.Tuple{TID: tid, Values: vs})
		}
		n = d.count()
		t.DeltaRows = make([]delta.Row, 0, n)
		for j := 0; j < n; j++ {
			r := d.deltaRow()
			if d.err != nil {
				return nil, d.err
			}
			t.DeltaRows = append(t.DeltaRows, r)
		}
		if d.err != nil {
			return nil, d.err
		}
		ck.Tables = append(ck.Tables, t)
	}

	for i := 0; i < nCQs; i++ {
		d, kind, err := next()
		if err != nil || kind != ckKindCQ {
			return nil, fmt.Errorf("%w: expected cq record", ErrCorrupt)
		}
		e := decodeCQEntry(d)
		if e == nil {
			return nil, d.err
		}
		if len(d.b) != 0 {
			return nil, fmt.Errorf("%w: trailing bytes in cq record", ErrCorrupt)
		}
		ck.CQs = append(ck.CQs, *e)
	}

	if _, kind, err := next(); err != nil || kind != ckKindEnd {
		return nil, fmt.Errorf("%w: checkpoint missing trailer", errOr(err, ErrTorn))
	}
	return ck, nil
}

func errOr(err, fallback error) error {
	if err != nil && !errors.Is(err, io.EOF) {
		return err
	}
	return fallback
}
