package guard

import (
	"math/rand"
	"sync"
	"time"
)

// Health is a breaker's externally visible state.
type Health int

const (
	// Healthy: refreshes run normally.
	Healthy Health = iota
	// Probation: the backoff deadline has passed (or durable recovery
	// seeded the breaker here); the next trigger admits exactly one
	// probe refresh. Success returns the CQ to Healthy, failure
	// re-quarantines with a doubled backoff.
	Probation
	// Quarantined: the CQ is skipped by poll and push routing until the
	// backoff deadline.
	Quarantined
)

func (h Health) String() string {
	switch h {
	case Probation:
		return "probation"
	case Quarantined:
		return "quarantined"
	default:
		return "healthy"
	}
}

// ParseHealth maps the string form back (durable registry round-trip).
// Unknown strings are Healthy.
func ParseHealth(s string) Health {
	switch s {
	case "probation":
		return Probation
	case "quarantined":
		return Quarantined
	default:
		return Healthy
	}
}

// Policy tunes the guard layer. The zero value enables panic isolation
// and the default quarantine (3 consecutive failures, 1s..60s backoff)
// with no refresh deadline.
type Policy struct {
	// Budget bounds each refresh (trigger evaluation excluded). 0
	// disables the deadline: refreshes run inline with only panic
	// isolation, keeping the hot path free of goroutine overhead.
	Budget time.Duration
	// FailureThreshold is the number of consecutive refresh failures
	// (errors, panics, or timeouts) that quarantines a CQ. 0 means the
	// default (3); negative disables quarantine entirely.
	FailureThreshold int
	// BackoffBase is the first quarantine interval; each further trip
	// doubles it, capped at BackoffMax — the same capped-exponential
	// shape as remote.Policy. Jitter is the randomized fraction of each
	// interval (0 means the default ±20%), decorrelating probe storms.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	Jitter      float64
	// Now overrides the clock (tests). Nil uses time.Now.
	Now func() time.Time
}

// Defaults match the PR 2 retry shape, stretched to quarantine scale.
const (
	DefaultFailureThreshold = 3
	DefaultBackoffBase      = time.Second
	DefaultBackoffMax       = time.Minute
	DefaultJitter           = 0.2
)

// WithDefaults resolves zero fields to their defaults.
func (p Policy) WithDefaults() Policy {
	if p.FailureThreshold == 0 {
		p.FailureThreshold = DefaultFailureThreshold
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = DefaultBackoffBase
	}
	if p.BackoffMax <= 0 {
		p.BackoffMax = DefaultBackoffMax
	}
	if p.Jitter <= 0 {
		p.Jitter = DefaultJitter
	}
	if p.Now == nil {
		p.Now = time.Now
	}
	return p
}

// backoff computes the quarantine interval after trip number trips
// (1-based): base·2^(trips-1) capped at max, jittered.
func (p Policy) backoff(trips int, rng *rand.Rand) time.Duration {
	d := p.BackoffBase
	for i := 1; i < trips; i++ {
		d *= 2
		if d >= p.BackoffMax {
			d = p.BackoffMax
			break
		}
	}
	if d > p.BackoffMax {
		d = p.BackoffMax
	}
	if p.Jitter > 0 && rng != nil {
		f := 1 + p.Jitter*(2*rng.Float64()-1)
		d = time.Duration(float64(d) * f)
	}
	return d
}

// Breaker is a per-CQ circuit breaker. It is a self-locked leaf in the
// engine's lock order: every method only takes the breaker's own mutex,
// so it can be consulted while holding the manager lock, an instance
// lock, or (read-only, via Blocked) even the store lock.
type Breaker struct {
	pol Policy

	mu     sync.Mutex
	rng    *rand.Rand
	consec int  // consecutive failures
	trips  int  // quarantine entries so far (backoff exponent)
	open   bool // quarantined (possibly past the probe deadline)
	until  time.Time
	// probing marks that Allow admitted a probe that has not reported
	// an outcome yet; further Allows are refused so exactly one probe
	// runs at a time.
	probing bool
}

// NewBreaker builds a breaker with the policy's defaults resolved.
// seed decorrelates jitter across breakers without global randomness.
func NewBreaker(pol Policy, seed int64) *Breaker {
	return &Breaker{
		pol: pol.WithDefaults(),
		rng: rand.New(rand.NewSource(seed)),
	}
}

// Allow reports whether a refresh of this CQ may run now. While
// quarantined it returns false until the backoff deadline, then admits
// exactly one probe (further calls return false until the probe
// reports Success, Failure, or Release).
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return true
	}
	if b.probing || b.pol.Now().Before(b.until) {
		return false
	}
	b.probing = true
	return true
}

// Blocked reports whether the CQ is currently quarantined and before
// its probe deadline. Unlike Allow it has no side effect, which is
// what makes it safe as the push router's routing gate (evaluated
// under the store's commit lock): routing a CQ whose probe is due is
// fine — Allow at dispatch still admits only one probe.
func (b *Breaker) Blocked() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.open && !b.probing && b.pol.Now().Before(b.until)
}

// Release returns an Allow admission without an outcome: the trigger
// did not fire, so no refresh ran. Without this, an admitted probe
// whose trigger stayed quiet would strand the breaker in probing
// forever.
func (b *Breaker) Release() {
	b.mu.Lock()
	b.probing = false
	b.mu.Unlock()
}

// Success records a completed refresh: the breaker resets to Healthy.
func (b *Breaker) Success() {
	b.mu.Lock()
	b.consec, b.trips, b.open, b.probing = 0, 0, false, false
	b.mu.Unlock()
}

// Failure records a failed refresh (error, panic, or timeout). It
// returns true when this failure put the CQ into quarantine — either
// the threshold trip from healthy or a failed probe re-opening it —
// so the caller can count quarantine transitions.
func (b *Breaker) Failure() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consec++
	if b.pol.FailureThreshold < 0 {
		return false
	}
	now := b.pol.Now()
	if b.open {
		// Failed probe (or a late failure from an already-admitted
		// refresh): double down.
		b.probing = false
		b.trips++
		b.until = now.Add(b.pol.backoff(b.trips, b.rng))
		return true
	}
	if b.consec >= b.pol.FailureThreshold {
		b.open = true
		b.trips = 1
		b.until = now.Add(b.pol.backoff(1, b.rng))
		return true
	}
	return false
}

// SeedProbation puts a recovered breaker straight into probation: the
// CQ was unhealthy when its state was persisted, so it must prove
// itself with a probe rather than resume at full cadence — but there
// is no reason to sit out a stale backoff either, so the probe is due
// immediately.
func (b *Breaker) SeedProbation() {
	b.mu.Lock()
	b.open = true
	b.trips = 1
	b.consec = b.pol.FailureThreshold
	b.until = b.pol.Now()
	b.probing = false
	b.mu.Unlock()
}

// State reports the breaker's health.
func (b *Breaker) State() Health {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return Healthy
	}
	if b.probing || !b.pol.Now().Before(b.until) {
		return Probation
	}
	return Quarantined
}

// Failures reports the consecutive-failure count (CQState surface).
func (b *Breaker) Failures() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.consec
}
