package remote

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"github.com/diorama/continual/internal/relation"
)

// rwBuf is an in-memory duplex stream for codec tests: writes append to
// out, reads consume in.
type rwBuf struct {
	in  bytes.Buffer
	out bytes.Buffer
}

func (b *rwBuf) Read(p []byte) (int, error)  { return b.in.Read(p) }
func (b *rwBuf) Write(p []byte) (int, error) { return b.out.Write(p) }

// encodeFrames gob-encodes the values through a sender codec and
// returns the raw wire bytes.
func encodeFrames(t *testing.T, vs ...any) []byte {
	t.Helper()
	var buf rwBuf
	c := newCodec(&buf)
	for _, v := range vs {
		if err := c.send(v); err != nil {
			t.Fatal(err)
		}
	}
	return buf.out.Bytes()
}

func TestCodecRoundTripsRequests(t *testing.T) {
	var buf rwBuf
	sender := newCodec(&buf)
	reqs := []Request{
		{Op: OpSnapshot, Table: "stocks"},
		{Op: OpDeltaSince, Table: "stocks", Since: 42},
		{Op: OpApplyUpdates, Table: "t", Updates: []WireDeltaRow{
			{TID: 7, New: []relation.Value{relation.Str("x"), relation.Float(1.5)}},
		}},
	}
	for _, r := range reqs {
		if err := sender.send(r); err != nil {
			t.Fatal(err)
		}
	}
	recv := newCodec(&rwBuf{in: *bytes.NewBuffer(buf.out.Bytes())})
	for i, want := range reqs {
		var got Request
		if err := recv.recv(&got); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Op != want.Op || got.Table != want.Table || got.Since != want.Since {
			t.Errorf("frame %d: got %+v want %+v", i, got, want)
		}
	}
}

func TestCodecRejectsOversizedLengthPrefix(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], maxFrame+1)
	c := newCodec(&rwBuf{in: *bytes.NewBuffer(hdr[:])})
	var req Request
	err := c.recv(&req)
	if !errors.Is(err, errFrameTooLarge) {
		t.Errorf("oversized prefix: err = %v, want errFrameTooLarge", err)
	}
}

func TestCodecRejectsTruncatedFrames(t *testing.T) {
	wire := encodeFrames(t, Request{Op: OpSnapshot, Table: "stocks"})
	// Cut the wire at every possible byte boundary; each truncation must
	// error, never hang or return a partial decode.
	for cut := 0; cut < len(wire); cut++ {
		c := newCodec(&rwBuf{in: *bytes.NewBuffer(wire[:cut])})
		var req Request
		err := c.recv(&req)
		if err == nil {
			t.Fatalf("truncation at %d/%d decoded successfully", cut, len(wire))
		}
		if cut >= 4 && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("truncation at %d: err = %v, want unexpected EOF", cut, err)
		}
	}
}

func TestCodecRejectsGarbagePayload(t *testing.T) {
	payload := []byte("this is not gob data, not even close!!")
	var wire bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	wire.Write(hdr[:])
	wire.Write(payload)
	c := newCodec(&rwBuf{in: wire})
	var req Request
	if err := c.recv(&req); err == nil {
		t.Error("garbage payload decoded successfully")
	}
}

func TestCodecRejectsTrailingGarbageInFrame(t *testing.T) {
	// A frame whose prefix claims more bytes than the gob value inside
	// it: the remainder signals a desynced or corrupted stream.
	inner := encodeFrames(t, Request{Op: OpNow})
	payload := append(inner[4:], []byte("junk")...)
	var wire bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	wire.Write(hdr[:])
	wire.Write(payload)
	c := newCodec(&rwBuf{in: wire})
	var req Request
	err := c.recv(&req)
	if err == nil {
		t.Fatal("padded frame decoded successfully")
	}
}

func TestCodecRecvGarbageTable(t *testing.T) {
	// Table-driven hostile inputs: none may panic, all must error.
	cases := map[string][]byte{
		"empty":           nil,
		"short header":    {0x01, 0x02},
		"zero frame":      {0, 0, 0, 0},
		"tiny frame":      {0, 0, 0, 1, 0xFF},
		"all ones header": {0xFF, 0xFF, 0xFF, 0xFF},
		"random":          {0xDE, 0xAD, 0xBE, 0xEF, 0xCA, 0xFE, 0xBA, 0xBE, 0x00, 0x01},
	}
	for name, wire := range cases {
		c := newCodec(&rwBuf{in: *bytes.NewBuffer(wire)})
		var req Request
		if err := c.recv(&req); err == nil {
			t.Errorf("%s: decoded successfully", name)
		}
	}
}

// FuzzCodecRecv throws arbitrary bytes at the receive path: it must
// error or decode cleanly, never panic or over-allocate.
func FuzzCodecRecv(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3})
	var seedT testing.T
	f.Add(encodeFrames(&seedT, Request{Op: OpDeltaSince, Table: "stocks", Since: 7}))
	f.Fuzz(func(t *testing.T, data []byte) {
		c := newCodec(&rwBuf{in: *bytes.NewBuffer(data)})
		var req Request
		for i := 0; i < 4; i++ { // drain a few frames if they parse
			if err := c.recv(&req); err != nil {
				return
			}
		}
	})
}
