package bench

import (
	"fmt"
	"time"

	"github.com/diorama/continual/internal/algebra"
	"github.com/diorama/continual/internal/delta"
	"github.com/diorama/continual/internal/dra"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/storage"
	"github.com/diorama/continual/internal/vclock"
	"github.com/diorama/continual/internal/workload"
)

// engineFixture is a seeded store with a planned query and bookkeeping
// for chained refreshes.
type engineFixture struct {
	store  *storage.Store
	gen    *workload.Stocks
	plan   algebra.Plan
	prev   *relation.Relation
	lastTS vclock.Timestamp
}

func newEngineFixture(n int, seed int64, mix workload.Mix, query string) (*engineFixture, error) {
	store := storage.NewStore()
	if err := store.CreateTable("stocks", workload.StockSchema()); err != nil {
		return nil, err
	}
	gen := workload.NewStocks(store, "stocks", seed, mix)
	if err := gen.Seed(n); err != nil {
		return nil, err
	}
	plan, err := algebra.PlanSQL(query, store.Live())
	if err != nil {
		return nil, err
	}
	plan = algebra.Optimize(plan)
	prev, err := dra.InitialResult(plan, store.Live())
	if err != nil {
		return nil, err
	}
	return &engineFixture{store: store, gen: gen, plan: plan, prev: prev, lastTS: store.Now()}, nil
}

// ctx assembles DRA inputs for the pending window.
func (f *engineFixture) ctx() (*dra.Context, error) {
	d, err := f.store.DeltaSince("stocks", f.lastTS)
	if err != nil {
		return nil, err
	}
	return &dra.Context{
		Pre:    f.store.At(f.lastTS),
		Post:   f.store.Live(),
		Deltas: map[string]*delta.Delta{"stocks": d},
		LastTS: f.lastTS,
		Prev:   f.prev,
	}, nil
}

// measurePair times one DRA refresh and one full re-evaluation over the
// identical pending window — latency and allocations per run — then
// advances the fixture.
func (f *engineFixture) measurePair(engine *dra.Engine, iters int) (draT, fullT time.Duration, draAllocs, fullAllocs uint64, deltaRows int, err error) {
	ctx, err := f.ctx()
	if err != nil {
		return 0, 0, 0, 0, 0, err
	}
	deltaRows = ctx.Deltas["stocks"].Len()
	ts := f.store.Now()
	var res *dra.Result
	draT, draAllocs, _, err = stopwatchAllocs(iters, func() error {
		r, err := engine.Reevaluate(f.plan, ctx, ts)
		res = r
		return err
	})
	if err != nil {
		return 0, 0, 0, 0, 0, err
	}
	fullT, fullAllocs, _, err = stopwatchAllocs(iters, func() error {
		_, err := dra.FullReevaluate(f.plan, f.store.Live(), f.prev, ts)
		return err
	})
	if err != nil {
		return 0, 0, 0, 0, 0, err
	}
	f.prev = res.ApplyTo(f.prev)
	f.lastTS = ts
	f.store.CollectGarbage(f.lastTS)
	return draT, fullT, draAllocs, fullAllocs, deltaRows, nil
}

// E2 reproduces the worked Example 2 measurement: the σ_price>120 stock
// query refreshed after Example-1-style transactions, DRA vs complete
// re-evaluation.
func E2(scale Scale) (*Table, error) {
	t := &Table{
		ID:     "E2",
		Title:  "Example 2: sigma(price>120) differential vs complete re-evaluation",
		Note:   fmt.Sprintf("base |Stocks| = %d, one Example-1 transaction (1 insert, 1 modify, 1 delete) per refresh", scale.BaseRows),
		Header: []string{"refresh", "|dR|", "DRA us", "full us", "full/DRA", "DRA allocs", "full allocs"},
	}
	f, err := newEngineFixture(scale.BaseRows, 2, workload.DefaultMix, "SELECT * FROM stocks WHERE price > 120")
	if err != nil {
		return nil, err
	}
	engine := scale.NewEngine()
	for round := 1; round <= 5; round++ {
		if err := f.gen.Batch(3); err != nil {
			return nil, err
		}
		draT, fullT, draAllocs, fullAllocs, rows, err := f.measurePair(engine, scale.Iterations)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(round), fmt.Sprint(rows), us(draT), us(fullT), ratio(draT, fullT),
			fmt.Sprint(draAllocs), fmt.Sprint(fullAllocs),
		})
	}
	return t, nil
}

// E3 sweeps the update fraction |ΔR|/|R| to locate the crossover where
// complete re-evaluation overtakes DRA (Section 4.2's observation (iii)
// and the strawman arguments of 5.1).
func E3(scale Scale) (*Table, error) {
	t := &Table{
		ID:     "E3",
		Title:  "update-fraction sweep: DRA vs complete re-evaluation",
		Note:   fmt.Sprintf("base |R| = %d, sigma(price>120), modify-heavy mix", scale.BaseRows),
		Header: []string{"dR/R", "|dR|", "DRA us", "full us", "full/DRA"},
	}
	fractions := []float64{0.0005, 0.002, 0.01, 0.05, 0.2, 0.5, 1.0}
	for _, frac := range fractions {
		f, err := newEngineFixture(scale.BaseRows, 3, workload.DefaultMix, "SELECT * FROM stocks WHERE price > 120")
		if err != nil {
			return nil, err
		}
		n := int(frac * float64(scale.BaseRows))
		if n < 1 {
			n = 1
		}
		if err := f.gen.Batch(n); err != nil {
			return nil, err
		}
		draT, fullT, _, _, rows, err := f.measurePair(scale.NewEngine(), scale.Iterations)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f%%", frac*100), fmt.Sprint(rows), us(draT), us(fullT), ratio(draT, fullT),
		})
	}
	return t, nil
}

// E4 sweeps query selectivity at a fixed small update fraction
// (observation (ii): DRA pays off when the query is selective).
func E4(scale Scale) (*Table, error) {
	t := &Table{
		ID:     "E4",
		Title:  "selectivity sweep at 1% updates",
		Note:   fmt.Sprintf("base |R| = %d, prices uniform in [0,200), threshold sets selectivity", scale.BaseRows),
		Header: []string{"selectivity", "|result|", "DRA us", "full us", "full/DRA"},
	}
	for _, sel := range []float64{0.001, 0.01, 0.1, 0.5, 0.9} {
		threshold := 200 * (1 - sel)
		query := fmt.Sprintf("SELECT * FROM stocks WHERE price > %.3f", threshold)
		f, err := newEngineFixture(scale.BaseRows, 4, workload.DefaultMix, query)
		if err != nil {
			return nil, err
		}
		resultLen := f.prev.Len()
		if err := f.gen.Batch(scale.BaseRows / 100); err != nil {
			return nil, err
		}
		draT, fullT, _, _, _, err := f.measurePair(scale.NewEngine(), scale.Iterations)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1f%%", sel*100), fmt.Sprint(resultLen), us(draT), us(fullT), ratio(draT, fullT),
		})
	}
	return t, nil
}

// joinFixture builds the 3-way join A ⋈ B ⋈ C used by E5 and the
// ablations.
type joinFixture struct {
	store  *storage.Store
	plan   algebra.Plan
	prev   *relation.Relation
	lastTS vclock.Timestamp
	tids   map[string][]relation.TID
}

func newJoinFixture(n int, seed int64) (*joinFixture, error) {
	store := storage.NewStore()
	schemas := map[string]relation.Schema{
		"a": relation.MustSchema(relation.Column{Name: "x", Type: relation.TInt}, relation.Column{Name: "tag", Type: relation.TString}),
		"b": relation.MustSchema(relation.Column{Name: "x", Type: relation.TInt}, relation.Column{Name: "y", Type: relation.TInt}),
		"c": relation.MustSchema(relation.Column{Name: "y", Type: relation.TInt}, relation.Column{Name: "name", Type: relation.TString}),
	}
	for name, schema := range schemas {
		if err := store.CreateTable(name, schema); err != nil {
			return nil, err
		}
	}
	jf := &joinFixture{store: store, tids: make(map[string][]relation.TID)}
	// Key domains sized so each join key matches ~1 partner row.
	tx := store.Begin()
	for i := 0; i < n; i++ {
		ta, err := tx.Insert("a", []relation.Value{relation.Int(int64(i)), relation.Str(fmt.Sprintf("tag%d", i%7))})
		if err != nil {
			return nil, err
		}
		tb, err := tx.Insert("b", []relation.Value{relation.Int(int64(i)), relation.Int(int64(i * 2))})
		if err != nil {
			return nil, err
		}
		tc, err := tx.Insert("c", []relation.Value{relation.Int(int64(i * 2)), relation.Str(fmt.Sprintf("c%d", i))})
		if err != nil {
			return nil, err
		}
		jf.tids["a"] = append(jf.tids["a"], ta)
		jf.tids["b"] = append(jf.tids["b"], tb)
		jf.tids["c"] = append(jf.tids["c"], tc)
	}
	if _, err := tx.Commit(); err != nil {
		return nil, err
	}
	plan, err := algebra.PlanSQL("SELECT * FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y", store.Live())
	if err != nil {
		return nil, err
	}
	jf.plan = algebra.Optimize(plan)
	prev, err := dra.InitialResult(jf.plan, store.Live())
	if err != nil {
		return nil, err
	}
	jf.prev = prev
	jf.lastTS = store.Now()
	_ = seed
	return jf, nil
}

// touch modifies k tuples in each of the named tables.
func (jf *joinFixture) touch(k int, tables ...string) error {
	tx := jf.store.Begin()
	for _, table := range tables {
		for i := 0; i < k; i++ {
			tid := jf.tids[table][i]
			schema, err := jf.store.Schema(table)
			if err != nil {
				return err
			}
			snap, err := jf.store.Contents(table)
			if err != nil {
				return err
			}
			cur, ok := snap.Lookup(tid)
			if !ok {
				continue
			}
			vals := make([]relation.Value, len(cur.Values))
			copy(vals, cur.Values)
			// Mutate the non-key column.
			last := schema.Len() - 1
			if schema.Col(last).Type == relation.TString {
				vals[last] = relation.Str(cur.Values[last].AsString() + "'")
			} else {
				vals[last] = relation.Int(cur.Values[last].AsInt() + 1_000_000)
			}
			if err := tx.Update(table, tid, vals); err != nil {
				return err
			}
		}
	}
	_, err := tx.Commit()
	return err
}

func (jf *joinFixture) ctx() (*dra.Context, error) {
	deltas := make(map[string]*delta.Delta, 3)
	for _, table := range []string{"a", "b", "c"} {
		d, err := jf.store.DeltaSince(table, jf.lastTS)
		if err != nil {
			return nil, err
		}
		deltas[table] = d
	}
	return &dra.Context{
		Pre:    jf.store.At(jf.lastTS),
		Post:   jf.store.Live(),
		Deltas: deltas,
		LastTS: jf.lastTS,
		Prev:   jf.prev,
	}, nil
}

// E5 measures the truth-table expansion on a 3-way join as the number of
// changed operands k grows: 2^k - 1 terms (Algorithm 1 step 1).
func E5(scale Scale) (*Table, error) {
	t := &Table{
		ID:     "E5",
		Title:  "3-way join: truth-table terms vs changed operands",
		Note:   fmt.Sprintf("|A|=|B|=|C| = %d, 10 modified tuples per changed operand", scale.BaseRows/5),
		Header: []string{"changed", "terms", "DRA us", "full us", "full/DRA"},
	}
	subsets := [][]string{{"a"}, {"a", "b"}, {"a", "b", "c"}}
	for _, tables := range subsets {
		jf, err := newJoinFixture(scale.BaseRows/5, 5)
		if err != nil {
			return nil, err
		}
		if err := jf.touch(10, tables...); err != nil {
			return nil, err
		}
		ctx, err := jf.ctx()
		if err != nil {
			return nil, err
		}
		engine := scale.NewEngine()
		ts := jf.store.Now()
		var lastStats dra.Stats
		draT, err := stopwatch(scale.Iterations, func() error {
			res, err := engine.Reevaluate(jf.plan, ctx, ts)
			if err == nil {
				lastStats = res.Stats
			}
			return err
		})
		if err != nil {
			return nil, err
		}
		fullT, err := stopwatch(scale.Iterations, func() error {
			_, err := dra.FullReevaluate(jf.plan, jf.store.Live(), jf.prev, ts)
			return err
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("k=%d", len(tables)),
			fmt.Sprint(lastStats.Terms),
			us(draT), us(fullT), ratio(draT, fullT),
		})
	}
	return t, nil
}

// E12 measures the query-refinement rule of Section 5.2: a refresh whose
// update window is provably irrelevant performs no computation ("nothing
// needs to be returned"), where complete re-evaluation would rescan the
// base relation regardless. Batches are insert-only with prices strictly
// on one side of the predicate threshold, so relevance is exact.
func E12(scale Scale) (*Table, error) {
	t := &Table{
		ID:     "E12",
		Title:  "irrelevant-update refinement (Section 5.2)",
		Note:   "sigma(price>190), insert-only batches strictly below (irrelevant) or above (relevant) the threshold",
		Header: []string{"irrelevant share", "skipped/refreshes", "DRA us", "full us", "full/DRA"},
	}
	const rounds = 10
	for _, share := range []float64{0, 0.5, 1.0} {
		f, err := newEngineFixture(scale.BaseRows, 12, workload.DefaultMix, "SELECT * FROM stocks WHERE price > 190")
		if err != nil {
			return nil, err
		}
		engine := scale.NewEngine()
		skipped := 0
		var draTotal, fullTotal time.Duration
		for round := 0; round < rounds; round++ {
			lo, hi := 191.0, 200.0 // relevant batch
			if float64(round) < share*rounds {
				lo, hi = 10.0, 150.0 // irrelevant batch
			}
			tx := f.store.Begin()
			for i := 0; i < 20; i++ {
				price := lo + (hi-lo)*float64(i)/20
				if _, err := tx.Insert("stocks", []relation.Value{
					relation.Str("E12"), relation.Float(price), relation.Int(int64(i)),
				}); err != nil {
					return nil, err
				}
			}
			if _, err := tx.Commit(); err != nil {
				return nil, err
			}

			ctx, err := f.ctx()
			if err != nil {
				return nil, err
			}
			ts := f.store.Now()
			start := time.Now()
			res, err := engine.Reevaluate(f.plan, ctx, ts)
			if err != nil {
				return nil, err
			}
			draTotal += time.Since(start)
			if res.Stats.Skipped {
				skipped++
			}
			start = time.Now()
			if _, err := dra.FullReevaluate(f.plan, f.store.Live(), f.prev, ts); err != nil {
				return nil, err
			}
			fullTotal += time.Since(start)
			f.prev = res.ApplyTo(f.prev)
			f.lastTS = ts
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f%%", share*100),
			fmt.Sprintf("%d/%d", skipped, rounds),
			us(draTotal / rounds),
			us(fullTotal / rounds),
			ratio(draTotal, fullTotal),
		})
	}
	return t, nil
}

// E13 measures complete-result maintenance (Section 4.3: Et ∪ inserts −
// deletes) against recomputation as the maintained result grows.
func E13(scale Scale) (*Table, error) {
	t := &Table{
		ID:     "E13",
		Title:  "complete-result maintenance vs recompute",
		Note:   "fixed 20-row update batches; result size set by selectivity",
		Header: []string{"|result|", "DRA us", "full us", "full/DRA"},
	}
	for _, sel := range []float64{0.01, 0.1, 0.3, 0.6, 0.95} {
		threshold := 200 * (1 - sel)
		f, err := newEngineFixture(scale.BaseRows, 13,
			workload.DefaultMix, fmt.Sprintf("SELECT * FROM stocks WHERE price > %.3f", threshold))
		if err != nil {
			return nil, err
		}
		size := f.prev.Len()
		if err := f.gen.Batch(20); err != nil {
			return nil, err
		}
		draT, fullT, _, _, _, err := f.measurePair(scale.NewEngine(), scale.Iterations)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(size), us(draT), us(fullT), ratio(draT, fullT)})
	}
	return t, nil
}

// A1 ablates the term-evaluation heuristics (delta-first ordering and
// predicate application order, Section 5.2).
func A1(scale Scale) (*Table, error) {
	return ablateJoin(scale, "A1", "heuristic term ordering on vs off", func(e *dra.Engine, on bool) {
		e.UseHeuristics = on
	})
}

// A2 ablates delta compaction on a join: with heavy per-tuple churn in
// the window, folding each tuple to its net effect shrinks the signed
// rows every truth-table term must join against partner relations.
func A2(scale Scale) (*Table, error) {
	t := &Table{
		ID:     "A2",
		Title:  "delta compaction on vs off (churn-heavy join window)",
		Note:   "3-way join; 10 tuples of A modified 40 times each between refreshes",
		Header: []string{"config", "signed rows", "DRA us"},
	}
	for _, compact := range []bool{true, false} {
		jf, err := newJoinFixture(scale.BaseRows/5, 21)
		if err != nil {
			return nil, err
		}
		for round := 0; round < 40; round++ {
			if err := jf.touch(10, "a"); err != nil {
				return nil, err
			}
		}
		engine := scale.NewEngine()
		engine.CompactDeltas = compact
		ctx, err := jf.ctx()
		if err != nil {
			return nil, err
		}
		ts := jf.store.Now()
		var lastStats dra.Stats
		d, err := stopwatch(scale.Iterations, func() error {
			res, err := engine.Reevaluate(jf.plan, ctx, ts)
			if err == nil {
				lastStats = res.Stats
			}
			return err
		})
		if err != nil {
			return nil, err
		}
		name := "compaction on"
		if !compact {
			name = "compaction off"
		}
		t.Rows = append(t.Rows, []string{name, fmt.Sprint(lastStats.DeltaRows), us(d)})
	}
	return t, nil
}

// A3 ablates hash joins inside differential terms.
func A3(scale Scale) (*Table, error) {
	return ablateJoin(scale, "A3", "hash join vs nested loop in term evaluation", func(e *dra.Engine, on bool) {
		e.UseHashJoin = on
	})
}

func ablateJoin(scale Scale, id, title string, set func(*dra.Engine, bool)) (*Table, error) {
	t := &Table{
		ID:     id,
		Title:  title,
		Note:   fmt.Sprintf("3-way join, |A|=|B|=|C| = %d, 10 modified tuples in A and C", scale.BaseRows/5),
		Header: []string{"config", "DRA us"},
	}
	for _, on := range []bool{true, false} {
		jf, err := newJoinFixture(scale.BaseRows/5, 31)
		if err != nil {
			return nil, err
		}
		if err := jf.touch(10, "a", "c"); err != nil {
			return nil, err
		}
		ctx, err := jf.ctx()
		if err != nil {
			return nil, err
		}
		engine := scale.NewEngine()
		set(engine, on)
		ts := jf.store.Now()
		d, err := stopwatch(scale.Iterations, func() error {
			_, err := engine.Reevaluate(jf.plan, ctx, ts)
			return err
		})
		if err != nil {
			return nil, err
		}
		name := "on"
		if !on {
			name = "off"
		}
		t.Rows = append(t.Rows, []string{name, us(d)})
	}
	return t, nil
}

// A5 measures the maintained-index join extension (dra.IncrementalJoin)
// against the paper's truth-table evaluation and complete re-evaluation
// on the E5 workload: the maintained variant avoids the per-refresh
// partner scans that bound Algorithm 1's join gains.
func A5(scale Scale) (*Table, error) {
	t := &Table{
		ID:     "A5",
		Title:  "maintained-index join vs truth table vs complete re-evaluation",
		Note:   fmt.Sprintf("3-way join, |A|=|B|=|C| = %d, 10 modified tuples in A per refresh", scale.BaseRows/5),
		Header: []string{"strategy", "refresh us"},
	}
	jf, err := newJoinFixture(scale.BaseRows/5, 51)
	if err != nil {
		return nil, err
	}
	ij, err := dra.NewIncrementalJoin(scale.NewEngine(), jf.plan, jf.store.Live())
	if err != nil {
		return nil, err
	}
	// The maintainer folds state destructively, so measure the median over
	// a sequence of real windows (one touch + Step per sample) instead of
	// re-running a single window.
	rounds := scale.Iterations*2 + 1
	incTimes := make([]time.Duration, 0, rounds)
	for r := 0; r < rounds; r++ {
		if err := jf.touch(10, "a"); err != nil {
			return nil, err
		}
		ctx, err := jf.ctx()
		if err != nil {
			return nil, err
		}
		ts := jf.store.Now()
		start := time.Now()
		res, err := ij.Step(ctx, ts)
		if err != nil {
			return nil, err
		}
		incTimes = append(incTimes, time.Since(start))
		jf.prev = res.ApplyTo(jf.prev)
		jf.lastTS = ts
	}
	sortDurations(incTimes)
	incT := incTimes[len(incTimes)/2]

	// Truth table and complete re-evaluation over the final pending window
	// shape (a fresh identical touch).
	if err := jf.touch(10, "a"); err != nil {
		return nil, err
	}
	ctx, err := jf.ctx()
	if err != nil {
		return nil, err
	}
	ts := jf.store.Now()
	engine := scale.NewEngine()
	ttT, err := stopwatch(scale.Iterations, func() error {
		_, err := engine.Reevaluate(jf.plan, ctx, ts)
		return err
	})
	if err != nil {
		return nil, err
	}
	fullT, err := stopwatch(scale.Iterations, func() error {
		_, err := dra.FullReevaluate(jf.plan, jf.store.Live(), jf.prev, ts)
		return err
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows,
		[]string{"maintained indexes (A5)", us(incT)},
		[]string{"truth table (Algorithm 1)", us(ttT)},
		[]string{"complete re-evaluation", us(fullT)},
	)
	return t, nil
}
