package durable_test

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"github.com/diorama/continual/internal/cq"
	"github.com/diorama/continual/internal/durable"
	"github.com/diorama/continual/internal/faults"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/storage"
	"github.com/diorama/continual/internal/wal"
)

// The crash property test: a deterministic workload runs against a
// durable system on a fault-injecting filesystem with a kill-point
// armed at every write boundary in turn. After each crash, recovery
// must land on a clean prefix of the acknowledged commits (at most one
// ambiguous extra — written but never acknowledged), the workload must
// be able to continue from exactly that prefix, and the final table
// AND continual-query results must match a serial no-crash oracle.

type op struct {
	kind int // 0 insert, 1 update, 2 delete
	name string
	val  int64
}

// buildScript generates a workload whose update/delete targets are
// always alive, addressing rows by value (name) so it can be applied
// to any store regardless of TID assignment.
func buildScript(seed int64, n int) []op {
	rng := rand.New(rand.NewSource(seed))
	live := []string{"seed-hi", "seed-lo"}
	ops := make([]op, 0, n)
	for i := 0; i < n; i++ {
		kind := rng.Intn(3)
		if len(live) <= 1 {
			kind = 0
		}
		switch kind {
		case 0:
			name := fmt.Sprintf("r%02d", i)
			ops = append(ops, op{kind: 0, name: name, val: rng.Int63n(100)})
			live = append(live, name)
		case 1:
			ops = append(ops, op{kind: 1, name: live[rng.Intn(len(live))], val: rng.Int63n(100)})
		case 2:
			j := rng.Intn(len(live))
			ops = append(ops, op{kind: 2, name: live[j]})
			live = append(live[:j], live[j+1:]...)
		}
	}
	return ops
}

func findTID(t *testing.T, s *storage.Store, name string) relation.TID {
	t.Helper()
	snap, err := s.Snapshot("stocks")
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range snap.Tuples() {
		if tu.Values[0].AsString() == name {
			return tu.TID
		}
	}
	t.Fatalf("row %q not found", name)
	return 0
}

// applyOp runs one scripted operation as a transaction. Lookup errors
// are test bugs (the script keeps targets alive); commit errors are
// returned — they are how the workload observes the crash.
func applyOp(t *testing.T, s *storage.Store, o op) error {
	t.Helper()
	tx := s.Begin()
	switch o.kind {
	case 0:
		if _, err := tx.Insert("stocks", []relation.Value{relation.Str(o.name), relation.Int(o.val)}); err != nil {
			t.Fatal(err)
		}
	case 1:
		tid := findTID(t, s, o.name)
		if err := tx.Update("stocks", tid, []relation.Value{relation.Str(o.name), relation.Int(o.val)}); err != nil {
			t.Fatal(err)
		}
	case 2:
		if err := tx.Delete("stocks", findTID(t, s, o.name)); err != nil {
			t.Fatal(err)
		}
	}
	_, err := tx.Commit()
	return err
}

// setup creates the table, seeds two rows, and registers the watch CQ.
func setup(t *testing.T, store *storage.Store, mgr *cq.Manager) {
	t.Helper()
	if err := store.CreateTable("stocks", stockSchema()); err != nil {
		t.Fatal(err)
	}
	insertRow(t, store, "seed-hi", 90)
	insertRow(t, store, "seed-lo", 10)
	if mgr != nil {
		if _, err := mgr.RegisterSQL(watchQuery); err != nil {
			t.Fatal(err)
		}
	}
}

// oracleRun executes the script serially in memory and returns the
// table contents after every prefix: oracle[i] is the state after i
// scripted ops (oracle[0] is the seeded table).
func oracleRun(t *testing.T, ops []op) []*relation.Relation {
	t.Helper()
	s := storage.NewStore()
	setup(t, s, nil)
	snaps := make([]*relation.Relation, 0, len(ops)+1)
	snap, _ := s.Snapshot("stocks")
	snaps = append(snaps, snap.Clone())
	for _, o := range ops {
		if err := applyOp(t, s, o); err != nil {
			t.Fatal(err)
		}
		snap, _ := s.Snapshot("stocks")
		snaps = append(snaps, snap.Clone())
	}
	return snaps
}

// expectedResult filters a table state through the watch predicate
// (v >= 50) — MODE COMPLETE makes the CQ result exactly this.
func expectedResult(t *testing.T, table *relation.Relation) *relation.Relation {
	t.Helper()
	out := relation.New(table.Schema())
	for _, tu := range table.Tuples() {
		if tu.Values[1].AsInt() >= 50 {
			if err := out.Insert(tu); err != nil {
				t.Fatal(err)
			}
		}
	}
	return out
}

// runScript drives the workload: an op per step, a Poll every third
// op, a checkpoint midway. Returns how many ops were acknowledged
// before the first commit failure (the crash).
func runScript(t *testing.T, sys *durable.System, ops []op, ckptAt int) int {
	t.Helper()
	for i, o := range ops {
		if err := applyOp(t, sys.Store, o); err != nil {
			return i
		}
		if (i+1)%3 == 0 {
			_, _ = sys.Manager.Poll() // a crash surfaces here too; instance state is untouched on journal failure
		}
		if i+1 == ckptAt {
			_ = sys.Checkpoint() // best effort; a crash mid-checkpoint must not lose data
		}
	}
	return len(ops)
}

// verifyRecovery opens the crashed directory and checks the full
// differential-recovery contract against the oracle.
func verifyRecovery(t *testing.T, fs *faults.MemFS, ops []op, oracle []*relation.Relation, acked, maxPreSeq int, tag string) {
	t.Helper()
	sys, err := durable.Open(durable.Options{
		Dir:   "data",
		FS:    fs,
		Fsync: wal.FsyncAlways,
		CQ:    cq.Config{UseDRA: true, AutoGC: true},
	})
	if err != nil {
		t.Fatalf("%s: recovery failed: %v", tag, err)
	}
	defer sys.Close()
	if sys.Recovery.CQs != 1 {
		t.Fatalf("%s: resumed %d CQs, want 1", tag, sys.Recovery.CQs)
	}

	// The recovered table must be some oracle prefix: everything
	// acknowledged survived (fsync=always), plus at most one commit
	// that was written and flushed but never acknowledged.
	got, err := sys.Store.Snapshot("stocks")
	if err != nil {
		t.Fatal(err)
	}
	m := -1
	for cand := acked; cand <= acked+1 && cand < len(oracle); cand++ {
		if got.EqualContents(oracle[cand]) {
			m = cand
			break
		}
	}
	if m < 0 {
		t.Fatalf("%s: recovered state is no oracle prefix >= %d acked:\n%v", tag, acked, got)
	}

	// Post-crash notifications must continue the sequence past
	// everything delivered before the crash — never a replay.
	var postSeqs []int
	cancel, err := sys.Manager.SubscribeFunc("watch", func(n cq.Notification, closed bool) {
		if !closed {
			postSeqs = append(postSeqs, n.Seq)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	// Continue the workload from exactly the recovered prefix; the
	// crash becomes an invisible hiccup.
	for i := m; i < len(ops); i++ {
		if err := applyOp(t, sys.Store, ops[i]); err != nil {
			t.Fatalf("%s: continue op %d: %v", tag, i, err)
		}
		if (i+1)%3 == 0 {
			if _, err := sys.Manager.Poll(); err != nil {
				t.Fatalf("%s: continue poll: %v", tag, err)
			}
		}
	}
	if _, err := sys.Manager.Poll(); err != nil { // differential catch-up over whatever remains
		t.Fatalf("%s: final poll: %v", tag, err)
	}

	final, _ := sys.Store.Snapshot("stocks")
	if !final.EqualContents(oracle[len(oracle)-1]) {
		t.Fatalf("%s: final table diverged from oracle", tag)
	}
	res, err := sys.Manager.Result("watch")
	if err != nil {
		t.Fatal(err)
	}
	if want := expectedResult(t, final); !res.EqualContents(want) {
		t.Fatalf("%s: final cq result %v, want %v", tag, res, want)
	}
	prev := maxPreSeq
	for _, s := range postSeqs {
		if s <= prev {
			t.Fatalf("%s: notification seq %d not past %d (pre-crash max %d, post %v)", tag, s, prev, maxPreSeq, postSeqs)
		}
		prev = s
	}
}

// crashRun executes setup, arms the kill point, runs the script until
// the crash, then hands off to verifyRecovery.
func crashRun(t *testing.T, seed int64, ops []op, oracle []*relation.Relation, kill, ckptAt int, tag string) {
	t.Helper()
	fs := faults.NewMemFS(seed)
	sys, err := durable.Open(durable.Options{
		Dir:   "data",
		FS:    fs,
		Fsync: wal.FsyncAlways,
		CQ:    cq.Config{UseDRA: true, AutoGC: true},
	})
	if err != nil {
		t.Fatalf("%s: open: %v", tag, err)
	}
	setup(t, sys.Store, sys.Manager)

	var maxPreSeq int
	cancel, err := sys.Manager.SubscribeFunc("watch", func(n cq.Notification, closed bool) {
		if !closed && n.Seq > maxPreSeq {
			maxPreSeq = n.Seq
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	fs.KillAfterWrites(kill)
	acked := runScript(t, sys, ops, ckptAt)
	if acked == len(ops) && !fs.Frozen() {
		cancel()
		_ = sys.Manager.Close()
		t.Fatalf("%s: kill point %d beyond workload", tag, kill)
	}
	cancel()
	_ = sys.Manager.Close() // the broken log stays; recovery reads the filesystem
	fs.Crash()
	verifyRecovery(t, fs, ops, oracle, acked, maxPreSeq, tag)
}

// TestCrashSweep arms a kill at every single write boundary of the
// scripted workload — the exhaustive version of "kill -9 at a random
// point".
func TestCrashSweep(t *testing.T) {
	const scriptLen = 16
	ops := buildScript(42, scriptLen)
	oracle := oracleRun(t, ops)
	ckptAt := scriptLen / 2

	// Clean instrumented run to learn the write-count budget of the
	// script region (setup writes are excluded: the sweep arms after
	// setup).
	fs := faults.NewMemFS(0)
	sys, err := durable.Open(durable.Options{
		Dir:   "data",
		FS:    fs,
		Fsync: wal.FsyncAlways,
		CQ:    cq.Config{UseDRA: true, AutoGC: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	setup(t, sys.Store, sys.Manager)
	preWrites := fs.Writes()
	if got := runScript(t, sys, ops, ckptAt); got != len(ops) {
		t.Fatalf("clean run stopped at %d", got)
	}
	scriptWrites := fs.Writes() - preWrites
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	if scriptWrites < scriptLen {
		t.Fatalf("suspicious write count %d for %d ops", scriptWrites, scriptLen)
	}

	for kill := 1; kill <= scriptWrites; kill++ {
		crashRun(t, int64(1000+kill), ops, oracle, kill, ckptAt, fmt.Sprintf("kill=%d", kill))
	}
}

// TestCrashRandomizedWorkloads drives differently-shaped scripts with
// randomly placed kills and crash-flush outcomes — the seeds vary the
// workload mix, the kill placement, and which pending bytes survive.
func TestCrashRandomizedWorkloads(t *testing.T) {
	for _, seed := range []int64{7, 19, 1996} {
		ops := buildScript(seed, 20)
		oracle := oracleRun(t, ops)
		rng := rand.New(rand.NewSource(seed * 31))
		for trial := 0; trial < 6; trial++ {
			kill := 1 + rng.Intn(30)
			tag := fmt.Sprintf("seed=%d trial=%d kill=%d", seed, trial, kill)
			crashRun(t, seed*100+int64(trial), ops, oracle, kill, len(ops)/3, tag)
		}
	}
}

// TestCommitFailsCleanAtCrash pins the fail-stop behavior the sweep
// relies on: once a write is refused, the commit reports an error and
// the in-memory store is not mutated.
func TestCommitFailsCleanAtCrash(t *testing.T) {
	fs := faults.NewMemFS(5)
	sys := openSys(t, fs, 0)
	setup(t, sys.Store, sys.Manager)
	before, _ := sys.Store.Snapshot("stocks")
	fs.KillAfterWrites(1)
	err := applyOp(t, sys.Store, op{kind: 0, name: "x", val: 1})
	if !errors.Is(err, faults.ErrCrashed) {
		t.Fatalf("commit during crash: %v, want ErrCrashed", err)
	}
	after, _ := sys.Store.Snapshot("stocks")
	if !after.EqualContents(before) {
		t.Fatal("failed commit mutated the store")
	}
	_ = sys.Manager.Close()
}
