package durable_test

import (
	"testing"
	"time"

	"github.com/diorama/continual/internal/cq"
	"github.com/diorama/continual/internal/durable"
	"github.com/diorama/continual/internal/faults"
	"github.com/diorama/continual/internal/guard"
	"github.com/diorama/continual/internal/obs"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/storage"
	"github.com/diorama/continual/internal/wal"
)

func stockSchema() relation.Schema {
	return relation.MustSchema(
		relation.Column{Name: "name", Type: relation.TString},
		relation.Column{Name: "v", Type: relation.TInt},
	)
}

func openSys(t *testing.T, fs wal.FS, every int) *durable.System {
	t.Helper()
	sys, err := durable.Open(durable.Options{
		Dir:             "data",
		FS:              fs,
		Fsync:           wal.FsyncAlways,
		CheckpointEvery: every,
		CQ:              cq.Config{UseDRA: true, AutoGC: true},
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return sys
}

func insertRow(t *testing.T, s *storage.Store, name string, v int64) {
	t.Helper()
	tx := s.Begin()
	if _, err := tx.Insert("stocks", []relation.Value{relation.Str(name), relation.Int(v)}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

const watchQuery = `CREATE CONTINUAL QUERY watch AS
	SELECT name, v FROM stocks WHERE v >= 50
	TRIGGER UPDATES 1
	MODE COMPLETE`

func TestLifecycleAcrossRestart(t *testing.T) {
	fs := faults.NewMemFS(1)
	sys := openSys(t, fs, 0)
	if sys.Recovery.HasState() {
		t.Fatalf("fresh directory reported state: %+v", sys.Recovery)
	}
	if err := sys.Store.CreateTable("stocks", stockSchema()); err != nil {
		t.Fatal(err)
	}
	insertRow(t, sys.Store, "DEC", 150)
	insertRow(t, sys.Store, "IBM", 40)
	if _, err := sys.Manager.RegisterSQL(watchQuery); err != nil {
		t.Fatal(err)
	}
	insertRow(t, sys.Store, "HP", 99)
	if _, err := sys.Manager.Poll(); err != nil {
		t.Fatal(err)
	}
	wantRes, err := sys.Manager.Result("watch")
	if err != nil {
		t.Fatal(err)
	}
	wantState, err := sys.Manager.State("watch")
	if err != nil {
		t.Fatal(err)
	}
	wantContents, _ := sys.Store.Snapshot("stocks")
	wantCounts := sys.Store.ChangeCounts()
	if err := sys.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	sys2 := openSys(t, fs, 0)
	defer sys2.Close()
	// Close checkpointed, so recovery loads it and replays nothing.
	if !sys2.Recovery.FromCheckpoint || sys2.Recovery.Records != 0 || sys2.Recovery.CQs != 1 {
		t.Fatalf("recovery: %+v", sys2.Recovery)
	}
	got, err := sys2.Store.Snapshot("stocks")
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualContents(wantContents) {
		t.Fatal("table contents differ after restart")
	}
	if counts := sys2.Store.ChangeCounts(); counts["stocks"] != wantCounts["stocks"] {
		t.Fatalf("change counts: %v vs %v", counts, wantCounts)
	}
	gotRes, err := sys2.Manager.Result("watch")
	if err != nil {
		t.Fatal(err)
	}
	if !gotRes.EqualContents(wantRes) {
		t.Fatal("cq result differs after restart")
	}
	st, err := sys2.Manager.State("watch")
	if err != nil {
		t.Fatal(err)
	}
	if st.Seq != wantState.Seq || st.LastExec != wantState.LastExec {
		t.Fatalf("cq state after restart: %+v, want seq=%d lastExec=%d", st, wantState.Seq, wantState.LastExec)
	}

	// The resumed CQ keeps computing differentially: a new qualifying
	// row fires the trigger and the seq continues past the old one.
	insertRow(t, sys2.Store, "SUN", 77)
	if _, err := sys2.Manager.Poll(); err != nil {
		t.Fatal(err)
	}
	st2, _ := sys2.Manager.State("watch")
	if st2.Seq != wantState.Seq+1 {
		t.Fatalf("post-restart seq %d, want %d", st2.Seq, wantState.Seq+1)
	}
	res2, _ := sys2.Manager.Result("watch")
	if res2.Len() != 3 { // DEC, HP, SUN
		t.Fatalf("post-restart result len %d: %v", res2.Len(), res2)
	}
}

func TestDropIsDurable(t *testing.T) {
	fs := faults.NewMemFS(2)
	sys := openSys(t, fs, 0)
	if err := sys.Store.CreateTable("stocks", stockSchema()); err != nil {
		t.Fatal(err)
	}
	insertRow(t, sys.Store, "DEC", 150)
	if _, err := sys.Manager.RegisterSQL(watchQuery); err != nil {
		t.Fatal(err)
	}
	if err := sys.Manager.Drop("watch"); err != nil {
		t.Fatal(err)
	}
	// Crash without a close: the drop must still be gone after replay.
	fs.CrashClean()
	sys2 := openSys(t, fs, 0)
	defer sys2.Close()
	if sys2.Recovery.CQs != 0 {
		t.Fatalf("dropped cq resurrected: %+v", sys2.Recovery)
	}
	if names := sys2.Manager.Names(); len(names) != 0 {
		t.Fatalf("names after drop+recovery: %v", names)
	}
}

func TestAutoCheckpointTriggers(t *testing.T) {
	fs := faults.NewMemFS(3)
	sys := openSys(t, fs, 4)
	if err := sys.Store.CreateTable("stocks", stockSchema()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		insertRow(t, sys.Store, "r", int64(i))
	}
	// The threshold checkpoint runs on a background goroutine; wait for
	// a checkpoint file to land.
	deadline := time.Now().Add(5 * time.Second)
	for {
		names, err := fs.List("data")
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, n := range names {
			if len(n) > 10 && n[:10] == "checkpoint" {
				found = true
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no automatic checkpoint after threshold; dir: %v", names)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	sys2 := openSys(t, fs, 0)
	defer sys2.Close()
	got, _ := sys2.Store.Snapshot("stocks")
	if got.Len() != 8 {
		t.Fatalf("recovered %d rows, want 8", got.Len())
	}
}

func TestRecoveryMetrics(t *testing.T) {
	fs := faults.NewMemFS(4)
	sys := openSys(t, fs, 0)
	if err := sys.Store.CreateTable("stocks", stockSchema()); err != nil {
		t.Fatal(err)
	}
	insertRow(t, sys.Store, "DEC", 1)
	insertRow(t, sys.Store, "IBM", 2)
	fs.CrashClean() // skip the close checkpoint so records must replay

	reg := obs.NewRegistry()
	sys2, err := durable.Open(durable.Options{
		Dir:     "data",
		FS:      fs,
		Fsync:   wal.FsyncAlways,
		Metrics: reg,
		CQ:      cq.Config{UseDRA: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	if sys2.Recovery.Records != 3 { // create + 2 txs
		t.Fatalf("records replayed: %+v", sys2.Recovery)
	}
	snap := reg.Snapshot()
	if snap.Gauges["wal.records_replayed"] != 3 {
		t.Fatalf("wal.records_replayed gauge: %v", snap.Gauges)
	}
	if snap.Gauges["wal.recovery_ns"] <= 0 {
		t.Fatalf("wal.recovery_ns gauge: %v", snap.Gauges)
	}
}

// TestQuarantineSurvivesRecovery is the satellite kill-point test: a
// poison CQ (division by zero once a v=0 row lands) trips quarantine,
// the registry checkpoints, and the process dies without a clean close.
// After recovery the CQ must resume in probation — not healthy (it
// would hammer the poll loop again) and not silently dropped — and a
// failing probe must re-quarantine it, while a healthy CQ on the same
// table keeps refreshing throughout.
func TestQuarantineSurvivesRecovery(t *testing.T) {
	fs := faults.NewMemFS(7)
	guardCfg := cq.Config{
		UseDRA: true, AutoGC: true,
		Guard: guard.Policy{FailureThreshold: 1, BackoffBase: time.Hour, BackoffMax: time.Hour},
		Logf:  func(string, ...any) {},
	}
	open := func() *durable.System {
		t.Helper()
		sys, err := durable.Open(durable.Options{
			Dir: "data", FS: fs, Fsync: wal.FsyncAlways, CQ: guardCfg,
		})
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		return sys
	}
	sys := open()
	if err := sys.Store.CreateTable("stocks", stockSchema()); err != nil {
		t.Fatal(err)
	}
	insertRow(t, sys.Store, "seed", 60)
	if _, err := sys.Manager.RegisterSQL(watchQuery); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Manager.RegisterSQL(`CREATE CONTINUAL QUERY poison AS
		SELECT name FROM stocks WHERE 100 / v > 1
		TRIGGER UPDATES 1
		MODE COMPLETE`); err != nil {
		t.Fatal(err)
	}
	insertRow(t, sys.Store, "zero", 0) // poison: 100 / 0 fails evaluation
	if _, err := sys.Manager.Poll(); err == nil {
		t.Fatal("poison poll returned nil error")
	}
	st, err := sys.Manager.State("poison")
	if err != nil {
		t.Fatal(err)
	}
	if st.Health != "quarantined" {
		t.Fatalf("pre-crash health = %q", st.Health)
	}
	// The healthy CQ refreshed through the same round.
	if wst, _ := sys.Manager.State("watch"); wst.Health != "healthy" || wst.Seq < 2 {
		t.Fatalf("watch state = %+v", wst)
	}
	if err := sys.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	fs.CrashClean() // kill-point: no clean shutdown

	sys2 := open()
	defer sys2.Close()
	st, err = sys2.Manager.State("poison")
	if err != nil {
		t.Fatal(err)
	}
	if st.Health != "probation" {
		t.Fatalf("post-recovery health = %q, want probation", st.Health)
	}
	if wst, _ := sys2.Manager.State("watch"); wst.Health != "healthy" {
		t.Fatalf("watch resumed %q", wst.Health)
	}
	// Probation seeded at recovery makes the probe due immediately
	// (no stale hour-long backoff); it fails on the still-poisoned
	// data: straight back to quarantine.
	insertRow(t, sys2.Store, "more", 70)
	if _, err := sys2.Manager.Poll(); err == nil {
		t.Fatal("probe poll returned nil error")
	}
	st, _ = sys2.Manager.State("poison")
	if st.Health != "quarantined" {
		t.Fatalf("post-probe health = %q, want quarantined", st.Health)
	}
	// The healthy CQ caught up differentially across crash + probe.
	wres, err := sys2.Manager.Result("watch")
	if err != nil {
		t.Fatal(err)
	}
	if wres.Len() != 2 { // seed(60), more(70)
		t.Fatalf("watch result = %d rows", wres.Len())
	}
}
