package relation

import (
	"errors"
	"math/rand"
	"testing"
)

func stockSchema() Schema {
	return MustSchema(
		Column{Name: "tid", Type: TInt},
		Column{Name: "name", Type: TString},
		Column{Name: "price", Type: TFloat},
	)
}

func stockRel(t *testing.T) *Relation {
	t.Helper()
	r := New(stockSchema())
	rows := []struct {
		tid   TID
		name  string
		price float64
	}{
		{100000, "DEC", 150},
		{92394, "QLI", 145},
		{7, "IBM", 75},
	}
	for _, row := range rows {
		err := r.Insert(Tuple{TID: row.tid, Values: []Value{Int(int64(row.tid)), Str(row.name), Float(row.price)}})
		if err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	return r
}

func TestSchemaBasics(t *testing.T) {
	s := stockSchema()
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if i, ok := s.ColIndex("PRICE"); !ok || i != 2 {
		t.Errorf("ColIndex(PRICE) = %d,%v", i, ok)
	}
	if _, ok := s.ColIndex("missing"); ok {
		t.Error("ColIndex(missing) should fail")
	}
	if _, err := NewSchema(Column{Name: "a", Type: TInt}, Column{Name: "A", Type: TInt}); err == nil {
		t.Error("duplicate column names should error")
	}
}

func TestSchemaQualifiedLookup(t *testing.T) {
	s := MustSchema(
		Column{Name: "stocks.name", Type: TString},
		Column{Name: "trades.volume", Type: TInt},
	)
	if i, ok := s.ColIndex("name"); !ok || i != 0 {
		t.Errorf("bare suffix lookup = %d,%v", i, ok)
	}
	if i, ok := s.ColIndex("stocks.name"); !ok || i != 0 {
		t.Errorf("qualified lookup = %d,%v", i, ok)
	}
	amb := MustSchema(
		Column{Name: "a.x", Type: TInt},
		Column{Name: "b.x", Type: TInt},
	)
	if _, ok := amb.ColIndex("x"); ok {
		t.Error("ambiguous bare lookup should fail")
	}
}

func TestSchemaQualify(t *testing.T) {
	q := stockSchema().Qualify("stocks")
	if q.Col(0).Name != "stocks.tid" {
		t.Errorf("Qualify: %s", q.Col(0).Name)
	}
	// Qualifying twice leaves qualified names alone.
	q2 := q.Qualify("again")
	if q2.Col(0).Name != "stocks.tid" {
		t.Errorf("double Qualify: %s", q2.Col(0).Name)
	}
}

func TestRelationInsertLookupDelete(t *testing.T) {
	r := stockRel(t)
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	tu, ok := r.Lookup(92394)
	if !ok || tu.Values[1].AsString() != "QLI" {
		t.Fatalf("Lookup(92394) = %v, %v", tu, ok)
	}
	if err := r.Insert(Tuple{TID: 7, Values: []Value{Int(7), Str("dup"), Float(0)}}); !errors.Is(err, ErrDuplicateTID) {
		t.Errorf("duplicate insert err = %v", err)
	}
	if err := r.Insert(Tuple{TID: 8, Values: []Value{Int(8)}}); !errors.Is(err, ErrArity) {
		t.Errorf("arity err = %v", err)
	}
	if err := r.Delete(100000); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if r.Has(100000) || r.Len() != 2 {
		t.Error("delete did not remove tuple")
	}
	if err := r.Delete(100000); !errors.Is(err, ErrNoSuchTID) {
		t.Errorf("double delete err = %v", err)
	}
	// Index still consistent after swap-remove.
	for _, tid := range []TID{92394, 7} {
		got, ok := r.Lookup(tid)
		if !ok || got.TID != tid {
			t.Errorf("post-delete Lookup(%d) broken", tid)
		}
	}
}

func TestRelationUpdate(t *testing.T) {
	r := stockRel(t)
	if err := r.Update(7, []Value{Int(7), Str("IBM"), Float(80)}); err != nil {
		t.Fatalf("update: %v", err)
	}
	tu, _ := r.Lookup(7)
	if tu.Values[2].AsFloat() != 80 {
		t.Error("update did not take")
	}
	if err := r.Update(999, []Value{Int(0), Str(""), Float(0)}); !errors.Is(err, ErrNoSuchTID) {
		t.Errorf("update missing tid err = %v", err)
	}
}

func TestRelationCloneIsDeep(t *testing.T) {
	r := stockRel(t)
	c := r.Clone()
	if err := c.Update(7, []Value{Int(7), Str("IBM"), Float(999)}); err != nil {
		t.Fatal(err)
	}
	orig, _ := r.Lookup(7)
	if orig.Values[2].AsFloat() == 999 {
		t.Error("Clone shares tuple storage with original")
	}
}

func TestSetOperations(t *testing.T) {
	a := stockRel(t)
	b := New(stockSchema())
	_ = b.Insert(Tuple{TID: 7, Values: []Value{Int(7), Str("IBM"), Float(75)}})
	_ = b.Insert(Tuple{TID: 555, Values: []Value{Int(555), Str("MAC"), Float(117)}})

	u, err := a.Union(b)
	if err != nil || u.Len() != 4 {
		t.Fatalf("Union len = %d err %v", u.Len(), err)
	}
	m, err := a.Minus(b)
	if err != nil || m.Len() != 2 || m.Has(7) {
		t.Fatalf("Minus = %v err %v", m, err)
	}
	ix, err := a.Intersect(b)
	if err != nil || ix.Len() != 1 || !ix.Has(7) {
		t.Fatalf("Intersect = %v err %v", ix, err)
	}
	other := New(MustSchema(Column{Name: "x", Type: TString}))
	if _, err := a.Union(other); !errors.Is(err, ErrSchema) {
		t.Errorf("union schema err = %v", err)
	}
}

func TestEqualContentsIgnoresTIDsAndOrder(t *testing.T) {
	s := stockSchema()
	a := New(s)
	b := New(s)
	_ = a.Insert(Tuple{TID: 1, Values: []Value{Int(1), Str("x"), Float(2)}})
	_ = a.Insert(Tuple{TID: 2, Values: []Value{Int(2), Str("y"), Float(3)}})
	_ = b.Insert(Tuple{TID: 9, Values: []Value{Int(2), Str("y"), Float(3)}})
	_ = b.Insert(Tuple{TID: 8, Values: []Value{Int(1), Str("x"), Float(2)}})
	if !a.EqualContents(b) {
		t.Error("EqualContents should ignore tids and order")
	}
	_ = b.Delete(9)
	if a.EqualContents(b) {
		t.Error("EqualContents should detect size mismatch")
	}
}

func TestEqualByTID(t *testing.T) {
	a := stockRel(t)
	b := stockRel(t)
	if !a.EqualByTID(b) {
		t.Error("identical relations should be EqualByTID")
	}
	_ = b.Update(7, []Value{Int(7), Str("IBM"), Float(80)})
	if a.EqualByTID(b) {
		t.Error("EqualByTID should detect value change")
	}
}

func TestSortByTIDAndColumn(t *testing.T) {
	r := stockRel(t)
	r.SortByTID()
	if r.At(0).TID != 7 || r.At(2).TID != 100000 {
		t.Errorf("SortByTID order: %v %v", r.At(0).TID, r.At(2).TID)
	}
	r.SortBy(2) // by price
	if r.At(0).Values[2].AsFloat() != 75 {
		t.Error("SortBy(price) order wrong")
	}
	// byTID map stays consistent after sorting.
	tu, ok := r.Lookup(92394)
	if !ok || tu.TID != 92394 {
		t.Error("Lookup broken after sort")
	}
}

func TestHashIndexProbe(t *testing.T) {
	r := stockRel(t)
	ix := BuildHashIndex(r, []int{1}) // by name
	hits := ix.Probe([]Value{Str("DEC")})
	if len(hits) != 1 || hits[0].TID != 100000 {
		t.Fatalf("Probe(DEC) = %v", hits)
	}
	if got := ix.Probe([]Value{Str("NONE")}); len(got) != 0 {
		t.Errorf("Probe(NONE) = %v", got)
	}
	if ix.Len() != 3 {
		t.Errorf("index Len = %d", ix.Len())
	}
}

func TestHashIndexMultiColumn(t *testing.T) {
	s := MustSchema(Column{Name: "a", Type: TInt}, Column{Name: "b", Type: TInt})
	r := New(s)
	for i := 0; i < 10; i++ {
		_ = r.Insert(Tuple{TID: TID(i + 1), Values: []Value{Int(int64(i % 3)), Int(int64(i % 2))}})
	}
	ix := BuildHashIndex(r, []int{0, 1})
	hits := ix.Probe([]Value{Int(0), Int(0)})
	for _, h := range hits {
		if h.Values[0].AsInt() != 0 || h.Values[1].AsInt() != 0 {
			t.Errorf("false positive: %v", h)
		}
	}
	// i in {0,6} give (0,0): exactly 2 hits.
	if len(hits) != 2 {
		t.Errorf("Probe hits = %d, want 2", len(hits))
	}
}

// Property: random insert/delete sequences keep the tid index consistent.
func TestRelationIndexConsistencyProperty(t *testing.T) {
	s := MustSchema(Column{Name: "k", Type: TInt})
	r := New(s)
	rng := rand.New(rand.NewSource(42))
	live := map[TID]bool{}
	next := TID(1)
	for step := 0; step < 5000; step++ {
		if rng.Intn(3) != 0 || len(live) == 0 {
			tid := next
			next++
			if err := r.Insert(Tuple{TID: tid, Values: []Value{Int(int64(tid))}}); err != nil {
				t.Fatal(err)
			}
			live[tid] = true
		} else {
			var victim TID
			for tid := range live {
				victim = tid
				break
			}
			if err := r.Delete(victim); err != nil {
				t.Fatal(err)
			}
			delete(live, victim)
		}
	}
	if r.Len() != len(live) {
		t.Fatalf("Len = %d, want %d", r.Len(), len(live))
	}
	for tid := range live {
		tu, ok := r.Lookup(tid)
		if !ok || tu.TID != tid || tu.Values[0].AsInt() != int64(tid) {
			t.Fatalf("Lookup(%d) inconsistent", tid)
		}
	}
}

func TestRelationString(t *testing.T) {
	r := stockRel(t)
	out := r.String()
	if len(out) == 0 {
		t.Fatal("empty render")
	}
	for _, want := range []string{"name", "price", "DEC", "IBM"} {
		if !contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestUpsertAndSchemaHelpers(t *testing.T) {
	r := stockRel(t)
	// Upsert replaces an existing tid.
	if err := r.Upsert(Tuple{TID: 7, Values: []Value{Int(7), Str("IBM"), Float(99)}}); err != nil {
		t.Fatal(err)
	}
	got, _ := r.Lookup(7)
	if got.Values[2].AsFloat() != 99 {
		t.Error("Upsert replace failed")
	}
	// Upsert inserts a fresh tid.
	if err := r.Upsert(Tuple{TID: 42, Values: []Value{Int(42), Str("NEW"), Float(1)}}); err != nil {
		t.Fatal(err)
	}
	if !r.Has(42) {
		t.Error("Upsert insert failed")
	}
	if err := r.Upsert(Tuple{TID: 43, Values: []Value{Int(43)}}); !errors.Is(err, ErrArity) {
		t.Errorf("Upsert arity err = %v", err)
	}
	if r.Schema().Len() != 3 {
		t.Error("Schema accessor")
	}
	if HashTID([]Value{Int(1)}) != HashTID([]Value{Int(1)}) {
		t.Error("HashTID not deterministic")
	}
}

func TestSchemaEqualConcatProjectColumns(t *testing.T) {
	a := stockSchema()
	b := stockSchema()
	if !a.Equal(b) {
		t.Error("identical schemas should be Equal")
	}
	c := MustSchema(Column{Name: "x", Type: TInt})
	if a.Equal(c) {
		t.Error("different schemas Equal")
	}
	d := MustSchema(Column{Name: "tid", Type: TInt}, Column{Name: "name", Type: TInt}, Column{Name: "price", Type: TFloat})
	if a.Equal(d) {
		t.Error("type mismatch should break Equal")
	}
	cat, err := a.Concat(c)
	if err != nil || cat.Len() != 4 {
		t.Errorf("Concat = %v, %v", cat, err)
	}
	if _, err := a.Concat(a); err == nil {
		t.Error("Concat with duplicate names should error")
	}
	proj := a.Project([]int{2, 0})
	if proj.Len() != 2 || proj.Col(0).Name != "price" {
		t.Errorf("Project = %s", proj)
	}
	cols := a.Columns()
	cols[0].Name = "mutated"
	if a.Col(0).Name == "mutated" {
		t.Error("Columns should return a copy")
	}
}
