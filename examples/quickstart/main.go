// Quickstart: create a table, register a continual query, apply updates,
// and receive differential notifications.
package main

import (
	"fmt"
	"log"

	continual "github.com/diorama/continual"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	db := continual.Open()
	defer func() { _ = db.Close() }()

	if err := db.Exec(`CREATE TABLE stocks (name STRING, price FLOAT)`); err != nil {
		return err
	}
	if err := db.Exec(`INSERT INTO stocks VALUES ('DEC', 150), ('QLI', 145), ('IBM', 75)`); err != nil {
		return err
	}

	// Example 2 of the paper: σ_price>120(Stocks) as a continual query.
	sub, err := db.Register("expensive", `SELECT * FROM stocks WHERE price > 120`)
	if err != nil {
		return err
	}
	fmt.Println("initial result:")
	fmt.Println(sub.Initial())

	// Transaction T of Example 1: insert MAC@117, modify DEC to 149,
	// delete QLI.
	if err := db.Exec(`INSERT INTO stocks VALUES ('MAC', 117)`); err != nil {
		return err
	}
	if err := db.Exec(`UPDATE stocks SET price = 149 WHERE name = 'DEC'`); err != nil {
		return err
	}
	if err := db.Exec(`DELETE FROM stocks WHERE name = 'QLI'`); err != nil {
		return err
	}

	db.Poll()
	change := <-sub.Updates()
	fmt.Printf("change #%d:\n", change.Seq)
	for _, row := range change.Inserted {
		fmt.Printf("  + %v\n", row)
	}
	for _, row := range change.Deleted {
		fmt.Printf("  - %v\n", row)
	}
	for _, m := range change.Modified {
		fmt.Printf("  ~ %v -> %v\n", m.Old, m.New)
	}

	result, err := sub.Result()
	if err != nil {
		return err
	}
	fmt.Println("current result:")
	fmt.Println(result)
	return nil
}
