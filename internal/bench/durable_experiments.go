package bench

import (
	"fmt"
	"os"
	"time"

	"github.com/diorama/continual/internal/cq"
	"github.com/diorama/continual/internal/delta"
	"github.com/diorama/continual/internal/durable"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/storage"
	"github.com/diorama/continual/internal/vclock"
	"github.com/diorama/continual/internal/wal"
)

// E17 measures the durability subsystem's two costs. Logging overhead:
// single-row commit throughput with the write-ahead delta log detached
// (in-memory baseline) and attached under each fsync policy — the gap
// between "never" and the baseline is the logging code path, the gap
// between "always" and "never" is the disk's sync latency, which is the
// price of zero-loss acknowledged commits. Recovery: wall time and
// records replayed for a WAL of the same committed history, cold and
// with a mid-log checkpoint — the checkpoint converts full-log replay
// into tail-only replay, which is what keeps restart time flat as the
// log grows.
func E17(scale Scale) (*Table, error) {
	nCommits := scale.BaseRows / 10
	if nCommits < 50 {
		nCommits = 50
	}
	t := &Table{
		ID:    "E17",
		Title: "delta WAL: logging overhead and differential crash recovery",
		Note: fmt.Sprintf("%d single-row commits; recovery over a %d-record WAL, checkpoint at half",
			nCommits, scale.BaseRows),
		Header: []string{"config", "commits/s", "recover ms", "records replayed"},
	}

	base, err := commitThroughput(scale, nCommits, "", wal.FsyncAlways)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"in-memory (no wal)", perSec(nCommits, base), "-", "-"})
	for _, pol := range []wal.FsyncPolicy{wal.FsyncNever, wal.FsyncInterval, wal.FsyncAlways} {
		d, err := commitThroughput(scale, nCommits, "wal", pol)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{"wal fsync=" + pol.String(), perSec(nCommits, d), "-", "-"})
	}

	for _, ckpt := range []bool{false, true} {
		d, records, err := recoveryTime(scale.BaseRows, ckpt)
		if err != nil {
			return nil, err
		}
		name := "recover full log"
		if ckpt {
			name = "recover from checkpoint"
		}
		t.Rows = append(t.Rows, []string{name, "-", fmt.Sprintf("%.2f", float64(d.Microseconds())/1000), fmt.Sprint(records)})
	}
	return t, nil
}

func perSec(n int, d time.Duration) string {
	if d <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f", float64(n)/d.Seconds())
}

func e17Schema() relation.Schema {
	return relation.MustSchema(
		relation.Column{Name: "name", Type: relation.TString},
		relation.Column{Name: "v", Type: relation.TInt},
	)
}

// commitThroughput times nCommits single-row insert transactions.
// mode "" runs the in-memory baseline; "wal" attaches a durable system
// on a real temporary directory under the given fsync policy.
func commitThroughput(scale Scale, nCommits int, mode string, pol wal.FsyncPolicy) (time.Duration, error) {
	var store *storage.Store
	var cleanup func()
	if mode == "" {
		store = storage.NewStore()
		cleanup = func() {}
	} else {
		dir, err := os.MkdirTemp("", "cq-e17-*")
		if err != nil {
			return 0, err
		}
		sys, err := durable.Open(durable.Options{
			Dir:   dir,
			Fsync: pol,
			CQ:    cq.Config{UseDRA: true},
		})
		if err != nil {
			os.RemoveAll(dir)
			return 0, err
		}
		store = sys.Store
		cleanup = func() {
			_ = sys.Close()
			os.RemoveAll(dir)
		}
	}
	defer cleanup()
	if err := store.CreateTable("stocks", e17Schema()); err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < nCommits; i++ {
		tx := store.Begin()
		if _, err := tx.Insert("stocks", []relation.Value{relation.Str("r"), relation.Int(int64(i))}); err != nil {
			return 0, err
		}
		if _, err := tx.Commit(); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// recoveryTime builds a WAL holding nRecords committed single-row
// inserts — optionally cut by a checkpoint at the midpoint — and times
// a cold durable.Open of the directory.
func recoveryTime(nRecords int, withCheckpoint bool) (time.Duration, int, error) {
	dir, err := os.MkdirTemp("", "cq-e17-rec-*")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(dir)
	schema := e17Schema()
	l, err := wal.Open(dir, wal.Options{Fsync: wal.FsyncNever})
	if err != nil {
		return 0, 0, err
	}
	if err := l.AppendCreateTable("stocks", schema); err != nil {
		return 0, 0, err
	}
	row := func(i int) []wal.TxRow {
		return []wal.TxRow{{Table: "stocks", Row: delta.Row{
			TID: relation.TID(i + 1),
			TS:  vclock.Timestamp(i + 1),
			New: []relation.Value{relation.Str("r"), relation.Int(int64(i))},
		}}}
	}
	half := nRecords / 2
	for i := 0; i < half; i++ {
		if err := l.AppendTx(vclock.Timestamp(i+1), row(i)); err != nil {
			return 0, 0, err
		}
	}
	if withCheckpoint {
		seg, err := l.Rotate()
		if err != nil {
			return 0, 0, err
		}
		tuples := make([]relation.Tuple, half)
		for i := range tuples {
			tuples[i] = relation.Tuple{
				TID:    relation.TID(i + 1),
				Values: []relation.Value{relation.Str("r"), relation.Int(int64(i))},
			}
		}
		ck := &wal.Checkpoint{
			Seg:     seg,
			TS:      vclock.Timestamp(half),
			NextTID: uint64(half + 1),
			Tables: []wal.TableState{{
				Name:    "stocks",
				Schema:  schema,
				Tuples:  tuples,
				Version: uint64(half),
			}},
		}
		if err := l.WriteCheckpoint(ck); err != nil {
			return 0, 0, err
		}
	}
	for i := half; i < nRecords; i++ {
		if err := l.AppendTx(vclock.Timestamp(i+1), row(i)); err != nil {
			return 0, 0, err
		}
	}
	if err := l.Close(); err != nil {
		return 0, 0, err
	}

	start := time.Now()
	sys, err := durable.Open(durable.Options{Dir: dir, Fsync: wal.FsyncNever, CQ: cq.Config{UseDRA: true}})
	if err != nil {
		return 0, 0, err
	}
	elapsed := time.Since(start)
	records := sys.Recovery.Records
	if n, _ := sys.Store.Snapshot("stocks"); n == nil || n.Len() != nRecords {
		_ = sys.Close()
		return 0, 0, fmt.Errorf("e17: recovered %v rows, want %d", n, nRecords)
	}
	_ = sys.Close()
	return elapsed, records, nil
}
