package faults

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"path"
	"path/filepath"
	"sort"
	"sync"

	"github.com/diorama/continual/internal/wal"
)

// ErrCrashed is returned by every filesystem operation after a MemFS
// kill-point fires: from the process's point of view the machine is
// gone, and nothing it does can succeed until Crash() reboots it.
var ErrCrashed = errors.New("faults: filesystem crashed")

// MemFS is a deterministic in-memory filesystem implementing wal.FS,
// built to prove crash safety of the durability layer. It tracks, per
// file, which bytes have been fsynced (survive a crash) and which are
// only pending in the "page cache" (may be lost, possibly partially).
//
// A test arms a kill-point with KillAfterWrites(n): the FS completes n
// File.Write calls normally, then freezes — every later operation on
// the FS or its files fails with ErrCrashed, modelling the process
// dying mid-sequence. Crash() then simulates the reboot: each file's
// content collapses to its synced bytes plus a seeded-random prefix of
// its pending bytes (the suffix the OS happened to flush before power
// loss — this is what produces torn WAL frames), pending state is
// discarded, and the FS unfreezes so recovery code can reopen it.
//
// Simplification, documented on purpose: directory entries (Create,
// Rename, Remove) are durable immediately rather than waiting for
// SyncDir. The WAL's atomic-rename checkpoint protocol is therefore
// not weakened by this harness — its file CONTENT durability, which is
// what the protocol orders via Sync-before-Rename, is fully modelled.
type MemFS struct {
	mu     sync.Mutex
	rng    *rand.Rand
	files  map[string]*memFile
	dirs   map[string]bool
	frozen bool
	writes int // successful File.Write calls so far
	killAt int // freeze when writes reaches this; 0 = disarmed
}

type memFile struct {
	synced  []byte
	pending []byte
}

// NewMemFS builds a filesystem whose crash outcomes are fully
// determined by seed.
func NewMemFS(seed int64) *MemFS {
	return &MemFS{
		rng:   rand.New(rand.NewSource(seed)),
		files: make(map[string]*memFile),
		dirs:  map[string]bool{".": true},
	}
}

// norm canonicalizes paths so Join/Clean differences don't split files.
func norm(name string) string { return path.Clean(filepath.ToSlash(name)) }

// KillAfterWrites arms the kill-point: after n more successful
// File.Write calls, the filesystem freezes. n <= 0 disarms.
func (fs *MemFS) KillAfterWrites(n int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if n <= 0 {
		fs.killAt = 0
		return
	}
	fs.killAt = fs.writes + n
}

// Writes returns the number of successful File.Write calls so far —
// run a workload once uninjured to learn the kill-point sweep range.
func (fs *MemFS) Writes() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.writes
}

// Frozen reports whether a kill-point has fired.
func (fs *MemFS) Frozen() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.frozen
}

// Crash simulates the reboot after a power loss: every file keeps its
// synced bytes plus a random prefix of its pending bytes, pending data
// is gone, and the filesystem unfreezes. The kill-point is disarmed;
// the caller re-arms it for the next iteration if desired.
func (fs *MemFS) Crash() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, f := range fs.files {
		if len(f.pending) > 0 {
			keep := fs.rng.Intn(len(f.pending) + 1)
			f.synced = append(f.synced, f.pending[:keep]...)
		}
		f.pending = nil
	}
	fs.frozen = false
	fs.killAt = 0
}

// CrashClean is Crash with no torn tail: pending bytes are dropped
// whole. Used to pin down specific recovery scenarios.
func (fs *MemFS) CrashClean() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, f := range fs.files {
		f.pending = nil
	}
	fs.frozen = false
	fs.killAt = 0
}

// Create implements wal.FS.
func (fs *MemFS) Create(name string) (wal.File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.frozen {
		return nil, ErrCrashed
	}
	name = norm(name)
	f := &memFile{}
	fs.files[name] = f
	return &memHandle{fs: fs, f: f, name: name}, nil
}

// Open implements wal.FS. The reader sees the process-visible content
// (synced + pending) snapshotted at open time, like a read from page
// cache.
func (fs *MemFS) Open(name string) (io.ReadCloser, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.frozen {
		return nil, ErrCrashed
	}
	f, ok := fs.files[norm(name)]
	if !ok {
		return nil, fmt.Errorf("faults: open %s: file does not exist", name)
	}
	content := make([]byte, 0, len(f.synced)+len(f.pending))
	content = append(content, f.synced...)
	content = append(content, f.pending...)
	return io.NopCloser(bytes.NewReader(content)), nil
}

// List implements wal.FS.
func (fs *MemFS) List(dir string) ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.frozen {
		return nil, ErrCrashed
	}
	dir = norm(dir)
	if !fs.dirs[dir] {
		return nil, fmt.Errorf("faults: list %s: directory does not exist", dir)
	}
	var names []string
	for p := range fs.files {
		if path.Dir(p) == dir {
			names = append(names, path.Base(p))
		}
	}
	sort.Strings(names)
	return names, nil
}

// Rename implements wal.FS. Atomic and (simplification) immediately
// durable.
func (fs *MemFS) Rename(oldname, newname string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.frozen {
		return ErrCrashed
	}
	oldname, newname = norm(oldname), norm(newname)
	f, ok := fs.files[oldname]
	if !ok {
		return fmt.Errorf("faults: rename %s: file does not exist", oldname)
	}
	delete(fs.files, oldname)
	fs.files[newname] = f
	return nil
}

// Remove implements wal.FS.
func (fs *MemFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.frozen {
		return ErrCrashed
	}
	name = norm(name)
	if _, ok := fs.files[name]; !ok {
		return fmt.Errorf("faults: remove %s: file does not exist", name)
	}
	delete(fs.files, name)
	return nil
}

// MkdirAll implements wal.FS.
func (fs *MemFS) MkdirAll(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.frozen {
		return ErrCrashed
	}
	dir = norm(dir)
	for {
		fs.dirs[dir] = true
		parent := path.Dir(dir)
		if parent == dir {
			return nil
		}
		dir = parent
	}
}

// SyncDir implements wal.FS. Directory entries are already durable
// (documented simplification), so this only checks liveness.
func (fs *MemFS) SyncDir(string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.frozen {
		return ErrCrashed
	}
	return nil
}

// DumpDurable returns each file's post-crash-guaranteed content —
// synced bytes only. For test assertions.
func (fs *MemFS) DumpDurable() map[string][]byte {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make(map[string][]byte, len(fs.files))
	for p, f := range fs.files {
		out[p] = append([]byte(nil), f.synced...)
	}
	return out
}

// memHandle is an open write handle.
type memHandle struct {
	fs     *MemFS
	f      *memFile
	name   string
	closed bool
}

// Write appends to the file's pending (unsynced) bytes. The kill-point
// counts successful writes; when it fires, this write and everything
// after it fails.
func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.frozen {
		return 0, ErrCrashed
	}
	if h.closed {
		return 0, fmt.Errorf("faults: write to closed file %s", h.name)
	}
	if h.fs.killAt > 0 && h.fs.writes >= h.fs.killAt {
		h.fs.frozen = true
		return 0, ErrCrashed
	}
	h.f.pending = append(h.f.pending, p...)
	h.fs.writes++
	if h.fs.killAt > 0 && h.fs.writes >= h.fs.killAt {
		// The armed write completes into the page cache, then the
		// machine dies: whether those bytes survive is decided by
		// Crash()'s prefix roll, which is exactly the ambiguity a real
		// torn write leaves behind.
		h.fs.frozen = true
	}
	return len(p), nil
}

// Sync promotes pending bytes to synced (crash-surviving) bytes.
func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.frozen {
		return ErrCrashed
	}
	if h.closed {
		return fmt.Errorf("faults: sync of closed file %s", h.name)
	}
	h.f.synced = append(h.f.synced, h.f.pending...)
	h.f.pending = nil
	return nil
}

// Close implements wal.File. Closing does not sync.
func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.frozen {
		return ErrCrashed
	}
	h.closed = true
	return nil
}

var _ wal.FS = (*MemFS)(nil)
