package dra

import (
	"fmt"
	"time"

	"github.com/diorama/continual/internal/algebra"
	"github.com/diorama/continual/internal/obs"
	"github.com/diorama/continual/internal/vclock"
)

// Strategy selects how a prepared plan refreshes.
type Strategy int

const (
	// StrategyAuto picks by cost model at preparation and adaptively
	// re-picks every repickEvery refreshes.
	StrategyAuto Strategy = iota
	// StrategyTruthTable runs Algorithm 1's 2^k-1 term expansion with
	// the cross-refresh operand cache.
	StrategyTruthTable
	// StrategyIncremental maintains per-operand replicas with hash
	// indexes and processes deltas by telescoping (IncrementalJoin).
	StrategyIncremental
	// StrategyPropagate recomputes the query on both states and diffs —
	// the paper's complete re-evaluation, cheapest when deltas approach
	// base size.
	StrategyPropagate
)

func (s Strategy) String() string {
	switch s {
	case StrategyAuto:
		return "auto"
	case StrategyTruthTable:
		return "truth-table"
	case StrategyIncremental:
		return "incremental"
	case StrategyPropagate:
		return "propagate"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// ParseStrategy reads a Strategy from its String form.
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "", "auto":
		return StrategyAuto, nil
	case "truth-table", "truthtable":
		return StrategyTruthTable, nil
	case "incremental":
		return StrategyIncremental, nil
	case "propagate":
		return StrategyPropagate, nil
	default:
		return StrategyAuto, fmt.Errorf("dra: unknown strategy %q", s)
	}
}

// Cost-model constants. The ratio threshold mirrors the paper's
// observation that differential evaluation loses to complete
// re-evaluation once the update window is a sizable fraction of the
// base; the base floor keeps the incremental structures from paying
// their maintenance overhead on tiny relations.
const (
	// propagateRatio is the delta-rows / base-rows EWMA above which a
	// refresh is cheaper recomputed from scratch.
	propagateRatio = 0.5
	// incrementalMinBase is the minimum observed base cardinality before
	// maintained replicas beat the cached truth table.
	incrementalMinBase = 64
	// repickEvery is the refresh period of the adaptive re-pick.
	repickEvery = 8
	// ratioAlpha is the EWMA weight of the newest delta/base observation.
	ratioAlpha = 0.25
)

// Prepared is the compile-once refresh pipeline for one standing query:
// the compiled plan tree (predicates, projections, join bindings, term
// metadata) and the cross-refresh operand index cache are built at
// registration and reused by every Step, so a refresh only pays for
// delta rows. A Prepared additionally owns the refresh strategy — truth
// table, incremental join, or propagate — picked by a cost model under
// StrategyAuto and re-evaluated as the workload drifts.
//
// A Prepared serves one CQ and is not safe for concurrent use; the cq
// manager serializes refreshes per instance.
type Prepared struct {
	engine *Engine
	plan   algebra.Plan
	root   *compiledNode // nil outside the SPJ class (always propagates)
	fp     uint64
	tables []string

	requested Strategy // as passed to Prepare; Auto enables re-picking
	cur       Strategy // concrete strategy in effect

	ij *IncrementalJoin // live incremental state; built lazily, dropped on re-pick

	// Cost-model state: an EWMA of delta rows over observed base
	// cardinality, the last observed base size, and the refresh count
	// since preparation.
	ratio    float64
	baseSize int
	steps    int

	closed bool
}

// Prepare compiles the plan once and picks the refresh strategy.
// strategy Auto defers to the cost model; a forced strategy the plan
// cannot run (TruthTable on a non-SPJ plan, Incremental on a plan
// without a join of two or more operands) is an error, so callers can
// fall back explicitly rather than silently.
func (e *Engine) Prepare(plan algebra.Plan, strategy Strategy) (*Prepared, error) {
	start := time.Now()
	p := &Prepared{
		engine:    e,
		plan:      plan,
		fp:        algebra.PlanFingerprint(plan),
		requested: strategy,
	}
	for _, s := range algebra.Tables(plan) {
		p.tables = append(p.tables, s.Table)
	}
	if supportsDifferential(plan) {
		root, err := compilePlan(plan)
		if err != nil {
			return nil, err
		}
		root.eachJoin(func(cj *compiledJoin) {
			cj.cache = newOpCache(e, cj)
		})
		p.root = root
	}

	switch strategy {
	case StrategyAuto:
		p.cur = p.pick()
	case StrategyTruthTable:
		if p.root == nil {
			return nil, fmt.Errorf("%w: truth-table strategy needs an SPJ plan", ErrUnsupportedPlan)
		}
		p.cur = StrategyTruthTable
	case StrategyIncremental:
		if !incrementalEligible(plan) {
			return nil, fmt.Errorf("%w: incremental strategy needs an SPJ join of two or more operands", ErrUnsupportedPlan)
		}
		p.cur = StrategyIncremental
	case StrategyPropagate:
		p.cur = StrategyPropagate
	default:
		return nil, fmt.Errorf("dra: unknown strategy %d", int(strategy))
	}

	if m := e.Metrics; m != nil {
		if g := m.strategyGauge(p.cur); g != nil {
			g.Add(1)
		}
		m.PrepareNS.Observe(time.Since(start))
	}
	return p, nil
}

// Strategy reports the concrete strategy currently in effect.
func (p *Prepared) Strategy() Strategy { return p.cur }

// Fingerprint identifies the compiled plan shape (algebra.PlanFingerprint).
func (p *Prepared) Fingerprint() uint64 { return p.fp }

// Tables returns the plan's operand set — the base tables whose deltas
// can change the result. This is the routing key of push-based refresh:
// the commit router indexes each prepared CQ under exactly these names,
// so a committed delta reaches precisely the plans it can affect.
func (p *Prepared) Tables() []string {
	out := make([]string, len(p.tables))
	copy(out, p.tables)
	return out
}

// Close releases the prepared state: the strategy gauge unit, the
// incremental replicas, and the operand caches. The Prepared must not
// be stepped afterwards.
func (p *Prepared) Close() {
	if p.closed {
		return
	}
	p.closed = true
	if m := p.engine.Metrics; m != nil {
		if g := m.strategyGauge(p.cur); g != nil {
			g.Add(-1)
		}
	}
	p.ij = nil
	if p.root != nil {
		p.root.eachJoin(func(cj *compiledJoin) {
			if cj.cache != nil {
				cj.cache.invalidate()
			}
		})
	}
}

// Step runs one refresh over the window in ctx, producing the signed
// change at execTS. All strategies produce the same net change; they
// differ only in cost.
func (p *Prepared) Step(ctx *Context, execTS vclock.Timestamp) (*Result, error) {
	if p.closed {
		return nil, fmt.Errorf("dra: Step on closed Prepared")
	}
	p.steps++
	if p.requested == StrategyAuto && p.steps%repickEvery == 0 {
		p.repick()
	}

	var res *Result
	var err error
	switch p.cur {
	case StrategyIncremental:
		res, err = p.stepIncremental(ctx, execTS)
	case StrategyPropagate:
		res, err = p.engine.evaluate(p.plan, nil, ctx, execTS)
	default:
		res, err = p.engine.evaluate(p.plan, p.root, ctx, execTS)
	}
	if err != nil {
		return nil, err
	}
	p.observeCost(ctx)
	return res, nil
}

// stepIncremental refreshes through the maintained-replica join,
// building it from the pre-state on first use (its replicas and initial
// result then equal the previous execution, which is exactly the state
// IncrementalJoin expects to advance from). Construction failure on a
// structurally eligible plan is unexpected; it demotes to the truth
// table rather than failing the refresh.
func (p *Prepared) stepIncremental(ctx *Context, execTS vclock.Timestamp) (*Result, error) {
	if p.ij == nil {
		ij, err := NewIncrementalJoin(p.engine, p.plan, ctx.Pre)
		if err != nil {
			p.setStrategy(StrategyTruthTable)
			return p.engine.evaluate(p.plan, p.root, ctx, execTS)
		}
		p.ij = ij
	}
	var span *obs.Span
	var start time.Time
	m := p.engine.Metrics
	if m != nil {
		start = time.Now()
		span = m.startSpan()
	}
	res, err := p.ij.Step(ctx, execTS)
	if err != nil {
		return nil, err
	}
	if m != nil {
		m.observe(res.Stats, span, time.Since(start))
	}
	return res, nil
}

// pick applies the cost model to the current state.
func (p *Prepared) pick() Strategy {
	if p.root == nil {
		return StrategyPropagate
	}
	if p.baseSize > 0 && p.ratio > propagateRatio {
		return StrategyPropagate
	}
	if p.baseSize >= incrementalMinBase && incrementalEligible(p.plan) && p.fullyEquiConnected() {
		return StrategyIncremental
	}
	return StrategyTruthTable
}

// fullyEquiConnected reports that every join group's graph can be grown
// entirely over equi-key probes — the shape where maintained hash
// indexes pay off and cross products never appear.
func (p *Prepared) fullyEquiConnected() bool {
	ok := true
	p.root.eachJoin(func(cj *compiledJoin) {
		if cj.equiCoverage() < 1 {
			ok = false
		}
	})
	return ok
}

// repick re-runs the cost model and switches strategies when the answer
// changed.
func (p *Prepared) repick() {
	next := p.pick()
	if next == p.cur {
		return
	}
	p.setStrategy(next)
	if m := p.engine.Metrics; m != nil {
		m.Repicks.Inc()
	}
}

// setStrategy moves the gauge unit and drops state the new strategy
// will not maintain: leaving incremental discards the replicas; the
// truth table's operand caches are invalidated on entry because other
// strategies left them unadvanced.
func (p *Prepared) setStrategy(next Strategy) {
	if m := p.engine.Metrics; m != nil {
		if g := m.strategyGauge(p.cur); g != nil {
			g.Add(-1)
		}
		if g := m.strategyGauge(next); g != nil {
			g.Add(1)
		}
	}
	if p.cur == StrategyIncremental {
		p.ij = nil
	}
	if next == StrategyTruthTable && p.root != nil {
		p.root.eachJoin(func(cj *compiledJoin) {
			if cj.cache != nil {
				cj.cache.invalidate()
			}
		})
	}
	p.cur = next
}

// observeCost folds this refresh's window size and observed base
// cardinality into the cost-model state. Base size is read from
// whatever structure the refresh maintained (operand cache replicas or
// incremental replicas) and from the previous result as a floor, so the
// model keeps tracking even across propagate-only stretches.
func (p *Prepared) observeCost(ctx *Context) {
	deltaRows := 0
	for _, t := range p.tables {
		if d := ctx.Deltas[t]; d != nil {
			deltaRows += d.Len()
		}
	}
	base := 0
	if p.ij != nil {
		for _, r := range p.ij.replicas {
			base += r.Len()
		}
	} else if p.root != nil {
		p.root.eachJoin(func(cj *compiledJoin) {
			if cj.cache == nil {
				return
			}
			for _, ent := range cj.cache.ents {
				if ent != nil {
					base += ent.rel.Len()
				}
			}
		})
	}
	if base == 0 && ctx.Prev != nil {
		base = ctx.Prev.Len()
	}
	if base > 0 {
		p.baseSize = base
		p.ratio = (1-ratioAlpha)*p.ratio + ratioAlpha*(float64(deltaRows)/float64(base))
	}
}

// incrementalEligible reports that the plan has the head shape
// IncrementalJoin maintains: an SPJ tree whose root (under an optional
// projection) is a join of at least two operands.
func incrementalEligible(plan algebra.Plan) bool {
	if !supportsDifferential(plan) {
		return false
	}
	root := plan
	if pp, ok := root.(*algebra.ProjectPlan); ok {
		root = pp.Input
	}
	j, ok := root.(*algebra.JoinPlan)
	if !ok {
		return false
	}
	ops, _, err := flatten(j)
	return err == nil && len(ops) >= 2
}
