// Benchmarks regenerating every experiment of EXPERIMENTS.md as
// testing.B targets. Each BenchmarkE* corresponds to the same-numbered
// experiment; cmd/cqbench prints the full tables, these give per-refresh
// costs under the Go benchmark harness.
//
//	go test -bench=. -benchmem
package continual_test

import (
	"fmt"
	"testing"

	"github.com/diorama/continual/internal/algebra"
	"github.com/diorama/continual/internal/baseline"
	"github.com/diorama/continual/internal/cq"
	"github.com/diorama/continual/internal/delta"
	"github.com/diorama/continual/internal/dra"
	"github.com/diorama/continual/internal/epsilon"
	"github.com/diorama/continual/internal/obs"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/remote"
	"github.com/diorama/continual/internal/sql"
	"github.com/diorama/continual/internal/storage"
	"github.com/diorama/continual/internal/vclock"
	"github.com/diorama/continual/internal/workload"
)

const benchBaseRows = 20_000

// benchFixture is a seeded single-table world with a pending update
// window ready for repeated re-evaluation.
type benchFixture struct {
	store  *storage.Store
	plan   algebra.Plan
	prev   *relation.Relation
	ctx    *dra.Context
	execTS vclock.Timestamp
}

func newBenchFixture(b *testing.B, rows, updates int, query string) *benchFixture {
	b.Helper()
	store := storage.NewStore()
	if err := store.CreateTable("stocks", workload.StockSchema()); err != nil {
		b.Fatal(err)
	}
	gen := workload.NewStocks(store, "stocks", 1, workload.DefaultMix)
	if err := gen.Seed(rows); err != nil {
		b.Fatal(err)
	}
	plan, err := algebra.PlanSQL(query, store.Live())
	if err != nil {
		b.Fatal(err)
	}
	plan = algebra.Optimize(plan)
	prev, err := dra.InitialResult(plan, store.Live())
	if err != nil {
		b.Fatal(err)
	}
	lastTS := store.Now()
	if err := gen.Batch(updates); err != nil {
		b.Fatal(err)
	}
	d, err := store.DeltaSince("stocks", lastTS)
	if err != nil {
		b.Fatal(err)
	}
	return &benchFixture{
		store: store,
		plan:  plan,
		prev:  prev,
		ctx: &dra.Context{
			Pre:    store.At(lastTS),
			Post:   store.Live(),
			Deltas: map[string]*delta.Delta{"stocks": d},
			LastTS: lastTS,
			Prev:   prev,
		},
		execTS: store.Now(),
	}
}

func (f *benchFixture) runDRA(b *testing.B, engine *dra.Engine) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Reevaluate(f.plan, f.ctx, f.execTS); err != nil {
			b.Fatal(err)
		}
	}
}

func (f *benchFixture) runFull(b *testing.B) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dra.FullReevaluate(f.plan, f.store.Live(), f.prev, f.execTS); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2SelectDRAvsFull: Example 2's query after one Example-1-sized
// transaction.
func BenchmarkE2SelectDRAvsFull(b *testing.B) {
	for _, mode := range []string{"DRA", "Full"} {
		b.Run(mode, func(b *testing.B) {
			f := newBenchFixture(b, benchBaseRows, 3, "SELECT * FROM stocks WHERE price > 120")
			if mode == "DRA" {
				f.runDRA(b, dra.NewEngine())
			} else {
				f.runFull(b)
			}
		})
	}
}

// BenchmarkE3UpdateFractionSweep: refresh cost vs |ΔR|/|R|.
func BenchmarkE3UpdateFractionSweep(b *testing.B) {
	for _, frac := range []float64{0.001, 0.01, 0.1, 0.5} {
		updates := int(frac * benchBaseRows)
		if updates < 1 {
			updates = 1
		}
		for _, mode := range []string{"DRA", "Full"} {
			b.Run(fmt.Sprintf("f=%g/%s", frac, mode), func(b *testing.B) {
				f := newBenchFixture(b, benchBaseRows, updates, "SELECT * FROM stocks WHERE price > 120")
				if mode == "DRA" {
					f.runDRA(b, dra.NewEngine())
				} else {
					f.runFull(b)
				}
			})
		}
	}
}

// BenchmarkE4SelectivitySweep: refresh cost vs query selectivity at 1%
// updates.
func BenchmarkE4SelectivitySweep(b *testing.B) {
	for _, sel := range []float64{0.01, 0.1, 0.5} {
		threshold := 200 * (1 - sel)
		query := fmt.Sprintf("SELECT * FROM stocks WHERE price > %.3f", threshold)
		for _, mode := range []string{"DRA", "Full"} {
			b.Run(fmt.Sprintf("sel=%g/%s", sel, mode), func(b *testing.B) {
				f := newBenchFixture(b, benchBaseRows, benchBaseRows/100, query)
				if mode == "DRA" {
					f.runDRA(b, dra.NewEngine())
				} else {
					f.runFull(b)
				}
			})
		}
	}
}

// joinBenchFixture mirrors internal/bench's 3-way join world.
func joinBenchFixture(b *testing.B, rows int, touched ...string) (*dra.Context, algebra.Plan, *storage.Store, *relation.Relation, vclock.Timestamp) {
	b.Helper()
	store := storage.NewStore()
	schemas := map[string]relation.Schema{
		"a": relation.MustSchema(relation.Column{Name: "x", Type: relation.TInt}, relation.Column{Name: "tag", Type: relation.TString}),
		"b": relation.MustSchema(relation.Column{Name: "x", Type: relation.TInt}, relation.Column{Name: "y", Type: relation.TInt}),
		"c": relation.MustSchema(relation.Column{Name: "y", Type: relation.TInt}, relation.Column{Name: "name", Type: relation.TString}),
	}
	for name, schema := range schemas {
		if err := store.CreateTable(name, schema); err != nil {
			b.Fatal(err)
		}
	}
	tids := map[string][]relation.TID{}
	tx := store.Begin()
	for i := 0; i < rows; i++ {
		ta, _ := tx.Insert("a", []relation.Value{relation.Int(int64(i)), relation.Str("t")})
		tb, _ := tx.Insert("b", []relation.Value{relation.Int(int64(i)), relation.Int(int64(2 * i))})
		tc, _ := tx.Insert("c", []relation.Value{relation.Int(int64(2 * i)), relation.Str("c")})
		tids["a"] = append(tids["a"], ta)
		tids["b"] = append(tids["b"], tb)
		tids["c"] = append(tids["c"], tc)
	}
	if _, err := tx.Commit(); err != nil {
		b.Fatal(err)
	}
	plan, err := algebra.PlanSQL("SELECT * FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y", store.Live())
	if err != nil {
		b.Fatal(err)
	}
	plan = algebra.Optimize(plan)
	prev, err := dra.InitialResult(plan, store.Live())
	if err != nil {
		b.Fatal(err)
	}
	lastTS := store.Now()

	tx = store.Begin()
	for _, table := range touched {
		for i := 0; i < 10; i++ {
			live, _ := store.Contents(table)
			cur, _ := live.Lookup(tids[table][i])
			vals := append([]relation.Value(nil), cur.Values...)
			if vals[1].Kind == relation.TString {
				vals[1] = relation.Str(vals[1].AsString() + "'")
			} else {
				vals[1] = relation.Int(vals[1].AsInt() + 1)
			}
			if err := tx.Update(table, tids[table][i], vals); err != nil {
				b.Fatal(err)
			}
		}
	}
	if _, err := tx.Commit(); err != nil {
		b.Fatal(err)
	}

	deltas := map[string]*delta.Delta{}
	for name := range schemas {
		d, err := store.DeltaSince(name, lastTS)
		if err != nil {
			b.Fatal(err)
		}
		deltas[name] = d
	}
	ctx := &dra.Context{
		Pre:    store.At(lastTS),
		Post:   store.Live(),
		Deltas: deltas,
		LastTS: lastTS,
		Prev:   prev,
	}
	return ctx, plan, store, prev, store.Now()
}

// BenchmarkE5JoinTruthTable: 3-way join, k changed operands → 2^k−1
// terms.
func BenchmarkE5JoinTruthTable(b *testing.B) {
	cases := [][]string{{"a"}, {"a", "b"}, {"a", "b", "c"}}
	for _, touched := range cases {
		b.Run(fmt.Sprintf("k=%d/DRA", len(touched)), func(b *testing.B) {
			ctx, plan, _, _, ts := joinBenchFixture(b, 4000, touched...)
			engine := dra.NewEngine()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := engine.Reevaluate(plan, ctx, ts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("Full", func(b *testing.B) {
		_, plan, store, prev, ts := joinBenchFixture(b, 4000, "a")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := dra.FullReevaluate(plan, store.Live(), prev, ts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE6NetworkBytes: per-refresh wire bytes, delta vs full-result
// shipping. Bytes reported as custom metrics.
func BenchmarkE6NetworkBytes(b *testing.B) {
	store := storage.NewStore()
	if err := store.CreateTable("stocks", workload.StockSchema()); err != nil {
		b.Fatal(err)
	}
	gen := workload.NewStocks(store, "stocks", 6, workload.DefaultMix)
	if err := gen.Seed(benchBaseRows / 2); err != nil {
		b.Fatal(err)
	}
	srv := remote.NewServer(store)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	const query = "SELECT * FROM stocks WHERE price > 120"

	b.Run("delta", func(b *testing.B) {
		client, err := remote.Dial(addr)
		if err != nil {
			b.Fatal(err)
		}
		defer func() { _ = client.Close() }()
		mirror, err := remote.NewMirrorCQ(client, query)
		if err != nil {
			b.Fatal(err)
		}
		start := client.BytesRead()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			if err := gen.Batch(10); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := mirror.Refresh(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(client.BytesRead()-start)/float64(b.N), "wireB/op")
	})

	b.Run("full", func(b *testing.B) {
		client, err := remote.Dial(addr)
		if err != nil {
			b.Fatal(err)
		}
		defer func() { _ = client.Close() }()
		start := client.BytesRead()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			if err := gen.Batch(10); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, _, err := client.Query(query); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(client.BytesRead()-start)/float64(b.N), "wireB/op")
	})
}

// BenchmarkE7ClientScalability: server tuples scanned per refresh round
// for 8 clients, full-shipping vs delta-shipping.
func BenchmarkE7ClientScalability(b *testing.B) {
	const nClients = 8
	const query = "SELECT * FROM stocks WHERE price > 120"
	setup := func(b *testing.B) (*storage.Store, *remote.Server, *workload.Stocks, []*remote.Client) {
		store := storage.NewStore()
		if err := store.CreateTable("stocks", workload.StockSchema()); err != nil {
			b.Fatal(err)
		}
		gen := workload.NewStocks(store, "stocks", 7, workload.DefaultMix)
		if err := gen.Seed(benchBaseRows / 2); err != nil {
			b.Fatal(err)
		}
		srv := remote.NewServer(store)
		addr, err := srv.Serve("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = srv.Close() })
		clients := make([]*remote.Client, nClients)
		for i := range clients {
			c, err := remote.Dial(addr)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { _ = c.Close() })
			clients[i] = c
		}
		return store, srv, gen, clients
	}

	b.Run("full-shipping", func(b *testing.B) {
		_, srv, gen, clients := setup(b)
		before := srv.Stats().TuplesExecuted
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			if err := gen.Batch(10); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			for _, c := range clients {
				if _, _, err := c.Query(query); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(srv.Stats().TuplesExecuted-before)/float64(b.N), "srvTuples/op")
	})

	b.Run("delta-shipping", func(b *testing.B) {
		_, srv, gen, clients := setup(b)
		mirrors := make([]*remote.MirrorCQ, len(clients))
		for i, c := range clients {
			m, err := remote.NewMirrorCQ(c, query)
			if err != nil {
				b.Fatal(err)
			}
			mirrors[i] = m
		}
		before := srv.Stats().TuplesExecuted
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			if err := gen.Batch(10); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			for _, m := range mirrors {
				if _, err := m.Refresh(); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(srv.Stats().TuplesExecuted-before)/float64(b.N), "srvTuples/op")
	})
}

// BenchmarkE8TriggerEval: differential trigger evaluation vs base scan.
func BenchmarkE8TriggerEval(b *testing.B) {
	store := storage.NewStore()
	if err := store.CreateTable("accounts", workload.AccountSchema()); err != nil {
		b.Fatal(err)
	}
	gen := workload.NewAccounts(store, "accounts", 8)
	for i := 0; i < benchBaseRows; i++ {
		if err := gen.Deposit(0); err != nil {
			b.Fatal(err)
		}
	}
	mark := store.Now()
	if err := gen.Activity(100); err != nil {
		b.Fatal(err)
	}
	window, err := store.DeltaSince("accounts", mark)
	if err != nil {
		b.Fatal(err)
	}
	amountExpr, _ := sql.ParseExpr("amount")

	b.Run("differential", func(b *testing.B) {
		acct, err := epsilon.NewAccountant(epsilon.Spec{Expr: amountExpr, Bound: 1e18}, workload.AccountSchema())
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			acct.Reset()
			if err := acct.Observe(window); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("base-scan", func(b *testing.B) {
		plan, err := algebra.PlanSQL("SELECT SUM(amount) AS total FROM accounts", store.Live())
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := algebra.NewExecutor(store.Live()).Execute(plan); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE9GC: cost of one garbage collection pass over a large
// accumulated differential relation.
func BenchmarkE9GC(b *testing.B) {
	store := storage.NewStore()
	if err := store.CreateTable("stocks", workload.StockSchema()); err != nil {
		b.Fatal(err)
	}
	gen := workload.NewStocks(store, "stocks", 9, workload.DefaultMix)
	if err := gen.Seed(benchBaseRows / 2); err != nil {
		b.Fatal(err)
	}
	if err := gen.Batch(benchBaseRows / 2); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Collect nothing (horizon 0): measures the scan; the truncation
		// itself is a copy bounded by the same size.
		store.CollectGarbage(0)
	}
}

// BenchmarkE10EpsilonSweep: refreshes per 200-op stream at two bounds.
func BenchmarkE10EpsilonSweep(b *testing.B) {
	for _, bound := range []float64{100_000, 1_000_000} {
		b.Run(fmt.Sprintf("eps=%.0fk", bound/1e3), func(b *testing.B) {
			refreshes := 0
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				store := storage.NewStore()
				if err := store.CreateTable("accounts", workload.AccountSchema()); err != nil {
					b.Fatal(err)
				}
				mgr := cq.NewManager(store)
				on, _ := sql.ParseExpr("amount")
				if _, err := mgr.Register(cq.Def{
					Name:    "banksum",
					Query:   "SELECT SUM(amount) AS total FROM accounts",
					Trigger: sql.TriggerSpec{Kind: sql.TriggerEpsilon, Bound: bound, On: on},
				}); err != nil {
					b.Fatal(err)
				}
				gen := workload.NewAccounts(store, "accounts", 10)
				b.StartTimer()
				for op := 0; op < 200; op++ {
					if err := gen.Activity(1); err != nil {
						b.Fatal(err)
					}
					n, err := mgr.Poll()
					if err != nil {
						b.Fatal(err)
					}
					refreshes += n
				}
				b.StopTimer()
				_ = mgr.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(refreshes)/float64(b.N), "refreshes/op")
		})
	}
}

// BenchmarkE11AppendOnly: per-step cost of the Terry-style baseline vs
// DRA on an append-only stream.
func BenchmarkE11AppendOnly(b *testing.B) {
	setup := func(b *testing.B) (*storage.Store, algebra.Plan, *workload.Stocks) {
		store := storage.NewStore()
		if err := store.CreateTable("stocks", workload.StockSchema()); err != nil {
			b.Fatal(err)
		}
		gen := workload.NewStocks(store, "stocks", 11, workload.AppendOnlyMix)
		if err := gen.Seed(benchBaseRows / 2); err != nil {
			b.Fatal(err)
		}
		plan, err := algebra.PlanSQL("SELECT * FROM stocks WHERE price > 120", store.Live())
		if err != nil {
			b.Fatal(err)
		}
		return store, algebra.Optimize(plan), gen
	}
	b.Run("append-only-baseline", func(b *testing.B) {
		store, plan, gen := setup(b)
		ao, err := baseline.NewAppendOnly(plan, store.Live())
		if err != nil {
			b.Fatal(err)
		}
		last := store.Now()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			if err := gen.Batch(20); err != nil {
				b.Fatal(err)
			}
			d, err := store.DeltaSince("stocks", last)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := ao.Step(map[string]*delta.Delta{"stocks": d}, store.At(last), store.Live(), store.Now()); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			last = store.Now()
			b.StartTimer()
		}
	})
	b.Run("dra", func(b *testing.B) {
		store, plan, gen := setup(b)
		prev, err := dra.InitialResult(plan, store.Live())
		if err != nil {
			b.Fatal(err)
		}
		engine := dra.NewEngine()
		last := store.Now()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			if err := gen.Batch(20); err != nil {
				b.Fatal(err)
			}
			d, err := store.DeltaSince("stocks", last)
			if err != nil {
				b.Fatal(err)
			}
			ctx := &dra.Context{
				Pre: store.At(last), Post: store.Live(),
				Deltas: map[string]*delta.Delta{"stocks": d},
				LastTS: last, Prev: prev,
			}
			b.StartTimer()
			res, err := engine.Reevaluate(plan, ctx, store.Now())
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			prev = res.ApplyTo(prev)
			last = store.Now()
			b.StartTimer()
		}
	})
}

// BenchmarkE12IrrelevantUpdates: refresh cost when the update window is
// entirely irrelevant. The paper's comparison is refinement vs complete
// re-evaluation (the full sub-benchmark); refinement-on vs -off isolates
// the §5.2 pre-test's own overhead, which is small because differential
// evaluation is already O(|Δ|) in this engine.
func BenchmarkE12IrrelevantUpdates(b *testing.B) {
	mk := func(b *testing.B) *benchFixture {
		store := storage.NewStore()
		if err := store.CreateTable("stocks", workload.StockSchema()); err != nil {
			b.Fatal(err)
		}
		gen := workload.NewStocks(store, "stocks", 12, workload.DefaultMix)
		if err := gen.Seed(benchBaseRows); err != nil {
			b.Fatal(err)
		}
		plan, err := algebra.PlanSQL("SELECT * FROM stocks WHERE price > 190", store.Live())
		if err != nil {
			b.Fatal(err)
		}
		plan = algebra.Optimize(plan)
		prev, err := dra.InitialResult(plan, store.Live())
		if err != nil {
			b.Fatal(err)
		}
		lastTS := store.Now()
		// Insert-only batch strictly below the threshold: provably
		// irrelevant. (A modify-heavy batch would carry old halves from
		// the seeded table that can exceed the threshold.)
		tx := store.Begin()
		for i := 0; i < 200; i++ {
			if _, err := tx.Insert("stocks", []relation.Value{
				relation.Str("E12"), relation.Float(float64(10 + i%140)), relation.Int(int64(i)),
			}); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
		d, err := store.DeltaSince("stocks", lastTS)
		if err != nil {
			b.Fatal(err)
		}
		return &benchFixture{
			store: store, plan: plan, prev: prev,
			ctx: &dra.Context{
				Pre: store.At(lastTS), Post: store.Live(),
				Deltas: map[string]*delta.Delta{"stocks": d},
				LastTS: lastTS, Prev: prev,
			},
			execTS: store.Now(),
		}
	}
	b.Run("refinement-on", func(b *testing.B) {
		f := mk(b)
		f.runDRA(b, dra.NewEngine())
	})
	b.Run("refinement-off", func(b *testing.B) {
		f := mk(b)
		engine := dra.NewEngine()
		engine.SkipIrrelevant = false
		f.runDRA(b, engine)
	})
	b.Run("full-reevaluation", func(b *testing.B) {
		f := mk(b)
		f.runFull(b)
	})
}

// BenchmarkE13AssembleComplete: complete-result maintenance at high
// selectivity (large maintained result).
func BenchmarkE13AssembleComplete(b *testing.B) {
	for _, mode := range []string{"DRA", "Full"} {
		b.Run(mode, func(b *testing.B) {
			f := newBenchFixture(b, benchBaseRows, 20, "SELECT * FROM stocks WHERE price > 10")
			if mode == "DRA" {
				f.runDRA(b, dra.NewEngine())
			} else {
				f.runFull(b)
			}
		})
	}
}

// BenchmarkA1Heuristics: term-ordering heuristics on/off.
func BenchmarkA1Heuristics(b *testing.B) {
	for _, on := range []bool{true, false} {
		b.Run(fmt.Sprintf("heuristics=%v", on), func(b *testing.B) {
			ctx, plan, _, _, ts := joinBenchFixture(b, 4000, "a", "c")
			engine := dra.NewEngine()
			engine.UseHeuristics = on
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := engine.Reevaluate(plan, ctx, ts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkA2Compaction: delta compaction on/off over a churn-heavy
// window.
func BenchmarkA2Compaction(b *testing.B) {
	mk := func(b *testing.B) *benchFixture {
		store := storage.NewStore()
		if err := store.CreateTable("stocks", workload.StockSchema()); err != nil {
			b.Fatal(err)
		}
		gen := workload.NewStocks(store, "stocks", 21, workload.DefaultMix)
		if err := gen.Seed(1000); err != nil {
			b.Fatal(err)
		}
		plan, err := algebra.PlanSQL("SELECT * FROM stocks WHERE price > 120", store.Live())
		if err != nil {
			b.Fatal(err)
		}
		plan = algebra.Optimize(plan)
		prev, err := dra.InitialResult(plan, store.Live())
		if err != nil {
			b.Fatal(err)
		}
		lastTS := store.Now()
		for round := 0; round < 50; round++ { // churn
			if err := gen.Batch(20); err != nil {
				b.Fatal(err)
			}
		}
		d, err := store.DeltaSince("stocks", lastTS)
		if err != nil {
			b.Fatal(err)
		}
		return &benchFixture{
			store: store, plan: plan, prev: prev,
			ctx: &dra.Context{
				Pre: store.At(lastTS), Post: store.Live(),
				Deltas: map[string]*delta.Delta{"stocks": d},
				LastTS: lastTS, Prev: prev,
			},
			execTS: store.Now(),
		}
	}
	for _, on := range []bool{true, false} {
		b.Run(fmt.Sprintf("compaction=%v", on), func(b *testing.B) {
			f := mk(b)
			engine := dra.NewEngine()
			engine.CompactDeltas = on
			f.runDRA(b, engine)
		})
	}
}

// BenchmarkA3JoinAlgo: hash vs nested-loop joins inside differential
// terms.
func BenchmarkA3JoinAlgo(b *testing.B) {
	for _, hash := range []bool{true, false} {
		b.Run(fmt.Sprintf("hash=%v", hash), func(b *testing.B) {
			ctx, plan, _, _, ts := joinBenchFixture(b, 2000, "a")
			engine := dra.NewEngine()
			engine.UseHashJoin = hash
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := engine.Reevaluate(plan, ctx, ts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkA4IncrementalAggregates: the bank-sum refresh via incremental
// per-group state vs the Propagate fallback.
func BenchmarkA4IncrementalAggregates(b *testing.B) {
	setup := func(b *testing.B) (*storage.Store, algebra.Plan, *dra.Context, vclock.Timestamp) {
		store := storage.NewStore()
		if err := store.CreateTable("accounts", workload.AccountSchema()); err != nil {
			b.Fatal(err)
		}
		gen := workload.NewAccounts(store, "accounts", 44)
		for i := 0; i < benchBaseRows; i++ {
			if err := gen.Deposit(0); err != nil {
				b.Fatal(err)
			}
		}
		plan, err := algebra.PlanSQL("SELECT SUM(amount) AS total, COUNT(*) AS n FROM accounts", store.Live())
		if err != nil {
			b.Fatal(err)
		}
		plan = algebra.Optimize(plan)
		prev, err := dra.InitialResult(plan, store.Live())
		if err != nil {
			b.Fatal(err)
		}
		lastTS := store.Now()
		if err := gen.Activity(50); err != nil {
			b.Fatal(err)
		}
		window, err := store.DeltaSince("accounts", lastTS)
		if err != nil {
			b.Fatal(err)
		}
		ctx := &dra.Context{
			Pre:    store.At(lastTS),
			Post:   store.Live(),
			Deltas: map[string]*delta.Delta{"accounts": window},
			LastTS: lastTS,
			Prev:   prev,
		}
		return store, plan, ctx, store.Now()
	}

	b.Run("incremental", func(b *testing.B) {
		store, plan, ctx, ts := setup(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			// A maintainer folds state destructively; rebuild per iteration
			// from the pre-window snapshot so each Step sees the same work.
			ia, err := dra.NewIncrementalAggregate(dra.NewEngine(), plan, store.At(ctx.LastTS))
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := ia.Step(ctx, ts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("propagate-fallback", func(b *testing.B) {
		_, plan, ctx, ts := setup(b)
		engine := dra.NewEngine()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := engine.Reevaluate(plan, ctx, ts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkA5MaintainedJoin: the maintained-index join extension vs the
// paper's truth-table evaluation on the E5 k=1 workload. The maintainer
// folds state destructively, so each iteration advances a fresh real
// window (10 modified tuples of A) on one persistent fixture; window
// generation runs with the timer stopped.
func BenchmarkA5MaintainedJoin(b *testing.B) {
	b.Run("maintained-indexes", func(b *testing.B) {
		store := storage.NewStore()
		for name, schema := range map[string]relation.Schema{
			"a": relation.MustSchema(relation.Column{Name: "x", Type: relation.TInt}, relation.Column{Name: "tag", Type: relation.TString}),
			"b": relation.MustSchema(relation.Column{Name: "x", Type: relation.TInt}, relation.Column{Name: "y", Type: relation.TInt}),
			"c": relation.MustSchema(relation.Column{Name: "y", Type: relation.TInt}, relation.Column{Name: "name", Type: relation.TString}),
		} {
			if err := store.CreateTable(name, schema); err != nil {
				b.Fatal(err)
			}
		}
		var aTIDs []relation.TID
		tx := store.Begin()
		for i := 0; i < 4000; i++ {
			ta, _ := tx.Insert("a", []relation.Value{relation.Int(int64(i)), relation.Str("t")})
			_, _ = tx.Insert("b", []relation.Value{relation.Int(int64(i)), relation.Int(int64(2 * i))})
			_, _ = tx.Insert("c", []relation.Value{relation.Int(int64(2 * i)), relation.Str("c")})
			aTIDs = append(aTIDs, ta)
		}
		if _, err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
		plan, err := algebra.PlanSQL("SELECT * FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y", store.Live())
		if err != nil {
			b.Fatal(err)
		}
		plan = algebra.Optimize(plan)
		ij, err := dra.NewIncrementalJoin(dra.NewEngine(), plan, store.Live())
		if err != nil {
			b.Fatal(err)
		}
		lastTS := store.Now()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			tx := store.Begin()
			for k := 0; k < 10; k++ {
				tid := aTIDs[(i*10+k)%len(aTIDs)]
				live, _ := store.Contents("a")
				cur, _ := live.Lookup(tid)
				vals := append([]relation.Value(nil), cur.Values...)
				vals[1] = relation.Str(cur.Values[1].AsString() + "'")
				if err := tx.Update("a", tid, vals); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := tx.Commit(); err != nil {
				b.Fatal(err)
			}
			d, err := store.DeltaSince("a", lastTS)
			if err != nil {
				b.Fatal(err)
			}
			ctx := &dra.Context{
				Pre: store.At(lastTS), Post: store.Live(),
				Deltas: map[string]*delta.Delta{
					"a": d,
					"b": delta.New(relation.MustSchema(relation.Column{Name: "x", Type: relation.TInt}, relation.Column{Name: "y", Type: relation.TInt})),
					"c": delta.New(relation.MustSchema(relation.Column{Name: "y", Type: relation.TInt}, relation.Column{Name: "name", Type: relation.TString})),
				},
				LastTS: lastTS,
			}
			ts := store.Now()
			b.StartTimer()
			if _, err := ij.Step(ctx, ts); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			lastTS = ts
			store.CollectGarbage(lastTS)
			b.StartTimer()
		}
	})
	b.Run("truth-table", func(b *testing.B) {
		ctx, plan, _, _, ts := joinBenchFixture(b, 4000, "a")
		engine := dra.NewEngine()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := engine.Reevaluate(plan, ctx, ts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkObsOverhead measures the cost of the obs instrumentation on
// the hot refresh path: the E2 selection refresh with the engine
// attached to a live registry vs fully uninstrumented (Metrics=nil).
// The instrumented path should stay within a few percent — per refresh
// it adds a handful of atomic adds, one histogram slot claim, and a
// span record.
func BenchmarkObsOverhead(b *testing.B) {
	const query = "SELECT * FROM stocks WHERE price > 120"
	b.Run("uninstrumented", func(b *testing.B) {
		f := newBenchFixture(b, benchBaseRows, 3, query)
		f.runDRA(b, dra.NewEngine())
	})
	b.Run("instrumented", func(b *testing.B) {
		f := newBenchFixture(b, benchBaseRows, 3, query)
		engine := dra.NewEngine()
		engine.Instrument(obs.NewRegistry())
		f.runDRA(b, engine)
	})
}
