package sql

import (
	"fmt"
	"strings"
)

// SyntaxError reports a lexical or grammatical error with its position.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

// Error implements error.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("sql: line %d col %d: %s", e.Line, e.Col, e.Msg)
}

// lexer turns input text into tokens.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) errf(format string, args ...any) error {
	return &SyntaxError{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.advance()
			l.advance()
			closed := false
			for l.pos+1 < len(l.src) {
				if l.peekByte() == '*' && l.src[l.pos+1] == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return l.errf("unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// next scans one token.
func (l *lexer) next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	startPos, startLine, startCol := l.pos, l.line, l.col
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: startPos, Line: startLine, Col: startCol}, nil
	}
	mk := func(kind TokenKind, text string) Token {
		return Token{Kind: kind, Text: text, Pos: startPos, Line: startLine, Col: startCol}
	}
	c := l.peekByte()
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.peekByte()) {
			l.advance()
		}
		word := l.src[startPos:l.pos]
		if IsKeyword(strings.ToUpper(word)) {
			return mk(TokKeyword, strings.ToUpper(word)), nil
		}
		return mk(TokIdent, word), nil

	case isDigit(c) || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
		sawDot, sawExp := false, false
		for l.pos < len(l.src) {
			c := l.peekByte()
			switch {
			case isDigit(c):
				l.advance()
			case c == '.' && !sawDot && !sawExp:
				sawDot = true
				l.advance()
			case (c == 'e' || c == 'E') && !sawExp && l.pos > startPos:
				sawExp = true
				l.advance()
				if l.pos < len(l.src) && (l.peekByte() == '+' || l.peekByte() == '-') {
					l.advance()
				}
				if l.pos >= len(l.src) || !isDigit(l.peekByte()) {
					return Token{}, l.errf("malformed exponent in number")
				}
			default:
				goto doneNum
			}
		}
	doneNum:
		return mk(TokNumber, l.src[startPos:l.pos]), nil

	case c == '\'':
		l.advance()
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return Token{}, l.errf("unterminated string literal")
			}
			ch := l.advance()
			if ch == '\'' {
				// '' escapes a quote.
				if l.pos < len(l.src) && l.peekByte() == '\'' {
					l.advance()
					sb.WriteByte('\'')
					continue
				}
				break
			}
			sb.WriteByte(ch)
		}
		return mk(TokString, sb.String()), nil

	default:
		// Multi-byte operators first.
		two := ""
		if l.pos+1 < len(l.src) {
			two = l.src[l.pos : l.pos+2]
		}
		switch two {
		case "<=", ">=", "<>", "!=":
			l.advance()
			l.advance()
			if two == "<>" {
				two = "!="
			}
			return mk(TokOp, two), nil
		}
		switch c {
		case '=', '<', '>', '+', '-', '*', '/', '%', '(', ')', ',', '.', ';':
			l.advance()
			return mk(TokOp, string(c)), nil
		}
		return Token{}, l.errf("unexpected character %q", string(c))
	}
}

// Lex tokenizes the whole input (exported for tests and tooling).
func Lex(src string) ([]Token, error) {
	l := newLexer(src)
	var out []Token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}
