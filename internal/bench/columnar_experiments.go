package bench

import (
	"fmt"
	"time"

	"github.com/diorama/continual/internal/batch"
	"github.com/diorama/continual/internal/dra"
	"github.com/diorama/continual/internal/obs"
	"github.com/diorama/continual/internal/workload"
)

// E21 measures the columnar refresh path against the row-oriented
// engine it replaced, on the production-shaped hot path: prepared plans
// (compile once, operand caches maintained across refreshes), windows
// pre-compacted by the storage layer, and — on the columnar arm — the
// batch images the commit path and window cache hand every CQ of the
// round, so the measured step is exactly the per-refresh work a pushed
// refresh performs. Latency, heap allocations, and allocated bytes per
// step come from the same loop, exposing both the cycle win
// (column-at-a-time predicates, slice-move projection) and the
// allocation win (arena reuse instead of per-row Value slices). Each
// vectorized arm is checked for vacuity: it must record vector steps
// and zero fallbacks, otherwise it silently measured the row path.
func E21(scale Scale) (*Table, error) {
	rounds := 2 + 2*scale.Iterations
	t := &Table{
		ID:    "E21",
		Title: "columnar vs row refresh: typed kernels + pooled batch arena",
		Note: fmt.Sprintf("prepared refresh step; selection: |R| = %d stocks, %d-row update batches; join: |A|=|B|=|C| = %d; median of %d refreshes",
			scale.BaseRows, e21BatchRows(scale), scale.BaseRows/5, rounds),
		Header: []string{"workload", "path", "|dW| rows", "us/refresh", "speedup", "alloc ratio"},
	}
	workloads := []struct {
		name string
		run  func(vectorized bool) (e21Arm, error)
	}{
		{"selection", func(vec bool) (e21Arm, error) { return e21Select(scale, rounds, vec) }},
		{"3-way join", func(vec bool) (e21Arm, error) { return e21Join(scale, rounds, vec) }},
	}
	for _, w := range workloads {
		row, err := w.run(false)
		if err != nil {
			return nil, fmt.Errorf("%s row arm: %w", w.name, err)
		}
		col, err := w.run(true)
		if err != nil {
			return nil, fmt.Errorf("%s columnar arm: %w", w.name, err)
		}
		t.Rows = append(t.Rows,
			[]string{w.name, "row", fmt.Sprint(row.rows), us(row.lat), "-", "-"},
			[]string{w.name, "columnar", fmt.Sprint(col.rows), us(col.lat),
				ratio(col.lat, row.lat), allocRatio(col.allocs, row.allocs)})
		t.AllocsPerOp = append(t.AllocsPerOp, row.allocs, col.allocs)
		t.BytesPerOp = append(t.BytesPerOp, row.bytes, col.bytes)
	}
	return t, nil
}

// e21Arm is one (workload, engine path) measurement.
type e21Arm struct {
	lat    time.Duration
	allocs uint64
	bytes  uint64
	rows   int // signed window rows per refresh (last round)
}

// e21BatchRows sizes the selection workload's per-refresh update batch:
// a 4% window, the regime where the paper's differential argument holds
// and per-row evaluation cost dominates the refresh.
func e21BatchRows(scale Scale) int {
	k := scale.BaseRows / 25
	if k < 1 {
		k = 1
	}
	return k
}

// e21Engine builds the measured engine with a private registry so the
// vacuity check reads this arm's counters only.
func e21Engine(vectorized bool) (*dra.Engine, *obs.Registry) {
	reg := obs.NewRegistry()
	eng := dra.NewEngine()
	eng.Vectorized = vectorized
	eng.Instrument(reg)
	return eng, reg
}

// e21Prep mirrors the refresh manager's window handling outside the
// measured region: windows arrive pre-compacted (the window cache folds
// them once per round for every CQ), and on the columnar arm the
// context carries the prebuilt batch images the storage boundary shares
// across consumers. The returned context is what prep.Step sees.
func e21Prep(ctx *dra.Context, eng *dra.Engine, vectorized bool) {
	if eng.CompactDeltas {
		for name, d := range ctx.Deltas {
			ctx.Deltas[name] = d.Compact()
		}
		ctx.Compacted = true
	}
	if vectorized {
		ctx.Batches = make(map[string]*batch.Batch, len(ctx.Deltas))
		for name, d := range ctx.Deltas {
			if b, ok := batch.FromDelta(nil, d); ok {
				ctx.Batches[name] = b
			}
		}
	}
}

// e21Check fails a vectorized arm that never ran the columnar kernels.
func e21Check(vectorized bool, reg *obs.Registry) error {
	if !vectorized {
		return nil
	}
	snap := reg.Snapshot()
	if snap.Counter("dra.vector_steps") == 0 {
		return fmt.Errorf("vectorized arm took zero vector steps")
	}
	if n := snap.Counter("dra.vector_fallbacks"); n != 0 {
		return fmt.Errorf("vectorized arm fell back to the row path %d times", n)
	}
	return nil
}

func allocRatio(col, row uint64) string {
	if col == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", float64(row)/float64(col))
}

// e21Select drives the Example-2 selection over modify-heavy update
// batches and measures only the prepared refresh step.
func e21Select(scale Scale, rounds int, vectorized bool) (e21Arm, error) {
	f, err := newEngineFixture(scale.BaseRows, 21, workload.DefaultMix, "SELECT * FROM stocks WHERE price > 120")
	if err != nil {
		return e21Arm{}, err
	}
	eng, reg := e21Engine(vectorized)
	prep, err := eng.Prepare(f.plan, dra.StrategyAuto)
	if err != nil {
		return e21Arm{}, err
	}
	defer prep.Close()
	k := e21BatchRows(scale)
	var arm e21Arm
	times := make([]time.Duration, 0, rounds)
	var allocs, bytes uint64
	for r := 0; r < rounds; r++ {
		if err := f.gen.Batch(k); err != nil {
			return e21Arm{}, err
		}
		// Version counters must be snapshotted before the refresh
		// timestamp is issued (see storage.ChangeCounts).
		versions := f.store.ChangeCounts()
		ts := f.store.Now()
		ctx, err := f.ctx()
		if err != nil {
			return e21Arm{}, err
		}
		ctx.Versions = versions
		e21Prep(ctx, eng, vectorized)
		arm.rows = ctx.Deltas["stocks"].Len()
		var res *dra.Result
		lat, al, by, err := stopwatchAllocs(1, func() error {
			r, err := prep.Step(ctx, ts)
			res = r
			return err
		})
		if err != nil {
			return e21Arm{}, err
		}
		times = append(times, lat)
		allocs += al
		bytes += by
		f.prev = res.ApplyTo(f.prev)
		f.lastTS = ts
		f.store.CollectGarbage(f.lastTS)
	}
	if err := e21Check(vectorized, reg); err != nil {
		return e21Arm{}, err
	}
	sortDurations(times)
	arm.lat = times[len(times)/2]
	arm.allocs = allocs / uint64(rounds)
	arm.bytes = bytes / uint64(rounds)
	return arm, nil
}

// e21Join drives the E5 3-way join with two changed operands per
// refresh under the truth-table strategy (the path the columnar kernels
// vectorize; StrategyAuto would pick the maintained-index join and
// measure the same non-columnar code twice): term evaluation (predicate
// + hash probe per signed row) is the hot loop, and the prepared
// operand caches keep partner index builds out of the measured step on
// both arms.
func e21Join(scale Scale, rounds int, vectorized bool) (e21Arm, error) {
	jf, err := newJoinFixture(scale.BaseRows/5, 21)
	if err != nil {
		return e21Arm{}, err
	}
	eng, reg := e21Engine(vectorized)
	prep, err := eng.Prepare(jf.plan, dra.StrategyTruthTable)
	if err != nil {
		return e21Arm{}, err
	}
	defer prep.Close()
	var arm e21Arm
	times := make([]time.Duration, 0, rounds)
	var allocs, bytes uint64
	for r := 0; r < rounds; r++ {
		if err := jf.touch(scale.BaseRows/100, "a", "c"); err != nil {
			return e21Arm{}, err
		}
		versions := jf.store.ChangeCounts()
		ts := jf.store.Now()
		ctx, err := jf.ctx()
		if err != nil {
			return e21Arm{}, err
		}
		ctx.Versions = versions
		e21Prep(ctx, eng, vectorized)
		arm.rows = 0
		for _, d := range ctx.Deltas {
			arm.rows += d.Len()
		}
		var res *dra.Result
		lat, al, by, err := stopwatchAllocs(1, func() error {
			r, err := prep.Step(ctx, ts)
			res = r
			return err
		})
		if err != nil {
			return e21Arm{}, err
		}
		times = append(times, lat)
		allocs += al
		bytes += by
		jf.prev = res.ApplyTo(jf.prev)
		jf.lastTS = ts
	}
	if err := e21Check(vectorized, reg); err != nil {
		return e21Arm{}, err
	}
	sortDurations(times)
	arm.lat = times[len(times)/2]
	arm.allocs = allocs / uint64(rounds)
	arm.bytes = bytes / uint64(rounds)
	return arm, nil
}
