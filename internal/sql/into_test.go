package sql

import "testing"

// INTO declares a materialization target between the select list and
// FROM. The durable registry persists queries as rendered text, so the
// clause must round-trip render → parse → render.
func TestParseSelectInto(t *testing.T) {
	sel, err := ParseSelect("SELECT name, price INTO expensive FROM stocks WHERE price > 100")
	if err != nil {
		t.Fatal(err)
	}
	if sel.Into != "expensive" {
		t.Fatalf("Into = %q, want %q", sel.Into, "expensive")
	}
	if len(sel.From) != 1 || sel.From[0].Table != "stocks" {
		t.Fatalf("From = %+v", sel.From)
	}
}

func TestParseSelectIntoRoundTrip(t *testing.T) {
	cases := []string{
		"SELECT * INTO hot FROM stocks",
		"SELECT name, price INTO pricey FROM stocks WHERE (price > 100)",
		"SELECT sector, SUM(price) AS total INTO by_sector FROM stocks GROUP BY sector",
	}
	for _, src := range cases {
		first, err := ParseSelect(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		rendered := first.String()
		second, err := ParseSelect(rendered)
		if err != nil {
			t.Fatalf("re-parse %q: %v", rendered, err)
		}
		if second.Into != first.Into {
			t.Fatalf("%s: Into %q -> %q", src, first.Into, second.Into)
		}
		if again := second.String(); again != rendered {
			t.Fatalf("%s: not a fixed point: %q vs %q", src, rendered, again)
		}
	}
}

func TestParseSelectIntoErrors(t *testing.T) {
	for _, src := range []string{
		"SELECT * INTO FROM stocks",  // missing target
		"SELECT * INTO 42 FROM t",    // target must be an identifier
		"SELECT name INTO a b FROM t", // one target only
	} {
		if _, err := ParseSelect(src); err == nil {
			t.Fatalf("%s: expected parse error", src)
		}
	}
}

// A CREATE CONTINUAL QUERY body may carry INTO: the cascade path from
// SQL registration.
func TestParseCreateCQInto(t *testing.T) {
	stmt, err := Parse("CREATE CONTINUAL QUERY roll AS SELECT name, price INTO hot FROM stocks WHERE price > 5 TRIGGER UPDATES 1")
	if err != nil {
		t.Fatal(err)
	}
	create, ok := stmt.(*CreateCQStmt)
	if !ok {
		t.Fatalf("got %T", stmt)
	}
	if create.Select.Into != "hot" {
		t.Fatalf("Into = %q", create.Select.Into)
	}
}
