package batch

import (
	"testing"

	"github.com/diorama/continual/internal/relation"
)

func testSchema() relation.Schema {
	return relation.MustSchema(
		relation.Column{Name: "i", Type: relation.TInt},
		relation.Column{Name: "f", Type: relation.TFloat},
		relation.Column{Name: "s", Type: relation.TString},
		relation.Column{Name: "b", Type: relation.TBool},
	)
}

func row(i int64, f float64, s string, b bool) []relation.Value {
	return []relation.Value{relation.Int(i), relation.Float(f), relation.Str(s), relation.Bool(b)}
}

func TestAppendAndRead(t *testing.T) {
	b := New(testSchema(), 4)
	if !b.AppendRow(1, +1, row(7, 2.5, "x", true)) {
		t.Fatal("append failed")
	}
	if !b.AppendRow(2, -1, []relation.Value{
		relation.TypedNull(relation.TInt), relation.Float(0), relation.TypedNull(relation.TString), relation.Bool(false),
	}) {
		t.Fatal("append with typed NULLs failed")
	}
	if b.Len() != 2 {
		t.Fatalf("len = %d", b.Len())
	}
	if v := b.Value(0, 0); v.AsInt() != 7 {
		t.Fatalf("value(0,0) = %v", v)
	}
	if v := b.Value(1, 0); !v.IsNull() || v.Kind != relation.TInt {
		t.Fatalf("NULL did not round-trip typed: %v kind=%v", v, v.Kind)
	}
	if v := b.Value(1, 1); v.IsNull() || v.AsFloat() != 0 {
		t.Fatalf("value(1,1) = %v", v)
	}
	if b.Signs[0] != +1 || b.Signs[1] != -1 {
		t.Fatalf("signs = %v", b.Signs)
	}
	dst := make([]relation.Value, 4)
	b.ReadRow(0, dst)
	if dst[2].AsString() != "x" || !dst[3].AsBool() {
		t.Fatalf("readrow = %v", dst)
	}
}

func TestAppendRejectsUnrepresentable(t *testing.T) {
	b := New(testSchema(), 1)
	// Untyped NULL (Kind 0) is unrepresentable: column type is unknown.
	if b.AppendRow(1, +1, []relation.Value{relation.NullValue(), relation.Float(0), relation.Str(""), relation.Bool(false)}) {
		t.Fatal("untyped NULL must be rejected")
	}
	b = New(testSchema(), 1)
	// Kind mismatch (float in the int column).
	if b.AppendRow(1, +1, []relation.Value{relation.Float(1), relation.Float(0), relation.Str(""), relation.Bool(false)}) {
		t.Fatal("kind mismatch must be rejected")
	}
}

func TestGather(t *testing.T) {
	b := New(testSchema(), 4)
	for i := int64(0); i < 5; i++ {
		vals := row(i, float64(i), "r", i%2 == 0)
		if i == 3 {
			vals[2] = relation.TypedNull(relation.TString)
		}
		if !b.AppendRow(relation.TID(i), +1, vals) {
			t.Fatal("append")
		}
	}
	b.Gather([]int32{1, 3, 4})
	if b.Len() != 3 {
		t.Fatalf("len = %d", b.Len())
	}
	if got := b.Value(0, 0).AsInt(); got != 1 {
		t.Fatalf("row0 = %d", got)
	}
	if v := b.Value(1, 2); !v.IsNull() {
		t.Fatalf("NULL lost in gather: %v", v)
	}
	if v := b.Value(2, 2); v.IsNull() || v.AsString() != "r" {
		t.Fatalf("valid row corrupted in gather: %v", v)
	}
	if b.TIDs[2] != 4 {
		t.Fatalf("tids = %v", b.TIDs)
	}
}

func TestViewSharesBuffers(t *testing.T) {
	b := New(testSchema(), 2)
	b.AppendRow(1, +1, row(1, 1, "a", true))
	renamed := relation.MustSchema(
		relation.Column{Name: "t.i", Type: relation.TInt},
		relation.Column{Name: "t.f", Type: relation.TFloat},
		relation.Column{Name: "t.s", Type: relation.TString},
		relation.Column{Name: "t.b", Type: relation.TBool},
	)
	v := b.View(renamed)
	if v.Len() != 1 || v.Value(0, 0).AsInt() != 1 {
		t.Fatal("view content")
	}
	if !v.Cols[0].Shared || !v.sharedRows {
		t.Fatal("view must mark buffers shared")
	}
	// Pooling the view must not recycle the parent's buffers.
	p := NewPool()
	p.Put(v)
	if b.Value(0, 0).AsInt() != 1 {
		t.Fatal("parent corrupted by pooling a view")
	}
}

func TestStealCol(t *testing.T) {
	b := New(testSchema(), 2)
	b.AppendRow(9, +1, row(42, 0, "", false))
	c := b.StealCol(0)
	if len(c.I64) != 1 || c.I64[0] != 42 {
		t.Fatalf("stolen col = %+v", c)
	}
	if !b.Cols[0].Shared {
		t.Fatal("source slot must be marked shared after steal")
	}
}

func TestPoolRecycles(t *testing.T) {
	p := NewPool()
	b := p.Get(testSchema(), 8)
	for i := int64(0); i < 8; i++ {
		b.AppendRow(relation.TID(i), +1, row(i, 0, "v", false))
	}
	p.Put(b)
	b2 := p.Get(testSchema(), 8)
	if b2.Len() != 0 {
		t.Fatalf("recycled batch not empty: %d", b2.Len())
	}
	if !b2.AppendRow(1, +1, row(5, 0, "w", true)) || b2.Value(0, 0).AsInt() != 5 {
		t.Fatal("recycled batch unusable")
	}
}

func TestPoisonedGeneration(t *testing.T) {
	if !poisonEnabled {
		t.Skip("poison assertions compiled out (build without -race/batchpoison)")
	}
	p := NewPool()
	b := p.Get(testSchema(), 1)
	b.AppendRow(1, +1, row(1, 0, "", false))
	gen := b.Gen()
	p.Put(b)
	if b.Gen() != gen+1 {
		t.Fatalf("generation not bumped: %d -> %d", gen, b.Gen())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("use after Put did not panic in poison build")
		}
	}()
	_ = b.Len()
}

func TestIdxAndTIDPools(t *testing.T) {
	p := NewPool()
	s := p.GetIdx(4)
	s = append(s, 1, 2, 3)
	p.PutIdx(s)
	s2 := p.GetIdx(4)
	if len(s2) != 0 {
		t.Fatalf("recycled idx not empty: %v", s2)
	}
	ts := p.GetTIDs(4)
	ts = append(ts, 1)
	p.PutTIDs(ts)
	if got := p.GetTIDs(4); len(got) != 0 {
		t.Fatalf("recycled tid buf not empty: %v", got)
	}
}

func TestRowsEqual(t *testing.T) {
	b := New(testSchema(), 3)
	b.AppendRow(1, +1, row(1, 2, "a", true))
	b.AppendRow(2, -1, row(1, 2, "a", true))
	b.AppendRow(3, +1, row(1, 2, "b", true))
	vals := []relation.Value{relation.Int(1), relation.Float(2), relation.TypedNull(relation.TString), relation.Bool(true)}
	b.AppendRow(4, +1, vals)
	b.AppendRow(5, +1, vals)
	if !b.RowsEqual(0, 1) {
		t.Fatal("identical rows unequal")
	}
	if b.RowsEqual(0, 2) {
		t.Fatal("different rows equal")
	}
	if !b.RowsEqual(3, 4) {
		t.Fatal("NULL rows must compare equal")
	}
	if b.RowsEqual(0, 3) {
		t.Fatal("NULL vs value must compare unequal")
	}
}
