// Package dra implements the Differential Re-evaluation Algorithm of
// Section 4 of the paper: re-evaluating a continual query over the
// differential relations of its operands instead of rescanning the base
// data.
//
// # Algorithm
//
// For an SPJ query Q = π_X(σ_F(R1 ⋈ ... ⋈ Rn)), let ΔRi be the
// differential relation window of operand i since the last execution and
// let k be the number of changed operands. Algorithm 1 of the paper
// builds a truth table with 2^k rows; every row except all-zeros selects
// a non-empty subset S of changed operands and contributes the term
//
//	π_X(σ_F( ⋈_{i∈S} ΔRi  ⋈  ⋈_{i∉S} Ri ))
//
// where the unsubstituted operands are taken at their state as of the
// last execution. Treating each ΔRi as a signed multiset (insert = +1,
// delete = -1, modification = -old +new) and multiplying signs across a
// join makes the union of the 2^k−1 terms exactly the net change of the
// query result under general updates — the distributivity identity
//
//	(R1+ΔR1) ⋈ (R2+ΔR2) = R1⋈R2 + ΔR1⋈R2 + R1⋈ΔR2 + ΔR1⋈ΔR2
//
// generalized to n operands. Selections and projections commute with the
// signed representation row by row.
//
// The package also provides Propagate, the paper's complete
// re-evaluation reference operator (run Q on both states and Diff), used
// by the equivalence proofs in the test suite and by the benchmark
// baselines, and the relevant-update refinement of Section 5.2.
//
// Aggregate and DISTINCT queries are outside the SPJ class that
// Algorithm 1 covers ("limited to SPJ expressions"); Reevaluate falls
// back to Propagate for them, and the cq package maintains aggregate
// trigger state differentially per Section 5.3 instead.
package dra

import (
	"errors"
	"fmt"
	"time"

	"github.com/diorama/continual/internal/algebra"
	"github.com/diorama/continual/internal/batch"
	"github.com/diorama/continual/internal/delta"
	"github.com/diorama/continual/internal/obs"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/vclock"
)

// Errors returned by the engine.
var (
	ErrUnsupportedPlan = errors.New("dra: plan node not supported by differential evaluation")
	ErrNoPrev          = errors.New("dra: previous result required")
)

// Context carries the inputs of Algorithm 1:
//
//	(i)   the CQ definition        — the plan passed to Reevaluate;
//	(ii)  base contents at the last execution — Pre;
//	(iii) the differential relations           — Deltas (window > last ts);
//	(iv)  the timestamp of the last execution  — LastTS;
//	(v)   the previous complete result         — Prev.
//
// Post is the current contents, needed by the Propagate fallback and by
// result verification.
type Context struct {
	Pre    algebra.Source
	Post   algebra.Source
	Deltas map[string]*delta.Delta
	LastTS vclock.Timestamp
	Prev   *relation.Relation

	// Compacted declares that Deltas are already folded to their net
	// per-tid effect, so a CompactDeltas engine must not compact them
	// again. The cq scheduler's shared window cache sets this when it
	// hands the same compacted window to many CQs.
	Compacted bool

	// Versions carries per-table change-counter snapshots
	// (storage.Store.ChangeCounts) for prepared-plan operand caches.
	// The snapshot MUST be taken before the refresh timestamp is
	// issued — the counters then cover at most the commits older than
	// the timestamp, so a later equality proves the table untouched in
	// between. Nil disables counter revalidation (caches still hit on
	// consecutive refreshes via timestamps alone).
	Versions map[string]uint64

	// Batches optionally carries prebuilt columnar images of Deltas —
	// same rows, same order — built once at the storage boundary and
	// shared read-only by every CQ refreshing over the window. A
	// Vectorized engine scans them as zero-copy views instead of
	// converting the row window per CQ, provided no further compaction
	// would apply (CompactDeltas off, or Compacted set). Nil or missing
	// entries are fine; the scan converts from Deltas.
	Batches map[string]*batch.Batch
}

// Stats records the work of one differential re-evaluation, consumed by
// the benchmark harness.
type Stats struct {
	// Terms is the number of truth-table terms evaluated (Σ over join
	// groups of 2^k - 1).
	Terms int
	// DeltaRows is the total number of signed delta rows consumed.
	DeltaRows int
	// PreTuplesScanned counts tuples materialized from unchanged-operand
	// pre-states for join partner sides.
	PreTuplesScanned int
	// FellBack reports that the plan was outside the SPJ class and was
	// recomputed via Propagate.
	FellBack bool
	// Skipped reports that the relevant-update refinement (Section 5.2)
	// proved all updates irrelevant and skipped evaluation entirely.
	Skipped bool
	// IndexCacheHits counts operand pre-states served from a prepared
	// plan's cross-refresh cache (no snapshot scan, indexes reused);
	// IndexCacheMisses counts replica rebuilds and first-time index
	// builds. Both stay zero on the unprepared Reevaluate path.
	IndexCacheHits   int
	IndexCacheMisses int
}

// Engine evaluates differential forms of SPJ plans. The flags correspond
// to the ablation benchmarks in EXPERIMENTS.md.
type Engine struct {
	// UseHeuristics orders term joins delta-first and applies predicates
	// as soon as their operands are joined ("select before join",
	// Section 5.2). When false, terms join operands left-to-right and
	// apply the full predicate at the end.
	UseHeuristics bool
	// CompactDeltas folds each operand's delta window to its net effect
	// before evaluation (A2).
	CompactDeltas bool
	// UseHashJoin probes hash indexes for equi-join terms (A3); nested
	// loops otherwise.
	UseHashJoin bool
	// SkipIrrelevant enables the Section 5.2 refinement: when every
	// operand's filtered delta is empty the re-evaluation is skipped.
	SkipIrrelevant bool
	// Vectorized routes differential evaluation through the columnar
	// batch kernels: operand windows become typed column batches,
	// selection produces selection indices instead of row copies,
	// projection moves columns by slice reuse, and join terms probe the
	// prepared operand indexes per batch, all over a pooled arena.
	// Values unrepresentable in typed columns (kind drift, untyped
	// NULLs) make the refresh fall back to the row path with identical
	// results; operand-cache advances are deferred until the vectorized
	// tree succeeds, so the fallback never sees half-advanced replicas.
	Vectorized bool

	// pool recycles batch and selection buffers across refreshes; it is
	// sync.Pool-backed, so concurrent refresh workers share it safely.
	// Nil (zero-value engines in tests) degrades to plain allocation.
	pool *batch.Pool

	// Metrics accumulates per-call Stats into the engine-wide obs
	// registry and records a span per Reevaluate. Nil (the default)
	// leaves the engine uninstrumented; see Instrument.
	//
	// Per-call stats live in Result.Stats, owned by the caller; the
	// engine keeps no mutable evaluation state of its own, which is
	// what lets one engine serve concurrent refresh workers.
	Metrics *Metrics
}

// NewEngine returns an engine with all optimizations enabled.
func NewEngine() *Engine {
	return &Engine{
		UseHeuristics:  true,
		CompactDeltas:  true,
		UseHashJoin:    true,
		SkipIrrelevant: true,
		Vectorized:     true,
		pool:           batch.NewPool(),
	}
}

// Result is the outcome of one differential re-evaluation.
type Result struct {
	// Signed is the net signed change of the query result.
	Signed *delta.Signed
	// Delta is the change in differential-relation form (modifications
	// paired), rows stamped with ExecTS.
	Delta *delta.Delta
	// ExecTS is the timestamp assigned to this execution.
	ExecTS vclock.Timestamp
	// Stats is the work of this evaluation, owned by the caller, so it
	// stays coherent when one engine serves concurrent re-evaluations.
	Stats Stats

	// materialized is set when the evaluation already produced the full
	// result (FullReevaluate); ApplyTo then returns it directly.
	materialized *relation.Relation
}

// ApplyTo maintains the complete result (Section 4.3: Et_i(Q) ∪
// insertions − deletions): it applies the change to prev IN PLACE — an
// O(|Δ|) operation, which is the whole point of differential maintenance
// — and returns it. Callers that still need the old result must clone it
// first. Calling ApplyTo more than once on the same Result is incorrect.
func (r *Result) ApplyTo(prev *relation.Relation) *relation.Relation {
	if r.materialized != nil {
		return r.materialized
	}
	delta.ApplySigned(prev, r.Signed)
	return prev
}

// Inserted returns the inserted-tuples view of the change.
func (r *Result) Inserted() *relation.Relation { return r.Delta.Insertions() }

// Deleted returns the deleted-tuples view of the change.
func (r *Result) Deleted() *relation.Relation { return r.Delta.Deletions() }

// Modified returns the modification rows of the change.
func (r *Result) Modified() []delta.Row { return r.Delta.Modifications() }

// Reevaluate computes the result of the current execution of the query
// differentially, compiling the plan transiently per call. ctx.Prev
// must hold the previous complete result. Standing queries should
// Prepare once and Step instead: the compiled tree and the operand
// index cache then persist across refreshes.
//
// Reevaluate is safe for concurrent use: stats accumulate into a
// per-call value (returned in Result.Stats) and the context is only
// read, so the cq scheduler's refresh workers share one engine.
func (e *Engine) Reevaluate(plan algebra.Plan, ctx *Context, execTS vclock.Timestamp) (*Result, error) {
	var root *compiledNode
	if supportsDifferential(plan) {
		r, err := compilePlan(plan)
		if err != nil {
			return nil, err
		}
		root = r
	}
	return e.evaluate(plan, root, ctx, execTS)
}

// evaluate is the refresh core shared by Reevaluate (transient compile
// per call) and Prepared.Step (compile once at registration): the
// truth-table differential evaluation when root is non-nil, the
// Propagate fallback otherwise.
func (e *Engine) evaluate(plan algebra.Plan, root *compiledNode, ctx *Context, execTS vclock.Timestamp) (*Result, error) {
	if ctx.Prev == nil {
		return nil, ErrNoPrev
	}
	var st Stats
	var span *obs.Span
	var start time.Time
	if m := e.Metrics; m != nil {
		start = time.Now()
		span = m.startSpan()
	}

	var signed *delta.Signed
	if root != nil {
		if e.SkipIrrelevant {
			relevant, probed := false, false
			if e.Vectorized {
				rel, ok, err := e.vecRelevant(root, ctx)
				if err != nil {
					return nil, err
				}
				relevant, probed = rel, ok
			}
			if !probed {
				rel, err := e.relevant(root, ctx)
				if err != nil {
					return nil, err
				}
				relevant = rel
			}
			if !relevant {
				st.Skipped = true
				signed = &delta.Signed{Schema: plan.Schema()}
				// The skipped window still moves the operand caches
				// forward: every filtered delta is empty, so each
				// replica already equals its operand's state at execTS.
				root.eachJoin(func(cj *compiledJoin) {
					if cj.cache != nil {
						cj.cache.skipTo(ctx, execTS)
					}
				})
			}
		}
		if signed == nil && e.Vectorized {
			net, ok, err := e.vecEvaluate(root, ctx, execTS, &st)
			if err != nil {
				return nil, err
			}
			if ok {
				if m := e.Metrics; m != nil {
					m.VecSteps.Inc()
					m.observe(st, span, time.Since(start))
				}
				return &Result{
					Signed: net,
					Delta:  net.ToDeltaNetted(execTS),
					ExecTS: execTS,
					Stats:  st,
				}, nil
			}
			// Some value was unrepresentable in typed columns; nothing
			// was mutated, so the row path below re-runs cleanly.
			if m := e.Metrics; m != nil {
				m.VecFallbacks.Inc()
			}
		}
		if signed == nil {
			s, err := e.signedDelta(root, ctx, execTS, &st)
			if err != nil {
				return nil, err
			}
			signed = s
		}
	} else {
		st.FellBack = true
		s, err := PropagateSigned(plan, ctx.Pre, ctx.Post)
		if err != nil {
			return nil, err
		}
		signed = s
	}

	net := netSigned(signed)
	if m := e.Metrics; m != nil {
		m.observe(st, span, time.Since(start))
	}
	return &Result{
		Signed: net,
		Delta:  net.ToDeltaNetted(execTS),
		ExecTS: execTS,
		Stats:  st,
	}, nil
}

// Relevant implements the query refinement of Section 5.2: it tests the
// per-operand differential windows against the operand-local predicates
// and reports whether any update can affect the query result. It never
// materializes pre-states, so it is cheap (O(Σ|ΔRi|)).
func (e *Engine) Relevant(plan algebra.Plan, ctx *Context) (bool, error) {
	if !supportsDifferential(plan) {
		return true, nil
	}
	root, err := compilePlan(plan)
	if err != nil {
		return false, err
	}
	return e.relevant(root, ctx)
}

// relevant tests every maximal join-free subtree's filtered delta for
// emptiness, on a scratch Stats: the rows it scans are counted again by
// the real evaluation, so its work never reaches Result.Stats.
func (e *Engine) relevant(root *compiledNode, ctx *Context) (bool, error) {
	var scratch Stats
	for _, op := range root.operands(nil) {
		d, err := e.signedDelta(op, ctx, 0, &scratch)
		if err != nil {
			return false, err
		}
		if d.Len() > 0 {
			return true, nil
		}
	}
	return false, nil
}

// supportsDifferential reports whether the plan is in the SPJ class
// covered by Algorithm 1.
func supportsDifferential(p algebra.Plan) bool {
	switch n := p.(type) {
	case *algebra.ScanPlan:
		return true
	case *algebra.SelectPlan:
		return supportsDifferential(n.Input)
	case *algebra.ProjectPlan:
		return supportsDifferential(n.Input)
	case *algebra.JoinPlan:
		return supportsDifferential(n.Left) && supportsDifferential(n.Right)
	default:
		return false
	}
}

// signedDelta computes the signed change of a compiled node's output
// between the pre and post states, accumulating work counts into st.
// execTS is the timestamp the refresh runs at; join groups with an
// operand cache use it to tag advanced replicas (zero is fine when no
// cache is attached, e.g. relevance probes on join-free subtrees).
func (e *Engine) signedDelta(n *compiledNode, ctx *Context, execTS vclock.Timestamp, st *Stats) (*delta.Signed, error) {
	switch {
	case n.scan != nil:
		return e.scanDelta(n.scan, ctx, st)
	case n.sel != nil:
		in, err := e.signedDelta(n.sel.input, ctx, execTS, st)
		if err != nil {
			return nil, err
		}
		return filterSigned(in, n.sel.pred)
	case n.proj != nil:
		in, err := e.signedDelta(n.proj.input, ctx, execTS, st)
		if err != nil {
			return nil, err
		}
		return projectSigned(in, n.proj.items, n.proj.schema)
	case n.join != nil:
		return e.joinDelta(n.join, ctx, execTS, st)
	default:
		return nil, fmt.Errorf("%w: %T", ErrUnsupportedPlan, n.plan)
	}
}

// scanDelta converts the table's differential window to signed form under
// the scan's qualified schema.
func (e *Engine) scanDelta(n *algebra.ScanPlan, ctx *Context, st *Stats) (*delta.Signed, error) {
	d := ctx.Deltas[n.Table]
	if d == nil {
		return &delta.Signed{Schema: n.Schema()}, nil
	}
	if e.CompactDeltas && !ctx.Compacted {
		d = d.Compact()
	}
	s := d.ToSigned()
	st.DeltaRows += len(s.Rows)
	// Rebadge under the scan's qualified schema (same types).
	return &delta.Signed{Schema: n.Schema(), Rows: s.Rows}, nil
}

// filterSigned applies a compiled selection predicate to each signed
// row. A modification whose old half passes and whose new half fails
// nets to a deletion from the result, exactly as in Example 2 of the
// paper.
func filterSigned(in *delta.Signed, ce algebra.CompiledExpr) (*delta.Signed, error) {
	out := &delta.Signed{Schema: in.Schema, Rows: make([]delta.SignedRow, 0, len(in.Rows))}
	for _, r := range in.Rows {
		pass, err := algebra.EvalPredicate(ce, relation.Tuple{TID: r.TID, Values: r.Values})
		if err != nil {
			return nil, fmt.Errorf("dra: select: %w", err)
		}
		if pass {
			out.Rows = append(out.Rows, r)
		}
	}
	return out, nil
}

// projectSigned maps each signed row through compiled projection items.
func projectSigned(in *delta.Signed, compiled []algebra.CompiledExpr, outSchema relation.Schema) (*delta.Signed, error) {
	out := &delta.Signed{Schema: outSchema, Rows: make([]delta.SignedRow, 0, len(in.Rows))}
	for _, r := range in.Rows {
		vals := make([]relation.Value, len(compiled))
		for i, ce := range compiled {
			v, err := ce.Eval(relation.Tuple{TID: r.TID, Values: r.Values})
			if err != nil {
				return nil, fmt.Errorf("dra: project: %w", err)
			}
			vals[i] = v
		}
		out.Rows = append(out.Rows, delta.SignedRow{TID: r.TID, Values: vals, Sign: r.Sign})
	}
	return out, nil
}

// netSigned reduces a signed multiset to at most one negative and one
// positive row per tid by counting per (tid, value) and keeping nonzero
// nets. This collapses the cross terms of the truth-table expansion
// (e.g. a tuple modified on both join sides contributes four signed rows
// that net to one -old and one +new).
//
// Rows are bucketed by value hash per tid, but the hash alone is not the
// identity: entries with the same hash are chained and distinguished by
// comparing the actual values, so a hash collision between two distinct
// rows never merges (and possibly cancels) their counts.
func netSigned(s *delta.Signed) *delta.Signed {
	type valEntry struct {
		values []relation.Value
		count  int
		order  int
	}
	perTID := make(map[relation.TID]map[uint64][]*valEntry, len(s.Rows))
	var tidOrder []relation.TID
	n := 0
	for _, r := range s.Rows {
		m, ok := perTID[r.TID]
		if !ok {
			m = make(map[uint64][]*valEntry, 2)
			perTID[r.TID] = m
			tidOrder = append(tidOrder, r.TID)
		}
		h := relation.HashValues(r.Values)
		var ve *valEntry
		for _, cand := range m[h] {
			if sameValues(cand.values, r.Values) {
				ve = cand
				break
			}
		}
		if ve == nil {
			ve = &valEntry{values: r.Values, order: n}
			n++
			m[h] = append(m[h], ve)
		}
		ve.count += r.Sign
	}
	out := &delta.Signed{Schema: s.Schema}
	for _, tid := range tidOrder {
		var neg, pos *valEntry
		for _, chain := range perTID[tid] {
			for _, ve := range chain {
				switch {
				case ve.count < 0 && (neg == nil || ve.order < neg.order):
					neg = ve
				case ve.count > 0 && (pos == nil || ve.order < pos.order):
					pos = ve
				}
			}
		}
		if neg != nil {
			out.Rows = append(out.Rows, delta.SignedRow{TID: tid, Values: neg.values, Sign: -1})
		}
		if pos != nil {
			out.Rows = append(out.Rows, delta.SignedRow{TID: tid, Values: pos.values, Sign: +1})
		}
	}
	return out
}

// sameValues reports whether two rows carry equal values position by
// position (same arity assumed within one signed multiset).
func sameValues(a, b []relation.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}
