// Package delta implements differential relations as defined in Section
// 4.1 of the paper: timestamped logs of insertions, deletions and
// modifications against a base or derived relation.
//
// A differential relation ΔR over a relation R with attributes A1..An has
// rows of the form (old A1..An | new A1..An | ts). For an insertion the
// old half is null; for a deletion the new half is null; for a
// modification both halves are populated. Each row is keyed by the tid of
// the affected tuple, and the ts field is drawn from a monotonically
// increasing clock at append time.
//
// Following Example 1 of the paper, the derived views are:
//
//   - Insertions(Δ): the new halves of insertion AND modification rows
//     ("objects that are newly inserted into the base relation R" — after
//     a modification the new version is newly present);
//   - Deletions(Δ): the old halves of deletion AND modification rows
//     ("objects that are recently deleted" — the old version is gone).
//
// Unlike the hypothetical relations of eager view maintenance, a
// differential relation accumulates the changes of many transactions and
// is garbage-collected only past the "active delta zone" of every
// continual query that still needs it (Section 5.4).
package delta

import (
	"errors"
	"fmt"
	"sort"

	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/vclock"
)

// Kind classifies a differential row.
type Kind int

// Differential row kinds.
const (
	Insert Kind = iota + 1
	Delete
	Modify
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Insert:
		return "insert"
	case Delete:
		return "delete"
	case Modify:
		return "modify"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Row is one entry of a differential relation. Old is nil for insertions;
// New is nil for deletions; both are set for modifications.
type Row struct {
	TID relation.TID
	Old []relation.Value
	New []relation.Value
	TS  vclock.Timestamp
}

// Kind derives the row kind from which halves are populated.
func (r Row) Kind() Kind {
	switch {
	case r.Old == nil:
		return Insert
	case r.New == nil:
		return Delete
	default:
		return Modify
	}
}

// Errors returned by Delta operations.
var (
	ErrBadRow  = errors.New("delta: row has neither old nor new values")
	ErrArity   = errors.New("delta: value arity does not match schema")
	ErrReplay  = errors.New("delta: cannot apply row to relation")
	ErrOrder   = errors.New("delta: rows must be appended in timestamp order")
	ErrSchemas = errors.New("delta: incompatible schemas")
)

// Delta is a differential relation over a base schema. Rows are kept in
// append (= timestamp) order. Delta is not safe for concurrent mutation;
// the storage engine serializes appends.
type Delta struct {
	schema relation.Schema
	rows   []Row
}

// New creates an empty differential relation for the given base schema.
func New(schema relation.Schema) *Delta {
	return &Delta{schema: schema}
}

// Schema returns the base schema the delta refers to.
func (d *Delta) Schema() relation.Schema { return d.schema }

// Len returns the number of rows.
func (d *Delta) Len() int { return len(d.rows) }

// Rows exposes the backing slice for read-only iteration.
func (d *Delta) Rows() []Row { return d.rows }

// Append adds a row. Rows must arrive in non-decreasing timestamp order
// and match the schema arity.
func (d *Delta) Append(r Row) error {
	if r.Old == nil && r.New == nil {
		return ErrBadRow
	}
	if r.Old != nil && len(r.Old) != d.schema.Len() {
		return fmt.Errorf("%w: old half has %d values", ErrArity, len(r.Old))
	}
	if r.New != nil && len(r.New) != d.schema.Len() {
		return fmt.Errorf("%w: new half has %d values", ErrArity, len(r.New))
	}
	if n := len(d.rows); n > 0 && r.TS < d.rows[n-1].TS {
		return fmt.Errorf("%w: ts %d after %d", ErrOrder, r.TS, d.rows[n-1].TS)
	}
	d.rows = append(d.rows, r)
	return nil
}

// AppendInsert records an insertion.
func (d *Delta) AppendInsert(tid relation.TID, values []relation.Value, ts vclock.Timestamp) error {
	return d.Append(Row{TID: tid, New: values, TS: ts})
}

// AppendDelete records a deletion.
func (d *Delta) AppendDelete(tid relation.TID, old []relation.Value, ts vclock.Timestamp) error {
	return d.Append(Row{TID: tid, Old: old, TS: ts})
}

// AppendModify records an in-place modification.
func (d *Delta) AppendModify(tid relation.TID, old, now []relation.Value, ts vclock.Timestamp) error {
	return d.Append(Row{TID: tid, Old: old, New: now, TS: ts})
}

// After returns the sub-delta of rows with TS strictly greater than t —
// the σ_{ts>t_i}(ΔR) window that the DRA applies before every term
// evaluation (Section 4.2). The returned Delta shares row storage with d;
// callers must treat it as read-only.
func (d *Delta) After(t vclock.Timestamp) *Delta {
	// Rows are in ts order: binary search for the first ts > t.
	lo, hi := 0, len(d.rows)
	for lo < hi {
		mid := (lo + hi) / 2
		if d.rows[mid].TS > t {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return &Delta{schema: d.schema, rows: d.rows[lo:]}
}

// Window returns rows with lo < TS <= hi.
func (d *Delta) Window(lo, hi vclock.Timestamp) *Delta {
	after := d.After(lo)
	n := len(after.rows)
	for n > 0 && after.rows[n-1].TS > hi {
		n--
	}
	return &Delta{schema: d.schema, rows: after.rows[:n]}
}

// MaxTS returns the timestamp of the newest row, or 0 if empty.
func (d *Delta) MaxTS() vclock.Timestamp {
	if len(d.rows) == 0 {
		return 0
	}
	return d.rows[len(d.rows)-1].TS
}

// MinTS returns the timestamp of the oldest row, or 0 if empty.
func (d *Delta) MinTS() vclock.Timestamp {
	if len(d.rows) == 0 {
		return 0
	}
	return d.rows[0].TS
}

// Insertions materializes the insertions view: the new halves of insert
// and modify rows, exactly as in Example 1 of the paper (where the
// modified DEC tuple appears in insertions(ΔStocks) with its new values).
func (d *Delta) Insertions() *relation.Relation {
	out := relation.New(d.schema)
	for _, r := range d.rows {
		if r.New == nil {
			continue
		}
		// Later rows for the same tid supersede earlier ones.
		_ = out.Upsert(relation.Tuple{TID: r.TID, Values: r.New})
	}
	// A tid that was inserted and later deleted within the window nets out.
	for _, r := range d.rows {
		if r.Kind() == Delete && out.Has(r.TID) {
			_ = out.Delete(r.TID)
		}
	}
	return out
}

// Deletions materializes the deletions view: the old halves of delete and
// modify rows.
func (d *Delta) Deletions() *relation.Relation {
	out := relation.New(d.schema)
	for _, r := range d.rows {
		if r.Old == nil {
			continue
		}
		if !out.Has(r.TID) {
			_ = out.Insert(relation.Tuple{TID: r.TID, Values: r.Old})
		}
	}
	// A tid deleted (or modified) and then re-inserted nets to its first
	// old value — keep it; but a tid whose first appearance in the window
	// is an insert did not exist before the window, so its later delete
	// must not appear in the deletions view.
	first := make(map[relation.TID]Kind, len(d.rows))
	for _, r := range d.rows {
		if _, seen := first[r.TID]; !seen {
			first[r.TID] = r.Kind()
		}
	}
	for tid, k := range first {
		if k == Insert && out.Has(tid) {
			_ = out.Delete(tid)
		}
	}
	return out
}

// Modifications materializes pure modification rows as a relation over
// the doubled schema (old columns then new columns), for display and
// notification purposes.
func (d *Delta) Modifications() []Row {
	var out []Row
	for _, r := range d.rows {
		if r.Kind() == Modify {
			out = append(out, r)
		}
	}
	return out
}

// Counts returns the number of insert, delete and modify rows.
func (d *Delta) Counts() (ins, del, mod int) {
	for _, r := range d.rows {
		switch r.Kind() {
		case Insert:
			ins++
		case Delete:
			del++
		default:
			mod++
		}
	}
	return ins, del, mod
}

// Apply replays the delta onto a relation in timestamp order, producing
// the post-state. It mutates rel.
func (d *Delta) Apply(rel *relation.Relation) error {
	if !d.schema.TypesEqual(rel.Schema()) {
		return fmt.Errorf("%w: delta %s, relation %s", ErrSchemas, d.schema, rel.Schema())
	}
	for _, r := range d.rows {
		switch r.Kind() {
		case Insert:
			if err := rel.Insert(relation.Tuple{TID: r.TID, Values: cloneValues(r.New)}); err != nil {
				return fmt.Errorf("%w: insert tid %d: %v", ErrReplay, r.TID, err)
			}
		case Delete:
			if err := rel.Delete(r.TID); err != nil {
				return fmt.Errorf("%w: delete tid %d: %v", ErrReplay, r.TID, err)
			}
		case Modify:
			if err := rel.Update(r.TID, cloneValues(r.New)); err != nil {
				return fmt.Errorf("%w: modify tid %d: %v", ErrReplay, r.TID, err)
			}
		}
	}
	return nil
}

// Unapply rolls the delta back off a relation (newest row first),
// producing the pre-state. DRA uses this to reconstruct "the contents of
// each base relation after the last execution of the CQ" (input (ii) of
// Algorithm 1) from the current contents plus the delta window.
func (d *Delta) Unapply(rel *relation.Relation) error {
	if !d.schema.TypesEqual(rel.Schema()) {
		return fmt.Errorf("%w: delta %s, relation %s", ErrSchemas, d.schema, rel.Schema())
	}
	for i := len(d.rows) - 1; i >= 0; i-- {
		r := d.rows[i]
		switch r.Kind() {
		case Insert:
			if err := rel.Delete(r.TID); err != nil {
				return fmt.Errorf("%w: unapply insert tid %d: %v", ErrReplay, r.TID, err)
			}
		case Delete:
			if err := rel.Insert(relation.Tuple{TID: r.TID, Values: cloneValues(r.Old)}); err != nil {
				return fmt.Errorf("%w: unapply delete tid %d: %v", ErrReplay, r.TID, err)
			}
		case Modify:
			if err := rel.Update(r.TID, cloneValues(r.Old)); err != nil {
				return fmt.Errorf("%w: unapply modify tid %d: %v", ErrReplay, r.TID, err)
			}
		}
	}
	return nil
}

// Compact folds the delta to its net effect per tid: insert-then-modify
// becomes insert of the final value, insert-then-delete vanishes,
// modify-then-modify collapses, delete-then-insert of the same tid becomes
// a modify. The resulting rows carry the timestamp of the last
// contributing row, preserving window semantics for any t before the
// compaction horizon. Returns a new Delta.
func (d *Delta) Compact() *Delta {
	type state struct {
		row   Row
		alive bool
	}
	net := make(map[relation.TID]*state, len(d.rows))
	order := make([]relation.TID, 0, len(d.rows))
	for _, r := range d.rows {
		st, ok := net[r.TID]
		if !ok {
			cp := r
			net[r.TID] = &state{row: cp, alive: true}
			order = append(order, r.TID)
			continue
		}
		// Merge r into the accumulated row for this tid.
		prev := st.row
		merged := Row{TID: r.TID, TS: r.TS}
		merged.Old = prev.Old // original pre-window value (nil if first op was insert)
		merged.New = r.New    // latest value (nil if last op was delete)
		st.row = merged
	}
	out := New(d.schema)
	for _, tid := range order {
		st := net[tid]
		r := st.row
		if r.Old == nil && r.New == nil {
			continue // insert followed by delete: net nothing
		}
		if r.Old != nil && r.New != nil && valuesEqual(r.Old, r.New) {
			continue // modified back to the original value: net nothing
		}
		// Rows may now be out of ts order per-tid vs other tids; re-sort.
		out.rows = append(out.rows, r)
	}
	sortRowsByTS(out.rows)
	return out
}

// TruncateBefore drops all rows with TS <= t. This is the garbage
// collection primitive of Section 5.4: t is the lower boundary of the
// system active delta zone (the oldest last-execution timestamp over all
// registered CQs).
func (d *Delta) TruncateBefore(t vclock.Timestamp) int {
	lo := 0
	for lo < len(d.rows) && d.rows[lo].TS <= t {
		lo++
	}
	if lo == 0 {
		return 0
	}
	n := copy(d.rows, d.rows[lo:])
	d.rows = d.rows[:n]
	return lo
}

// Clone deep-copies the delta.
func (d *Delta) Clone() *Delta {
	out := New(d.schema)
	out.rows = make([]Row, len(d.rows))
	for i, r := range d.rows {
		out.rows[i] = Row{TID: r.TID, TS: r.TS, Old: cloneValues(r.Old), New: cloneValues(r.New)}
	}
	return out
}

// Diff computes the differential relation that transforms relation a into
// relation b, comparing tuples by tid. All rows get timestamp ts. It is
// the paper's Diff operator (Section 4.2), the reference against which
// differential evaluation is proven equivalent.
func Diff(a, b *relation.Relation, ts vclock.Timestamp) (*Delta, error) {
	if !a.Schema().TypesEqual(b.Schema()) {
		return nil, fmt.Errorf("%w: %s vs %s", ErrSchemas, a.Schema(), b.Schema())
	}
	out := New(a.Schema())
	for _, t := range a.Tuples() {
		nt, ok := b.Lookup(t.TID)
		switch {
		case !ok:
			out.rows = append(out.rows, Row{TID: t.TID, Old: cloneValues(t.Values), TS: ts})
		case !valuesEqual(t.Values, nt.Values):
			out.rows = append(out.rows, Row{TID: t.TID, Old: cloneValues(t.Values), New: cloneValues(nt.Values), TS: ts})
		}
	}
	for _, t := range b.Tuples() {
		if !a.Has(t.TID) {
			out.rows = append(out.rows, Row{TID: t.TID, New: cloneValues(t.Values), TS: ts})
		}
	}
	sortRowsByTID(out.rows)
	return out, nil
}

// String renders the delta in the three-part layout of Example 1.
func (d *Delta) String() string {
	ins := d.Insertions()
	del := d.Deletions()
	return fmt.Sprintf("Δ%s  rows=%d\ninsertions:\n%s\ndeletions:\n%s",
		d.schema, len(d.rows), ins, del)
}

func cloneValues(vs []relation.Value) []relation.Value {
	if vs == nil {
		return nil
	}
	out := make([]relation.Value, len(vs))
	copy(out, vs)
	return out
}

func valuesEqual(a, b []relation.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

func sortRowsByTS(rows []Row) {
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].TS < rows[j].TS })
}

func sortRowsByTID(rows []Row) {
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].TID < rows[j].TID })
}
