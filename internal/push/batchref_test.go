package push

import (
	"testing"
	"time"

	"github.com/diorama/continual/internal/batch"
	"github.com/diorama/continual/internal/obs"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/storage"
	"github.com/diorama/continual/internal/vclock"
)

func refSchema(t *testing.T) relation.Schema {
	t.Helper()
	sc, err := relation.NewSchema(
		relation.Column{Name: "a", Type: relation.TInt},
	)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func oneRowBatch(t *testing.T, sc relation.Schema, v int64) *batch.Batch {
	t.Helper()
	b := batch.New(sc, 1)
	if !b.AppendRow(1, 1, []relation.Value{relation.Int(v)}) {
		t.Fatal("append")
	}
	return b
}

func batchEvent(ts vclock.Timestamp, table string, b *batch.Batch) storage.CommitEvent {
	return storage.CommitEvent{
		TS:      ts,
		At:      time.Now(),
		Changes: []storage.TableChange{{Table: table, Rows: 1, Batch: b}},
	}
}

// TestTakeBatchesReturnsRoutedRefsInOrder: accumulated commit images
// come back in commit order, cut at the caller's round timestamp, with
// later refs retained for the next take.
func TestTakeBatchesReturnsRoutedRefsInOrder(t *testing.T) {
	sc := refSchema(t)
	block := make(chan struct{})
	r := NewRouter(Config{Workers: 1}, func(string) (bool, bool, error) {
		<-block
		return true, false, nil
	})
	defer r.Close()
	defer close(block)
	r.Register("q", []string{"t"}, nil)

	b1, b2, b3 := oneRowBatch(t, sc, 1), oneRowBatch(t, sc, 2), oneRowBatch(t, sc, 3)
	r.Publish(batchEvent(1, "t", b1))
	r.Publish(batchEvent(2, "t", b2))
	r.Publish(batchEvent(3, "t", b3))

	got := r.TakeBatches("q", 2)
	refs := got["t"]
	if len(refs) != 2 || refs[0].Batch != b1 || refs[1].Batch != b2 {
		t.Fatalf("take(2) = %v, want [b1 b2]", refs)
	}
	if refs[0].TS != 1 || refs[1].TS != 2 {
		t.Fatalf("ts = %d,%d, want 1,2", refs[0].TS, refs[1].TS)
	}

	// The ref beyond the cut stays for the next take.
	got = r.TakeBatches("q", 10)
	if refs = got["t"]; len(refs) != 1 || refs[0].Batch != b3 {
		t.Fatalf("second take = %v, want [b3]", refs)
	}
	if got = r.TakeBatches("q", 10); got != nil {
		t.Fatalf("third take = %v, want nil", got)
	}
}

// TestNilBatchOpensGap: a commit without a usable image poisons the
// run — earlier refs are dropped and later ones are not accumulated, so
// the consumer can never assemble partial coverage.
func TestNilBatchOpensGap(t *testing.T) {
	sc := refSchema(t)
	reg := obs.NewRegistry()
	block := make(chan struct{})
	r := NewRouter(Config{Workers: 1, Metrics: reg}, func(string) (bool, bool, error) {
		<-block
		return true, false, nil
	})
	defer r.Close()
	defer close(block)
	r.Register("q", []string{"t"}, nil)

	r.Publish(batchEvent(1, "t", oneRowBatch(t, sc, 1)))
	r.Publish(batchEvent(2, "t", nil)) // unrepresentable commit
	r.Publish(batchEvent(3, "t", oneRowBatch(t, sc, 3)))

	if got := r.TakeBatches("q", 10); got != nil {
		t.Fatalf("gapped run must yield nothing, got %v", got)
	}
	// The take resets the gap: new commits accumulate again.
	b4 := oneRowBatch(t, sc, 4)
	r.Publish(batchEvent(4, "t", b4))
	got := r.TakeBatches("q", 10)
	if refs := got["t"]; len(refs) != 1 || refs[0].Batch != b4 {
		t.Fatalf("post-gap take = %v, want [b4]", got)
	}
	snap := reg.Snapshot()
	if snap.Counter("push.batch_gaps") != 1 {
		t.Fatalf("batch_gaps = %d, want 1", snap.Counter("push.batch_gaps"))
	}
	if snap.Counter("push.batch_refs") != 2 {
		t.Fatalf("batch_refs = %d, want 2 (b1 and b4; b3 skipped in gap)", snap.Counter("push.batch_refs"))
	}
}

// TestRefCapOpensGap: past maxRefsPerTable the run is dropped whole —
// bounded memory beats partial coverage.
func TestRefCapOpensGap(t *testing.T) {
	sc := refSchema(t)
	block := make(chan struct{})
	r := NewRouter(Config{Workers: 1}, func(string) (bool, bool, error) {
		<-block
		return true, false, nil
	})
	defer r.Close()
	defer close(block)
	r.Register("q", []string{"t"}, nil)

	for i := 0; i <= maxRefsPerTable; i++ {
		r.Publish(batchEvent(vclock.Timestamp(i+1), "t", oneRowBatch(t, sc, int64(i))))
	}
	if got := r.TakeBatches("q", vclock.Timestamp(maxRefsPerTable+2)); got != nil {
		t.Fatalf("over-cap run must be dropped, got %d tables", len(got))
	}
}

// TestShedDropsAccumulatedRefs: an overload-shed commit is invisible to
// the queue AND to the ref runs of every entry it touched.
func TestShedDropsAccumulatedRefs(t *testing.T) {
	sc := refSchema(t)
	block := make(chan struct{})
	r := NewRouter(Config{Workers: 1}, func(string) (bool, bool, error) {
		<-block
		return true, false, nil
	})
	defer r.Close()
	defer close(block)
	r.Register("q", []string{"t"}, nil)

	r.Publish(batchEvent(1, "t", oneRowBatch(t, sc, 1)))
	shed := batchEvent(2, "t", oneRowBatch(t, sc, 2))
	shed.Overload = storage.OverloadSoft
	r.Publish(shed)

	if got := r.TakeBatches("q", 10); got != nil {
		t.Fatalf("shed must gap the run, got %v", got)
	}
}

// TestSharedRefAcrossEntries: two CQs on the same table hold the very
// same commit image — routing is by reference, never by copy.
func TestSharedRefAcrossEntries(t *testing.T) {
	sc := refSchema(t)
	block := make(chan struct{})
	r := NewRouter(Config{Workers: 1}, func(string) (bool, bool, error) {
		<-block
		return true, false, nil
	})
	defer r.Close()
	defer close(block)
	r.Register("q1", []string{"t"}, nil)
	r.Register("q2", []string{"t"}, nil)

	b := oneRowBatch(t, sc, 7)
	r.Publish(batchEvent(1, "t", b))
	r1 := r.TakeBatches("q1", 1)
	r2 := r.TakeBatches("q2", 1)
	if r1["t"][0].Batch != b || r2["t"][0].Batch != b {
		t.Fatal("both entries must reference the commit's own batch")
	}
}
