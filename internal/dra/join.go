package dra

import (
	"fmt"

	"github.com/diorama/continual/internal/algebra"
	"github.com/diorama/continual/internal/delta"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/sql"
)

// maxChangedOperands caps the truth-table width; beyond it (4096 terms)
// complete re-evaluation is cheaper and Reevaluate falls back to
// Propagate.
const maxChangedOperands = 12

// operand is one leaf of the flattened join expression: a maximal
// join-free subtree (Scan, possibly under Selects from predicate
// pushdown).
type operand struct {
	plan   algebra.Plan
	lo, hi int // column range in the flattened output schema
}

// flatten decomposes a plan subtree into join operands and the list of
// cross-operand predicate conjuncts collected from Join ON clauses.
// Operand column ranges follow the left-deep concatenation order, so the
// flattened output schema equals the subtree's schema.
func flatten(p algebra.Plan) ([]*operand, []sql.Expr, error) {
	var ops []*operand
	var preds []sql.Expr
	var walk func(algebra.Plan) error
	col := 0
	walk = func(p algebra.Plan) error {
		if j, ok := p.(*algebra.JoinPlan); ok {
			if err := walk(j.Left); err != nil {
				return err
			}
			if err := walk(j.Right); err != nil {
				return err
			}
			if j.On != nil {
				preds = append(preds, algebra.SplitConjuncts(j.On)...)
			}
			return nil
		}
		width := p.Schema().Len()
		ops = append(ops, &operand{plan: p, lo: col, hi: col + width})
		col += width
		return nil
	}
	if err := walk(p); err != nil {
		return nil, nil, err
	}
	return ops, preds, nil
}

// operandDelta computes the signed delta of a join-free operand subtree.
func (e *Engine) operandDelta(op *operand, ctx *Context, st *Stats) (*delta.Signed, error) {
	return e.signedDelta(op.plan, ctx, st)
}

// operandPre materializes the operand's pre-state (its subtree executed
// against the last-execution snapshot), as a +1 signed relation.
func (e *Engine) operandPre(op *operand, ctx *Context, st *Stats) (*delta.Signed, error) {
	ex := algebra.NewExecutor(ctx.Pre)
	ex.UseHashJoin = e.UseHashJoin
	rel, err := ex.Execute(op.plan)
	if err != nil {
		return nil, fmt.Errorf("dra: operand pre-state: %w", err)
	}
	st.PreTuplesScanned += rel.Len()
	out := &delta.Signed{Schema: rel.Schema(), Rows: make([]delta.SignedRow, 0, rel.Len())}
	for _, t := range rel.Tuples() {
		out.Rows = append(out.Rows, delta.SignedRow{TID: t.TID, Values: t.Values, Sign: +1})
	}
	return out, nil
}

// joinDelta computes the signed delta of a join subtree by truth-table
// expansion (Algorithm 1, steps 1-3).
func (e *Engine) joinDelta(n *algebra.JoinPlan, ctx *Context, st *Stats) (*delta.Signed, error) {
	ops, preds, err := flatten(n)
	if err != nil {
		return nil, err
	}
	outSchema := n.Schema()

	deltas := make([]*delta.Signed, len(ops))
	var changed []int
	for i, op := range ops {
		d, err := e.operandDelta(op, ctx, st)
		if err != nil {
			return nil, err
		}
		deltas[i] = d
		if d.Len() > 0 {
			changed = append(changed, i)
		}
	}
	if len(changed) == 0 {
		return &delta.Signed{Schema: outSchema}, nil
	}
	if len(changed) > maxChangedOperands {
		return PropagateSigned(n, ctx.Pre, ctx.Post)
	}

	// Lazily materialized pre-states for unsubstituted operands.
	pres := make([]*delta.Signed, len(ops))
	preOf := func(i int) (*delta.Signed, error) {
		if pres[i] == nil {
			p, err := e.operandPre(ops[i], ctx, st)
			if err != nil {
				return nil, err
			}
			pres[i] = p
		}
		return pres[i], nil
	}

	compiledPreds, predMasks, err := compilePreds(preds, outSchema, ops)
	if err != nil {
		return nil, err
	}

	out := &delta.Signed{Schema: outSchema}
	k := len(changed)
	for mask := 1; mask < 1<<k; mask++ {
		term := make([]*delta.Signed, len(ops))
		isDelta := make([]bool, len(ops))
		empty := false
		for i := range ops {
			substituted := false
			for b, ci := range changed {
				if ci == i && mask&(1<<b) != 0 {
					substituted = true
					break
				}
			}
			if substituted {
				term[i] = deltas[i]
				isDelta[i] = true
			} else {
				p, err := preOf(i)
				if err != nil {
					return nil, err
				}
				term[i] = p
			}
			if term[i].Len() == 0 {
				empty = true
				break
			}
		}
		if empty {
			continue
		}
		st.Terms++
		rows, err := e.evalTerm(ops, term, isDelta, preds, compiledPreds, predMasks, outSchema)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, rows...)
	}
	return out, nil
}

// compilePreds compiles each cross-operand conjunct against the flattened
// schema and computes the bitmask of operands each references.
func compilePreds(preds []sql.Expr, outSchema relation.Schema, ops []*operand) ([]algebra.CompiledExpr, []uint64, error) {
	compiled := make([]algebra.CompiledExpr, len(preds))
	masks := make([]uint64, len(preds))
	for i, p := range preds {
		ce, err := algebra.Compile(p, outSchema)
		if err != nil {
			return nil, nil, fmt.Errorf("dra: join predicate: %w", err)
		}
		compiled[i] = ce
		for _, col := range algebra.ColumnsOf(p) {
			idx, ok := outSchema.ColIndex(col)
			if !ok {
				return nil, nil, fmt.Errorf("dra: join predicate column %q not in schema", col)
			}
			for oi, op := range ops {
				if idx >= op.lo && idx < op.hi {
					masks[i] |= 1 << uint(oi)
					break
				}
			}
		}
	}
	return compiled, masks, nil
}

// partial is an in-progress joined row during term evaluation.
type partial struct {
	vals []relation.Value // full output width; unfilled ranges are zero
	sign int
	tids []relation.TID // per-operand provenance
}

// evalTerm joins the term's operand relations, multiplying signs and
// applying predicates as soon as all referenced operands are joined.
func (e *Engine) evalTerm(
	ops []*operand,
	term []*delta.Signed,
	isDelta []bool,
	preds []sql.Expr,
	compiledPreds []algebra.CompiledExpr,
	predMasks []uint64,
	outSchema relation.Schema,
) ([]delta.SignedRow, error) {
	order := e.termOrder(ops, term, isDelta, preds, outSchema)
	width := outSchema.Len()

	applied := make([]bool, len(preds))
	var filled uint64

	// Seed with the first operand.
	first := order[0]
	cur := make([]*partial, 0, term[first].Len())
	for _, r := range term[first].Rows {
		vals := make([]relation.Value, width)
		copy(vals[ops[first].lo:ops[first].hi], r.Values)
		tids := make([]relation.TID, len(ops))
		tids[first] = r.TID
		cur = append(cur, &partial{vals: vals, sign: r.Sign, tids: tids})
	}
	filled |= 1 << uint(first)
	var err error
	if cur, err = e.applyReady(cur, filled, applied, compiledPreds, predMasks); err != nil {
		return nil, err
	}

	for _, k := range order[1:] {
		if len(cur) == 0 {
			return nil, nil
		}
		lk, rk := e.equiPairs(preds, applied, predMasks, filled, k, ops, outSchema)
		var next []*partial
		if e.UseHashJoin && len(lk) > 0 {
			next, err = e.hashStep(cur, term[k], ops[k], k, lk, rk)
		} else {
			next, err = e.loopStep(cur, term[k], ops[k], k)
		}
		if err != nil {
			return nil, err
		}
		// Mark equi predicates used by the hash step as applied.
		if e.UseHashJoin && len(lk) > 0 {
			markEquiApplied(preds, applied, predMasks, filled, k, ops, outSchema)
		}
		filled |= 1 << uint(k)
		cur = next
		if cur, err = e.applyReady(cur, filled, applied, compiledPreds, predMasks); err != nil {
			return nil, err
		}
	}

	// Any predicate not yet applied (defensive) runs now.
	for i := range preds {
		if !applied[i] {
			if cur, err = e.applyOne(cur, compiledPreds[i]); err != nil {
				return nil, err
			}
			applied[i] = true
		}
	}

	rows := make([]delta.SignedRow, 0, len(cur))
	for _, p := range cur {
		tid := p.tids[0]
		for i := 1; i < len(p.tids); i++ {
			tid = relation.CombineTIDs(tid, p.tids[i])
		}
		rows = append(rows, delta.SignedRow{TID: tid, Values: p.vals, Sign: p.sign})
	}
	return rows, nil
}

// termOrder picks the operand join order: with heuristics, the smallest
// delta operand first, then greedily the operand connected by an equi
// predicate with the smallest relation; without, left-to-right.
func (e *Engine) termOrder(ops []*operand, term []*delta.Signed, isDelta []bool, preds []sql.Expr, outSchema relation.Schema) []int {
	n := len(ops)
	order := make([]int, 0, n)
	if !e.UseHeuristics {
		for i := 0; i < n; i++ {
			order = append(order, i)
		}
		return order
	}
	used := make([]bool, n)
	// Start with the smallest delta operand (there is at least one in
	// every term).
	best := -1
	for i := 0; i < n; i++ {
		if isDelta[i] && (best == -1 || term[i].Len() < term[best].Len()) {
			best = i
		}
	}
	if best == -1 {
		best = 0
	}
	order = append(order, best)
	used[best] = true
	var filled uint64 = 1 << uint(best)

	connected := func(k int) bool {
		kbit := uint64(1) << uint(k)
		for pi := range preds {
			m := predMask(preds[pi], ops, outSchema)
			if m&kbit != 0 && m&filled != 0 && m&^(filled|kbit) == 0 {
				if isEquiConjunct(preds[pi]) {
					return true
				}
			}
		}
		return false
	}
	for len(order) < n {
		next := -1
		for k := 0; k < n; k++ {
			if used[k] {
				continue
			}
			if next == -1 {
				next = k
				continue
			}
			nc, kc := connected(next), connected(k)
			switch {
			case kc && !nc:
				next = k
			case kc == nc && term[k].Len() < term[next].Len():
				next = k
			}
		}
		order = append(order, next)
		used[next] = true
		filled |= 1 << uint(next)
	}
	return order
}

func predMask(p sql.Expr, ops []*operand, outSchema relation.Schema) uint64 {
	var m uint64
	for _, col := range algebra.ColumnsOf(p) {
		idx, ok := outSchema.ColIndex(col)
		if !ok {
			continue
		}
		for oi, op := range ops {
			if idx >= op.lo && idx < op.hi {
				m |= 1 << uint(oi)
				break
			}
		}
	}
	return m
}

func isEquiConjunct(p sql.Expr) bool {
	be, ok := p.(*sql.BinaryExpr)
	if !ok || be.Op != "=" {
		return false
	}
	_, l := be.L.(*sql.ColumnRef)
	_, r := be.R.(*sql.ColumnRef)
	return l && r
}

// equiPairs finds unapplied equi conjuncts linking the filled operands to
// operand k, returning (full-width column index on the filled side,
// local column index within k).
func (e *Engine) equiPairs(preds []sql.Expr, applied []bool, predMasks []uint64, filled uint64, k int, ops []*operand, outSchema relation.Schema) (probeCols []int, buildCols []int) {
	kbit := uint64(1) << uint(k)
	for i, p := range preds {
		if applied[i] || !isEquiConjunct(p) {
			continue
		}
		if predMasks[i]&kbit == 0 || predMasks[i]&filled == 0 || predMasks[i]&^(filled|kbit) != 0 {
			continue
		}
		be := p.(*sql.BinaryExpr)
		li, _ := outSchema.ColIndex(be.L.(*sql.ColumnRef).Name)
		ri, _ := outSchema.ColIndex(be.R.(*sql.ColumnRef).Name)
		inK := func(c int) bool { return c >= ops[k].lo && c < ops[k].hi }
		switch {
		case inK(li) && !inK(ri):
			probeCols = append(probeCols, ri)
			buildCols = append(buildCols, li-ops[k].lo)
		case inK(ri) && !inK(li):
			probeCols = append(probeCols, li)
			buildCols = append(buildCols, ri-ops[k].lo)
		}
	}
	return probeCols, buildCols
}

// markEquiApplied marks the equi conjuncts consumed by a hash step.
func markEquiApplied(preds []sql.Expr, applied []bool, predMasks []uint64, filled uint64, k int, ops []*operand, outSchema relation.Schema) {
	kbit := uint64(1) << uint(k)
	for i, p := range preds {
		if applied[i] || !isEquiConjunct(p) {
			continue
		}
		if predMasks[i]&kbit == 0 || predMasks[i]&filled == 0 || predMasks[i]&^(filled|kbit) != 0 {
			continue
		}
		be := p.(*sql.BinaryExpr)
		li, _ := outSchema.ColIndex(be.L.(*sql.ColumnRef).Name)
		ri, _ := outSchema.ColIndex(be.R.(*sql.ColumnRef).Name)
		inK := func(c int) bool { return c >= ops[k].lo && c < ops[k].hi }
		if inK(li) != inK(ri) {
			applied[i] = true
		}
	}
}

// hashStep joins the current partials with operand k through a hash index
// on the equi-key columns.
func (e *Engine) hashStep(cur []*partial, rel *delta.Signed, op *operand, opIdx int, probeCols, buildCols []int) ([]*partial, error) {
	type bucket []delta.SignedRow
	idx := make(map[uint64]bucket, rel.Len())
	key := make([]relation.Value, len(buildCols))
	for _, r := range rel.Rows {
		for i, c := range buildCols {
			key[i] = r.Values[c]
		}
		h := relation.HashValues(key)
		idx[h] = append(idx[h], r)
	}
	var out []*partial
	probe := make([]relation.Value, len(probeCols))
	for _, p := range cur {
		for i, c := range probeCols {
			probe[i] = p.vals[c]
		}
		h := relation.HashValues(probe)
		for _, r := range idx[h] {
			// Verify against collisions.
			match := true
			for i, c := range buildCols {
				if !r.Values[c].Equal(probe[i]) {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			out = append(out, mergePartial(p, r, op, opIdx))
		}
	}
	return out, nil
}

// loopStep joins the current partials with operand k by nested loops;
// predicates are applied afterwards by applyReady.
func (e *Engine) loopStep(cur []*partial, rel *delta.Signed, op *operand, opIdx int) ([]*partial, error) {
	out := make([]*partial, 0, len(cur))
	for _, p := range cur {
		for _, r := range rel.Rows {
			out = append(out, mergePartial(p, r, op, opIdx))
		}
	}
	return out, nil
}

func mergePartial(p *partial, r delta.SignedRow, op *operand, opIdx int) *partial {
	vals := make([]relation.Value, len(p.vals))
	copy(vals, p.vals)
	copy(vals[op.lo:op.hi], r.Values)
	tids := make([]relation.TID, len(p.tids))
	copy(tids, p.tids)
	tids[opIdx] = r.TID
	return &partial{vals: vals, sign: p.sign * r.Sign, tids: tids}
}

// applyReady applies every unapplied predicate whose operands are all
// filled, filtering the partials.
func (e *Engine) applyReady(cur []*partial, filled uint64, applied []bool, compiled []algebra.CompiledExpr, masks []uint64) ([]*partial, error) {
	for i := range compiled {
		if applied[i] || masks[i]&^filled != 0 {
			continue
		}
		var err error
		cur, err = e.applyOne(cur, compiled[i])
		if err != nil {
			return nil, err
		}
		applied[i] = true
	}
	return cur, nil
}

func (e *Engine) applyOne(cur []*partial, pred algebra.CompiledExpr) ([]*partial, error) {
	out := cur[:0]
	for _, p := range cur {
		ok, err := algebra.EvalPredicate(pred, relation.Tuple{Values: p.vals})
		if err != nil {
			return nil, fmt.Errorf("dra: term predicate: %w", err)
		}
		if ok {
			out = append(out, p)
		}
	}
	return out, nil
}
