package continual

import (
	"io"
	"net/http"

	"github.com/diorama/continual/internal/obs"
)

// LatencyStat summarizes a latency histogram over its recent window.
// Values are nanoseconds; Count is the total number of observations
// (including those that have slid out of the window).
type LatencyStat struct {
	Count  int64 `json:"count"`
	MeanNS int64 `json:"mean_ns"`
	P50NS  int64 `json:"p50_ns"`
	P95NS  int64 `json:"p95_ns"`
	P99NS  int64 `json:"p99_ns"`
	MaxNS  int64 `json:"max_ns"`
}

// Stats is a point-in-time snapshot of the engine's metrics: counters
// and gauges from every subsystem (dra.*, cq.*, storage.*) plus latency
// summaries. Metric names are stable, dot-separated identifiers — e.g.
// dra.terms_evaluated, cq.refreshes, storage.delta_len.<table>.
type Stats struct {
	Counters  map[string]int64       `json:"counters"`
	Gauges    map[string]int64       `json:"gauges"`
	Latencies map[string]LatencyStat `json:"latencies"`
}

// Counter returns a counter by name (0 if absent).
func (s Stats) Counter(name string) int64 { return s.Counters[name] }

// Gauge returns a gauge by name (0 if absent).
func (s Stats) Gauge(name string) int64 { return s.Gauges[name] }

// Stats returns the engine's current metrics snapshot.
func (db *DB) Stats() Stats { return statsFromSnapshot(db.metrics.Snapshot()) }

// statsFromSnapshot converts an obs snapshot to the public Stats shape
// (shared by DB.Stats and Mirror.Stats).
func statsFromSnapshot(snap obs.Snapshot) Stats {
	out := Stats{
		Counters:  snap.Counters,
		Gauges:    snap.Gauges,
		Latencies: make(map[string]LatencyStat, len(snap.Histograms)),
	}
	for name, h := range snap.Histograms {
		out.Latencies[name] = LatencyStat{
			Count:  h.Count,
			MeanNS: int64(h.Mean()),
			P50NS:  h.P50NS,
			P95NS:  h.P95NS,
			P99NS:  h.P99NS,
			MaxNS:  h.MaxNS,
		}
	}
	return out
}

// WriteStats renders the current metrics snapshot as an aligned text
// table (the same view `cqctl stats` prints).
func (db *DB) WriteStats(w io.Writer) { db.metrics.Snapshot().WriteTable(w) }

// StatsHandler returns an HTTP handler serving the engine's metrics and
// health: GET /stats returns the snapshot as JSON, GET /debug/traces the
// recent refresh spans, and GET /healthz the HealthStatus (200 when
// ready, 503 when overloaded). cmd/cqd mounts the same routes when
// -http is set.
func (db *DB) StatsHandler() http.Handler {
	return obs.MuxHealth(db.metrics, func() (bool, any) {
		h := db.Health()
		return h.Ready, h
	})
}
