package storage

import (
	"errors"
	"reflect"
	"testing"

	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/vclock"
	"github.com/diorama/continual/internal/wal"
)

// recSink records everything a store logs; fail makes the next call error.
type recSink struct {
	creates []string
	drops   []string
	txs     [][]wal.TxRow
	tss     []vclock.Timestamp
	fail    error
}

func (r *recSink) AppendTx(ts vclock.Timestamp, rows []wal.TxRow) error {
	if r.fail != nil {
		return r.fail
	}
	r.tss = append(r.tss, ts)
	r.txs = append(r.txs, rows)
	return nil
}

func (r *recSink) AppendCreateTable(name string, _ relation.Schema) error {
	if r.fail != nil {
		return r.fail
	}
	r.creates = append(r.creates, name)
	return nil
}

func (r *recSink) AppendDropTable(name string) error {
	if r.fail != nil {
		return r.fail
	}
	r.drops = append(r.drops, name)
	return nil
}

func TestWALSinkSeesCommitsWriteAhead(t *testing.T) {
	s := NewStore()
	sink := &recSink{}
	s.SetWALSink(sink)
	if err := s.CreateTable("stocks", stockSchema()); err != nil {
		t.Fatal(err)
	}
	tx := s.Begin()
	tid, err := tx.Insert("stocks", []relation.Value{relation.Str("DEC"), relation.Int(100)})
	if err != nil {
		t.Fatal(err)
	}
	// Insert+delete in the same tx voids; the voided op must not be logged.
	tid2, _ := tx.Insert("stocks", []relation.Value{relation.Str("GONE"), relation.Int(1)})
	if err := tx.Delete("stocks", tid2); err != nil {
		t.Fatal(err)
	}
	ts := mustCommit(t, tx)

	if !reflect.DeepEqual(sink.creates, []string{"stocks"}) {
		t.Fatalf("creates: %v", sink.creates)
	}
	if len(sink.txs) != 1 || len(sink.txs[0]) != 1 || sink.tss[0] != ts {
		t.Fatalf("logged txs: %+v at %v", sink.txs, sink.tss)
	}
	row := sink.txs[0][0]
	if row.Table != "stocks" || row.Row.TID != tid || row.Row.TS != ts || row.Row.Old != nil {
		t.Fatalf("logged row: %+v", row)
	}
	if err := s.DropTable("stocks"); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sink.drops, []string{"stocks"}) {
		t.Fatalf("drops: %v", sink.drops)
	}
}

func TestSinkFailureFailsCommitUntouched(t *testing.T) {
	s := NewStore()
	sink := &recSink{}
	s.SetWALSink(sink)
	if err := s.CreateTable("stocks", stockSchema()); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk gone")
	sink.fail = boom
	tx := s.Begin()
	if _, err := tx.Insert("stocks", []relation.Value{relation.Str("DEC"), relation.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); !errors.Is(err, boom) {
		t.Fatalf("commit: %v, want the sink error", err)
	}
	rel, err := s.Snapshot("stocks")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 0 {
		t.Fatal("commit applied despite sink failure")
	}
	if got := s.ChangeCount("stocks"); got != 0 {
		t.Fatalf("change count bumped to %d despite failed commit", got)
	}
	if n, _ := s.DeltaLen("stocks"); n != 0 {
		t.Fatal("delta appended despite sink failure")
	}
}

// buildStore commits a small history: 3 txs on "stocks", 1 on "orders",
// then garbage-collects up to the second commit.
func buildStore(t *testing.T) (*Store, map[string]uint64) {
	t.Helper()
	s := NewStore()
	if err := s.CreateTable("stocks", stockSchema()); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTable("orders", stockSchema()); err != nil {
		t.Fatal(err)
	}
	var tids []relation.TID
	var second vclock.Timestamp
	for i := 0; i < 3; i++ {
		tx := s.Begin()
		tid, err := tx.Insert("stocks", []relation.Value{relation.Str("S"), relation.Int(int64(i))})
		if err != nil {
			t.Fatal(err)
		}
		tids = append(tids, tid)
		if i == 2 {
			if err := tx.Update("stocks", tids[0], []relation.Value{relation.Str("S"), relation.Int(99)}); err != nil {
				t.Fatal(err)
			}
		}
		ts := mustCommit(t, tx)
		if i == 1 {
			second = ts
		}
	}
	tx := s.Begin()
	if _, err := tx.Insert("orders", []relation.Value{relation.Str("O"), relation.Int(7)}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	s.CollectGarbage(second)
	return s, s.ChangeCounts()
}

// TestChangeCountsSurviveCheckpointRestore is the satellite guarantee:
// the per-table change counters — which the dra prepared-plan operand
// caches revalidate by — survive a checkpoint/restore cycle EXACTLY,
// and CollectGarbage neither bumps nor resets them.
func TestChangeCountsSurviveCheckpointRestore(t *testing.T) {
	s, counts := buildStore(t)
	if want := map[string]uint64{"stocks": 3, "orders": 1}; !reflect.DeepEqual(counts, want) {
		t.Fatalf("pre-checkpoint counts: %v, want %v", counts, want)
	}
	// GC must not disturb counters (it does not change base contents).
	s.CollectGarbage(s.Now())
	if got := s.ChangeCounts(); !reflect.DeepEqual(got, counts) {
		t.Fatalf("counts changed by GC: %v vs %v", got, counts)
	}

	cutRan := false
	st, err := s.CheckpointState(func() error { cutRan = true; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if !cutRan {
		t.Fatal("cut not invoked")
	}

	r := NewStore()
	if err := r.Restore(st); err != nil {
		t.Fatal(err)
	}
	if got := r.ChangeCounts(); !reflect.DeepEqual(got, counts) {
		t.Fatalf("counts after restore: %v, want %v", got, counts)
	}
	// Low-water marks, clock, contents and delta windows survive too.
	if r.Now() != s.Now() {
		t.Fatalf("clock: %d vs %d", r.Now(), s.Now())
	}
	for _, name := range []string{"stocks", "orders"} {
		ot, _ := s.Table(name)
		rt, _ := r.Table(name)
		if ot.LowWater() != rt.LowWater() {
			t.Fatalf("%s low water: %d vs %d", name, ot.LowWater(), rt.LowWater())
		}
		if ot.DeltaLen() != rt.DeltaLen() {
			t.Fatalf("%s delta len: %d vs %d", name, ot.DeltaLen(), rt.DeltaLen())
		}
		os, _ := s.Snapshot(name)
		rs, _ := r.Snapshot(name)
		if !os.EqualContents(rs) {
			t.Fatalf("%s contents differ after restore", name)
		}
	}
	// A snapshot below the restored low water must still refuse.
	lw, _ := r.Table("stocks")
	if lw.LowWater() == 0 {
		t.Fatal("test expects a nonzero low water")
	}
	if _, err := r.SnapshotAt("stocks", lw.LowWater()-1); !errors.Is(err, ErrStaleWindow) {
		t.Fatalf("stale snapshot: %v, want ErrStaleWindow", err)
	}
}

func TestRestoreRefusesNonEmptyStore(t *testing.T) {
	s, _ := buildStore(t)
	st, err := s.CheckpointState(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Restore(st); err == nil {
		t.Fatal("restore into non-empty store must fail")
	}
}

// TestApplyReplayMatchesCommit replays the WAL records captured from a
// live store into a fresh one and requires identical state: contents,
// change counters, clock, and a working tid allocator.
func TestApplyReplayMatchesCommit(t *testing.T) {
	s := NewStore()
	sink := &recSink{}
	s.SetWALSink(sink)
	if err := s.CreateTable("stocks", stockSchema()); err != nil {
		t.Fatal(err)
	}
	tx := s.Begin()
	tid, _ := tx.Insert("stocks", []relation.Value{relation.Str("A"), relation.Int(1)})
	mustCommit(t, tx)
	tx = s.Begin()
	if err := tx.Update("stocks", tid, []relation.Value{relation.Str("A"), relation.Int(2)}); err != nil {
		t.Fatal(err)
	}
	tid2, _ := tx.Insert("stocks", []relation.Value{relation.Str("B"), relation.Int(3)})
	mustCommit(t, tx)
	tx = s.Begin()
	if err := tx.Delete("stocks", tid2); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)

	r := NewStore()
	for _, name := range sink.creates {
		if err := r.CreateTable(name, stockSchema()); err != nil {
			t.Fatal(err)
		}
	}
	for i, rows := range sink.txs {
		if err := r.ApplyReplay(sink.tss[i], rows); err != nil {
			t.Fatalf("replay %d: %v", i, err)
		}
	}
	os, _ := s.Snapshot("stocks")
	rs, _ := r.Snapshot("stocks")
	if !os.EqualContents(rs) {
		t.Fatal("replayed contents differ")
	}
	if !reflect.DeepEqual(r.ChangeCounts(), s.ChangeCounts()) {
		t.Fatalf("replayed counts: %v vs %v", r.ChangeCounts(), s.ChangeCounts())
	}
	if r.Now() != s.Now() {
		t.Fatalf("replayed clock: %d vs %d", r.Now(), s.Now())
	}
	// The allocator must be past every replayed tid.
	if got := r.NewTID(); got <= tid2 {
		t.Fatalf("tid allocator not advanced: %d <= %d", got, tid2)
	}
	// Replay against a missing table is corruption, not tolerated.
	bad := NewStore()
	if err := bad.ApplyReplay(99, sink.txs[0]); err == nil {
		t.Fatal("replay into missing table must fail")
	}
}
