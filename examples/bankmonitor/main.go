// Bankmonitor reproduces the checking-account example of Sections 3.2
// and 5.3: "a bank manager wants to know how many millions of dollars she
// has in all the checking accounts", installed as a continual query with
// the epsilon specification |Deposits − Withdrawals| >= 0.5M.
//
// The trigger is evaluated differentially: only the differential relation
// of the accounts table is scanned between refreshes, never the table
// itself, exactly as the paper rewrites Tcq into sums over
// insertions(ΔCheckingAccounts) and deletions(ΔCheckingAccounts).
package main

import (
	"fmt"
	"log"
	"math/rand"

	continual "github.com/diorama/continual"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	db := continual.Open()
	defer func() { _ = db.Close() }()

	if err := db.Exec(`CREATE TABLE CheckingAccounts (owner STRING, amount FLOAT)`); err != nil {
		return err
	}

	sub, err := db.RegisterSQL(`CREATE CONTINUAL QUERY banksum AS
		SELECT SUM(amount) AS total FROM CheckingAccounts
		TRIGGER EPSILON 500000 ON amount
		MODE COMPLETE`)
	if err != nil {
		return err
	}
	fmt.Println("installed banksum: refresh when |deposits - withdrawals| >= $0.5M")

	rng := rand.New(rand.NewSource(7))
	nextAcct := 0
	deposits, withdrawals, refreshes := 0, 0, 0
	var open []string

	for day := 1; day <= 30; day++ {
		// A day of branch activity.
		for i := 0; i < 25; i++ {
			if rng.Float64() < 0.6 || len(open) == 0 {
				nextAcct++
				owner := fmt.Sprintf("acct%04d", nextAcct)
				amount := 1_000 + rng.Float64()*99_000
				if err := db.Exec(fmt.Sprintf(
					`INSERT INTO CheckingAccounts VALUES ('%s', %.2f)`, owner, amount)); err != nil {
					return err
				}
				open = append(open, owner)
				deposits++
			} else {
				k := rng.Intn(len(open))
				owner := open[k]
				open = append(open[:k], open[k+1:]...)
				if err := db.Exec(fmt.Sprintf(
					`DELETE FROM CheckingAccounts WHERE owner = '%s'`, owner)); err != nil {
					return err
				}
				withdrawals++
			}
		}
		// The CQ manager's nightly check (Section 5.3: "say every day at
		// midnight").
		db.Poll()
		select {
		case c := <-sub.Updates():
			refreshes++
			fmt.Printf("day %2d: epsilon fired -> total now $%.2f\n", day, c.Complete[0][0])
		default:
			fmt.Printf("day %2d: accumulated change below $0.5M, no refresh\n", day)
		}
	}

	fmt.Printf("\n%d deposits, %d withdrawals, %d refreshes (vs 30 under nightly full re-evaluation)\n",
		deposits, withdrawals, refreshes)
	return nil
}
