package continual

import (
	"testing"
	"time"
)

// TestMirrorSurvivesServerRestart is the end-to-end fault-tolerance
// scenario at the public API: the serving endpoint dies under a live
// mirror, the mirror degrades to serving its last result, and once the
// engine listens again the mirror catches up differentially — windows
// from lastTS only, never a second snapshot — with the recovery visible
// in both DB.Stats (server side) and Mirror.Stats (client side).
func TestMirrorSurvivesServerRestart(t *testing.T) {
	db := openStocks(t)
	ln, err := db.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr()

	mirror, err := DialMirrorOpts(addr, `SELECT * FROM stocks WHERE price > 120`, MirrorOptions{
		RequestTimeout: 2 * time.Second,
		MaxAttempts:    3,
		BackoffBase:    time.Millisecond,
		BackoffMax:     10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mirror.Close() }()
	if mirror.Result().Len() != 2 { // DEC, QLI
		t.Fatalf("initial mirror = %d", mirror.Result().Len())
	}

	// Normal refresh while healthy.
	if err := db.Exec(`INSERT INTO stocks VALUES ('MAC', 130)`); err != nil {
		t.Fatal(err)
	}
	if _, err := mirror.Refresh(); err != nil {
		t.Fatal(err)
	}

	// The server goes down with updates still arriving.
	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(`INSERT INTO stocks VALUES ('SUN', 180)`); err != nil {
		t.Fatal(err)
	}
	if _, err := mirror.Refresh(); err == nil {
		t.Fatal("refresh against a dead server should fail")
	}
	if !mirror.Stale() || mirror.LastErr() == nil {
		t.Error("mirror should be stale with a recorded error during the outage")
	}
	if mirror.Result().Len() != 3 { // serving the last good result
		t.Errorf("stale result = %d rows, want 3", mirror.Result().Len())
	}

	// The engine comes back on the same address (same store, same
	// logical clock), and the mirror recovers differentially.
	ln2, err := db.ListenAndServe(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ln2.Close() }()
	change, err := mirror.Refresh()
	if err != nil {
		t.Fatalf("refresh after restart: %v", err)
	}
	if len(change.Inserted) != 1 {
		t.Errorf("catch-up change = %+v, want the SUN insert", change)
	}
	if mirror.Stale() {
		t.Error("recovered mirror still stale")
	}
	if mirror.Result().Len() != 4 {
		t.Errorf("recovered result = %d rows, want 4", mirror.Result().Len())
	}

	// Server side (DB.Stats): both listener generations report into the
	// engine registry. Exactly one snapshot ever shipped — recovery was
	// differential — and the reconnect shows up as a second connection.
	st := db.Stats()
	if got := st.Counter("remote.snapshots_served"); got != 1 {
		t.Errorf("snapshots_served = %d, want 1 (no snapshot re-pull)", got)
	}
	if got := st.Counter("remote.conns_total"); got < 2 {
		t.Errorf("conns_total = %d, want >= 2", got)
	}
	if st.Counter("remote.windows_pulled") == 0 {
		t.Error("no delta windows counted server-side")
	}

	// Client side (Mirror.Stats): the retry/reconnect counters recorded
	// the recovery.
	ms := mirror.Stats()
	if ms.Counter("remote.client.reconnects") == 0 {
		t.Errorf("client reconnects not counted: %v", ms.Counters)
	}
	if ms.Counter("remote.client.retries") == 0 {
		t.Errorf("client retries not counted: %v", ms.Counters)
	}
	if ms.Counter("remote.client.broken_conns") == 0 {
		t.Errorf("client broken conns not counted: %v", ms.Counters)
	}
}
