// Package storage implements the in-memory multi-table store that plays
// the role of an information source in the reproduction. Transactions
// (Begin/Insert/Update/Delete/Commit) mutate base relations and, on
// commit, append the net change of the transaction to the table's
// differential relation, timestamped with the store's logical clock —
// exactly the capture discipline of Example 1 in the paper.
//
// The store keeps, per table, the current contents plus the accumulated
// differential relation. Any earlier state within the retained delta
// window can be reconstructed with SnapshotAt, which is how DRA obtains
// "the contents of each base relation after the last execution of the CQ"
// (input (ii) of Algorithm 1) without the store having to keep explicit
// snapshots.
package storage

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/diorama/continual/internal/batch"
	"github.com/diorama/continual/internal/delta"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/vclock"
	"github.com/diorama/continual/internal/wal"
)

// Errors returned by the store.
var (
	ErrNoSuchTable   = errors.New("storage: no such table")
	ErrTableExists   = errors.New("storage: table already exists")
	ErrTxDone        = errors.New("storage: transaction already finished")
	ErrNoSuchTuple   = errors.New("storage: no such tuple")
	ErrStaleWindow   = errors.New("storage: requested snapshot is older than the retained delta window")
	ErrWriteConflict = errors.New("storage: write-write conflict")
)

// Table is one base relation plus its differential relation.
type Table struct {
	store *Store // owning store; guards rel/dlt/lowWater with its mutex
	name  string
	rel   *relation.Relation
	dlt   *delta.Delta
	// lowWater is the timestamp up to (and including) which delta rows
	// have been garbage collected; SnapshotAt below it is impossible.
	lowWater vclock.Timestamp
	// version counts committed transactions that touched this table. It
	// never resets (GC does not change base contents), so an unchanged
	// version proves the base relation — at any timestamp — is identical
	// to what it was when the version was last read. Prepared-plan
	// operand index caches key their validity off it.
	version uint64
}

// Version returns the table's change counter: the number of committed
// transactions that have touched it since creation.
func (t *Table) Version() uint64 {
	t.store.mu.RLock()
	defer t.store.mu.RUnlock()
	return t.version
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() relation.Schema { return t.rel.Schema() }

// DeltaLen returns the number of retained differential-relation rows —
// the quantity the paper's space argument (Section 5.4) is about, and
// the direct measure of GC effectiveness.
func (t *Table) DeltaLen() int {
	t.store.mu.RLock()
	defer t.store.mu.RUnlock()
	return t.dlt.Len()
}

// LowWater returns the timestamp up to (and including) which delta rows
// have been garbage collected. Snapshot reconstruction below it returns
// ErrStaleWindow.
func (t *Table) LowWater() vclock.Timestamp {
	t.store.mu.RLock()
	defer t.store.mu.RUnlock()
	return t.lowWater
}

// Store is a named collection of tables sharing one logical clock.
// All exported methods are safe for concurrent use.
type Store struct {
	mu     sync.RWMutex
	clock  *vclock.Clock
	tables map[string]*Table
	nextID relation.TID
	// met is nil on uninstrumented stores; set once by Instrument before
	// the store is shared, so hot paths read it without synchronization
	// concerns beyond the store mutex they already hold.
	met *metrics
	// sink, when set, receives every committed change in write-ahead
	// order (see SetWALSink in durable.go). Nil on in-memory stores.
	sink WALSink
	// hook, when set, receives every committed transaction under the
	// store mutex, after the commit applies (see SetCommitHook in
	// commithook.go). Nil unless push-based refresh is enabled.
	hook CommitHook

	// Degraded-mode state (see watermark.go): the configured
	// watermarks, the current overload level, the running retained
	// delta volume they are evaluated against, and the transition
	// observer.
	wm         Watermarks
	overload   OverloadLevel
	deltaRows  int
	deltaBytes int64
	pressure   PressureHook
}

// NewStore creates an empty store with a fresh logical clock.
func NewStore() *Store {
	return &Store{
		clock:  vclock.New(),
		tables: make(map[string]*Table),
		nextID: 1,
	}
}

// Clock exposes the store's logical clock (read-only use intended).
func (s *Store) Clock() *vclock.Clock { return s.clock }

// Now returns the current logical time.
func (s *Store) Now() vclock.Timestamp { return s.clock.Now() }

// CreateTable registers a new empty table.
func (s *Store) CreateTable(name string, schema relation.Schema) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.tables[name]; dup {
		return fmt.Errorf("%w: %q", ErrTableExists, name)
	}
	if s.sink != nil {
		if err := s.sink.AppendCreateTable(name, schema); err != nil {
			return fmt.Errorf("storage: log create table %q: %w", name, err)
		}
	}
	s.tables[name] = &Table{
		store: s,
		name:  name,
		rel:   relation.New(schema),
		dlt:   delta.New(schema),
	}
	if m := s.met; m != nil {
		m.tables.Set(int64(len(s.tables)))
		m.tableGauge(name).Set(0)
	}
	return nil
}

// DropTable removes a table.
func (s *Store) DropTable(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchTable, name)
	}
	if s.sink != nil {
		if err := s.sink.AppendDropTable(name); err != nil {
			return fmt.Errorf("storage: log drop table %q: %w", name, err)
		}
	}
	delete(s.tables, name)
	var freedBytes int64
	for _, r := range t.dlt.Rows() {
		freedBytes += approxRowBytes(r)
	}
	s.noteDeltaDropLocked(t.dlt.Len(), freedBytes)
	s.recomputeOverloadLocked()
	if m := s.met; m != nil {
		m.tables.Set(int64(len(s.tables)))
		m.deltaTotal.Add(-int64(t.dlt.Len()))
		m.tableGauge(name).Set(0)
	}
	return nil
}

// Table returns the named table handle for read-only inspection
// (DeltaLen, LowWater, Schema). The handle stays valid after DropTable
// but reports on a detached table.
func (s *Store) Table(name string) (*Table, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchTable, name)
	}
	return t, nil
}

// TableNames lists the tables in sorted order.
func (s *Store) TableNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Schema returns the schema of the named table.
func (s *Store) Schema(table string) (relation.Schema, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[table]
	if !ok {
		return relation.Schema{}, fmt.Errorf("%w: %q", ErrNoSuchTable, table)
	}
	return t.rel.Schema(), nil
}

// Snapshot returns a deep copy of the current contents of a table.
func (s *Store) Snapshot(table string) (*relation.Relation, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[table]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchTable, table)
	}
	return t.rel.Clone(), nil
}

// Contents returns the live relation of a table for read-only use by the
// query engine. Callers must not mutate it and must not retain it across
// commits. Use Snapshot for an owned copy.
func (s *Store) Contents(table string) (*relation.Relation, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[table]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchTable, table)
	}
	return t.rel, nil
}

// SnapshotAt reconstructs the contents of the table as of logical time ts
// (i.e. including every commit with timestamp <= ts) by unapplying the
// delta suffix from the current contents.
func (s *Store) SnapshotAt(table string, ts vclock.Timestamp) (*relation.Relation, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[table]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchTable, table)
	}
	if ts < t.lowWater {
		if m := s.met; m != nil {
			m.staleWindow.Inc()
		}
		return nil, fmt.Errorf("%w: want %d, low water %d", ErrStaleWindow, ts, t.lowWater)
	}
	snap := t.rel.Clone()
	if err := t.dlt.After(ts).Unapply(snap); err != nil {
		return nil, fmt.Errorf("snapshot %q at %d: %w", table, ts, err)
	}
	if m := s.met; m != nil {
		m.snapshots.Inc()
	}
	return snap, nil
}

// DeltaSince returns a copy of the differential relation rows of the
// table with timestamps strictly greater than ts.
func (s *Store) DeltaSince(table string, ts vclock.Timestamp) (*delta.Delta, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[table]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchTable, table)
	}
	if ts < t.lowWater {
		if m := s.met; m != nil {
			m.staleWindow.Inc()
		}
		return nil, fmt.Errorf("%w: want >%d, low water %d", ErrStaleWindow, ts, t.lowWater)
	}
	return t.dlt.After(ts).Clone(), nil
}

// DeltaLen returns the number of retained delta rows for a table.
func (s *Store) DeltaLen(table string) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[table]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoSuchTable, table)
	}
	return t.dlt.Len(), nil
}

// ChangeCount returns the per-table change counter (see Table.Version).
// Unknown tables report 0: a cache keyed on the counter then observes a
// "changed" transition the moment the table exists, which is the safe
// direction.
func (s *Store) ChangeCount(table string) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[table]
	if !ok {
		return 0
	}
	return t.version
}

// ChangeCounts snapshots every table's change counter in one lock
// acquisition. Prepared-plan operand caches (dra.Context.Versions)
// require the snapshot to be taken BEFORE the refresh timestamp is
// issued: a counter read after Now() may already include commits newer
// than the timestamp, which would let a later equality check validate a
// stale replica.
func (s *Store) ChangeCounts() map[string]uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]uint64, len(s.tables))
	for name, t := range s.tables {
		out[name] = t.version
	}
	return out
}

// CollectGarbage drops delta rows with timestamps <= horizon on every
// table (Section 5.4: horizon is the lower boundary of the system active
// delta zone). It returns the total number of rows collected.
func (s *Store) CollectGarbage(horizon vclock.Timestamp) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	var freedBytes int64
	for _, t := range s.tables {
		// Sum the bytes of the prefix about to go before truncating:
		// delta rows are stored in commit-timestamp order, so the
		// collectable prefix is contiguous.
		for _, r := range t.dlt.Rows() {
			if r.TS > horizon {
				break
			}
			freedBytes += approxRowBytes(r)
		}
		n := t.dlt.TruncateBefore(horizon)
		total += n
		if horizon > t.lowWater {
			t.lowWater = horizon
		}
		if m := s.met; m != nil && n > 0 {
			m.tableGauge(t.name).Set(int64(t.dlt.Len()))
		}
	}
	s.noteDeltaDropLocked(total, freedBytes)
	s.recomputeOverloadLocked()
	if m := s.met; m != nil {
		m.gcRuns.Inc()
		m.gcRows.Add(int64(total))
		m.deltaTotal.Add(-int64(total))
	}
	return total
}

// CollectGarbageTables drops delta rows per table at table-specific
// horizons — the cascade-aware refinement of CollectGarbage. A table's
// horizon is the minimum last-execution timestamp over the CQs that
// actually read it, so a derived table's retention extends exactly to
// its slowest downstream consumer while tables with only fast readers
// collect further. Tables absent from the map are left untouched.
// Returns the total number of rows collected.
func (s *Store) CollectGarbageTables(horizons map[string]vclock.Timestamp) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	var freedBytes int64
	for name, horizon := range horizons {
		t, ok := s.tables[name]
		if !ok {
			continue
		}
		for _, r := range t.dlt.Rows() {
			if r.TS > horizon {
				break
			}
			freedBytes += approxRowBytes(r)
		}
		n := t.dlt.TruncateBefore(horizon)
		total += n
		if horizon > t.lowWater {
			t.lowWater = horizon
		}
		if m := s.met; m != nil && n > 0 {
			m.tableGauge(t.name).Set(int64(t.dlt.Len()))
		}
	}
	s.noteDeltaDropLocked(total, freedBytes)
	s.recomputeOverloadLocked()
	if m := s.met; m != nil {
		m.gcRuns.Inc()
		m.gcRows.Add(int64(total))
		m.deltaTotal.Add(-int64(total))
	}
	return total
}

// NewTID allocates a fresh tuple identifier.
func (s *Store) NewTID() relation.TID {
	s.mu.Lock()
	defer s.mu.Unlock()
	tid := s.nextID
	s.nextID++
	return tid
}

// writeOp is one buffered mutation inside a transaction.
type writeOp struct {
	table string
	row   delta.Row // Old/New as in a differential row; TS filled at commit
}

// Tx is a transaction. Mutations are buffered in the write set and become
// visible (and are appended to the differential relations) atomically at
// Commit, stamped with a single commit timestamp — so the differential
// relation records the net effect per transaction, as in Example 1.
type Tx struct {
	store *Store
	ops   []writeOp
	done  bool
	// pending maps table/tid to the index in ops of the buffered write,
	// for read-your-writes and intra-tx folding. Indexes (not pointers)
	// are stored because append may reallocate ops.
	pending map[string]map[relation.TID]int
	// origin/depth carry materialization provenance onto the commit
	// event (SetOrigin); zero for ordinary client transactions.
	origin string
	depth  int
}

// SetOrigin tags the transaction as the materialization of a continual
// query's refresh: origin is the producing CQ, depth is its cascade
// stage plus one. The pair rides the commit event (CommitEvent.Origin/
// Depth), letting the push router and metrics distinguish derived
// deltas — and their hop count — from client writes.
func (tx *Tx) SetOrigin(origin string, depth int) {
	tx.origin = origin
	tx.depth = depth
}

// Begin starts a transaction.
func (s *Store) Begin() *Tx {
	return &Tx{store: s, pending: make(map[string]map[relation.TID]int)}
}

func (tx *Tx) pendingFor(table string) map[relation.TID]int {
	m, ok := tx.pending[table]
	if !ok {
		m = make(map[relation.TID]int)
		tx.pending[table] = m
	}
	return m
}

// pendingRow returns the buffered write for table/tid, if any. The pointer
// is valid only until the next append to tx.ops.
func (tx *Tx) pendingRow(table string, tid relation.TID) (*delta.Row, bool) {
	i, ok := tx.pending[table][tid]
	if !ok {
		return nil, false
	}
	return &tx.ops[i].row, true
}

// Insert buffers an insertion and returns the assigned tid.
func (tx *Tx) Insert(table string, values []relation.Value) (relation.TID, error) {
	if tx.done {
		return 0, ErrTxDone
	}
	schema, err := tx.store.Schema(table)
	if err != nil {
		return 0, err
	}
	if len(values) != schema.Len() {
		return 0, fmt.Errorf("storage: insert into %q: %w", table, relation.ErrArity)
	}
	tid := tx.store.NewTID()
	op := writeOp{table: table, row: delta.Row{TID: tid, New: cloneValues(values)}}
	tx.ops = append(tx.ops, op)
	tx.pendingFor(table)[tid] = len(tx.ops) - 1
	return tid, nil
}

// InsertWithTID buffers an insertion with a caller-chosen tid (used by
// translators replaying external identities, e.g. Example 1's tids).
func (tx *Tx) InsertWithTID(table string, tid relation.TID, values []relation.Value) error {
	if tx.done {
		return ErrTxDone
	}
	schema, err := tx.store.Schema(table)
	if err != nil {
		return err
	}
	if len(values) != schema.Len() {
		return fmt.Errorf("storage: insert into %q: %w", table, relation.ErrArity)
	}
	tx.ops = append(tx.ops, writeOp{table: table, row: delta.Row{TID: tid, New: cloneValues(values)}})
	tx.pendingFor(table)[tid] = len(tx.ops) - 1
	return nil
}

// currentValues resolves the visible values of a tuple inside the tx:
// pending writes shadow the committed state.
func (tx *Tx) currentValues(table string, tid relation.TID) ([]relation.Value, error) {
	if p, ok := tx.pendingRow(table, tid); ok {
		if p.New == nil {
			return nil, fmt.Errorf("%w: tid %d deleted in this tx", ErrNoSuchTuple, tid)
		}
		return p.New, nil
	}
	tx.store.mu.RLock()
	defer tx.store.mu.RUnlock()
	t, ok := tx.store.tables[table]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchTable, table)
	}
	tu, ok := t.rel.Lookup(tid)
	if !ok {
		return nil, fmt.Errorf("%w: tid %d in %q", ErrNoSuchTuple, tid, table)
	}
	return tu.Values, nil
}

// Update buffers an in-place modification of the tuple with the given tid.
func (tx *Tx) Update(table string, tid relation.TID, values []relation.Value) error {
	if tx.done {
		return ErrTxDone
	}
	schema, err := tx.store.Schema(table)
	if err != nil {
		return err
	}
	if len(values) != schema.Len() {
		return fmt.Errorf("storage: update %q: %w", table, relation.ErrArity)
	}
	old, err := tx.currentValues(table, tid)
	if err != nil {
		return err
	}
	if p, ok := tx.pendingRow(table, tid); ok {
		// Fold into the pending op: keep the original Old, replace New.
		p.New = cloneValues(values)
		return nil
	}
	tx.ops = append(tx.ops, writeOp{table: table, row: delta.Row{TID: tid, Old: cloneValues(old), New: cloneValues(values)}})
	tx.pendingFor(table)[tid] = len(tx.ops) - 1
	return nil
}

// Delete buffers a deletion of the tuple with the given tid.
func (tx *Tx) Delete(table string, tid relation.TID) error {
	if tx.done {
		return ErrTxDone
	}
	old, err := tx.currentValues(table, tid)
	if err != nil {
		return err
	}
	if p, ok := tx.pendingRow(table, tid); ok {
		if p.Old == nil {
			// Inserted in this tx: the op nets to nothing. Mark it void.
			p.New = nil
			p.Old = nil
			return nil
		}
		p.New = nil
		return nil
	}
	tx.ops = append(tx.ops, writeOp{table: table, row: delta.Row{TID: tid, Old: cloneValues(old)}})
	tx.pendingFor(table)[tid] = len(tx.ops) - 1
	return nil
}

// Commit applies the write set atomically and appends the net per-tuple
// changes to the differential relations with a single commit timestamp.
func (tx *Tx) Commit() (vclock.Timestamp, error) {
	if tx.done {
		return 0, ErrTxDone
	}
	tx.done = true
	s := tx.store
	var commitStart time.Time
	if s.met != nil {
		commitStart = time.Now()
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	// Hard degraded mode rejects writes outright: retention is past the
	// hard watermark, so accepting more deltas would grow the backlog
	// the overload is made of. Reads and GC still run; the level drops
	// (hysteresis in recomputeOverloadLocked) once GC catches up.
	if s.overload == OverloadHard && len(tx.ops) > 0 {
		if m := s.met; m != nil {
			m.overloadRejects.Inc()
		}
		return 0, fmt.Errorf("%w: %d delta rows retained (hard watermark %d rows / %d bytes)",
			ErrOverloaded, s.deltaRows, s.wm.HardRows, s.wm.HardBytes)
	}

	// Validate first so commit is all-or-nothing.
	for _, op := range tx.ops {
		if op.row.Old == nil && op.row.New == nil {
			continue // voided op (insert+delete in same tx)
		}
		t, ok := s.tables[op.table]
		if !ok {
			return 0, fmt.Errorf("%w: %q", ErrNoSuchTable, op.table)
		}
		switch op.row.Kind() {
		case delta.Insert:
			if t.rel.Has(op.row.TID) {
				return 0, fmt.Errorf("%w: insert tid %d exists in %q", ErrWriteConflict, op.row.TID, op.table)
			}
		case delta.Delete, delta.Modify:
			cur, ok := t.rel.Lookup(op.row.TID)
			if !ok {
				return 0, fmt.Errorf("%w: tid %d gone from %q", ErrWriteConflict, op.row.TID, op.table)
			}
			if !valuesEqual(cur.Values, op.row.Old) {
				return 0, fmt.Errorf("%w: tid %d changed under tx in %q", ErrWriteConflict, op.row.TID, op.table)
			}
		}
	}

	ts := s.clock.Tick()

	// Write-ahead: the commit is logged before any in-memory state
	// changes. A sink failure fails the whole commit with the store
	// untouched (the consumed clock tick leaves a harmless gap).
	if s.sink != nil {
		walRows := make([]wal.TxRow, 0, len(tx.ops))
		for i := range tx.ops {
			op := &tx.ops[i]
			if op.row.Old == nil && op.row.New == nil {
				continue
			}
			row := op.row
			row.TS = ts
			walRows = append(walRows, wal.TxRow{Table: op.table, Row: row})
		}
		if err := s.sink.AppendTx(ts, walRows); err != nil {
			return 0, fmt.Errorf("storage: log commit: %w", err)
		}
	}

	appended := 0
	touched := make(map[*Table]int, 1)
	for i := range tx.ops {
		op := &tx.ops[i]
		if op.row.Old == nil && op.row.New == nil {
			continue
		}
		t := s.tables[op.table]
		op.row.TS = ts
		switch op.row.Kind() {
		case delta.Insert:
			_ = t.rel.Insert(relation.Tuple{TID: op.row.TID, Values: cloneValues(op.row.New)})
		case delta.Delete:
			_ = t.rel.Delete(op.row.TID)
		case delta.Modify:
			_ = t.rel.Update(op.row.TID, cloneValues(op.row.New))
		}
		if err := t.dlt.Append(op.row); err != nil {
			// Cannot happen: single writer under s.mu, monotone clock.
			return 0, fmt.Errorf("storage: delta append: %w", err)
		}
		s.noteDeltaAppendLocked(op.row)
		appended++
		touched[t]++
	}
	for t := range touched {
		t.version++
	}
	if appended > 0 {
		s.recomputeOverloadLocked()
	}
	if m := s.met; m != nil {
		m.commits.Inc()
		m.commitRows.Add(int64(appended))
		m.deltaTotal.Add(int64(appended))
		for t := range touched {
			m.tableGauge(t.name).Set(int64(t.dlt.Len()))
		}
		m.commitNS.Observe(time.Since(commitStart))
	}
	// The commit hook fires under s.mu after the state applies, so a
	// consumer sees events in strict commit order and every event's
	// delta window is already readable.
	if h := s.hook; h != nil && appended > 0 {
		ev := CommitEvent{TS: ts, At: time.Now(), Overload: s.overload, Changes: make([]TableChange, 0, len(touched)),
			Origin: tx.origin, Depth: tx.depth}
		// Build one columnar image per touched table, in tx op order —
		// the same order the delta log recorded. Unpooled: the batch's
		// ownership passes to the hook's consumer.
		batches := make(map[*Table]*batch.Batch, len(touched))
		for i := range tx.ops {
			op := &tx.ops[i]
			if op.row.Old == nil && op.row.New == nil {
				continue
			}
			t := s.tables[op.table]
			b, seen := batches[t]
			if !seen {
				b = batch.New(t.rel.Schema(), 2*touched[t])
				b.EnableTS()
				batches[t] = b
			}
			if b != nil && !b.AppendChange(op.row) {
				batches[t] = nil // unrepresentable value: consumer pulls the window
			}
		}
		for t, n := range touched {
			ev.Changes = append(ev.Changes, TableChange{Table: t.name, Rows: n, Batch: batches[t]})
		}
		h(ev)
	}
	return ts, nil
}

// Abort discards the transaction.
func (tx *Tx) Abort() {
	tx.done = true
	tx.ops = nil
	tx.pending = nil
}

func cloneValues(vs []relation.Value) []relation.Value {
	if vs == nil {
		return nil
	}
	out := make([]relation.Value, len(vs))
	copy(out, vs)
	return out
}

func valuesEqual(a, b []relation.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}
