package cascade

import (
	"errors"
	"reflect"
	"testing"
)

func TestStagesFollowProducers(t *testing.T) {
	r := New(0)
	if s, err := r.Register("a", []string{"base"}, "d1"); err != nil || s != 0 {
		t.Fatalf("a: stage %d err %v", s, err)
	}
	if s, err := r.Register("b", []string{"d1"}, "d2"); err != nil || s != 1 {
		t.Fatalf("b: stage %d err %v", s, err)
	}
	// A reader joining a derived table with a base table lands one past
	// the deepest producer.
	if s, err := r.Register("c", []string{"d2", "base"}, ""); err != nil || s != 2 {
		t.Fatalf("c: stage %d err %v", s, err)
	}
	if got := r.MaxStage(); got != 2 {
		t.Fatalf("MaxStage = %d", got)
	}
}

func TestCycleRejected(t *testing.T) {
	r := New(0)
	if _, err := r.Register("a", []string{"base"}, "d1"); err != nil {
		t.Fatal(err)
	}
	// Direct self-feed: read d1, write d1.
	if _, err := r.Register("self", []string{"d1"}, "d1"); !errors.Is(err, ErrDuplicateProducer) {
		// d1 already has a producer; a fresh orphan table exercises the
		// pure cycle path below.
		t.Fatalf("self: %v", err)
	}
	if _, err := r.Register("loop", []string{"orphan"}, "orphan"); !errors.Is(err, ErrCycle) {
		t.Fatalf("one-hop cycle: %v", err)
	}
	// Transitive: d2 derives from d1; producing d1 from d2 closes a loop.
	if _, err := r.Register("b", []string{"d1"}, "d2"); err != nil {
		t.Fatal(err)
	}
	r.Unregister("a")
	if _, err := r.Register("back", []string{"d2"}, "d1"); !errors.Is(err, ErrCycle) {
		t.Fatalf("transitive cycle: %v", err)
	}
	// The failed registrations left nothing behind.
	if _, ok := r.Producer("d1"); ok {
		t.Fatal("failed registration leaked a producer")
	}
}

func TestDepthBound(t *testing.T) {
	r := New(2)
	if _, err := r.Register("a", []string{"base"}, "d1"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register("b", []string{"d1"}, "d2"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register("c", []string{"d2"}, "d3"); !errors.Is(err, ErrTooDeep) {
		t.Fatalf("depth 3 at bound 2: %v", err)
	}
	// A terminal reader at the same depth is fine — only
	// materialization stages count against the bound.
	if _, err := r.Register("leaf", []string{"d2"}, ""); err != nil {
		t.Fatal(err)
	}
}

func TestDependents(t *testing.T) {
	r := New(0)
	if _, err := r.Register("a", []string{"base"}, "d1"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register("x", []string{"d1"}, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register("y", []string{"d1", "base"}, ""); err != nil {
		t.Fatal(err)
	}
	if got := r.Dependents("a"); !reflect.DeepEqual(got, []string{"x", "y"}) {
		t.Fatalf("Dependents(a) = %v", got)
	}
	if got := r.TableDependents("base"); !reflect.DeepEqual(got, []string{"a", "y"}) {
		t.Fatalf("TableDependents(base) = %v", got)
	}
	r.Unregister("x")
	r.Unregister("y")
	if got := r.Dependents("a"); got != nil {
		t.Fatalf("after unregister: %v", got)
	}
}

func TestDuplicateProducer(t *testing.T) {
	r := New(0)
	if _, err := r.Register("a", []string{"base"}, "d1"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register("b", []string{"base"}, "d1"); !errors.Is(err, ErrDuplicateProducer) {
		t.Fatalf("duplicate producer: %v", err)
	}
}

func TestDescribeTopological(t *testing.T) {
	r := New(0)
	// Registered against the topology on purpose: b reads d1 before d1
	// has a producer (checkpoint recovery resumes CQs in snapshot order,
	// and live registration can adopt an orphaned target table that
	// readers were already scanning).
	if s, err := r.Register("b", []string{"d1"}, "d2"); err != nil || s != 0 {
		t.Fatalf("b: stage %d err %v", s, err)
	}
	if _, err := r.Register("a", []string{"base"}, "d1"); err != nil {
		t.Fatal(err)
	}
	// Registering a retroactively bumped b: Describe must order a first.
	nodes := r.Describe()
	if len(nodes) != 2 || nodes[0].CQ != "a" || nodes[0].Stage != 0 || nodes[1].CQ != "b" || nodes[1].Stage != 1 {
		t.Fatalf("nodes = %+v", nodes)
	}
	if got := r.MaxStage(); got != 1 {
		t.Fatalf("MaxStage = %d", got)
	}
}

// TestRetroactiveStages covers the out-of-order chain: leaves and mid
// producers register before their upstreams, and every producer arrival
// repropagates stages through the existing readers.
func TestRetroactiveStages(t *testing.T) {
	r := New(0)
	if _, err := r.Register("leaf", []string{"d2"}, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register("b", []string{"d1"}, "d2"); err != nil {
		t.Fatal(err)
	}
	if got := r.Stage("leaf"); got != 1 {
		t.Fatalf("leaf after b: stage %d", got)
	}
	if _, err := r.Register("a", []string{"base"}, "d1"); err != nil {
		t.Fatal(err)
	}
	if got := []int{r.Stage("a"), r.Stage("b"), r.Stage("leaf")}; got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("stages after a = %v", got)
	}
	// Unregistering the root demotes the whole chain back.
	r.Unregister("a")
	if got := []int{r.Stage("b"), r.Stage("leaf")}; got[0] != 0 || got[1] != 1 {
		t.Fatalf("stages after unregister = %v", got)
	}
}

// TestRetroactiveDepthBound: a producer whose arrival would push an
// EXISTING downstream pipeline past the bound is rejected and leaves
// the registry unchanged.
func TestRetroactiveDepthBound(t *testing.T) {
	r := New(2)
	if _, err := r.Register("b", []string{"d1"}, "d2"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register("c", []string{"d2"}, "d3"); err != nil {
		t.Fatal(err)
	}
	// d1 has no producer yet, so b/c sit at stages 0/1. Producing d1
	// would bump them to 1/2, putting c's target at depth 3 > 2.
	if _, err := r.Register("a", []string{"base"}, "d1"); !errors.Is(err, ErrTooDeep) {
		t.Fatalf("retroactive depth: %v", err)
	}
	if _, ok := r.Producer("d1"); ok {
		t.Fatal("rejected registration leaked a producer")
	}
	if got := []int{r.Stage("b"), r.Stage("c")}; got[0] != 0 || got[1] != 1 {
		t.Fatalf("stages disturbed by rejected registration: %v", got)
	}
}

func TestDependentsErrorMessage(t *testing.T) {
	err := &DependentsError{Name: "mid", Dependents: []string{"leaf1", "leaf2"}}
	want := `cascade: "mid" has downstream dependents: leaf1, leaf2`
	if err.Error() != want {
		t.Fatalf("got %q", err.Error())
	}
	var de *DependentsError
	if !errors.As(error(err), &de) {
		t.Fatal("errors.As failed")
	}
}
