package storage

import (
	"time"

	"github.com/diorama/continual/internal/vclock"
)

// TableChange is one table's share of a committed transaction: the
// number of differential-relation rows the commit appended to it.
type TableChange struct {
	Table string
	Rows  int
}

// CommitEvent describes one committed transaction to a commit hook: the
// commit timestamp, the wall-clock instant the commit applied (the
// anchor for commit-to-notification latency measurements), and the net
// per-table change counts. It deliberately carries no row data — a
// consumer that needs the rows pulls the delta window itself, so the
// hook stays O(tables touched) however large the transaction.
type CommitEvent struct {
	TS vclock.Timestamp
	At time.Time
	// Overload is the store's degraded-mode level at commit time,
	// carried on the event so a consumer running under the store mutex
	// (the push router) can shed load without calling back into the
	// store.
	Overload OverloadLevel
	Changes  []TableChange
}

// CommitHook receives every committed transaction, invoked under the
// store mutex immediately after the commit applies — the same ordering
// discipline as the WAL sink (SetWALSink), so events arrive in strict
// commit-timestamp order with the committed state already visible. The
// hook MUST NOT block and MUST NOT call back into the store; it should
// hand the event to its own machinery (the push router enqueues and
// returns). Replayed recovery transactions (ApplyReplay) do not fire
// the hook: install it after recovery, like the WAL sink.
type CommitHook func(ev CommitEvent)

// SetCommitHook attaches (or, with nil, detaches) the commit hook. Set
// it before the store is shared, or detach it before tearing down the
// consumer: the store calls whatever hook is installed at commit time.
func (s *Store) SetCommitHook(h CommitHook) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hook = h
}
