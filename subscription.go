package continual

import (
	"github.com/diorama/continual/internal/cq"
	"github.com/diorama/continual/internal/obs"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/sql"
)

// Subscription is a handle on a registered continual query: its current
// result, its update stream, and its lifecycle.
type Subscription struct {
	db      *DB
	name    string
	initial *Rows
	updates chan Change
	cancel  func()
	// dropped counts changes discarded because the Updates channel was
	// full (cq.notifications.dropped, shared with the manager's own
	// subscriber buffers).
	dropped *obs.Counter
}

// Name returns the continual query's name.
func (s *Subscription) Name() string { return s.name }

// Initial returns the result of the query's initial execution.
func (s *Subscription) Initial() *Rows { return s.initial }

// Result returns a snapshot of the query's current complete result
// (maintained incrementally by the engine).
func (s *Subscription) Result() (*Rows, error) {
	rel, err := s.db.manager.Result(s.name)
	if err != nil {
		return nil, err
	}
	return fromRelation(rel), nil
}

// Updates streams one Change per refresh that produced a difference (or
// per refresh at all, with NotifyEmpty). The channel closes when the
// query is dropped or the engine closes.
func (s *Subscription) Updates() <-chan Change { return s.updates }

// Refresh forces a re-evaluation regardless of the trigger condition.
func (s *Subscription) Refresh() error { return s.db.manager.Refresh(s.name) }

// Drop unregisters the continual query.
func (s *Subscription) Drop() error { return s.db.manager.Drop(s.name) }

// onNotification converts an internal notification to the public Change
// type and enqueues it. It is invoked synchronously while the manager
// delivers a refresh, so when Poll returns the Change is already
// buffered. Sends never block; if the subscriber is 64 changes behind,
// the oldest pending deliveries win and new ones are dropped.
func (s *Subscription) onNotification(n cq.Notification, closed bool) {
	if closed {
		close(s.updates)
		return
	}
	change := Change{
		CQ:         n.CQName,
		Seq:        n.Seq,
		Terminated: n.Terminated,
	}
	switch {
	case n.Inserted != nil:
		change.Columns = columnsOf(n.Inserted)
	case n.Deleted != nil:
		change.Columns = columnsOf(n.Deleted)
	case n.Complete != nil:
		change.Columns = columnsOf(n.Complete)
	}
	change.Inserted = rowsData(n.Inserted)
	change.Deleted = rowsData(n.Deleted)
	change.Modified = modifications(n.Modified)
	if n.Mode == sql.ModeComplete {
		change.Complete = rowsData(n.Complete)
	}
	select {
	case s.updates <- change:
	default:
		s.dropped.Inc()
	}
}

func columnsOf(rel *relation.Relation) []string {
	if rel == nil {
		return nil
	}
	out := make([]string, rel.Schema().Len())
	for i := range out {
		out[i] = rel.Schema().Col(i).Name
	}
	return out
}

// subscribe wires a freshly registered CQ to a Subscription with
// synchronous delivery.
// Subscribe attaches to an already-registered continual query by name.
// This is how subscribers reattach to a query resumed by OpenDurable,
// whose pre-restart Subscription handles did not survive; Initial holds
// the query's current (recovered) result.
func (db *DB) Subscribe(name string) (*Subscription, error) {
	current, err := db.manager.Result(name)
	if err != nil {
		return nil, err
	}
	return db.subscribe(name, current)
}

func (db *DB) subscribe(name string, initial *relation.Relation) (*Subscription, error) {
	sub := &Subscription{
		db:      db,
		name:    name,
		initial: fromRelation(initial),
		updates: make(chan Change, 64),
		dropped: db.metrics.Counter("cq.notifications.dropped"),
	}
	cancel, err := db.manager.SubscribeFunc(name, sub.onNotification)
	if err != nil {
		return nil, err
	}
	sub.cancel = cancel
	return sub, nil
}
