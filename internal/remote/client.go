package remote

import (
	"fmt"
	"net"
	"sync"

	"time"

	"github.com/diorama/continual/internal/algebra"
	"github.com/diorama/continual/internal/delta"
	"github.com/diorama/continual/internal/dra"
	"github.com/diorama/continual/internal/obs"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/vclock"
)

// Client talks to a Server. It is safe for concurrent use; requests are
// serialized over the single connection.
type Client struct {
	mu    sync.Mutex
	conn  net.Conn
	codec *codec

	// obs instrumentation; nil unless Instrument was called.
	met *clientMetrics
}

// clientMetrics is the client's bundle of obs handles.
type clientMetrics struct {
	requests *obs.Counter   // remote.client.requests
	windows  *obs.Counter   // remote.client.windows_pulled
	bytesIn  *obs.Counter   // remote.client.bytes_in
	bytesOut *obs.Counter   // remote.client.bytes_out
	rtt      *obs.Histogram // remote.client.rtt_ns: request round-trip time
}

// Instrument attaches the client to a metrics registry. Every request
// afterwards records its round-trip latency and wire traffic.
func (c *Client) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.met = &clientMetrics{
		requests: reg.Counter("remote.client.requests"),
		windows:  reg.Counter("remote.client.windows_pulled"),
		bytesIn:  reg.Counter("remote.client.bytes_in"),
		bytesOut: reg.Counter("remote.client.bytes_out"),
		rtt:      reg.Histogram("remote.client.rtt_ns"),
	}
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("remote: dial: %w", err)
	}
	return &Client{conn: conn, codec: newCodec(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// BytesRead returns total bytes received from the server.
func (c *Client) BytesRead() int64 { return c.codec.bytesRead() }

// BytesWritten returns total bytes sent to the server.
func (c *Client) BytesWritten() int64 { return c.codec.bytesWritten() }

func (c *Client) roundTrip(req Request) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var start time.Time
	var lastIn, lastOut int64
	if c.met != nil {
		start = time.Now()
		lastIn, lastOut = c.codec.bytesRead(), c.codec.bytesWritten()
	}
	if err := c.codec.send(req); err != nil {
		return Response{}, fmt.Errorf("remote: send: %w", err)
	}
	var resp Response
	if err := c.codec.recv(&resp); err != nil {
		return Response{}, fmt.Errorf("remote: recv: %w", err)
	}
	if m := c.met; m != nil {
		m.requests.Inc()
		m.rtt.Observe(time.Since(start))
		m.bytesIn.Add(c.codec.bytesRead() - lastIn)
		m.bytesOut.Add(c.codec.bytesWritten() - lastOut)
		if req.Op == OpDeltaSince {
			m.windows.Inc()
		}
	}
	return resp, resp.asError()
}

// Stats fetches the server's metrics snapshot over the wire (OpStats).
func (c *Client) Stats() (obs.Snapshot, error) {
	resp, err := c.roundTrip(Request{Op: OpStats})
	if err != nil {
		return obs.Snapshot{}, err
	}
	if resp.Stats == nil {
		return obs.Snapshot{}, fmt.Errorf("remote: server returned no stats")
	}
	return *resp.Stats, nil
}

// ListTables returns the server's table names.
func (c *Client) ListTables() ([]string, error) {
	resp, err := c.roundTrip(Request{Op: OpListTables})
	return resp.Tables, err
}

// Schema fetches a table's schema.
func (c *Client) Schema(table string) (relation.Schema, error) {
	resp, err := c.roundTrip(Request{Op: OpSchema, Table: table})
	if err != nil {
		return relation.Schema{}, err
	}
	return fromWireSchema(resp.Columns)
}

// Snapshot fetches the full current contents of a table and the server's
// logical time.
func (c *Client) Snapshot(table string) (*relation.Relation, vclock.Timestamp, error) {
	resp, err := c.roundTrip(Request{Op: OpSnapshot, Table: table})
	if err != nil {
		return nil, 0, err
	}
	rel, err := fromWireRelation(resp.Rel)
	return rel, resp.Now, err
}

// DeltaSince fetches a table's differential window.
func (c *Client) DeltaSince(table string, since vclock.Timestamp) (*delta.Delta, vclock.Timestamp, error) {
	resp, err := c.roundTrip(Request{Op: OpDeltaSince, Table: table, Since: since})
	if err != nil {
		return nil, 0, err
	}
	schema, err := c.Schema(table)
	if err != nil {
		return nil, 0, err
	}
	d, err := fromWireDelta(resp.Delta, schema)
	return d, resp.Now, err
}

// Query executes a SELECT on the server and ships the full result back —
// the server-side-evaluation mode the paper argues against for scalable
// monitoring.
func (c *Client) Query(query string) (*relation.Relation, vclock.Timestamp, error) {
	resp, err := c.roundTrip(Request{Op: OpQuery, Query: query})
	if err != nil {
		return nil, 0, err
	}
	rel, err := fromWireRelation(resp.Rel)
	return rel, resp.Now, err
}

// Now returns the server's logical clock.
func (c *Client) Now() (vclock.Timestamp, error) {
	resp, err := c.roundTrip(Request{Op: OpNow})
	return resp.Now, err
}

// ApplyUpdates pushes a batch of updates into a server table (benchmark
// drivers use this to generate load over the wire).
func (c *Client) ApplyUpdates(table string, rows []WireDeltaRow) error {
	_, err := c.roundTrip(Request{Op: OpApplyUpdates, Table: table, Updates: rows})
	return err
}

// MirrorCQ is a client-side continual query evaluated by DRA over
// shipped deltas: the client keeps a replica of the operand tables
// (applied forward by the delta stream) and the cached previous result —
// "shifting the processing to the client side" (Section 6).
type MirrorCQ struct {
	client *Client
	query  string
	plan   algebra.Plan
	engine *dra.Engine

	tables  []string
	replica map[string]*relation.Relation // operand replicas at lastTS
	lastTS  vclock.Timestamp
	result  *relation.Relation
}

// replicaCatalog adapts the replica set to the planner/executor.
type replicaCatalog map[string]*relation.Relation

func (rc replicaCatalog) Schema(table string) (relation.Schema, error) {
	r, ok := rc[table]
	if !ok {
		return relation.Schema{}, fmt.Errorf("remote: no replica of %q", table)
	}
	return r.Schema(), nil
}

func (rc replicaCatalog) Relation(table string) (*relation.Relation, error) {
	r, ok := rc[table]
	if !ok {
		return nil, fmt.Errorf("remote: no replica of %q", table)
	}
	return r, nil
}

// NewMirrorCQ installs a client-side CQ: it snapshots the operand tables
// once, evaluates the initial result locally, and afterwards refreshes by
// pulling only deltas.
func NewMirrorCQ(client *Client, query string) (*MirrorCQ, error) {
	// Plan against server schemas.
	serverCat := &clientCatalog{client: client}
	plan, err := algebra.PlanSQL(query, serverCat)
	if err != nil {
		return nil, err
	}
	plan = algebra.Optimize(plan)

	m := &MirrorCQ{
		client:  client,
		query:   query,
		plan:    plan,
		engine:  dra.NewEngine(),
		replica: make(map[string]*relation.Relation),
	}
	for _, scan := range algebra.Tables(plan) {
		m.tables = append(m.tables, scan.Table)
	}
	// Initial snapshots. Each snapshot arrives tagged with the server
	// time it was taken at; replicas are then brought forward to the
	// common horizon ts with one delta window each, so all replicas
	// reflect the same consistent cut.
	var ts vclock.Timestamp
	snapTS := make(map[string]vclock.Timestamp, len(m.tables))
	for _, table := range m.tables {
		if _, dup := m.replica[table]; dup {
			continue
		}
		rel, now, err := client.Snapshot(table)
		if err != nil {
			return nil, err
		}
		m.replica[table] = rel
		snapTS[table] = now
		if now > ts {
			ts = now
		}
	}
	for table, rel := range m.replica {
		if snapTS[table] == ts {
			continue
		}
		d, _, err := client.DeltaSince(table, snapTS[table])
		if err != nil {
			return nil, err
		}
		if err := d.Window(snapTS[table], ts).Apply(rel); err != nil {
			return nil, fmt.Errorf("remote: align replica %q: %w", table, err)
		}
	}
	m.lastTS = ts
	initial, err := dra.InitialResult(plan, replicaCatalog(m.replica))
	if err != nil {
		return nil, err
	}
	m.result = initial
	return m, nil
}

// clientCatalog resolves schemas over the wire for planning.
type clientCatalog struct{ client *Client }

func (cc *clientCatalog) Schema(table string) (relation.Schema, error) {
	return cc.client.Schema(table)
}

// Result returns the cached current result.
func (m *MirrorCQ) Result() *relation.Relation { return m.result }

// LastTS returns the logical time of the last refresh.
func (m *MirrorCQ) LastTS() vclock.Timestamp { return m.lastTS }

// Refresh pulls the delta windows since the last refresh, re-evaluates
// the query differentially against the local replicas, advances the
// replicas, and returns the result change.
func (m *MirrorCQ) Refresh() (*delta.Delta, error) {
	deltas := make(map[string]*delta.Delta, len(m.tables))
	var now vclock.Timestamp
	for _, table := range m.tables {
		if _, dup := deltas[table]; dup {
			continue
		}
		d, serverNow, err := m.client.DeltaSince(table, m.lastTS)
		if err != nil {
			return nil, err
		}
		if serverNow > now {
			now = serverNow
		}
		deltas[table] = d
	}
	// Clamp all windows to the common horizon so the evaluation sees a
	// consistent cut.
	for table, d := range deltas {
		deltas[table] = d.Window(m.lastTS, now)
	}

	// Post-state replicas: needed by the engine's non-SPJ fallback, and
	// they become the new replica set after a successful refresh.
	post := make(map[string]*relation.Relation, len(m.replica))
	for table, rel := range m.replica {
		clone := rel.Clone()
		if d, ok := deltas[table]; ok {
			if err := d.Apply(clone); err != nil {
				return nil, fmt.Errorf("remote: advance replica %q: %w", table, err)
			}
		}
		post[table] = clone
	}
	ctx := &dra.Context{
		Pre:    replicaCatalog(m.replica),
		Post:   replicaCatalog(post),
		Deltas: deltas,
		LastTS: m.lastTS,
		Prev:   m.result,
	}
	res, err := m.engine.Reevaluate(m.plan, ctx, now)
	if err != nil {
		return nil, err
	}
	m.replica = post
	m.result = res.ApplyTo(m.result)
	m.lastTS = now
	return res.Delta, nil
}
