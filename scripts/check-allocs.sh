#!/bin/sh
# check-allocs: the refresh step's allocations per operation are a
# budget, not an observation. BenchmarkRefreshStep (internal/dra)
# measures the steady-state prepared refresh over a fixed window on
# both engine paths; this script fails when either arm exceeds its
# committed baseline (scripts/allocs-baseline.txt) by more than 20%.
# Latency is machine-dependent and cannot be gated in CI; allocation
# counts are deterministic for a fixed workload, which makes them the
# one performance number a shared runner can enforce. After a
# deliberate change to the refresh path's allocation behavior, re-run
# the benchmark and update the baseline in the same commit.
set -eu
cd "$(dirname "$0")/.."
baseline=scripts/allocs-baseline.txt
bench=$(go test ./internal/dra -run '^$' -bench BenchmarkRefreshStep -benchmem -benchtime 300x)
echo "$bench"
status=0
while read -r arm base; do
	[ -n "$arm" ] || continue
	cur=$(echo "$bench" | awk -v arm="$arm" '
		$1 ~ "^BenchmarkRefreshStep/"arm"(-|$)" {
			for (i = 2; i <= NF; i++) if ($i == "allocs/op") print $(i-1)
		}')
	if [ -z "$cur" ]; then
		echo "check-allocs: no measurement for arm \"$arm\"" >&2
		status=1
		continue
	fi
	limit=$((base + base / 5))
	if [ "$cur" -gt "$limit" ]; then
		echo "check-allocs: $arm arm regressed: $cur allocs/op > $limit (baseline $base + 20%)" >&2
		status=1
	else
		echo "check-allocs: $arm arm ok: $cur allocs/op (baseline $base, limit $limit)"
	fi
done < "$baseline"
exit $status
