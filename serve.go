package continual

import (
	"time"

	"github.com/diorama/continual/internal/obs"
	"github.com/diorama/continual/internal/remote"
)

// Listener is a handle on a serving endpoint.
type Listener struct {
	srv  *remote.Server
	addr string
}

// Addr returns the bound address.
func (l *Listener) Addr() string { return l.addr }

// Close stops serving gracefully: in-flight requests complete and get
// their responses before connections are torn down.
func (l *Listener) Close() error { return l.srv.Close() }

// ListenAndServe exposes this engine's tables over TCP so remote clients
// can snapshot them, pull differential windows, and run one-shot queries
// — the server side of the paper's client/server split (Section 5.1:
// "each server only generates delta relations when communicating with
// the clients"). Use "127.0.0.1:0" to pick a free port.
//
// The server is instrumented into the engine's metrics registry, so
// DB.Stats (and `cqctl stats` against this engine) reports the remote.*
// counters: requests, wire bytes, connections, plus the fault counters
// remote.read_timeouts and remote.conns_broken.
func (db *DB) ListenAndServe(addr string) (*Listener, error) {
	srv := remote.NewServer(db.store)
	srv.Instrument(db.metrics)
	bound, err := srv.Serve(addr)
	if err != nil {
		return nil, err
	}
	return &Listener{srv: srv, addr: bound}, nil
}

// Mirror is a client-side continual query over a remote engine: the
// operand tables are snapshotted once, and every Refresh pulls only the
// differential windows since the last refresh, re-evaluating the query
// locally with the DRA — "shifting the processing to the client side"
// (Section 6).
//
// The mirror is fault tolerant: requests carry deadlines, idempotent
// pulls are retried with capped exponential backoff, and a killed
// connection is re-established transparently. Because the mirror holds
// lastTS and failed refreshes never advance it, recovery is
// differential — the next Refresh re-pulls DeltaSince(lastTS) over a
// fresh connection, never a new snapshot. While the server stays
// unreachable the mirror serves its last result; see Stale and LastErr.
type Mirror struct {
	client  *remote.Client
	cq      *remote.MirrorCQ
	metrics *obs.Registry
}

// MirrorOptions tunes a mirror's fault-tolerance policy. Zero fields
// keep the defaults (5s dial timeout, 15s request timeout, 4 attempts,
// 50ms..2s backoff with 20% jitter).
type MirrorOptions struct {
	// DialTimeout bounds each connection attempt.
	DialTimeout time.Duration
	// RequestTimeout bounds each request round trip.
	RequestTimeout time.Duration
	// MaxAttempts is the total tries per pull (1 disables retry).
	MaxAttempts int
	// BackoffBase / BackoffMax shape the capped exponential backoff
	// between retries.
	BackoffBase time.Duration
	BackoffMax  time.Duration
}

// DialMirror connects to a serving engine and installs a client-side
// continual query with the default fault-tolerance policy.
func DialMirror(addr, query string) (*Mirror, error) {
	return DialMirrorOpts(addr, query, MirrorOptions{})
}

// DialMirrorOpts is DialMirror with an explicit fault-tolerance policy.
func DialMirrorOpts(addr, query string, opts MirrorOptions) (*Mirror, error) {
	p := remote.DefaultPolicy()
	if opts.DialTimeout > 0 {
		p.DialTimeout = opts.DialTimeout
	}
	if opts.RequestTimeout > 0 {
		p.IOTimeout = opts.RequestTimeout
	}
	if opts.MaxAttempts > 0 {
		p.MaxAttempts = opts.MaxAttempts
	}
	if opts.BackoffBase > 0 {
		p.BackoffBase = opts.BackoffBase
	}
	if opts.BackoffMax > 0 {
		p.BackoffMax = opts.BackoffMax
	}
	client, err := remote.DialPolicy(addr, p)
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	client.Instrument(reg)
	cq, err := remote.NewMirrorCQ(client, query)
	if err != nil {
		_ = client.Close()
		return nil, err
	}
	return &Mirror{client: client, cq: cq, metrics: reg}, nil
}

// Result returns the current locally cached result. While the server is
// unreachable this is the last successfully refreshed result; check
// Stale to tell the two apart.
func (m *Mirror) Result() *Rows { return fromRelation(m.cq.Result()) }

// Stale reports whether the most recent Refresh failed, meaning Result
// is the last good state rather than the present.
func (m *Mirror) Stale() bool { return m.cq.Stale() }

// LastErr returns the error that made the result stale (nil when
// fresh).
func (m *Mirror) LastErr() error { return m.cq.LastErr() }

// Stats returns the mirror's client-side metrics: requests, wire bytes,
// pulled windows, and the fault-recovery counters
// remote.client.retries, remote.client.reconnects,
// remote.client.timeouts and remote.client.broken_conns.
func (m *Mirror) Stats() Stats { return statsFromSnapshot(m.metrics.Snapshot()) }

// Refresh pulls the pending differential windows and re-evaluates the
// query locally, returning what changed. A refresh that fails leaves
// the mirror serving its previous result (Stale reports true) and is
// resumed differentially by the next Refresh.
func (m *Mirror) Refresh() (*Change, error) {
	d, err := m.cq.Refresh()
	if err != nil {
		return nil, err
	}
	change := &Change{
		Inserted: rowsData(d.Insertions()),
		Deleted:  rowsData(d.Deletions()),
		Modified: modifications(d.Modifications()),
	}
	cols := d.Schema()
	change.Columns = make([]string, cols.Len())
	for i := range change.Columns {
		change.Columns[i] = cols.Col(i).Name
	}
	return change, nil
}

// BytesReceived reports the total bytes shipped from the server to this
// mirror across all connections it has used — the measurable half of
// the network-traffic argument (§5.1).
func (m *Mirror) BytesReceived() int64 { return m.client.BytesRead() }

// Close disconnects the mirror.
func (m *Mirror) Close() error { return m.client.Close() }
