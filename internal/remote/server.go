package remote

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/diorama/continual/internal/algebra"
	"github.com/diorama/continual/internal/obs"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/storage"
)

// Default connection-management timeouts; override with SetIdleTimeout
// and SetDrainTimeout before Serve.
const (
	// DefaultIdleTimeout is how long a connection may sit between
	// requests before the server sheds it as a dead peer. Clients
	// reconnect transparently, so shedding an idle-but-live client
	// costs one reconnect.
	DefaultIdleTimeout = 5 * time.Minute
	// DefaultDrainTimeout bounds how long Close waits for in-flight
	// requests to finish before force-closing connections.
	DefaultDrainTimeout = 5 * time.Second
)

// Server exposes a store over TCP. Each connection is served by one
// goroutine; requests on a connection are processed in order.
type Server struct {
	store *storage.Store
	ln    net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed bool

	idleTimeout  time.Duration
	drainTimeout time.Duration

	// stats
	queriesServed  int64
	deltasServed   int64
	tuplesExecuted int64

	// obs instrumentation; nil unless Instrument was called.
	met *serverMetrics
	reg *obs.Registry

	// checkpointFn handles OpCheckpoint; nil refuses the op (the
	// server's store is not durably backed). Set before Serve.
	checkpointFn func() error
	// depsFn handles OpDeps; nil answers with an empty DAG (the server
	// runs no CQ manager). Set before Serve.
	depsFn func() []WireDep
}

// SetCheckpointFunc enables OpCheckpoint: fn is invoked once per
// request and should durably checkpoint the backing store. Call before
// Serve.
func (s *Server) SetCheckpointFunc(fn func() error) {
	s.checkpointFn = fn
}

// SetDepsFunc enables OpDeps: fn should snapshot the CQ manager's
// cascade dependency DAG in topological order. Call before Serve.
func (s *Server) SetDepsFunc(fn func() []WireDep) {
	s.depsFn = fn
}

// serverMetrics is the server's bundle of obs handles, resolved once at
// Instrument time.
type serverMetrics struct {
	requests   *obs.Counter // remote.requests
	queries    *obs.Counter // remote.queries_served
	windows    *obs.Counter // remote.windows_pulled: delta windows shipped
	snapshots  *obs.Counter // remote.snapshots_served
	updates    *obs.Counter // remote.updates_applied: pushed delta rows
	tuples     *obs.Counter // remote.tuples_executed: server-side query scans
	bytesIn    *obs.Counter // remote.bytes_in
	bytesOut   *obs.Counter // remote.bytes_out
	conns      *obs.Gauge   // remote.conns
	connsTotal *obs.Counter // remote.conns_total

	// Fault visibility: how connections end.
	readTimeouts *obs.Counter // remote.read_timeouts: idle peers shed by deadline
	connsBroken  *obs.Counter // remote.conns_broken: conns dropped on I/O or codec errors
}

// Instrument attaches the server to a metrics registry. Call before
// Serve; the registry also becomes the payload of OpStats so clients
// (cqctl stats) can read the daemon's counters over the wire.
func (s *Server) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.reg = reg
	s.met = &serverMetrics{
		requests:   reg.Counter("remote.requests"),
		queries:    reg.Counter("remote.queries_served"),
		windows:    reg.Counter("remote.windows_pulled"),
		snapshots:  reg.Counter("remote.snapshots_served"),
		updates:    reg.Counter("remote.updates_applied"),
		tuples:     reg.Counter("remote.tuples_executed"),
		bytesIn:    reg.Counter("remote.bytes_in"),
		bytesOut:   reg.Counter("remote.bytes_out"),
		conns:      reg.Gauge("remote.conns"),
		connsTotal: reg.Counter("remote.conns_total"),

		readTimeouts: reg.Counter("remote.read_timeouts"),
		connsBroken:  reg.Counter("remote.conns_broken"),
	}
}

// ServerStats is a snapshot of server-side work counters, used by the
// scalability experiment (E7): server CPU work per client refresh.
type ServerStats struct {
	QueriesServed  int64
	DeltasServed   int64
	TuplesExecuted int64
}

// NewServer wraps a store. Call Serve to start listening.
func NewServer(store *storage.Store) *Server {
	return &Server{
		store:        store,
		conns:        make(map[net.Conn]struct{}),
		idleTimeout:  DefaultIdleTimeout,
		drainTimeout: DefaultDrainTimeout,
	}
}

// SetIdleTimeout sets the per-connection read deadline between requests
// (0 disables idle shedding). Call before Serve.
func (s *Server) SetIdleTimeout(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.idleTimeout = d
}

// SetDrainTimeout sets how long Close waits for in-flight requests
// before force-closing connections. Call before Serve.
func (s *Server) SetDrainTimeout(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.drainTimeout = d
}

// Serve starts listening on addr ("127.0.0.1:0" picks a free port) and
// returns the bound address. Connections are handled until Close.
func (s *Server) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("remote: listen: %w", err)
	}
	return s.ServeListener(ln), nil
}

// ServeListener serves on an existing listener and returns its address.
// Fault-injection harnesses use this to interpose a faulty listener
// (faults.Injector.WrapListener) between the server and its clients.
func (s *Server) ServeListener(ln net.Listener) string {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String()
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	if m := s.met; m != nil {
		m.conns.Add(1)
		m.connsTotal.Inc()
		defer m.conns.Add(-1)
	}
	c := newCodec(conn)
	s.mu.Lock()
	idle := s.idleTimeout
	s.mu.Unlock()
	var lastIn, lastOut int64
	for {
		// Re-check shutdown at each loop top: Close nudges blocked
		// readers with an expired deadline, and a handler that was
		// mid-request lands here right after sending its response.
		if s.isClosed() {
			return
		}
		if idle > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(idle))
		}
		var req Request
		if err := c.recv(&req); err != nil {
			// Dropping the conn; classify why, unless shutting down.
			if m := s.met; m != nil && !s.isClosed() {
				var ne net.Error
				switch {
				case errors.As(err, &ne) && ne.Timeout():
					m.readTimeouts.Inc() // dead/idle peer shed
				case errors.Is(err, io.EOF):
					// clean close
				default:
					m.connsBroken.Inc() // mid-frame death or garbage
				}
			}
			return
		}
		_ = conn.SetReadDeadline(time.Time{}) // no deadline while handling
		resp := s.handle(req)
		if err := c.send(resp); err != nil {
			if m := s.met; m != nil && !s.isClosed() {
				m.connsBroken.Inc()
			}
			return
		}
		if m := s.met; m != nil {
			// Fold this request's wire traffic into the counters: one
			// pair of adds per request, not per byte.
			in, out := c.bytesRead(), c.bytesWritten()
			m.requests.Inc()
			m.bytesIn.Add(in - lastIn)
			m.bytesOut.Add(out - lastOut)
			lastIn, lastOut = in, out
		}
	}
}

// Stats returns a snapshot of the work counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ServerStats{
		QueriesServed:  s.queriesServed,
		DeltasServed:   s.deltasServed,
		TuplesExecuted: s.tuplesExecuted,
	}
}

func (s *Server) handle(req Request) Response {
	switch req.Op {
	case OpListTables:
		return Response{Tables: s.store.TableNames()}

	case OpSchema:
		schema, err := s.store.Schema(req.Table)
		if err != nil {
			return errResponse(err)
		}
		return Response{Columns: toWireSchema(schema)}

	case OpSnapshot:
		rel, err := s.store.Snapshot(req.Table)
		if err != nil {
			return errResponse(err)
		}
		if m := s.met; m != nil {
			m.snapshots.Inc()
		}
		return Response{Rel: toWireRelation(rel), Now: s.store.Now()}

	case OpDeltaSince:
		d, err := s.store.DeltaSince(req.Table, req.Since)
		if err != nil {
			return errResponse(err)
		}
		s.mu.Lock()
		s.deltasServed++
		s.mu.Unlock()
		if m := s.met; m != nil {
			m.windows.Inc()
		}
		if req.Columnar {
			if cd, ok := toWireColDelta(d); ok {
				return Response{ColDelta: cd, Now: s.store.Now()}
			}
			// Unrepresentable window: the row form below is the answer.
		}
		return Response{Delta: toWireDelta(d), Now: s.store.Now()}

	case OpQuery:
		plan, err := algebra.PlanSQL(req.Query, s.store.Live())
		if err != nil {
			return errResponse(err)
		}
		ex := algebra.NewExecutor(s.store.Live())
		rel, err := ex.Execute(algebra.Optimize(plan))
		if err != nil {
			return errResponse(err)
		}
		s.mu.Lock()
		s.queriesServed++
		s.tuplesExecuted += int64(ex.Stats.TuplesScanned)
		s.mu.Unlock()
		if m := s.met; m != nil {
			m.queries.Inc()
			m.tuples.Add(int64(ex.Stats.TuplesScanned))
		}
		return Response{Rel: toWireRelation(rel), Now: s.store.Now()}

	case OpNow:
		return Response{Now: s.store.Now()}

	case OpApplyUpdates:
		if err := s.applyUpdates(req); err != nil {
			return errResponse(err)
		}
		if m := s.met; m != nil {
			m.updates.Add(int64(len(req.Updates)))
		}
		return Response{Now: s.store.Now()}

	case OpStats:
		snap := s.statsSnapshot()
		return Response{Stats: &snap, Now: s.store.Now()}

	case OpCheckpoint:
		fn := s.checkpointFn
		if fn == nil {
			return errResponse(fmt.Errorf("checkpoint: server has no durable store"))
		}
		if err := fn(); err != nil {
			return errResponse(err)
		}
		return Response{Now: s.store.Now()}

	case OpDeps:
		fn := s.depsFn
		deps := []WireDep{}
		if fn != nil {
			deps = fn()
		}
		return Response{Deps: deps, Now: s.store.Now()}

	default:
		return errResponse(fmt.Errorf("unknown op %d", req.Op))
	}
}

// statsSnapshot builds the OpStats payload: the attached registry's
// snapshot when instrumented, otherwise the legacy work counters so
// `cqctl stats` still renders something against a bare server.
func (s *Server) statsSnapshot() obs.Snapshot {
	if s.reg != nil {
		return s.reg.Snapshot()
	}
	st := s.Stats()
	return obs.Snapshot{
		Counters: map[string]int64{
			"remote.queries_served":  st.QueriesServed,
			"remote.windows_pulled":  st.DeltasServed,
			"remote.tuples_executed": st.TuplesExecuted,
		},
		Gauges:     map[string]int64{},
		Histograms: map[string]obs.HistogramStat{},
	}
}

// applyUpdates commits a batch of differential rows pushed by a client
// (used by benchmark drivers).
func (s *Server) applyUpdates(req Request) error {
	if req.Table == "" {
		return errors.New("table required")
	}
	tx := s.store.Begin()
	for _, r := range req.Updates {
		switch {
		case r.Old == nil && r.New == nil:
			tx.Abort()
			return errors.New("empty update row")
		case r.Old == nil:
			if _, err := tx.Insert(req.Table, r.New); err != nil {
				tx.Abort()
				return err
			}
		case r.New == nil:
			if err := tx.Delete(req.Table, relation.TID(r.TID)); err != nil {
				tx.Abort()
				return err
			}
		default:
			if err := tx.Update(req.Table, relation.TID(r.TID), r.New); err != nil {
				tx.Abort()
				return err
			}
		}
	}
	_, err := tx.Commit()
	return err
}

// Close shuts the server down gracefully: the listener stops, requests
// already in flight run to completion and get their responses, and only
// then are connections torn down. Readers blocked waiting for a next
// request are nudged off immediately with an expired read deadline — a
// blocked read means no request is in flight on that conn. If the drain
// exceeds the drain timeout, remaining connections are force-closed.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for conn := range s.conns {
		conns = append(conns, conn)
	}
	drain := s.drainTimeout
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	now := time.Now()
	for _, conn := range conns {
		_ = conn.SetReadDeadline(now)
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	if drain <= 0 {
		drain = DefaultDrainTimeout
	}
	select {
	case <-done:
	case <-time.After(drain):
		s.mu.Lock()
		for conn := range s.conns {
			_ = conn.Close()
		}
		s.mu.Unlock()
		<-done
	}
	return nil
}
