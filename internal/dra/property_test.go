package dra

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/storage"
)

// randomUpdates applies a random batch of transactions to the fixture's
// tables, keeping per-table live tid lists.
type liveSet map[string][]relation.TID

func applyRandomBatch(t *testing.T, f *fixture, rng *rand.Rand, live liveSet, nTx, opsPerTx int) {
	t.Helper()
	tables := f.store.TableNames()
	for txn := 0; txn < nTx; txn++ {
		tx := f.store.Begin()
		dirty := false
		for op := 0; op < opsPerTx; op++ {
			table := tables[rng.Intn(len(tables))]
			schema, err := f.store.Schema(table)
			if err != nil {
				t.Fatal(err)
			}
			switch k := rng.Intn(3); {
			case k == 0 || len(live[table]) == 0: // insert
				vals := randomRow(rng, schema)
				tid, err := tx.Insert(table, vals)
				if err != nil {
					t.Fatal(err)
				}
				live[table] = append(live[table], tid)
				dirty = true
			case k == 1: // modify
				idx := rng.Intn(len(live[table]))
				tid := live[table][idx]
				if err := tx.Update(table, tid, randomRow(rng, schema)); err != nil {
					t.Fatal(err)
				}
				dirty = true
			default: // delete
				idx := rng.Intn(len(live[table]))
				tid := live[table][idx]
				if err := tx.Delete(table, tid); err != nil {
					t.Fatal(err)
				}
				live[table] = append(live[table][:idx], live[table][idx+1:]...)
				dirty = true
			}
		}
		if dirty {
			if _, err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
		} else {
			tx.Abort()
		}
	}
}

// randomRow generates values for a schema; key-ish columns draw from a
// small domain so joins actually match.
func randomRow(rng *rand.Rand, schema relation.Schema) []relation.Value {
	out := make([]relation.Value, schema.Len())
	for i := 0; i < schema.Len(); i++ {
		switch schema.Col(i).Type {
		case relation.TInt:
			out[i] = relation.Int(int64(rng.Intn(8)))
		case relation.TFloat:
			out[i] = relation.Float(float64(rng.Intn(200)))
		case relation.TString:
			out[i] = relation.Str(fmt.Sprintf("k%d", rng.Intn(6)))
		case relation.TBool:
			out[i] = relation.Bool(rng.Intn(2) == 0)
		}
	}
	return out
}

// TestDRAEquivalenceProperty is the package's central theorem check
// (Section 4.2: "the differential re-evaluation ... is functionally
// equivalent to the complete re-evaluation solution"): over random
// multi-table histories and a pool of SPJ query shapes, chained
// differential re-evaluation must always equal running the query from
// scratch — with every combination of engine flags.
func TestDRAEquivalenceProperty(t *testing.T) {
	queries := []string{
		"SELECT * FROM r WHERE a > 100",
		"SELECT s1, a FROM r WHERE a > 50 AND s1 != 'k0'",
		"SELECT * FROM r JOIN u ON r.s1 = u.s2",
		"SELECT r.s1, u.b FROM r JOIN u ON r.s1 = u.s2 WHERE r.a > 80",
		"SELECT * FROM r, u WHERE r.s1 = u.s2 AND u.b < 150 AND r.a > 20",
		"SELECT * FROM r JOIN u ON r.s1 = u.s2 JOIN w ON u.x = w.x WHERE w.c > 10",
		"SELECT r.a, w.c FROM r JOIN u ON r.s1 = u.s2 JOIN w ON u.x = w.x",
	}
	engines := []func() *Engine{
		NewEngine,
		func() *Engine { e := NewEngine(); e.UseHeuristics = false; return e },
		func() *Engine { e := NewEngine(); e.CompactDeltas = false; return e },
		func() *Engine { e := NewEngine(); e.UseHashJoin = false; return e },
		func() *Engine { e := NewEngine(); e.SkipIrrelevant = false; return e },
		func() *Engine {
			e := NewEngine()
			e.UseHeuristics, e.CompactDeltas, e.UseHashJoin, e.SkipIrrelevant = false, false, false, false
			return e
		},
	}

	rSchema := relation.MustSchema(
		relation.Column{Name: "s1", Type: relation.TString},
		relation.Column{Name: "a", Type: relation.TFloat},
	)
	uSchema := relation.MustSchema(
		relation.Column{Name: "s2", Type: relation.TString},
		relation.Column{Name: "b", Type: relation.TFloat},
		relation.Column{Name: "x", Type: relation.TInt},
	)
	wSchema := relation.MustSchema(
		relation.Column{Name: "x", Type: relation.TInt},
		relation.Column{Name: "c", Type: relation.TFloat},
	)

	for qi, q := range queries {
		for ei, mkEngine := range engines {
			t.Run(fmt.Sprintf("q%d_e%d", qi, ei), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(qi*100 + ei)))
				f := newFixture(t, map[string]relation.Schema{"r": rSchema, "u": uSchema, "w": wSchema})
				live := liveSet{}
				applyRandomBatch(t, f, rng, live, 10, 3)

				plan := f.plan(t, q)
				prev, err := InitialResult(plan, f.store.Live())
				if err != nil {
					t.Fatal(err)
				}
				f.mark()

				// Chain several differential rounds: each round's Complete
				// feeds the next as Prev.
				for round := 0; round < 6; round++ {
					applyRandomBatch(t, f, rng, live, 1+rng.Intn(3), 1+rng.Intn(4))
					e := mkEngine()
					_, complete := f.reval(t, e, plan, prev) // reval asserts vs full re-eval
					prev = complete
					f.mark()
				}
			})
		}
	}
}

// TestFullReevaluateBaselineAgreesWithDRA checks the benchmark baseline
// produces the same Delta as the engine over a random history.
func TestFullReevaluateBaselineAgreesWithDRA(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	rSchema := relation.MustSchema(
		relation.Column{Name: "s1", Type: relation.TString},
		relation.Column{Name: "a", Type: relation.TFloat},
	)
	f := newFixture(t, map[string]relation.Schema{"r": rSchema})
	live := liveSet{}
	applyRandomBatch(t, f, rng, live, 10, 3)

	plan := f.plan(t, "SELECT * FROM r WHERE a > 100")
	prev, _ := InitialResult(plan, f.store.Live())
	f.mark()
	applyRandomBatch(t, f, rng, live, 4, 3)

	ctx := f.ctx(t)
	ctx.Prev = prev
	ts := f.store.Now()
	draRes, err := NewEngine().Reevaluate(plan, ctx, ts)
	if err != nil {
		t.Fatal(err)
	}
	fullRes, err := FullReevaluate(plan, f.store.Live(), prev, ts)
	if err != nil {
		t.Fatal(err)
	}
	draComplete := draRes.ApplyTo(prev.Clone())
	fullComplete := fullRes.ApplyTo(nil)
	if !draComplete.EqualByTID(fullComplete) {
		t.Fatal("complete results differ")
	}
	dIns, dDel, dMod := draRes.Delta.Counts()
	fIns, fDel, fMod := fullRes.Delta.Counts()
	if dIns != fIns || dDel != fDel || dMod != fMod {
		t.Errorf("delta counts differ: DRA %d/%d/%d vs full %d/%d/%d", dIns, dDel, dMod, fIns, fDel, fMod)
	}
}

// TestGarbageCollectionSafetyProperty verifies Section 5.4: collecting
// delta rows at or below the oldest last-execution timestamp never
// changes any CQ's differential result.
func TestGarbageCollectionSafetyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	rSchema := relation.MustSchema(
		relation.Column{Name: "s1", Type: relation.TString},
		relation.Column{Name: "a", Type: relation.TFloat},
	)
	f := newFixture(t, map[string]relation.Schema{"r": rSchema})
	live := liveSet{}
	applyRandomBatch(t, f, rng, live, 8, 2)

	plan := f.plan(t, "SELECT * FROM r WHERE a > 100")
	prev, _ := InitialResult(plan, f.store.Live())
	f.mark()
	horizon := f.lastTS

	applyRandomBatch(t, f, rng, live, 5, 2)

	// GC everything outside the active delta zone of this CQ.
	f.store.CollectGarbage(horizon)

	_, _ = f.reval(t, NewEngine(), plan, prev) // still equals full re-eval

	// But collecting INSIDE the zone (beyond lastTS) makes the inputs
	// unavailable, which the storage layer must refuse to serve silently:
	f.store.CollectGarbage(f.store.Now())
	if _, err := f.store.DeltaSince("r", horizon); err == nil {
		t.Error("reading a collected window should error, not return partial data")
	}
}

func TestStatsTuplesAccounting(t *testing.T) {
	f := newFixture(t, map[string]relation.Schema{"r": relation.MustSchema(
		relation.Column{Name: "s1", Type: relation.TString},
		relation.Column{Name: "a", Type: relation.TFloat},
	)})
	var vals [][]relation.Value
	for i := 0; i < 100; i++ {
		vals = append(vals, []relation.Value{relation.Str("k"), relation.Float(float64(i))})
	}
	f.insert(t, "r", vals...)
	plan := f.plan(t, "SELECT * FROM r WHERE a > 50")
	prev, _ := InitialResult(plan, f.store.Live())
	f.mark()
	f.insert(t, "r", []relation.Value{relation.Str("k"), relation.Float(200)})

	e := NewEngine()
	res, _ := f.reval(t, e, plan, prev)
	if res.Inserted().Len() != 1 {
		t.Fatal("expected one insertion")
	}
	if res.Stats.DeltaRows != 1 {
		t.Errorf("DeltaRows = %d, want 1", res.Stats.DeltaRows)
	}
	if res.Stats.PreTuplesScanned != 0 {
		t.Errorf("PreTuplesScanned = %d, want 0 for select-only", res.Stats.PreTuplesScanned)
	}
	// The whole point (Section 5.1): differential work is O(|Δ|), not
	// O(|R|). One delta row versus a 101-tuple base relation.
	_ = storage.ErrNoSuchTable
}
