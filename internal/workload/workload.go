// Package workload provides the parameterized update generators used by
// the benchmark harness: a stock ticker (the paper's running example), a
// bank of checking accounts (the Section 3.2/5.3 epsilon example), and a
// document feed (the append-only environment of the continuous-queries
// comparison). All generators are deterministic under a seed.
package workload

import (
	"fmt"
	"math/rand"

	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/storage"
)

// Mix is the fraction of each update kind in a batch; the fields should
// sum to 1 (they are normalized otherwise).
type Mix struct {
	Insert float64
	Delete float64
	Modify float64
}

// DefaultMix mirrors a ticker feed: mostly in-place price changes.
var DefaultMix = Mix{Insert: 0.15, Delete: 0.05, Modify: 0.80}

// AppendOnlyMix never deletes or modifies.
var AppendOnlyMix = Mix{Insert: 1}

func (m Mix) normalized() Mix {
	total := m.Insert + m.Delete + m.Modify
	if total <= 0 {
		return DefaultMix
	}
	return Mix{Insert: m.Insert / total, Delete: m.Delete / total, Modify: m.Modify / total}
}

// StockSchema is (name STRING, price FLOAT, volume INT).
func StockSchema() relation.Schema {
	return relation.MustSchema(
		relation.Column{Name: "name", Type: relation.TString},
		relation.Column{Name: "price", Type: relation.TFloat},
		relation.Column{Name: "volume", Type: relation.TInt},
	)
}

// Stocks generates ticker updates against a store table.
type Stocks struct {
	rng   *rand.Rand
	store *storage.Store
	table string
	mix   Mix
	// PriceMax bounds generated prices; selectivity sweeps pick the
	// predicate threshold relative to it.
	PriceMax float64
	live     []relation.TID
	nextSym  int
}

// NewStocks creates a generator over an existing table.
func NewStocks(store *storage.Store, table string, seed int64, mix Mix) *Stocks {
	return &Stocks{
		rng:      rand.New(rand.NewSource(seed)),
		store:    store,
		table:    table,
		mix:      mix.normalized(),
		PriceMax: 200,
	}
}

// Live returns the number of live tuples the generator tracks.
func (g *Stocks) Live() int { return len(g.live) }

func (g *Stocks) row() []relation.Value {
	g.nextSym++
	return []relation.Value{
		relation.Str(fmt.Sprintf("S%05d", g.nextSym)),
		relation.Float(g.rng.Float64() * g.PriceMax),
		relation.Int(int64(g.rng.Intn(10_000))),
	}
}

// Seed inserts n initial rows in batches.
func (g *Stocks) Seed(n int) error {
	const batch = 1000
	for n > 0 {
		k := batch
		if n < k {
			k = n
		}
		tx := g.store.Begin()
		for i := 0; i < k; i++ {
			tid, err := tx.Insert(g.table, g.row())
			if err != nil {
				tx.Abort()
				return err
			}
			g.live = append(g.live, tid)
		}
		if _, err := tx.Commit(); err != nil {
			return err
		}
		n -= k
	}
	return nil
}

// Batch applies n updates in a single transaction, drawn from the mix.
func (g *Stocks) Batch(n int) error {
	tx := g.store.Begin()
	for i := 0; i < n; i++ {
		r := g.rng.Float64()
		switch {
		case r < g.mix.Insert || len(g.live) == 0:
			tid, err := tx.Insert(g.table, g.row())
			if err != nil {
				tx.Abort()
				return err
			}
			g.live = append(g.live, tid)
		case r < g.mix.Insert+g.mix.Delete:
			k := g.rng.Intn(len(g.live))
			if err := tx.Delete(g.table, g.live[k]); err != nil {
				tx.Abort()
				return err
			}
			g.live[k] = g.live[len(g.live)-1]
			g.live = g.live[:len(g.live)-1]
		default:
			k := g.rng.Intn(len(g.live))
			if err := tx.Update(g.table, g.live[k], g.row()); err != nil {
				tx.Abort()
				return err
			}
		}
	}
	_, err := tx.Commit()
	return err
}

// AccountSchema is (owner STRING, amount FLOAT).
func AccountSchema() relation.Schema {
	return relation.MustSchema(
		relation.Column{Name: "owner", Type: relation.TString},
		relation.Column{Name: "amount", Type: relation.TFloat},
	)
}

// Accounts generates checking-account activity: deposits insert rows,
// withdrawals delete them — matching the paper's reading of Deposits and
// Withdrawals as insertions(Δ) and deletions(Δ).
type Accounts struct {
	rng    *rand.Rand
	store  *storage.Store
	table  string
	live   []accountRow
	nextID int
	// MaxAmount bounds individual transaction sizes.
	MaxAmount float64
}

type accountRow struct {
	tid    relation.TID
	amount float64
}

// NewAccounts creates a generator over an existing table.
func NewAccounts(store *storage.Store, table string, seed int64) *Accounts {
	return &Accounts{
		rng:       rand.New(rand.NewSource(seed)),
		store:     store,
		table:     table,
		MaxAmount: 100_000,
	}
}

// Deposit inserts one deposit of the given amount (random if <= 0).
func (g *Accounts) Deposit(amount float64) error {
	if amount <= 0 {
		amount = g.rng.Float64() * g.MaxAmount
	}
	g.nextID++
	tx := g.store.Begin()
	tid, err := tx.Insert(g.table, []relation.Value{
		relation.Str(fmt.Sprintf("acct%06d", g.nextID)),
		relation.Float(amount),
	})
	if err != nil {
		tx.Abort()
		return err
	}
	if _, err := tx.Commit(); err != nil {
		return err
	}
	g.live = append(g.live, accountRow{tid: tid, amount: amount})
	return nil
}

// Withdraw deletes a random deposit row (a withdrawal in the paper's
// model). It is a no-op on an empty table.
func (g *Accounts) Withdraw() error {
	if len(g.live) == 0 {
		return nil
	}
	k := g.rng.Intn(len(g.live))
	tx := g.store.Begin()
	if err := tx.Delete(g.table, g.live[k].tid); err != nil {
		tx.Abort()
		return err
	}
	if _, err := tx.Commit(); err != nil {
		return err
	}
	g.live[k] = g.live[len(g.live)-1]
	g.live = g.live[:len(g.live)-1]
	return nil
}

// Activity runs n random operations, biased towards deposits.
func (g *Accounts) Activity(n int) error {
	for i := 0; i < n; i++ {
		if g.rng.Float64() < 0.65 || len(g.live) == 0 {
			if err := g.Deposit(0); err != nil {
				return err
			}
		} else if err := g.Withdraw(); err != nil {
			return err
		}
	}
	return nil
}

// DocumentSchema is (url STRING, topic STRING, words INT) — the web-page
// monitoring workload of the introduction.
func DocumentSchema() relation.Schema {
	return relation.MustSchema(
		relation.Column{Name: "url", Type: relation.TString},
		relation.Column{Name: "topic", Type: relation.TString},
		relation.Column{Name: "words", Type: relation.TInt},
	)
}

// Documents generates an append-only crawl feed with a topic skew.
type Documents struct {
	rng    *rand.Rand
	store  *storage.Store
	table  string
	topics []string
	nextID int
}

// NewDocuments creates a generator over an existing table.
func NewDocuments(store *storage.Store, table string, seed int64) *Documents {
	return &Documents{
		rng:    rand.New(rand.NewSource(seed)),
		store:  store,
		table:  table,
		topics: []string{"databases", "networks", "systems", "theory", "ai"},
	}
}

// Crawl appends n documents in one transaction.
func (g *Documents) Crawl(n int) error {
	tx := g.store.Begin()
	for i := 0; i < n; i++ {
		g.nextID++
		topic := g.topics[g.rng.Intn(len(g.topics))]
		_, err := tx.Insert(g.table, []relation.Value{
			relation.Str(fmt.Sprintf("http://example.net/%s/%d", topic, g.nextID)),
			relation.Str(topic),
			relation.Int(int64(100 + g.rng.Intn(5000))),
		})
		if err != nil {
			tx.Abort()
			return err
		}
	}
	_, err := tx.Commit()
	return err
}
