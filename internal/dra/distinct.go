package dra

import (
	"fmt"

	"github.com/diorama/continual/internal/algebra"
	"github.com/diorama/continual/internal/delta"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/vclock"
)

// IncrementalDistinct maintains a DISTINCT query's result across
// refreshes. Duplicate elimination is not expressible in the SPJ signed
// algebra alone — whether a value leaves the result depends on how many
// duplicates remain — so, like IncrementalAggregate, it keeps auxiliary
// state: a multiplicity count per distinct value, folded forward by the
// signed delta of the input subplan. A value enters the result when its
// count rises from zero and leaves when it returns to zero.
type IncrementalDistinct struct {
	plan   *algebra.DistinctPlan
	input  *compiledNode // compiled SPJ input, built once at construction
	engine *Engine

	counts map[uint64]*distinctEntry
	out    *relation.Relation
}

type distinctEntry struct {
	values []relation.Value
	count  int64
}

// NewIncrementalDistinct validates the plan (root must be Distinct over
// an SPJ subtree) and seeds the multiplicity state.
func NewIncrementalDistinct(engine *Engine, plan algebra.Plan, src algebra.Source) (*IncrementalDistinct, error) {
	d, ok := plan.(*algebra.DistinctPlan)
	if !ok {
		return nil, fmt.Errorf("%w: root is %T", ErrNotIncremental, plan)
	}
	if !supportsDifferential(d.Input) {
		return nil, fmt.Errorf("%w: DISTINCT input is not SPJ", ErrNotIncremental)
	}
	id := &IncrementalDistinct{
		plan:   d,
		engine: engine,
		counts: make(map[uint64]*distinctEntry),
	}
	in, err := compilePlan(d.Input)
	if err != nil {
		return nil, err
	}
	id.input = in
	input, err := algebra.NewExecutor(src).Execute(d.Input)
	if err != nil {
		return nil, err
	}
	for _, t := range input.Tuples() {
		id.fold(t.Values, +1)
	}
	id.out = id.materialize()
	return id, nil
}

func (id *IncrementalDistinct) fold(values []relation.Value, sign int) {
	h := relation.HashValues(values)
	e, ok := id.counts[h]
	if !ok {
		e = &distinctEntry{values: values}
		id.counts[h] = e
	}
	e.count += int64(sign)
	if e.count == 0 {
		delete(id.counts, h)
	}
}

func (id *IncrementalDistinct) materialize() *relation.Relation {
	out := relation.New(id.plan.Schema())
	for h, e := range id.counts {
		if e.count <= 0 {
			continue
		}
		_ = out.Insert(relation.Tuple{TID: relation.TID(h), Values: e.values})
	}
	return out
}

// Result returns the maintained distinct output. Callers must not mutate
// it.
func (id *IncrementalDistinct) Result() *relation.Relation { return id.out }

// Step folds the update window and returns the result change.
func (id *IncrementalDistinct) Step(ctx *Context, execTS vclock.Timestamp) (*Result, error) {
	var st Stats
	din, err := id.engine.signedDelta(id.input, ctx, execTS, &st)
	if err != nil {
		return nil, err
	}
	for _, r := range din.Rows {
		id.fold(r.Values, r.Sign)
	}
	next := id.materialize()
	d, err := delta.Diff(id.out, next, execTS)
	if err != nil {
		return nil, err
	}
	id.out = next
	res := &Result{
		Signed: &delta.Signed{Schema: id.plan.Schema(), Rows: d.ToSigned().Rows},
		Delta:  d,
		ExecTS: execTS,
		Stats:  st,
	}
	res.materialized = next
	return res, nil
}
