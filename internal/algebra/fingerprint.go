package algebra

import (
	"encoding/binary"
	"hash/fnv"
	"math"

	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/sql"
)

// PlanFingerprint returns a stable 64-bit fingerprint of a plan's
// logical shape and output schema. Two plans with the same fingerprint
// compute the same query over the same column layout, so prepared-plan
// caches (dra.Prepared) and the template registry (cq) can use it as an
// identity across re-registrations without retaining the plan itself.
//
// The fingerprint hashes a canonical binary encoding of the tree, not
// the String rendering: every node and expression is tagged with its
// kind and every variable-length field is length-prefixed, so no
// concatenation of fields from one plan can replay as a different
// plan's stream. The ambiguities this closes are real — a table named
// "a AS b" rendered identically to a scan of "a" aliased "b", a column
// named "(x > 1)" rendered identically to the comparison, and schema
// column names colliding with the type bytes of their neighbors — see
// the adversarial cases in fingerprint_test.go (the netSigned FNV
// collision of PR 3 is the precedent for trusting none of this to
// pretty-printers).
func PlanFingerprint(p Plan) uint64 {
	w := newFPWriter()
	w.tag(fpVersion)
	w.plan(p)
	w.schema(p.Schema())
	return w.sum()
}

// Stream tags. fpVersion leads every fingerprint stream so a future
// encoding change cannot collide with the current one.
const (
	fpVersion byte = 1

	fpNil       byte = 0
	fpScan      byte = 2
	fpSelect    byte = 3
	fpProject   byte = 4
	fpJoin      byte = 5
	fpAggregate byte = 6
	fpDistinct  byte = 7
	fpSort      byte = 8
	fpLimit     byte = 9
	fpOpaque    byte = 10 // unknown node kinds fall back to String()

	fpExprCol    byte = 20
	fpExprLit    byte = 21
	fpExprBinary byte = 22
	fpExprUnary  byte = 23
	fpExprFunc   byte = 24
	fpExprOpaque byte = 25

	fpTemplate byte = 30 // template fingerprints live in their own space
)

// fpWriter streams the canonical encoding into an FNV-1a hash. Every
// string is length-prefixed and every composite field is tagged, so the
// byte stream parses unambiguously.
type fpWriter struct {
	h   interface{ Write([]byte) (int, error) }
	sm  interface{ Sum64() uint64 }
	buf [binary.MaxVarintLen64]byte
}

func newFPWriter() *fpWriter {
	h := fnv.New64a()
	return &fpWriter{h: h, sm: h}
}

func (w *fpWriter) sum() uint64 { return w.sm.Sum64() }

func (w *fpWriter) tag(b byte) { _, _ = w.h.Write([]byte{b}) }

func (w *fpWriter) uvarint(v uint64) {
	n := binary.PutUvarint(w.buf[:], v)
	_, _ = w.h.Write(w.buf[:n])
}

func (w *fpWriter) str(s string) {
	w.uvarint(uint64(len(s)))
	_, _ = w.h.Write([]byte(s))
}

func (w *fpWriter) plan(p Plan) {
	switch n := p.(type) {
	case *ScanPlan:
		w.tag(fpScan)
		w.str(n.Table)
		w.str(n.Alias)
	case *SelectPlan:
		w.tag(fpSelect)
		w.expr(n.Pred)
		w.plan(n.Input)
	case *ProjectPlan:
		w.tag(fpProject)
		w.uvarint(uint64(len(n.Items)))
		for _, it := range n.Items {
			w.str(it.Name)
			w.expr(it.Expr)
		}
		w.plan(n.Input)
	case *JoinPlan:
		w.tag(fpJoin)
		w.expr(n.On)
		w.plan(n.Left)
		w.plan(n.Right)
	case *AggregatePlan:
		w.tag(fpAggregate)
		w.uvarint(uint64(len(n.GroupBy)))
		for _, g := range n.GroupBy {
			w.str(g.Name)
			w.expr(g.Expr)
		}
		w.uvarint(uint64(len(n.Aggs)))
		for _, a := range n.Aggs {
			w.str(a.Func)
			w.str(a.Name)
			w.expr(a.Arg)
		}
		w.expr(n.Having)
		w.plan(n.Input)
	case *DistinctPlan:
		w.tag(fpDistinct)
		w.plan(n.Input)
	case *SortPlan:
		w.tag(fpSort)
		w.uvarint(uint64(len(n.Keys)))
		for _, k := range n.Keys {
			w.expr(k.Expr)
			if k.Desc {
				w.tag(1)
			} else {
				w.tag(0)
			}
		}
		w.plan(n.Input)
	case *LimitPlan:
		w.tag(fpLimit)
		w.uvarint(uint64(n.N))
		w.plan(n.Input)
	case nil:
		w.tag(fpNil)
	default:
		w.tag(fpOpaque)
		w.str(p.String())
	}
}

func (w *fpWriter) expr(e sql.Expr) {
	switch x := e.(type) {
	case nil:
		w.tag(fpNil)
	case *sql.ColumnRef:
		w.tag(fpExprCol)
		w.str(x.Name)
	case *sql.Literal:
		w.tag(fpExprLit)
		w.value(x.Value)
	case *sql.BinaryExpr:
		w.tag(fpExprBinary)
		w.str(x.Op)
		w.expr(x.L)
		w.expr(x.R)
	case *sql.UnaryExpr:
		w.tag(fpExprUnary)
		w.str(x.Op)
		w.expr(x.E)
	case *sql.FuncCall:
		w.tag(fpExprFunc)
		w.str(x.Name)
		if x.Star {
			w.tag(1)
		} else {
			w.tag(0)
		}
		w.expr(x.Arg)
	default:
		w.tag(fpExprOpaque)
		w.str(e.String())
	}
}

// value encodes a literal with its kind, so Int(1), Float(1) and
// Str("1") hash apart.
func (w *fpWriter) value(v relation.Value) {
	w.tag(byte(v.Kind))
	if v.IsNull() {
		w.tag(1)
		return
	}
	w.tag(0)
	switch v.Kind {
	case relation.TInt:
		w.uvarint(uint64(v.AsInt()))
	case relation.TFloat:
		w.uvarint(math.Float64bits(v.AsFloat()))
	case relation.TString:
		w.str(v.AsString())
	case relation.TBool:
		if v.AsBool() {
			w.tag(1)
		} else {
			w.tag(0)
		}
	default:
		w.str(v.String())
	}
}

func (w *fpWriter) schema(s relation.Schema) {
	w.uvarint(uint64(s.Len()))
	for _, c := range s.Columns() {
		w.str(c.Name)
		w.tag(byte(c.Type))
	}
}
