package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Snapshot is a point-in-time view of every instrument in a registry.
// It is the wire/API form of the metrics: DB.Stats wraps it, cqd serves
// it as JSON at /stats, and cqctl renders it as a table.
type Snapshot struct {
	Counters   map[string]int64         `json:"counters"`
	Gauges     map[string]int64         `json:"gauges"`
	Histograms map[string]HistogramStat `json:"histograms"`
}

// Counter returns a counter value by name (0 when absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge returns a gauge value by name (0 when absent).
func (s Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// Empty reports whether the snapshot carries no instruments.
func (s Snapshot) Empty() bool {
	return len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Histograms) == 0
}

// Filter returns the subset of the snapshot whose instrument names start
// with prefix — `cqctl stats push.` narrows the table to the push
// pipeline, `cqctl stats wal.` to durability, and so on. An empty prefix
// returns the snapshot unchanged.
func (s Snapshot) Filter(prefix string) Snapshot {
	if prefix == "" {
		return s
	}
	out := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramStat),
	}
	for k, v := range s.Counters {
		if strings.HasPrefix(k, prefix) {
			out.Counters[k] = v
		}
	}
	for k, v := range s.Gauges {
		if strings.HasPrefix(k, prefix) {
			out.Gauges[k] = v
		}
	}
	for k, v := range s.Histograms {
		if strings.HasPrefix(k, prefix) {
			out.Histograms[k] = v
		}
	}
	return out
}

// WriteTable renders the snapshot as aligned text, instruments sorted by
// name within each section. This is the `cqctl stats` output format.
func (s Snapshot) WriteTable(w io.Writer) {
	writeKV := func(title string, m map[string]int64) {
		if len(m) == 0 {
			return
		}
		names := make([]string, 0, len(m))
		width := 0
		for k := range m {
			names = append(names, k)
			if len(k) > width {
				width = len(k)
			}
		}
		sort.Strings(names)
		fmt.Fprintf(w, "%s\n", title)
		for _, k := range names {
			fmt.Fprintf(w, "  %-*s  %d\n", width, k, m[k])
		}
	}
	writeKV("counters", s.Counters)
	writeKV("gauges", s.Gauges)
	if len(s.Histograms) > 0 {
		names := make([]string, 0, len(s.Histograms))
		width := 0
		for k := range s.Histograms {
			names = append(names, k)
			if len(k) > width {
				width = len(k)
			}
		}
		sort.Strings(names)
		fmt.Fprintf(w, "latencies\n")
		for _, k := range names {
			h := s.Histograms[k]
			fmt.Fprintf(w, "  %-*s  count=%d mean=%s p50=%s p95=%s p99=%s max=%s\n",
				width, k, h.Count,
				fmtDur(h.Mean()), fmtDur(h.P50()), fmtDur(h.P95()), fmtDur(h.P99()), fmtDur(h.Max()))
		}
	}
}

// fmtDur rounds durations for table display.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.Round(time.Nanosecond).String()
	}
}
