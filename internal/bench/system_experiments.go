package bench

import (
	"fmt"

	"github.com/diorama/continual/internal/algebra"
	"github.com/diorama/continual/internal/baseline"
	"github.com/diorama/continual/internal/cq"
	"github.com/diorama/continual/internal/delta"
	"github.com/diorama/continual/internal/dra"
	"github.com/diorama/continual/internal/epsilon"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/sql"
	"github.com/diorama/continual/internal/storage"
	"github.com/diorama/continual/internal/workload"
)

// E8 measures trigger-condition evaluation (Section 5.3): the
// differential form of Tcq (scan only ΔCheckingAccounts) against the
// complete form (SUM over the whole base relation). The paper: "the cost
// of evaluating the differential form of Tcq is cheaper ... when
// |CheckingAccounts| > |ΔCheckingAccounts|".
func E8(scale Scale) (*Table, error) {
	t := &Table{
		ID:     "E8",
		Title:  "trigger evaluation: differential Tcq vs base-relation scan",
		Note:   fmt.Sprintf("|CheckingAccounts| = %d", scale.BaseRows),
		Header: []string{"|dR|", "diff us", "full scan us", "full/diff"},
	}
	store := storage.NewStore()
	if err := store.CreateTable("accounts", workload.AccountSchema()); err != nil {
		return nil, err
	}
	gen := workload.NewAccounts(store, "accounts", 8)
	for i := 0; i < scale.BaseRows; i++ {
		if err := gen.Deposit(0); err != nil {
			return nil, err
		}
	}
	amountExpr, err := sql.ParseExpr("amount")
	if err != nil {
		return nil, err
	}
	sumPlan, err := algebra.PlanSQL("SELECT SUM(amount) AS total FROM accounts", store.Live())
	if err != nil {
		return nil, err
	}

	for _, k := range []int{1, 10, 100, 1000} {
		mark := store.Now()
		if err := gen.Activity(k); err != nil {
			return nil, err
		}
		window, err := store.DeltaSince("accounts", mark)
		if err != nil {
			return nil, err
		}
		acct, err := epsilon.NewAccountant(
			epsilon.Spec{Expr: amountExpr, Bound: 1e18}, workload.AccountSchema())
		if err != nil {
			return nil, err
		}
		diffT, err := stopwatch(scale.Iterations, func() error {
			acct.Reset()
			return acct.Observe(window)
		})
		if err != nil {
			return nil, err
		}
		fullT, err := stopwatch(scale.Iterations, func() error {
			_, err := algebra.NewExecutor(store.Live()).Execute(sumPlan)
			return err
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(window.Len()), us(diffT), us(fullT), ratio(diffT, fullT),
		})
	}
	return t, nil
}

// E9 measures differential-relation garbage collection (Section 5.4):
// with the system active delta zone advancing, retained delta rows stay
// bounded; without GC they grow linearly with the update volume.
func E9(scale Scale) (*Table, error) {
	t := &Table{
		ID:     "E9",
		Title:  "garbage collection by active delta zone",
		Note:   "100-update batches; fast CQ refreshes every batch, slow CQ every 5th",
		Header: []string{"round", "retained rows (GC on)", "retained rows (GC off)"},
	}
	type world struct {
		store *storage.Store
		mgr   *cq.Manager
		gen   *workload.Stocks
	}
	mk := func(gc bool) (*world, error) {
		store := storage.NewStore()
		if err := store.CreateTable("stocks", workload.StockSchema()); err != nil {
			return nil, err
		}
		mgr := cq.NewManagerConfig(store, cq.Config{UseDRA: true, AutoGC: gc, Metrics: scale.Metrics})
		gen := workload.NewStocks(store, "stocks", 9, workload.DefaultMix)
		if err := gen.Seed(scale.BaseRows / 10); err != nil {
			return nil, err
		}
		if _, err := mgr.Register(cq.Def{Name: "fast", Query: "SELECT * FROM stocks WHERE price > 150"}); err != nil {
			return nil, err
		}
		if _, err := mgr.Register(cq.Def{
			Name:    "slow",
			Query:   "SELECT * FROM stocks WHERE price > 100",
			Trigger: sql.TriggerSpec{Kind: sql.TriggerEvery, Every: 5},
		}); err != nil {
			return nil, err
		}
		return &world{store: store, mgr: mgr, gen: gen}, nil
	}
	on, err := mk(true)
	if err != nil {
		return nil, err
	}
	defer func() { _ = on.mgr.Close() }()
	off, err := mk(false)
	if err != nil {
		return nil, err
	}
	defer func() { _ = off.mgr.Close() }()

	for round := 1; round <= 20; round++ {
		for _, w := range []*world{on, off} {
			if err := w.gen.Batch(100); err != nil {
				return nil, err
			}
			if _, err := w.mgr.Poll(); err != nil {
				return nil, err
			}
		}
		if round%4 == 0 {
			a, _ := on.store.DeltaLen("stocks")
			b, _ := off.store.DeltaLen("stocks")
			t.Rows = append(t.Rows, []string{fmt.Sprint(round), fmt.Sprint(a), fmt.Sprint(b)})
		}
	}
	return t, nil
}

// E10 sweeps the epsilon bound of the checking-account CQ: smaller
// epsilons refresh more often (Section 3.2: the E-spec bounds the
// distance between consecutive results).
func E10(scale Scale) (*Table, error) {
	t := &Table{
		ID:     "E10",
		Title:  "epsilon bound vs refresh count",
		Note:   "fixed stream of 400 deposits/withdrawals (~50k average magnitude)",
		Header: []string{"epsilon", "refreshes", "max divergence seen"},
	}
	for _, bound := range []float64{100_000, 500_000, 1_000_000, 2_000_000, 4_000_000} {
		store := storage.NewStore()
		if err := store.CreateTable("accounts", workload.AccountSchema()); err != nil {
			return nil, err
		}
		mgr := cq.NewManagerConfig(store, cq.Config{UseDRA: true, AutoGC: true, Metrics: scale.Metrics})
		on, _ := sql.ParseExpr("amount")
		if _, err := mgr.Register(cq.Def{
			Name:    "banksum",
			Query:   "SELECT SUM(amount) AS total FROM accounts",
			Trigger: sql.TriggerSpec{Kind: sql.TriggerEpsilon, Bound: bound, On: on},
			Mode:    sql.ModeComplete,
		}); err != nil {
			_ = mgr.Close()
			return nil, err
		}
		gen := workload.NewAccounts(store, "accounts", 10)
		refreshes := 0
		maxDiv := 0.0
		for i := 0; i < 400; i++ {
			if err := gen.Activity(1); err != nil {
				_ = mgr.Close()
				return nil, err
			}
			st, err := mgr.State("banksum")
			if err != nil {
				_ = mgr.Close()
				return nil, err
			}
			if st.Divergence > maxDiv {
				maxDiv = st.Divergence
			}
			n, err := mgr.Poll()
			if err != nil {
				_ = mgr.Close()
				return nil, err
			}
			refreshes += n
		}
		_ = mgr.Close()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1fM", bound/1e6), fmt.Sprint(refreshes), fmt.Sprintf("%.0fk", maxDiv/1e3),
		})
	}
	return t, nil
}

// E11 compares DRA against the Terry-style append-only baseline
// (Section 2): identical on append-only streams, increasingly stale under
// general updates.
func E11(scale Scale) (*Table, error) {
	t := &Table{
		ID:     "E11",
		Title:  "append-only continuous queries vs DRA under general updates",
		Note:   "staleness = |append-only result XOR true result| after 10 rounds of 100 updates",
		Header: []string{"workload", "true |result|", "append-only |result|", "stale tuples"},
	}
	for _, mode := range []struct {
		name string
		mix  workload.Mix
	}{
		{"append-only", workload.AppendOnlyMix},
		{"general (15/5/80)", workload.DefaultMix},
	} {
		store := storage.NewStore()
		if err := store.CreateTable("stocks", workload.StockSchema()); err != nil {
			return nil, err
		}
		gen := workload.NewStocks(store, "stocks", 11, mode.mix)
		if err := gen.Seed(scale.BaseRows / 10); err != nil {
			return nil, err
		}
		plan, err := algebra.PlanSQL("SELECT * FROM stocks WHERE price > 120", store.Live())
		if err != nil {
			return nil, err
		}
		plan = algebra.Optimize(plan)
		ao, err := baseline.NewAppendOnly(plan, store.Live())
		if err != nil {
			return nil, err
		}
		last := store.Now()
		for round := 0; round < 10; round++ {
			if err := gen.Batch(100); err != nil {
				return nil, err
			}
			d, err := store.DeltaSince("stocks", last)
			if err != nil {
				return nil, err
			}
			if _, err := ao.Step(map[string]*delta.Delta{"stocks": d}, store.At(last), store.Live(), store.Now()); err != nil {
				return nil, err
			}
			last = store.Now()
		}
		truth, err := algebra.NewExecutor(store.Live()).Execute(plan)
		if err != nil {
			return nil, err
		}
		stale := symmetricDiff(truth, ao.Result())
		t.Rows = append(t.Rows, []string{
			mode.name, fmt.Sprint(truth.Len()), fmt.Sprint(ao.Result().Len()), fmt.Sprint(stale),
		})
	}
	return t, nil
}

func symmetricDiff(a, b *relation.Relation) int {
	n := 0
	for _, t := range a.Tuples() {
		bt, ok := b.Lookup(t.TID)
		if !ok || !tupleEqual(t, bt) {
			n++
		}
	}
	for _, t := range b.Tuples() {
		if !a.Has(t.TID) {
			n++
		}
	}
	return n
}

func tupleEqual(a, b relation.Tuple) bool {
	if len(a.Values) != len(b.Values) {
		return false
	}
	for i := range a.Values {
		if !a.Values[i].Equal(b.Values[i]) {
			return false
		}
	}
	return true
}

// A4 ablates incremental aggregate maintenance: the checking-account sum
// maintained from per-group counts and sums (O(|Δ|)) vs the Propagate
// fallback (full re-evaluation) that SPJ-only Algorithm 1 would use.
func A4(scale Scale) (*Table, error) {
	t := &Table{
		ID:     "A4",
		Title:  "incremental aggregate maintenance vs Propagate fallback",
		Note:   fmt.Sprintf("SELECT SUM(amount), COUNT(*) over %d accounts; 50-op windows", scale.BaseRows),
		Header: []string{"config", "refresh us"},
	}
	store := storage.NewStore()
	if err := store.CreateTable("accounts", workload.AccountSchema()); err != nil {
		return nil, err
	}
	gen := workload.NewAccounts(store, "accounts", 41)
	for i := 0; i < scale.BaseRows; i++ {
		if err := gen.Deposit(0); err != nil {
			return nil, err
		}
	}
	plan, err := algebra.PlanSQL("SELECT SUM(amount) AS total, COUNT(*) AS n FROM accounts", store.Live())
	if err != nil {
		return nil, err
	}
	plan = algebra.Optimize(plan)

	engine := scale.NewEngine()
	ia, err := dra.NewIncrementalAggregate(engine, plan, store.Live())
	if err != nil {
		return nil, err
	}
	prev, err := dra.InitialResult(plan, store.Live())
	if err != nil {
		return nil, err
	}
	lastTS := store.Now()
	if err := gen.Activity(50); err != nil {
		return nil, err
	}
	window, err := store.DeltaSince("accounts", lastTS)
	if err != nil {
		return nil, err
	}
	ctx := &dra.Context{
		Pre:    store.At(lastTS),
		Post:   store.Live(),
		Deltas: map[string]*delta.Delta{"accounts": window},
		LastTS: lastTS,
		Prev:   prev,
	}
	ts := store.Now()

	// The maintainer folds state, so time a single Step per fresh state by
	// replaying: Step is idempotent only per window, so we measure the
	// first Step precisely and amortize with repeated Propagate for the
	// fallback.
	incT, err := stopwatch(1, func() error {
		_, err := ia.Step(ctx, ts)
		return err
	})
	if err != nil {
		return nil, err
	}
	fullT, err := stopwatch(scale.Iterations, func() error {
		_, err := engine.Reevaluate(plan, ctx, ts) // aggregate -> Propagate fallback
		return err
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"incremental (A4 on)", us(incT)})
	t.Rows = append(t.Rows, []string{"Propagate fallback (A4 off)", us(fullT)})
	return t, nil
}
