package dra

import (
	"fmt"
	"testing"

	"github.com/diorama/continual/internal/algebra"
	"github.com/diorama/continual/internal/batch"
	"github.com/diorama/continual/internal/delta"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/storage"
)

// benchStep is one frozen refresh: a prepared selection plan plus the
// context of a pending window, reusable across benchmark iterations
// because a selection has no operand caches to advance.
type benchStep struct {
	prep *Prepared
	ctx  *Context
	ts   int64
}

// newBenchStep seeds |R| = base rows, commits one window of modifies,
// and freezes the refresh inputs the way the cq manager hands them to
// the engine: window compacted once, columnar image prebuilt and shared
// when vectorized.
func newBenchStep(b *testing.B, base, window int, vectorized bool) (*Prepared, *Context, func() error) {
	b.Helper()
	store := storage.NewStore()
	schema := relation.MustSchema(
		relation.Column{Name: "s1", Type: relation.TString},
		relation.Column{Name: "a", Type: relation.TFloat},
	)
	if err := store.CreateTable("r", schema); err != nil {
		b.Fatal(err)
	}
	tx := store.Begin()
	tids := make([]relation.TID, 0, base)
	for i := 0; i < base; i++ {
		tid, err := tx.Insert("r", []relation.Value{
			relation.Str(fmt.Sprintf("k%d", i%97)), relation.Float(float64(i % 200)),
		})
		if err != nil {
			b.Fatal(err)
		}
		tids = append(tids, tid)
	}
	if _, err := tx.Commit(); err != nil {
		b.Fatal(err)
	}

	plan, err := algebra.PlanSQL("SELECT * FROM r WHERE a > 120", store.Live())
	if err != nil {
		b.Fatal(err)
	}
	plan = algebra.Optimize(plan)
	prev, err := InitialResult(plan, store.Live())
	if err != nil {
		b.Fatal(err)
	}
	lastTS := store.Now()

	tx = store.Begin()
	for i := 0; i < window; i++ {
		tid := tids[i%len(tids)]
		if err := tx.Update("r", tid, []relation.Value{
			relation.Str(fmt.Sprintf("k%d", i%97)), relation.Float(float64((i * 7) % 200)),
		}); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := tx.Commit(); err != nil {
		b.Fatal(err)
	}

	eng := NewEngine()
	eng.Vectorized = vectorized
	prep, err := eng.Prepare(plan, StrategyTruthTable)
	if err != nil {
		b.Fatal(err)
	}

	d, err := store.DeltaSince("r", lastTS)
	if err != nil {
		b.Fatal(err)
	}
	d = d.Compact()
	ctx := &Context{
		Pre:       store.At(lastTS),
		Post:      store.Live(),
		Deltas:    map[string]*delta.Delta{"r": d},
		LastTS:    lastTS,
		Prev:      prev,
		Versions:  store.ChangeCounts(),
		Compacted: true,
	}
	if vectorized {
		img, ok := batch.FromDelta(nil, d)
		if !ok {
			b.Fatal("benchmark window unrepresentable in columnar form")
		}
		ctx.Batches = map[string]*batch.Batch{"r": img}
	}
	ts := store.Now()
	step := func() error {
		_, err := prep.Step(ctx, ts)
		return err
	}
	return prep, ctx, step
}

// BenchmarkRefreshStep measures the steady-state prepared refresh step
// over a 2048-row signed window of a 16k-row relation — the per-refresh
// engine work of a pushed CQ, with window fetch, compaction, and batch
// building amortized outside (as the shared window cache amortizes them
// across every CQ of a round). The row/columnar pair is the allocation
// contract scripts/check-allocs.sh gates in CI.
func BenchmarkRefreshStep(b *testing.B) {
	for _, arm := range []struct {
		name       string
		vectorized bool
	}{{"row", false}, {"columnar", true}} {
		b.Run(arm.name, func(b *testing.B) {
			prep, _, step := newBenchStep(b, 16_384, 1024, arm.vectorized)
			defer prep.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := step(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
