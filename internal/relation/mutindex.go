package relation

// MutableIndex is an equality index over fixed key columns that is
// maintained incrementally: tuples are added and removed as the indexed
// relation changes, so probes never require rebuilding. The incremental
// join maintainer keeps one per operand per join key (the persistent
// counterpart of BuildHashIndex, which snapshots).
type MutableIndex struct {
	cols    []int
	buckets map[uint64]map[TID]Tuple
	size    int
}

// NewMutableIndex creates an empty index on the given key columns.
func NewMutableIndex(cols []int) *MutableIndex {
	return &MutableIndex{
		cols:    append([]int(nil), cols...),
		buckets: make(map[uint64]map[TID]Tuple),
	}
}

// Cols returns the indexed column positions.
func (ix *MutableIndex) Cols() []int { return ix.cols }

// Len returns the number of indexed tuples.
func (ix *MutableIndex) Len() int { return ix.size }

func (ix *MutableIndex) keyHash(values []Value) uint64 {
	key := make([]Value, len(ix.cols))
	for i, c := range ix.cols {
		key[i] = values[c]
	}
	return HashValues(key)
}

// Add indexes a tuple (replacing any previous tuple with the same tid
// under the same key).
func (ix *MutableIndex) Add(t Tuple) {
	h := ix.keyHash(t.Values)
	b, ok := ix.buckets[h]
	if !ok {
		b = make(map[TID]Tuple, 1)
		ix.buckets[h] = b
	}
	if _, exists := b[t.TID]; !exists {
		ix.size++
	}
	b[t.TID] = t
}

// Remove unindexes the tuple with the given (pre-change) values and tid.
// Removing an absent tuple is a no-op.
func (ix *MutableIndex) Remove(t Tuple) {
	h := ix.keyHash(t.Values)
	b, ok := ix.buckets[h]
	if !ok {
		return
	}
	if _, exists := b[t.TID]; exists {
		delete(b, t.TID)
		ix.size--
		if len(b) == 0 {
			delete(ix.buckets, h)
		}
	}
}

// Probe returns the tuples whose key columns equal the given key values.
// Matches are verified to guard against hash collisions. The returned
// slice is freshly allocated.
func (ix *MutableIndex) Probe(key []Value) []Tuple {
	h := HashValues(key)
	b, ok := ix.buckets[h]
	if !ok {
		return nil
	}
	out := make([]Tuple, 0, len(b))
	for _, t := range b {
		match := true
		for i, c := range ix.cols {
			if !t.Values[c].Equal(key[i]) {
				match = false
				break
			}
		}
		if match {
			out = append(out, t)
		}
	}
	return out
}

// ProbeEach invokes fn for each tuple whose key columns equal the given
// key values, without allocating a result slice — the probe primitive
// of the vectorized join kernels, which emit matches directly into
// pooled output batches. Matches are collision-verified like Probe.
// Iteration order is unspecified (map order), as with Probe.
func (ix *MutableIndex) ProbeEach(key []Value, fn func(Tuple)) {
	h := HashValues(key)
	b, ok := ix.buckets[h]
	if !ok {
		return
	}
	for _, t := range b {
		match := true
		for i, c := range ix.cols {
			if !t.Values[c].Equal(key[i]) {
				match = false
				break
			}
		}
		if match {
			fn(t)
		}
	}
}

// EachTuple invokes fn for every indexed tuple without allocating.
func (ix *MutableIndex) EachTuple(fn func(Tuple)) {
	for _, b := range ix.buckets {
		for _, t := range b {
			fn(t)
		}
	}
}

// All returns every indexed tuple (used for cross products when no equi
// key connects two operands).
func (ix *MutableIndex) All() []Tuple {
	out := make([]Tuple, 0, ix.size)
	for _, b := range ix.buckets {
		for _, t := range b {
			out = append(out, t)
		}
	}
	return out
}
