package algebra

import (
	"fmt"
	"sort"
	"strings"

	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/sql"
)

// Source provides base relation contents to the executor. Implementations
// include the storage engine (current contents), historical snapshots,
// and the substituted operand sets that DRA's truth-table terms use.
type Source interface {
	Relation(table string) (*relation.Relation, error)
}

// MapSource is a Source backed by a map, used for tests and for DRA term
// evaluation.
type MapSource map[string]*relation.Relation

// Relation implements Source.
func (m MapSource) Relation(table string) (*relation.Relation, error) {
	r, ok := m[table]
	if !ok {
		return nil, fmt.Errorf("algebra: source has no relation %q", table)
	}
	return r, nil
}

// ExecStats counts the work done by one execution; the benchmark harness
// reads these to report tuples-scanned figures.
type ExecStats struct {
	TuplesScanned int
	TuplesOutput  int
}

// Executor materializes plans against a source.
type Executor struct {
	src Source
	// UseHashJoin selects hash joins for equi-join predicates; nested
	// loops otherwise. Exposed for the A3 ablation benchmark.
	UseHashJoin bool
	Stats       ExecStats
}

// NewExecutor creates an executor over a source with hash joins enabled.
func NewExecutor(src Source) *Executor {
	return &Executor{src: src, UseHashJoin: true}
}

// Execute materializes the plan. Scans are keyed by the scan's alias so a
// self-join reads the same table twice.
func (ex *Executor) Execute(p Plan) (*relation.Relation, error) {
	out, err := ex.exec(p)
	if err != nil {
		return nil, err
	}
	ex.Stats.TuplesOutput += out.Len()
	return out, nil
}

func (ex *Executor) exec(p Plan) (*relation.Relation, error) {
	switch n := p.(type) {
	case *ScanPlan:
		return ex.execScan(n)
	case *SelectPlan:
		return ex.execSelect(n)
	case *ProjectPlan:
		return ex.execProject(n)
	case *JoinPlan:
		return ex.execJoin(n)
	case *AggregatePlan:
		return ex.execAggregate(n)
	case *DistinctPlan:
		return ex.execDistinct(n)
	case *SortPlan:
		return ex.execSort(n)
	case *LimitPlan:
		return ex.execLimit(n)
	default:
		return nil, fmt.Errorf("algebra: unknown plan node %T", p)
	}
}

func (ex *Executor) execScan(n *ScanPlan) (*relation.Relation, error) {
	base, err := ex.src.Relation(n.Table)
	if err != nil {
		return nil, err
	}
	ex.Stats.TuplesScanned += base.Len()
	// Rebadge the tuples under the plan's qualified schema. Values are
	// shared; the executor never mutates tuples.
	out := relation.New(n.Schema())
	for _, t := range base.Tuples() {
		if err := out.Insert(t); err != nil {
			return nil, fmt.Errorf("scan %s: %w", n.Table, err)
		}
	}
	return out, nil
}

func (ex *Executor) execSelect(n *SelectPlan) (*relation.Relation, error) {
	in, err := ex.exec(n.Input)
	if err != nil {
		return nil, err
	}
	pred, err := Compile(n.Pred, in.Schema())
	if err != nil {
		return nil, err
	}
	out := relation.New(in.Schema())
	for _, t := range in.Tuples() {
		ok, err := EvalPredicate(pred, t)
		if err != nil {
			return nil, fmt.Errorf("select: %w", err)
		}
		if ok {
			if err := out.Insert(t); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

func (ex *Executor) execProject(n *ProjectPlan) (*relation.Relation, error) {
	in, err := ex.exec(n.Input)
	if err != nil {
		return nil, err
	}
	compiled := make([]CompiledExpr, len(n.Items))
	for i, it := range n.Items {
		ce, err := Compile(it.Expr, in.Schema())
		if err != nil {
			return nil, err
		}
		compiled[i] = ce
	}
	out := relation.New(n.Schema())
	for _, t := range in.Tuples() {
		vals := make([]relation.Value, len(compiled))
		for i, ce := range compiled {
			v, err := ce.Eval(t)
			if err != nil {
				return nil, fmt.Errorf("project: %w", err)
			}
			vals[i] = v
		}
		// Projection keeps provenance identity (bag semantics): the output
		// tuple inherits the input tid.
		if err := out.Upsert(relation.Tuple{TID: t.TID, Values: vals}); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// equiKeys extracts equi-join column pairs (left index, right index) from
// the conjuncts of the ON predicate. Conjuncts that are not simple
// col=col across the two inputs stay in residual.
func equiKeys(on sql.Expr, left, right relation.Schema) (lk, rk []int, residual []sql.Expr) {
	if on == nil {
		return nil, nil, nil
	}
	for _, c := range SplitConjuncts(on) {
		be, ok := c.(*sql.BinaryExpr)
		if ok && be.Op == "=" {
			lc, lok := be.L.(*sql.ColumnRef)
			rc, rok := be.R.(*sql.ColumnRef)
			if lok && rok {
				if li, ok1 := left.ColIndex(lc.Name); ok1 {
					if ri, ok2 := right.ColIndex(rc.Name); ok2 {
						lk = append(lk, li)
						rk = append(rk, ri)
						continue
					}
				}
				// Reversed orientation.
				if li, ok1 := left.ColIndex(rc.Name); ok1 {
					if ri, ok2 := right.ColIndex(lc.Name); ok2 {
						lk = append(lk, li)
						rk = append(rk, ri)
						continue
					}
				}
			}
		}
		residual = append(residual, c)
	}
	return lk, rk, residual
}

func (ex *Executor) execJoin(n *JoinPlan) (*relation.Relation, error) {
	left, err := ex.exec(n.Left)
	if err != nil {
		return nil, err
	}
	right, err := ex.exec(n.Right)
	if err != nil {
		return nil, err
	}
	return JoinRelations(left, right, n.On, n.Schema(), ex.UseHashJoin)
}

// JoinRelations joins two materialized relations under the given ON
// predicate, producing tuples in outSchema (left columns then right
// columns). It is exported because DRA evaluates differential join terms
// over substituted operands with exactly this routine.
func JoinRelations(left, right *relation.Relation, on sql.Expr, outSchema relation.Schema, useHash bool) (*relation.Relation, error) {
	out := relation.New(outSchema)
	lk, rk, residualConjuncts := equiKeys(on, left.Schema(), right.Schema())
	residual := JoinConjuncts(residualConjuncts)
	var residualPred CompiledExpr
	if residual != nil {
		var err error
		residualPred, err = Compile(residual, outSchema)
		if err != nil {
			return nil, fmt.Errorf("join residual: %w", err)
		}
	}

	emit := func(lt, rt relation.Tuple) error {
		vals := make([]relation.Value, 0, len(lt.Values)+len(rt.Values))
		vals = append(vals, lt.Values...)
		vals = append(vals, rt.Values...)
		joined := relation.Tuple{TID: relation.CombineTIDs(lt.TID, rt.TID), Values: vals}
		if residualPred != nil {
			ok, err := EvalPredicate(residualPred, joined)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
		return out.Upsert(joined)
	}

	if useHash && len(lk) > 0 {
		// Build on the smaller side.
		build, probe, bk, pk, buildIsRight := right, left, rk, lk, true
		if left.Len() < right.Len() {
			build, probe, bk, pk, buildIsRight = left, right, lk, rk, false
		}
		idx := relation.BuildHashIndex(build, bk)
		key := make([]relation.Value, len(pk))
		for _, pt := range probe.Tuples() {
			for i, c := range pk {
				key[i] = pt.Values[c]
			}
			for _, bt := range idx.Probe(key) {
				var err error
				if buildIsRight {
					err = emit(pt, bt)
				} else {
					err = emit(bt, pt)
				}
				if err != nil {
					return nil, err
				}
			}
		}
		return out, nil
	}

	// Nested loop join. When equi keys exist but hashing is disabled
	// (ablation A3) the keys are folded back into the predicate via the
	// residual path: rebuild a full predicate over the output schema.
	var pred CompiledExpr
	if on != nil {
		var err error
		pred, err = Compile(on, outSchema)
		if err != nil {
			return nil, fmt.Errorf("join predicate: %w", err)
		}
	}
	for _, lt := range left.Tuples() {
		for _, rt := range right.Tuples() {
			vals := make([]relation.Value, 0, len(lt.Values)+len(rt.Values))
			vals = append(vals, lt.Values...)
			vals = append(vals, rt.Values...)
			joined := relation.Tuple{TID: relation.CombineTIDs(lt.TID, rt.TID), Values: vals}
			if pred != nil {
				ok, err := EvalPredicate(pred, joined)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			if err := out.Upsert(joined); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

type aggState struct {
	count    int64
	sumI     int64
	sumF     float64
	sawFloat bool
	min, max relation.Value
	any      bool
}

func (a *aggState) add(v relation.Value) {
	if v.IsNull() {
		return
	}
	a.count++
	if v.Kind == relation.TFloat {
		a.sawFloat = true
		a.sumF += v.AsFloat()
	} else if v.Kind == relation.TInt {
		a.sumI += v.AsInt()
		a.sumF += float64(v.AsInt())
	}
	if !a.any || v.Compare(a.min) < 0 {
		a.min = v
	}
	if !a.any || v.Compare(a.max) > 0 {
		a.max = v
	}
	a.any = true
}

func (a *aggState) result(fn string, outType relation.Type) relation.Value {
	switch fn {
	case "COUNT":
		return relation.Int(a.count)
	case "SUM":
		if !a.any {
			return relation.TypedNull(outType)
		}
		if a.sawFloat || outType == relation.TFloat {
			return relation.Float(a.sumF)
		}
		return relation.Int(a.sumI)
	case "AVG":
		if !a.any {
			return relation.TypedNull(relation.TFloat)
		}
		return relation.Float(a.sumF / float64(a.count))
	case "MIN":
		if !a.any {
			return relation.TypedNull(outType)
		}
		return a.min
	case "MAX":
		if !a.any {
			return relation.TypedNull(outType)
		}
		return a.max
	}
	return relation.NullValue()
}

func (ex *Executor) execAggregate(n *AggregatePlan) (*relation.Relation, error) {
	in, err := ex.exec(n.Input)
	if err != nil {
		return nil, err
	}
	groupEx := make([]CompiledExpr, len(n.GroupBy))
	for i, g := range n.GroupBy {
		ce, err := Compile(g.Expr, in.Schema())
		if err != nil {
			return nil, err
		}
		groupEx[i] = ce
	}
	aggEx := make([]CompiledExpr, len(n.Aggs))
	for i, a := range n.Aggs {
		if a.Arg == nil {
			continue // COUNT(*)
		}
		ce, err := Compile(a.Arg, in.Schema())
		if err != nil {
			return nil, err
		}
		aggEx[i] = ce
	}

	type group struct {
		key    []relation.Value
		states []*aggState
	}
	groups := make(map[uint64]*group)
	var order []uint64
	for _, t := range in.Tuples() {
		key := make([]relation.Value, len(groupEx))
		for i, ge := range groupEx {
			v, err := ge.Eval(t)
			if err != nil {
				return nil, fmt.Errorf("group by: %w", err)
			}
			key[i] = v
		}
		h := relation.HashValues(key)
		g, ok := groups[h]
		if !ok {
			g = &group{key: key, states: make([]*aggState, len(n.Aggs))}
			for i := range g.states {
				g.states[i] = &aggState{}
			}
			groups[h] = g
			order = append(order, h)
		}
		for i, a := range n.Aggs {
			if a.Arg == nil { // COUNT(*)
				g.states[i].count++
				continue
			}
			v, err := aggEx[i].Eval(t)
			if err != nil {
				return nil, fmt.Errorf("aggregate %s: %w", a.Name, err)
			}
			g.states[i].add(v)
		}
	}

	// Global aggregate over an empty input still yields one row.
	if len(groups) == 0 && len(n.GroupBy) == 0 {
		g := &group{states: make([]*aggState, len(n.Aggs))}
		for i := range g.states {
			g.states[i] = &aggState{}
		}
		groups[0] = g
		order = append(order, 0)
	}

	out := relation.New(n.Schema())
	var havingPred CompiledExpr
	if n.Having != nil {
		ce, err := Compile(n.Having, n.Schema())
		if err != nil {
			return nil, fmt.Errorf("having: %w", err)
		}
		havingPred = ce
	}
	for _, h := range order {
		g := groups[h]
		vals := make([]relation.Value, 0, len(g.key)+len(n.Aggs))
		vals = append(vals, g.key...)
		for i, a := range n.Aggs {
			outType := n.Schema().Col(len(g.key) + i).Type
			vals = append(vals, g.states[i].result(a.Func, outType))
		}
		row := relation.Tuple{TID: relation.HashTID(g.key), Values: vals}
		if len(n.GroupBy) == 0 {
			row.TID = 1 // the single global row
		}
		if havingPred != nil {
			ok, err := EvalPredicate(havingPred, row)
			if err != nil {
				return nil, fmt.Errorf("having: %w", err)
			}
			if !ok {
				continue
			}
		}
		if err := out.Insert(row); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (ex *Executor) execDistinct(n *DistinctPlan) (*relation.Relation, error) {
	in, err := ex.exec(n.Input)
	if err != nil {
		return nil, err
	}
	out := relation.New(in.Schema())
	seen := make(map[uint64]bool, in.Len())
	for _, t := range in.Tuples() {
		h := relation.HashValues(t.Values)
		if seen[h] {
			continue
		}
		seen[h] = true
		if err := out.Upsert(relation.Tuple{TID: relation.TID(h), Values: t.Values}); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// CatalogSource combines schema resolution and relation access; the
// storage engine's Live and At views satisfy it.
type CatalogSource interface {
	Catalog
	Source
}

// RunQuery parses, plans, optimizes and executes a SELECT.
func RunQuery(query string, cs CatalogSource) (*relation.Relation, error) {
	plan, err := PlanSQL(query, cs)
	if err != nil {
		return nil, err
	}
	plan = Optimize(plan)
	return NewExecutor(cs).Execute(plan)
}

// RenderPlan pretty-prints a plan tree, one node per line.
func RenderPlan(p Plan) string {
	var b strings.Builder
	var walk func(Plan, int)
	walk = func(p Plan, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		switch n := p.(type) {
		case *ScanPlan:
			fmt.Fprintf(&b, "Scan %s", n.Table)
			if n.Alias != n.Table {
				fmt.Fprintf(&b, " AS %s", n.Alias)
			}
		case *SelectPlan:
			fmt.Fprintf(&b, "Select %s", n.Pred)
		case *ProjectPlan:
			names := make([]string, len(n.Items))
			for i, it := range n.Items {
				names[i] = it.Name
			}
			fmt.Fprintf(&b, "Project %s", strings.Join(names, ", "))
		case *JoinPlan:
			if n.On != nil {
				fmt.Fprintf(&b, "Join %s", n.On)
			} else {
				b.WriteString("Cross")
			}
		case *AggregatePlan:
			fmt.Fprintf(&b, "Aggregate")
		case *DistinctPlan:
			b.WriteString("Distinct")
		case *SortPlan:
			keys := make([]string, len(n.Keys))
			for i, k := range n.Keys {
				keys[i] = k.Expr.String()
				if k.Desc {
					keys[i] += " DESC"
				}
			}
			fmt.Fprintf(&b, "Sort %s", strings.Join(keys, ", "))
		case *LimitPlan:
			fmt.Fprintf(&b, "Limit %d", n.N)
		}
		b.WriteByte('\n')
		for _, c := range p.Children() {
			walk(c, depth+1)
		}
	}
	walk(p, 0)
	return b.String()
}

// HavingAggregateRewrite rewrites aggregate calls inside a HAVING
// expression into references to the aggregate output columns, matching by
// rendered call text against the aggregate specs. Unmatched calls error.
func HavingAggregateRewrite(e sql.Expr, aggs []AggSpec) (sql.Expr, error) {
	switch ex := e.(type) {
	case *sql.FuncCall:
		if sql.AggregateFuncs[ex.Name] {
			want := ex.String()
			for _, a := range aggs {
				have := (&sql.FuncCall{Name: a.Func, Arg: a.Arg, Star: a.Arg == nil}).String()
				if have == want {
					return &sql.ColumnRef{Name: a.Name}, nil
				}
			}
			return nil, fmt.Errorf("algebra: HAVING aggregate %s is not in the select list", want)
		}
		return ex, nil
	case *sql.BinaryExpr:
		l, err := HavingAggregateRewrite(ex.L, aggs)
		if err != nil {
			return nil, err
		}
		r, err := HavingAggregateRewrite(ex.R, aggs)
		if err != nil {
			return nil, err
		}
		return &sql.BinaryExpr{Op: ex.Op, L: l, R: r}, nil
	case *sql.UnaryExpr:
		inner, err := HavingAggregateRewrite(ex.E, aggs)
		if err != nil {
			return nil, err
		}
		return &sql.UnaryExpr{Op: ex.Op, E: inner}, nil
	default:
		return e, nil
	}
}

// EquiKeys exposes equi-join key extraction for the DRA engine: it returns
// the paired column indexes of conjuncts of the form leftCol = rightCol,
// plus the remaining conjuncts joined back into one residual predicate
// (nil if none).
func EquiKeys(on sql.Expr, left, right relation.Schema) (lk, rk []int, residual sql.Expr) {
	lkk, rkk, rest := equiKeys(on, left, right)
	return lkk, rkk, JoinConjuncts(rest)
}

func (ex *Executor) execSort(n *SortPlan) (*relation.Relation, error) {
	in, err := ex.exec(n.Input)
	if err != nil {
		return nil, err
	}
	compiled := make([]CompiledExpr, len(n.Keys))
	for i, k := range n.Keys {
		ce, err := Compile(k.Expr, in.Schema())
		if err != nil {
			return nil, fmt.Errorf("order by: %w", err)
		}
		compiled[i] = ce
	}
	type keyed struct {
		t    relation.Tuple
		keys []relation.Value
	}
	rows := make([]keyed, 0, in.Len())
	for _, t := range in.Tuples() {
		ks := make([]relation.Value, len(compiled))
		for i, ce := range compiled {
			v, err := ce.Eval(t)
			if err != nil {
				return nil, fmt.Errorf("order by: %w", err)
			}
			ks[i] = v
		}
		rows = append(rows, keyed{t: t, keys: ks})
	}
	sort.SliceStable(rows, func(a, b int) bool {
		for i, k := range n.Keys {
			cmp := rows[a].keys[i].Compare(rows[b].keys[i])
			if cmp != 0 {
				if k.Desc {
					return cmp > 0
				}
				return cmp < 0
			}
		}
		return rows[a].t.TID < rows[b].t.TID
	})
	out := relation.New(in.Schema())
	for _, r := range rows {
		if err := out.Insert(r.t); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (ex *Executor) execLimit(n *LimitPlan) (*relation.Relation, error) {
	in, err := ex.exec(n.Input)
	if err != nil {
		return nil, err
	}
	out := relation.New(in.Schema())
	for i, t := range in.Tuples() {
		if int64(i) >= n.N {
			break
		}
		if err := out.Insert(t); err != nil {
			return nil, err
		}
	}
	return out, nil
}
