// Package faults is a deterministic network fault-injection harness: a
// wrappable net.Conn / net.Listener pair that injects connection drops,
// added latency, partial writes, and full partitions under a seeded
// schedule, so every failure mode of the remote layer is testable and
// reproducible.
//
// An Injector owns the schedule (a Plan) and a seeded RNG; every
// connection wrapped by the same injector draws from the same stream of
// decisions, so a test that runs the same sequence of I/O operations
// against the same seed sees the same faults. On top of the
// probabilistic schedule, tests can force faults explicitly:
// Partition() makes the network unreachable (new dials fail, live
// connections die), Heal() restores it, and KillActive() severs every
// live connection once — the "cable pull" primitive used to prove that
// a mirror CQ resumes differentially after a mid-stream disconnect.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrInjected is the error returned by a connection the injector killed.
// It deliberately does not implement net.Error: a dropped conn is not a
// timeout, and retry layers must treat it as a broken connection.
var ErrInjected = errors.New("faults: injected connection drop")

// ErrPartitioned is returned by dials attempted while the network is
// partitioned.
var ErrPartitioned = errors.New("faults: network partitioned")

// Plan is a deterministic fault schedule. The zero value injects
// nothing. Probabilities are per I/O operation (one Read or Write call
// on a wrapped connection).
type Plan struct {
	// Seed drives the injector's RNG; the same seed yields the same
	// decision stream for the same operation sequence.
	Seed int64
	// DropProb is the per-op probability of killing the connection
	// (the op fails with ErrInjected and the conn is closed).
	DropProb float64
	// Delay is extra latency added to each op (applied with probability
	// DelayProb, or always when DelayProb is 0 and Delay > 0).
	Delay     time.Duration
	DelayProb float64
	// PartialWriteProb is the per-write probability of delivering only
	// a prefix of the buffer and then killing the connection — the
	// failure that desyncs naive streaming codecs.
	PartialWriteProb float64
	// DropAfterOps kills a connection after it has completed that many
	// successful ops (0 = never). Counted per connection, so the first
	// request on a fresh conn can be made to fail deterministically.
	DropAfterOps int
	// ChunkWrites caps the bytes delivered per underlying write call,
	// fragmenting large frames across many small TCP writes without
	// failing them (0 = off). Exercises short-read handling peer-side.
	ChunkWrites int
}

// Stats counts the faults an injector has delivered.
type Stats struct {
	Drops         int64 // connections killed by DropProb / DropAfterOps
	Delays        int64 // ops delayed
	PartialWrites int64 // writes cut short then killed
	Kills         int64 // conns severed by KillActive / Partition
	DialsRefused  int64 // dials rejected while partitioned
}

// Injector owns a fault schedule and tracks the live connections it has
// wrapped. Safe for concurrent use; decisions are serialized so a
// single-threaded test is fully deterministic.
type Injector struct {
	mu          sync.Mutex
	rng         *rand.Rand
	plan        Plan
	partitioned bool
	conns       map[*Conn]struct{}
	stats       Stats
}

// NewInjector builds an injector for a plan.
func NewInjector(plan Plan) *Injector {
	return &Injector{
		rng:   rand.New(rand.NewSource(plan.Seed)),
		plan:  plan,
		conns: make(map[*Conn]struct{}),
	}
}

// Stats returns the faults delivered so far.
func (i *Injector) Stats() Stats {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.stats
}

// Partition makes the network unreachable: every live wrapped
// connection is severed and subsequent dials and accepts fail until
// Heal is called.
func (i *Injector) Partition() {
	i.mu.Lock()
	i.partitioned = true
	i.mu.Unlock()
	i.KillActive()
}

// Heal ends a partition.
func (i *Injector) Heal() {
	i.mu.Lock()
	i.partitioned = false
	i.mu.Unlock()
}

// Partitioned reports whether the network is currently partitioned.
func (i *Injector) Partitioned() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.partitioned
}

// KillActive severs every live wrapped connection — the mid-stream
// "cable pull". New connections may still be established afterwards.
func (i *Injector) KillActive() {
	i.mu.Lock()
	victims := make([]*Conn, 0, len(i.conns))
	for c := range i.conns {
		victims = append(victims, c)
	}
	i.stats.Kills += int64(len(victims))
	i.mu.Unlock()
	for _, c := range victims {
		_ = c.Close()
	}
}

// WrapConn wraps a connection with the injector's schedule.
func (i *Injector) WrapConn(conn net.Conn) *Conn {
	c := &Conn{Conn: conn, inj: i}
	i.mu.Lock()
	i.conns[c] = struct{}{}
	i.mu.Unlock()
	return c
}

// WrapListener wraps a listener so every accepted connection is
// fault-injected. While partitioned, accepted connections are closed
// immediately (the TCP handshake completes in the kernel, but the peer
// sees the conn die before any byte is exchanged).
func (i *Injector) WrapListener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, inj: i}
}

// Dialer wraps a dial function so dialed connections are
// fault-injected and dials fail while partitioned. A nil base dials
// plain TCP.
func (i *Injector) Dialer(base func(addr string) (net.Conn, error)) func(addr string) (net.Conn, error) {
	if base == nil {
		base = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 5*time.Second)
		}
	}
	return func(addr string) (net.Conn, error) {
		i.mu.Lock()
		if i.partitioned {
			i.stats.DialsRefused++
			i.mu.Unlock()
			return nil, ErrPartitioned
		}
		i.mu.Unlock()
		conn, err := base(addr)
		if err != nil {
			return nil, err
		}
		return i.WrapConn(conn), nil
	}
}

func (i *Injector) forget(c *Conn) {
	i.mu.Lock()
	delete(i.conns, c)
	i.mu.Unlock()
}

// opAction is one decision drawn from the schedule.
type opAction struct {
	drop    bool
	partial bool // writes only: deliver a prefix then drop
	delay   time.Duration
}

// decide draws the fate of one op. ops is the count of completed ops on
// the connection so far.
func (i *Injector) decide(ops int, isWrite bool) opAction {
	i.mu.Lock()
	defer i.mu.Unlock()
	var a opAction
	p := i.plan
	if i.partitioned {
		a.drop = true
		i.stats.Drops++
		return a
	}
	if p.DropAfterOps > 0 && ops >= p.DropAfterOps {
		a.drop = true
		i.stats.Drops++
		return a
	}
	if p.DropProb > 0 && i.rng.Float64() < p.DropProb {
		a.drop = true
		i.stats.Drops++
		return a
	}
	if isWrite && p.PartialWriteProb > 0 && i.rng.Float64() < p.PartialWriteProb {
		a.partial = true
		i.stats.PartialWrites++
		return a
	}
	if p.Delay > 0 && (p.DelayProb == 0 || i.rng.Float64() < p.DelayProb) {
		a.delay = p.Delay
		i.stats.Delays++
	}
	return a
}

// Conn is a fault-injected connection.
type Conn struct {
	net.Conn
	inj *Injector

	mu     sync.Mutex
	ops    int
	killed bool
}

// Read applies the schedule, then reads from the underlying conn.
func (c *Conn) Read(p []byte) (int, error) {
	if err := c.before(false, nil); err != nil {
		return 0, err
	}
	n, err := c.Conn.Read(p)
	c.opDone()
	return n, err
}

// Write applies the schedule, then writes. Partial-write faults deliver
// half the buffer and kill the conn; ChunkWrites fragments the buffer
// into small successful writes.
func (c *Conn) Write(p []byte) (int, error) {
	var partial bool
	if err := c.before(true, &partial); err != nil {
		return 0, err
	}
	if partial {
		n, _ := c.Conn.Write(p[:len(p)/2])
		c.kill()
		return n, fmt.Errorf("faults: partial write (%d of %d bytes): %w", n, len(p), ErrInjected)
	}
	if chunk := c.inj.planChunk(); chunk > 0 && len(p) > chunk {
		total := 0
		for off := 0; off < len(p); off += chunk {
			end := off + chunk
			if end > len(p) {
				end = len(p)
			}
			n, err := c.Conn.Write(p[off:end])
			total += n
			if err != nil {
				return total, err
			}
		}
		c.opDone()
		return total, nil
	}
	n, err := c.Conn.Write(p)
	c.opDone()
	return n, err
}

func (i *Injector) planChunk() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.plan.ChunkWrites
}

// before draws this op's fate and applies drops/delays. For writes,
// *partial reports a partial-write fault back to the caller.
func (c *Conn) before(isWrite bool, partial *bool) error {
	c.mu.Lock()
	if c.killed {
		c.mu.Unlock()
		return ErrInjected
	}
	ops := c.ops
	c.mu.Unlock()
	a := c.inj.decide(ops, isWrite)
	if a.drop {
		c.kill()
		return ErrInjected
	}
	if a.partial && partial != nil {
		*partial = true
		return nil
	}
	if a.delay > 0 {
		time.Sleep(a.delay)
	}
	return nil
}

func (c *Conn) opDone() {
	c.mu.Lock()
	c.ops++
	c.mu.Unlock()
}

func (c *Conn) kill() {
	c.mu.Lock()
	already := c.killed
	c.killed = true
	c.mu.Unlock()
	if !already {
		c.inj.forget(c)
		_ = c.Conn.Close()
	}
}

// Close closes the underlying connection and drops it from the
// injector's live set.
func (c *Conn) Close() error {
	c.mu.Lock()
	already := c.killed
	c.killed = true
	c.mu.Unlock()
	c.inj.forget(c)
	if already {
		return nil
	}
	return c.Conn.Close()
}

// listener wraps accepted connections.
type listener struct {
	net.Listener
	inj *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	for {
		conn, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		l.inj.mu.Lock()
		parted := l.inj.partitioned
		if parted {
			l.inj.stats.DialsRefused++
		}
		l.inj.mu.Unlock()
		if parted {
			_ = conn.Close()
			continue
		}
		return l.inj.WrapConn(conn), nil
	}
}
