package dra

import (
	"testing"

	"github.com/diorama/continual/internal/algebra"
	"github.com/diorama/continual/internal/delta"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/storage"
	"github.com/diorama/continual/internal/vclock"
)

// fixture wires a storage.Store into DRA inputs.
type fixture struct {
	store  *storage.Store
	lastTS vclock.Timestamp
}

func newFixture(t *testing.T, tables map[string]relation.Schema) *fixture {
	t.Helper()
	s := storage.NewStore()
	for name, schema := range tables {
		if err := s.CreateTable(name, schema); err != nil {
			t.Fatal(err)
		}
	}
	return &fixture{store: s}
}

// mark records the current time as the CQ's last execution point.
func (f *fixture) mark() { f.lastTS = f.store.Now() }

// ctx assembles the DRA context for all tables.
func (f *fixture) ctx(t *testing.T) *Context {
	t.Helper()
	deltas := make(map[string]*delta.Delta)
	for _, name := range f.store.TableNames() {
		d, err := f.store.DeltaSince(name, f.lastTS)
		if err != nil {
			t.Fatal(err)
		}
		deltas[name] = d
	}
	return &Context{
		Pre:    f.store.At(f.lastTS),
		Post:   f.store.Live(),
		Deltas: deltas,
		LastTS: f.lastTS,
	}
}

func stockSchema() relation.Schema {
	return relation.MustSchema(
		relation.Column{Name: "name", Type: relation.TString},
		relation.Column{Name: "price", Type: relation.TFloat},
	)
}

func (f *fixture) insert(t *testing.T, table string, vals ...[]relation.Value) []relation.TID {
	t.Helper()
	tx := f.store.Begin()
	tids := make([]relation.TID, 0, len(vals))
	for _, v := range vals {
		tid, err := tx.Insert(table, v)
		if err != nil {
			t.Fatal(err)
		}
		tids = append(tids, tid)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return tids
}

func sv(name string, price float64) []relation.Value {
	return []relation.Value{relation.Str(name), relation.Float(price)}
}

func (f *fixture) plan(t *testing.T, query string) algebra.Plan {
	t.Helper()
	p, err := algebra.PlanSQL(query, f.store.Live())
	if err != nil {
		t.Fatal(err)
	}
	return algebra.Optimize(p)
}

// reval runs the engine, maintains the complete result, and sanity
// checks it against full re-evaluation. prev is consumed (mutated).
func (f *fixture) reval(t *testing.T, e *Engine, plan algebra.Plan, prev *relation.Relation) (*Result, *relation.Relation) {
	t.Helper()
	ctx := f.ctx(t)
	ctx.Prev = prev
	res, err := e.Reevaluate(plan, ctx, f.store.Now())
	if err != nil {
		t.Fatalf("Reevaluate: %v", err)
	}
	complete := res.ApplyTo(prev)
	want, err := algebra.NewExecutor(f.store.Live()).Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !complete.EqualByTID(want) {
		t.Fatalf("differential result diverges from full re-evaluation.\nDRA:\n%s\nfull:\n%s", complete, want)
	}
	return res, complete
}

// TestExample2 reproduces Example 2 of the paper end to end: continual
// query σ_price>120(Stocks), base updated by transaction T of Example 1;
// the differential result must show the DEC modification (150→149, both
// above 120) and the QLI deletion, and must NOT show MAC (117 < 120).
func TestExample2(t *testing.T) {
	f := newFixture(t, map[string]relation.Schema{"stocks": stockSchema()})
	tids := f.insert(t, "stocks", sv("DEC", 150), sv("QLI", 145), sv("IBM", 75))
	decTID, qliTID := tids[0], tids[1]

	plan := f.plan(t, "SELECT * FROM stocks WHERE price > 120")
	prev, err := InitialResult(plan, f.store.Live())
	if err != nil {
		t.Fatal(err)
	}
	if prev.Len() != 2 {
		t.Fatalf("initial result len = %d, want 2 (DEC, QLI)", prev.Len())
	}
	f.mark()

	// Transaction T of Example 1.
	tx := f.store.Begin()
	if _, err := tx.Insert("stocks", sv("MAC", 117)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Update("stocks", decTID, sv("DEC", 149)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete("stocks", qliTID); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	e := NewEngine()
	res, complete := f.reval(t, e, plan, prev)

	mods := res.Modified()
	if len(mods) != 1 {
		t.Fatalf("modifications = %d, want 1 (DEC): %+v", len(mods), mods)
	}
	if mods[0].Old[1].AsFloat() != 150 || mods[0].New[1].AsFloat() != 149 {
		t.Errorf("DEC modification = %v -> %v", mods[0].Old, mods[0].New)
	}
	del := res.Deleted()
	if !del.Has(qliTID) {
		t.Errorf("QLI deletion missing:\n%s", del)
	}
	ins := res.Inserted()
	for _, tu := range ins.Tuples() {
		if tu.Values[0].AsString() == "MAC" {
			t.Error("MAC (117) must not enter the >120 result")
		}
	}
	// Post state: DEC 149 (>120), MAC 117 (no), IBM 75 (no) => 1 row.
	if complete.Len() != 1 {
		t.Fatalf("complete result len = %d, want 1 (DEC@149)", complete.Len())
	}
	// The engine must not have scanned any pre-state (pure select query).
	if res.Stats.PreTuplesScanned != 0 {
		t.Errorf("select-only DRA scanned %d pre tuples, want 0", res.Stats.PreTuplesScanned)
	}
	if res.Stats.FellBack {
		t.Error("select query should not fall back")
	}
}

func TestSelectInsertOnly(t *testing.T) {
	f := newFixture(t, map[string]relation.Schema{"stocks": stockSchema()})
	f.insert(t, "stocks", sv("A", 130))
	plan := f.plan(t, "SELECT * FROM stocks WHERE price > 120")
	prev, _ := InitialResult(plan, f.store.Live())
	f.mark()
	f.insert(t, "stocks", sv("B", 140), sv("C", 100))

	res, _ := f.reval(t, NewEngine(), plan, prev)
	if res.Inserted().Len() != 1 {
		t.Fatalf("inserted = %d, want 1:\n%s", res.Inserted().Len(), res.Inserted())
	}
	if res.Inserted().At(0).Values[0].AsString() != "B" {
		t.Errorf("inserted row = %v", res.Inserted().At(0))
	}
	if res.Deleted().Len() != 0 || len(res.Modified()) != 0 {
		t.Error("unexpected deletions/modifications")
	}
}

func TestModificationCrossesPredicateBoundary(t *testing.T) {
	f := newFixture(t, map[string]relation.Schema{"stocks": stockSchema()})
	tids := f.insert(t, "stocks", sv("UP", 100), sv("DOWN", 130))
	plan := f.plan(t, "SELECT * FROM stocks WHERE price > 120")
	prev, _ := InitialResult(plan, f.store.Live())
	f.mark()

	tx := f.store.Begin()
	_ = tx.Update("stocks", tids[0], sv("UP", 140))  // enters result
	_ = tx.Update("stocks", tids[1], sv("DOWN", 90)) // leaves result
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	res, _ := f.reval(t, NewEngine(), plan, prev)
	if res.Inserted().Len() != 1 || res.Inserted().At(0).Values[0].AsString() != "UP" {
		t.Errorf("inserted:\n%s", res.Inserted())
	}
	if res.Deleted().Len() != 1 || res.Deleted().At(0).Values[0].AsString() != "DOWN" {
		t.Errorf("deleted:\n%s", res.Deleted())
	}
	if len(res.Modified()) != 0 {
		t.Errorf("boundary-crossing updates are inserts/deletes, got mods %+v", res.Modified())
	}
}

func TestProjectionDelta(t *testing.T) {
	f := newFixture(t, map[string]relation.Schema{"stocks": stockSchema()})
	f.insert(t, "stocks", sv("A", 130))
	plan := f.plan(t, "SELECT name FROM stocks WHERE price > 120")
	prev, _ := InitialResult(plan, f.store.Live())
	f.mark()
	f.insert(t, "stocks", sv("B", 150))

	res, _ := f.reval(t, NewEngine(), plan, prev)
	if res.Inserted().Len() != 1 {
		t.Fatalf("inserted = %d", res.Inserted().Len())
	}
	if got := res.Inserted().At(0).Values; len(got) != 1 || got[0].AsString() != "B" {
		t.Errorf("projected insert = %v", got)
	}
}

func TestIrrelevantUpdatesSkipped(t *testing.T) {
	f := newFixture(t, map[string]relation.Schema{"stocks": stockSchema()})
	f.insert(t, "stocks", sv("A", 130))
	plan := f.plan(t, "SELECT * FROM stocks WHERE price > 120")
	prev, _ := InitialResult(plan, f.store.Live())
	f.mark()
	// Updates entirely below the predicate: irrelevant to the CQ.
	f.insert(t, "stocks", sv("LOW1", 10), sv("LOW2", 20))

	e := NewEngine()
	res, _ := f.reval(t, e, plan, prev)
	if !res.Stats.Skipped {
		t.Error("irrelevant updates should be skipped (Section 5.2)")
	}
	if res.Delta.Len() != 0 {
		t.Errorf("skip produced a change: %+v", res.Delta.Rows())
	}
	// With the refinement disabled the result is the same, just not skipped.
	e2 := NewEngine()
	e2.SkipIrrelevant = false
	res2, _ := f.reval(t, e2, plan, prev)
	if res2.Stats.Skipped {
		t.Error("Skipped should be false when refinement disabled")
	}
	if res2.Delta.Len() != 0 {
		t.Error("result must be empty either way")
	}
}

func TestJoinDeltaSingleChangedOperand(t *testing.T) {
	tradeSchema := relation.MustSchema(
		relation.Column{Name: "sym", Type: relation.TString},
		relation.Column{Name: "volume", Type: relation.TInt},
	)
	f := newFixture(t, map[string]relation.Schema{"stocks": stockSchema(), "trades": tradeSchema})
	f.insert(t, "stocks", sv("DEC", 150), sv("IBM", 75))
	f.insert(t, "trades",
		[]relation.Value{relation.Str("DEC"), relation.Int(100)},
		[]relation.Value{relation.Str("IBM"), relation.Int(200)},
	)
	plan := f.plan(t, "SELECT * FROM stocks s JOIN trades t ON s.name = t.sym")
	prev, _ := InitialResult(plan, f.store.Live())
	if prev.Len() != 2 {
		t.Fatalf("initial join len = %d", prev.Len())
	}
	f.mark()

	// One new trade for IBM: exactly one truth-table term (Δtrades ⋈ stocks).
	f.insert(t, "trades", []relation.Value{relation.Str("IBM"), relation.Int(50)})

	e := NewEngine()
	res, _ := f.reval(t, e, plan, prev)
	if res.Inserted().Len() != 1 {
		t.Fatalf("inserted = %d:\n%s", res.Inserted().Len(), res.Inserted())
	}
	if res.Stats.Terms != 1 {
		t.Errorf("terms = %d, want 1 (single changed operand)", res.Stats.Terms)
	}
}

func TestJoinDeltaBothOperandsChanged(t *testing.T) {
	tradeSchema := relation.MustSchema(
		relation.Column{Name: "sym", Type: relation.TString},
		relation.Column{Name: "volume", Type: relation.TInt},
	)
	f := newFixture(t, map[string]relation.Schema{"stocks": stockSchema(), "trades": tradeSchema})
	stockTIDs := f.insert(t, "stocks", sv("DEC", 150), sv("IBM", 75))
	f.insert(t, "trades",
		[]relation.Value{relation.Str("DEC"), relation.Int(100)},
		[]relation.Value{relation.Str("IBM"), relation.Int(200)},
	)
	plan := f.plan(t, "SELECT * FROM stocks s JOIN trades t ON s.name = t.sym")
	prev, _ := InitialResult(plan, f.store.Live())
	f.mark()

	// Modify a stock and insert a trade for it: 3 truth-table terms.
	tx := f.store.Begin()
	_ = tx.Update("stocks", stockTIDs[1], sv("IBM", 80))
	_, _ = tx.Insert("trades", []relation.Value{relation.Str("IBM"), relation.Int(10)})
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	e := NewEngine()
	res, _ := f.reval(t, e, plan, prev)
	if res.Stats.Terms != 3 {
		t.Errorf("terms = %d, want 3 (2^2-1)", res.Stats.Terms)
	}
	// IBM@80 joined with old trade (modification) and with new trade
	// (insertion).
	if len(res.Modified()) != 1 {
		t.Errorf("modifications = %d, want 1: %+v", len(res.Modified()), res.Modified())
	}
	if res.Inserted().Len() != 2 { // new-trade join row + new half of modification
		t.Errorf("insertions view = %d, want 2:\n%s", res.Inserted().Len(), res.Inserted())
	}
}

func TestThreeWayJoinDelta(t *testing.T) {
	a := relation.MustSchema(relation.Column{Name: "x", Type: relation.TInt}, relation.Column{Name: "tag", Type: relation.TString})
	b := relation.MustSchema(relation.Column{Name: "x", Type: relation.TInt}, relation.Column{Name: "y", Type: relation.TInt})
	c := relation.MustSchema(relation.Column{Name: "y", Type: relation.TInt}, relation.Column{Name: "name", Type: relation.TString})
	f := newFixture(t, map[string]relation.Schema{"a": a, "b": b, "c": c})
	iv := func(vals ...any) []relation.Value {
		out := make([]relation.Value, len(vals))
		for i, v := range vals {
			switch x := v.(type) {
			case int:
				out[i] = relation.Int(int64(x))
			case string:
				out[i] = relation.Str(x)
			}
		}
		return out
	}
	f.insert(t, "a", iv(1, "a1"), iv(2, "a2"))
	f.insert(t, "b", iv(1, 10), iv(2, 20))
	f.insert(t, "c", iv(10, "c10"), iv(20, "c20"))

	plan := f.plan(t, "SELECT * FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y")
	prev, _ := InitialResult(plan, f.store.Live())
	if prev.Len() != 2 {
		t.Fatalf("initial 3-way join = %d", prev.Len())
	}
	f.mark()

	// Change a and c (not b): 3 terms over k=2 changed operands.
	tx := f.store.Begin()
	_, _ = tx.Insert("a", iv(3, "a3"))
	_, _ = tx.Insert("b", iv(3, 30))
	_, _ = tx.Insert("c", iv(30, "c30"))
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	e := NewEngine()
	res, _ := f.reval(t, e, plan, prev)
	if res.Stats.Terms != 7 {
		t.Errorf("terms = %d, want 7 (2^3-1)", res.Stats.Terms)
	}
	if res.Inserted().Len() != 1 {
		t.Errorf("inserted = %d:\n%s", res.Inserted().Len(), res.Inserted())
	}
}

func TestAggregateFallsBackToPropagate(t *testing.T) {
	f := newFixture(t, map[string]relation.Schema{"accounts": relation.MustSchema(
		relation.Column{Name: "owner", Type: relation.TString},
		relation.Column{Name: "amount", Type: relation.TFloat},
	)})
	f.insert(t, "accounts",
		[]relation.Value{relation.Str("alice"), relation.Float(100)},
		[]relation.Value{relation.Str("bob"), relation.Float(200)},
	)
	plan := f.plan(t, "SELECT SUM(amount) AS total FROM accounts")
	prev, _ := InitialResult(plan, f.store.Live())
	f.mark()
	f.insert(t, "accounts", []relation.Value{relation.Str("carol"), relation.Float(50)})

	e := NewEngine()
	res, complete := f.reval(t, e, plan, prev)
	if !res.Stats.FellBack {
		t.Error("aggregate should fall back to Propagate")
	}
	if complete.Len() != 1 || complete.At(0).Values[0].AsFloat() != 350 {
		t.Errorf("sum = %v", complete.At(0).Values)
	}
	// The change shows as a modification of the single aggregate row.
	if len(res.Modified()) != 1 {
		t.Errorf("aggregate change should be one modification, got %+v", res.Delta.Rows())
	}
}

func TestReevaluateRequiresPrev(t *testing.T) {
	f := newFixture(t, map[string]relation.Schema{"stocks": stockSchema()})
	plan := f.plan(t, "SELECT * FROM stocks WHERE price > 120")
	ctx := f.ctx(t)
	if _, err := NewEngine().Reevaluate(plan, ctx, 1); err != ErrNoPrev {
		t.Errorf("err = %v, want ErrNoPrev", err)
	}
}

func TestPropagateMatchesExample2Arithmetic(t *testing.T) {
	// Propagate(σ_price>120) over Example 1's transaction.
	pre := relation.New(stockSchema())
	_ = pre.Insert(relation.Tuple{TID: 1, Values: sv("DEC", 150)})
	_ = pre.Insert(relation.Tuple{TID: 2, Values: sv("QLI", 145)})
	post := relation.New(stockSchema())
	_ = post.Insert(relation.Tuple{TID: 1, Values: sv("DEC", 149)})
	_ = post.Insert(relation.Tuple{TID: 3, Values: sv("MAC", 117)})

	cat := algebra.MapSource{"stocks": pre}
	plan, err := algebra.PlanSQL("SELECT * FROM stocks WHERE price > 120", catalogFor(pre))
	if err != nil {
		t.Fatal(err)
	}
	d, err := Propagate(plan, algebra.MapSource{"stocks": pre}, algebra.MapSource{"stocks": post}, 5)
	if err != nil {
		t.Fatal(err)
	}
	_ = cat
	ins, del, mod := d.Counts()
	if ins != 0 || del != 1 || mod != 1 {
		t.Errorf("propagate counts = %d/%d/%d, want 0/1/1 (QLI deleted, DEC modified)", ins, del, mod)
	}
}

// catalogFor builds a one-table catalog from a relation for planning.
type relCatalog struct{ rel *relation.Relation }

func (c relCatalog) Schema(string) (relation.Schema, error) { return c.rel.Schema(), nil }

func catalogFor(r *relation.Relation) relCatalog { return relCatalog{rel: r} }

// TestSelfJoinDelta exercises the same base table appearing as two join
// operands: both operands share the same differential relation, and the
// truth table must still produce the exact change.
func TestSelfJoinDelta(t *testing.T) {
	f := newFixture(t, map[string]relation.Schema{"stocks": stockSchema()})
	f.insert(t, "stocks", sv("DEC", 150), sv("IBM", 75), sv("MAC", 117))
	// Pairs of distinct stocks with equal prices... use name equality for
	// a self-match: every row pairs with itself.
	plan := f.plan(t, "SELECT * FROM stocks a JOIN stocks b ON a.name = b.name WHERE a.price > 100")
	prev, err := InitialResult(plan, f.store.Live())
	if err != nil {
		t.Fatal(err)
	}
	if prev.Len() != 2 { // DEC and MAC pair with themselves
		t.Fatalf("initial self-join = %d, want 2", prev.Len())
	}
	f.mark()

	f.insert(t, "stocks", sv("SUN", 130))
	e := NewEngine()
	res, complete := f.reval(t, e, plan, prev)
	if res.Inserted().Len() != 1 {
		t.Errorf("self-join insert = %d:\n%s", res.Inserted().Len(), res.Inserted())
	}
	if complete.Len() != 3 {
		t.Errorf("self-join complete = %d", complete.Len())
	}
}

// TestCrossProductDelta exercises a join with no equi predicate.
func TestCrossProductDelta(t *testing.T) {
	a := relation.MustSchema(relation.Column{Name: "x", Type: relation.TInt})
	b := relation.MustSchema(relation.Column{Name: "y", Type: relation.TInt})
	f := newFixture(t, map[string]relation.Schema{"l": a, "r": b})
	f.insert(t, "l", []relation.Value{relation.Int(1)}, []relation.Value{relation.Int(2)})
	f.insert(t, "r", []relation.Value{relation.Int(10)})
	plan := f.plan(t, "SELECT * FROM l, r")
	prev, _ := InitialResult(plan, f.store.Live())
	if prev.Len() != 2 {
		t.Fatalf("initial cross = %d", prev.Len())
	}
	f.mark()
	f.insert(t, "r", []relation.Value{relation.Int(20)})
	res, complete := f.reval(t, NewEngine(), plan, prev)
	if res.Inserted().Len() != 2 || complete.Len() != 4 {
		t.Errorf("cross delta: +%d, complete %d", res.Inserted().Len(), complete.Len())
	}
}

// TestNonEquiJoinDelta exercises a residual (non-equi) join predicate in
// the differential terms.
func TestNonEquiJoinDelta(t *testing.T) {
	a := relation.MustSchema(relation.Column{Name: "x", Type: relation.TInt})
	b := relation.MustSchema(relation.Column{Name: "y", Type: relation.TInt})
	f := newFixture(t, map[string]relation.Schema{"l": a, "r": b})
	f.insert(t, "l", []relation.Value{relation.Int(5)})
	f.insert(t, "r", []relation.Value{relation.Int(3)}, []relation.Value{relation.Int(7)})
	plan := f.plan(t, "SELECT * FROM l JOIN r ON l.x > r.y")
	prev, _ := InitialResult(plan, f.store.Live())
	if prev.Len() != 1 { // (5,3)
		t.Fatalf("initial non-equi = %d", prev.Len())
	}
	f.mark()
	f.insert(t, "l", []relation.Value{relation.Int(10)})
	res, complete := f.reval(t, NewEngine(), plan, prev)
	if res.Inserted().Len() != 2 { // (10,3) and (10,7)
		t.Errorf("non-equi delta = %d:\n%s", res.Inserted().Len(), res.Inserted())
	}
	_ = complete
}
