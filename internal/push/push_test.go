package push

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/diorama/continual/internal/obs"
	"github.com/diorama/continual/internal/storage"
	"github.com/diorama/continual/internal/vclock"
)

// event builds a CommitEvent touching the given tables.
func event(ts vclock.Timestamp, tables ...string) storage.CommitEvent {
	ev := storage.CommitEvent{TS: ts, At: time.Now()}
	for _, t := range tables {
		ev.Changes = append(ev.Changes, storage.TableChange{Table: t, Rows: 1})
	}
	return ev
}

// TestRoutesOnlyAffectedCQs checks the operand inverted index: a commit
// dispatches exactly the CQs whose tables it touched.
func TestRoutesOnlyAffectedCQs(t *testing.T) {
	var mu sync.Mutex
	got := map[string]int{}
	r := NewRouter(Config{Workers: 1}, func(name string) (bool, bool, error) {
		mu.Lock()
		got[name]++
		mu.Unlock()
		return true, false, nil
	})
	defer r.Close()
	r.Register("a", []string{"t1"}, nil)
	r.Register("b", []string{"t2"}, nil)
	r.Register("ab", []string{"t1", "t2"}, nil)

	r.Publish(event(1, "t1"))
	r.Flush()
	mu.Lock()
	if got["a"] != 1 || got["b"] != 0 || got["ab"] != 1 {
		t.Fatalf("after t1 commit: %v", got)
	}
	mu.Unlock()

	// One commit touching both operands of "ab" must dispatch it once,
	// not twice.
	r.Publish(event(2, "t1", "t2"))
	r.Flush()
	mu.Lock()
	defer mu.Unlock()
	if got["a"] != 2 || got["b"] != 1 || got["ab"] != 2 {
		t.Fatalf("after t1+t2 commit: %v", got)
	}
}

// TestCoalescesBurstIntoOneDispatch blocks the single worker and
// publishes a burst: the queued entry must absorb every later commit so
// one refresh covers them all.
func TestCoalescesBurstIntoOneDispatch(t *testing.T) {
	reg := obs.NewRegistry()
	block := make(chan struct{})
	var calls atomic.Int64
	r := NewRouter(Config{Workers: 1, Metrics: reg}, func(name string) (bool, bool, error) {
		if calls.Add(1) == 1 {
			<-block
		}
		return true, false, nil
	})
	defer r.Close()
	r.Register("q", []string{"t"}, nil)
	r.Register("decoy", []string{"t"}, nil)

	// First commit occupies the worker (one of the two entries blocks);
	// the rest coalesce into the queued entries.
	for ts := 1; ts <= 10; ts++ {
		r.Publish(event(vclock.Timestamp(ts), "t"))
	}
	close(block)
	r.Flush()

	snap := reg.Snapshot()
	routed := snap.Counter("push.routed")
	dispatches := snap.Counter("push.dispatches")
	commits := snap.Counter("push.dispatched_commits")
	if routed != 20 {
		t.Fatalf("routed = %d, want 20 (10 commits x 2 CQs)", routed)
	}
	if commits != routed {
		t.Fatalf("dispatched_commits = %d, want %d: no routing may be lost", commits, routed)
	}
	// The blocked worker guarantees real coalescing: far fewer dispatches
	// than routings (at most one in-flight + one queued per CQ).
	if dispatches > 6 {
		t.Fatalf("dispatches = %d, want <= 6 under a blocked worker", dispatches)
	}
	if snap.Counter("push.coalesced") != commits-dispatches {
		t.Fatalf("coalesced = %d, want routed-dispatches = %d",
			snap.Counter("push.coalesced"), commits-dispatches)
	}
}

// TestOverflowFallsBackWithoutBlocking fills the 1-slot queue while the
// worker is blocked: further publishes must return immediately and count
// overflows instead of queueing or blocking (the poll loop owns them).
func TestOverflowFallsBackWithoutBlocking(t *testing.T) {
	reg := obs.NewRegistry()
	block := make(chan struct{})
	r := NewRouter(Config{Workers: 1, Queue: 1, Metrics: reg}, func(name string) (bool, bool, error) {
		<-block
		return true, false, nil
	})
	r.Register("a", []string{"t"}, nil)
	r.Register("b", []string{"t"}, nil)
	r.Register("c", []string{"t"}, nil)

	done := make(chan struct{})
	go func() {
		// 3 CQs, 1 worker slot + 1 queue slot: the third entry overflows.
		r.Publish(event(1, "t"))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Publish blocked on a full queue")
	}
	// Give the worker time to pick up the first entry, then drain.
	close(block)
	r.Flush()
	r.Close()

	snap := reg.Snapshot()
	if snap.Counter("push.overflows") < 1 {
		t.Fatalf("overflows = %d, want >= 1", snap.Counter("push.overflows"))
	}
	if d := snap.Counter("push.dispatches"); d < 1 || d > 2 {
		t.Fatalf("dispatches = %d, want 1 or 2", d)
	}
}

// TestRetireUnregisters checks that a dispatch reporting retire removes
// the CQ from the index so later commits stop routing to it.
func TestRetireUnregisters(t *testing.T) {
	var calls atomic.Int64
	r := NewRouter(Config{Workers: 1}, func(name string) (bool, bool, error) {
		calls.Add(1)
		return false, true, nil
	})
	defer r.Close()
	r.Register("q", []string{"t"}, nil)
	r.Publish(event(1, "t"))
	r.Flush()
	if calls.Load() != 1 {
		t.Fatalf("calls = %d, want 1", calls.Load())
	}
	r.Publish(event(2, "t"))
	r.Flush()
	if calls.Load() != 1 {
		t.Fatalf("calls = %d after retire, want still 1", calls.Load())
	}
}

// TestReregisterReplacesTables checks Register's replace semantics and
// Unregister's index cleanup.
func TestReregisterReplacesTables(t *testing.T) {
	var mu sync.Mutex
	got := map[string]int{}
	r := NewRouter(Config{Workers: 1}, func(name string) (bool, bool, error) {
		mu.Lock()
		got[name]++
		mu.Unlock()
		return true, false, nil
	})
	defer r.Close()
	r.Register("q", []string{"t1"}, nil)
	r.Register("q", []string{"t2"}, nil) // replaces, does not extend
	r.Publish(event(1, "t1"))
	r.Publish(event(2, "t2"))
	r.Flush()
	mu.Lock()
	if got["q"] != 1 {
		mu.Unlock()
		t.Fatalf("dispatches = %d, want 1 (t1 binding replaced)", got["q"])
	}
	mu.Unlock()
	r.Unregister("q")
	r.Publish(event(3, "t2"))
	r.Flush()
	mu.Lock()
	defer mu.Unlock()
	if got["q"] != 1 {
		t.Fatalf("dispatches = %d after Unregister, want 1", got["q"])
	}
}

// TestCloseDrainsPending ensures Close dispatches everything already
// queued before stopping the workers, and that publishing after Close is
// a safe no-op.
func TestCloseDrainsPending(t *testing.T) {
	var calls atomic.Int64
	gate := make(chan struct{})
	r := NewRouter(Config{Workers: 1}, func(name string) (bool, bool, error) {
		<-gate
		calls.Add(1)
		return true, false, nil
	})
	for i, name := range []string{"a", "b", "c"} {
		r.Register(name, []string{"t"}, nil)
		_ = i
	}
	r.Publish(event(1, "t"))
	close(gate)
	r.Close()
	if calls.Load() != 3 {
		t.Fatalf("calls = %d, want 3: Close must drain the queue", calls.Load())
	}
	r.Publish(event(2, "t")) // must not panic on the closed queue
	r.Close()                // idempotent
}

// TestFlushWaitsForInFlight verifies Flush is a quiescence barrier: it
// returns only after in-flight dispatches complete.
func TestFlushWaitsForInFlight(t *testing.T) {
	release := make(chan struct{})
	var done atomic.Bool
	r := NewRouter(Config{Workers: 2}, func(name string) (bool, bool, error) {
		<-release
		done.Store(true)
		return true, false, nil
	})
	defer r.Close()
	r.Register("q", []string{"t"}, nil)
	r.Publish(event(1, "t"))

	flushed := make(chan struct{})
	go func() {
		r.Flush()
		close(flushed)
	}()
	select {
	case <-flushed:
		t.Fatal("Flush returned while a dispatch was in flight")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case <-flushed:
	case <-time.After(2 * time.Second):
		t.Fatal("Flush never returned")
	}
	if !done.Load() {
		t.Fatal("dispatch did not run")
	}
}

// TestShedsWholeEventUnderOverload: a commit carrying a soft-or-worse
// overload level is not routed at all — degraded mode coalesces
// refreshes into the relaxed poll loop instead of amplifying load.
func TestShedsWholeEventUnderOverload(t *testing.T) {
	reg := obs.NewRegistry()
	var calls atomic.Int64
	r := NewRouter(Config{Workers: 1, Metrics: reg}, func(name string) (bool, bool, error) {
		calls.Add(1)
		return true, false, nil
	})
	defer r.Close()
	r.Register("q", []string{"t"}, nil)

	for _, lvl := range []storage.OverloadLevel{storage.OverloadSoft, storage.OverloadHard} {
		ev := event(1, "t")
		ev.Overload = lvl
		r.Publish(ev)
	}
	r.Flush()
	if n := calls.Load(); n != 0 {
		t.Fatalf("overloaded events dispatched %d refreshes", n)
	}
	if shed := reg.Snapshot().Counters["push.shed"]; shed != 2 {
		t.Fatalf("push.shed = %d", shed)
	}

	// Normal events still route.
	r.Publish(event(2, "t"))
	r.Flush()
	if n := calls.Load(); n != 1 {
		t.Fatalf("post-overload dispatches = %d", n)
	}
}

// TestGateSkipsRouting: a CQ whose gate reports false (quarantined) is
// not enqueued; the others on the same table still are.
func TestGateSkipsRouting(t *testing.T) {
	reg := obs.NewRegistry()
	var mu sync.Mutex
	got := map[string]int{}
	r := NewRouter(Config{Workers: 1, Metrics: reg}, func(name string) (bool, bool, error) {
		mu.Lock()
		got[name]++
		mu.Unlock()
		return true, false, nil
	})
	defer r.Close()
	var open atomic.Bool
	r.Register("gated", []string{"t"}, func() bool { return open.Load() })
	r.Register("free", []string{"t"}, nil)

	r.Publish(event(1, "t"))
	r.Flush()
	mu.Lock()
	if got["gated"] != 0 || got["free"] != 1 {
		t.Fatalf("closed gate: %v", got)
	}
	mu.Unlock()
	if skips := reg.Snapshot().Counters["push.gate_skips"]; skips != 1 {
		t.Fatalf("push.gate_skips = %d", skips)
	}

	// Reopening the gate resumes routing (probe admitted again).
	open.Store(true)
	r.Publish(event(2, "t"))
	r.Flush()
	mu.Lock()
	defer mu.Unlock()
	if got["gated"] != 1 || got["free"] != 2 {
		t.Fatalf("open gate: %v", got)
	}
}
