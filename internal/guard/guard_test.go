package guard

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestProtectPassesThrough(t *testing.T) {
	want := errors.New("boom")
	if err := Protect(func() error { return want }); err != want {
		t.Fatalf("err = %v, want %v", err, want)
	}
	if err := Protect(func() error { return nil }); err != nil {
		t.Fatalf("err = %v, want nil", err)
	}
}

func TestProtectRecoversPanic(t *testing.T) {
	err := Protect(func() error { panic("kaboom") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Value != "kaboom" {
		t.Fatalf("panic value = %v", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "guard") {
		t.Fatalf("stack missing frames: %q", pe.Stack)
	}
}

func TestAttemptNoBudgetRunsInline(t *testing.T) {
	var inline bool
	err := Attempt(0, func() error { inline = true; return nil }, nil)
	if err != nil || !inline {
		t.Fatalf("err=%v inline=%v", err, inline)
	}
}

func TestAttemptWithinBudget(t *testing.T) {
	want := errors.New("refresh failed")
	if err := Attempt(time.Second, func() error { return want }, nil); !errors.Is(err, want) {
		t.Fatalf("err = %v, want %v", err, want)
	}
}

func TestAttemptBudgetExceeded(t *testing.T) {
	release := make(chan struct{})
	lateCh := make(chan error, 1)
	err := Attempt(5*time.Millisecond, func() error {
		<-release
		return errors.New("finished late")
	}, func(late error) { lateCh <- late })
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	close(release)
	select {
	case late := <-lateCh:
		if late == nil || late.Error() != "finished late" {
			t.Fatalf("late = %v", late)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("late callback never ran")
	}
}

func TestAttemptPanicUnderBudget(t *testing.T) {
	err := Attempt(time.Second, func() error { panic(42) }, nil)
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != 42 {
		t.Fatalf("err = %v", err)
	}
}

// fakeClock drives breaker deadlines deterministically.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func testBreaker(threshold int) (*Breaker, *fakeClock) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	b := NewBreaker(Policy{
		FailureThreshold: threshold,
		BackoffBase:      time.Second,
		BackoffMax:       8 * time.Second,
		Jitter:           -1, // Jitter<=0 resolves to default; use explicit tiny value
		Now:              clk.Now,
	}, 1)
	// Deterministic deadlines: strip jitter after construction.
	b.pol.Jitter = 0
	return b, clk
}

func TestBreakerLifecycle(t *testing.T) {
	b, clk := testBreaker(3)

	// Healthy: always allowed, failures below threshold keep it so.
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatal("healthy breaker refused")
		}
		if b.Failure() {
			t.Fatalf("failure %d quarantined early", i+1)
		}
	}
	if st := b.State(); st != Healthy {
		t.Fatalf("state = %v, want healthy", st)
	}

	// Third consecutive failure trips it.
	if !b.Failure() {
		t.Fatal("threshold failure did not quarantine")
	}
	if st := b.State(); st != Quarantined {
		t.Fatalf("state = %v, want quarantined", st)
	}
	if b.Allow() {
		t.Fatal("quarantined breaker allowed a refresh")
	}
	if !b.Blocked() {
		t.Fatal("Blocked() = false while quarantined")
	}

	// Past the deadline: exactly one probe.
	clk.Advance(time.Second)
	if st := b.State(); st != Probation {
		t.Fatalf("state = %v, want probation", st)
	}
	if b.Blocked() {
		t.Fatal("Blocked() = true at probe time")
	}
	if !b.Allow() {
		t.Fatal("probe refused")
	}
	if b.Allow() {
		t.Fatal("second concurrent probe admitted")
	}

	// Failed probe doubles the backoff.
	if !b.Failure() {
		t.Fatal("failed probe did not re-quarantine")
	}
	if b.Allow() {
		t.Fatal("allowed right after failed probe")
	}
	clk.Advance(time.Second)
	if b.Allow() {
		t.Fatal("backoff did not double after failed probe")
	}
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe refused after doubled backoff")
	}

	// Successful probe heals completely.
	b.Success()
	if st := b.State(); st != Healthy {
		t.Fatalf("state = %v, want healthy", st)
	}
	if b.Failures() != 0 {
		t.Fatalf("failures = %d after success", b.Failures())
	}
	if !b.Allow() {
		t.Fatal("healed breaker refused")
	}
}

func TestBreakerBackoffCap(t *testing.T) {
	b, clk := testBreaker(1)
	// Trip repeatedly; backoff 1s,2s,4s,8s,8s (capped).
	b.Failure()
	for i, want := range []time.Duration{time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second, 8 * time.Second} {
		clk.Advance(want - time.Millisecond)
		if b.Allow() {
			t.Fatalf("trip %d: allowed %v early", i, time.Millisecond)
		}
		clk.Advance(time.Millisecond)
		if !b.Allow() {
			t.Fatalf("trip %d: probe refused at deadline", i)
		}
		b.Failure()
	}
}

func TestBreakerRelease(t *testing.T) {
	b, clk := testBreaker(1)
	b.Failure()
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe refused")
	}
	// Trigger did not fire; without Release the breaker would be stuck
	// probing forever.
	b.Release()
	if !b.Allow() {
		t.Fatal("probe slot not released")
	}
}

func TestBreakerDisabled(t *testing.T) {
	b, _ := testBreaker(-1)
	for i := 0; i < 10; i++ {
		if b.Failure() {
			t.Fatal("disabled breaker quarantined")
		}
	}
	if !b.Allow() || b.State() != Healthy {
		t.Fatal("disabled breaker must stay healthy")
	}
	if b.Failures() != 10 {
		t.Fatalf("failures = %d, want 10", b.Failures())
	}
}

func TestBreakerSeedProbation(t *testing.T) {
	b, _ := testBreaker(3)
	b.SeedProbation()
	if st := b.State(); st != Probation {
		t.Fatalf("state = %v, want probation", st)
	}
	if !b.Allow() {
		t.Fatal("seeded probation must admit an immediate probe")
	}
	if b.Allow() {
		t.Fatal("second probe admitted")
	}
	b.Success()
	if st := b.State(); st != Healthy {
		t.Fatalf("state = %v after successful probe", st)
	}
}

func TestHealthStrings(t *testing.T) {
	for _, h := range []Health{Healthy, Probation, Quarantined} {
		if ParseHealth(h.String()) != h {
			t.Fatalf("round trip failed for %v", h)
		}
	}
	if ParseHealth("garbage") != Healthy {
		t.Fatal("unknown health must parse as healthy")
	}
}
