package sql

import (
	"fmt"
	"strings"
)

// String renders the statement back to parsable SQL text. The rendering
// is canonical (explicit parentheses, upper-case keywords) and
// round-trips through ParseSelect: the durable CQ registry persists
// queries as text and re-parses them at recovery, so render → parse →
// render must reach a fixed point.
func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		if it.Star {
			b.WriteString("*")
			continue
		}
		b.WriteString(it.Expr.String())
		if it.Alias != "" {
			b.WriteString(" AS ")
			b.WriteString(it.Alias)
		}
	}
	if s.Into != "" {
		b.WriteString(" INTO ")
		b.WriteString(s.Into)
	}
	if len(s.From) > 0 {
		b.WriteString(" FROM ")
		for i, ref := range s.From {
			if i > 0 {
				if ref.On != nil {
					b.WriteString(" JOIN ")
				} else {
					b.WriteString(", ")
				}
			}
			b.WriteString(ref.Table)
			if ref.Alias != "" {
				b.WriteString(" AS ")
				b.WriteString(ref.Alias)
			}
			if i > 0 && ref.On != nil {
				b.WriteString(" ON ")
				b.WriteString(ref.On.String())
			}
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, e := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(e.String())
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING ")
		b.WriteString(s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Expr.String())
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	return b.String()
}
