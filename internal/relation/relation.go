package relation

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// TID is a stable tuple identifier. Base tuples receive tids from the
// storage engine's allocator; derived tuples receive provenance-hashed
// tids so that Diff over query results is well defined (Section 4.1).
type TID uint64

// Tuple is a row with identity.
type Tuple struct {
	TID    TID
	Values []Value
}

// Clone deep-copies the tuple.
func (t Tuple) Clone() Tuple {
	vs := make([]Value, len(t.Values))
	copy(vs, t.Values)
	return Tuple{TID: t.TID, Values: vs}
}

// HashTID derives a tid for a computed tuple from its values. Collisions
// merely merge identical rows, which is harmless under set semantics.
func HashTID(vs []Value) TID { return TID(HashValues(vs)) }

// Errors returned by Relation mutators.
var (
	ErrArity        = errors.New("relation: tuple arity does not match schema")
	ErrDuplicateTID = errors.New("relation: duplicate tid")
	ErrNoSuchTID    = errors.New("relation: no such tid")
	ErrSchema       = errors.New("relation: incompatible schemas")
)

// Relation is a materialized relation: an ordered multiset of tuples with
// unique tids and a tid index. It is not safe for concurrent mutation.
type Relation struct {
	schema Schema
	tuples []Tuple
	byTID  map[TID]int // tid -> position in tuples
}

// New creates an empty relation with the given schema.
func New(schema Schema) *Relation {
	return &Relation{schema: schema, byTID: make(map[TID]int)}
}

// Schema returns the relation's schema.
func (r *Relation) Schema() Schema { return r.schema }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Tuples exposes the backing slice for read-only iteration. Callers must
// not mutate it; use Clone for an owned copy.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// At returns the i-th tuple (in insertion order).
func (r *Relation) At(i int) Tuple { return r.tuples[i] }

// Lookup returns the tuple with the given tid.
func (r *Relation) Lookup(tid TID) (Tuple, bool) {
	i, ok := r.byTID[tid]
	if !ok {
		return Tuple{}, false
	}
	return r.tuples[i], true
}

// Has reports whether the tid is present.
func (r *Relation) Has(tid TID) bool {
	_, ok := r.byTID[tid]
	return ok
}

// Insert adds a tuple. The tid must be fresh and the arity must match.
func (r *Relation) Insert(t Tuple) error {
	if len(t.Values) != r.schema.Len() {
		return fmt.Errorf("%w: got %d values, schema has %d columns", ErrArity, len(t.Values), r.schema.Len())
	}
	if _, dup := r.byTID[t.TID]; dup {
		return fmt.Errorf("%w: %d", ErrDuplicateTID, t.TID)
	}
	r.byTID[t.TID] = len(r.tuples)
	r.tuples = append(r.tuples, t)
	return nil
}

// Upsert inserts the tuple, replacing any existing tuple with the same tid.
func (r *Relation) Upsert(t Tuple) error {
	if len(t.Values) != r.schema.Len() {
		return fmt.Errorf("%w: got %d values, schema has %d columns", ErrArity, len(t.Values), r.schema.Len())
	}
	if i, ok := r.byTID[t.TID]; ok {
		r.tuples[i] = t
		return nil
	}
	return r.Insert(t)
}

// Update replaces the values of an existing tuple.
func (r *Relation) Update(tid TID, values []Value) error {
	if len(values) != r.schema.Len() {
		return fmt.Errorf("%w: got %d values, schema has %d columns", ErrArity, len(values), r.schema.Len())
	}
	i, ok := r.byTID[tid]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchTID, tid)
	}
	r.tuples[i].Values = values
	return nil
}

// Delete removes the tuple with the given tid (swap-remove; order is not
// preserved after a delete).
func (r *Relation) Delete(tid TID) error {
	i, ok := r.byTID[tid]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchTID, tid)
	}
	last := len(r.tuples) - 1
	if i != last {
		r.tuples[i] = r.tuples[last]
		r.byTID[r.tuples[i].TID] = i
	}
	r.tuples = r.tuples[:last]
	delete(r.byTID, tid)
	return nil
}

// Clone deep-copies the relation.
func (r *Relation) Clone() *Relation {
	out := &Relation{
		schema: r.schema,
		tuples: make([]Tuple, len(r.tuples)),
		byTID:  make(map[TID]int, len(r.byTID)),
	}
	for i, t := range r.tuples {
		out.tuples[i] = t.Clone()
		out.byTID[t.TID] = i
	}
	return out
}

// Union returns r ∪ o by tid (set semantics on tid). Schemas must be
// type-compatible.
func (r *Relation) Union(o *Relation) (*Relation, error) {
	if !r.schema.TypesEqual(o.schema) {
		return nil, fmt.Errorf("%w: %s vs %s", ErrSchema, r.schema, o.schema)
	}
	out := r.Clone()
	for _, t := range o.tuples {
		if !out.Has(t.TID) {
			if err := out.Insert(t.Clone()); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// Minus returns r − o by tid.
func (r *Relation) Minus(o *Relation) (*Relation, error) {
	if !r.schema.TypesEqual(o.schema) {
		return nil, fmt.Errorf("%w: %s vs %s", ErrSchema, r.schema, o.schema)
	}
	out := New(r.schema)
	for _, t := range r.tuples {
		if !o.Has(t.TID) {
			if err := out.Insert(t.Clone()); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// Intersect returns r ∩ o by tid.
func (r *Relation) Intersect(o *Relation) (*Relation, error) {
	if !r.schema.TypesEqual(o.schema) {
		return nil, fmt.Errorf("%w: %s vs %s", ErrSchema, r.schema, o.schema)
	}
	out := New(r.schema)
	for _, t := range r.tuples {
		if o.Has(t.TID) {
			if err := out.Insert(t.Clone()); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// EqualContents reports whether two relations hold the same tuples,
// compared by value (ignoring tids and order). It implements bag equality
// via sorted comparison.
func (r *Relation) EqualContents(o *Relation) bool {
	if r.Len() != o.Len() || !r.schema.TypesEqual(o.schema) {
		return false
	}
	a := sortedKeys(r)
	b := sortedKeys(o)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortedKeys(r *Relation) []uint64 {
	keys := make([]uint64, r.Len())
	for i, t := range r.tuples {
		keys[i] = HashValues(t.Values)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// EqualByTID reports whether two relations contain exactly the same tids
// with equal values.
func (r *Relation) EqualByTID(o *Relation) bool {
	if r.Len() != o.Len() {
		return false
	}
	for _, t := range r.tuples {
		ot, ok := o.Lookup(t.TID)
		if !ok || len(ot.Values) != len(t.Values) {
			return false
		}
		for i := range t.Values {
			if !t.Values[i].Equal(ot.Values[i]) {
				return false
			}
		}
	}
	return true
}

// SortByTID orders tuples by tid in place; useful for deterministic output.
func (r *Relation) SortByTID() {
	sort.Slice(r.tuples, func(i, j int) bool { return r.tuples[i].TID < r.tuples[j].TID })
	for i, t := range r.tuples {
		r.byTID[t.TID] = i
	}
}

// SortBy orders tuples by the given column indexes in place.
func (r *Relation) SortBy(cols ...int) {
	sort.SliceStable(r.tuples, func(i, j int) bool {
		for _, c := range cols {
			if cmp := r.tuples[i].Values[c].Compare(r.tuples[j].Values[c]); cmp != 0 {
				return cmp < 0
			}
		}
		return r.tuples[i].TID < r.tuples[j].TID
	})
	for i, t := range r.tuples {
		r.byTID[t.TID] = i
	}
}

// String renders a small relation as an aligned text table (for examples
// and debugging; not intended for big relations).
func (r *Relation) String() string {
	var b strings.Builder
	widths := make([]int, r.schema.Len())
	for i := 0; i < r.schema.Len(); i++ {
		widths[i] = len(r.schema.Col(i).Name)
	}
	cells := make([][]string, len(r.tuples))
	for ti, t := range r.tuples {
		row := make([]string, len(t.Values))
		for i, v := range t.Values {
			row[i] = v.String()
			if len(row[i]) > widths[i] {
				widths[i] = len(row[i])
			}
		}
		cells[ti] = row
	}
	for i := 0; i < r.schema.Len(); i++ {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], r.schema.Col(i).Name)
	}
	b.WriteByte('\n')
	for _, row := range cells {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
