// Package epsilon implements epsilon specifications (E-specs) from the
// Epsilon Serializability work that Section 3.2 of the paper imports into
// continual queries: a bound on the distance, in database state space,
// between the previous element of the CQ result sequence and the next.
//
// An E-spec is attached to a CQ as its triggering condition. The package
// tracks accumulated divergence differentially — from the differential
// relations alone, never by rescanning base data — exactly as Section 5.3
// rewrites |Deposits - Withdrawals| >= 0.5M into sums over
// insertions(ΔCheckingAccounts) and deletions(ΔCheckingAccounts).
package epsilon

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"github.com/diorama/continual/internal/algebra"
	"github.com/diorama/continual/internal/delta"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/sql"
)

// Errors returned by epsilon accounting.
var (
	ErrNonNumeric = errors.New("epsilon: monitored expression is not numeric")
	ErrBadBound   = errors.New("epsilon: bound must be positive")
)

// Measure selects how update magnitude accumulates against the bound.
type Measure int

// Measures.
const (
	// MeasureNetChange accumulates the net signed change of the monitored
	// expression: Σ(new) − Σ(old). This is the |Deposits − Withdrawals|
	// form of the checking-account example (deposits are insertions of
	// amount, withdrawals are deletions).
	MeasureNetChange Measure = iota + 1
	// MeasureAbsolute accumulates |change| per update row, a stricter
	// bound that also catches churn which nets to zero.
	MeasureAbsolute
)

// String names the measure.
func (m Measure) String() string {
	switch m {
	case MeasureNetChange:
		return "net"
	case MeasureAbsolute:
		return "absolute"
	default:
		return fmt.Sprintf("Measure(%d)", int(m))
	}
}

// Spec is an epsilon specification: trigger when the accumulated
// divergence of the monitored expression over the update stream reaches
// Bound.
type Spec struct {
	// Expr is the monitored numeric expression over the base schema
	// (e.g. the column `amount`).
	Expr sql.Expr
	// Bound is the epsilon: the maximum divergence tolerated before the
	// query must be refreshed.
	Bound float64
	// Measure selects net or absolute accumulation.
	Measure Measure
}

// Validate checks the specification.
func (s Spec) Validate() error {
	if s.Bound <= 0 {
		return fmt.Errorf("%w: %v", ErrBadBound, s.Bound)
	}
	if s.Expr == nil {
		return errors.New("epsilon: monitored expression required")
	}
	return nil
}

// Accountant tracks accumulated divergence for one CQ against one table's
// update stream. It is safe for concurrent use.
type Accountant struct {
	spec Spec

	mu       sync.Mutex
	compiled algebra.CompiledExpr
	schema   relation.Schema
	net      float64
	abs      float64
}

// NewAccountant creates an accountant for a spec over the monitored
// table's schema.
func NewAccountant(spec Spec, schema relation.Schema) (*Accountant, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Measure == 0 {
		spec.Measure = MeasureNetChange
	}
	ce, err := algebra.Compile(spec.Expr, schema)
	if err != nil {
		return nil, fmt.Errorf("epsilon: %w", err)
	}
	switch ce.Type() {
	case relation.TInt, relation.TFloat:
	default:
		return nil, fmt.Errorf("%w: %s has type %s", ErrNonNumeric, spec.Expr, ce.Type())
	}
	return &Accountant{spec: spec, compiled: ce, schema: schema}, nil
}

// Spec returns the accountant's specification.
func (a *Accountant) Spec() Spec { return a.spec }

// Observe folds a differential window into the accumulated divergence.
// The evaluation is purely over the delta rows (Section 5.3's
// differential form of the trigger condition); the base relation is never
// touched.
func (a *Accountant) Observe(d *delta.Delta) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, r := range d.Rows() {
		var oldV, newV float64
		var hasOld, hasNew bool
		if r.Old != nil {
			v, err := a.compiled.Eval(relation.Tuple{TID: r.TID, Values: r.Old})
			if err != nil {
				return fmt.Errorf("epsilon: old half: %w", err)
			}
			if !v.IsNull() {
				oldV, hasOld = v.AsFloat(), true
			}
		}
		if r.New != nil {
			v, err := a.compiled.Eval(relation.Tuple{TID: r.TID, Values: r.New})
			if err != nil {
				return fmt.Errorf("epsilon: new half: %w", err)
			}
			if !v.IsNull() {
				newV, hasNew = v.AsFloat(), true
			}
		}
		var change float64
		switch {
		case hasOld && hasNew:
			change = newV - oldV
		case hasNew:
			change = newV
		case hasOld:
			change = -oldV
		}
		a.net += change
		a.abs += math.Abs(change)
	}
	return nil
}

// Divergence returns the accumulated divergence under the spec's measure.
func (a *Accountant) Divergence() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.spec.Measure == MeasureAbsolute {
		return a.abs
	}
	return math.Abs(a.net)
}

// Exceeded reports whether the accumulated divergence has reached the
// epsilon bound — the CQ must refresh.
func (a *Accountant) Exceeded() bool {
	return a.Divergence() >= a.spec.Bound
}

// Reset clears the accumulated divergence; called after each refresh (the
// E-spec bounds the distance between *consecutive* results).
func (a *Accountant) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.net, a.abs = 0, 0
}

// ResultDistance computes the distance between two consecutive query
// results as the sum over modified/inserted/deleted rows of the absolute
// change of the expression — the "magnitude of updates" view of the
// result sequence. Used by tests to verify the E-spec invariant: the
// distance between consecutive delivered results exceeds the bound by at
// most the final update's magnitude.
func ResultDistance(expr sql.Expr, prev, cur *relation.Relation) (float64, error) {
	ce, err := algebra.Compile(expr, prev.Schema())
	if err != nil {
		return 0, err
	}
	sum := func(r *relation.Relation) (float64, error) {
		var s float64
		for _, t := range r.Tuples() {
			v, err := ce.Eval(t)
			if err != nil {
				return 0, err
			}
			if !v.IsNull() {
				s += v.AsFloat()
			}
		}
		return s, nil
	}
	p, err := sum(prev)
	if err != nil {
		return 0, err
	}
	c, err := sum(cur)
	if err != nil {
		return 0, err
	}
	return math.Abs(c - p), nil
}
