package cq

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/diorama/continual/internal/obs"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/storage"
)

// TestPollIsolatesFailingCQ: one CQ whose trigger window has been
// garbage collected out from under it (ErrStaleWindow on every poll)
// must not starve the healthy CQs — the round continues, the error is
// aggregated into Poll's return and recorded in the failing CQ's state.
func TestPollIsolatesFailingCQ(t *testing.T) {
	s := newStoreWith(t, map[string]relation.Schema{"stocks": stockSchema()})
	reg := obs.NewRegistry()
	m := NewManagerConfig(s, Config{UseDRA: true, Metrics: reg})
	defer func() { _ = m.Close() }()

	insertStock(t, s, "DEC", 150)
	if _, err := m.Register(Def{Name: "poisoned", Query: "SELECT * FROM stocks WHERE price > 120"}); err != nil {
		t.Fatal(err)
	}
	// Poison it: advance the low-water mark past its observation point,
	// so its next trigger evaluation needs a discarded window.
	insertStock(t, s, "IBM", 75)
	s.CollectGarbage(s.Now())
	if _, err := m.Register(Def{Name: "healthy", Query: "SELECT * FROM stocks WHERE price > 50"}); err != nil {
		t.Fatal(err)
	}

	for round := 1; round <= 2; round++ {
		insertStock(t, s, fmt.Sprintf("R%d", round), 130)
		n, err := m.Poll()
		if !errors.Is(err, storage.ErrStaleWindow) {
			t.Fatalf("round %d: Poll err = %v, want ErrStaleWindow in the join", round, err)
		}
		if n != 1 {
			t.Fatalf("round %d: Poll refreshed %d CQs, want 1 (healthy continues)", round, n)
		}
		healthy, err := m.State("healthy")
		if err != nil {
			t.Fatal(err)
		}
		if healthy.Seq != 1+round || healthy.LastErr != nil {
			t.Fatalf("round %d: healthy state = %+v, want seq %d and no error", round, healthy, 1+round)
		}
		poisoned, err := m.State("poisoned")
		if err != nil {
			t.Fatal(err)
		}
		if !errors.Is(poisoned.LastErr, storage.ErrStaleWindow) {
			t.Fatalf("round %d: poisoned LastErr = %v, want ErrStaleWindow", round, poisoned.LastErr)
		}
	}
	if got := reg.Snapshot().Counters["cq.refresh.errors"]; got < 2 {
		t.Errorf("cq.refresh.errors = %d, want >= 2", got)
	}
}

func TestRefreshOnClosedManager(t *testing.T) {
	s := newStoreWith(t, map[string]relation.Schema{"stocks": stockSchema()})
	m := NewManager(s)
	if _, err := m.Register(Def{Name: "exp", Query: "SELECT * FROM stocks"}); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Refresh("exp"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Refresh on closed manager = %v, want ErrClosed", err)
	}
}

func TestCollectGarbageOnClosedManager(t *testing.T) {
	s := newStoreWith(t, map[string]relation.Schema{"stocks": stockSchema()})
	m := NewManagerConfig(s, Config{UseDRA: true}) // no AutoGC
	if _, err := m.Register(Def{Name: "exp", Query: "SELECT * FROM stocks"}); err != nil {
		t.Fatal(err)
	}
	if err := m.Refresh("exp"); err != nil {
		t.Fatal(err)
	}
	insertStock(t, s, "DEC", 150)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if n := m.CollectGarbage(); n != 0 {
		t.Fatalf("CollectGarbage on closed manager collected %d rows, want 0", n)
	}
	if n, _ := s.DeltaLen("stocks"); n == 0 {
		t.Fatal("closed manager must not have truncated the delta")
	}
}

// TestParallelPollMatchesSerial drives two managers — serial and
// 8-worker — through an identical update script over identical stores
// and demands identical results, sequence numbers, and refresh counts
// every round: the scheduler must be a pure throughput change.
func TestParallelPollMatchesSerial(t *testing.T) {
	type world struct {
		s *storage.Store
		m *Manager
	}
	mkWorld := func(parallelism int) world {
		s := storage.NewStore()
		for name, schema := range map[string]relation.Schema{
			"stocks":   stockSchema(),
			"accounts": accountSchema(),
		} {
			if err := s.CreateTable(name, schema); err != nil {
				t.Fatal(err)
			}
		}
		return world{s: s, m: NewManagerConfig(s, Config{UseDRA: true, AutoGC: true, Parallelism: parallelism})}
	}
	serial, parallel := mkWorld(1), mkWorld(8)
	defer func() { _ = serial.m.Close() }()
	defer func() { _ = parallel.m.Close() }()

	defs := []Def{
		{Name: "hi", Query: "SELECT * FROM stocks WHERE price > 120"},
		{Name: "lo", Query: "SELECT * FROM stocks WHERE price <= 120"},
		{Name: "all", Query: "SELECT * FROM stocks"},
		{Name: "names", Query: "SELECT name FROM stocks WHERE price > 60"},
		{Name: "total", Query: "SELECT SUM(amount) FROM accounts"},
		{Name: "rich", Query: "SELECT * FROM accounts WHERE amount > 500"},
		{Name: "join", Query: "SELECT stocks.name, accounts.amount FROM stocks, accounts WHERE stocks.name = accounts.owner"},
	}
	for _, w := range []world{serial, parallel} {
		for _, def := range defs {
			if _, err := w.m.Register(def); err != nil {
				t.Fatalf("register %s: %v", def.Name, err)
			}
		}
	}

	apply := func(w world, round int) {
		tx := w.s.Begin()
		for i := 0; i < 6; i++ {
			name := fmt.Sprintf("S%d_%d", round, i)
			if _, err := tx.Insert("stocks", []relation.Value{relation.Str(name), relation.Float(float64(40 + 17*i + round))}); err != nil {
				t.Fatal(err)
			}
			if i%2 == 0 {
				if _, err := tx.Insert("accounts", []relation.Value{relation.Str(name), relation.Float(float64(200*i + round))}); err != nil {
					t.Fatal(err)
				}
			}
		}
		if _, err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	for round := 0; round < 5; round++ {
		apply(serial, round)
		apply(parallel, round)
		ns, err := serial.m.Poll()
		if err != nil {
			t.Fatalf("serial poll: %v", err)
		}
		np, err := parallel.m.Poll()
		if err != nil {
			t.Fatalf("parallel poll: %v", err)
		}
		if ns != np {
			t.Fatalf("round %d: refreshes serial=%d parallel=%d", round, ns, np)
		}
		for _, def := range defs {
			rs, err := serial.m.Result(def.Name)
			if err != nil {
				t.Fatal(err)
			}
			rp, err := parallel.m.Result(def.Name)
			if err != nil {
				t.Fatal(err)
			}
			if !rs.EqualByTID(rp) {
				t.Fatalf("round %d: %s diverged.\nserial:\n%s\nparallel:\n%s", round, def.Name, rs, rp)
			}
			ss, _ := serial.m.State(def.Name)
			sp, _ := parallel.m.State(def.Name)
			if ss.Seq != sp.Seq {
				t.Fatalf("round %d: %s seq serial=%d parallel=%d", round, def.Name, ss.Seq, sp.Seq)
			}
		}
	}
}

// TestSeqOrderPreservedUnderParallelism asserts the per-CQ notification
// contract under a multi-worker pool: each CQ's subscribers see Seq
// strictly increasing by one, whatever order the workers ran in.
func TestSeqOrderPreservedUnderParallelism(t *testing.T) {
	s := newStoreWith(t, map[string]relation.Schema{"stocks": stockSchema()})
	m := NewManagerConfig(s, Config{UseDRA: true, AutoGC: true, Parallelism: 8})
	defer func() { _ = m.Close() }()

	const nCQs, rounds = 16, 6
	chans := make([]<-chan Notification, nCQs)
	for i := 0; i < nCQs; i++ {
		name := fmt.Sprintf("cq%d", i)
		if _, err := m.Register(Def{Name: name, Query: "SELECT * FROM stocks"}); err != nil {
			t.Fatal(err)
		}
		ch, _, err := m.Subscribe(name, rounds+2)
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}

	for round := 0; round < rounds; round++ {
		insertStock(t, s, fmt.Sprintf("R%d", round), float64(100+round))
		if _, err := m.Poll(); err != nil {
			t.Fatal(err)
		}
	}

	for i, ch := range chans {
		notes := drain(ch)
		if len(notes) != rounds {
			t.Fatalf("cq%d: %d notifications, want %d", i, len(notes), rounds)
		}
		for j, n := range notes {
			if want := j + 2; n.Seq != want { // initial execution is Seq 1
				t.Fatalf("cq%d: notification %d has Seq %d, want %d", i, j, n.Seq, want)
			}
		}
	}
}

// TestConcurrentManagerStress runs Poll, Register, Drop, Subscribe,
// Refresh, reads, and commits concurrently. Its assertions are weak by
// design — the value is running the whole surface under -race.
func TestConcurrentManagerStress(t *testing.T) {
	s := newStoreWith(t, map[string]relation.Schema{"stocks": stockSchema()})
	m := NewManagerConfig(s, Config{UseDRA: true, AutoGC: true, Parallelism: 4})

	for i := 0; i < 4; i++ {
		if _, err := m.Register(Def{Name: fmt.Sprintf("base%d", i), Query: "SELECT * FROM stocks WHERE price > 100"}); err != nil {
			t.Fatal(err)
		}
	}

	const commits = 150
	done := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // committer: drives the clock, then signals shutdown
		defer wg.Done()
		defer close(done)
		for i := 0; i < commits; i++ {
			tx := s.Begin()
			if _, err := tx.Insert("stocks", []relation.Value{relation.Str(fmt.Sprintf("C%d", i)), relation.Float(float64(i % 250))}); err != nil {
				t.Error(err)
				return
			}
			if _, err := tx.Commit(); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	loop := func(f func()) {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				f()
			}
		}
	}
	wg.Add(5)
	go loop(func() { _, _ = m.Poll() })
	go loop(func() { _ = m.Refresh("base0") })
	go loop(func() {
		name := "transient"
		if _, err := m.Register(Def{Name: name, Query: "SELECT * FROM stocks"}); err == nil {
			_ = m.Drop(name)
		}
	})
	go loop(func() {
		if ch, cancel, err := m.Subscribe("base1", 4); err == nil {
			drain(ch)
			cancel()
		}
	})
	go loop(func() {
		_, _ = m.State("base2")
		_ = m.Names()
		_, _ = m.Result("base3")
		_ = m.CollectGarbage()
	})
	wg.Wait()

	// The manager must still be coherent: one more commit and poll.
	insertStock(t, s, "FINAL", 200)
	if _, err := m.Poll(); err != nil {
		t.Fatalf("final poll: %v", err)
	}
	for i := 0; i < 4; i++ {
		st, err := m.State(fmt.Sprintf("base%d", i))
		if err != nil || st.Seq < 2 {
			t.Fatalf("base%d state = %+v err = %v", i, st, err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestParallelismDefaultIsParallel pins the contract that Parallelism 0
// resolves to GOMAXPROCS-many workers, so the parallel path is the
// default in every instrumented run.
func TestParallelismDefaultIsParallel(t *testing.T) {
	s := newStoreWith(t, map[string]relation.Schema{"stocks": stockSchema()})
	m := NewManager(s)
	defer func() { _ = m.Close() }()
	if got := m.workerCount(1000); got < 1 {
		t.Fatalf("workerCount = %d", got)
	}
	if got := m.workerCount(2); got > 2 {
		t.Fatalf("workerCount must be capped by the round size, got %d", got)
	}
	m.cfg.Parallelism = 3
	if got := m.workerCount(1000); got != 3 {
		t.Fatalf("workerCount = %d, want 3", got)
	}
}
